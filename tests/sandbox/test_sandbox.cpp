#include "sandbox/sandbox.hpp"

#include <gtest/gtest.h>

#include "sandbox/schedule.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace avf::sandbox {
namespace {

using sim::Task;

constexpr double kSpeed = 450e6;  // "Pentium II 450"-class host

struct Rig {
  sim::Simulator sim;
  sim::Host host{sim, "h", kSpeed, 128u << 20};
};

/// Time to run `ops` under a sandbox configured by `opts`.
double timed_compute(Rig& rig, const Sandbox::Options& opts, double ops) {
  Sandbox box(rig.host, "app", opts);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await box.compute(ops);
    done = rig.sim.now();
  };
  rig.sim.spawn(proc());
  rig.sim.run();
  return done;
}

TEST(SandboxFluid, ExactShareWhenAlone) {
  Rig rig;
  Sandbox::Options opts;
  opts.cpu_share = 0.4;
  // 1 s of full-speed work at 40% -> 2.5 s.
  EXPECT_NEAR(timed_compute(rig, opts, kSpeed), 2.5, 1e-9);
}

TEST(SandboxFluid, ShareChangeTakesEffectImmediately) {
  Rig rig;
  Sandbox::Options opts;
  opts.cpu_share = 0.8;
  Sandbox box(rig.host, "app", opts);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await box.compute(kSpeed);  // 1 s of full-speed work
    done = rig.sim.now();
  };
  rig.sim.spawn(proc());
  rig.sim.schedule(0.5, [&] { box.set_cpu_share(0.2); });
  rig.sim.run();
  // 0.5 s at 80% = 0.4 s-equivalents done; 0.6 left at 20% -> 3 s more.
  EXPECT_NEAR(done, 0.5 + 0.6 / 0.2, 1e-9);
}

TEST(SandboxFluid, TwoSandboxesSplitByShare) {
  Rig rig;
  Sandbox::Options a_opts, b_opts;
  a_opts.cpu_share = 0.6;
  b_opts.cpu_share = 0.3;
  Sandbox a(rig.host, "a", a_opts);
  Sandbox b(rig.host, "b", b_opts);
  double a_done = -1.0, b_done = -1.0;
  auto pa = [&]() -> Task<> {
    co_await a.compute(kSpeed * 0.6);
    a_done = rig.sim.now();
  };
  auto pb = [&]() -> Task<> {
    co_await b.compute(kSpeed * 0.3);
    b_done = rig.sim.now();
  };
  rig.sim.spawn(pa());
  rig.sim.spawn(pb());
  rig.sim.run();
  // Sum of caps 0.9 <= 1: both get exactly their share -> both take 1 s.
  EXPECT_NEAR(a_done, 1.0, 1e-9);
  EXPECT_NEAR(b_done, 1.0, 1e-9);
}

TEST(SandboxQuantized, AverageConvergesToShare) {
  Rig rig;
  Sandbox::Options opts;
  opts.cpu_share = 0.4;
  opts.cpu_enforcement = CpuEnforcement::kQuantized;
  opts.quantum = 0.005;
  Sandbox box(rig.host, "app", opts);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await box.compute(kSpeed * 2.0);  // 2 s of full-speed work
    done = rig.sim.now();
  };
  rig.sim.spawn(proc());
  rig.sim.run();
  // Expected 2/0.4 = 5 s, within quantization error.
  EXPECT_NEAR(done, 5.0, 0.1);
  EXPECT_GT(done, 4.5);
}

TEST(SandboxQuantized, UtilizationJitterIsBounded) {
  Rig rig;
  Sandbox::Options opts;
  opts.cpu_share = 0.5;
  opts.cpu_enforcement = CpuEnforcement::kQuantized;
  opts.quantum = 0.005;
  Sandbox box(rig.host, "app", opts);
  auto proc = [&]() -> Task<> { co_await box.compute(kSpeed * 5.0); };
  rig.sim.spawn(proc());
  // Sample served ops each 100 ms; each window's utilization must stay
  // within quantization distance of the 50% target.
  double prev = 0.0;
  bool ok = true;
  for (int i = 1; i <= 50; ++i) {
    rig.sim.run_until(0.1 * i);
    double served = box.cpu_served();
    double util = (served - prev) / 0.1 / kSpeed;
    if (util < 0.3 || util > 0.7) ok = false;
    prev = served;
    if (rig.sim.now() >= 10.0) break;
  }
  EXPECT_TRUE(ok);
}

TEST(SandboxNet, BandwidthCapThrottlesEndpoint) {
  Rig rig;
  sim::Host other(rig.sim, "srv", kSpeed, 128u << 20);
  sim::Link link(rig.sim, "l", util::mbps(12.5), 0.0);
  sim::Channel ch(link);
  Sandbox::Options opts;
  opts.net_bandwidth_bps = util::kbps(100);
  Sandbox box(rig.host, "app", opts);
  box.attach_endpoint(ch.a());
  double sent = -1.0;
  auto proc = [&]() -> Task<> {
    sim::Message m;
    m.payload.assign(100000 - sim::kMessageHeaderBytes, 1);
    co_await ch.a().send(std::move(m));
    sent = rig.sim.now();
  };
  rig.sim.spawn(proc());
  rig.sim.run();
  EXPECT_NEAR(sent, 1.0, 1e-6);  // 100 KB at 100 KBps
}

TEST(SandboxNet, BandwidthChangeMidTransfer) {
  Rig rig;
  sim::Link link(rig.sim, "l", util::mbps(12.5), 0.0);
  sim::Channel ch(link);
  Sandbox::Options opts;
  opts.net_bandwidth_bps = util::kbps(500);
  Sandbox box(rig.host, "app", opts);
  box.attach_endpoint(ch.a());
  double sent = -1.0;
  auto proc = [&]() -> Task<> {
    sim::Message m;
    m.payload.assign(500000 - sim::kMessageHeaderBytes, 1);
    co_await ch.a().send(std::move(m));
    sent = rig.sim.now();
  };
  rig.sim.spawn(proc());
  rig.sim.schedule(0.5, [&] { box.set_net_bandwidth(util::kbps(50)); });
  rig.sim.run();
  // 250 KB in 0.5 s, remaining 250 KB at 50 KBps -> 5 s.
  EXPECT_NEAR(sent, 5.5, 1e-6);
}

TEST(SandboxMemory, CapAppliesToReservations) {
  Rig rig;
  Sandbox::Options opts;
  opts.memory_bytes = 1000;
  Sandbox box(rig.host, "app", opts);
  auto a = box.try_reserve_memory(800);
  EXPECT_TRUE(a.valid());
  auto b = box.try_reserve_memory(300);
  EXPECT_FALSE(b.valid());
  box.set_memory_limit(std::nullopt);
  auto c = box.try_reserve_memory(300);
  EXPECT_TRUE(c.valid());
}

TEST(Sandbox, RejectsInvalidConfig) {
  Rig rig;
  Sandbox::Options opts;
  opts.cpu_share = 0.0;
  EXPECT_THROW(Sandbox(rig.host, "x", opts), std::invalid_argument);
  opts.cpu_share = 1.5;
  EXPECT_THROW(Sandbox(rig.host, "x", opts), std::invalid_argument);
  opts.cpu_share = 0.5;
  opts.quantum = 0.0;
  EXPECT_THROW(Sandbox(rig.host, "x", opts), std::invalid_argument);
}

TEST(SandboxSchedule, AppliesTimedChanges) {
  Rig rig;
  Sandbox::Options opts;
  opts.cpu_share = 0.8;
  Sandbox box(rig.host, "app", opts);
  apply_schedule(rig.sim, box,
                 {{.at = 1.0, .cpu_share = 0.4},
                  {.at = 2.0, .cpu_share = 0.6}});
  rig.sim.run_until(0.5);
  EXPECT_DOUBLE_EQ(box.cpu_share(), 0.8);
  rig.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(box.cpu_share(), 0.4);
  rig.sim.run_until(2.5);
  EXPECT_DOUBLE_EQ(box.cpu_share(), 0.6);
}

TEST(SandboxSchedule, PastChangesApplyImmediately) {
  Rig rig;
  Sandbox::Options opts;
  Sandbox box(rig.host, "app", opts);
  rig.sim.run_until(5.0);
  apply_schedule(rig.sim, box, {{.at = 1.0, .cpu_share = 0.3}});
  EXPECT_DOUBLE_EQ(box.cpu_share(), 0.3);
}

// The testbed-as-model property (paper Fig 4a): running work W under share s
// on a fast host takes the same time as running it on a host of speed
// s * fast_speed.
class EmulationFidelity : public ::testing::TestWithParam<double> {};

TEST_P(EmulationFidelity, ShareEmulatesSlowerMachine) {
  double ratio = GetParam();

  Rig testbed;
  Sandbox::Options opts;
  opts.cpu_share = ratio;
  double emulated = timed_compute(testbed, opts, kSpeed * 3.0);

  sim::Simulator sim2;
  sim::Host slow(sim2, "slow", kSpeed * ratio, 128u << 20);
  Sandbox::Options full;
  Sandbox box(slow, "app", full);
  double physical = -1.0;
  auto proc = [&]() -> Task<> {
    co_await box.compute(kSpeed * 3.0);
    physical = sim2.now();
  };
  sim2.spawn(proc());
  sim2.run();

  EXPECT_NEAR(emulated, physical, physical * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SpeedRatios, EmulationFidelity,
                         ::testing::Values(200.0 / 450.0, 333.0 / 450.0, 0.5,
                                           0.25, 1.0));

}  // namespace
}  // namespace avf::sandbox
