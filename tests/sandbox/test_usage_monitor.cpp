#include "sandbox/usage_monitor.hpp"

#include <gtest/gtest.h>

#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sandbox {
namespace {

using sim::Task;

TEST(UsageMonitor, TracksFluidShare) {
  sim::Simulator sim;
  sim::Host host(sim, "h", 100e6, 1u << 20);
  Sandbox::Options opts;
  opts.cpu_share = 0.6;
  Sandbox box(host, "app", opts);
  UsageMonitor mon(sim, host.cpu(), box.owner(), 0.5);
  mon.start();
  auto proc = [&]() -> Task<> { co_await box.compute(100e6 * 3.0); };
  sim.spawn(proc());
  sim.run_until(4.0);
  mon.stop();
  ASSERT_GE(mon.samples().size(), 8u);
  // While the process is computing (first ~5 s of work at 60%), every
  // window reads 60%.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(mon.samples()[i].utilization, 0.6, 1e-9);
  }
}

TEST(UsageMonitor, SeesShareSteps) {
  // The Figure 3(a) scenario in miniature: 80% -> 40% -> 60%.
  sim::Simulator sim;
  sim::Host host(sim, "h", 100e6, 1u << 20);
  Sandbox::Options opts;
  opts.cpu_share = 0.8;
  Sandbox box(host, "app", opts);
  UsageMonitor mon(sim, host.cpu(), box.owner(), 1.0);
  mon.start();
  auto proc = [&]() -> Task<> { co_await box.compute(100e6 * 100.0); };
  sim.spawn(proc());
  sim.schedule(20.0, [&] { box.set_cpu_share(0.4); });
  sim.schedule(50.0, [&] { box.set_cpu_share(0.6); });
  sim.run_until(70.0);
  EXPECT_NEAR(mon.mean_utilization(0.0, 20.0), 0.8, 1e-6);
  EXPECT_NEAR(mon.mean_utilization(20.0, 50.0), 0.4, 1e-6);
  EXPECT_NEAR(mon.mean_utilization(50.0, 70.0), 0.6, 1e-6);
}

TEST(UsageMonitor, IdleProcessReadsZero) {
  sim::Simulator sim;
  sim::Host host(sim, "h", 100e6, 1u << 20);
  Sandbox::Options opts;
  Sandbox box(host, "app", opts);
  UsageMonitor mon(sim, host.cpu(), box.owner(), 0.5);
  mon.start();
  sim.run_until(2.0);
  for (const auto& s : mon.samples()) {
    EXPECT_EQ(s.utilization, 0.0);
  }
}

TEST(UsageMonitor, StartIsIdempotentAndStopHalts) {
  sim::Simulator sim;
  sim::Host host(sim, "h", 100e6, 1u << 20);
  UsageMonitor mon(sim, host.cpu(), 1, 0.5);
  mon.start();
  mon.start();
  sim.run_until(1.6);
  std::size_t n = mon.samples().size();
  EXPECT_EQ(n, 3u);  // single sampling chain despite double start
  mon.stop();
  sim.run_until(5.0);
  EXPECT_EQ(mon.samples().size(), n);
}

TEST(UsageMonitor, RejectsBadInterval) {
  sim::Simulator sim;
  sim::Host host(sim, "h", 100e6, 1u << 20);
  EXPECT_THROW(UsageMonitor(sim, host.cpu(), 1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace avf::sandbox
