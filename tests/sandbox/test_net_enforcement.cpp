// Network-limit enforcement tests: fluid link capping vs the paper's
// delayed-send mechanism (token bucket).  Both must converge to the same
// configured average bandwidth; delayed mode additionally allows bursts up
// to its window.
#include <gtest/gtest.h>

#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sandbox {
namespace {

using sim::Task;

struct Rig {
  sim::Simulator sim;
  sim::Host host{sim, "h", 450e6, 128u << 20};
  sim::Host peer{sim, "srv", 450e6, 128u << 20};
  sim::Link link{sim, "l", 12.5e6, 0.0};  // fast LAN, no latency
  sim::Channel ch{link};
};

sim::Message message_of(std::size_t payload) {
  sim::Message m;
  m.kind = 1;
  m.payload.assign(payload, 0);
  return m;
}

/// Time to push `count` messages of `payload` bytes under `opts`.
double timed_sends(Rig& rig, const Sandbox::Options& opts, int count,
                   std::size_t payload) {
  Sandbox box(rig.host, "app", opts);
  box.attach_endpoint(rig.ch.a());
  double done = -1.0;
  auto sender = [&]() -> Task<> {
    for (int i = 0; i < count; ++i) {
      co_await box.send(rig.ch.a(), message_of(payload));
    }
    done = rig.sim.now();
  };
  rig.sim.spawn(sender());
  rig.sim.run();
  return done;
}

TEST(NetEnforcement, DelayedModeConvergesToConfiguredRate) {
  Rig rig;
  Sandbox::Options opts;
  opts.net_bandwidth_bps = 100e3;
  opts.net_enforcement = NetEnforcement::kDelayed;
  // 50 messages x ~20 KB = 1 MB at 100 KB/s -> ~10 s.
  double done = timed_sends(rig, opts, 50, 20000 - sim::kMessageHeaderBytes);
  EXPECT_NEAR(done, 10.0, 0.2);
}

TEST(NetEnforcement, FluidAndDelayedAgreeOnAverage) {
  double fluid, delayed;
  {
    Rig rig;
    Sandbox::Options opts;
    opts.net_bandwidth_bps = 200e3;
    opts.net_enforcement = NetEnforcement::kFluid;
    fluid = timed_sends(rig, opts, 40, 10000);
  }
  {
    Rig rig;
    Sandbox::Options opts;
    opts.net_bandwidth_bps = 200e3;
    opts.net_enforcement = NetEnforcement::kDelayed;
    delayed = timed_sends(rig, opts, 40, 10000);
  }
  EXPECT_NEAR(delayed, fluid, 0.1 * fluid);
}

TEST(NetEnforcement, DelayedModeAllowsBurstWithinWindow) {
  // A single message within the burst budget goes out at link speed, far
  // faster than the average rate would allow.
  Rig rig;
  Sandbox::Options opts;
  opts.net_bandwidth_bps = 100e3;
  opts.net_enforcement = NetEnforcement::kDelayed;
  opts.net_burst_window = 0.05;  // 5 KB burst budget
  Sandbox box(rig.host, "app", opts);
  box.attach_endpoint(rig.ch.a());
  double done = -1.0;
  auto sender = [&]() -> Task<> {
    // Let the bucket fill, then send one 4 KB message.
    co_await rig.sim.delay(1.0);
    co_await box.send(rig.ch.a(), message_of(4000));
    done = rig.sim.now();
  };
  rig.sim.spawn(sender());
  rig.sim.run();
  // 4 KB at 12.5 MB/s link = ~0.3 ms, vs 40 ms at the average rate.
  EXPECT_LT(done - 1.0, 0.005);
}

TEST(NetEnforcement, UnlimitedSandboxPassesThrough) {
  Rig rig;
  Sandbox::Options opts;  // no net limit
  opts.net_enforcement = NetEnforcement::kDelayed;
  double done = timed_sends(rig, opts, 10, 100000);
  // Only constrained by the 12.5 MB/s link: ~0.08 s.
  EXPECT_LT(done, 0.2);
}

TEST(NetEnforcement, RejectsBadBurstWindow) {
  Rig rig;
  Sandbox::Options opts;
  opts.net_burst_window = 0.0;
  EXPECT_THROW(Sandbox(rig.host, "x", opts), std::invalid_argument);
}

class DelayedRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DelayedRateSweep, AverageRateMatchesConfig) {
  double bps = GetParam();
  Rig rig;
  Sandbox::Options opts;
  opts.net_bandwidth_bps = bps;
  opts.net_enforcement = NetEnforcement::kDelayed;
  std::size_t payload = 8000;
  int count = 30;
  double done = timed_sends(rig, opts, count, payload);
  double bytes = static_cast<double>(count) *
                 (payload + sim::kMessageHeaderBytes);
  EXPECT_NEAR(bytes / done, bps, 0.1 * bps);
}

INSTANTIATE_TEST_SUITE_P(Rates, DelayedRateSweep,
                         ::testing::Values(50e3, 100e3, 500e3, 2e6));

}  // namespace
}  // namespace avf::sandbox
