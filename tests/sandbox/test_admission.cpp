#include "sandbox/admission.hpp"

#include <gtest/gtest.h>

namespace avf::sandbox {
namespace {

TEST(Admission, AdmitsWithinThreshold) {
  AdmissionController ctl(0.9, 1e6, 1000);
  Admission a = ctl.try_admit({.cpu_share = 0.5});
  EXPECT_TRUE(a.valid());
  Admission b = ctl.try_admit({.cpu_share = 0.4});
  EXPECT_TRUE(b.valid());
  EXPECT_DOUBLE_EQ(ctl.cpu_admitted(), 0.9);
}

TEST(Admission, RejectsOverCpuThreshold) {
  AdmissionController ctl(0.9, 1e6, 1000);
  Admission a = ctl.try_admit({.cpu_share = 0.7});
  Admission b = ctl.try_admit({.cpu_share = 0.3});
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.valid());
  EXPECT_DOUBLE_EQ(ctl.cpu_admitted(), 0.7);
}

TEST(Admission, RejectsOverNetOrMem) {
  AdmissionController ctl(1.0, 100.0, 50);
  EXPECT_FALSE(ctl.try_admit({.net_bps = 200.0}).valid());
  EXPECT_FALSE(ctl.try_admit({.mem_bytes = 80}).valid());
  EXPECT_TRUE(ctl.try_admit({.net_bps = 100.0, .mem_bytes = 50}).valid());
}

TEST(Admission, ReleaseFreesCapacity) {
  AdmissionController ctl(1.0, 1e6, 1000);
  {
    Admission a = ctl.try_admit({.cpu_share = 0.8});
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(ctl.would_admit({.cpu_share = 0.5}));
  }
  EXPECT_TRUE(ctl.would_admit({.cpu_share = 0.5}));
  EXPECT_DOUBLE_EQ(ctl.cpu_admitted(), 0.0);
}

TEST(Admission, ExplicitReleaseAndMove) {
  AdmissionController ctl(1.0, 1e6, 1000);
  Admission a = ctl.try_admit({.cpu_share = 0.5, .mem_bytes = 100});
  Admission b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_DOUBLE_EQ(ctl.cpu_admitted(), 0.0);
  EXPECT_EQ(ctl.mem_admitted(), 0u);
  b.release();  // no-op
}

TEST(Admission, InvalidTicketIsInert) {
  Admission a;
  EXPECT_FALSE(a.valid());
  a.release();  // must not crash
}

}  // namespace
}  // namespace avf::sandbox
