// Competition and policing tests: multiple sandboxed applications sharing
// one host — the paper's claim that "we can run several virtual machines on
// the same physical host, without them interfering with each other", plus
// admission-driven share allocation.
#include <gtest/gtest.h>

#include <vector>

#include "sandbox/admission.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sandbox {
namespace {

using sim::Task;

constexpr double kSpeed = 450e6;

TEST(Competition, UnderloadedSandboxesDoNotInterfere) {
  // Three sandboxes with caps summing to < 1 all receive exactly their
  // configured shares even while running concurrently (both modes).
  for (auto mode :
       {CpuEnforcement::kFluid, CpuEnforcement::kQuantized}) {
    sim::Simulator sim;
    sim::Host host(sim, "h", kSpeed, 128u << 20);
    std::vector<double> shares{0.5, 0.3, 0.15};
    std::vector<std::unique_ptr<Sandbox>> boxes;
    std::vector<double> done(shares.size(), -1.0);
    for (std::size_t i = 0; i < shares.size(); ++i) {
      Sandbox::Options opts;
      opts.cpu_share = shares[i];
      opts.cpu_enforcement = mode;
      boxes.push_back(
          std::make_unique<Sandbox>(host, "app" + std::to_string(i), opts));
    }
    // Captureless coroutine lambda: parameters are copied into the frame,
    // so spawning a temporary is safe (captures would dangle).
    auto proc = [](Sandbox* box, double work, sim::Simulator* s,
                   double* done_at) -> Task<> {
      co_await box->compute(work);
      *done_at = s->now();
    };
    for (std::size_t i = 0; i < shares.size(); ++i) {
      // Work sized so each finishes in exactly 2 s at its share.
      sim.spawn(proc(boxes[i].get(), kSpeed * shares[i] * 2.0, &sim,
                     &done[i]));
    }
    sim.run();
    for (std::size_t i = 0; i < shares.size(); ++i) {
      EXPECT_NEAR(done[i], 2.0,
                  mode == CpuEnforcement::kFluid ? 1e-9 : 0.08)
          << "mode=" << static_cast<int>(mode) << " app=" << i;
    }
  }
}

TEST(Competition, OversubscriptionSplitsByWeight) {
  // Two fluid sandboxes with caps 0.8 + 0.8 oversubscribe the host; the
  // water-filler splits capacity by weight (= share here), not caps.
  sim::Simulator sim;
  sim::Host host(sim, "h", kSpeed, 128u << 20);
  Sandbox::Options opts;
  opts.cpu_share = 0.8;
  Sandbox a(host, "a", opts), b(host, "b", opts);
  double a_done = -1.0, b_done = -1.0;
  auto pa = [&]() -> Task<> {
    co_await a.compute(kSpeed);
    a_done = sim.now();
  };
  auto pb = [&]() -> Task<> {
    co_await b.compute(kSpeed);
    b_done = sim.now();
  };
  sim.spawn(pa());
  sim.spawn(pb());
  sim.run();
  // Equal weights, equal demand: both get 50% -> 2 s.
  EXPECT_NEAR(a_done, 2.0, 1e-9);
  EXPECT_NEAR(b_done, 2.0, 1e-9);
}

TEST(Competition, PolicingPreventsOveruse) {
  // A sandboxed app cannot exceed its cap even when the host is otherwise
  // idle — the "applications must not be allowed to use more than their
  // share" requirement of §6.2.
  sim::Simulator sim;
  sim::Host host(sim, "h", kSpeed, 128u << 20);
  Sandbox::Options opts;
  opts.cpu_share = 0.25;
  Sandbox box(host, "greedy", opts);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await box.compute(kSpeed);  // 1 s of work
    done = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_NEAR(done, 4.0, 1e-9);  // not faster than its 25%
}

TEST(Competition, AdmissionDrivenProvisioning) {
  // End-to-end §6.2 flow: admit applications against a threshold, create a
  // sandbox per admitted app with the granted share, verify each achieves
  // its reservation while a rejected app never runs.
  sim::Simulator sim;
  sim::Host host(sim, "h", kSpeed, 128u << 20);
  AdmissionController admission(0.9, 1e9, 1ull << 30);

  struct App {
    double share;
    Admission ticket;
    std::unique_ptr<Sandbox> box;
    double done = -1.0;
  };
  std::vector<App> apps;
  for (double share : {0.5, 0.3, 0.2}) {  // third exceeds the 0.9 threshold
    App app;
    app.share = share;
    app.ticket = admission.try_admit({.cpu_share = share});
    if (app.ticket.valid()) {
      Sandbox::Options opts;
      opts.cpu_share = share;
      app.box = std::make_unique<Sandbox>(host, "app", opts);
    }
    apps.push_back(std::move(app));
  }
  ASSERT_TRUE(apps[0].ticket.valid());
  ASSERT_TRUE(apps[1].ticket.valid());
  EXPECT_FALSE(apps[2].ticket.valid());

  auto proc = [](App* app, sim::Simulator* s) -> Task<> {
    co_await app->box->compute(kSpeed * app->share * 3.0);
    app->done = s->now();
  };
  for (App& app : apps) {
    if (!app.box) continue;
    sim.spawn(proc(&app, &sim));
  }
  sim.run();
  EXPECT_NEAR(apps[0].done, 3.0, 1e-9);
  EXPECT_NEAR(apps[1].done, 3.0, 1e-9);
  EXPECT_EQ(apps[2].done, -1.0);
}

TEST(Competition, QuantizedSandboxesConvergeTogether) {
  // Two quantized sandboxes (closed-loop enforcement) sharing a host both
  // converge to their configured averages.
  sim::Simulator sim;
  sim::Host host(sim, "h", kSpeed, 128u << 20);
  Sandbox::Options a_opts, b_opts;
  a_opts.cpu_share = 0.6;
  a_opts.cpu_enforcement = CpuEnforcement::kQuantized;
  b_opts.cpu_share = 0.3;
  b_opts.cpu_enforcement = CpuEnforcement::kQuantized;
  Sandbox a(host, "a", a_opts), b(host, "b", b_opts);
  auto busy = [&](Sandbox& box) -> Task<> {
    co_await box.compute(kSpeed * 10.0);
  };
  sim.spawn(busy(a));
  sim.spawn(busy(b));
  sim.run_until(10.0);
  EXPECT_NEAR(a.cpu_served() / (kSpeed * 10.0), 0.6, 0.05);
  EXPECT_NEAR(b.cpu_served() / (kSpeed * 10.0), 0.3, 0.05);
}

}  // namespace
}  // namespace avf::sandbox
