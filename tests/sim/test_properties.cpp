// Property tests: invariants of the simulation kernel under randomized
// workloads — work conservation, capacity limits, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fluid_resource.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace avf::sim {
namespace {

/// Randomized consumer mix on one resource: random amounts, caps, weights,
/// arrival times, plus random mid-flight cap changes.
struct RandomWorkload {
  explicit RandomWorkload(std::uint64_t seed) : rng(seed) {}

  util::SplitMix64 rng;
  double total_requested = 0.0;
  int completions = 0;

  void build(Simulator& sim, FluidResource& res, int consumers) {
    for (int i = 0; i < consumers; ++i) {
      double amount = rng.uniform(1e3, 5e6);
      double cap = rng.uniform(0.05, 1.0);
      double weight = rng.uniform(0.1, 4.0);
      double arrival = rng.uniform(0.0, 2.0);
      total_requested += amount;
      ShareSlotPtr slot = make_share_slot(cap, weight);
      sim.schedule(arrival, [&sim, &res, this, amount, slot] {
        auto consumer = [](RandomWorkload* self, FluidResource* r,
                           double amt, ShareSlotPtr s) -> Task<> {
          co_await r->consume(amt, s, kNoOwner);
          ++self->completions;
        };
        sim.spawn(consumer(this, &res, amount, slot));
      });
      // Random cap churn.
      double change_at = rng.uniform(0.5, 4.0);
      double new_cap = rng.uniform(0.05, 1.0);
      sim.schedule(change_at, [&res, slot, new_cap] {
        slot->cap = new_cap;
        res.reallocate();
      });
    }
  }
};

class FluidPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidPropertyTest, WorkIsConservedUnderChurn) {
  Simulator sim;
  FluidResource res(sim, "cpu", 3e6);
  RandomWorkload workload(GetParam());
  workload.build(sim, res, 24);
  sim.run();
  EXPECT_EQ(workload.completions, 24);
  // Everything requested was served, nothing more (relative tolerance for
  // float accumulation over many reallocation cycles).
  EXPECT_NEAR(res.total_served(), workload.total_requested,
              1e-6 * workload.total_requested);
}

TEST_P(FluidPropertyTest, AllocatedRateNeverExceedsCapacity) {
  Simulator sim;
  FluidResource res(sim, "cpu", 3e6);
  RandomWorkload workload(GetParam() ^ 0xABCDEF);
  workload.build(sim, res, 16);
  double max_alloc = 0.0;
  // Sample the allocation at fine granularity through the run.
  for (int i = 0; i < 500; ++i) {
    sim.schedule(i * 0.01, [&] {
      max_alloc = std::max(max_alloc, res.allocated_rate());
    });
  }
  sim.run();
  EXPECT_LE(max_alloc, 3e6 * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(FluidProperty, CapsAreRespectedAtEveryInstant) {
  // A capped consumer must never progress faster than cap * capacity,
  // regardless of competition coming and going.
  Simulator sim;
  FluidResource res(sim, "cpu", 1e6);
  ShareSlotPtr capped = make_share_slot(0.3);
  OwnerId owner = sim.new_owner_id();
  auto consumer = [&]() -> Task<> {
    co_await res.consume(2e6, capped, owner);
  };
  sim.spawn(consumer());
  // Competitors churn.
  for (int i = 0; i < 10; ++i) {
    sim.schedule(0.3 * i, [&sim, &res] {
      auto other = [](FluidResource* r) -> Task<> {
        co_await r->consume(1e5, make_share_slot());
      };
      sim.spawn(other(&res));
    });
  }
  double last_served = 0.0;
  double last_time = 0.0;
  bool violated = false;
  for (int i = 1; i <= 100; ++i) {
    sim.schedule(0.1 * i, [&, i] {
      double served = res.served(owner);
      double rate = (served - last_served) / (0.1);
      if (rate > 0.3 * 1e6 * (1 + 1e-9)) violated = true;
      last_served = served;
      last_time = 0.1 * i;
    });
  }
  sim.run();
  EXPECT_FALSE(violated);
}

TEST(SimDeterminism, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    FluidResource res(sim, "cpu", 2e6);
    RandomWorkload workload(seed);
    workload.build(sim, res, 20);
    sim.run();
    return std::make_tuple(sim.now(), sim.events_processed(),
                           res.total_served());
  };
  auto a = run_once(17);
  auto b = run_once(17);
  EXPECT_EQ(a, b);
}

TEST(SimDeterminism, MessageTimelineIsReproducible) {
  auto run_once = []() {
    Simulator sim;
    Link link(sim, "l", 1e5, 0.003);
    Channel ch(link);
    std::vector<double> deliveries;
    auto sender = [&]() -> Task<> {
      util::SplitMix64 rng(5);
      for (int i = 0; i < 50; ++i) {
        Message m;
        m.kind = i;
        m.payload.assign(100 + rng.next_below(5000), 0);
        co_await ch.a().send(std::move(m));
        co_await sim.delay(rng.uniform(0.0, 0.05));
      }
    };
    auto receiver = [&]() -> Task<> {
      for (int i = 0; i < 50; ++i) {
        Message m = co_await ch.b().recv();
        deliveries.push_back(m.delivered_at);
      }
    };
    sim.spawn(receiver());
    sim.spawn(sender());
    sim.run();
    return deliveries;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FluidProperty, ManySmallRequestsMatchOneBigRequest) {
  // Chunked consumption takes the same simulated time as one large
  // request when the consumer is alone (no scheduling artifacts).
  auto timed = [](int chunks) {
    Simulator sim;
    FluidResource res(sim, "cpu", 1e6);
    double done = -1.0;
    auto consumer = [&, chunks]() -> Task<> {
      for (int i = 0; i < chunks; ++i) {
        co_await res.consume(3e6 / chunks, make_share_slot(0.5));
      }
      done = sim.now();
    };
    sim.spawn(consumer());
    sim.run();
    return done;
  };
  EXPECT_NEAR(timed(1), timed(100), 1e-6);
}

}  // namespace
}  // namespace avf::sim
