#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sim {
namespace {

TEST(Mailbox, RecvAfterPushIsImmediate) {
  Simulator sim;
  Mailbox<int> box(sim);
  int got = 0;
  auto proc = [&]() -> Task<> { got = co_await box.recv(); };
  box.push(7);
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(Mailbox, RecvBlocksUntilPush) {
  Simulator sim;
  Mailbox<int> box(sim);
  double recv_time = -1.0;
  int got = 0;
  auto receiver = [&]() -> Task<> {
    got = co_await box.recv();
    recv_time = sim.now();
  };
  sim.spawn(receiver());
  sim.schedule(2.0, [&] { box.push(42); });
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_DOUBLE_EQ(recv_time, 2.0);
}

TEST(Mailbox, FifoOrderAcrossMultipleItems) {
  Simulator sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  auto receiver = [&]() -> Task<> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await box.recv());
  };
  sim.spawn(receiver());
  sim.schedule(1.0, [&] {
    box.push(1);
    box.push(2);
    box.push(3);
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, MultipleWaitersServedFifo) {
  Simulator sim;
  Mailbox<std::string> box(sim);
  std::vector<std::string> log;
  auto receiver = [&](std::string name) -> Task<> {
    std::string item = co_await box.recv();
    log.push_back(name + ":" + item);
  };
  sim.spawn(receiver("first"));
  sim.spawn(receiver("second"));
  sim.schedule(1.0, [&] { box.push("a"); });
  sim.schedule(2.0, [&] { box.push("b"); });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"first:a", "second:b"}));
}

TEST(Mailbox, TryRecvDoesNotStealReservedItems) {
  Simulator sim;
  Mailbox<int> box(sim);
  int got = 0;
  auto receiver = [&]() -> Task<> { got = co_await box.recv(); };
  sim.spawn(receiver());
  sim.schedule(1.0, [&] {
    box.push(5);
    // The push reserved the item for the blocked receiver; try_recv must
    // not see anything.
    EXPECT_FALSE(box.try_recv().has_value());
  });
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(Mailbox, TryRecvTakesUnreservedItem) {
  Simulator sim;
  Mailbox<int> box(sim);
  box.push(9);
  auto item = box.try_recv();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 9);
  EXPECT_FALSE(box.try_recv().has_value());
}

TEST(Mailbox, SizeTracksContents) {
  Simulator sim;
  Mailbox<int> box(sim);
  EXPECT_TRUE(box.empty());
  box.push(1);
  box.push(2);
  EXPECT_EQ(box.size(), 2u);
}

TEST(Mailbox, StressManyItemsManyWaiters) {
  Simulator sim;
  Mailbox<int> box(sim);
  constexpr int kItems = 100;
  std::vector<int> got;
  auto receiver = [&]() -> Task<> {
    for (;;) {
      int v = co_await box.recv();
      got.push_back(v);
      if (v == kItems - 1) co_return;
    }
  };
  sim.spawn(receiver());
  auto sender = [&]() -> Task<> {
    for (int i = 0; i < kItems; ++i) {
      box.push(i);
      if (i % 7 == 0) co_await sim.delay(0.001);
    }
  };
  sim.spawn(sender());
  sim.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

TEST(Mailbox, AvailableExcludesReservedItems) {
  Simulator sim;
  Mailbox<int> box(sim);
  int got = -1;
  auto waiter = [&]() -> Task<> { got = co_await box.recv(); };
  sim.spawn(waiter());
  sim.run();  // waiter parks
  box.push(7);
  // The item is physically queued but already reserved for the waiter:
  // size() counts it, available() must not.
  EXPECT_EQ(box.size(), 1u);
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.available(), 0u);
  EXPECT_EQ(box.try_recv(), std::nullopt);
  sim.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(box.size(), 0u);
  EXPECT_EQ(box.available(), 0u);
}

TEST(Mailbox, AvailableMatchesSizeWithoutWaiters) {
  Simulator sim;
  Mailbox<int> box(sim);
  box.push(1);
  box.push(2);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.available(), 2u);
  ASSERT_TRUE(box.try_recv().has_value());
  EXPECT_EQ(box.available(), 1u);
}

}  // namespace
}  // namespace avf::sim
