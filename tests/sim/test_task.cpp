#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace avf::sim {
namespace {

TEST(Task, SpawnRunsBody) {
  Simulator sim;
  bool ran = false;
  auto proc = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  sim.spawn(proc());
  EXPECT_FALSE(ran);  // lazy until the event loop runs
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Task, DelaySuspendsAcrossSimulatedTime) {
  Simulator sim;
  std::vector<double> times;
  auto proc = [&]() -> Task<> {
    times.push_back(sim.now());
    co_await sim.delay(1.5);
    times.push_back(sim.now());
    co_await sim.delay(0.5);
    times.push_back(sim.now());
  };
  sim.spawn(proc());
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
  EXPECT_DOUBLE_EQ(times[2], 2.0);
}

TEST(Task, NestedAwaitReturnsValue) {
  Simulator sim;
  int result = 0;
  auto child = [&](int x) -> Task<int> {
    co_await sim.delay(1.0);
    co_return x * 2;
  };
  auto parent = [&]() -> Task<> {
    int v = co_await child(21);
    result = v;
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Task, DeeplyNestedCallChain) {
  Simulator sim;
  auto leaf = [&]() -> Task<int> { co_return 1; };
  // Recursion through a fixpoint: sum of 100 leaves via nesting.
  std::function<Task<int>(int)> chain = [&](int depth) -> Task<int> {
    if (depth == 0) co_return co_await leaf();
    int below = co_await chain(depth - 1);
    co_return below + 1;
  };
  int result = 0;
  auto parent = [&]() -> Task<> { result = co_await chain(100); };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(result, 101);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  auto child = [&]() -> Task<> {
    co_await sim.delay(0.5);
    throw std::runtime_error("boom");
  };
  auto parent = [&]() -> Task<> {
    try {
      co_await child();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "boom";
    }
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, DetachedExceptionSurfacesFromRun) {
  Simulator sim;
  auto proc = [&]() -> Task<> {
    co_await sim.delay(1.0);
    throw std::runtime_error("detached failure");
  };
  sim.spawn(proc());
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Task, MultipleProcessesInterleave) {
  Simulator sim;
  std::vector<std::string> log;
  auto proc = [&](std::string name, double period) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await sim.delay(period);
      log.push_back(name);
    }
  };
  sim.spawn(proc("fast", 1.0));
  sim.spawn(proc("slow", 1.5));
  sim.run();
  // fast at t=1,2,3; slow at t=1.5,3,4.5.  At the t=3 tie, slow's event was
  // scheduled earlier (at t=1.5) and therefore fires first.
  EXPECT_EQ(log, (std::vector<std::string>{"fast", "slow", "fast", "slow",
                                           "fast", "slow"}));
}

TEST(Task, ValueTaskMoveOnlyResult) {
  Simulator sim;
  std::vector<int> result;
  auto child = [&]() -> Task<std::vector<int>> {
    co_return std::vector<int>{1, 2, 3};
  };
  auto parent = [&]() -> Task<> { result = co_await child(); };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(result, (std::vector<int>{1, 2, 3}));
}

TEST(Task, UnawaitedTaskIsSafelyDestroyed) {
  Simulator sim;
  bool ran = false;
  auto child = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  {
    Task<> t = child();  // never awaited, never spawned
  }
  sim.run();
  EXPECT_FALSE(ran);  // lazy: body never started, no leak (ASAN would catch)
}

}  // namespace
}  // namespace avf::sim
