#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace avf::sim {
namespace {

TEST(Memory, ReserveAndReleaseTracksUsage) {
  MemoryResource mem("m", 1000);
  {
    MemoryReservation r = mem.reserve(1, 400);
    EXPECT_EQ(mem.used(), 400u);
    EXPECT_EQ(mem.used_by(1), 400u);
    EXPECT_EQ(mem.available(), 600u);
  }
  EXPECT_EQ(mem.used(), 0u);
  EXPECT_EQ(mem.used_by(1), 0u);
}

TEST(Memory, DeniesOverCapacity) {
  MemoryResource mem("m", 100);
  MemoryReservation a = mem.reserve(1, 80);
  MemoryReservation b = mem.try_reserve(2, 30);
  EXPECT_FALSE(b.valid());
  EXPECT_THROW((void)mem.reserve(2, 30), std::runtime_error);
}

TEST(Memory, PerOwnerCapEnforced) {
  MemoryResource mem("m", 1000);
  mem.set_cap(7, 100);
  MemoryReservation a = mem.try_reserve(7, 90);
  EXPECT_TRUE(a.valid());
  MemoryReservation b = mem.try_reserve(7, 20);
  EXPECT_FALSE(b.valid());
  // Other owners are unaffected.
  MemoryReservation c = mem.try_reserve(8, 500);
  EXPECT_TRUE(c.valid());
}

TEST(Memory, RemoveCapRestoresUnlimited) {
  MemoryResource mem("m", 1000);
  mem.set_cap(7, 10);
  EXPECT_FALSE(mem.try_reserve(7, 20).valid());
  mem.remove_cap(7);
  EXPECT_TRUE(mem.try_reserve(7, 20).valid());
}

TEST(Memory, MoveTransfersOwnership) {
  MemoryResource mem("m", 100);
  MemoryReservation a = mem.reserve(1, 50);
  MemoryReservation b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(mem.used(), 50u);
  b.release();
  EXPECT_EQ(mem.used(), 0u);
  b.release();  // double release is a no-op
}

TEST(Memory, MoveAssignReleasesPrevious) {
  MemoryResource mem("m", 100);
  MemoryReservation a = mem.reserve(1, 40);
  MemoryReservation b = mem.reserve(2, 30);
  a = std::move(b);
  EXPECT_EQ(mem.used(), 30u);  // the 40-byte hold was released
  EXPECT_EQ(mem.used_by(2), 30u);
}

}  // namespace
}  // namespace avf::sim
