// Tests for the sparse incremental fluid engine and its accounting.
//
// The dense engine's correctness is pinned down by test_fluid_resource.cpp;
// here we check the two contracts the sparse rewrite added:
//
//  1. Equivalence — the same workload completes at the same times whether
//     the sparse engine engages (tiny threshold) or never does (huge
//     threshold).  The sparse path is an *algorithmic* change only.
//  2. Compensated accounting — after churning 10k flows through the
//     resource, total_served() matches both the per-owner sums and the
//     exact amount of work submitted to ulp-scale precision (Neumaier
//     summation; naive accumulation drifts visibly at this volume).
#include "sim/fluid_resource.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sim {
namespace {

/// Mixed capped/fair flows with staggered arrivals, mid-flight capacity
/// changes, and varying weights — every regime transition the sparse
/// engine implements.  Returns per-flow completion times.
std::vector<double> run_churn_workload(std::size_t sparse_threshold,
                                       int flows, bool* engaged = nullptr) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  res.set_sparse_threshold(sparse_threshold);
  std::vector<double> done(static_cast<std::size_t>(flows), -1.0);
  auto proc = [&](int i) -> Task<> {
    co_await sim.delay(0.003 * (i % 41));
    double cap = (i % 3 == 0) ? 0.02 : 1.0;   // a third cap-limited
    double weight = 1.0 + (i % 4);
    co_await res.consume(2.0 + (i % 7), make_share_slot(cap, weight));
    done[static_cast<std::size_t>(i)] = sim.now();
  };
  for (int i = 0; i < flows; ++i) sim.spawn(proc(i));
  // Capacity wiggles force reallocation in whatever regime is active.
  sim.schedule(0.05, [&] { res.set_capacity(60.0); });
  sim.schedule(0.11, [&] { res.set_capacity(140.0); });
  sim.schedule(0.23, [&] { res.set_capacity(100.0); });
  sim.run();
  if (engaged != nullptr) *engaged = res.sparse_activations() > 0;
  return done;
}

TEST(FluidSparse, SparseAndDenseEnginesAgreeOnCompletionTimes) {
  constexpr int kFlows = 96;
  bool sparse_engaged = false;
  std::vector<double> sparse = run_churn_workload(4, kFlows, &sparse_engaged);
  std::vector<double> dense = run_churn_workload(1u << 20, kFlows);
  ASSERT_TRUE(sparse_engaged);  // the comparison must actually compare modes
  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_GE(dense[i], 0.0) << "flow " << i << " never completed";
    // Same fluid model, different algorithm: agreement to relative 1e-9
    // (the engines accumulate rounding in different orders, so bit
    // equality is not the contract here — trace equality at the world
    // level is pinned by the bench's byte-identity gate instead).
    EXPECT_NEAR(sparse[i], dense[i], 1e-9 * dense[i] + 1e-12)
        << "flow " << i;
  }
}

TEST(FluidSparse, CompensatedServedMatchesPerOwnerSumsAfter10kFlows) {
  Simulator sim;
  FluidResource res(sim, "cpu", 1000.0);
  res.set_sparse_threshold(8);  // force the sparse engine to carry the load
  constexpr int kFlows = 10000;
  constexpr int kOwners = 16;
  std::vector<OwnerId> owners;
  owners.reserve(kOwners);
  for (int i = 0; i < kOwners; ++i) owners.push_back(sim.new_owner_id());

  double submitted = 0.0;
  auto proc = [&](int i, double amount) -> Task<> {
    co_await sim.delay(0.0007 * (i % 997));
    double cap = (i % 5 == 0) ? 0.001 : 1.0;
    double weight = 1.0 + (i % 3);
    co_await res.consume(amount, make_share_slot(cap, weight),
                         owners[static_cast<std::size_t>(i) % kOwners]);
  };
  for (int i = 0; i < kFlows; ++i) {
    double amount = 0.25 + (i % 13) * 0.125;
    submitted += amount;
    sim.spawn(proc(i, amount));
  }
  sim.run();

  ASSERT_GT(res.sparse_activations(), 0u);
  EXPECT_GT(res.boundary_crossings(), 0u);
  double owner_sum = 0.0;
  for (OwnerId owner : owners) owner_sum += res.served(owner);
  // Ulp-scale agreement at ~10k-term volume: this is what the Neumaier
  // compensation buys (a naive running sum drifts orders of magnitude
  // further after this many add/remove cycles).
  EXPECT_NEAR(res.total_served(), owner_sum, 1e-9 * owner_sum);
  EXPECT_NEAR(res.total_served(), submitted, 1e-9 * submitted);
  EXPECT_EQ(res.active_requests(), 0u);
}

TEST(FluidSparse, SlotChangedOnUnusedSlotIsCounterOnlyNoop) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  ShareSlotPtr idle_slot = make_share_slot(0.5);
  res.slot_changed(idle_slot);
  EXPECT_EQ(res.noop_slot_reallocs(), 1u);
  EXPECT_EQ(res.full_reallocs(), 0u);
  EXPECT_EQ(res.fast_reallocs(), 0u);
}

}  // namespace
}  // namespace avf::sim
