#include "sim/fluid_resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sim {
namespace {

/// Run one consume() and return its completion time.
double timed_consume(Simulator& sim, FluidResource& res, double amount,
                     ShareSlotPtr slot, OwnerId owner = kNoOwner) {
  double finished = -1.0;
  auto proc = [&]() -> Task<> {
    co_await res.consume(amount, slot, owner);
    finished = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  return finished;
}

TEST(FluidResource, SoleUncappedConsumerGetsFullCapacity) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  EXPECT_DOUBLE_EQ(timed_consume(sim, res, 50.0, make_share_slot()), 0.5);
}

TEST(FluidResource, CapLimitsRate) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  // Cap 0.25 of 100 units/s -> 25 units/s -> 100 units take 4 s.
  EXPECT_DOUBLE_EQ(timed_consume(sim, res, 100.0, make_share_slot(0.25)), 4.0);
}

TEST(FluidResource, EqualWeightsSplitEvenly) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  std::vector<double> done(2, -1.0);
  auto proc = [&](int i) -> Task<> {
    co_await res.consume(100.0, make_share_slot());
    done[i] = sim.now();
  };
  sim.spawn(proc(0));
  sim.spawn(proc(1));
  sim.run();
  // Both run at 50 units/s while sharing; both finish at t=2.
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(FluidResource, DepartureSpeedsUpRemainder) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  double small_done = -1.0, big_done = -1.0;
  auto small = [&]() -> Task<> {
    co_await res.consume(50.0, make_share_slot());
    small_done = sim.now();
  };
  auto big = [&]() -> Task<> {
    co_await res.consume(150.0, make_share_slot());
    big_done = sim.now();
  };
  sim.spawn(small());
  sim.spawn(big());
  sim.run();
  // Shared at 50/s until t=1 (small finishes with 50 done); big has 100
  // left and then runs at 100/s, finishing at t=2.
  EXPECT_DOUBLE_EQ(small_done, 1.0);
  EXPECT_DOUBLE_EQ(big_done, 2.0);
}

TEST(FluidResource, WeightsSplitProportionally) {
  Simulator sim;
  FluidResource res(sim, "cpu", 90.0);
  double a_done = -1.0, b_done = -1.0;
  auto a = [&]() -> Task<> {
    co_await res.consume(60.0, make_share_slot(1.0, 2.0));  // weight 2
    a_done = sim.now();
  };
  auto b = [&]() -> Task<> {
    co_await res.consume(60.0, make_share_slot(1.0, 1.0));  // weight 1
    b_done = sim.now();
  };
  sim.spawn(a());
  sim.spawn(b());
  sim.run();
  // a: 60/s, b: 30/s. a finishes at t=1 (60 done). b then has 30 left at
  // 90/s -> t = 1 + 30/90.
  EXPECT_DOUBLE_EQ(a_done, 1.0);
  EXPECT_NEAR(b_done, 1.0 + 30.0 / 90.0, 1e-9);
}

TEST(FluidResource, UnderloadedCapsGiveExactShares) {
  // The paper's §5.1 guarantee: under-loaded -> everyone gets exactly cap.
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  double a_done = -1.0, b_done = -1.0;
  auto a = [&]() -> Task<> {
    co_await res.consume(40.0, make_share_slot(0.4));
    a_done = sim.now();
  };
  auto b = [&]() -> Task<> {
    co_await res.consume(20.0, make_share_slot(0.4));
    b_done = sim.now();
  };
  sim.spawn(a());
  sim.spawn(b());
  sim.run();
  EXPECT_DOUBLE_EQ(a_done, 1.0);  // exactly 40 units/s
  EXPECT_DOUBLE_EQ(b_done, 0.5);  // exactly 40 units/s
}

TEST(FluidResource, CapChangeMidFlightReallocates) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  ShareSlotPtr slot = make_share_slot(1.0);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await res.consume(100.0, slot);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.schedule(0.5, [&] {
    slot->cap = 0.25;  // after 50 served at 100/s, drop to 25/s
    res.reallocate();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.5 + 50.0 / 25.0);
}

TEST(FluidResource, ZeroCapStallsUntilRaised) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  ShareSlotPtr slot = make_share_slot(0.0);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await res.consume(100.0, slot);
    done = sim.now();
  };
  sim.spawn(proc());
  sim.schedule(3.0, [&] {
    slot->cap = 1.0;
    res.reallocate();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 4.0);
}

TEST(FluidResource, CapacityChangeMidFlight) {
  Simulator sim;
  FluidResource res(sim, "net", 100.0);
  double done = -1.0;
  auto proc = [&]() -> Task<> {
    co_await res.consume(100.0, make_share_slot());
    done = sim.now();
  };
  sim.spawn(proc());
  sim.schedule(0.5, [&] { res.set_capacity(10.0); });
  sim.run();
  // 50 served in first 0.5 s; remaining 50 at 10/s -> 5 s more.
  EXPECT_DOUBLE_EQ(done, 5.5);
}

TEST(FluidResource, ZeroAmountCompletesImmediately) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  EXPECT_DOUBLE_EQ(timed_consume(sim, res, 0.0, make_share_slot()), 0.0);
}

TEST(FluidResource, ServedAccounting) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  OwnerId owner = sim.new_owner_id();
  auto proc = [&]() -> Task<> {
    co_await res.consume(30.0, make_share_slot(), owner);
    co_await res.consume(20.0, make_share_slot(), owner);
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_NEAR(res.served(owner), 50.0, 1e-6);
  EXPECT_NEAR(res.total_served(), 50.0, 1e-6);
}

TEST(FluidResource, ServedSeesInFlightProgress) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  OwnerId owner = sim.new_owner_id();
  auto proc = [&]() -> Task<> {
    co_await res.consume(100.0, make_share_slot(), owner);
  };
  sim.spawn(proc());
  double observed = -1.0;
  sim.schedule(0.25, [&] { observed = res.served(owner); });
  sim.run();
  EXPECT_NEAR(observed, 25.0, 1e-6);
}

TEST(FluidResource, RejectsNonPositiveCapacity) {
  Simulator sim;
  EXPECT_THROW(FluidResource(sim, "x", 0.0), std::invalid_argument);
  FluidResource res(sim, "ok", 1.0);
  EXPECT_THROW(res.set_capacity(-5.0), std::invalid_argument);
}

TEST(FluidResource, RejectsNullSlotAndBadWeight) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  auto bad_slot = [&]() -> Task<> {
    co_await res.consume(1.0, nullptr);
  };
  sim.spawn(bad_slot());
  EXPECT_THROW(sim.run(), std::invalid_argument);

  Simulator sim2;
  FluidResource res2(sim2, "cpu", 100.0);
  auto bad_weight = [&]() -> Task<> {
    co_await res2.consume(1.0, make_share_slot(1.0, 0.0));
  };
  sim2.spawn(bad_weight());
  EXPECT_THROW(sim2.run(), std::invalid_argument);
}

// Property sweep: under-loaded cap configurations always yield exact-share
// completion times (the testbed's core modeling guarantee).
class FluidCapSweep : public ::testing::TestWithParam<double> {};

TEST_P(FluidCapSweep, ExecutionTimeScalesInverselyWithCap) {
  double cap = GetParam();
  Simulator sim;
  FluidResource res(sim, "cpu", 450e6);
  double work = 450e6;  // 1 second at full speed
  double t = timed_consume(sim, res, work, make_share_slot(cap));
  EXPECT_NEAR(t, 1.0 / cap, 1e-9 / cap);
}

INSTANTIATE_TEST_SUITE_P(CapGrid, FluidCapSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9, 1.0));


// -- incremental reallocation counters -----------------------------------

TEST(FluidResource, CappedArrivalsAndDeparturesUseFastPath) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  // Four capped flows summing to 0.8 of capacity: every arrival and every
  // departure stays in the under-loaded regime, so no full water-filling
  // pass ever runs.
  std::vector<double> done(4, -1.0);
  auto proc = [&](int i) -> Task<> {
    co_await res.consume(20.0, make_share_slot(0.2));
    done[i] = sim.now();
  };
  for (int i = 0; i < 4; ++i) sim.spawn(proc(i));
  sim.run();
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(done[i], 1.0);
  EXPECT_EQ(res.full_reallocs(), 0u);
  EXPECT_EQ(res.fast_reallocs(), 8u);  // 4 arrivals + 4 departures
  // Only each flow's own initial rate assignment scheduled an event.
  EXPECT_EQ(res.rate_rescales(), 4u);
  EXPECT_GT(res.flows_skipped(), 0u);
}

TEST(FluidResource, CappedChurnDoesNotRescaleOtherFlows) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  double a_done = -1.0, b_done = -1.0;
  auto a = [&]() -> Task<> {
    co_await res.consume(60.0, make_share_slot(0.3));  // 30/s -> t=2
    a_done = sim.now();
  };
  auto b = [&]() -> Task<> {
    co_await res.consume(15.0, make_share_slot(0.3));  // 30/s -> 0.5 s
    b_done = sim.now();
  };
  sim.spawn(a());
  sim.schedule(0.5, [&] { sim.spawn(b()); });
  sim.run();
  // B's arrival and departure left A's rate (and completion event) alone.
  EXPECT_DOUBLE_EQ(a_done, 2.0);
  EXPECT_DOUBLE_EQ(b_done, 1.0);
  EXPECT_EQ(res.full_reallocs(), 0u);
  EXPECT_EQ(res.fast_reallocs(), 4u);
  EXPECT_EQ(res.rate_rescales(), 2u);  // one initial assignment per flow
  EXPECT_EQ(res.flows_skipped(), 2u);  // A skipped at B's arrival and at
                                       // B's departure
}

TEST(FluidResource, FullPassKeepsBitIdenticalRates) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  std::vector<double> done(2, -1.0);
  auto proc = [&](int i) -> Task<> {
    co_await res.consume(100.0, make_share_slot());  // uncapped: 50/s each
    done[i] = sim.now();
  };
  sim.spawn(proc(0));
  sim.spawn(proc(1));
  // A gratuitous reallocate() mid-flight recomputes the same 50/50 split;
  // both flows must keep their pending completion events untouched.
  sim.schedule(1.0, [&] { res.reallocate(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_GE(res.rate_keeps(), 2u);
}

TEST(FluidResource, OversubscribedFlowsTakeFullPass) {
  Simulator sim;
  FluidResource res(sim, "cpu", 100.0);
  std::vector<double> done(2, -1.0);
  auto proc = [&](int i) -> Task<> {
    co_await res.consume(100.0, make_share_slot(0.8));
    done[i] = sim.now();
  };
  sim.spawn(proc(0));
  sim.spawn(proc(1));
  sim.run();
  // Cap rates sum to 1.6x capacity: the second arrival cannot take the
  // fast path, and the shared 50/50 regime is not "all at cap".
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_GE(res.full_reallocs(), 1u);
}

}  // namespace
}  // namespace avf::sim
