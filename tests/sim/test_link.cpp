#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sim {
namespace {

Message make_message(int kind, std::size_t payload_bytes) {
  Message m;
  m.kind = kind;
  m.payload.assign(payload_bytes, 0xAB);
  return m;
}

TEST(Link, TransferTimeIsLatencyPlusSerialization) {
  Simulator sim;
  Link link(sim, "l", /*bandwidth=*/1000.0, /*latency=*/0.1);
  Channel ch(link);
  double delivered = -1.0;
  auto sender = [&]() -> Task<> {
    co_await ch.a().send(make_message(1, 1000 - kMessageHeaderBytes));
  };
  auto receiver = [&]() -> Task<> {
    Message m = co_await ch.b().recv();
    delivered = sim.now();
    EXPECT_EQ(m.kind, 1);
  };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.run();
  // 1000 wire bytes at 1000 B/s = 1 s serialization + 0.1 s latency.
  EXPECT_NEAR(delivered, 1.1, 1e-9);
}

TEST(Link, DeliveryPreservesSendOrder) {
  Simulator sim;
  Link link(sim, "l", 1e6, 0.01);
  Channel ch(link);
  std::vector<int> got;
  auto sender = [&]() -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await ch.a().send(make_message(i, 100));
    }
  };
  auto receiver = [&]() -> Task<> {
    for (int i = 0; i < 5; ++i) {
      Message m = co_await ch.b().recv();
      got.push_back(m.kind);
    }
  };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Link, FullDuplexDirectionsAreIndependent) {
  Simulator sim;
  Link link(sim, "l", 1000.0, 0.0);
  Channel ch(link);
  double a_done = -1.0, b_done = -1.0;
  auto a_to_b = [&]() -> Task<> {
    co_await ch.a().send(make_message(1, 1000 - kMessageHeaderBytes));
    a_done = sim.now();
  };
  auto b_to_a = [&]() -> Task<> {
    co_await ch.b().send(make_message(2, 1000 - kMessageHeaderBytes));
    b_done = sim.now();
  };
  sim.spawn(a_to_b());
  sim.spawn(b_to_a());
  sim.run();
  // Full duplex: both directions serialize concurrently at full bandwidth.
  EXPECT_NEAR(a_done, 1.0, 1e-9);
  EXPECT_NEAR(b_done, 1.0, 1e-9);
}

TEST(Link, ShareSlotThrottlesSender) {
  Simulator sim;
  Link link(sim, "l", 1000.0, 0.0);
  Channel ch(link);
  ch.a().share_slot()->cap = 0.1;  // 100 B/s
  double sent = -1.0;
  auto sender = [&]() -> Task<> {
    co_await ch.a().send(make_message(1, 1000 - kMessageHeaderBytes));
    sent = sim.now();
  };
  sim.spawn(sender());
  sim.run();
  EXPECT_NEAR(sent, 10.0, 1e-9);
}

TEST(Link, BandwidthChangeMidTransfer) {
  Simulator sim;
  Link link(sim, "l", 1000.0, 0.0);
  Channel ch(link);
  double delivered = -1.0;
  auto sender = [&]() -> Task<> {
    co_await ch.a().send(make_message(1, 1000 - kMessageHeaderBytes));
  };
  auto receiver = [&]() -> Task<> {
    (void)co_await ch.b().recv();
    delivered = sim.now();
  };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.schedule(0.5, [&] { link.set_bandwidth(100.0); });
  sim.run();
  // 500 bytes in 0.5 s, then 500 bytes at 100 B/s = 5 s.
  EXPECT_NEAR(delivered, 5.5, 1e-9);
}

TEST(Link, ByteCountersTrackTraffic) {
  Simulator sim;
  Link link(sim, "l", 1e6, 0.0);
  Channel ch(link);
  auto sender = [&]() -> Task<> {
    co_await ch.a().send(make_message(1, 100));
    co_await ch.a().send(make_message(2, 200));
  };
  auto receiver = [&]() -> Task<> {
    (void)co_await ch.b().recv();
    (void)co_await ch.b().recv();
  };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.run();
  std::uint64_t expected = 300 + 2 * kMessageHeaderBytes;
  EXPECT_EQ(ch.a().bytes_sent(), expected);
  EXPECT_EQ(ch.b().bytes_received(), expected);
}

TEST(Network, BuildsHostsLinksChannels) {
  Simulator sim;
  Network net(sim);
  Host& client = net.add_host("client", 450e6, 128u << 20);
  Host& server = net.add_host("server", 450e6, 128u << 20);
  Link& link = net.connect(client, server, 12.5e6, 0.001);
  Channel& ch = net.open_channel(link);
  EXPECT_EQ(&net.host("client"), &client);
  EXPECT_THROW(net.host("nope"), std::out_of_range);
  EXPECT_THROW(net.add_host("client", 1.0, 1), std::invalid_argument);
  EXPECT_EQ(net.links().size(), 1u);
  (void)ch;
}

TEST(Link, MessageTimestamps) {
  Simulator sim;
  Link link(sim, "l", 1000.0, 0.25);
  Channel ch(link);
  Message received;
  auto sender = [&]() -> Task<> {
    co_await sim.delay(1.0);
    co_await ch.a().send(make_message(1, 1000 - kMessageHeaderBytes));
  };
  auto receiver = [&]() -> Task<> { received = co_await ch.b().recv(); };
  sim.spawn(receiver());
  sim.spawn(sender());
  sim.run();
  EXPECT_DOUBLE_EQ(received.sent_at, 1.0);
  EXPECT_NEAR(received.delivered_at, 2.25, 1e-9);
}

}  // namespace
}  // namespace avf::sim
