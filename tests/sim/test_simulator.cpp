#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

namespace avf::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  double inner_time = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule(0.5, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_time, 1.5);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, CancelFromEventAtSameTimestamp) {
  // Equal-timestamp events run in schedule order, so an earlier event can
  // cancel a later one the queue has already committed to the same time.
  Simulator sim;
  bool fired = false;
  EventHandle victim;
  sim.schedule(1.0, [&] { victim.cancel(); });
  victim = sim.schedule(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(victim.pending());
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, DoubleCancelIsNoop) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  h.cancel();
  h.cancel();  // second cancel of a pending-then-cancelled event
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule(1.0, [&] { fired.push_back(1.0); });
  sim.schedule(2.0, [&] { fired.push_back(2.0); });
  sim.schedule(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 3.0);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [] {});
  EventHandle h = sim.schedule(1.0, [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.events_processed(), 10u);  // cancelled event not counted
}

TEST(Simulator, OwnerIdsAreUnique) {
  Simulator sim;
  OwnerId a = sim.new_owner_id();
  OwnerId b = sim.new_owner_id();
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoOwner);
}

// A spawned process still suspended when the simulator dies must have its
// frame (and the frames of children it is awaiting) destroyed — locals'
// destructors run, and LeakSanitizer sees no leak.  Regression: detached
// frames used to be reachable only through the event queue and leaked when
// a run ended with processes mid-await.
TEST(Simulator, AbandonedSpawnedProcessesAreReclaimed) {
  auto cleaned = std::make_shared<int>(0);
  struct Bump {
    std::shared_ptr<int> n;
    ~Bump() { ++*n; }
  };
  {
    Simulator sim;
    auto child = [](Simulator& s, std::shared_ptr<int> n) -> Task<> {
      Bump b{std::move(n)};
      co_await s.delay(100.0);  // never reached before teardown
    };
    auto parent = [&child](Simulator& s, std::shared_ptr<int> n) -> Task<> {
      Bump b{n};
      co_await child(s, std::move(n));
    };
    sim.spawn(parent(sim, cleaned));
    sim.spawn(child(sim, cleaned));
    sim.run_until(1.0);  // both processes now parked on delay(100)
    EXPECT_EQ(*cleaned, 0);
  }
  EXPECT_EQ(*cleaned, 3);  // parent + its child + the directly spawned child
}

// Teardown of abandoned frames must run in spawn order.  Regression: the
// tracker used to be iterated directly — a hash map keyed on frame
// *addresses*, so the destruction order (observable through locals'
// destructors, which may log) varied with ASLR from run to run.
TEST(Simulator, AbandonedProcessesDestroyedInSpawnOrder) {
  std::vector<int> order;
  struct Tracer {
    std::vector<int>* order;
    int id;
    ~Tracer() { order->push_back(id); }
  };
  {
    Simulator sim;
    auto forever = [](Simulator& s, std::vector<int>& order,
                      int id) -> Task<> {
      Tracer t{&order, id};
      co_await s.delay(1e9);  // never reached before teardown
    };
    for (int i = 0; i < 16; ++i) sim.spawn(forever(sim, order, i));
    sim.run_until(1.0);  // every process is parked on its long delay
    EXPECT_TRUE(order.empty());
  }
  std::vector<int> expected(16);
  for (int i = 0; i < 16; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
}

TEST(Simulator, MassCancellationKeepsQueueBoundedAndOrdered) {
  // Regression for the ladder queue's tombstone handling: 100k
  // schedule/cancel cycles must not accumulate dead entries (the seed
  // implementation kept every cancelled event until its timestamp
  // drained), and the survivors must still fire in exact (time, seq)
  // order.
  Simulator sim;
  std::vector<double> fired;
  std::vector<EventHandle> survivors;
  std::size_t worst_overhead = 0;
  constexpr int kRounds = 100;
  constexpr int kPerRound = 1000;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EventHandle> handles;
    handles.reserve(kPerRound);
    for (int i = 0; i < kPerRound; ++i) {
      // Mixed horizons so both the near heap and the far tier see
      // cancellations.
      double delay = (i % 97 + 1) * (i % 2 ? 0.001 : 1.0);
      double at = sim.now() + delay;
      handles.push_back(sim.schedule(delay, [&fired, at] {
        fired.push_back(at);
      }));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 100 != 0) {
        handles[i].cancel();
      } else {
        survivors.push_back(handles[i]);
      }
    }
    // Tombstones may never dominate: compaction keeps physical entries
    // within 2x the live count (+1 for the in-flight rounding).
    ASSERT_LE(sim.queue_entries(), 2 * sim.queued_events() + 1);
    worst_overhead = std::max(worst_overhead, sim.queue_entries());
    sim.run_until(sim.now() + 0.005);
  }
  EXPECT_GT(sim.compactions(), 0u);   // near-heap tombstone reclamation ran
  EXPECT_GT(sim.far_removals(), 0u);  // far-tier O(1) removals ran
  // 100k scheduled, 99k cancelled: the queue never held anywhere near the
  // cancelled volume — only ~2x the 1000 surviving events.
  EXPECT_LE(worst_overhead, 2u * kRounds * (kPerRound / 100) + 16u);
  sim.run();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  std::size_t still_pending = 0;
  for (EventHandle& h : survivors) still_pending += h.pending() ? 1 : 0;
  EXPECT_EQ(still_pending, 0u);
  EXPECT_EQ(fired.size(), survivors.size());
  EXPECT_EQ(sim.queue_entries(), 0u);
}

TEST(Simulator, CompletedSpawnedProcessesAreNotDoubleDestroyed) {
  Simulator sim;
  int runs = 0;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulator& s, int& r) -> Task<> {
      co_await s.yield();
      ++r;
    }(sim, runs));
  }
  sim.run();
  EXPECT_EQ(runs, 4);  // frames self-destroyed at final suspend; the
                       // destructor must find nothing left to reclaim
}

}  // namespace
}  // namespace avf::sim
