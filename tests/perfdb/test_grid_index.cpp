// Tests for the prediction fast path: GridIndex bracketing/corner lookup
// must be bit-for-bit identical to the reference implementation, and the
// PredictionCache must memoize, invalidate on mutation, and stay bounded.
#include <gtest/gtest.h>

#include <sstream>

#include "perfdb/database.hpp"
#include "perfdb/prediction_cache.hpp"
#include "util/rng.hpp"

namespace avf::perfdb {
namespace {

using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("transmit_time", Direction::kLowerBetter);
  s.add("response_time", Direction::kLowerBetter);
  s.add("resolution", Direction::kHigherBetter);
  return s;
}

ConfigPoint cfg(int mode) {
  ConfigPoint p;
  p.set("mode", mode);
  return p;
}

QosVector q3(double a, double b, double c) {
  QosVector q;
  q.set("transmit_time", a);
  q.set("response_time", b);
  q.set("resolution", c);
  return q;
}

/// configs x grid x grid database with mildly irregular values.
PerfDatabase build_db(int configs, int grid) {
  PerfDatabase db({"cpu_share", "net_bps"}, schema());
  util::SplitMix64 rng(42);
  for (int c = 0; c < configs; ++c) {
    for (int i = 0; i < grid; ++i) {
      for (int j = 0; j < grid; ++j) {
        double cpu = (i + 1.0) / grid;
        double bw = (j + 1.0) * 100e3;
        db.insert(cfg(c), {cpu, bw},
                  q3(10.0 / cpu + 1e6 / bw + rng.next_double(),
                     1.0 / cpu + rng.next_double(), 4.0 - c % 3));
      }
    }
  }
  return db;
}

TEST(GridIndex, FastPathMatchesReferenceBitForBit) {
  // Acceptance gate: indexed interpolation/nearest must return *identical*
  // QosVectors (exact double equality via QosVector::operator==) to the
  // seed per-call std::set implementation across exact grid points,
  // interior points, hull-exterior points, and both lookup modes.
  PerfDatabase db = build_db(8, 6);
  util::SplitMix64 rng(7);
  for (int c = 0; c < 8; ++c) {
    for (int trial = 0; trial < 200; ++trial) {
      double cpu = rng.uniform(-0.2, 1.4);       // extends outside the hull
      double bw = rng.uniform(-50e3, 800e3);
      ResourcePoint at{cpu, bw};
      for (Lookup mode : {Lookup::kInterpolate, Lookup::kNearest}) {
        auto fast = db.predict_uncached(cfg(c), at, mode);
        auto slow = db.predict_reference(cfg(c), at, mode);
        ASSERT_EQ(fast.has_value(), slow.has_value());
        if (fast) {
          EXPECT_EQ(*fast, *slow) << "mode=" << static_cast<int>(mode);
        }
      }
    }
    // Exact grid points too.
    for (int i = 0; i < 6; ++i) {
      ResourcePoint at{(i + 1.0) / 6, (i + 1.0) * 100e3};
      EXPECT_EQ(*db.predict_uncached(cfg(c), at), *db.predict_reference(cfg(c), at));
    }
  }
}

TEST(GridIndex, IncompleteGridMatchesReference) {
  // Knock holes into the grid so interpolation hits incomplete cells and
  // falls back to nearest; both paths must agree on every query.
  PerfDatabase db({"cpu", "bw"}, schema());
  util::SplitMix64 rng(99);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if ((i * 5 + j) % 3 == 0) continue;  // hole
      db.insert(cfg(0), {i * 0.25, j * 50e3}, q3(i + j, i * j + 1.0, 4.0));
    }
  }
  for (int trial = 0; trial < 300; ++trial) {
    ResourcePoint at{rng.uniform(-0.1, 1.2), rng.uniform(-10e3, 250e3)};
    auto fast = db.predict_uncached(cfg(0), at);
    auto slow = db.predict_reference(cfg(0), at);
    ASSERT_TRUE(fast && slow);
    EXPECT_EQ(*fast, *slow);
  }
}

TEST(GridIndex, SparseScatterMatchesReference) {
  // Scattered (non-grid) samples force the index's sparse corner fallback
  // and heavy nearest use.
  PerfDatabase db({"cpu", "bw", "mem"}, schema());
  util::SplitMix64 rng(123);
  for (int s = 0; s < 64; ++s) {
    db.insert(cfg(0),
              {rng.next_double(), rng.uniform(1e3, 1e6), rng.uniform(0, 512)},
              q3(rng.next_double(), rng.next_double(), 4.0));
  }
  for (int trial = 0; trial < 200; ++trial) {
    ResourcePoint at{rng.next_double(), rng.uniform(1e3, 1e6),
                     rng.uniform(0, 512)};
    for (Lookup mode : {Lookup::kInterpolate, Lookup::kNearest}) {
      auto fast = db.predict_uncached(cfg(0), at, mode);
      auto slow = db.predict_reference(cfg(0), at, mode);
      ASSERT_TRUE(fast && slow);
      EXPECT_EQ(*fast, *slow);
    }
  }
}

TEST(GridIndex, IndexBuiltOncePerConfigUntilMutation) {
  PerfDatabase db = build_db(4, 4);
  db.reset_prediction_stats();
  for (int trial = 0; trial < 50; ++trial) {
    for (int c = 0; c < 4; ++c) {
      (void)db.predict_uncached(cfg(c), {0.4, 150e3});
    }
  }
  EXPECT_EQ(db.prediction_stats().index_rebuilds, 4u);  // one per config

  // A brand-new sample point invalidates only that config's index.
  db.insert(cfg(1), {0.99, 999e3}, q3(1, 1, 4));
  for (int c = 0; c < 4; ++c) (void)db.predict_uncached(cfg(c), {0.4, 150e3});
  EXPECT_EQ(db.prediction_stats().index_rebuilds, 5u);

  // Overwriting an existing point keeps the index but the new value is
  // served (stable node pointers updated in place).
  db.insert(cfg(1), {0.99, 999e3}, q3(77, 1, 4));
  auto p = db.predict_uncached(cfg(1), {0.99, 999e3});
  EXPECT_DOUBLE_EQ(p->get("transmit_time"), 77.0);
  EXPECT_EQ(db.prediction_stats().index_rebuilds, 5u);
}

TEST(PredictionCacheTest, RepeatedQueriesHit) {
  PerfDatabase db = build_db(4, 4);
  db.reset_prediction_stats();
  ResourcePoint at{0.4, 150e3};
  auto first = db.predict(cfg(0), at);
  auto second = db.predict(cfg(0), at);
  EXPECT_EQ(*first, *second);
  auto stats = db.prediction_stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  // Cached result is bit-for-bit the uncached/reference result for the
  // repeated point.
  EXPECT_EQ(*second, *db.predict_reference(cfg(0), at));
}

TEST(PredictionCacheTest, InsertInvalidatesOnlyThatConfig) {
  PerfDatabase db = build_db(2, 4);
  ResourcePoint at{0.4, 150e3};
  (void)db.predict(cfg(0), at);
  (void)db.predict(cfg(1), at);
  db.insert(cfg(0), {0.4, 150e3}, q3(1234.0, 1.0, 4.0));
  // Config 0 must be recomputed (fresh value), config 1 still hits.
  db.reset_prediction_stats();
  auto p0 = db.predict(cfg(0), at);
  EXPECT_DOUBLE_EQ(p0->get("transmit_time"), 1234.0);
  auto s1 = db.prediction_stats();
  EXPECT_EQ(s1.cache_hits, 0u);
  (void)db.predict(cfg(1), at);
  EXPECT_EQ(db.prediction_stats().cache_hits, 1u);
}

TEST(PredictionCacheTest, EraseConfigInvalidates) {
  PerfDatabase db = build_db(2, 4);
  ResourcePoint at{0.4, 150e3};
  ASSERT_TRUE(db.predict(cfg(0), at).has_value());
  db.erase_config(cfg(0));
  EXPECT_FALSE(db.predict(cfg(0), at).has_value());
}

TEST(PredictionCacheTest, ModeIsPartOfTheKey) {
  PerfDatabase db = build_db(1, 4);
  ResourcePoint at{0.37, 170e3};
  auto inter = db.predict(cfg(0), at, Lookup::kInterpolate);
  auto near = db.predict(cfg(0), at, Lookup::kNearest);
  EXPECT_EQ(*inter, *db.predict_reference(cfg(0), at, Lookup::kInterpolate));
  EXPECT_EQ(*near, *db.predict_reference(cfg(0), at, Lookup::kNearest));
}

TEST(PredictionCacheTest, BoundedSizeEvicts) {
  PredictionCache cache(8);
  QosVector v;
  v.set("m", 1.0);
  for (int i = 0; i < 100; ++i) {
    cache.store("cfg", {static_cast<double>(i)}, Lookup::kInterpolate, v);
    EXPECT_LE(cache.size(), 8u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(PredictionCacheTest, QuantizationBucketsNearbyPoints) {
  // Points within ~2^-20 relative distance share a bucket; clearly distinct
  // points do not.
  EXPECT_EQ(PredictionCache::quantize(0.37),
            PredictionCache::quantize(0.37 * (1.0 + 1e-9)));
  EXPECT_NE(PredictionCache::quantize(0.37), PredictionCache::quantize(0.38));
  EXPECT_NE(PredictionCache::quantize(0.37), PredictionCache::quantize(-0.37));
  EXPECT_NE(PredictionCache::quantize(0.37), PredictionCache::quantize(0.74));
  EXPECT_EQ(PredictionCache::quantize(0.0), PredictionCache::quantize(0.0));
}

TEST(PredictionCacheTest, LoadedDatabasePredictsThroughIndex) {
  // Round-trip through save/load, then verify the rebuilt database's fast
  // path still matches its own reference path.
  PerfDatabase db = build_db(3, 5);
  std::stringstream buffer;
  db.save(buffer);
  PerfDatabase loaded = PerfDatabase::load(buffer);
  util::SplitMix64 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    ResourcePoint at{rng.next_double(), rng.uniform(50e3, 700e3)};
    for (int c = 0; c < 3; ++c) {
      auto fast = loaded.predict_uncached(cfg(c), at);
      auto slow = loaded.predict_reference(cfg(c), at);
      ASSERT_TRUE(fast && slow);
      EXPECT_EQ(*fast, *slow);
    }
  }
}

TEST(PredictionCacheTest, NeverServesStaleValuesAcrossRandomMutation) {
  // Property: under any interleaving of inserts and predictions, the cached
  // path must agree with an uncached prediction made at the same moment —
  // i.e. epoch invalidation never lets a pre-insert value survive a
  // mutation of the config it belongs to.
  PerfDatabase db = build_db(/*configs=*/3, /*grid=*/4);
  util::SplitMix64 rng(7);
  auto random_point = [&] {
    return ResourcePoint{rng.uniform(0.1, 1.2), rng.uniform(50e3, 450e3)};
  };
  for (int step = 0; step < 500; ++step) {
    const ConfigPoint config = cfg(static_cast<int>(rng.next_below(3)));
    if (rng.next_below(4) == 0) {
      // Overwrite a grid sample with a fresh value; any cached prediction
      // bracketing it is now stale.
      const double cpu = (static_cast<double>(rng.next_below(4)) + 1.0) / 4.0;
      const double bw = (static_cast<double>(rng.next_below(4)) + 1.0) * 100e3;
      db.insert(config, {cpu, bw},
                q3(rng.next_double() * 20.0, rng.next_double(), 4.0));
    }
    const ResourcePoint at = random_point();
    const auto cached = db.predict(config, at);
    const auto fresh = db.predict_uncached(config, at);
    ASSERT_EQ(cached.has_value(), fresh.has_value()) << "step " << step;
    if (cached) {
      for (const char* metric :
           {"transmit_time", "response_time", "resolution"}) {
        ASSERT_EQ(cached->get(metric), fresh->get(metric))
            << "stale cache value for " << metric << " at step " << step;
      }
    }
    // Re-query the same point to force the memoized entry into play too.
    const auto memoized = db.predict(config, at);
    ASSERT_TRUE(memoized.has_value() == cached.has_value());
  }
}

}  // namespace
}  // namespace avf::perfdb
