// Provenance flags on stored samples: adaptive profiling marks
// tree-predicted cells kPredicted, and the flag must survive save()/load()
// without disturbing the historic CSV format of all-measured databases.
#include "perfdb/database.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "tunable/config.hpp"
#include "tunable/qos.hpp"

namespace avf::perfdb {
namespace {

using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  s.add("quality", Direction::kHigherBetter);
  return s;
}

ConfigPoint config_q(int q) {
  ConfigPoint c;
  c.set("q", q);
  return c;
}

QosVector qos(double t, double quality) {
  QosVector q;
  q.set("time", t);
  q.set("quality", quality);
  return q;
}

std::string save_bytes(const PerfDatabase& db) {
  std::ostringstream out;
  db.save(out);
  return out.str();
}

PerfDatabase roundtrip(const PerfDatabase& db) {
  std::stringstream io;
  db.save(io);
  return PerfDatabase::load(io);
}

TEST(Provenance, InsertDefaultsToMeasured) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0));
  EXPECT_EQ(db.predicted_count(), 0u);
  ASSERT_TRUE(db.provenance(config_q(1), {0.5}).has_value());
  EXPECT_EQ(*db.provenance(config_q(1), {0.5}), Provenance::kMeasured);
  EXPECT_FALSE(db.provenance(config_q(1), {0.75}).has_value());
  EXPECT_FALSE(db.provenance(config_q(9), {0.5}).has_value());
}

TEST(Provenance, AllMeasuredDatabaseKeepsHistoricColumns) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0));
  db.insert(config_q(2), {0.5}, qos(2.0, 3.0));
  EXPECT_EQ(save_bytes(db).find("origin"), std::string::npos);
  // ...and the round-trip through the historic format stays byte-exact.
  EXPECT_EQ(save_bytes(roundtrip(db)), save_bytes(db));
}

TEST(Provenance, PredictedCellsRoundTripThroughSaveLoad) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0));
  db.insert(config_q(1), {1.0}, qos(0.5, 2.0), Provenance::kPredicted);
  db.insert(config_q(2), {0.5}, qos(2.0, 3.0), Provenance::kPredicted);
  EXPECT_EQ(db.predicted_count(), 2u);
  EXPECT_NE(save_bytes(db).find("origin"), std::string::npos);

  PerfDatabase loaded = roundtrip(db);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.predicted_count(), 2u);
  EXPECT_EQ(*loaded.provenance(config_q(1), {0.5}), Provenance::kMeasured);
  EXPECT_EQ(*loaded.provenance(config_q(1), {1.0}), Provenance::kPredicted);
  EXPECT_EQ(*loaded.provenance(config_q(2), {0.5}), Provenance::kPredicted);
  EXPECT_EQ(save_bytes(loaded), save_bytes(db));
}

TEST(Provenance, ReinsertOverwritesProvenanceBothWays) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0), Provenance::kPredicted);
  EXPECT_EQ(db.predicted_count(), 1u);
  // A later sandbox measurement of the same cell promotes it...
  db.insert(config_q(1), {0.5}, qos(1.1, 2.0));
  EXPECT_EQ(db.predicted_count(), 0u);
  EXPECT_EQ(*db.provenance(config_q(1), {0.5}), Provenance::kMeasured);
  // ...and the origin column disappears with the last predicted cell.
  EXPECT_EQ(save_bytes(db).find("origin"), std::string::npos);
  // The reverse direction (demotion) also has to keep the counter honest.
  db.insert(config_q(1), {0.5}, qos(1.2, 2.0), Provenance::kPredicted);
  EXPECT_EQ(db.predicted_count(), 1u);
}

TEST(Provenance, AllPredictedDistinguishesConfigs) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0), Provenance::kPredicted);
  db.insert(config_q(1), {1.0}, qos(0.5, 2.0), Provenance::kPredicted);
  db.insert(config_q(2), {0.5}, qos(2.0, 3.0), Provenance::kPredicted);
  db.insert(config_q(2), {1.0}, qos(1.5, 3.0));
  EXPECT_TRUE(db.all_predicted(config_q(1)));
  EXPECT_FALSE(db.all_predicted(config_q(2)));  // one measured cell
  EXPECT_FALSE(db.all_predicted(config_q(9)));  // absent
}

TEST(Provenance, RecordsCarryProvenance) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0));
  db.insert(config_q(1), {1.0}, qos(0.5, 2.0), Provenance::kPredicted);
  std::size_t predicted = 0;
  for (const PerfRecord& r : db.records(config_q(1))) {
    if (r.provenance == Provenance::kPredicted) ++predicted;
  }
  EXPECT_EQ(predicted, 1u);
}

TEST(Provenance, EraseConfigAndCopiesKeepTheCounter) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0), Provenance::kPredicted);
  db.insert(config_q(2), {0.5}, qos(2.0, 3.0), Provenance::kPredicted);
  PerfDatabase copy = db;
  EXPECT_EQ(copy.predicted_count(), 2u);
  db.erase_config(config_q(1));
  EXPECT_EQ(db.predicted_count(), 1u);
  EXPECT_EQ(copy.predicted_count(), 2u);
  PerfDatabase moved = std::move(copy);
  EXPECT_EQ(moved.predicted_count(), 2u);
}

TEST(Provenance, UnknownOriginTokenIsALoadError) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(config_q(1), {0.5}, qos(1.0, 2.0), Provenance::kPredicted);
  std::string csv = save_bytes(db);
  const std::string needle = "predicted";
  const auto at = csv.rfind(needle);  // the data row, not the header
  ASSERT_NE(at, std::string::npos);
  csv.replace(at, needle.size(), "guessed");
  std::istringstream in(csv);
  EXPECT_THROW(PerfDatabase::load(in), std::runtime_error);
}

}  // namespace
}  // namespace avf::perfdb
