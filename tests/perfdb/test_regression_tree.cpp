// The regression tree behind adaptive profiling: variance-reduction splits
// with std::tie total-order tie-breaks.  The split sequence is a pure
// function of the training set — pinned here as a golden trace, the same
// discipline the parallel driver uses for its save() bytes.
#include "perfdb/regression_tree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace avf::perfdb {
namespace {

RegressionTree::Options shallow() {
  RegressionTree::Options options;
  options.min_leaf = 1;
  options.max_depth = 8;
  return options;
}

TEST(RegressionTree, RejectsEmptyAndRaggedTrainingSets) {
  RegressionTree tree;
  EXPECT_THROW(tree.fit({}, shallow()), std::invalid_argument);
  std::vector<TreeSample> ragged{{{1.0, 2.0}, 0.0}, {{1.0}, 0.0}};
  EXPECT_THROW(tree.fit(ragged, shallow()), std::invalid_argument);
  EXPECT_FALSE(tree.fitted());
  EXPECT_THROW(tree.predict({1.0}), std::logic_error);
}

TEST(RegressionTree, ConstantValuesStayASingleLeaf) {
  std::vector<TreeSample> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back({{static_cast<double>(i)}, 4.25});
  }
  RegressionTree tree;
  tree.fit(samples, shallow());
  EXPECT_TRUE(tree.split_trace().empty());
  EXPECT_EQ(tree.leaves().size(), 1u);
  EXPECT_EQ(tree.predict({3.0}), 4.25);
  EXPECT_EQ(tree.leaf_variance({3.0}), 0.0);
}

TEST(RegressionTree, LearnsAStepFunctionExactly) {
  // value = 0 below x=2, 10 at or above: one split at the midpoint 1.5.
  std::vector<TreeSample> samples{{{0.0}, 0.0},
                                  {{1.0}, 0.0},
                                  {{2.0}, 10.0},
                                  {{3.0}, 10.0}};
  RegressionTree tree;
  RegressionTree::Options options;  // min_leaf = 2
  tree.fit(samples, options);
  EXPECT_EQ(tree.trace_string(), "n0 f0<=1.5\n");
  EXPECT_EQ(tree.predict({0.5}), 0.0);
  EXPECT_EQ(tree.predict({2.5}), 10.0);
  EXPECT_EQ(tree.predict({-5.0}), 0.0);   // constant extrapolation
  EXPECT_EQ(tree.predict({100.0}), 10.0);
}

std::vector<TreeSample> two_axis_samples() {
  // value = (x < 4 ? 0 : 8) + (x % 2): axis 0 carries the big step, axis 1
  // (the parity bit) the small one.
  std::vector<TreeSample> samples;
  for (int x = 0; x < 8; ++x) {
    double parity = static_cast<double>(x % 2);
    samples.push_back(
        {{static_cast<double>(x), parity}, (x < 4 ? 0.0 : 8.0) + parity});
  }
  return samples;
}

TEST(RegressionTree, GoldenSplitSequenceIsPinned) {
  RegressionTree tree;
  tree.fit(two_axis_samples(), RegressionTree::Options{});
  // Pre-order: root splits on the big step, then each side isolates the
  // parity bit.  Any change to the split scan shows up here first.
  EXPECT_EQ(tree.trace_string(),
            "n0 f0<=3.5\n"
            "n1 f1<=0.5\n"
            "n4 f1<=0.5\n");
  EXPECT_EQ(tree.predict({2.0, 1.0}), 1.0);
  EXPECT_EQ(tree.predict({6.0, 0.0}), 8.0);
  // Record gains are the SSE reductions: the root split removes all
  // between-plateau variance (130 total, 1 left + 1 right remain).
  ASSERT_EQ(tree.split_trace().size(), 3u);
  EXPECT_DOUBLE_EQ(tree.split_trace()[0].gain, 128.0);
}

TEST(RegressionTree, RefitIsIdentical) {
  RegressionTree a, b;
  a.fit(two_axis_samples(), RegressionTree::Options{});
  b.fit(two_axis_samples(), RegressionTree::Options{});
  EXPECT_EQ(a.trace_string(), b.trace_string());
  ASSERT_EQ(a.leaves().size(), b.leaves().size());
  for (std::size_t i = 0; i < a.leaves().size(); ++i) {
    EXPECT_EQ(a.leaves()[i].node, b.leaves()[i].node);
    EXPECT_EQ(a.leaves()[i].mean, b.leaves()[i].mean);
    EXPECT_EQ(a.leaves()[i].variance, b.leaves()[i].variance);
  }
}

TEST(RegressionTree, EqualGainTieBreaksToLowestAxis) {
  // Axis 1 mirrors axis 0 exactly, so every candidate split has the same
  // gain on both axes; the std::tie total order must pick axis 0.
  std::vector<TreeSample> samples;
  for (int x = 0; x < 4; ++x) {
    samples.push_back({{static_cast<double>(x), static_cast<double>(x)},
                       x < 2 ? 0.0 : 6.0});
  }
  RegressionTree tree;
  tree.fit(samples, RegressionTree::Options{});
  ASSERT_EQ(tree.split_trace().size(), 1u);
  EXPECT_EQ(tree.split_trace()[0].axis, 0u);
}

TEST(RegressionTree, MinLeafAndDepthStopSplitting) {
  std::vector<TreeSample> samples = two_axis_samples();
  RegressionTree::Options options;
  options.min_leaf = 4;  // parity split would leave children of 2
  RegressionTree tree;
  tree.fit(samples, options);
  EXPECT_EQ(tree.trace_string(), "n0 f0<=3.5\n");

  options.min_leaf = 1;
  options.max_depth = 0;  // root is already at max depth
  tree.fit(samples, options);
  EXPECT_TRUE(tree.split_trace().empty());
  EXPECT_EQ(tree.predict({0.0, 0.0}), 4.5);  // grand mean
}

TEST(RegressionTree, LeafStatisticsPartitionTheTrainingSet) {
  RegressionTree tree;
  tree.fit(two_axis_samples(), RegressionTree::Options{});
  std::size_t covered = 0;
  for (const RegressionTree::LeafInfo& leaf : tree.leaves()) {
    covered += leaf.count;
    EXPECT_EQ(leaf.variance, 0.0);  // all four plateaus are pure
  }
  EXPECT_EQ(covered, 8u);
}

TEST(RegressionTree, FeatureSizeMismatchThrows) {
  RegressionTree tree;
  tree.fit(two_axis_samples(), RegressionTree::Options{});
  EXPECT_THROW(tree.predict({1.0}), std::invalid_argument);
  EXPECT_THROW(tree.leaf_variance({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(AdaptiveModelTest, FeatureLayoutIsParamsThenAxes) {
  AdaptiveModel model;
  model.feature_names = {"c", "q", "cpu_share", "net_bps"};
  model.config_features = 2;
  tunable::ConfigPoint config;
  config.set("q", 3);
  config.set("c", 1);
  std::vector<double> f = model.features_of(config, {0.5, 250e3});
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], 1.0);  // c
  EXPECT_EQ(f[1], 3.0);  // q
  EXPECT_EQ(f[2], 0.5);
  EXPECT_EQ(f[3], 250e3);
}

}  // namespace
}  // namespace avf::perfdb
