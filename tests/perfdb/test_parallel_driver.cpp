// Determinism contract of the parallel profiling pipeline: profile() at
// any thread count must assemble a database whose save() bytes are
// bit-for-bit identical to profile_serial(), and refinement's budgeted
// suggestion picks must not depend on thread count or sort internals.
#include "perfdb/driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "perfdb/sensitivity.hpp"
#include "viz/world.hpp"

namespace avf::perfdb {
namespace {

using tunable::AppSpec;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::QosVector;

AppSpec make_spec() {
  AppSpec spec("synthetic");
  spec.space().add_parameter("mode", {0, 1, 2});
  spec.space().add_parameter("level", {0, 1});
  spec.metrics().add("time", Direction::kLowerBetter);
  spec.metrics().add("quality", Direction::kHigherBetter);
  spec.add_resource_axis("cpu");
  spec.add_resource_axis("bw");
  return spec;
}

QosVector model(const ConfigPoint& config, const ResourcePoint& at) {
  double cpu = at[0], bw = at[1];
  int mode = config.get("mode");
  QosVector q;
  double t = 3.0 / cpu + 1e6 / bw + config.get("level");
  if (mode == 1 && cpu < 0.45) t *= 30.0;  // knee -> refinement targets
  q.set("time", t);
  q.set("quality", 1.0 + mode);
  return q;
}

std::string save_bytes(const PerfDatabase& db) {
  std::ostringstream out;
  db.save(out);
  return out.str();
}

const std::vector<std::vector<double>> kGrid = {{0.2, 0.5, 1.0},
                                                {50e3, 200e3, 800e3}};

TEST(ParallelDriver, MatchesSerialBytesAtAnyThreadCount) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  options.refinement_rounds = 2;
  options.sensitivity_threshold = 0.4;
  options.max_suggestions_per_round = 8;

  ProfilingDriver serial(
      [](const ConfigPoint& c, const ResourcePoint& p) { return model(c, p); },
      options);
  const std::string want = save_bytes(serial.profile_serial(spec, kGrid));

  for (std::size_t threads : {1u, 2u, 3u, 4u, 0u}) {
    options.threads = threads;
    ProfilingDriver driver(
        [](const ConfigPoint& c, const ResourcePoint& p) {
          return model(c, p);
        },
        options);
    EXPECT_EQ(save_bytes(driver.profile(spec, kGrid)), want)
        << "threads=" << threads;
  }
}

TEST(ParallelDriver, RunFactoryMakesOneContextPerWorker) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  options.threads = 3;
  std::atomic<int> contexts{0};
  ProfilingDriver driver(
      [&]() -> ProfilingDriver::RunFn {
        ++contexts;
        return [](const ConfigPoint& c, const ResourcePoint& p) {
          return model(c, p);
        };
      },
      options);
  (void)driver.profile(spec, kGrid);
  // One RunFn per worker plus the spare slot for the coordinating thread.
  EXPECT_EQ(contexts.load(), 4);
}

TEST(ParallelDriver, OnRunObservesCanonicalOrderInParallel) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  std::vector<std::pair<std::string, ResourcePoint>> serial_order;
  options.on_run = [&](const ConfigPoint& c, const ResourcePoint& p) {
    serial_order.emplace_back(c.key(), p);
  };
  ProfilingDriver serial(
      [](const ConfigPoint& c, const ResourcePoint& p) { return model(c, p); },
      options);
  (void)serial.profile(spec, kGrid);

  std::vector<std::pair<std::string, ResourcePoint>> parallel_order;
  options.on_run = [&](const ConfigPoint& c, const ResourcePoint& p) {
    parallel_order.emplace_back(c.key(), p);
  };
  options.threads = 4;
  ProfilingDriver parallel(
      [](const ConfigPoint& c, const ResourcePoint& p) { return model(c, p); },
      options);
  (void)parallel.profile(spec, kGrid);

  EXPECT_EQ(parallel_order, serial_order);
}

TEST(ParallelDriver, RunExceptionPropagatesAndNothingCommits) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  options.threads = 4;
  ProfilingDriver driver(
      [](const ConfigPoint& c, const ResourcePoint& p) -> QosVector {
        if (c.get("mode") == 2 && p[0] == 0.5) {
          throw std::runtime_error("testbed crashed");
        }
        return model(c, p);
      },
      options);
  EXPECT_THROW((void)driver.profile(spec, kGrid), std::runtime_error);
}

// Regression: refinement picks were non-deterministic when several
// suggestions tied on relative_change (std::sort with a strength-only
// comparator).  With a model whose knee produces identical relative jumps
// for several configs and a budget smaller than the suggestion count, the
// chosen midpoints must be the same set on every run.
TEST(ParallelDriver, RefinePicksAreDeterministicUnderTies) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  options.sensitivity_threshold = 0.05;  // nearly everything is "steep"
  options.max_suggestions_per_round = 3;  // force tie-breaking to matter

  auto run_once = [&](std::size_t threads) {
    options.threads = threads;
    // Ties: every (mode, level) shares the same analytic profile, so each
    // midpoint suggestion appears with the same strength for all six
    // configurations.
    ProfilingDriver driver(
        [](const ConfigPoint& c, const ResourcePoint& p) {
          QosVector q;
          q.set("time", 10.0 / p[0] + 1e6 / p[1]);
          q.set("quality", 2.0);
          (void)c;
          return q;
        },
        options);
    PerfDatabase db = driver.profile(spec, kGrid);
    (void)driver.refine(db);
    return save_bytes(db);
  };

  const std::string first = run_once(1);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(run_once(1), first) << "serial attempt " << attempt;
    EXPECT_EQ(run_once(4), first) << "parallel attempt " << attempt;
  }
}

TEST(ParallelDriver, SensitivityOrderIsTotal) {
  AppSpec spec = make_spec();
  ProfilingDriver driver(
      [](const ConfigPoint& c, const ResourcePoint& p) { return model(c, p); });
  PerfDatabase db = driver.profile(spec, kGrid);
  auto serial = sensitivity_analysis(db, 0.05, 1);
  auto parallel = sensitivity_analysis(db, 0.05, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].config, parallel[i].config) << i;
    EXPECT_EQ(serial[i].point, parallel[i].point) << i;
    EXPECT_EQ(serial[i].axis, parallel[i].axis) << i;
    EXPECT_EQ(serial[i].metric, parallel[i].metric) << i;
    EXPECT_EQ(serial[i].relative_change, parallel[i].relative_change) << i;
  }
}

// End-to-end on the real application: a small viz-world grid profiled in
// parallel must byte-match the serial build (each run spins up a full
// simulator + sandboxes + wavelet/codec pipeline, so this also exercises
// the shared caches under concurrency).
TEST(ParallelDriver, VizDatabaseMatchesSerial) {
  viz::WorldSetup base;
  base.image_size = 128;  // keep each simulated download cheap
  base.image_count = 1;
  std::vector<double> cpu_grid{0.4, 1.0};
  std::vector<double> bw_grid{100e3, 800e3};

  PerfDatabase serial =
      viz::build_viz_database(base, cpu_grid, bw_grid, 0, 1);
  PerfDatabase parallel =
      viz::build_viz_database(base, cpu_grid, bw_grid, 0, 4);
  EXPECT_EQ(save_bytes(parallel), save_bytes(serial));
}

}  // namespace
}  // namespace avf::perfdb
