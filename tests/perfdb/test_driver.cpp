#include "perfdb/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace avf::perfdb {
namespace {

using tunable::AppSpec;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::QosVector;

AppSpec make_spec() {
  AppSpec spec("synthetic");
  spec.space().add_parameter("mode", {0, 1});
  spec.metrics().add("time", Direction::kLowerBetter);
  spec.add_resource_axis("cpu");
  return spec;
}

/// Analytic application model: mode 0 has a smooth profile, mode 1 has a
/// sharp knee below cpu = 0.4.
QosVector model(const ConfigPoint& config, const ResourcePoint& at) {
  double cpu = at[0];
  QosVector q;
  if (config.get("mode") == 0) {
    q.set("time", 10.0 / cpu);
  } else {
    q.set("time", cpu < 0.4 ? 500.0 : 5.0 / cpu);
  }
  return q;
}

TEST(Driver, ProfilesFullGrid) {
  AppSpec spec = make_spec();
  int runs = 0;
  ProfilingDriver driver([&](const ConfigPoint& c, const ResourcePoint& p) {
    ++runs;
    return model(c, p);
  });
  PerfDatabase db = driver.profile(spec, {{0.2, 0.5, 1.0}});
  EXPECT_EQ(runs, 6);  // 2 configs x 3 grid points
  EXPECT_EQ(db.size(), 6u);
  EXPECT_EQ(db.configs().size(), 2u);
  auto p = db.predict(ConfigPoint{{{"mode", 0}}}, {0.5});
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 20.0);
}

TEST(Driver, RefinementSamplesSteepRegions) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  options.refinement_rounds = 2;
  options.sensitivity_threshold = 0.5;
  std::vector<ResourcePoint> extra;
  ProfilingDriver driver(
      [&](const ConfigPoint& c, const ResourcePoint& p) {
        return model(c, p);
      },
      options);
  PerfDatabase db = driver.profile(spec, {{0.2, 0.6, 1.0}});
  // The knee of mode 1 lies between 0.2 and 0.6 -> refinement must have
  // added samples there.
  ConfigPoint mode1{{{"mode", 1}}};
  auto grid = db.grid_values(mode1, "cpu");
  EXPECT_GT(grid.size(), 3u);
  bool has_midpoint = false;
  for (double g : grid) {
    if (g > 0.2 && g < 0.6) has_midpoint = true;
  }
  EXPECT_TRUE(has_midpoint);
}

TEST(Driver, RefinementRespectsPerRoundCap) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  options.refinement_rounds = 1;
  options.sensitivity_threshold = 0.01;  // everything looks steep
  options.max_suggestions_per_round = 2;
  int runs = 0;
  ProfilingDriver driver(
      [&](const ConfigPoint& c, const ResourcePoint& p) {
        ++runs;
        return model(c, p);
      },
      options);
  (void)driver.profile(spec, {{0.2, 0.5, 1.0}});
  EXPECT_EQ(runs, 6 + 2);
}

TEST(Driver, OnRunCallbackObservesEveryExecution) {
  AppSpec spec = make_spec();
  ProfilingDriver::Options options;
  int observed = 0;
  options.on_run = [&](const ConfigPoint&, const ResourcePoint&) {
    ++observed;
  };
  ProfilingDriver driver(
      [&](const ConfigPoint& c, const ResourcePoint& p) {
        return model(c, p);
      },
      options);
  (void)driver.profile(spec, {{0.5, 1.0}});
  EXPECT_EQ(observed, 4);
}

TEST(Driver, RejectsBadGrids) {
  AppSpec spec = make_spec();
  ProfilingDriver driver(
      [&](const ConfigPoint& c, const ResourcePoint& p) {
        return model(c, p);
      });
  EXPECT_THROW((void)driver.profile(spec, {}), std::invalid_argument);
  EXPECT_THROW((void)driver.profile(spec, {{}}), std::invalid_argument);
  EXPECT_THROW((void)driver.profile(spec, {{0.5}, {1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace avf::perfdb
