#include "perfdb/database.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avf::perfdb {
namespace {

using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  s.add("quality", Direction::kHigherBetter);
  return s;
}

ConfigPoint cfg(int v) {
  ConfigPoint p;
  p.set("mode", v);
  return p;
}

QosVector q(double time, double quality) {
  QosVector out;
  out.set("time", time);
  out.set("quality", quality);
  return out;
}

PerfDatabase simple_db() {
  PerfDatabase db({"cpu"}, schema());
  // time = 10 / cpu (linear in the samples below), quality constant.
  db.insert(cfg(0), {0.5}, q(20.0, 3.0));
  db.insert(cfg(0), {1.0}, q(10.0, 3.0));
  return db;
}

TEST(PerfDb, InsertAndQueryBasics) {
  PerfDatabase db = simple_db();
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.has_config(cfg(0)));
  EXPECT_FALSE(db.has_config(cfg(1)));
  EXPECT_EQ(db.records(cfg(0)).size(), 2u);
  EXPECT_EQ(db.grid_values(cfg(0), "cpu"),
            (std::vector<double>{0.5, 1.0}));
  EXPECT_THROW((void)db.grid_values(cfg(0), "nope"), std::out_of_range);
}

TEST(PerfDb, RejectsBadInput) {
  EXPECT_THROW(PerfDatabase({}, schema()), std::invalid_argument);
  EXPECT_THROW(PerfDatabase({"cpu"}, MetricSchema{}), std::invalid_argument);
  PerfDatabase db({"cpu"}, schema());
  EXPECT_THROW(db.insert(cfg(0), {0.5, 0.6}, q(1, 1)), std::invalid_argument);
  QosVector incomplete;
  incomplete.set("time", 1.0);
  EXPECT_THROW(db.insert(cfg(0), {0.5}, incomplete), std::invalid_argument);
}

TEST(PerfDb, ReinsertOverwrites) {
  PerfDatabase db = simple_db();
  db.insert(cfg(0), {1.0}, q(99.0, 1.0));
  EXPECT_EQ(db.size(), 2u);
  auto p = db.predict(cfg(0), {1.0});
  EXPECT_DOUBLE_EQ(p->get("time"), 99.0);
}

TEST(PerfDb, ExactPointPrediction) {
  PerfDatabase db = simple_db();
  auto p = db.predict(cfg(0), {0.5});
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 20.0);
}

TEST(PerfDb, LinearInterpolationBetweenSamples) {
  PerfDatabase db = simple_db();
  auto p = db.predict(cfg(0), {0.75}, Lookup::kInterpolate);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 15.0);
  EXPECT_DOUBLE_EQ(p->get("quality"), 3.0);
}

TEST(PerfDb, NearestModeSnapsToClosestSample) {
  PerfDatabase db = simple_db();
  auto p = db.predict(cfg(0), {0.6}, Lookup::kNearest);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 20.0);  // 0.6 closer to 0.5
}

TEST(PerfDb, ClampsOutsideHull) {
  PerfDatabase db = simple_db();
  EXPECT_DOUBLE_EQ(db.predict(cfg(0), {0.1})->get("time"), 20.0);
  EXPECT_DOUBLE_EQ(db.predict(cfg(0), {2.0})->get("time"), 10.0);
}

TEST(PerfDb, UnknownConfigReturnsNullopt) {
  PerfDatabase db = simple_db();
  EXPECT_FALSE(db.predict(cfg(7), {0.5}).has_value());
}

TEST(PerfDb, BilinearInterpolationOn2DGrid) {
  PerfDatabase db({"cpu", "bw"}, schema());
  // time = 10*cpu + bw (exactly bilinear).
  for (double cpu : {0.0, 1.0}) {
    for (double bw : {0.0, 100.0}) {
      db.insert(cfg(0), {cpu, bw}, q(10 * cpu + bw, 1.0));
    }
  }
  auto p = db.predict(cfg(0), {0.25, 40.0});
  ASSERT_TRUE(p);
  EXPECT_NEAR(p->get("time"), 10 * 0.25 + 40.0, 1e-12);
}

TEST(PerfDb, IncompleteCellFallsBackToNearest) {
  PerfDatabase db({"cpu", "bw"}, schema());
  db.insert(cfg(0), {0.0, 0.0}, q(1.0, 1.0));
  db.insert(cfg(0), {1.0, 0.0}, q(2.0, 1.0));
  db.insert(cfg(0), {0.0, 1.0}, q(3.0, 1.0));
  // (1,1) corner missing: interpolation at the cell interior must still
  // return something (nearest).
  auto p = db.predict(cfg(0), {0.9, 0.9}, Lookup::kInterpolate);
  ASSERT_TRUE(p);
  EXPECT_GT(p->get("time"), 0.0);
}

TEST(PerfDb, EraseConfigRemovesRecords) {
  PerfDatabase db = simple_db();
  db.erase_config(cfg(0));
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(db.predict(cfg(0), {0.5}).has_value());
}

TEST(PerfDb, SaveLoadRoundTrip) {
  PerfDatabase db({"cpu", "bw"}, schema());
  db.insert(cfg(0), {0.5, 100.0}, q(20.0, 3.0));
  db.insert(cfg(1), {1.0, 200.0}, q(10.0, 4.0));
  std::stringstream buffer;
  db.save(buffer);
  PerfDatabase loaded = PerfDatabase::load(buffer);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.axes(), db.axes());
  EXPECT_EQ(loaded.schema().names(), db.schema().names());
  EXPECT_EQ(loaded.schema().metric("quality").direction,
            Direction::kHigherBetter);
  auto p = loaded.predict(cfg(1), {1.0, 200.0});
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("quality"), 4.0);
}

TEST(PerfDb, DimensionMismatchOnPredictThrows) {
  PerfDatabase db = simple_db();
  EXPECT_THROW((void)db.predict(cfg(0), {0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace avf::perfdb
