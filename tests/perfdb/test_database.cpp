#include "perfdb/database.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avf::perfdb {
namespace {

using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  s.add("quality", Direction::kHigherBetter);
  return s;
}

ConfigPoint cfg(int v) {
  ConfigPoint p;
  p.set("mode", v);
  return p;
}

QosVector q(double time, double quality) {
  QosVector out;
  out.set("time", time);
  out.set("quality", quality);
  return out;
}

PerfDatabase simple_db() {
  PerfDatabase db({"cpu"}, schema());
  // time = 10 / cpu (linear in the samples below), quality constant.
  db.insert(cfg(0), {0.5}, q(20.0, 3.0));
  db.insert(cfg(0), {1.0}, q(10.0, 3.0));
  return db;
}

TEST(PerfDb, InsertAndQueryBasics) {
  PerfDatabase db = simple_db();
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.has_config(cfg(0)));
  EXPECT_FALSE(db.has_config(cfg(1)));
  EXPECT_EQ(db.records(cfg(0)).size(), 2u);
  EXPECT_EQ(db.grid_values(cfg(0), "cpu"),
            (std::vector<double>{0.5, 1.0}));
  EXPECT_THROW((void)db.grid_values(cfg(0), "nope"), std::out_of_range);
}

TEST(PerfDb, RejectsBadInput) {
  EXPECT_THROW(PerfDatabase({}, schema()), std::invalid_argument);
  EXPECT_THROW(PerfDatabase({"cpu"}, MetricSchema{}), std::invalid_argument);
  PerfDatabase db({"cpu"}, schema());
  EXPECT_THROW(db.insert(cfg(0), {0.5, 0.6}, q(1, 1)), std::invalid_argument);
  QosVector incomplete;
  incomplete.set("time", 1.0);
  EXPECT_THROW(db.insert(cfg(0), {0.5}, incomplete), std::invalid_argument);
}

TEST(PerfDb, ReinsertOverwrites) {
  PerfDatabase db = simple_db();
  db.insert(cfg(0), {1.0}, q(99.0, 1.0));
  EXPECT_EQ(db.size(), 2u);
  auto p = db.predict(cfg(0), {1.0});
  EXPECT_DOUBLE_EQ(p->get("time"), 99.0);
}

TEST(PerfDb, ExactPointPrediction) {
  PerfDatabase db = simple_db();
  auto p = db.predict(cfg(0), {0.5});
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 20.0);
}

TEST(PerfDb, LinearInterpolationBetweenSamples) {
  PerfDatabase db = simple_db();
  auto p = db.predict(cfg(0), {0.75}, Lookup::kInterpolate);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 15.0);
  EXPECT_DOUBLE_EQ(p->get("quality"), 3.0);
}

TEST(PerfDb, NearestModeSnapsToClosestSample) {
  PerfDatabase db = simple_db();
  auto p = db.predict(cfg(0), {0.6}, Lookup::kNearest);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("time"), 20.0);  // 0.6 closer to 0.5
}

TEST(PerfDb, ClampsOutsideHull) {
  PerfDatabase db = simple_db();
  EXPECT_DOUBLE_EQ(db.predict(cfg(0), {0.1})->get("time"), 20.0);
  EXPECT_DOUBLE_EQ(db.predict(cfg(0), {2.0})->get("time"), 10.0);
}

TEST(PerfDb, UnknownConfigReturnsNullopt) {
  PerfDatabase db = simple_db();
  EXPECT_FALSE(db.predict(cfg(7), {0.5}).has_value());
}

TEST(PerfDb, BilinearInterpolationOn2DGrid) {
  PerfDatabase db({"cpu", "bw"}, schema());
  // time = 10*cpu + bw (exactly bilinear).
  for (double cpu : {0.0, 1.0}) {
    for (double bw : {0.0, 100.0}) {
      db.insert(cfg(0), {cpu, bw}, q(10 * cpu + bw, 1.0));
    }
  }
  auto p = db.predict(cfg(0), {0.25, 40.0});
  ASSERT_TRUE(p);
  EXPECT_NEAR(p->get("time"), 10 * 0.25 + 40.0, 1e-12);
}

TEST(PerfDb, IncompleteCellFallsBackToNearest) {
  PerfDatabase db({"cpu", "bw"}, schema());
  db.insert(cfg(0), {0.0, 0.0}, q(1.0, 1.0));
  db.insert(cfg(0), {1.0, 0.0}, q(2.0, 1.0));
  db.insert(cfg(0), {0.0, 1.0}, q(3.0, 1.0));
  // (1,1) corner missing: interpolation at the cell interior must still
  // return something (nearest).
  auto p = db.predict(cfg(0), {0.9, 0.9}, Lookup::kInterpolate);
  ASSERT_TRUE(p);
  EXPECT_GT(p->get("time"), 0.0);
}

TEST(PerfDb, EraseConfigRemovesRecords) {
  PerfDatabase db = simple_db();
  db.erase_config(cfg(0));
  EXPECT_EQ(db.size(), 0u);
  EXPECT_FALSE(db.predict(cfg(0), {0.5}).has_value());
}

TEST(PerfDb, SaveLoadRoundTrip) {
  PerfDatabase db({"cpu", "bw"}, schema());
  db.insert(cfg(0), {0.5, 100.0}, q(20.0, 3.0));
  db.insert(cfg(1), {1.0, 200.0}, q(10.0, 4.0));
  std::stringstream buffer;
  db.save(buffer);
  PerfDatabase loaded = PerfDatabase::load(buffer);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.axes(), db.axes());
  EXPECT_EQ(loaded.schema().names(), db.schema().names());
  EXPECT_EQ(loaded.schema().metric("quality").direction,
            Direction::kHigherBetter);
  auto p = loaded.predict(cfg(1), {1.0, 200.0});
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->get("quality"), 4.0);
}

TEST(PerfDb, SaveLoadRoundTripPreservesEverySample) {
  // Full equality round-trip: axes, schema directions, and every record's
  // resource point and quality vector.
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  s.add("quality", Direction::kHigherBetter);
  s.add("cost", Direction::kLowerBetter);
  PerfDatabase db({"cpu", "bw", "mem"}, s);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 3; ++i) {
      QosVector v;
      v.set("time", 10.0 / (i + 1) + c);
      v.set("quality", 3.0 + i * 0.125);
      v.set("cost", 1e-9 * (i + 1));
      db.insert(cfg(c), {0.1 * (i + 1), 50e3 * (i + 1), 128.0 + i}, v);
    }
  }
  std::stringstream buffer;
  db.save(buffer);
  PerfDatabase loaded = PerfDatabase::load(buffer);

  EXPECT_EQ(loaded.axes(), db.axes());
  EXPECT_EQ(loaded.schema().names(), db.schema().names());
  for (const auto& name : db.schema().names()) {
    EXPECT_EQ(loaded.schema().metric(name).direction,
              db.schema().metric(name).direction);
  }
  EXPECT_EQ(loaded.size(), db.size());
  for (const ConfigPoint& config : db.configs()) {
    auto original = db.records(config);
    auto restored = loaded.records(config);
    ASSERT_EQ(original.size(), restored.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].resources, restored[i].resources);
      EXPECT_EQ(original[i].quality, restored[i].quality);
    }
  }
}

TEST(PerfDb, LoadRejectsMalformedNumericCell) {
  std::stringstream in(
      "config,res:cpu,metric:time:lower\n"
      "mode=0,0.5,20\n"
      "mode=0,abc,10\n");
  // Regression: std::stod used to throw a raw std::invalid_argument; the
  // loader must report a structured error naming the row and column.
  try {
    (void)PerfDatabase::load(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    std::string message = e.what();
    EXPECT_NE(message.find("abc"), std::string::npos) << message;
    EXPECT_NE(message.find("row 2"), std::string::npos) << message;
    EXPECT_NE(message.find("res:cpu"), std::string::npos) << message;
  }
}

TEST(PerfDb, LoadRejectsTrailingGarbageInNumericCell) {
  // Regression: "1.5x" parsed as 1.5 with the trailing garbage silently
  // dropped.
  std::stringstream in(
      "config,res:cpu,metric:time:lower\n"
      "mode=0,0.5,1.5x\n");
  EXPECT_THROW((void)PerfDatabase::load(in), std::runtime_error);
}

TEST(PerfDb, LoadRejectsEmptyNumericCell) {
  std::stringstream in(
      "config,res:cpu,metric:time:lower\n"
      "mode=0,,20\n");
  EXPECT_THROW((void)PerfDatabase::load(in), std::runtime_error);
}

TEST(PerfDb, LoadRejectsUnknownDirectionToken) {
  // Regression: any token other than "higher" was silently treated as
  // lower-better, flipping comparisons for typoed headers.
  std::stringstream in(
      "config,res:cpu,metric:time:sideways\n"
      "mode=0,0.5,20\n");
  EXPECT_THROW((void)PerfDatabase::load(in), std::runtime_error);
}

TEST(PerfDb, LoadAcceptsBothDirectionTokens) {
  std::stringstream in(
      "config,res:cpu,metric:time:lower,metric:quality:higher\n"
      "mode=0,0.5,20,3\n");
  PerfDatabase db = PerfDatabase::load(in);
  EXPECT_EQ(db.schema().metric("time").direction, Direction::kLowerBetter);
  EXPECT_EQ(db.schema().metric("quality").direction,
            Direction::kHigherBetter);
}

TEST(PerfDb, DimensionMismatchOnPredictThrows) {
  PerfDatabase db = simple_db();
  EXPECT_THROW((void)db.predict(cfg(0), {0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace avf::perfdb
