// Acceptance suite for decision-tree-guided adaptive profiling, validated
// against the exhaustive oracle (the untouched profile_serial path / the
// closed-form run function itself): measured cells must be bit-exact,
// predicted cells within a relative-error bound, the full-budget case must
// degenerate to the exhaustive database byte-for-byte, and the whole run
// must be byte-identical at any thread count.
#include "perfdb/driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "perfdb/sensitivity.hpp"

namespace avf::perfdb {
namespace {

using tunable::AppSpec;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::QosVector;

AppSpec make_spec() {
  AppSpec spec("synthetic");
  spec.space().add_parameter("mode", {0, 1, 2});
  spec.space().add_parameter("level", {0, 1});
  spec.metrics().add("time", Direction::kLowerBetter);
  spec.metrics().add("quality", Direction::kHigherBetter);
  spec.add_resource_axis("cpu");
  spec.add_resource_axis("bw");
  return spec;
}

// Piecewise-constant on axis-aligned boxes — the surface family regression
// trees represent exactly, so prediction error measures the *sampling*
// quality, not a model-class mismatch.
QosVector model(const ConfigPoint& config, const ResourcePoint& at) {
  double cpu = at[0], bw = at[1];
  int mode = config.get("mode");
  QosVector q;
  q.set("time", (cpu < 0.45 ? 10.0 : 2.0) * (1.0 + mode) +
                    (bw < 100e3 ? 5.0 : 1.0) + config.get("level"));
  q.set("quality", 1.0 + mode);
  return q;
}

std::string save_bytes(const PerfDatabase& db) {
  std::ostringstream out;
  db.save(out);
  return out.str();
}

const std::vector<std::vector<double>> kGrid = {{0.2, 0.5, 1.0},
                                                {50e3, 200e3, 800e3}};
constexpr std::size_t kCells = 6 * 9;  // configs x grid points

ProfilingDriver make_driver(std::size_t threads = 1) {
  ProfilingDriver::Options options;
  options.threads = threads;
  return ProfilingDriver(
      [](const ConfigPoint& c, const ResourcePoint& p) { return model(c, p); },
      options);
}

ProfilingDriver::AdaptiveOptions adaptive_options(std::size_t budget,
                                                  std::uint64_t seed) {
  ProfilingDriver::AdaptiveOptions a;
  a.budget = budget;
  a.seed = seed;
  a.round_size = 6;
  return a;
}

TEST(AdaptiveDriver, MeasuredCellsBitExactPredictionsWithinBound) {
  AppSpec spec = make_spec();
  ProfilingDriver driver = make_driver();
  // The acceptance bound is statistical, not bit-exact, and configurable
  // per budget: tighter budgets tolerate larger worst-case misses.  Each
  // (seed, budget) run is deterministic, so these assertions are stable.
  struct Bound {
    std::size_t budget;
    double max_rel_err;
    double mean_rel_err;
  };
  const Bound kBounds[] = {{18, 0.95, 0.30},   // 1/3 of the cells
                           {27, 0.60, 0.20},   // half
                           {40, 0.60, 0.20}};  // 3/4
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    for (const Bound& bound : kBounds) {
      const std::size_t budget = bound.budget;
      PerfDatabase db =
          driver.profile_adaptive(spec, kGrid, adaptive_options(budget, seed));
      EXPECT_EQ(db.size(), kCells);
      // The budget is a cap, not a quota: the run may stop early once every
      // unmeasured cell sits in a pure leaf.
      EXPECT_LE(kCells - db.predicted_count(), budget);
      EXPECT_GT(db.predicted_count(), 0u);
      double err_sum = 0.0;
      std::size_t predicted = 0;
      for (const ConfigPoint& config : spec.space().enumerate()) {
        for (const PerfRecord& r : db.records(config)) {
          QosVector oracle = model(config, r.resources);
          for (const auto& m : spec.metrics().metrics()) {
            double got = r.quality.get(m.name);
            double want = oracle.get(m.name);
            if (r.provenance == Provenance::kMeasured) {
              EXPECT_EQ(got, want)  // sandbox-measured: bit-exact
                  << m.name << " seed=" << seed << " budget=" << budget;
            } else {
              double rel = std::abs(got - want) / std::abs(want);
              EXPECT_LE(rel, bound.max_rel_err)
                  << m.name << " seed=" << seed << " budget=" << budget;
              err_sum += rel;
              ++predicted;
            }
          }
        }
      }
      ASSERT_GT(predicted, 0u);
      EXPECT_LE(err_sum / static_cast<double>(predicted), bound.mean_rel_err)
          << "seed=" << seed << " budget=" << budget;
    }
  }
}

TEST(AdaptiveDriver, FullBudgetDegeneratesToExhaustiveBytes) {
  AppSpec spec = make_spec();
  ProfilingDriver driver = make_driver();
  const std::string want = save_bytes(driver.profile_serial(spec, kGrid));
  for (std::size_t budget : {kCells, kCells + 1000}) {
    PerfDatabase db =
        driver.profile_adaptive(spec, kGrid, adaptive_options(budget, 1));
    EXPECT_EQ(db.predicted_count(), 0u);
    EXPECT_EQ(save_bytes(db), want) << "budget=" << budget;
  }
}

TEST(AdaptiveDriver, ByteIdenticalAtAnyThreadCount) {
  AppSpec spec = make_spec();
  const std::string want = save_bytes(make_driver(1).profile_adaptive(
      spec, kGrid, adaptive_options(20, 3)));
  EXPECT_NE(want.find("origin"), std::string::npos);
  for (std::size_t threads : {2u, 3u, 4u, 0u}) {
    EXPECT_EQ(save_bytes(make_driver(threads).profile_adaptive(
                  spec, kGrid, adaptive_options(20, 3))),
              want)
        << "threads=" << threads;
  }
}

TEST(AdaptiveDriver, SeedSelectsADifferentSample) {
  AppSpec spec = make_spec();
  ProfilingDriver driver = make_driver();
  EXPECT_NE(save_bytes(driver.profile_adaptive(spec, kGrid,
                                               adaptive_options(20, 1))),
            save_bytes(driver.profile_adaptive(spec, kGrid,
                                               adaptive_options(20, 2))));
}

TEST(AdaptiveDriver, TinyBudgetsStillFillTheWholeGrid) {
  AppSpec spec = make_spec();
  ProfilingDriver driver = make_driver();
  EXPECT_THROW(
      driver.profile_adaptive(spec, kGrid, adaptive_options(0, 1)),
      std::invalid_argument);
  for (std::size_t budget : {1u, 3u}) {
    PerfDatabase db =
        driver.profile_adaptive(spec, kGrid, adaptive_options(budget, 1));
    EXPECT_EQ(db.size(), kCells);
    EXPECT_GE(db.predicted_count(), kCells - budget);
    EXPECT_LT(db.predicted_count(), kCells);  // at least one measured cell
  }
}

TEST(AdaptiveDriver, BudgetBelowInitialSampleIsClampedNotLooped) {
  AppSpec spec = make_spec();
  std::atomic<std::size_t> calls{0};
  ProfilingDriver driver(
      [&](const ConfigPoint& c, const ResourcePoint& p) {
        ++calls;
        return model(c, p);
      },
      ProfilingDriver::Options{});
  ProfilingDriver::AdaptiveOptions a = adaptive_options(5, 1);
  a.initial_fraction = 1.0;  // the seeded sample alone must respect budget
  PerfDatabase db = driver.profile_adaptive(spec, kGrid, a);
  EXPECT_EQ(calls.load(), 5u);
  EXPECT_EQ(db.predicted_count(), kCells - 5);
}

TEST(AdaptiveDriver, ConstantSurfaceStopsWithoutBurningBudget) {
  AppSpec spec = make_spec();
  std::atomic<std::size_t> calls{0};
  ProfilingDriver driver(
      [&](const ConfigPoint&, const ResourcePoint&) {
        ++calls;
        QosVector q;
        q.set("time", 3.0);
        q.set("quality", 1.0);
        return q;
      },
      ProfilingDriver::Options{});
  PerfDatabase db =
      driver.profile_adaptive(spec, kGrid, adaptive_options(30, 1));
  // Zero-variance trees offer no leaf worth refining: the run must
  // terminate after the initial sample (no loop, no wasted sandbox runs).
  EXPECT_EQ(calls.load(), 15u);  // initial_fraction 0.5 of budget 30
  EXPECT_EQ(db.size(), kCells);
  EXPECT_EQ(db.predicted_count(), kCells - 15);
  for (const ConfigPoint& config : db.configs()) {
    for (const PerfRecord& r : db.records(config)) {
      EXPECT_EQ(r.quality.get("time"), 3.0);     // predictions are exact
      EXPECT_EQ(r.quality.get("quality"), 1.0);  // for a constant surface
    }
  }
}

TEST(AdaptiveDriver, SingleResourceAxisAndSingleParameter) {
  AppSpec spec("thin");
  spec.space().add_parameter("q", {1, 2, 3});
  spec.metrics().add("time", Direction::kLowerBetter);
  spec.add_resource_axis("cpu");
  ProfilingDriver driver(
      [](const ConfigPoint& c, const ResourcePoint& p) {
        QosVector q;
        q.set("time", c.get("q") / p[0]);
        return q;
      },
      ProfilingDriver::Options{});
  const std::vector<std::vector<double>> grid = {{0.1, 0.25, 0.5, 0.75, 1.0}};
  PerfDatabase db =
      driver.profile_adaptive(spec, grid, adaptive_options(8, 1));
  EXPECT_EQ(db.size(), 15u);
  EXPECT_GE(db.predicted_count(), 7u);
  EXPECT_LT(db.predicted_count(), 15u);
}

TEST(AdaptiveDriver, GuardInfeasibleRegionsAreNeverSampledOrPredicted) {
  AppSpec spec = make_spec();
  spec.space().add_guard("mode 2 excludes level 1", [](const ConfigPoint& p) {
    return !(p.get("mode") == 2 && p.get("level") == 1);
  });
  std::atomic<std::size_t> infeasible_runs{0};
  ProfilingDriver driver(
      [&](const ConfigPoint& c, const ResourcePoint& p) {
        if (c.get("mode") == 2 && c.get("level") == 1) ++infeasible_runs;
        return model(c, p);
      },
      ProfilingDriver::Options{});
  PerfDatabase db =
      driver.profile_adaptive(spec, kGrid, adaptive_options(20, 1));
  EXPECT_EQ(infeasible_runs.load(), 0u);
  EXPECT_EQ(db.configs().size(), 5u);  // 6 raw minus the guarded one
  for (const ConfigPoint& config : db.configs()) {
    EXPECT_TRUE(spec.space().valid(config)) << config.key();
  }
}

TEST(AdaptiveDriver, ModelOutPredictsExactlyWhatTheDatabaseStores) {
  AppSpec spec = make_spec();
  ProfilingDriver driver = make_driver();
  AdaptiveModel model_out;
  PerfDatabase db = driver.profile_adaptive(spec, kGrid,
                                            adaptive_options(20, 1),
                                            &model_out);
  ASSERT_EQ(model_out.feature_names.size(), 4u);
  EXPECT_EQ(model_out.feature_names[0], "level");  // params, name order
  EXPECT_EQ(model_out.feature_names[1], "mode");
  EXPECT_EQ(model_out.feature_names[2], "cpu");    // then resource axes
  EXPECT_EQ(model_out.feature_names[3], "bw");
  EXPECT_EQ(model_out.config_features, 2u);
  ASSERT_EQ(model_out.trees.size(), 2u);
  for (const ConfigPoint& config : db.configs()) {
    for (const PerfRecord& r : db.records(config)) {
      if (r.provenance != Provenance::kPredicted) continue;
      std::vector<double> f = model_out.features_of(config, r.resources);
      for (const auto& m : spec.metrics().metrics()) {
        EXPECT_EQ(r.quality.get(m.name), model_out.trees.at(m.name).predict(f));
      }
    }
  }
}

TEST(AdaptiveDriver, RankByLeafVariancePutsUncertainCellsFirst) {
  // Hand-built model: one feature, a pure left leaf and a spread-out right
  // leaf (variance 4).
  AdaptiveModel model;
  model.feature_names = {"cpu"};
  model.config_features = 0;
  std::vector<TreeSample> samples{
      {{0.0}, 0.0}, {{1.0}, 0.0}, {{2.0}, 10.0}, {{3.0}, 14.0}};
  model.trees["time"].fit(samples, RegressionTree::Options{});

  ConfigPoint config;
  RefinementSuggestion low{config, {0.5}, "cpu", "time", 0.9};
  RefinementSuggestion high{config, {2.5}, "cpu", "time", 0.1};
  RefinementSuggestion unknown{config, {2.5}, "cpu", "other", 0.5};

  std::vector<RefinementSuggestion> ranked =
      rank_by_leaf_variance({low, unknown, high}, model);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].metric, "time");
  EXPECT_EQ(ranked[0].point, ResourcePoint({2.5}));  // variance 4 leaf first
  // Zero-scored entries (pure leaf, unknown metric) keep their input order.
  EXPECT_EQ(ranked[1].point, ResourcePoint({0.5}));
  EXPECT_EQ(ranked[2].metric, "other");
}

}  // namespace
}  // namespace avf::perfdb
