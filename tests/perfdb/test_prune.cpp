#include "perfdb/prune.hpp"

#include <gtest/gtest.h>

namespace avf::perfdb {
namespace {

using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  return s;
}

ConfigPoint cfg(int v) {
  ConfigPoint p;
  p.set("mode", v);
  return p;
}

QosVector q(double time) {
  QosVector out;
  out.set("time", time);
  return out;
}

TEST(Prune, DropsDominatedConfig) {
  PerfDatabase db({"cpu"}, schema());
  for (double cpu : {0.5, 1.0}) {
    db.insert(cfg(0), {cpu}, q(10.0 / cpu));      // better everywhere
    db.insert(cfg(1), {cpu}, q(20.0 / cpu));      // dominated
  }
  PruneResult result = analyze_prune(db, 1e-6);
  ASSERT_EQ(result.kept.size(), 1u);
  EXPECT_EQ(result.kept[0], cfg(0));
  ASSERT_EQ(result.dominated.size(), 1u);
  EXPECT_EQ(result.dominated[0], cfg(1));
}

TEST(Prune, KeepsCrossoverConfigs) {
  // The paper's "maximal subset": configs that win somewhere must stay.
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(0), {1.0}, q(10.0));
  db.insert(cfg(0), {2.0}, q(9.0));
  db.insert(cfg(1), {1.0}, q(12.0));  // loses at bw=1
  db.insert(cfg(1), {2.0}, q(5.0));   // wins at bw=2
  PruneResult result = analyze_prune(db, 1e-6);
  EXPECT_EQ(result.kept.size(), 2u);
  EXPECT_TRUE(result.dominated.empty());
}

TEST(Prune, MergesEquivalentConfigs) {
  PerfDatabase db({"cpu"}, schema());
  for (double cpu : {0.5, 1.0}) {
    db.insert(cfg(0), {cpu}, q(10.0 / cpu));
    db.insert(cfg(1), {cpu}, q(10.0 / cpu * 1.001));  // within 1%
  }
  PruneResult result = analyze_prune(db, 0.01);
  ASSERT_EQ(result.kept.size(), 1u);
  EXPECT_EQ(result.merged_into.size(), 1u);
  EXPECT_EQ(result.merged_into.at(cfg(1).key()), cfg(0).key());
}

TEST(Prune, EqualConfigsMergeNotDominate) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(cfg(0), {1.0}, q(10.0));
  db.insert(cfg(1), {1.0}, q(10.0));
  PruneResult result = analyze_prune(db, 1e-9);
  EXPECT_EQ(result.kept.size(), 1u);
  EXPECT_TRUE(result.dominated.empty());
  EXPECT_EQ(result.merged_into.size(), 1u);
}

TEST(Prune, DisjointSampleSetsAreIncomparable) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(cfg(0), {0.5}, q(10.0));
  db.insert(cfg(1), {1.0}, q(999.0));  // sampled elsewhere only
  PruneResult result = analyze_prune(db, 1e-6);
  EXPECT_EQ(result.kept.size(), 2u);
}

TEST(Prune, ApplyProducesReducedDatabase) {
  PerfDatabase db({"cpu"}, schema());
  for (double cpu : {0.5, 1.0}) {
    db.insert(cfg(0), {cpu}, q(10.0 / cpu));
    db.insert(cfg(1), {cpu}, q(20.0 / cpu));
  }
  PerfDatabase pruned = apply_prune(db, analyze_prune(db, 1e-6));
  EXPECT_EQ(pruned.configs().size(), 1u);
  EXPECT_EQ(pruned.size(), 2u);
  // Predictions for the kept config survive intact.
  EXPECT_DOUBLE_EQ(pruned.predict(cfg(0), {1.0})->get("time"), 10.0);
}

TEST(Prune, MultiMetricTradeoffKept) {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  s.add("quality", Direction::kHigherBetter);
  PerfDatabase db({"cpu"}, s);
  QosVector fast_low, slow_high;
  fast_low.set("time", 1.0);
  fast_low.set("quality", 2.0);
  slow_high.set("time", 5.0);
  slow_high.set("quality", 9.0);
  db.insert(cfg(0), {1.0}, fast_low);
  db.insert(cfg(1), {1.0}, slow_high);
  PruneResult result = analyze_prune(db, 1e-6);
  EXPECT_EQ(result.kept.size(), 2u);  // neither dominates across metrics
}

}  // namespace
}  // namespace avf::perfdb
