#include "perfdb/sensitivity.hpp"

#include <gtest/gtest.h>

namespace avf::perfdb {
namespace {

using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  return s;
}

ConfigPoint cfg(int v) {
  ConfigPoint p;
  p.set("mode", v);
  return p;
}

QosVector q(double time) {
  QosVector out;
  out.set("time", time);
  return out;
}

TEST(Sensitivity, FlatRegionsProduceNoSuggestions) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(cfg(0), {0.25}, q(10.0));
  db.insert(cfg(0), {0.5}, q(10.5));
  db.insert(cfg(0), {1.0}, q(11.0));
  EXPECT_TRUE(sensitivity_analysis(db, 0.5).empty());
}

TEST(Sensitivity, SteepChangeSuggestsMidpoint) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(cfg(0), {0.25}, q(100.0));
  db.insert(cfg(0), {0.5}, q(10.0));  // 10x drop
  db.insert(cfg(0), {1.0}, q(9.0));
  auto suggestions = sensitivity_analysis(db, 0.5);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].config, cfg(0));
  EXPECT_DOUBLE_EQ(suggestions[0].point[0], 0.375);
  EXPECT_EQ(suggestions[0].axis, "cpu");
  EXPECT_GT(suggestions[0].relative_change, 0.5);
}

TEST(Sensitivity, SortedByStrengthAndDeduplicated) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(cfg(0), {0.25}, q(100.0));
  db.insert(cfg(0), {0.5}, q(10.0));    // change 0.9
  db.insert(cfg(0), {1.0}, q(5.0));     // change 0.5
  auto suggestions = sensitivity_analysis(db, 0.3);
  ASSERT_EQ(suggestions.size(), 2u);
  EXPECT_GT(suggestions[0].relative_change, suggestions[1].relative_change);
}

TEST(Sensitivity, MultiAxisNeighborsRequireMatchingOtherCoords) {
  PerfDatabase db({"cpu", "bw"}, schema());
  db.insert(cfg(0), {0.5, 100.0}, q(10.0));
  db.insert(cfg(0), {1.0, 200.0}, q(100.0));
  // No neighbor pair differs in exactly one axis -> no suggestions even
  // though values change a lot.
  EXPECT_TRUE(sensitivity_analysis(db, 0.1).empty());

  db.insert(cfg(0), {1.0, 100.0}, q(50.0));
  auto suggestions = sensitivity_analysis(db, 0.5);
  EXPECT_FALSE(suggestions.empty());
}

TEST(Sensitivity, PerConfigIndependence) {
  PerfDatabase db({"cpu"}, schema());
  db.insert(cfg(0), {0.5}, q(10.0));
  db.insert(cfg(0), {1.0}, q(10.2));
  db.insert(cfg(1), {0.5}, q(10.0));
  db.insert(cfg(1), {1.0}, q(100.0));
  auto suggestions = sensitivity_analysis(db, 0.5);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].config, cfg(1));
}

}  // namespace
}  // namespace avf::perfdb
