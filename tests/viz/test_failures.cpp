// Failure injection: protocol violations and environmental failures must
// surface as exceptions from the simulation run, never hangs or silent
// corruption.
#include <gtest/gtest.h>

#include "testkit/fault_injector.hpp"
#include "viz/world.hpp"

namespace avf::viz {
namespace {

using tunable::ConfigPoint;

ConfigPoint cfg(int dR, int c, int l) {
  ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

TEST(Failure, UnknownImageIdSurfaces) {
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  VizWorld world(setup);
  VizClient& client = world.make_client(cfg(80, 1, 4));
  world.simulator().spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    (void)co_await client.fetch_image(999);  // never registered
  };
  world.simulator().spawn(driver());
  EXPECT_THROW(world.simulator().run(), std::runtime_error);
}

TEST(Failure, RequestWithoutSessionGetsErrorReply) {
  // Protocol violation: a foveal request for a session that was never
  // opened.  With many clients this must NOT kill the server coroutine —
  // the offender gets a kError reply and every other session keeps going.
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  setup.client_count = 2;
  VizWorld world(setup);
  world.spawn_server_loops();

  VizClient& good = world.make_client_at(0, cfg(80, 1, 4));
  auto good_driver = [&]() -> sim::Task<> {
    co_await good.fetch_images(0, 1);
    co_await good.shutdown_server();
  };
  world.simulator().spawn(good_driver());

  // Channel 1 carries a rogue request with a session id nobody opened.
  bool error_seen = false;
  auto rogue = [&]() -> sim::Task<> {
    co_await world.client_endpoint(1).send(encode(Request{
        .session_id = 99, .cx = 10, .cy = 10, .half = 10, .level = 4}));
    sim::Message reply = co_await world.client_endpoint(1).recv();
    EXPECT_EQ(reply.kind, kError);
    ErrorReply err = decode_error(reply);
    EXPECT_EQ(err.session_id, 99u);
    EXPECT_EQ(err.code, ErrorCode::kNoSession);
    error_seen = true;
    co_await world.client_endpoint(1).send(encode_shutdown());
  };
  world.simulator().spawn(rogue());
  world.simulator().run();

  EXPECT_TRUE(error_seen);
  EXPECT_EQ(world.server().protocol_errors(), 1u);
  // The well-behaved session was not disturbed.
  ASSERT_EQ(good.history().size(), 1u);
  EXPECT_GT(good.history()[0].rounds, 0);
}

TEST(Failure, ErrorRepliesSurviveMailboxFaults) {
  // Testkit fault schedule over the error path: the rogue channel's
  // inbound (server-side) deliveries are delayed/reordered and sometimes
  // dropped while it spams session-less requests.  The server must answer
  // every request that gets through with kError and keep serving the
  // legitimate session; nothing may throw or hang.
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  setup.client_count = 2;
  VizWorld world(setup);
  world.spawn_server_loops();

  testkit::FaultInjector::Targets targets;
  targets.sim = &world.simulator();
  targets.inbound = &world.server_endpoint(1);
  testkit::FaultInjector injector(targets, /*seed=*/0xF00DULL);
  testkit::FaultSchedule schedule;
  schedule.faults.push_back({testkit::FaultKind::kMailboxDelay, 0.0, 30.0,
                             /*value=*/0.05, 0.0});
  schedule.faults.push_back({testkit::FaultKind::kMailboxDrop, 0.0, 30.0,
                             /*value=*/0.3, 0.0});
  injector.arm(schedule);

  VizClient& good = world.make_client_at(0, cfg(80, 1, 4));
  auto good_driver = [&]() -> sim::Task<> {
    co_await good.fetch_images(0, 1);
    co_await good.shutdown_server();
  };
  world.simulator().spawn(good_driver());

  constexpr int kRogueRequests = 8;
  auto rogue = [&]() -> sim::Task<> {
    for (int i = 0; i < kRogueRequests; ++i) {
      co_await world.client_endpoint(1).send(encode(Request{
          .session_id = 99, .cx = 10, .cy = 10, .half = 10, .level = 4}));
    }
  };
  world.simulator().spawn(rogue());
  // Out-of-band shutdown for the rogue's serve loop after the fault window
  // (drops may eat rogue requests but the injector never touches this late
  // message: kMailboxDrop ends at t=30).
  world.simulator().schedule_at(40.0, [&world] {
    auto kill = [](VizWorld* w) -> sim::Task<> {
      co_await w->client_endpoint(1).send(encode_shutdown());
    };
    world.simulator().spawn(kill(&world));
  });
  world.simulator().run();

  // Every delivered rogue request produced exactly one kError.
  auto delivered = static_cast<std::uint64_t>(kRogueRequests) -
                   world.server_endpoint(1).deliveries_dropped();
  EXPECT_EQ(world.server().protocol_errors(), delivered);
  EXPECT_GT(delivered, 0u);
  ASSERT_EQ(good.history().size(), 1u);
}

TEST(Failure, MalformedMessageKindSurfaces) {
  WorldSetup setup;
  setup.image_size = 256;
  VizWorld world(setup);
  world.simulator().spawn(world.server().run());
  VizClient& client = world.make_client(cfg(80, 1, 4));
  (void)client;
  // Inject a message with an unknown kind straight into the server.
  world.simulator().schedule(0.1, [&world] {
    auto bogus = [](VizWorld* w) -> sim::Task<> {
      sim::Message msg;
      msg.kind = 77;
      // Use the client-side endpoint the world wired for the client.
      co_await w->client_endpoint().send(std::move(msg));
    };
    world.simulator().spawn(bogus(&world));
  });
  EXPECT_THROW(world.simulator().run(), std::runtime_error);
}

TEST(Failure, ServerShutdownMidSessionLeavesClientWaiting) {
  // If the server exits while the client still has an outstanding request,
  // the simulation drains with the client blocked (detectable as an
  // incomplete history), not crashed.
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  setup.link_bandwidth_bps = 25e3;  // slow, so the session is still live
  VizWorld world(setup);
  VizClient& client = world.make_client(cfg(80, 1, 4));
  world.simulator().spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    (void)co_await client.fetch_image(0);
  };
  world.simulator().spawn(driver());
  // Shutdown arrives out of band almost immediately.
  world.simulator().schedule(0.05, [&world] {
    auto kill = [](VizWorld* w) -> sim::Task<> {
      co_await w->client_endpoint().send(encode_shutdown());
    };
    world.simulator().spawn(kill(&world));
  });
  world.simulator().run();
  EXPECT_TRUE(client.history().empty());  // image never completed
}

}  // namespace
}  // namespace avf::viz
