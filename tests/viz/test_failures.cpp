// Failure injection: protocol violations and environmental failures must
// surface as exceptions from the simulation run, never hangs or silent
// corruption.
#include <gtest/gtest.h>

#include "viz/world.hpp"

namespace avf::viz {
namespace {

using tunable::ConfigPoint;

ConfigPoint cfg(int dR, int c, int l) {
  ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

TEST(Failure, UnknownImageIdSurfaces) {
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  VizWorld world(setup);
  VizClient& client = world.make_client(cfg(80, 1, 4));
  world.simulator().spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    (void)co_await client.fetch_image(999);  // never registered
  };
  world.simulator().spawn(driver());
  EXPECT_THROW(world.simulator().run(), std::runtime_error);
}

TEST(Failure, RequestWithoutSessionSurfaces) {
  // Protocol violation: a foveal request before any image was opened.
  WorldSetup setup;
  setup.image_size = 256;
  VizWorld world(setup);
  world.simulator().spawn(world.server().run());
  auto rogue = [&]() -> sim::Task<> {
    co_await world.client_endpoint().send(
        encode(Request{.cx = 10, .cy = 10, .half = 10, .level = 4}));
  };
  world.simulator().spawn(rogue());
  EXPECT_THROW(world.simulator().run(), std::runtime_error);
}

TEST(Failure, MalformedMessageKindSurfaces) {
  WorldSetup setup;
  setup.image_size = 256;
  VizWorld world(setup);
  world.simulator().spawn(world.server().run());
  VizClient& client = world.make_client(cfg(80, 1, 4));
  (void)client;
  // Inject a message with an unknown kind straight into the server.
  world.simulator().schedule(0.1, [&world] {
    auto bogus = [](VizWorld* w) -> sim::Task<> {
      sim::Message msg;
      msg.kind = 77;
      // Use the client-side endpoint the world wired for the client.
      co_await w->client_endpoint().send(std::move(msg));
    };
    world.simulator().spawn(bogus(&world));
  });
  EXPECT_THROW(world.simulator().run(), std::runtime_error);
}

TEST(Failure, ServerShutdownMidSessionLeavesClientWaiting) {
  // If the server exits while the client still has an outstanding request,
  // the simulation drains with the client blocked (detectable as an
  // incomplete history), not crashed.
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  setup.link_bandwidth_bps = 25e3;  // slow, so the session is still live
  VizWorld world(setup);
  VizClient& client = world.make_client(cfg(80, 1, 4));
  world.simulator().spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    (void)co_await client.fetch_image(0);
  };
  world.simulator().spawn(driver());
  // Shutdown arrives out of band almost immediately.
  world.simulator().schedule(0.05, [&world] {
    auto kill = [](VizWorld* w) -> sim::Task<> {
      co_await w->client_endpoint().send(encode_shutdown());
    };
    world.simulator().spawn(kill(&world));
  });
  world.simulator().run();
  EXPECT_TRUE(client.history().empty());  // image never completed
}

}  // namespace
}  // namespace avf::viz
