#include "viz/protocol.hpp"

#include <gtest/gtest.h>

namespace avf::viz {
namespace {

TEST(Protocol, OpenImageRoundTrip) {
  OpenImage m{.session_id = 7, .image_id = 12345, .level = 4, .codec = 2};
  OpenImage back = decode_open_image(encode(m));
  EXPECT_EQ(back.session_id, 7u);
  EXPECT_EQ(back.image_id, 12345u);
  EXPECT_EQ(back.level, 4);
  EXPECT_EQ(back.codec, 2);
}

TEST(Protocol, OpenAckRoundTrip) {
  OpenAck m{.session_id = 3, .width = 1024, .height = 768, .levels = 4};
  OpenAck back = decode_open_ack(encode(m));
  EXPECT_EQ(back.session_id, 3u);
  EXPECT_EQ(back.width, 1024);
  EXPECT_EQ(back.height, 768);
  EXPECT_EQ(back.levels, 4);
}

TEST(Protocol, RequestRoundTrip) {
  Request m{
      .session_id = 42, .cx = 512, .cy = 600, .half = 320, .level = 3};
  Request back = decode_request(encode(m));
  EXPECT_EQ(back.session_id, 42u);
  EXPECT_EQ(back.cx, 512);
  EXPECT_EQ(back.cy, 600);
  EXPECT_EQ(back.half, 320);
  EXPECT_EQ(back.level, 3);
}

TEST(Protocol, ReplyRoundTrip) {
  Reply m;
  m.session_id = 9;
  m.complete = true;
  m.codec = 1;
  m.premeasured = false;
  m.raw_len = 100000;
  m.wire_len = 55000;
  m.payload = {1, 2, 3, 4, 5};
  sim::Message wire = encode(m);
  EXPECT_EQ(wire.wire_size_override, 0u);  // real payload: no override
  Reply back = decode_reply(std::move(wire));
  EXPECT_EQ(back.session_id, 9u);
  EXPECT_TRUE(back.complete);
  EXPECT_EQ(back.codec, 1);
  EXPECT_EQ(back.raw_len, 100000u);
  EXPECT_EQ(back.wire_len, 55000u);
  EXPECT_EQ(back.payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Protocol, PremeasuredReplyOverridesWireSize) {
  Reply m;
  m.premeasured = true;
  m.raw_len = 1000;
  m.wire_len = 400;
  m.payload.assign(1000, 7);  // raw bytes shipped
  sim::Message wire = encode(m);
  // Charged as compressed size + protocol header (session_id + flags +
  // lengths = 15 bytes) + frame header.
  EXPECT_EQ(wire.wire_size_override,
            400u + 15u + sim::kMessageHeaderBytes);
  EXPECT_EQ(wire.wire_size(), wire.wire_size_override);
  Reply back = decode_reply(std::move(wire));
  EXPECT_TRUE(back.premeasured);
  EXPECT_EQ(back.payload.size(), 1000u);
}

TEST(Protocol, SetCodecRoundTrip) {
  SetCodec back =
      decode_set_codec(encode(SetCodec{.session_id = 5, .codec = 2}));
  EXPECT_EQ(back.session_id, 5u);
  EXPECT_EQ(back.codec, 2);
}

TEST(Protocol, ErrorReplyRoundTrip) {
  ErrorReply m{.session_id = 17, .code = ErrorCode::kNoSession};
  sim::Message wire = encode(m);
  EXPECT_EQ(wire.kind, kError);
  ErrorReply back = decode_error(wire);
  EXPECT_EQ(back.session_id, 17u);
  EXPECT_EQ(back.code, ErrorCode::kNoSession);
}

TEST(Protocol, ErrorReplyTruncatedThrows) {
  sim::Message wire =
      encode(ErrorReply{.session_id = 1, .code = ErrorCode::kBadMessage});
  wire.payload.pop_back();
  EXPECT_THROW(decode_error(wire), std::runtime_error);
}

TEST(Protocol, KindMismatchThrows) {
  sim::Message m = encode(SetCodec{.codec = 1});
  EXPECT_THROW(decode_request(m), std::runtime_error);
  EXPECT_THROW(decode_open_image(m), std::runtime_error);
}

TEST(Protocol, TruncatedPayloadThrows) {
  sim::Message m = encode(Request{.cx = 1, .cy = 2, .half = 3, .level = 4});
  m.payload.pop_back();
  EXPECT_THROW(decode_request(m), std::runtime_error);
}

TEST(Protocol, TrailingBytesThrow) {
  sim::Message m = encode(SetCodec{.codec = 1});
  m.payload.push_back(0);
  EXPECT_THROW(decode_set_codec(m), std::runtime_error);
}

TEST(Protocol, ShutdownHasNoPayload) {
  sim::Message m = encode_shutdown();
  EXPECT_EQ(m.kind, kShutdown);
  EXPECT_TRUE(m.payload.empty());
}

}  // namespace
}  // namespace avf::viz
