// Thin cache layers over the content-addressed TileStore: a hit must be
// byte-identical to the uncached path, counters must track
// hits/misses/evictions, byte budgets must hold, and the new content
// keying must agree with the old string-keyed scheme on every
// single-pyramid hit/miss — differing only where it should: identical
// content stored as distinct pyramids now dedups.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "viz/caches.hpp"
#include "viz/tile_store.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {
namespace {

using wavelet::Bytes;
using wavelet::Image;
using wavelet::ProgressiveEncoder;
using wavelet::Pyramid;
using wavelet::Region;
using wavelet::TileRef;

std::shared_ptr<const Pyramid> test_pyramid(std::uint64_t seed = 17) {
  Image img = Image::synthetic(128, 128, seed);
  return std::make_shared<const Pyramid>(img, 3);
}

TEST(RegionEncodeCache, HitIsByteIdenticalAcrossSessions) {
  auto pyr = test_pyramid();
  util::Hash128 content = wavelet::pyramid_content_hash(*pyr);
  ProgressiveEncoder first(*pyr, 8);
  ProgressiveEncoder second(*pyr, 8);  // a different session, same pyramid
  RegionEncodeCache cache;

  Region region{64, 64, 32};
  std::vector<TileRef> tiles = first.take_region_tiles(region, 2);
  ASSERT_FALSE(tiles.empty());
  Bytes direct = first.serialize_tiles(tiles);

  auto miss = cache.encode(content, first, tiles);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(*miss, direct);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // Session two needs the same tiles: served from cache, byte-identical.
  std::vector<TileRef> again = second.take_region_tiles(region, 2);
  ASSERT_EQ(again, tiles);
  auto hit = cache.encode(content, second, again);
  EXPECT_EQ(*hit, direct);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegionEncodeCache, DistinctTileListsAreDistinctEntries) {
  auto pyr = test_pyramid();
  util::Hash128 content = wavelet::pyramid_content_hash(*pyr);
  ProgressiveEncoder enc(*pyr, 8);
  RegionEncodeCache cache;

  std::vector<TileRef> coarse = enc.take_region_tiles({64, 64, 16}, 1);
  std::vector<TileRef> fine = enc.take_region_tiles({64, 64, 48}, 3);
  ASSERT_FALSE(coarse.empty());
  ASSERT_FALSE(fine.empty());
  ASSERT_NE(coarse, fine);

  auto a = cache.encode(content, enc, coarse);
  auto b = cache.encode(content, enc, fine);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(a->size(), enc.serialize_tiles(coarse).size());
}

TEST(RegionEncodeCache, ByteBudgetEvictionRespectsBound) {
  auto pyr = test_pyramid();
  util::Hash128 content = wavelet::pyramid_content_hash(*pyr);
  ProgressiveEncoder enc(*pyr, 8);

  std::vector<TileRef> lists[3] = {
      enc.take_region_tiles({32, 32, 16}, 1),
      enc.take_region_tiles({96, 96, 16}, 2),
      enc.take_region_tiles({64, 64, 60}, 3),
  };
  std::size_t sizes[3];
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(lists[i].empty());
    sizes[i] = enc.serialize_tiles(lists[i]).size();
  }
  // Budget fits any two payloads but not all three: the third insert
  // evicts exactly the oldest entry (all ref bits set => FIFO sweep).
  TileStore::Options opts;
  opts.byte_budget = sizes[0] + sizes[1] + sizes[2] - 1;
  TileStore store(opts);
  RegionEncodeCache cache(store);

  for (const auto& tiles : lists) {
    (void)cache.encode(content, enc, tiles);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(store.bytes_resident(), opts.byte_budget);

  // The oldest entry was evicted: re-encoding it is a fresh miss, and the
  // payload still matches the pure serialization.
  std::uint64_t misses_before = cache.misses();
  auto re = cache.encode(content, enc, lists[0]);
  EXPECT_EQ(*re, enc.serialize_tiles(lists[0]));
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(RegionEncodeCache, EntryPinsPayloadPastEviction) {
  auto pyr = test_pyramid();
  util::Hash128 content = wavelet::pyramid_content_hash(*pyr);
  ProgressiveEncoder enc(*pyr, 8);

  std::vector<TileRef> first = enc.take_region_tiles({32, 32, 16}, 1);
  std::vector<TileRef> second = enc.take_region_tiles({96, 96, 16}, 2);
  TileStore::Options opts;
  opts.byte_budget = enc.serialize_tiles(first).size();
  TileStore store(opts);
  RegionEncodeCache cache(store);

  auto held = cache.encode(content, enc, first);
  Bytes snapshot = *held;
  (void)cache.encode(content, enc, second);  // evicts `first`'s entry
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(*held, snapshot);  // shared ownership keeps the payload alive
}

// The hot-path keying change (incremental 128-bit hash instead of a
// per-request std::string key) must not change *which* lookups hit: replay
// a request sequence against both the new cache and an oracle map keyed by
// the old-style string, and require identical hit/miss verdicts.
TEST(RegionEncodeCache, NewKeyingAgreesWithStringKeyOracle) {
  auto pyr = test_pyramid();
  util::Hash128 content = wavelet::pyramid_content_hash(*pyr);
  ProgressiveEncoder probe(*pyr, 8);
  RegionEncodeCache cache;

  // A walk with deliberate revisits (fresh encoders re-issue tile lists an
  // earlier session already produced).
  std::vector<std::vector<TileRef>> sequence;
  ProgressiveEncoder s1(*pyr, 8);
  sequence.push_back(s1.take_region_tiles({64, 64, 16}, 1));
  sequence.push_back(s1.take_region_tiles({64, 64, 32}, 2));
  ProgressiveEncoder s2(*pyr, 8);
  sequence.push_back(s2.take_region_tiles({64, 64, 16}, 1));  // repeat
  sequence.push_back(s2.take_region_tiles({32, 96, 24}, 2));
  ProgressiveEncoder s3(*pyr, 8);
  sequence.push_back(s3.take_region_tiles({64, 64, 16}, 1));  // repeat
  sequence.push_back(s3.take_region_tiles({64, 64, 32}, 2));  // repeat

  std::map<std::string, bool> oracle;  // old-style string key -> present
  for (const auto& tiles : sequence) {
    if (tiles.empty()) continue;
    // The legacy key: tile size plus the exact TileRef list, serialized to
    // a string (per-pyramid; this whole sequence uses one pyramid).
    std::ostringstream key;
    key << 8;
    for (const TileRef& t : tiles) {
      key << '|' << static_cast<int>(t.band) << ':' << t.tx << ':' << t.ty;
    }
    bool oracle_hit = oracle[key.str()];
    oracle[key.str()] = true;

    std::uint64_t hits_before = cache.hits();
    (void)cache.encode(content, probe, tiles);
    bool new_hit = cache.hits() == hits_before + 1;
    EXPECT_EQ(new_hit, oracle_hit) << "keying divergence on " << key.str();
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

// The one intentional difference from the old pointer-keyed scheme:
// identical content reached through a *different* pyramid object now hits.
TEST(RegionEncodeCache, CrossImageDedupByteEquality) {
  auto pyr_a = test_pyramid(99);
  auto pyr_b = test_pyramid(99);  // distinct object, identical content
  ASSERT_NE(pyr_a.get(), pyr_b.get());
  util::Hash128 content_a = wavelet::pyramid_content_hash(*pyr_a);
  util::Hash128 content_b = wavelet::pyramid_content_hash(*pyr_b);
  EXPECT_EQ(content_a, content_b);

  ProgressiveEncoder enc_a(*pyr_a, 8);
  ProgressiveEncoder enc_b(*pyr_b, 8);
  TileStore store;
  RegionEncodeCache cache(store);

  std::vector<TileRef> tiles_a = enc_a.take_region_tiles({64, 64, 32}, 2);
  std::vector<TileRef> tiles_b = enc_b.take_region_tiles({64, 64, 32}, 2);
  ASSERT_EQ(tiles_a, tiles_b);

  auto first = cache.encode(content_a, enc_a, tiles_a, /*origin_tag=*/1);
  auto second = cache.encode(content_b, enc_b, tiles_b, /*origin_tag=*/2);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(store.unique_entries(), 1u);
  EXPECT_EQ(store.cross_origin_hits(), 1u);
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(*second, enc_b.serialize_tiles(tiles_b));

  // Different content must NOT dedup.
  auto pyr_c = test_pyramid(100);
  util::Hash128 content_c = wavelet::pyramid_content_hash(*pyr_c);
  EXPECT_NE(content_c, content_a);
  ProgressiveEncoder enc_c(*pyr_c, 8);
  std::vector<TileRef> tiles_c = enc_c.take_region_tiles({64, 64, 32}, 2);
  ASSERT_EQ(tiles_c, tiles_a);  // same geometry, different coefficients
  auto third = cache.encode(content_c, enc_c, tiles_c, /*origin_tag=*/3);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_NE(*third, *first);
}

TEST(CompressedChunkCache, HitMatchesRealCodecOutput) {
  Bytes raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(static_cast<std::uint8_t>((i * 31) & 0x7F));
  }
  CompressedChunkCache cache;

  auto miss = cache.compress(codec::CodecId::kLzw, raw);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(*miss, codec::codec_for(codec::CodecId::kLzw).compress(raw));
  EXPECT_EQ(cache.misses(), 1u);

  auto hit = cache.compress(codec::CodecId::kLzw, raw);
  EXPECT_EQ(*hit, *miss);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Same bytes, different codec: a distinct entry with distinct output.
  auto bwt = cache.compress(codec::CodecId::kBwt, raw);
  EXPECT_EQ(*bwt, codec::codec_for(codec::CodecId::kBwt).compress(raw));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CompressedChunkCache, ByteBudgetEvictionRespectsBound) {
  Bytes chunks[3];
  std::size_t sizes[3];
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 256; ++i) {
      chunks[c].push_back(static_cast<std::uint8_t>((i + c * 7) & 0xFF));
    }
    sizes[c] =
        codec::codec_for(codec::CodecId::kLzw).compress(chunks[c]).size();
  }
  TileStore::Options opts;
  opts.byte_budget = sizes[0] + sizes[1] + sizes[2] - 1;
  TileStore store(opts);
  CompressedChunkCache cache(store);

  for (const auto& chunk : chunks) {
    (void)cache.compress(codec::CodecId::kLzw, chunk);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(store.bytes_resident(), opts.byte_budget);
  // Evicted chunk recompresses to the same bytes (pure codec).
  auto re = cache.compress(codec::CodecId::kLzw, chunks[0]);
  EXPECT_EQ(*re, codec::codec_for(codec::CodecId::kLzw).compress(chunks[0]));
  EXPECT_EQ(cache.misses(), 4u);
}

// Region and chunk layers sharing one store must never alias entries even
// for coinciding byte streams: the domain seeds keep key spaces disjoint.
TEST(SharedStore, LayersShareBudgetNotKeys) {
  TileStore store;
  RegionEncodeCache regions(store);
  CompressedChunkCache chunks(store);

  auto pyr = test_pyramid();
  util::Hash128 content = wavelet::pyramid_content_hash(*pyr);
  ProgressiveEncoder enc(*pyr, 8);
  std::vector<TileRef> tiles = enc.take_region_tiles({64, 64, 32}, 2);
  auto region_payload = regions.encode(content, enc, tiles);

  // Compress the region payload itself: same input bytes flowing through
  // the other layer must create a *second* entry, not hit the first.
  auto compressed = chunks.compress(codec::CodecId::kLzw, *region_payload);
  EXPECT_EQ(store.unique_entries(), 2u);
  EXPECT_EQ(chunks.hits(), 0u);
  EXPECT_EQ(store.bytes_resident(),
            region_payload->size() + compressed->size());
}

}  // namespace
}  // namespace avf::viz
