// Shared server-side caches: a hit must be byte-identical to the uncached
// path, counters must track hits/misses/evictions, and FIFO bounds must
// hold.  These are the caches every serve() loop shares in a multi-client
// world, so byte-equality here is what guarantees cached and uncached runs
// produce identical golden traces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "codec/codec.hpp"
#include "viz/caches.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {
namespace {

using wavelet::Bytes;
using wavelet::Image;
using wavelet::ProgressiveEncoder;
using wavelet::Pyramid;
using wavelet::Region;
using wavelet::TileRef;

std::shared_ptr<const Pyramid> test_pyramid() {
  Image img = Image::synthetic(128, 128, 17);
  return std::make_shared<const Pyramid>(img, 3);
}

TEST(RegionEncodeCache, HitIsByteIdenticalAcrossSessions) {
  auto pyr = test_pyramid();
  ProgressiveEncoder first(*pyr, 8);
  ProgressiveEncoder second(*pyr, 8);  // a different session, same pyramid
  RegionEncodeCache cache;

  Region region{64, 64, 32};
  std::vector<TileRef> tiles = first.take_region_tiles(region, 2);
  ASSERT_FALSE(tiles.empty());
  Bytes direct = first.serialize_tiles(tiles);

  auto miss = cache.encode(pyr, first, tiles);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(*miss, direct);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // Session two needs the same tiles: served from cache, byte-identical.
  std::vector<TileRef> again = second.take_region_tiles(region, 2);
  ASSERT_EQ(again, tiles);
  auto hit = cache.encode(pyr, second, again);
  EXPECT_EQ(*hit, direct);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegionEncodeCache, DistinctTileListsAreDistinctEntries) {
  auto pyr = test_pyramid();
  ProgressiveEncoder enc(*pyr, 8);
  RegionEncodeCache cache;

  std::vector<TileRef> coarse = enc.take_region_tiles({64, 64, 16}, 1);
  std::vector<TileRef> fine = enc.take_region_tiles({64, 64, 48}, 3);
  ASSERT_FALSE(coarse.empty());
  ASSERT_FALSE(fine.empty());
  ASSERT_NE(coarse, fine);

  auto a = cache.encode(pyr, enc, coarse);
  auto b = cache.encode(pyr, enc, fine);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(a->size(), enc.serialize_tiles(coarse).size());
}

TEST(RegionEncodeCache, FifoEvictionRespectsBound) {
  auto pyr = test_pyramid();
  ProgressiveEncoder enc(*pyr, 8);
  RegionEncodeCache cache(2);

  std::vector<TileRef> lists[3] = {
      enc.take_region_tiles({32, 32, 16}, 1),
      enc.take_region_tiles({96, 96, 16}, 2),
      enc.take_region_tiles({64, 64, 60}, 3),
  };
  for (const auto& tiles : lists) {
    ASSERT_FALSE(tiles.empty());
    (void)cache.encode(pyr, enc, tiles);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  // The oldest entry was evicted: re-encoding it is a fresh miss, and the
  // payload still matches the pure serialization.
  auto re = cache.encode(pyr, enc, lists[0]);
  EXPECT_EQ(*re, enc.serialize_tiles(lists[0]));
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(RegionEncodeCache, EntryPinsPayloadPastEviction) {
  auto pyr = test_pyramid();
  ProgressiveEncoder enc(*pyr, 8);
  RegionEncodeCache cache(1);

  std::vector<TileRef> first = enc.take_region_tiles({32, 32, 16}, 1);
  std::vector<TileRef> second = enc.take_region_tiles({96, 96, 16}, 2);
  auto held = cache.encode(pyr, enc, first);
  Bytes snapshot = *held;
  (void)cache.encode(pyr, enc, second);  // evicts `first`'s entry
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(*held, snapshot);  // shared ownership keeps the payload alive
}

TEST(CompressedChunkCache, HitMatchesRealCodecOutput) {
  Bytes raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(static_cast<std::uint8_t>((i * 31) & 0x7F));
  }
  CompressedChunkCache cache;

  auto miss = cache.compress(codec::CodecId::kLzw, raw);
  ASSERT_NE(miss, nullptr);
  EXPECT_EQ(*miss, codec::codec_for(codec::CodecId::kLzw).compress(raw));
  EXPECT_EQ(cache.misses(), 1u);

  auto hit = cache.compress(codec::CodecId::kLzw, raw);
  EXPECT_EQ(*hit, *miss);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // Same bytes, different codec: a distinct entry with distinct output.
  auto bwt = cache.compress(codec::CodecId::kBwt, raw);
  EXPECT_EQ(*bwt, codec::codec_for(codec::CodecId::kBwt).compress(raw));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CompressedChunkCache, FifoEvictionRespectsBound) {
  CompressedChunkCache cache(2);
  Bytes chunks[3];
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 256; ++i) {
      chunks[c].push_back(static_cast<std::uint8_t>((i + c * 7) & 0xFF));
    }
    (void)cache.compress(codec::CodecId::kLzw, chunks[c]);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  // Evicted chunk recompresses to the same bytes (pure codec).
  auto re = cache.compress(codec::CodecId::kLzw, chunks[0]);
  EXPECT_EQ(*re, codec::codec_for(codec::CodecId::kLzw).compress(chunks[0]));
  EXPECT_EQ(cache.misses(), 4u);
}

}  // namespace
}  // namespace avf::viz
