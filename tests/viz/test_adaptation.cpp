// End-to-end adaptation tests: profile a small-scale world, then verify the
// paper's three adaptation behaviors (compression / resolution / fovea) at
// miniature scale.  The full-size versions are the fig7* benchmarks.
#include <gtest/gtest.h>

#include "perfdb/prune.hpp"
#include "viz/world.hpp"

namespace avf::viz {
namespace {

using tunable::ConfigPoint;

WorldSetup small_setup() {
  WorldSetup setup;
  setup.image_size = 256;
  setup.levels = 4;
  setup.image_count = 6;
  setup.link_bandwidth_bps = 500e3;
  return setup;
}

/// Small profile of the miniature world, shared across tests in this file.
const perfdb::PerfDatabase& small_db() {
  static const perfdb::PerfDatabase db = [] {
    WorldSetup base = small_setup();
    return build_viz_database(base, {0.1, 0.4, 0.9, 1.0},
                              {25e3, 50e3, 250e3, 500e3});
  }();
  return db;
}

TEST(VizProfile, DatabaseCoversAllConfigs) {
  const auto& db = small_db();
  EXPECT_EQ(db.configs().size(), 18u);
  EXPECT_EQ(db.size(), 18u * 16u);
}

TEST(VizProfile, ProfilesShowPaperTrends) {
  const auto& db = small_db();
  ConfigPoint lzw;
  lzw.set("dR", 160);
  lzw.set("c", 1);
  lzw.set("l", 4);
  ConfigPoint bwt = lzw.with("c", 2);
  // Fig 6(a): crossover — B wins at 25 KBps, A wins at 500 KBps.
  double a_low = db.predict(lzw, {1.0, 25e3})->get("transmit_time");
  double b_low = db.predict(bwt, {1.0, 25e3})->get("transmit_time");
  double a_high = db.predict(lzw, {1.0, 500e3})->get("transmit_time");
  double b_high = db.predict(bwt, {1.0, 500e3})->get("transmit_time");
  EXPECT_LT(b_low, a_low);
  EXPECT_LT(a_high, b_high);
  // Fig 6(b): lower resolution is faster.
  double l3 = db.predict(lzw.with("l", 3), {0.4, 500e3})->get("transmit_time");
  double l4 = db.predict(lzw, {0.4, 500e3})->get("transmit_time");
  EXPECT_LT(l3, l4);
  // Fig 5: larger fovea -> higher response time, no worse transmit time.
  double resp_small = db.predict(lzw.with("dR", 80), {0.9, 500e3})
                          ->get("response_time");
  double resp_big = db.predict(lzw.with("dR", 320), {0.9, 500e3})
                        ->get("response_time");
  EXPECT_GT(resp_big, resp_small);
}

TEST(VizProfile, PruneKeepsCrossoverConfigs) {
  const auto& db = small_db();
  perfdb::PruneResult result = perfdb::analyze_prune(db, 0.01);
  // The none-codec configs are dominated somewhere but LZW/BWT level-4
  // configs both win in some region; they must survive.
  auto kept_has = [&](int c, int l) {
    for (const auto& k : result.kept) {
      if (k.get("c") == c && k.get("l") == l) return true;
    }
    return false;
  };
  EXPECT_TRUE(kept_has(1, 4));
  EXPECT_TRUE(kept_has(2, 4));
  EXPECT_LT(result.kept.size(), 18u);  // something was pruned or merged
}

TEST(VizAdapt, Experiment1SwitchesCompressionOnBandwidthDrop) {
  WorldSetup setup = small_setup();
  setup.image_count = 10;  // leave several images after the drop
  adapt::UserPreference pref = adapt::minimize("transmit_time");
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});

  ResourceSchedule schedule;
  schedule.link_bandwidth = {{0.5, 25e3}};  // collapse after 0.5 s

  SessionResult result =
      run_adaptive_session(setup, small_db(), {pref}, schedule);
  EXPECT_EQ(result.initial_config.get("c"), 1);  // LZW at 500 KBps
  ASSERT_GE(result.adaptations.size(), 1u);
  EXPECT_EQ(result.adaptations[0].to.get("c"), 2);  // switch to BWT
  // Final images actually ran under the new codec.
  EXPECT_NE(result.images.back().final_config.find("c=2"),
            std::string::npos);
}

TEST(VizAdapt, Experiment2DegradesResolutionUnderDeadline) {
  WorldSetup setup = small_setup();
  setup.client_cpu_share = 0.9;
  setup.link_bandwidth_bps = 250e3;
  // Deadline chosen between the level-4 times at 90% and 40% CPU so the
  // drop forces a downgrade.
  double t4_fast =
      small_db()
          .predict(ConfigPoint{{{"dR", 320}, {"c", 1}, {"l", 4}}},
                   {0.9, 250e3})
          ->get("transmit_time");
  double t4_slow =
      small_db()
          .predict(ConfigPoint{{{"dR", 320}, {"c", 1}, {"l", 4}}},
                   {0.4, 250e3})
          ->get("transmit_time");
  ASSERT_LT(t4_fast, t4_slow);
  double deadline = 0.5 * (t4_fast + t4_slow);

  adapt::UserPreference pref = adapt::maximize_metric("resolution");
  pref.constraints.push_back(
      {.metric = "transmit_time", .max = deadline});

  setup.image_count = 10;
  ResourceSchedule schedule;
  schedule.client_cpu = {{.at = 0.5, .cpu_share = 0.4}};

  SessionResult result =
      run_adaptive_session(setup, small_db(), {pref}, schedule);
  EXPECT_EQ(result.initial_config.get("l"), 4);
  ASSERT_GE(result.adaptations.size(), 1u);
  EXPECT_EQ(result.adaptations[0].to.get("l"), 3);
}

TEST(VizAdapt, AdaptiveBeatsWorseStaticUnderChange) {
  WorldSetup setup = small_setup();
  setup.image_count = 10;
  adapt::UserPreference pref = adapt::minimize("transmit_time");
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});
  ResourceSchedule schedule;
  schedule.link_bandwidth = {{0.5, 25e3}};

  SessionResult adaptive =
      run_adaptive_session(setup, small_db(), {pref}, schedule);
  ConfigPoint static_a;  // stays on LZW throughout
  static_a.set("dR", 160);
  static_a.set("c", 1);
  static_a.set("l", 4);
  SessionResult fixed = run_fixed_session(setup, static_a, schedule);
  EXPECT_LT(adaptive.total_time, fixed.total_time);
}

TEST(VizAdapt, NoAdaptationUnderSteadyResources) {
  WorldSetup setup = small_setup();
  setup.image_count = 4;
  adapt::UserPreference pref = adapt::minimize("transmit_time");
  SessionResult result = run_adaptive_session(setup, small_db(), {pref});
  EXPECT_TRUE(result.adaptations.empty());
}

}  // namespace
}  // namespace avf::viz
