// Regression tests for CompressedSizeCache keying and bounding.
//
// The seed implementation mixed the codec id into a single integer key as
// fingerprint * 0x100000001b3 + id, which collides whenever two payload
// fingerprints differ by a multiple of the prime's modular inverse — the
// cache then silently returns the wrong codec's size.  It also grew the
// process-wide singleton without bound.
#include "viz/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace avf::viz {
namespace {

using codec::Bytes;
using codec::CodecId;

TEST(SizeCache, DistinguishesCodecsForSamePayload) {
  CompressedSizeCache cache;
  Bytes payload{1, 2, 3, 4, 5};
  cache.store(CodecId::kNone, payload, 100);
  cache.store(CodecId::kLzw, payload, 42);
  cache.store(CodecId::kBwt, payload, 7);
  EXPECT_EQ(cache.lookup(CodecId::kNone, payload), 100u);
  EXPECT_EQ(cache.lookup(CodecId::kLzw, payload), 42u);
  EXPECT_EQ(cache.lookup(CodecId::kBwt, payload), 7u);
}

TEST(SizeCache, CrossCodecFingerprintCollisionResolved) {
  // Construct the exact collision the seed keying suffered from: with
  //   old_key(f, id) = f * P + id,  P = 0x100000001b3 (odd, so invertible
  //   mod 2^64 with inverse Pinv = 0xce965057aff6957b),
  // the fingerprints f and f + Pinv collide across codec ids 1 and 0:
  //   (f + Pinv) * P + 0 == f * P + 1  (mod 2^64).
  // Keyed on the (fingerprint, codec) pair, both entries must coexist.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  constexpr std::uint64_t kPrimeInverse = 0xce965057aff6957bULL;
  static_assert(kPrime * kPrimeInverse == 1ULL, "inverse mod 2^64");

  std::uint64_t f1 = 0xdeadbeefcafef00dULL;
  std::uint64_t f2 = f1 + kPrimeInverse;
  // Demonstrate the old single-integer keys really were equal.
  ASSERT_EQ(f1 * kPrime + static_cast<std::uint64_t>(CodecId::kLzw),
            f2 * kPrime + static_cast<std::uint64_t>(CodecId::kNone));

  CompressedSizeCache cache;
  cache.store(CodecId::kLzw, f1, 1111);
  cache.store(CodecId::kNone, f2, 2222);
  EXPECT_EQ(cache.lookup(CodecId::kLzw, f1), 1111u);
  EXPECT_EQ(cache.lookup(CodecId::kNone, f2), 2222u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SizeCache, BoundedWithFifoEviction) {
  CompressedSizeCache cache(4);
  for (std::uint64_t f = 0; f < 10; ++f) {
    cache.store(CodecId::kLzw, f, static_cast<std::size_t>(f));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.evictions(), 6u);
  // Oldest entries evicted, newest retained.
  EXPECT_FALSE(cache.lookup(CodecId::kLzw, std::uint64_t{0}).has_value());
  EXPECT_EQ(cache.lookup(CodecId::kLzw, std::uint64_t{9}), 9u);
}

TEST(SizeCache, OverwriteDoesNotDuplicateQueueEntries) {
  CompressedSizeCache cache(2);
  for (int round = 0; round < 50; ++round) {
    cache.store(CodecId::kLzw, std::uint64_t{1}, 10);
    cache.store(CodecId::kLzw, std::uint64_t{2}, 20);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.lookup(CodecId::kLzw, std::uint64_t{1}), 10u);
  EXPECT_EQ(cache.lookup(CodecId::kLzw, std::uint64_t{2}), 20u);
}

TEST(SizeCache, CountsHitsAndMisses) {
  CompressedSizeCache cache;
  Bytes payload{9, 9, 9};
  EXPECT_FALSE(cache.lookup(CodecId::kLzw, payload).has_value());
  cache.store(CodecId::kLzw, payload, 3);
  EXPECT_TRUE(cache.lookup(CodecId::kLzw, payload).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SizeCache, ProductionSizeIsSharded) {
  CompressedSizeCache cache;  // default 1<<16 entries
  EXPECT_EQ(cache.shard_count(), 16u);
  // Counters and size() aggregate across shards.
  for (std::uint64_t fp = 0; fp < 64; ++fp) {
    std::uint64_t spread = fp << 58;  // hit different shards via high bits
    cache.store(codec::CodecId::kLzw, spread, 100 + fp);
  }
  EXPECT_EQ(cache.size(), 64u);
  for (std::uint64_t fp = 0; fp < 64; ++fp) {
    auto got = cache.lookup(codec::CodecId::kLzw, fp << 58);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 100 + fp);
  }
  EXPECT_EQ(cache.hits(), 64u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SizeCache, SmallCacheCollapsesToOneShard) {
  // Tight bounds keep the exact single-FIFO semantics the eviction tests
  // above pin down.
  CompressedSizeCache cache(8);
  EXPECT_EQ(cache.shard_count(), 1u);
}

TEST(SizeCache, ShardThresholdBoundaryAt256Entries) {
  // The split happens at exactly kMaxShards^2 = 256 entries: 255 stays a
  // single exact FIFO, 256 shards 16 ways with a per-shard bound of 16.
  CompressedSizeCache below(255);
  EXPECT_EQ(below.shard_count(), 1u);
  CompressedSizeCache at(256);
  EXPECT_EQ(at.shard_count(), 16u);

  // Below the boundary: global FIFO, exact capacity 255.  Entry 0 is the
  // first victim no matter which shard its fingerprint would map to.
  for (std::uint64_t fp = 0; fp < 255; ++fp) {
    below.store(CodecId::kLzw, fp << 40, static_cast<std::size_t>(fp));
  }
  EXPECT_EQ(below.size(), 255u);
  EXPECT_EQ(below.evictions(), 0u);
  below.store(CodecId::kLzw, std::uint64_t{255} << 40, 255);
  EXPECT_EQ(below.size(), 255u);
  EXPECT_EQ(below.evictions(), 1u);
  EXPECT_FALSE(below.lookup(CodecId::kLzw, std::uint64_t{0}).has_value());

  // At the boundary: the bound is per shard (256 / 16 = 16).  Seventeen
  // keys that all select shard 0 (high bits zero) evict within that shard
  // even though the cache as a whole is nearly empty.
  for (std::uint64_t fp = 1; fp <= 16; ++fp) {
    at.store(CodecId::kLzw, fp, static_cast<std::size_t>(fp));
  }
  EXPECT_EQ(at.size(), 16u);
  EXPECT_EQ(at.evictions(), 0u);
  at.store(CodecId::kLzw, std::uint64_t{17}, 17);
  EXPECT_EQ(at.size(), 16u);
  EXPECT_EQ(at.evictions(), 1u);
  EXPECT_FALSE(at.lookup(CodecId::kLzw, std::uint64_t{1}).has_value());
  EXPECT_EQ(at.lookup(CodecId::kLzw, std::uint64_t{17}), 17u);
}

TEST(SizeCache, ShardedAggregateBoundHolds) {
  CompressedSizeCache cache(256);  // 16 shards x 16 entries
  EXPECT_EQ(cache.shard_count(), 16u);
  for (std::uint64_t fp = 0; fp < 1024; ++fp) {
    // Mix the low bits into the shard-selecting high bits so every shard
    // sees traffic.
    std::uint64_t key = fp | (fp << 55);
    cache.store(codec::CodecId::kLzw, key, fp);
  }
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_EQ(cache.size() + cache.evictions(), 1024u);
}

}  // namespace
}  // namespace avf::viz
