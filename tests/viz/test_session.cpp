// Integration tests: full client/server sessions in the simulated world.
// These use small images (256x256) to keep the real compression work modest;
// the figure benchmarks use the full 1024x1024 setup.
#include <gtest/gtest.h>

#include "viz/world.hpp"

namespace avf::viz {
namespace {

using tunable::ConfigPoint;

WorldSetup small_setup() {
  WorldSetup setup;
  setup.image_size = 256;
  setup.levels = 4;
  setup.image_count = 1;
  setup.link_bandwidth_bps = 500e3;
  return setup;
}

ConfigPoint cfg(int dR, int c, int l) {
  ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

TEST(VizSpec, DeclaresPaperKnobs) {
  const tunable::AppSpec& spec = viz_app_spec();
  EXPECT_EQ(spec.space().parameter_count(), 3u);
  EXPECT_EQ(spec.space().enumerate().size(), 18u);  // 3 x 3 x 2
  EXPECT_TRUE(spec.metrics().has("transmit_time"));
  EXPECT_TRUE(spec.metrics().has("response_time"));
  EXPECT_TRUE(spec.metrics().has("resolution"));
  EXPECT_EQ(spec.resource_axes(),
            (std::vector<std::string>{"cpu_share", "net_bps"}));
  EXPECT_EQ(spec.tasks().size(), 1u);
  EXPECT_EQ(spec.transitions().size(), 1u);
}

TEST(VizSession, FixedSessionCompletes) {
  SessionResult r = run_fixed_session(small_setup(), cfg(80, 1, 4));
  ASSERT_EQ(r.images.size(), 1u);
  EXPECT_GT(r.images[0].transmit_time, 0.0);
  EXPECT_GT(r.images[0].rounds, 1);
  EXPECT_EQ(r.images[0].resolution, 4);
  EXPECT_GT(r.images[0].wire_bytes, 1000u);
}

TEST(VizSession, InvalidConfigRejected) {
  EXPECT_THROW(run_fixed_session(small_setup(), cfg(80, 9, 4)),
               std::invalid_argument);
}

TEST(VizSession, LowerResolutionIsFasterAndSmaller) {
  SessionResult l4 = run_fixed_session(small_setup(), cfg(80, 1, 4));
  SessionResult l3 = run_fixed_session(small_setup(), cfg(80, 1, 3));
  EXPECT_LT(l3.images[0].transmit_time, l4.images[0].transmit_time);
  EXPECT_LT(l3.images[0].wire_bytes, l4.images[0].wire_bytes);
  EXPECT_EQ(l3.images[0].resolution, 3);
}

TEST(VizSession, LargerFoveaFewerRoundsHigherResponse) {
  SessionResult small_fovea = run_fixed_session(small_setup(), cfg(80, 1, 4));
  SessionResult big_fovea = run_fixed_session(small_setup(), cfg(320, 1, 4));
  EXPECT_GT(small_fovea.images[0].rounds, big_fovea.images[0].rounds);
  EXPECT_LT(small_fovea.images[0].avg_response,
            big_fovea.images[0].avg_response);
  // Fewer per-round overheads -> total no worse.
  EXPECT_LE(big_fovea.images[0].transmit_time,
            small_fovea.images[0].transmit_time);
}

TEST(VizSession, CompressionReducesWireBytes) {
  SessionResult raw = run_fixed_session(small_setup(), cfg(160, 0, 4));
  SessionResult lzw = run_fixed_session(small_setup(), cfg(160, 1, 4));
  SessionResult bwt = run_fixed_session(small_setup(), cfg(160, 2, 4));
  EXPECT_LT(lzw.images[0].wire_bytes, raw.images[0].wire_bytes);
  EXPECT_LT(bwt.images[0].wire_bytes, lzw.images[0].wire_bytes);
}

TEST(VizSession, SlowerCpuSlowsSession) {
  WorldSetup fast = small_setup();
  WorldSetup slow = small_setup();
  slow.client_cpu_share = 0.2;
  SessionResult f = run_fixed_session(fast, cfg(160, 1, 4));
  SessionResult s = run_fixed_session(slow, cfg(160, 1, 4));
  EXPECT_GT(s.images[0].transmit_time, f.images[0].transmit_time);
}

TEST(VizSession, LessBandwidthSlowsSession) {
  WorldSetup fast = small_setup();
  WorldSetup slow = small_setup();
  slow.link_bandwidth_bps = 50e3;
  SessionResult f = run_fixed_session(fast, cfg(160, 1, 4));
  SessionResult s = run_fixed_session(slow, cfg(160, 1, 4));
  EXPECT_GT(s.images[0].transmit_time, 3.0 * f.images[0].transmit_time);
}

TEST(VizSession, MultipleImagesSequential) {
  WorldSetup setup = small_setup();
  setup.image_count = 3;
  SessionResult r = run_fixed_session(setup, cfg(160, 1, 4));
  ASSERT_EQ(r.images.size(), 3u);
  for (std::size_t i = 1; i < r.images.size(); ++i) {
    EXPECT_GE(r.images[i].start_time, r.images[i - 1].end_time);
  }
}

TEST(VizSession, DeterministicAcrossRuns) {
  SessionResult a = run_fixed_session(small_setup(), cfg(160, 1, 4));
  SessionResult b = run_fixed_session(small_setup(), cfg(160, 1, 4));
  EXPECT_DOUBLE_EQ(a.images[0].transmit_time, b.images[0].transmit_time);
  EXPECT_EQ(a.images[0].wire_bytes, b.images[0].wire_bytes);
}

TEST(VizSession, SizeCacheDoesNotChangeTiming) {
  // With the compressed-size cache disabled, every reply is really
  // compressed and really decompressed; the simulated times must be
  // identical to the cached run (the cache is a pure CPU-time optimization
  // of the *experiment harness*, not of the simulated application).
  WorldSetup cached = small_setup();
  WorldSetup uncached = small_setup();
  uncached.server_options.size_cache = nullptr;
  SessionResult a = run_fixed_session(cached, cfg(160, 2, 4));
  SessionResult b = run_fixed_session(uncached, cfg(160, 2, 4));
  ASSERT_EQ(a.images.size(), b.images.size());
  EXPECT_NEAR(a.images[0].transmit_time, b.images[0].transmit_time, 1e-9);
  EXPECT_EQ(a.images[0].wire_bytes, b.images[0].wire_bytes);
  EXPECT_EQ(a.images[0].rounds, b.images[0].rounds);
}

TEST(VizSession, BandwidthStepMidSessionSlowsLaterImages) {
  WorldSetup setup = small_setup();
  setup.image_count = 4;
  ResourceSchedule schedule;
  SessionResult base = run_fixed_session(setup, cfg(160, 1, 4));
  double step_at = base.images[1].end_time + 0.01;
  schedule.link_bandwidth = {{step_at, 50e3}};
  SessionResult stepped = run_fixed_session(setup, cfg(160, 1, 4), schedule);
  // Images before the step match the baseline; after it they are slower.
  EXPECT_NEAR(stepped.images[0].transmit_time, base.images[0].transmit_time,
              1e-9);
  EXPECT_GT(stepped.images[3].transmit_time,
            2.0 * base.images[3].transmit_time);
}

TEST(VizSession, QuantizedEnforcementCloseToFluid) {
  WorldSetup fluid = small_setup();
  fluid.client_cpu_share = 0.4;
  WorldSetup quantized = fluid;
  quantized.enforcement = sandbox::CpuEnforcement::kQuantized;
  SessionResult f = run_fixed_session(fluid, cfg(160, 1, 4));
  SessionResult q = run_fixed_session(quantized, cfg(160, 1, 4));
  EXPECT_NEAR(q.images[0].transmit_time, f.images[0].transmit_time,
              0.15 * f.images[0].transmit_time);
}


TEST(VizSession, DelayedNetEnforcementMatchesFluid) {
  // The paper's actual network mechanism (delaying sends) and the fluid
  // link cap must agree on session timing when the server's bandwidth is
  // the binding constraint.
  WorldSetup fluid = small_setup();
  fluid.server_net_bps = 100e3;
  WorldSetup delayed = fluid;
  delayed.net_enforcement = sandbox::NetEnforcement::kDelayed;
  SessionResult f = run_fixed_session(fluid, cfg(160, 1, 4));
  SessionResult d = run_fixed_session(delayed, cfg(160, 1, 4));
  // Delayed mode paces each message *before* injection rather than during,
  // so the two mechanisms differ by up to one burst per round.
  EXPECT_NEAR(d.images[0].transmit_time, f.images[0].transmit_time,
              0.15 * f.images[0].transmit_time);
  EXPECT_EQ(d.images[0].wire_bytes, f.images[0].wire_bytes);
}

TEST(VizSession, ServerStatsAccumulate) {
  WorldSetup setup = small_setup();
  VizWorld world(setup);
  VizClient& client = world.make_client(cfg(160, 1, 4));
  auto& sim = world.simulator();
  sim.spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    co_await client.fetch_images(0, 1);
    co_await client.shutdown_server();
  };
  sim.spawn(driver());
  sim.run();
  EXPECT_GT(world.server().requests_served(), 0u);
  EXPECT_GT(world.server().raw_bytes_encoded(), 0u);
  EXPECT_GT(world.server().wire_bytes_sent(), 0u);
  EXPECT_LT(world.server().wire_bytes_sent(),
            world.server().raw_bytes_encoded());
}

}  // namespace
}  // namespace avf::viz
