// User-interaction traces: the paper's fovea follows the mouse; requests
// re-center, the server keeps sending only new data, and the image still
// completes losslessly.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "viz/world.hpp"

namespace avf::viz {
namespace {

using tunable::ConfigPoint;

ConfigPoint cfg(int dR, int c, int l) {
  ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

WorldSetup setup_with_interaction(
    std::function<void(int, int&, int&, int&)> interaction) {
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  setup.link_bandwidth_bps = 500e3;
  setup.client_options.interaction = std::move(interaction);
  return setup;
}

TEST(Interaction, MovingFoveaStillCompletes) {
  // The fovea wanders; the growing request region eventually covers the
  // image and the session terminates.
  util::SplitMix64 rng(3);
  WorldSetup setup = setup_with_interaction(
      [&rng](int, int& cx, int& cy, int& half) {
        cx = static_cast<int>(rng.next_below(256));
        cy = static_cast<int>(rng.next_below(256));
        (void)half;
      });
  SessionResult r = run_fixed_session(setup, cfg(80, 1, 4));
  ASSERT_EQ(r.images.size(), 1u);
  EXPECT_GT(r.images[0].rounds, 1);
}

TEST(Interaction, MovingFoveaSendsNoMoreThanFixedFovea) {
  // Revisiting regions must not resend data: total wire bytes with a
  // moving fovea stay within a whisker of the fixed-fovea session (only
  // boundary tiles can differ).
  WorldSetup fixed;
  fixed.image_size = 256;
  fixed.image_count = 1;
  SessionResult baseline = run_fixed_session(fixed, cfg(80, 0, 4));

  int phase = 0;
  WorldSetup moving = setup_with_interaction(
      [&phase](int, int& cx, int& cy, int&) {
        // Oscillate between two corners.
        cx = (phase++ % 2 == 0) ? 64 : 192;
        cy = cx;
      });
  SessionResult wandered = run_fixed_session(moving, cfg(80, 0, 4));
  EXPECT_LE(wandered.images[0].wire_bytes,
            baseline.images[0].wire_bytes * 1.02);
  EXPECT_GE(wandered.images[0].wire_bytes,
            baseline.images[0].wire_bytes / 1.02);
}

TEST(Interaction, FoveaResetSlowsCompletionButTerminates) {
  // An interaction that keeps shrinking the accumulated extent (the user
  // "zooms" back) lengthens the session but cannot livelock it: the
  // server-side sent-state is monotone, so coverage still only grows.
  int interventions = 0;
  WorldSetup setup = setup_with_interaction(
      [&interventions](int round, int&, int&, int& half) {
        if (round < 3) {
          half = 40;  // reset the extent early on
          ++interventions;
        }
      });
  SessionResult r = run_fixed_session(setup, cfg(80, 0, 4));
  // The session may complete before all three scripted resets fire (tile
  // granularity can cover the image early), but at least the early ones
  // ran and the session still terminated.
  EXPECT_GE(interventions, 2);
  ASSERT_EQ(r.images.size(), 1u);
  WorldSetup plain;
  plain.image_size = 256;
  plain.image_count = 1;
  SessionResult baseline = run_fixed_session(plain, cfg(80, 0, 4));
  EXPECT_GE(r.images[0].rounds, baseline.images[0].rounds);
}

TEST(Interaction, OffCenterFoveaConfigured) {
  WorldSetup setup;
  setup.image_size = 256;
  setup.image_count = 1;
  setup.client_options.fovea_cx = 10;
  setup.client_options.fovea_cy = 10;
  SessionResult r = run_fixed_session(setup, cfg(80, 0, 4));
  // The corner fovea needs a larger extent to cover the far corner.
  WorldSetup centered;
  centered.image_size = 256;
  centered.image_count = 1;
  SessionResult c = run_fixed_session(centered, cfg(80, 0, 4));
  EXPECT_GE(r.images[0].rounds, c.images[0].rounds);
}

}  // namespace
}  // namespace avf::viz
