// The content-addressed TileStore: hit/miss/dedup counters, byte-budgeted
// second-chance (CLOCK) eviction, eviction-under-pin safety, the
// verify_on_hit collision guard, and the sharding threshold.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "util/hash.hpp"
#include "viz/tile_store.hpp"

namespace avf::viz {
namespace {

TileStore::Key key_of(std::uint32_t i) {
  return util::Hasher128::of(&i, sizeof(i), /*seed=*/0x7465737453ULL);
}

TileStore::Payload payload_of(std::size_t size, std::uint8_t fill) {
  return TileStore::Payload(size, fill);
}

TEST(TileStore, HitMissAndDedupCounters) {
  TileStore store;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return payload_of(100, 7);
  };

  auto first = store.get_or_build(key_of(1), /*origin_tag=*/1, build);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.unique_entries(), 1u);
  EXPECT_EQ(store.bytes_resident(), 100u);

  auto second = store.get_or_build(key_of(1), /*origin_tag=*/1, build);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(builds, 1);  // the builder never ran on the hit
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.bytes_deduped(), 100u);
  EXPECT_EQ(store.cross_origin_hits(), 0u);  // same tag
  EXPECT_EQ(first.payload.get(), second.payload.get());

  // Same key from a different origin: the cross-image dedup counter.
  auto cross = store.get_or_build(key_of(1), /*origin_tag=*/2, build);
  EXPECT_TRUE(cross.hit);
  EXPECT_EQ(store.cross_origin_hits(), 1u);
  EXPECT_EQ(store.bytes_deduped(), 200u);
}

TEST(TileStore, SecondChanceClockSparesTouchedEntries) {
  // Identical twin stores, budget = two 64-byte payloads.  Both insert
  // A, B, C (the C insert sweeps: clears A's and B's bits, evicts A,
  // leaving C and B unreferenced with the hand on C).  One store then
  // *touches* C before inserting D; the other does not.  The touched C
  // spends its reference bit and survives the D sweep — the untouched C
  // is the victim.
  auto run = [](bool touch_c) {
    TileStore::Options opts;
    opts.byte_budget = 128;
    auto store = std::make_unique<TileStore>(opts);
    for (std::uint32_t k = 1; k <= 3; ++k) {
      (void)store->get_or_build(key_of(k), 0,
                                [&] { return payload_of(64, k); });
    }
    EXPECT_EQ(store->evictions(), 1u);  // A (key 1) went FIFO
    if (touch_c) {
      EXPECT_NE(store->find(key_of(3), 0), nullptr);
    }
    (void)store->get_or_build(key_of(4), 0, [&] { return payload_of(64, 4); });
    EXPECT_EQ(store->evictions(), 2u);
    EXPECT_EQ(store->unique_entries(), 2u);
    EXPECT_LE(store->bytes_resident(), opts.byte_budget);
    return store;
  };

  auto touched = run(/*touch_c=*/true);
  EXPECT_NE(touched->find(key_of(3), 0), nullptr);  // C survived
  EXPECT_EQ(touched->find(key_of(2), 0), nullptr);  // B was the victim

  auto untouched = run(/*touch_c=*/false);
  EXPECT_EQ(untouched->find(key_of(3), 0), nullptr);  // C was the victim
  EXPECT_NE(untouched->find(key_of(2), 0), nullptr);  // B survived
}

TEST(TileStore, EvictionUnderPinKeepsPayloadAlive) {
  TileStore::Options opts;
  opts.byte_budget = 64;  // exactly one payload
  TileStore store(opts);

  auto pinned = store.get_or_build(key_of(1), 0,
                                   [] { return payload_of(64, 0xAA); });
  TileStore::Payload snapshot = *pinned.payload;
  EXPECT_EQ(store.pinned_entries(), 1u);

  // The second insert evicts the first entry even though it is pinned.
  auto second = store.get_or_build(key_of(2), 0,
                                   [] { return payload_of(64, 0xBB); });
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.unique_entries(), 1u);
  EXPECT_EQ(store.bytes_evicted(), 64u);

  // The in-flight pin still sees the exact original bytes.
  EXPECT_EQ(*pinned.payload, snapshot);
  // The store itself no longer has the entry: a re-request rebuilds.
  int rebuilds = 0;
  auto re = store.get_or_build(key_of(1), 0, [&] {
    ++rebuilds;
    return payload_of(64, 0xAA);
  });
  EXPECT_FALSE(re.hit);
  EXPECT_EQ(rebuilds, 1);
  EXPECT_EQ(*re.payload, snapshot);

  // Dropping the last external pin empties the pinned count for that
  // entry's payload (the freshly returned pins still count).
  (void)second;
}

TEST(TileStore, PinnedEntriesTracksExternalReferences) {
  TileStore store;
  {
    auto held = store.get_or_build(key_of(1), 0,
                                   [] { return payload_of(32, 1); });
    EXPECT_EQ(store.pinned_entries(), 1u);
    (void)held;
  }
  // The pin went out of scope: the entry stays resident but unpinned.
  EXPECT_EQ(store.unique_entries(), 1u);
  EXPECT_EQ(store.pinned_entries(), 0u);
}

TEST(TileStore, VerifyOnHitCatchesInjectedCollision) {
  TileStore::Options opts;
  opts.verify_on_hit = true;
  TileStore store(opts);

  auto a = store.get_or_build(key_of(1), /*origin_tag=*/1,
                              [] { return payload_of(48, 0x11); });
  EXPECT_FALSE(a.hit);
  EXPECT_FALSE(a.collision);

  // Simulate a 128-bit collision: the same key now maps to *different*
  // content.  verify_on_hit rebuilds, detects the mismatch, replaces the
  // entry, and returns the rebuilt (correct) payload — a collision can
  // never corrupt a reply.
  auto b = store.get_or_build(key_of(1), /*origin_tag=*/2,
                              [] { return payload_of(48, 0x22); });
  EXPECT_TRUE(b.hit);
  EXPECT_TRUE(b.collision);
  EXPECT_EQ(*b.payload, payload_of(48, 0x22));
  EXPECT_EQ(store.collisions(), 1u);
  EXPECT_EQ(store.unique_entries(), 1u);
  EXPECT_EQ(store.bytes_resident(), 48u);

  // The entry now holds the replacement: same builder verifies clean.
  auto c = store.get_or_build(key_of(1), /*origin_tag=*/2,
                              [] { return payload_of(48, 0x22); });
  EXPECT_TRUE(c.hit);
  EXPECT_FALSE(c.collision);
  EXPECT_EQ(store.collisions(), 1u);
}

TEST(TileStore, VerifyOnHitCleanHitsMatchStoredBytes) {
  TileStore::Options opts;
  opts.verify_on_hit = true;
  TileStore store(opts);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return payload_of(80, 0x5C);
  };
  auto first = store.get_or_build(key_of(9), 0, build);
  auto second = store.get_or_build(key_of(9), 0, build);
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.collision);
  EXPECT_EQ(builds, 2);  // verify mode rebuilds on the hit to compare
  EXPECT_EQ(first.payload.get(), second.payload.get());  // original kept
  EXPECT_EQ(store.collisions(), 0u);
}

TEST(TileStore, ZeroBudgetIsBuildPassThrough) {
  TileStore::Options opts;
  opts.byte_budget = 0;
  TileStore store(opts);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return payload_of(16, 3);
  };
  auto a = store.get_or_build(key_of(1), 0, build);
  auto b = store.get_or_build(key_of(1), 0, build);
  EXPECT_EQ(builds, 2);  // nothing was stored
  EXPECT_FALSE(b.hit);
  EXPECT_EQ(store.unique_entries(), 0u);
  EXPECT_EQ(store.bytes_resident(), 0u);
  EXPECT_EQ(*a.payload, *b.payload);
}

TEST(TileStore, ShardingThresholdMatchesBudget) {
  EXPECT_EQ(TileStore().shard_count(), TileStore::kMaxShards);
  TileStore::Options small;
  small.byte_budget = TileStore::kMaxShards * TileStore::kMinShardBudget - 1;
  EXPECT_EQ(TileStore(small).shard_count(), 1u);
}

TEST(TileStore, ClearResetsEverything) {
  TileStore store;
  (void)store.get_or_build(key_of(1), 0, [] { return payload_of(10, 1); });
  (void)store.get_or_build(key_of(1), 0, [] { return payload_of(10, 1); });
  store.clear();
  EXPECT_EQ(store.unique_entries(), 0u);
  EXPECT_EQ(store.bytes_resident(), 0u);
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_EQ(store.misses(), 0u);
}

}  // namespace
}  // namespace avf::viz
