// Multi-client determinism and cache-transparency suite.
//
// Two invariants anchor the multi-session server:
//  1. Determinism: for a fixed seed, a run is a pure function of the setup —
//     running the same N-client world twice yields byte-identical results
//     (compared via result_fingerprint) for any N.
//  2. Cache transparency: the shared encode/compression caches save host
//     cycles only; enabling or disabling them must not change a single
//     payload byte or any simulated timestamp.
#include <gtest/gtest.h>

#include <cstdint>

#include "viz/caches.hpp"
#include "viz/world.hpp"

namespace avf::viz {
namespace {

using tunable::ConfigPoint;

ConfigPoint cfg(int dR, int c, int l) {
  ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

WorldSetup small_setup(int clients) {
  WorldSetup setup;
  setup.client_count = clients;
  setup.image_size = 256;
  setup.levels = 3;
  setup.image_count = 2;
  return setup;
}

class MultiClientDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(MultiClientDeterminism, SameSeedSameFingerprint) {
  const int n = GetParam();
  ConfigPoint config = cfg(160, 1, 3);
  MultiSessionResult first = run_multi_fixed_session(small_setup(n), config);
  MultiSessionResult second = run_multi_fixed_session(small_setup(n), config);

  ASSERT_EQ(first.clients.size(), static_cast<std::size_t>(n));
  for (const SessionResult& client : first.clients) {
    ASSERT_EQ(client.images.size(), 2u);
    EXPECT_GT(client.images[0].rounds, 0);
    EXPECT_NE(client.images[0].payload_hash, 0u);
  }
  EXPECT_EQ(result_fingerprint(first), result_fingerprint(second));
  EXPECT_DOUBLE_EQ(first.total_time, second.total_time);
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, MultiClientDeterminism,
                         ::testing::Values(1, 4, 16));

TEST(MultiClient, CachedMatchesUncachedByteForByte) {
  ConfigPoint config = cfg(160, 1, 3);

  // Cached run: fresh local caches so counters are attributable to this
  // world alone (the global() instances are shared process-wide).
  CompressedSizeCache size_cache;
  RegionEncodeCache region_cache;
  CompressedChunkCache chunk_cache;
  WorldSetup cached = small_setup(4);
  cached.server_options.size_cache = &size_cache;
  cached.server_options.region_cache = &region_cache;
  cached.server_options.chunk_cache = &chunk_cache;
  MultiSessionResult with_caches = run_multi_fixed_session(cached, config);

  // Uncached run: every request re-serializes and really compresses.
  WorldSetup naive = small_setup(4);
  naive.server_options.size_cache = nullptr;
  naive.server_options.region_cache = nullptr;
  naive.server_options.chunk_cache = nullptr;
  MultiSessionResult without = run_multi_fixed_session(naive, config);

  // Four clients fetching the same images from identical sent-states means
  // the shared region cache must have been exercised.
  EXPECT_GT(region_cache.hits(), 0u);
  EXPECT_GT(region_cache.misses(), 0u);

  // Caches save host cycles, never simulated work: payload bytes and every
  // timestamp agree exactly with the naive path.
  ASSERT_EQ(with_caches.clients.size(), without.clients.size());
  for (std::size_t i = 0; i < with_caches.clients.size(); ++i) {
    const auto& a = with_caches.clients[i].images;
    const auto& b = without.clients[i].images;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].payload_hash, b[j].payload_hash);
      EXPECT_EQ(a[j].wire_bytes, b[j].wire_bytes);
      EXPECT_EQ(a[j].rounds, b[j].rounds);
      EXPECT_DOUBLE_EQ(a[j].end_time, b[j].end_time);
    }
  }
  EXPECT_EQ(result_fingerprint(with_caches), result_fingerprint(without));
}

TEST(MultiClient, InterleavedSessionsShareRegionEncodes) {
  // With premeasured replies disabled the server ships genuine compressed
  // bytes, exercising the chunk cache across interleaved sessions too.
  ConfigPoint config = cfg(160, 1, 3);
  RegionEncodeCache region_cache;
  CompressedChunkCache chunk_cache;
  WorldSetup setup = small_setup(4);
  setup.server_options.size_cache = nullptr;  // fidelity mode
  setup.server_options.region_cache = &region_cache;
  setup.server_options.chunk_cache = &chunk_cache;

  MultiSessionResult result = run_multi_fixed_session(setup, config);
  ASSERT_EQ(result.clients.size(), 4u);

  // All four sessions walk the same foveal schedule over the same images,
  // so beyond the first session the others hit both caches.
  EXPECT_GT(region_cache.hits(), 0u);
  EXPECT_GT(chunk_cache.hits(), 0u);
  // Every client decoded the same pixel stream.
  for (std::size_t i = 1; i < result.clients.size(); ++i) {
    ASSERT_EQ(result.clients[i].images.size(),
              result.clients[0].images.size());
    for (std::size_t j = 0; j < result.clients[i].images.size(); ++j) {
      EXPECT_EQ(result.clients[i].images[j].payload_hash,
                result.clients[0].images[j].payload_hash);
    }
  }
}

TEST(MultiClient, SingleClientMatchesLegacyFixedSession) {
  // The multi-client runner at N=1 must reproduce the historical
  // single-client session byte for byte (golden-trace compatibility).
  ConfigPoint config = cfg(160, 1, 3);
  MultiSessionResult multi = run_multi_fixed_session(small_setup(1), config);
  SessionResult legacy = run_fixed_session(small_setup(1), config);

  ASSERT_EQ(multi.clients.size(), 1u);
  const auto& a = multi.clients[0].images;
  const auto& b = legacy.images;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].payload_hash, b[j].payload_hash);
    EXPECT_EQ(a[j].wire_bytes, b[j].wire_bytes);
    EXPECT_DOUBLE_EQ(a[j].start_time, b[j].start_time);
    EXPECT_DOUBLE_EQ(a[j].end_time, b[j].end_time);
    EXPECT_DOUBLE_EQ(a[j].transmit_time, b[j].transmit_time);
  }
}

TEST(MultiClient, AdaptiveMultiSessionIsDeterministic) {
  // Tiny profile: enough for the scheduler to pick configurations; the
  // paper-scale trends are covered by test_adaptation.cpp.  Four pyramid
  // levels so every configuration in the spec (l up to 4) is servable.
  WorldSetup profile_setup = small_setup(1);
  profile_setup.levels = 4;
  static const perfdb::PerfDatabase db =
      build_viz_database(profile_setup, {0.5, 1.0}, {250e3, 12.5e6});
  adapt::PreferenceList prefs = {adapt::minimize("transmit_time")};

  WorldSetup setup = small_setup(4);
  setup.levels = 4;
  MultiSessionResult first = run_multi_adaptive_session(setup, db, prefs);
  MultiSessionResult second = run_multi_adaptive_session(setup, db, prefs);

  ASSERT_EQ(first.clients.size(), 4u);
  for (const SessionResult& client : first.clients) {
    EXPECT_FALSE(client.initial_config.values().empty());
    ASSERT_EQ(client.images.size(), 2u);
  }
  EXPECT_EQ(result_fingerprint(first), result_fingerprint(second));
}

TEST(MultiClient, ReopenWhileRequestInFlightKeepsOldSessionAlive) {
  // Regression: handle_request used to hold a plain reference into the
  // session map entry across its co_awaits.  Session ids are server-global,
  // so a second serve loop re-opening the same id would overwrite the map
  // entry and destroy the Session — and its ProgressiveEncoder — under the
  // suspended handler (a use-after-free ASan catches).  Sessions are now
  // shared_ptr-pinned: the in-flight request completes against the old
  // session while new traffic sees the new one.
  WorldSetup setup;
  setup.image_size = 256;
  setup.levels = 4;
  setup.image_count = 1;
  setup.client_count = 2;
  VizWorld world(setup);
  world.spawn_server_loops();

  bool reply_seen = false;
  auto first = [&]() -> sim::Task<> {
    sim::Endpoint& ep = world.client_endpoint(0);
    co_await ep.send(encode(
        OpenImage{.session_id = 7, .image_id = 0, .level = 4, .codec = 1}));
    sim::Message ack = co_await ep.recv();
    EXPECT_EQ(ack.kind, kOpenAck);
    co_await ep.send(encode(Request{
        .session_id = 7, .cx = 10, .cy = 10, .half = 10, .level = 4}));
    sim::Message reply = co_await ep.recv();
    EXPECT_EQ(reply.kind, kReply);
    EXPECT_EQ(decode_reply(reply).session_id, 7u);
    reply_seen = true;
    co_await ep.send(encode_shutdown());
  };
  auto second = [&]() -> sim::Task<> {
    // Wait until the first client's request handler has started (it bumps
    // requests_served() before its first await), then re-open the same
    // session id from the other endpoint while the handler is suspended.
    while (world.server().requests_served() == 0) {
      co_await world.simulator().delay(1e-4);
    }
    sim::Endpoint& ep = world.client_endpoint(1);
    co_await ep.send(encode(
        OpenImage{.session_id = 7, .image_id = 0, .level = 3, .codec = 0}));
    sim::Message ack = co_await ep.recv();
    EXPECT_EQ(ack.kind, kOpenAck);
    co_await ep.send(encode_shutdown());
  };
  world.simulator().spawn(first());
  world.simulator().spawn(second());
  world.simulator().run();
  EXPECT_TRUE(reply_seen);
}

}  // namespace
}  // namespace avf::viz
