#include "adapt/controller.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace avf::adapt {
namespace {

using perfdb::PerfDatabase;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

struct Rig {
  sim::Simulator sim;
  tunable::AppSpec spec = make_spec();
  PerfDatabase db = make_db();
  ResourceScheduler scheduler{db, {minimize("time")}};
  MonitoringAgent monitor{sim, {"bw"}, monitor_opts()};
  SteeringAgent steering{spec, cfg(0)};

  static tunable::AppSpec make_spec() {
    tunable::AppSpec spec("demo");
    spec.space().add_parameter("mode", {0, 1});
    spec.metrics().add("time", Direction::kLowerBetter);
    spec.add_resource_axis("bw");
    return spec;
  }

  static ConfigPoint cfg(int mode) {
    ConfigPoint p;
    p.set("mode", mode);
    return p;
  }

  static QosVector q(double time) {
    QosVector out;
    out.set("time", time);
    return out;
  }

  static MonitoringAgent::Options monitor_opts() {
    MonitoringAgent::Options o;
    o.window = 2.0;
    o.trigger_threshold = 0.25;
    o.consecutive_required = 1;
    return o;
  }

  /// mode 0 wins at high bandwidth, mode 1 at low.
  static PerfDatabase make_db() {
    MetricSchema s;
    s.add("time", Direction::kLowerBetter);
    PerfDatabase db({"bw"}, s);
    db.insert(cfg(0), {100.0}, q(50.0));
    db.insert(cfg(0), {1000.0}, q(5.0));
    db.insert(cfg(1), {100.0}, q(20.0));
    db.insert(cfg(1), {1000.0}, q(15.0));
    return db;
  }
};

TEST(Controller, ConfigureSelectsInitialConfig) {
  Rig rig;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering);
  ConfigPoint chosen = controller.configure({1000.0});
  EXPECT_EQ(chosen, Rig::cfg(0));
  EXPECT_EQ(rig.steering.active(), Rig::cfg(0));
  EXPECT_EQ(rig.monitor.baseline(), (std::vector<double>{1000.0}));
}

TEST(Controller, AdaptsWhenMonitorDetectsChange) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  // Bandwidth collapses at t=2.
  rig.sim.schedule(2.0, [&] {
    for (int i = 0; i < 10; ++i) rig.monitor.observe("bw", 100.0);
  });
  rig.sim.schedule(5.0, [&] { controller.stop(); });
  rig.sim.run();

  ASSERT_EQ(controller.adaptations().size(), 1u);
  const auto& event = controller.adaptations()[0];
  EXPECT_EQ(event.from, Rig::cfg(0));
  EXPECT_EQ(event.to, Rig::cfg(1));
  EXPECT_GE(event.time, 2.0);
  // Steering has the change staged; the application applies it.
  EXPECT_TRUE(rig.steering.has_pending());
  rig.steering.apply_pending();
  EXPECT_EQ(rig.steering.active(), Rig::cfg(1));
}

TEST(Controller, NoAdaptationWithoutResourceChange) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  rig.sim.schedule(1.0, [&] {
    for (int i = 0; i < 5; ++i) rig.monitor.observe("bw", 980.0);
  });
  rig.sim.schedule(4.0, [&] { controller.stop(); });
  rig.sim.run();
  EXPECT_TRUE(controller.adaptations().empty());
  EXPECT_GE(controller.checks(), 7u);
}

TEST(Controller, BaselineReanchorsAfterTrigger) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  rig.sim.schedule(1.0, [&] {
    for (int i = 0; i < 10; ++i) rig.monitor.observe("bw", 100.0);
  });
  rig.sim.schedule(6.0, [&] { controller.stop(); });
  rig.sim.run();
  // The sustained 100 bw reading causes exactly one adaptation, not one
  // per check (the baseline re-anchors).
  EXPECT_EQ(controller.adaptations().size(), 1u);
}

TEST(Controller, ConfigureThrowsOnEmptyDatabase) {
  Rig rig;
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  PerfDatabase empty({"bw"}, s);
  ResourceScheduler scheduler(empty, {minimize("time")});
  AdaptationController controller(rig.sim, scheduler, rig.monitor,
                                  rig.steering);
  EXPECT_THROW(controller.configure({1000.0}), std::runtime_error);
  // Nothing was staged or applied on the failed path.
  EXPECT_FALSE(rig.steering.has_pending());
  EXPECT_EQ(rig.steering.active(), Rig::cfg(0));
}

TEST(Controller, ConfigureFallsBackToBestEffortWhenNothingSatisfies) {
  Rig rig;
  UserPreference strict;
  strict.name = "unreachable";
  strict.constraints.push_back({"time", 0.0, 1.0});  // no config gets close
  strict.objective_metric = "time";
  strict.maximize = false;
  ResourceScheduler scheduler(rig.db, {strict});
  AdaptationController controller(rig.sim, scheduler, rig.monitor,
                                  rig.steering);
  // At bw=100 the predictions are 50 (mode 0) and 20 (mode 1): neither
  // satisfies time <= 1, so the last preference degrades to best effort
  // and picks the best objective value anyway.
  ConfigPoint chosen = controller.configure({100.0});
  EXPECT_EQ(chosen, Rig::cfg(1));
  EXPECT_EQ(rig.steering.active(), Rig::cfg(1));
}

TEST(Controller, StaleStagedRequestWithdrawnWhenDecisionReaffirmsActive) {
  // Regression: a change staged under degraded estimates but never applied
  // (the application didn't reach a task boundary) must be withdrawn when a
  // later trigger decides the active configuration is already right —
  // otherwise the stale request installs at the next boundary and the
  // system parks in a configuration nothing ever decided on purpose.
  Rig rig;
  MonitoringAgent::Options mopts;
  mopts.window = 0.5;
  mopts.trigger_threshold = 0.25;
  mopts.consecutive_required = 1;
  MonitoringAgent monitor(rig.sim, {"bw"}, mopts);
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  // Collapse: the 1.5s check stages mode 1 (never applied by the app).
  rig.sim.schedule(1.2, [&] {
    for (int i = 0; i < 5; ++i) monitor.observe("bw", 100.0);
  });
  // Full recovery before the 2.0s check: its decision is the still-active
  // mode 0, which must also cancel the staged mode 1.
  rig.sim.schedule(1.7, [&] {
    for (int i = 0; i < 5; ++i) monitor.observe("bw", 1000.0);
  });
  rig.sim.schedule(2.2, [&] { controller.stop(); });
  rig.sim.run();

  ASSERT_EQ(controller.adaptations().size(), 1u);
  EXPECT_EQ(controller.adaptations()[0].to, Rig::cfg(1));
  EXPECT_FALSE(rig.steering.has_pending());
  EXPECT_EQ(rig.steering.active(), Rig::cfg(0));
}

TEST(Controller, ConstructionRejectsSpecWithLintErrors) {
  // The steering agent holds a reference to the spec, so planting the
  // defect after Rig construction is visible to the controller's startup
  // validation.
  Rig rig;
  rig.spec.add_task({.name = "broken",
                     .params = {"nonesuch"},
                     .resources = {},
                     .metrics = {},
                     .guard = nullptr});
  try {
    AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                    rig.steering);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("failed validation"), std::string::npos) << what;
    EXPECT_NE(what.find("ref.undefined-param"), std::string::npos) << what;
  }
}

TEST(Controller, ConstructionRejectsPreferenceOnUndeclaredMetric) {
  // The scheduler's own constructor checks objectives against the database
  // schema, but a *constraint* on an undeclared metric only the spec lint
  // catches.
  Rig rig;
  UserPreference pref = minimize("time");
  pref.constraints.push_back({.metric = "undeclared_metric", .max = 1.0});
  ResourceScheduler scheduler(rig.db, {pref});
  try {
    AdaptationController controller(rig.sim, scheduler, rig.monitor,
                                    rig.steering);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pref.undefined-metric"),
              std::string::npos)
        << e.what();
  }
}

TEST(Controller, ValidationOffSwitchSkipsLint) {
  Rig rig;
  rig.spec.add_task({.name = "broken",
                     .params = {"nonesuch"},
                     .resources = {},
                     .metrics = {},
                     .guard = nullptr});
  AdaptationController::Options options;
  options.validate_spec = false;
  // Degenerate rigs can opt out; construction succeeds.
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  EXPECT_EQ(controller.configure({1000.0}), Rig::cfg(0));
}

TEST(Controller, WarningsDoNotBlockConstruction) {
  // The Rig's database fully profiles the space; an extra unprofiled-config
  // warning (db.unprofiled-config) must log, not throw.
  Rig rig;
  rig.spec.space().add_guard("all pass",
                             [](const ConfigPoint&) { return true; });
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering);
  EXPECT_EQ(controller.configure({1000.0}), Rig::cfg(0));
}

TEST(Controller, RejectsBadInterval) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.0;
  EXPECT_THROW(AdaptationController(rig.sim, rig.scheduler, rig.monitor,
                                    rig.steering, options),
               std::invalid_argument);
}

TEST(Controller, StartIsIdempotent) {
  Rig rig;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering);
  controller.configure({1000.0});
  controller.start();
  controller.start();
  EXPECT_TRUE(controller.running());
  rig.sim.schedule(1.0, [&] { controller.stop(); });
  rig.sim.run();
  EXPECT_FALSE(controller.running());
}


TEST(Controller, ChangeDrivenTicksSkipQuietChecksIdentically) {
  // Two identical rigs under the same observation schedule: skipping
  // provably-no-op ticks must not change a single adaptation decision —
  // only how much work quiet ticks cost (ticks_skipped counts them).
  auto run = [](bool change_driven) {
    Rig rig;
    AdaptationController::Options options;
    options.check_interval = 0.5;
    options.change_driven_ticks = change_driven;
    AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                    rig.steering, options);
    controller.configure({1000.0});
    controller.start();
    // Sparse observations (every 1.25 s) leave tick pairs with no new
    // information in between; a collapse at t=4 forces an adaptation.
    for (int i = 0; i < 3; ++i) {
      rig.sim.schedule(0.4 + 1.25 * i, [&rig] {
        rig.monitor.observe("bw", 1000.0);
      });
    }
    rig.sim.schedule(4.0, [&rig] {
      for (int i = 0; i < 10; ++i) rig.monitor.observe("bw", 100.0);
    });
    rig.sim.schedule(6.0, [&controller] { controller.stop(); });
    rig.sim.run();
    struct Out {
      std::vector<AdaptationController::AdaptationEvent> adaptations;
      std::size_t checks;
      std::size_t skipped;
    };
    return Out{controller.adaptations(), controller.checks(),
               controller.ticks_skipped()};
  };

  auto baseline = run(false);
  auto skipping = run(true);
  EXPECT_EQ(baseline.skipped, 0u);
  EXPECT_GT(skipping.skipped, 0u);
  EXPECT_EQ(baseline.checks, skipping.checks);  // skipped ticks still count
  ASSERT_EQ(baseline.adaptations.size(), skipping.adaptations.size());
  for (std::size_t i = 0; i < baseline.adaptations.size(); ++i) {
    EXPECT_EQ(baseline.adaptations[i].time, skipping.adaptations[i].time);
    EXPECT_EQ(baseline.adaptations[i].from, skipping.adaptations[i].from);
    EXPECT_EQ(baseline.adaptations[i].to, skipping.adaptations[i].to);
    EXPECT_EQ(baseline.adaptations[i].estimates,
              skipping.adaptations[i].estimates);
  }
  ASSERT_FALSE(skipping.adaptations.empty());
}

}  // namespace
}  // namespace avf::adapt
