#include "adapt/controller.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace avf::adapt {
namespace {

using perfdb::PerfDatabase;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

struct Rig {
  sim::Simulator sim;
  tunable::AppSpec spec = make_spec();
  PerfDatabase db = make_db();
  ResourceScheduler scheduler{db, {minimize("time")}};
  MonitoringAgent monitor{sim, {"bw"}, monitor_opts()};
  SteeringAgent steering{spec, cfg(0)};

  static tunable::AppSpec make_spec() {
    tunable::AppSpec spec("demo");
    spec.space().add_parameter("mode", {0, 1});
    spec.metrics().add("time", Direction::kLowerBetter);
    spec.add_resource_axis("bw");
    return spec;
  }

  static ConfigPoint cfg(int mode) {
    ConfigPoint p;
    p.set("mode", mode);
    return p;
  }

  static QosVector q(double time) {
    QosVector out;
    out.set("time", time);
    return out;
  }

  static MonitoringAgent::Options monitor_opts() {
    MonitoringAgent::Options o;
    o.window = 2.0;
    o.trigger_threshold = 0.25;
    o.consecutive_required = 1;
    return o;
  }

  /// mode 0 wins at high bandwidth, mode 1 at low.
  static PerfDatabase make_db() {
    MetricSchema s;
    s.add("time", Direction::kLowerBetter);
    PerfDatabase db({"bw"}, s);
    db.insert(cfg(0), {100.0}, q(50.0));
    db.insert(cfg(0), {1000.0}, q(5.0));
    db.insert(cfg(1), {100.0}, q(20.0));
    db.insert(cfg(1), {1000.0}, q(15.0));
    return db;
  }
};

TEST(Controller, ConfigureSelectsInitialConfig) {
  Rig rig;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering);
  ConfigPoint chosen = controller.configure({1000.0});
  EXPECT_EQ(chosen, Rig::cfg(0));
  EXPECT_EQ(rig.steering.active(), Rig::cfg(0));
  EXPECT_EQ(rig.monitor.baseline(), (std::vector<double>{1000.0}));
}

TEST(Controller, AdaptsWhenMonitorDetectsChange) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  // Bandwidth collapses at t=2.
  rig.sim.schedule(2.0, [&] {
    for (int i = 0; i < 10; ++i) rig.monitor.observe("bw", 100.0);
  });
  rig.sim.schedule(5.0, [&] { controller.stop(); });
  rig.sim.run();

  ASSERT_EQ(controller.adaptations().size(), 1u);
  const auto& event = controller.adaptations()[0];
  EXPECT_EQ(event.from, Rig::cfg(0));
  EXPECT_EQ(event.to, Rig::cfg(1));
  EXPECT_GE(event.time, 2.0);
  // Steering has the change staged; the application applies it.
  EXPECT_TRUE(rig.steering.has_pending());
  rig.steering.apply_pending();
  EXPECT_EQ(rig.steering.active(), Rig::cfg(1));
}

TEST(Controller, NoAdaptationWithoutResourceChange) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  rig.sim.schedule(1.0, [&] {
    for (int i = 0; i < 5; ++i) rig.monitor.observe("bw", 980.0);
  });
  rig.sim.schedule(4.0, [&] { controller.stop(); });
  rig.sim.run();
  EXPECT_TRUE(controller.adaptations().empty());
  EXPECT_GE(controller.checks(), 7u);
}

TEST(Controller, BaselineReanchorsAfterTrigger) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.5;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering, options);
  controller.configure({1000.0});
  controller.start();
  rig.sim.schedule(1.0, [&] {
    for (int i = 0; i < 10; ++i) rig.monitor.observe("bw", 100.0);
  });
  rig.sim.schedule(6.0, [&] { controller.stop(); });
  rig.sim.run();
  // The sustained 100 bw reading causes exactly one adaptation, not one
  // per check (the baseline re-anchors).
  EXPECT_EQ(controller.adaptations().size(), 1u);
}

TEST(Controller, RejectsBadInterval) {
  Rig rig;
  AdaptationController::Options options;
  options.check_interval = 0.0;
  EXPECT_THROW(AdaptationController(rig.sim, rig.scheduler, rig.monitor,
                                    rig.steering, options),
               std::invalid_argument);
}

TEST(Controller, StartIsIdempotent) {
  Rig rig;
  AdaptationController controller(rig.sim, rig.scheduler, rig.monitor,
                                  rig.steering);
  controller.configure({1000.0});
  controller.start();
  controller.start();
  EXPECT_TRUE(controller.running());
  rig.sim.schedule(1.0, [&] { controller.stop(); });
  rig.sim.run();
  EXPECT_FALSE(controller.running());
}

}  // namespace
}  // namespace avf::adapt
