#include "adapt/decision_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adapt/scheduler.hpp"
#include "util/rng.hpp"

namespace avf::adapt {
namespace {

using perfdb::PerfDatabase;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;
using util::SplitMix64;

MetricSchema schema() {
  MetricSchema s;
  s.add("response", Direction::kLowerBetter);
  s.add("quality", Direction::kHigherBetter);
  return s;
}

ConfigPoint cfg(int q, int c) {
  ConfigPoint p;
  p.set("q", q);
  p.set("c", c);
  return p;
}

/// Seeded database over a 3x3 resource grid with SplitMix64-drawn QoS:
/// different seeds exercise different decision structure.
PerfDatabase random_db(std::uint64_t seed) {
  SplitMix64 rng(seed);
  PerfDatabase db({"cpu", "bw"}, schema());
  for (int q = 1; q <= 4; ++q) {
    for (int c = 0; c < 3; ++c) {
      for (double cpu : {0.25, 0.5, 1.0}) {
        for (double bw : {100e3, 400e3, 1e6}) {
          QosVector qos;
          qos.set("response", 0.1 + 5.0 * rng.next_double());
          qos.set("quality", static_cast<double>(q) + rng.next_double());
          db.insert(cfg(q, c), {cpu, bw}, qos);
        }
      }
    }
  }
  return db;
}

PreferenceList prefs() {
  UserPreference fast = maximize_metric("quality", "interactive");
  fast.constraints = {{.metric = "response", .max = 2.0}};
  UserPreference fallback = minimize("response", "fastest");
  return {fast, fallback};
}

ResourceScheduler::Options cached_options(
    const std::shared_ptr<DecisionCache>& cache) {
  ResourceScheduler::Options o;
  o.switch_hysteresis = 0.05;
  o.decision_cache = cache;
  return o;
}

ResourceScheduler::Options oracle_options() {
  ResourceScheduler::Options o;
  o.switch_hysteresis = 0.05;
  o.exact_predictions = true;  // the function the cache claims to memoize
  return o;
}

// Every cached decision — select and select_with_incumbent, hits and
// misses alike, across schedulers sharing the cache — must be identical to
// an uncached exact-prediction oracle, bit for bit (Decision's defaulted
// operator== compares the predicted QosVector doubles exactly).
TEST(DecisionCache, BitExactAgainstUncachedOracle) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    PerfDatabase db = random_db(seed);
    auto cache = std::make_shared<DecisionCache>();
    ResourceScheduler cached_a(db, prefs(), cached_options(cache));
    ResourceScheduler cached_b(db, prefs(), cached_options(cache));
    ResourceScheduler oracle(db, prefs(), oracle_options());

    const std::vector<ConfigPoint> incumbents{cfg(1, 0), cfg(3, 2), cfg(4, 1)};
    SplitMix64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (int i = 0; i < 200; ++i) {
      // A small value pool makes repeats (cache hits) common.
      const double cpu = 0.2 + 0.2 * static_cast<double>(rng.next_below(4));
      const double bw = 100e3 + 150e3 * static_cast<double>(rng.next_below(5));
      const perfdb::ResourcePoint point{cpu, bw};
      ResourceScheduler& cached = i % 2 == 0 ? cached_a : cached_b;
      if (i % 3 == 0) {
        const ConfigPoint& inc = incumbents[rng.next_below(3)];
        auto got = cached.select_with_incumbent(point, inc);
        auto want = oracle.select_with_incumbent(point, inc);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (want) EXPECT_EQ(*got, *want);
      } else {
        auto got = cached.select(point);
        auto want = oracle.select(point);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (want) EXPECT_EQ(*got, *want);
      }
    }
    auto stats = cache->stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_EQ(stats.evictions, 0u);
  }
}

TEST(DecisionCache, SharedAcrossSchedulersWithEqualFingerprints) {
  PerfDatabase db = random_db(7);
  auto cache = std::make_shared<DecisionCache>();
  ResourceScheduler first(db, prefs(), cached_options(cache));
  ResourceScheduler second(db, prefs(), cached_options(cache));
  ASSERT_EQ(first.selector_fingerprint(), second.selector_fingerprint());

  auto a = first.select({0.5, 400e3});
  auto stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);
  auto b = second.select({0.5, 400e3});  // other scheduler, same cache: hit
  stats = cache->stats();
  EXPECT_EQ(stats.hits, 1u);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST(DecisionCache, DifferentOptionsNeverShareEntries) {
  PerfDatabase db = random_db(7);
  auto cache = std::make_shared<DecisionCache>();
  ResourceScheduler plain(db, prefs(), cached_options(cache));
  auto hyst = cached_options(cache);
  hyst.switch_hysteresis = 0.25;
  ResourceScheduler tighter(db, prefs(), hyst);
  EXPECT_NE(plain.selector_fingerprint(), tighter.selector_fingerprint());

  (void)plain.select({0.5, 400e3});
  (void)tighter.select({0.5, 400e3});
  auto stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);  // distinct fingerprints -> distinct entries
  EXPECT_EQ(stats.misses, 2u);
}

// Inserting into the database bumps its mutation epoch: the next lookup is
// an invalidation-miss and the recomputed decision reflects the new record.
TEST(DecisionCache, EpochInvalidationOnDatabaseInsert) {
  PerfDatabase db = random_db(42);
  auto cache = std::make_shared<DecisionCache>();
  ResourceScheduler cached(db, prefs(), cached_options(cache));
  ResourceScheduler oracle(db, prefs(), oracle_options());

  const perfdb::ResourcePoint point{0.5, 400e3};
  auto before = cached.select(point);
  ASSERT_TRUE(before);
  EXPECT_EQ(cache->stats().misses, 1u);

  // A new config that dominates everything at this point.
  QosVector qos;
  qos.set("response", 0.01);
  qos.set("quality", 100.0);
  db.insert(cfg(9, 0), {0.5, 400e3}, qos);

  auto after = cached.select(point);
  ASSERT_TRUE(after);
  EXPECT_EQ(after->config, cfg(9, 0));
  auto want = oracle.select(point);
  ASSERT_TRUE(want);
  EXPECT_EQ(*after, *want);
  auto stats = cache->stats();
  EXPECT_GE(stats.invalidations, 1u);
}

TEST(DecisionCache, BoundedSizeWipesWhenFull) {
  PerfDatabase db = random_db(1);
  auto cache = std::make_shared<DecisionCache>(/*max_entries=*/8);
  ResourceScheduler cached(db, prefs(), cached_options(cache));
  ResourceScheduler oracle(db, prefs(), oracle_options());

  for (int i = 0; i < 64; ++i) {
    const perfdb::ResourcePoint point{0.1 + 0.01 * i, 200e3 + 1e3 * i};
    auto got = cached.select(point);
    auto want = oracle.select(point);
    ASSERT_EQ(got.has_value(), want.has_value());
    if (want) EXPECT_EQ(*got, *want);
    EXPECT_LE(cache->size(), cache->max_entries());
  }
  auto stats = cache->stats();
  EXPECT_GT(stats.evictions, 0u);
  // Wiped entries still answer correctly when recomputed.
  auto again = cached.select({0.15, 205e3});
  auto want = oracle.select({0.15, 205e3});
  ASSERT_TRUE(again && want);
  EXPECT_EQ(*again, *want);
}

TEST(DecisionCache, MemoizesEmptyDecisions) {
  PerfDatabase db({"cpu", "bw"}, schema());  // no records
  auto cache = std::make_shared<DecisionCache>();
  ResourceScheduler cached(db, prefs(), cached_options(cache));
  EXPECT_FALSE(cached.select({0.5, 400e3}).has_value());
  EXPECT_FALSE(cached.select({0.5, 400e3}).has_value());
  auto stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);  // the nullopt itself was memoized
}

TEST(DecisionCache, AttachingCacheForcesExactPredictions) {
  PerfDatabase db = random_db(1);
  auto cache = std::make_shared<DecisionCache>();
  ResourceScheduler cached(db, prefs(), cached_options(cache));
  EXPECT_TRUE(cached.options().exact_predictions);
}

// Fresh copies of a database get fresh uids: a cache shared across copies
// can never serve one copy's decisions to the other (ABA protection).
TEST(DecisionCache, DatabaseCopiesDoNotShareEntries) {
  PerfDatabase db = random_db(7);
  PerfDatabase copy = db;
  EXPECT_NE(db.uid(), copy.uid());

  auto cache = std::make_shared<DecisionCache>();
  ResourceScheduler on_db(db, prefs(), cached_options(cache));
  ResourceScheduler on_copy(copy, prefs(), cached_options(cache));
  (void)on_db.select({0.5, 400e3});
  (void)on_copy.select({0.5, 400e3});
  auto stats = cache->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

}  // namespace
}  // namespace avf::adapt
