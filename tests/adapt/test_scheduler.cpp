#include "adapt/scheduler.hpp"

#include <gtest/gtest.h>

namespace avf::adapt {
namespace {

using perfdb::Lookup;
using perfdb::PerfDatabase;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

MetricSchema schema() {
  MetricSchema s;
  s.add("transmit_time", Direction::kLowerBetter);
  s.add("resolution", Direction::kHigherBetter);
  return s;
}

ConfigPoint cfg(int c, int l) {
  ConfigPoint p;
  p.set("c", c);
  p.set("l", l);
  return p;
}

QosVector q(double transmit, double resolution) {
  QosVector out;
  out.set("transmit_time", transmit);
  out.set("resolution", resolution);
  return out;
}

/// Database modeling the compression crossover: config A (c=1) is faster
/// at high bandwidth, config B (c=2) at low bandwidth; low resolution
/// (l=3) is always fast but low quality.
PerfDatabase crossover_db() {
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(1, 4), {50e3}, q(26.0, 4));
  db.insert(cfg(1, 4), {500e3}, q(5.0, 4));
  db.insert(cfg(2, 4), {50e3}, q(24.0, 4));
  db.insert(cfg(2, 4), {500e3}, q(12.0, 4));
  db.insert(cfg(1, 3), {50e3}, q(7.0, 3));
  db.insert(cfg(1, 3), {500e3}, q(1.5, 3));
  db.insert(cfg(2, 3), {50e3}, q(6.5, 3));
  db.insert(cfg(2, 3), {500e3}, q(3.5, 3));
  return db;
}

TEST(Scheduler, PicksObjectiveOptimum) {
  PerfDatabase db = crossover_db();
  UserPreference pref = minimize("transmit_time");
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});
  ResourceScheduler scheduler(db, {pref});
  auto high = scheduler.select({500e3});
  ASSERT_TRUE(high);
  EXPECT_EQ(high->config, cfg(1, 4));
  auto low = scheduler.select({50e3});
  ASSERT_TRUE(low);
  EXPECT_EQ(low->config, cfg(2, 4));
}

TEST(Scheduler, ConstraintsPruneCandidates) {
  PerfDatabase db = crossover_db();
  // Maximize resolution subject to transmit_time <= 10 s.
  UserPreference pref = maximize_metric("resolution");
  pref.constraints.push_back({.metric = "transmit_time", .max = 10.0});
  ResourceScheduler scheduler(db, {pref});
  // At 500 KBps level 4 fits the deadline (5 s with c=1).
  EXPECT_EQ(scheduler.select({500e3})->config, cfg(1, 4));
  // At 50 KBps only level 3 fits.
  auto low = scheduler.select({50e3});
  EXPECT_EQ(low->config.get("l"), 3);
}

TEST(Scheduler, FallsThroughPreferenceList) {
  PerfDatabase db = crossover_db();
  UserPreference strict = minimize("transmit_time");
  strict.constraints.push_back({.metric = "transmit_time", .max = 1.0});
  UserPreference fallback = minimize("transmit_time");
  ResourceScheduler scheduler(db, {strict, fallback});
  auto decision = scheduler.select({50e3});
  ASSERT_TRUE(decision);
  EXPECT_EQ(decision->preference_index, 1u);
  EXPECT_TRUE(decision->fell_through);
  EXPECT_EQ(decision->config, cfg(2, 3));  // fastest overall at 50 KBps
}

TEST(Scheduler, BestEffortWhenNothingSatisfiable) {
  PerfDatabase db = crossover_db();
  UserPreference impossible = minimize("transmit_time");
  impossible.constraints.push_back({.metric = "transmit_time", .max = 0.1});
  ResourceScheduler scheduler(db, {impossible});
  auto decision = scheduler.select({500e3});
  ASSERT_TRUE(decision);
  EXPECT_TRUE(decision->fell_through);
  EXPECT_EQ(decision->config, cfg(1, 3));  // minimizes the objective anyway
}

TEST(Scheduler, InterpolatesBetweenGridPoints) {
  PerfDatabase db = crossover_db();
  ResourceScheduler scheduler(db, {minimize("transmit_time")});
  auto decision = scheduler.select({275e3});
  ASSERT_TRUE(decision);
  // c=1,l=3 interpolates to (7+1.5)/2 = 4.25, the minimum.
  EXPECT_EQ(decision->config, cfg(1, 3));
  EXPECT_NEAR(decision->predicted.get("transmit_time"), 4.25, 1e-9);
}

TEST(Scheduler, HysteresisKeepsIncumbent) {
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(1, 4), {100e3}, q(10.0, 4));
  db.insert(cfg(2, 4), {100e3}, q(9.5, 4));  // only 5% better
  ResourceScheduler::Options options;
  options.switch_hysteresis = 0.10;
  ResourceScheduler scheduler(db, {minimize("transmit_time")}, options);
  // Fresh selection prefers the better config...
  EXPECT_EQ(scheduler.select({100e3})->config, cfg(2, 4));
  // ...but an incumbent within the margin is retained.
  auto kept = scheduler.select_with_incumbent({100e3}, cfg(1, 4));
  ASSERT_TRUE(kept);
  EXPECT_EQ(kept->config, cfg(1, 4));
}

TEST(Scheduler, HysteresisYieldsToClearWinner) {
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(1, 4), {100e3}, q(10.0, 4));
  db.insert(cfg(2, 4), {100e3}, q(5.0, 4));  // 50% better
  ResourceScheduler::Options options;
  options.switch_hysteresis = 0.10;
  ResourceScheduler scheduler(db, {minimize("transmit_time")}, options);
  auto decision = scheduler.select_with_incumbent({100e3}, cfg(1, 4));
  EXPECT_EQ(decision->config, cfg(2, 4));
}

TEST(Scheduler, HysteresisIgnoredWhenIncumbentViolatesConstraints) {
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(1, 4), {100e3}, q(20.0, 4));
  db.insert(cfg(1, 3), {100e3}, q(19.0, 3));
  ResourceScheduler::Options options;
  options.switch_hysteresis = 0.50;
  UserPreference pref = minimize("transmit_time");
  pref.constraints.push_back({.metric = "transmit_time", .max = 19.5});
  ResourceScheduler scheduler(db, {pref}, options);
  auto decision = scheduler.select_with_incumbent({100e3}, cfg(1, 4));
  EXPECT_EQ(decision->config, cfg(1, 3));
}

TEST(Scheduler, FallThroughSkipsToFirstSatisfiablePreference) {
  PerfDatabase db = crossover_db();
  // Three-deep list: the first two are unsatisfiable at 50 KBps.
  UserPreference impossible = minimize("transmit_time");
  impossible.constraints.push_back({.metric = "transmit_time", .max = 0.5});
  UserPreference strict = minimize("transmit_time");
  strict.constraints.push_back({.metric = "transmit_time", .max = 1.0});
  UserPreference relaxed = minimize("transmit_time");
  relaxed.constraints.push_back({.metric = "transmit_time", .max = 10.0});
  ResourceScheduler scheduler(db, {impossible, strict, relaxed});
  auto decision = scheduler.select({50e3});
  ASSERT_TRUE(decision);
  EXPECT_EQ(decision->preference_index, 2u);
  EXPECT_TRUE(decision->fell_through);
  EXPECT_EQ(decision->config, cfg(2, 3));
}

TEST(Scheduler, BestEffortUsesLastPreferenceObjective) {
  PerfDatabase db = crossover_db();
  // Nothing satisfies either preference; the best-effort pass must optimize
  // the *last* preference's objective (maximize resolution), not the first's.
  UserPreference first = minimize("transmit_time");
  first.constraints.push_back({.metric = "transmit_time", .max = 0.1});
  UserPreference last = maximize_metric("resolution");
  last.constraints.push_back({.metric = "transmit_time", .max = 0.1});
  ResourceScheduler scheduler(db, {first, last});
  auto decision = scheduler.select({500e3});
  ASSERT_TRUE(decision);
  EXPECT_TRUE(decision->fell_through);
  EXPECT_EQ(decision->preference_index, 1u);
  EXPECT_EQ(decision->predicted.get("resolution"), 4.0);
}

TEST(Scheduler, BestEffortReportsLastPreferenceIndex) {
  PerfDatabase db = crossover_db();
  UserPreference impossible = minimize("transmit_time");
  impossible.constraints.push_back({.metric = "transmit_time", .max = 0.01});
  ResourceScheduler scheduler(db, {impossible});
  auto decision = scheduler.select({500e3});
  ASSERT_TRUE(decision);
  EXPECT_EQ(decision->preference_index, 0u);
  EXPECT_TRUE(decision->fell_through);
}

TEST(Scheduler, IncumbentUnknownToDatabaseYieldsFreshSelection) {
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(1, 4), {100e3}, q(10.0, 4));
  ResourceScheduler::Options options;
  options.switch_hysteresis = 0.50;
  ResourceScheduler scheduler(db, {minimize("transmit_time")}, options);
  auto decision = scheduler.select_with_incumbent({100e3}, cfg(9, 9));
  ASSERT_TRUE(decision);
  EXPECT_EQ(decision->config, cfg(1, 4));
}

TEST(Scheduler, RepeatedDecisionsAreStableAndCached) {
  // The scheduler shares the database's prediction cache across select and
  // select_with_incumbent; repeated decisions under stable resources must
  // produce identical results and be served from the cache.
  PerfDatabase db = crossover_db();
  ResourceScheduler scheduler(db, {minimize("transmit_time")});
  auto first = scheduler.select({275e3});
  db.reset_prediction_stats();
  auto second = scheduler.select({275e3});
  auto third = scheduler.select_with_incumbent({275e3}, first->config);
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(first->config, second->config);
  EXPECT_EQ(first->predicted, second->predicted);
  EXPECT_EQ(first->config, third->config);
  auto stats = db.prediction_stats();
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(Scheduler, RejectsBadConstruction) {
  PerfDatabase db = crossover_db();
  EXPECT_THROW(ResourceScheduler(db, {}), std::invalid_argument);
  EXPECT_THROW(ResourceScheduler(db, {minimize("nonexistent")}),
               std::invalid_argument);
}

TEST(Scheduler, EmptyDatabaseSelectsNothing) {
  PerfDatabase db({"bw"}, schema());
  ResourceScheduler scheduler(db, {minimize("transmit_time")});
  EXPECT_FALSE(scheduler.select({100e3}).has_value());
}


TEST(Scheduler, IncumbentIndexSurvivesDatabaseMutation) {
  // Regression for the incumbent slot index: select_with_incumbent finds
  // the incumbent via a config->slot map keyed to the database's mutation
  // epoch.  Inserting a config must rebuild the index, not serve a stale
  // slot (which would compare the wrong candidate's prediction).
  PerfDatabase db({"bw"}, schema());
  db.insert(cfg(1, 4), {100e3}, q(10.0, 4));
  db.insert(cfg(2, 4), {100e3}, q(9.8, 4));
  ResourceScheduler::Options options;
  options.switch_hysteresis = 0.10;
  ResourceScheduler scheduler(db, {minimize("transmit_time")}, options);
  // Warm the slot index.
  EXPECT_EQ(scheduler.select_with_incumbent({100e3}, cfg(1, 4))->config,
            cfg(1, 4));
  // New config shifts the candidate layout and clearly beats the incumbent.
  db.insert(cfg(0, 3), {100e3}, q(1.0, 3));
  auto decision = scheduler.select_with_incumbent({100e3}, cfg(1, 4));
  ASSERT_TRUE(decision);
  EXPECT_EQ(decision->config, cfg(0, 3));
  // The incumbent's own prediction is still found and honored within the
  // hysteresis margin when it is the near-best choice.
  db.insert(cfg(0, 3), {100e3}, q(10.5, 3));  // overwrite: now slightly worse
  auto kept = scheduler.select_with_incumbent({100e3}, cfg(2, 4));
  ASSERT_TRUE(kept);
  EXPECT_EQ(kept->config, cfg(2, 4));
}

}  // namespace
}  // namespace avf::adapt
