#include "adapt/monitor.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace avf::adapt {
namespace {

MonitoringAgent::Options opts(double window = 2.0, double threshold = 0.25,
                              int consecutive = 2) {
  MonitoringAgent::Options o;
  o.window = window;
  o.trigger_threshold = threshold;
  o.consecutive_required = consecutive;
  return o;
}

TEST(Monitor, EstimateIsWindowMean) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts());
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.4); });
  sim.schedule(0.2, [&] { agent.observe("cpu_share", 0.6); });
  sim.run();
  auto e = agent.estimate("cpu_share");
  ASSERT_TRUE(e);
  EXPECT_DOUBLE_EQ(*e, 0.5);
}

TEST(Monitor, NoSamplesMeansNoEstimate) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"});
  EXPECT_FALSE(agent.estimate("cpu_share").has_value());
  EXPECT_THROW((void)agent.estimate("bogus"), std::out_of_range);
}

TEST(Monitor, StaleSamplesExpire) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(1.0));
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.5); });
  sim.run();
  EXPECT_TRUE(agent.estimate("cpu_share").has_value());
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_FALSE(agent.estimate("cpu_share").has_value());
}

TEST(Monitor, StaleBurstDoesNotSkewEstimate) {
  // Regression: TimeWindow evicts relative to the newest *sample*, so a
  // burst of old samples behind one fresh sample stays in the deque.  The
  // estimate must average only samples in [now - window, now] — previously
  // the whole deque was averaged whenever the last sample was fresh.
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(2.0));
  sim.schedule(0.1, [&] {
    for (int i = 0; i < 10; ++i) agent.observe("cpu_share", 10.0);
  });
  sim.schedule(1.0, [&] { agent.observe("cpu_share", 1.0); });
  // Advance to t=2.5: the burst (age 2.4) is stale, the fresh sample (age
  // 1.5) is in-window.  All 11 samples are still in the deque.
  sim.schedule(2.5, [] {});
  sim.run();
  auto e = agent.estimate("cpu_share");
  ASSERT_TRUE(e);
  EXPECT_DOUBLE_EQ(*e, 1.0);
}

TEST(Monitor, AllSamplesStaleMeansNoEstimate) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(1.0));
  sim.schedule(0.1, [&] {
    agent.observe("cpu_share", 0.5);
    agent.observe("cpu_share", 0.7);
  });
  sim.schedule(3.0, [] {});
  sim.run();
  EXPECT_FALSE(agent.estimate("cpu_share").has_value());
}

TEST(Monitor, EstimatesFallBackToBaseline) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share", "net_bps"});
  agent.set_baseline({0.9, 500e3});
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.4); });
  sim.run();
  auto estimates = agent.estimates();
  EXPECT_DOUBLE_EQ(estimates[0], 0.4);
  EXPECT_DOUBLE_EQ(estimates[1], 500e3);  // no net samples yet
}

TEST(Monitor, TriggersAfterConsecutiveDeviations) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(2.0, 0.25, 2));
  agent.set_baseline({0.9});
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.4); });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());  // first out-of-range check
  EXPECT_TRUE(agent.check_triggered());   // second consecutive -> trigger
  EXPECT_EQ(agent.triggers(), 1u);
  // Counter resets after firing.
  EXPECT_FALSE(agent.check_triggered());
}

TEST(Monitor, InRangeResetsHysteresisCounter) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(10.0, 0.25, 2));
  agent.set_baseline({0.9});
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.4); });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());
  // Recovery: estimate returns to baseline (fresh samples dominate mean).
  sim.schedule(0.1, [&] {
    for (int i = 0; i < 50; ++i) agent.observe("cpu_share", 0.9);
  });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());
  EXPECT_FALSE(agent.check_triggered());  // counter was reset, no trigger
  EXPECT_EQ(agent.triggers(), 0u);
}

TEST(Monitor, SmallDeviationsNeverTrigger) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(2.0, 0.25, 1));
  agent.set_baseline({0.5});
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.55); });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());
}

TEST(Monitor, BaselineDimensionChecked) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"a", "b"});
  EXPECT_THROW(agent.set_baseline({1.0}), std::invalid_argument);
  EXPECT_THROW(MonitoringAgent(sim, {}), std::invalid_argument);
}

class MonitorThresholds : public ::testing::TestWithParam<double> {};

TEST_P(MonitorThresholds, TriggerOnlyBeyondThreshold) {
  double threshold = GetParam();
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"x"}, opts(2.0, threshold, 1));
  agent.set_baseline({1.0});
  sim.schedule(0.1, [&] { agent.observe("x", 1.0 + threshold * 0.9); });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());
  sim.schedule(0.1, [&] {
    for (int i = 0; i < 50; ++i) agent.observe("x", 1.0 + threshold * 1.5);
  });
  sim.run();
  EXPECT_TRUE(agent.check_triggered());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MonitorThresholds,
                         ::testing::Values(0.1, 0.25, 0.5));


// --- check_would_noop: the change-driven-tick skip proof ------------------

TEST(Monitor, CheckWouldNoopAfterQuietInRangeCheck) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(2.0, 0.25, 2));
  agent.set_baseline({0.5});
  // Never true before any check: there is no outcome to repeat.
  EXPECT_FALSE(agent.check_would_noop());
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.5); });
  sim.run();
  EXPECT_FALSE(agent.check_would_noop());  // observation since (no check yet)
  EXPECT_FALSE(agent.check_triggered());   // in range
  // Nothing changed: a re-check is provably the same in-range no-op, and
  // actually re-checking preserves the proof.
  EXPECT_TRUE(agent.check_would_noop());
  EXPECT_FALSE(agent.check_triggered());
  EXPECT_TRUE(agent.check_would_noop());
}

TEST(Monitor, CheckWouldNoopFalseAfterObserveOrBaseline) {
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(2.0, 0.25, 2));
  agent.set_baseline({0.5});
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.5); });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());
  ASSERT_TRUE(agent.check_would_noop());
  // A new observation is new information: the proof no longer holds.
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.5); });
  sim.run();
  EXPECT_FALSE(agent.check_would_noop());
  EXPECT_FALSE(agent.check_triggered());
  ASSERT_TRUE(agent.check_would_noop());
  // So is a re-anchored baseline.
  agent.set_baseline({0.5});
  EXPECT_FALSE(agent.check_would_noop());
}

TEST(Monitor, CheckWouldNoopFalseAfterOutOfRangeCheck) {
  // Out-of-range checks mutate the consecutive counter, so they can never
  // be skipped — even with no new observations.
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(2.0, 0.25, 3));
  agent.set_baseline({0.9});
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.4); });
  sim.run();
  EXPECT_FALSE(agent.check_triggered());  // out of range, counter at 1
  EXPECT_FALSE(agent.check_would_noop());
  EXPECT_FALSE(agent.check_triggered());  // counter at 2
  EXPECT_FALSE(agent.check_would_noop());
  EXPECT_TRUE(agent.check_triggered());   // fires
}

TEST(Monitor, CheckWouldNoopFalseWhenSuffixAgesOut) {
  // The proof requires the last check's oldest qualifying sample to still
  // be inside the window: once it ages past the cutoff the windowed mean
  // changes even though nothing new was observed.
  sim::Simulator sim;
  MonitoringAgent agent(sim, {"cpu_share"}, opts(1.0, 0.25, 2));
  sim.schedule(0.1, [&] { agent.observe("cpu_share", 0.2); });
  sim.schedule(0.5, [&] { agent.observe("cpu_share", 0.8); });
  sim.schedule(0.6, [] {});
  sim.run();
  agent.set_baseline({0.5});
  EXPECT_FALSE(agent.check_triggered());  // mean 0.5, in range
  EXPECT_TRUE(agent.check_would_noop());  // oldest sample (0.1) in window
  // Advance past 1.1: the 0.1 sample leaves the window, the mean is now
  // 0.8, and the proof must withdraw (the next check deviates by 60%).
  sim.schedule(0.6, [] {});
  sim.run();
  EXPECT_FALSE(agent.check_would_noop());
  EXPECT_FALSE(agent.check_triggered());  // out of range, counter at 1
  EXPECT_TRUE(agent.check_triggered());
}

}  // namespace
}  // namespace avf::adapt
