#include "adapt/preferences.hpp"

#include <gtest/gtest.h>

namespace avf::adapt {
namespace {

using tunable::QosVector;

QosVector q(double transmit, double response) {
  QosVector out;
  out.set("transmit_time", transmit);
  out.set("response_time", response);
  return out;
}

TEST(Preferences, UnconstrainedAlwaysSatisfied) {
  UserPreference p = minimize("transmit_time");
  EXPECT_TRUE(p.satisfied_by(q(100.0, 100.0)));
  EXPECT_EQ(p.objective_metric, "transmit_time");
  EXPECT_FALSE(p.maximize);
}

TEST(Preferences, RangeConstraints) {
  UserPreference p = minimize("transmit_time");
  p.constraints.push_back({.metric = "response_time", .min = 0.0, .max = 1.0});
  EXPECT_TRUE(p.satisfied_by(q(5.0, 0.8)));
  EXPECT_FALSE(p.satisfied_by(q(5.0, 1.2)));
}

TEST(Preferences, MissingMetricFailsConstraint) {
  UserPreference p = minimize("transmit_time");
  p.constraints.push_back({.metric = "nonexistent", .max = 1.0});
  EXPECT_FALSE(p.satisfied_by(q(5.0, 0.5)));
}

TEST(Preferences, BetterRespectsDirection) {
  UserPreference lo = minimize("transmit_time");
  EXPECT_TRUE(lo.better(1.0, 2.0));
  EXPECT_FALSE(lo.better(2.0, 1.0));
  UserPreference hi = maximize_metric("resolution");
  EXPECT_TRUE(hi.better(4.0, 3.0));
  EXPECT_TRUE(hi.maximize);
}

TEST(Preferences, BuilderNames) {
  EXPECT_EQ(minimize("x").name, "minimize x");
  EXPECT_EQ(maximize_metric("y").name, "maximize y");
  EXPECT_EQ(minimize("x", "custom").name, "custom");
}

}  // namespace
}  // namespace avf::adapt
