#include "adapt/steering.hpp"

#include <gtest/gtest.h>

namespace avf::adapt {
namespace {

using tunable::AppSpec;
using tunable::ConfigPoint;

AppSpec make_spec(bool veto_mode2 = false) {
  AppSpec spec("demo");
  spec.space().add_parameter("mode", {0, 1, 2});
  spec.metrics().add("latency", tunable::Direction::kLowerBetter);
  spec.add_transition(tunable::TransitionSpec{
      .name = "veto",
      .guard =
          [veto_mode2](const ConfigPoint&, const ConfigPoint& to) {
            return !(veto_mode2 && to.get("mode") == 2);
          },
      .handler = nullptr});
  return spec;
}

ConfigPoint cfg(int mode) {
  ConfigPoint p;
  p.set("mode", mode);
  return p;
}

TEST(Steering, InitialConfigValidated) {
  AppSpec spec = make_spec();
  EXPECT_THROW(SteeringAgent(spec, cfg(9)), std::invalid_argument);
  SteeringAgent agent(spec, cfg(0));
  EXPECT_EQ(agent.active(), cfg(0));
}

TEST(Steering, ChangeTakesEffectOnlyAtApplyPoint) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  EXPECT_TRUE(agent.request(cfg(1)));
  EXPECT_EQ(agent.active(), cfg(0));  // not yet
  EXPECT_TRUE(agent.has_pending());
  EXPECT_TRUE(agent.apply_pending());
  EXPECT_EQ(agent.active(), cfg(1));
  EXPECT_FALSE(agent.has_pending());
  EXPECT_EQ(agent.applied(), 1u);
}

TEST(Steering, RedundantRequestsIgnored) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  EXPECT_FALSE(agent.request(cfg(0)));         // already active
  EXPECT_TRUE(agent.request(cfg(1)));
  EXPECT_FALSE(agent.request(cfg(1)));         // already pending
  EXPECT_FALSE(agent.request(cfg(9)));         // invalid
  // Requesting the active config cancels the staged change.
  EXPECT_FALSE(agent.request(cfg(0)));
  EXPECT_FALSE(agent.has_pending());
}

TEST(Steering, GuardVetoCancelsChange) {
  AppSpec spec = make_spec(/*veto_mode2=*/true);
  SteeringAgent agent(spec, cfg(0));
  agent.request(cfg(2));
  EXPECT_FALSE(agent.apply_pending());
  EXPECT_EQ(agent.active(), cfg(0));
  EXPECT_EQ(agent.vetoed(), 1u);
  // Non-vetoed target still works.
  agent.request(cfg(1));
  EXPECT_TRUE(agent.apply_pending());
}

TEST(Steering, HandlersAndAckRun) {
  AppSpec spec("demo");
  spec.space().add_parameter("mode", {0, 1});
  spec.metrics().add("m", tunable::Direction::kLowerBetter);
  std::vector<std::string> log;
  spec.add_transition(tunable::TransitionSpec{
      .name = "handler",
      .guard = nullptr,
      .handler =
          [&](const ConfigPoint& from, const ConfigPoint& to) {
            log.push_back("handler " + from.key() + "->" + to.key());
          }});
  SteeringAgent agent(spec, cfg(0));
  agent.set_on_applied([&](const ConfigPoint& from, const ConfigPoint& to) {
    log.push_back("ack " + from.key() + "->" + to.key());
  });
  agent.request(cfg(1));
  agent.apply_pending();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "handler mode=0->mode=1");
  EXPECT_EQ(log[1], "ack mode=0->mode=1");
}

TEST(Steering, ApplyWithoutPendingIsNoop) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  EXPECT_FALSE(agent.apply_pending());
  EXPECT_EQ(agent.applied(), 0u);
}

}  // namespace
}  // namespace avf::adapt
