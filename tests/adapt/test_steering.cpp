#include "adapt/steering.hpp"

#include <gtest/gtest.h>

namespace avf::adapt {
namespace {

using tunable::AppSpec;
using tunable::ConfigPoint;

AppSpec make_spec(bool veto_mode2 = false) {
  AppSpec spec("demo");
  spec.space().add_parameter("mode", {0, 1, 2});
  spec.metrics().add("latency", tunable::Direction::kLowerBetter);
  spec.add_transition(tunable::TransitionSpec{
      .name = "veto",
      .guard =
          [veto_mode2](const ConfigPoint&, const ConfigPoint& to) {
            return !(veto_mode2 && to.get("mode") == 2);
          },
      .handler = nullptr});
  return spec;
}

ConfigPoint cfg(int mode) {
  ConfigPoint p;
  p.set("mode", mode);
  return p;
}

TEST(Steering, InitialConfigValidated) {
  AppSpec spec = make_spec();
  EXPECT_THROW(SteeringAgent(spec, cfg(9)), std::invalid_argument);
  SteeringAgent agent(spec, cfg(0));
  EXPECT_EQ(agent.active(), cfg(0));
}

TEST(Steering, ChangeTakesEffectOnlyAtApplyPoint) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  EXPECT_TRUE(agent.request(cfg(1)));
  EXPECT_EQ(agent.active(), cfg(0));  // not yet
  EXPECT_TRUE(agent.has_pending());
  EXPECT_TRUE(agent.apply_pending());
  EXPECT_EQ(agent.active(), cfg(1));
  EXPECT_FALSE(agent.has_pending());
  EXPECT_EQ(agent.applied(), 1u);
}

TEST(Steering, RedundantRequestsIgnored) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  EXPECT_FALSE(agent.request(cfg(0)));         // already active
  EXPECT_TRUE(agent.request(cfg(1)));
  EXPECT_FALSE(agent.request(cfg(1)));         // already pending
  EXPECT_FALSE(agent.request(cfg(9)));         // invalid
  // Requesting the active config cancels the staged change.
  EXPECT_FALSE(agent.request(cfg(0)));
  EXPECT_FALSE(agent.has_pending());
}

TEST(Steering, GuardVetoCancelsChange) {
  AppSpec spec = make_spec(/*veto_mode2=*/true);
  SteeringAgent agent(spec, cfg(0));
  agent.request(cfg(2));
  EXPECT_FALSE(agent.apply_pending());
  EXPECT_EQ(agent.active(), cfg(0));
  EXPECT_EQ(agent.vetoed(), 1u);
  // Non-vetoed target still works.
  agent.request(cfg(1));
  EXPECT_TRUE(agent.apply_pending());
}

TEST(Steering, HandlersAndAckRun) {
  AppSpec spec("demo");
  spec.space().add_parameter("mode", {0, 1});
  spec.metrics().add("m", tunable::Direction::kLowerBetter);
  std::vector<std::string> log;
  spec.add_transition(tunable::TransitionSpec{
      .name = "handler",
      .guard = nullptr,
      .handler =
          [&](const ConfigPoint& from, const ConfigPoint& to) {
            log.push_back("handler " + from.key() + "->" + to.key());
          }});
  SteeringAgent agent(spec, cfg(0));
  agent.set_on_applied([&](const ConfigPoint& from, const ConfigPoint& to) {
    log.push_back("ack " + from.key() + "->" + to.key());
  });
  agent.request(cfg(1));
  agent.apply_pending();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "handler mode=0->mode=1");
  EXPECT_EQ(log[1], "ack mode=0->mode=1");
}

TEST(Steering, VetoAcknowledgedWithTransitionName) {
  AppSpec spec = make_spec(/*veto_mode2=*/true);
  SteeringAgent agent(spec, cfg(0));
  std::vector<std::string> acks;
  agent.set_on_vetoed([&](const ConfigPoint& from, const ConfigPoint& to,
                          const std::string& transition) {
    acks.push_back(transition + " " + from.key() + "->" + to.key());
  });
  agent.request(cfg(2));
  EXPECT_FALSE(agent.apply_pending());
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0], "veto mode=0->mode=2");
}

TEST(Steering, VetoClearsPendingBeforeAck) {
  // The failure ack must observe the agent with the request already
  // withdrawn, so a handler can immediately re-request.
  AppSpec spec = make_spec(/*veto_mode2=*/true);
  SteeringAgent agent(spec, cfg(0));
  bool pending_during_ack = true;
  agent.set_on_vetoed([&](const ConfigPoint&, const ConfigPoint&,
                          const std::string&) {
    pending_during_ack = agent.has_pending();
  });
  agent.request(cfg(2));
  agent.apply_pending();
  EXPECT_FALSE(pending_during_ack);
  EXPECT_FALSE(agent.has_pending());
  // A later apply is a no-op — the vetoed request does not linger.
  EXPECT_FALSE(agent.apply_pending());
  EXPECT_EQ(agent.vetoed(), 1u);
}

TEST(Steering, RequestWorksAgainAfterVeto) {
  AppSpec spec = make_spec(/*veto_mode2=*/true);
  SteeringAgent agent(spec, cfg(0));
  agent.request(cfg(2));
  EXPECT_FALSE(agent.apply_pending());
  // The agent recovers: a valid target still goes through.
  EXPECT_TRUE(agent.request(cfg(1)));
  EXPECT_TRUE(agent.apply_pending());
  EXPECT_EQ(agent.active(), cfg(1));
  EXPECT_EQ(agent.applied(), 1u);
  EXPECT_EQ(agent.vetoed(), 1u);
}

TEST(Steering, SuccessfulApplyDoesNotFireVetoAck) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  int veto_acks = 0;
  agent.set_on_vetoed(
      [&](const ConfigPoint&, const ConfigPoint&, const std::string&) {
        ++veto_acks;
      });
  agent.request(cfg(1));
  EXPECT_TRUE(agent.apply_pending());
  EXPECT_EQ(veto_acks, 0);
}

TEST(Steering, FirstVetoAmongTransitionsIsReported) {
  // Any single veto cancels the change; the ack names the guard that fired.
  AppSpec spec("multi");
  spec.space().add_parameter("mode", {0, 1});
  spec.metrics().add("m", tunable::Direction::kLowerBetter);
  spec.add_transition(tunable::TransitionSpec{
      .name = "permissive",
      .guard = [](const ConfigPoint&, const ConfigPoint&) { return true; },
      .handler = nullptr});
  spec.add_transition(tunable::TransitionSpec{
      .name = "strict",
      .guard = [](const ConfigPoint&, const ConfigPoint&) { return false; },
      .handler = nullptr});
  SteeringAgent agent(spec, cfg(0));
  std::string vetoed_by;
  agent.set_on_vetoed([&](const ConfigPoint&, const ConfigPoint&,
                          const std::string& name) { vetoed_by = name; });
  agent.request(cfg(1));
  EXPECT_FALSE(agent.apply_pending());
  EXPECT_EQ(vetoed_by, "strict");
}

TEST(Steering, ApplyWithoutPendingIsNoop) {
  AppSpec spec = make_spec();
  SteeringAgent agent(spec, cfg(0));
  EXPECT_FALSE(agent.apply_pending());
  EXPECT_EQ(agent.applied(), 0u);
}

}  // namespace
}  // namespace avf::adapt
