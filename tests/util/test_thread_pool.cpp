#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace avf::util {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ResultIndependentOfExecutionOrder) {
  // The same reduction computed at several pool widths must agree with the
  // serial answer: sharding may reorder execution, never results.
  constexpr std::size_t kCount = 1000;
  std::vector<long> expected(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    expected[i] = static_cast<long>(i * i % 9973);
  }
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<long> out(kCount, -1);
    pool.parallel_for(kCount, [&](std::size_t i) {
      out[i] = static_cast<long>(i * i % 9973);
    });
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom 37");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, LowestFailingIndexWins) {
  // Deterministic error reporting: no matter how shards interleave, the
  // exception of the lowest failing index is the one rethrown.
  for (int attempt = 0; attempt < 5; ++attempt) {
    ThreadPool pool(4);
    try {
      pool.parallel_for(200, [](std::size_t i) {
        if (i % 3 == 2) {  // 2, 5, 8, ... all fail
          throw std::runtime_error("fail " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail 2");
    }
  }
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> ran{0};
  pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, StopCancelsMidSweep) {
  ThreadPool pool(2);
  std::atomic<std::size_t> started{0};
  std::atomic<bool> release{false};
  // Tasks block until released; stop fires while the sweep is in flight,
  // so later payloads must be skipped and the call must report it.
  std::thread stopper([&] {
    while (started.load() < 2) std::this_thread::yield();
    pool.request_stop();
    release.store(true);
  });
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t) {
                                   started.fetch_add(1);
                                   while (!release.load()) {
                                     std::this_thread::yield();
                                   }
                                 }),
               ThreadPoolStopped);
  stopper.join();
  EXPECT_LT(started.load(), 64u);
  EXPECT_TRUE(pool.stop_requested());
}

TEST(ThreadPool, StealingBalancesSkewedShards) {
  // One giant shard plus many tiny ones: with stealing, total wall time is
  // bounded by the giant shard, not the sum.  We assert the behavioral
  // consequence that at least two distinct workers executed tasks.
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> seen_workers;
  pool.parallel_for(64, [&](std::size_t i) {
    // Index 0 is ~50x heavier than the rest.
    auto spin = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(i == 0 ? 50 : 1);
    while (std::chrono::steady_clock::now() < spin) {
    }
    std::scoped_lock lock(mutex);
    seen_workers.insert(pool.current_worker());
  });
  EXPECT_GE(seen_workers.size(), 2u);
  for (std::size_t w : seen_workers) EXPECT_LT(w, pool.size());
}

TEST(ThreadPool, CurrentWorkerOutsidePoolIsSize) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.current_worker(), pool.size());
}

TEST(ThreadPool, SubmitFireAndForget) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    // Destruction drains the queues before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace avf::util
