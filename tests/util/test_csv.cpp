#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avf::util {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.row({"1", "2"});
  w.row({"x", "y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
}

TEST(CsvWriter, RejectsRaggedRow) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out, {"v"});
  w.row({"has,comma"});
  w.row({"has\"quote"});
  EXPECT_EQ(out.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvEscape, PassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvRead, ParsesSimpleDocument) {
  std::istringstream in("a,b\n1,2\n3,4\n");
  CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvRead, HandlesQuotedFields) {
  std::istringstream in("v\n\"a,b\"\n\"with\"\"quote\"\n");
  CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[1][0], "with\"quote");
}

TEST(CsvRead, HandlesCrLfAndMissingTrailingNewline) {
  std::istringstream in("a,b\r\n1,2\r\n3,4");
  CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
}

TEST(CsvRead, SkipsBlankLines) {
  std::istringstream in("a\n\n1\n\n2\n");
  CsvDocument doc = read_csv(in);
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(CsvRead, ThrowsOnRaggedRow) {
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CsvRead, ThrowsOnUnterminatedQuote) {
  std::istringstream in("a\n\"oops\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CsvRead, ColumnLookup) {
  std::istringstream in("x,y,z\n1,2,3\n");
  CsvDocument doc = read_csv(in);
  EXPECT_EQ(doc.column("y"), 1u);
  EXPECT_THROW(doc.column("missing"), std::out_of_range);
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter w(out, {"name", "value"});
  w.row({"weird,\"field\"", "0.125"});
  std::istringstream in(out.str());
  CsvDocument doc = read_csv(in);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "weird,\"field\"");
  EXPECT_EQ(doc.rows[0][1], "0.125");
}

}  // namespace
}  // namespace avf::util
