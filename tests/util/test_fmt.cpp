#include "util/fmt.hpp"

#include <gtest/gtest.h>

namespace avf::util {
namespace {

TEST(Fmt, PlainText) { EXPECT_EQ(format("hello"), "hello"); }

TEST(Fmt, DefaultPlaceholders) {
  EXPECT_EQ(format("{} {} {}", 1, "two", 3.5), "1 two 3.5");
}

TEST(Fmt, EscapedBraces) {
  EXPECT_EQ(format("{{}} {}", 7), "{} 7");
  EXPECT_EQ(format("a}}b"), "a}b");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(format("{:.3f}", 1.23456), "1.235");
  EXPECT_EQ(format("{:.0f}", 2.6), "3");
}

TEST(Fmt, ScientificStyle) {
  EXPECT_EQ(format("{:.2e}", 12345.0), "1.23e+04");
}

TEST(Fmt, WidthRightAlignsNumbers) {
  EXPECT_EQ(format("{:>6}", 42), "    42");
  EXPECT_EQ(format("{:6}", 42), "    42");  // numeric default is right
}

TEST(Fmt, WidthLeftAlignsStrings) {
  EXPECT_EQ(format("{:<6}x", "ab"), "ab    x");
  EXPECT_EQ(format("{:6}x", "ab"), "ab    x");  // string default is left
}

TEST(Fmt, DynamicWidth) {
  EXPECT_EQ(format("{:>{}}", "ab", 5), "   ab");
}

TEST(Fmt, DynamicPrecision) {
  EXPECT_EQ(format("{:.{}f}", 3.14159, 2), "3.14");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(format("{}", -17), "-17");
  EXPECT_EQ(format("{}", 18446744073709551615ULL), "18446744073709551615");
  EXPECT_EQ(format("{:x}", 255), "ff");
}

TEST(Fmt, Bools) { EXPECT_EQ(format("{} {}", true, false), "true false"); }

TEST(Fmt, DoublesRoundTrip) {
  EXPECT_EQ(format("{}", 0.5), "0.5");
  EXPECT_EQ(format("{}", 100.0), "100");
  // A value that needs many digits round-trips exactly.
  double v = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(format("{}", v).c_str(), nullptr), v);
}

TEST(Fmt, TooFewArgumentsThrows) {
  EXPECT_THROW(format("{} {}", 1), std::invalid_argument);
}

TEST(Fmt, UnmatchedBraceThrows) {
  EXPECT_THROW(format("{", 1), std::invalid_argument);
  EXPECT_THROW((void)format("}"), std::invalid_argument);
}

TEST(Fmt, StringPrecisionTruncates) {
  EXPECT_EQ(format("{:.3}", std::string("abcdef")), "abc");
}

}  // namespace
}  // namespace avf::util
