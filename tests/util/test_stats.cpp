#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>

#include "util/rng.hpp"

namespace avf::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(TimeWindow, EvictsOldSamples) {
  TimeWindow w(1.0);
  w.add(0.0, 1.0);
  w.add(0.5, 2.0);
  w.add(2.0, 3.0);  // horizon 1.0: samples before t=1.0 evicted
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.latest(), 3.0);
}

TEST(TimeWindow, MeanMinMax) {
  TimeWindow w(10.0);
  w.add(1.0, 4.0);
  w.add(2.0, 8.0);
  w.add(3.0, 6.0);
  EXPECT_DOUBLE_EQ(w.mean(), 6.0);
  EXPECT_DOUBLE_EQ(w.min(), 4.0);
  EXPECT_DOUBLE_EQ(w.max(), 8.0);
}

TEST(TimeWindow, SlopeOfLinearSeries) {
  TimeWindow w(100.0);
  for (int i = 0; i < 10; ++i) {
    w.add(static_cast<double>(i), 3.0 * i + 1.0);
  }
  EXPECT_NEAR(w.slope(), 3.0, 1e-12);
}

TEST(TimeWindow, SlopeDegenerateCases) {
  TimeWindow w(100.0);
  EXPECT_EQ(w.slope(), 0.0);
  w.add(1.0, 5.0);
  EXPECT_EQ(w.slope(), 0.0);  // single sample
  w.add(1.0, 9.0);
  EXPECT_EQ(w.slope(), 0.0);  // zero time spread
}

TEST(Ewma, ConvergesTowardInput) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

class TimeWindowHorizonTest : public ::testing::TestWithParam<double> {};

TEST_P(TimeWindowHorizonTest, KeepsOnlySamplesInsideHorizon) {
  double horizon = GetParam();
  TimeWindow w(horizon);
  for (int i = 0; i <= 100; ++i) w.add(0.1 * i, 1.0);
  // All retained samples must be within the horizon of the newest (t=10).
  for (const auto& [t, v] : w.samples()) {
    EXPECT_GE(t, 10.0 - horizon - 1e-12);
  }
  EXPECT_FALSE(w.empty());
}

INSTANTIATE_TEST_SUITE_P(Horizons, TimeWindowHorizonTest,
                         ::testing::Values(0.05, 0.5, 1.0, 3.7, 20.0));

TEST(TimeWindowTest, MeanSinceFiltersOldSamples) {
  TimeWindow w(10.0);
  w.add(0.0, 100.0);
  w.add(1.0, 100.0);
  w.add(5.0, 2.0);
  w.add(6.0, 4.0);
  auto m = w.mean_since(4.0);
  ASSERT_TRUE(m);
  EXPECT_DOUBLE_EQ(*m, 3.0);
  EXPECT_EQ(w.count_since(4.0), 2u);
  // Cutoff exactly on a sample time includes that sample.
  EXPECT_DOUBLE_EQ(*w.mean_since(5.0), 3.0);
  EXPECT_DOUBLE_EQ(*w.mean_since(-100.0), (100.0 + 100.0 + 2.0 + 4.0) / 4.0);
}

TEST(TimeWindowTest, MeanSinceEmptyOrAllStale) {
  TimeWindow w(10.0);
  EXPECT_FALSE(w.mean_since(0.0).has_value());
  w.add(1.0, 5.0);
  EXPECT_FALSE(w.mean_since(2.0).has_value());
  EXPECT_EQ(w.count_since(2.0), 0u);
  EXPECT_TRUE(w.mean_since(1.0).has_value());
}

// --- suffix-fold memo: incremental mean vs exact-rescan oracle ------------

/// Exact oldest->newest Neumaier left-fold over the qualifying suffix —
/// the canonical computation the memoized fold claims to reproduce.
std::optional<double> oracle_mean_since(const TimeWindow& w, double t) {
  double sum = 0.0, comp = 0.0;
  std::size_t n = 0;
  for (const auto& [time, value] : w.samples()) {
    if (time < t) continue;
    const double x = value;
    const double next = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      comp += (sum - next) + x;
    } else {
      comp += (x - next) + sum;
    }
    sum = next;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return (sum + comp) / static_cast<double>(n);
}

// Fuzz the fold against the oracle: random sample streams with stale
// bursts (time jumps past the horizon without new samples), mixed value
// magnitudes to stress the compensation, and query cutoffs that land
// before, inside, and after the retained suffix.  Equality is EXACT
// (EXPECT_EQ on doubles): the memo extension is the last step of the
// canonical scan, so any drift at all is a bug.
TEST(TimeWindow, SuffixFoldMatchesExactRescanUnderFuzz) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    SplitMix64 rng(seed);
    TimeWindow w(1.0);
    double now = 0.0;
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t action = rng.next_below(10);
      if (action < 6) {
        // Sample: small forward step; values span 9 orders of magnitude.
        now += 0.01 + 0.1 * rng.next_double();
        const double magnitude = rng.next_below(2) == 0 ? 1e-3 : 1e6;
        w.add(now, magnitude * rng.next_double());
      } else if (action < 7) {
        // Stale burst: time lurches past the horizon with no samples, so
        // the deque retains entries older than any fresh query's cutoff.
        now += 1.0 + 2.0 * rng.next_double();
      } else {
        // Query at a cutoff around the window edge (occasionally beyond
        // every retained sample).
        const double cutoff = now - 1.0 + 1.5 * (rng.next_double() - 0.25);
        auto got = w.stats_since(cutoff);
        auto want = oracle_mean_since(w, cutoff);
        ASSERT_EQ(got.has_value(), want.has_value()) << "seed " << seed;
        if (want) {
          EXPECT_EQ(got->mean, *want) << "seed " << seed << " step " << step;
          EXPECT_EQ(got->count, w.count_since(cutoff));
        }
        auto mean = w.mean_since(cutoff);
        ASSERT_EQ(mean.has_value(), want.has_value());
        if (want) EXPECT_EQ(*mean, *want);
      }
    }
    // mean() is the whole-deque fold; it must match the oracle with a
    // cutoff below every sample.
    if (!w.empty()) {
      auto want = oracle_mean_since(w, -1.0);
      ASSERT_TRUE(want.has_value());
      EXPECT_EQ(w.mean(), *want);
    }
  }
}

TEST(TimeWindow, RepeatedSuffixQueriesHitTheMemo) {
  TimeWindow w(10.0);
  for (int i = 0; i < 50; ++i) w.add(0.1 * i, 1.0 + i);
  const double cutoff = 1.05;
  auto first = w.stats_since(cutoff);
  ASSERT_TRUE(first);
  const auto after_anchor = w.fold_counters();
  // Same cutoff again and again: answered from the memo, no rescans.
  for (int i = 0; i < 20; ++i) {
    auto again = w.stats_since(cutoff);
    ASSERT_TRUE(again);
    EXPECT_EQ(again->mean, first->mean);
  }
  const auto after_hits = w.fold_counters();
  EXPECT_EQ(after_hits.rescans, after_anchor.rescans);
  EXPECT_GE(after_hits.hits, after_anchor.hits + 20);
  // Appending extends the fold in O(1) instead of invalidating it.
  w.add(5.1, 99.0);
  auto extended = w.stats_since(cutoff);
  ASSERT_TRUE(extended);
  EXPECT_EQ(extended->mean, *oracle_mean_since(w, cutoff));
  const auto after_extend = w.fold_counters();
  EXPECT_GT(after_extend.extends, after_hits.extends);
  EXPECT_EQ(after_extend.rescans, after_hits.rescans);
}

TEST(TimeWindow, ClearResetsTheFold) {
  TimeWindow w(10.0);
  w.add(0.0, 1.0);
  (void)w.stats_since(-1.0);
  w.clear();
  EXPECT_FALSE(w.stats_since(-1.0).has_value());
  w.add(1.0, 7.0);
  auto s = w.stats_since(0.0);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->mean, 7.0);
  EXPECT_EQ(s->first_time, 1.0);
  EXPECT_EQ(s->count, 1u);
}

}  // namespace
}  // namespace avf::util
