#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace avf::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(TimeWindow, EvictsOldSamples) {
  TimeWindow w(1.0);
  w.add(0.0, 1.0);
  w.add(0.5, 2.0);
  w.add(2.0, 3.0);  // horizon 1.0: samples before t=1.0 evicted
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.latest(), 3.0);
}

TEST(TimeWindow, MeanMinMax) {
  TimeWindow w(10.0);
  w.add(1.0, 4.0);
  w.add(2.0, 8.0);
  w.add(3.0, 6.0);
  EXPECT_DOUBLE_EQ(w.mean(), 6.0);
  EXPECT_DOUBLE_EQ(w.min(), 4.0);
  EXPECT_DOUBLE_EQ(w.max(), 8.0);
}

TEST(TimeWindow, SlopeOfLinearSeries) {
  TimeWindow w(100.0);
  for (int i = 0; i < 10; ++i) {
    w.add(static_cast<double>(i), 3.0 * i + 1.0);
  }
  EXPECT_NEAR(w.slope(), 3.0, 1e-12);
}

TEST(TimeWindow, SlopeDegenerateCases) {
  TimeWindow w(100.0);
  EXPECT_EQ(w.slope(), 0.0);
  w.add(1.0, 5.0);
  EXPECT_EQ(w.slope(), 0.0);  // single sample
  w.add(1.0, 9.0);
  EXPECT_EQ(w.slope(), 0.0);  // zero time spread
}

TEST(Ewma, ConvergesTowardInput) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

class TimeWindowHorizonTest : public ::testing::TestWithParam<double> {};

TEST_P(TimeWindowHorizonTest, KeepsOnlySamplesInsideHorizon) {
  double horizon = GetParam();
  TimeWindow w(horizon);
  for (int i = 0; i <= 100; ++i) w.add(0.1 * i, 1.0);
  // All retained samples must be within the horizon of the newest (t=10).
  for (const auto& [t, v] : w.samples()) {
    EXPECT_GE(t, 10.0 - horizon - 1e-12);
  }
  EXPECT_FALSE(w.empty());
}

INSTANTIATE_TEST_SUITE_P(Horizons, TimeWindowHorizonTest,
                         ::testing::Values(0.05, 0.5, 1.0, 3.7, 20.0));

TEST(TimeWindowTest, MeanSinceFiltersOldSamples) {
  TimeWindow w(10.0);
  w.add(0.0, 100.0);
  w.add(1.0, 100.0);
  w.add(5.0, 2.0);
  w.add(6.0, 4.0);
  auto m = w.mean_since(4.0);
  ASSERT_TRUE(m);
  EXPECT_DOUBLE_EQ(*m, 3.0);
  EXPECT_EQ(w.count_since(4.0), 2u);
  // Cutoff exactly on a sample time includes that sample.
  EXPECT_DOUBLE_EQ(*w.mean_since(5.0), 3.0);
  EXPECT_DOUBLE_EQ(*w.mean_since(-100.0), (100.0 + 100.0 + 2.0 + 4.0) / 4.0);
}

TEST(TimeWindowTest, MeanSinceEmptyOrAllStale) {
  TimeWindow w(10.0);
  EXPECT_FALSE(w.mean_since(0.0).has_value());
  w.add(1.0, 5.0);
  EXPECT_FALSE(w.mean_since(2.0).has_value());
  EXPECT_EQ(w.count_since(2.0), 0u);
  EXPECT_TRUE(w.mean_since(1.0).has_value());
}

}  // namespace
}  // namespace avf::util
