#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avf::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer", "10"});
  std::ostringstream out;
  t.print(out);
  std::string s = out.str();
  // Numeric column is right-aligned: "1.5" and "10" end at the same column.
  std::vector<std::string> lines;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // header, rule, 2 rows
  EXPECT_EQ(lines[2].size(), lines[3].size());
  EXPECT_TRUE(lines[2].ends_with("1.5"));
  EXPECT_TRUE(lines[3].ends_with("10"));
  // Text column is left-aligned.
  EXPECT_TRUE(lines[2].starts_with("x "));
  EXPECT_TRUE(lines[3].starts_with("longer"));
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0), "2.000");
}

TEST(TextTable, PrintsRuleUnderHeader) {
  TextTable t({"ab"});
  t.add_row({"x"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("--"), std::string::npos);
}

}  // namespace
}  // namespace avf::util
