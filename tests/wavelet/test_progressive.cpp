#include "wavelet/progressive.hpp"

#include <gtest/gtest.h>

namespace avf::wavelet {
namespace {

struct Rig {
  Image img = Image::synthetic(128, 128, 17);
  Pyramid pyr{img, 3};
  ProgressiveEncoder enc{pyr, 8};
  ProgressiveDecoder dec{128, 128, 3, 8};
};

Region full_region(const Image& img) {
  return Region{img.width() / 2, img.height() / 2,
                std::max(img.width(), img.height())};
}

TEST(Progressive, FullRegionFullLevelIsLossless) {
  Rig rig;
  Bytes payload = rig.enc.encode_region(full_region(rig.img), 3);
  ASSERT_FALSE(payload.empty());
  rig.dec.apply(payload);
  EXPECT_EQ(rig.dec.reconstruct(3), rig.img);
  EXPECT_TRUE(rig.enc.fully_sent(3));
  EXPECT_DOUBLE_EQ(rig.dec.coverage(3), 1.0);
}

TEST(Progressive, NoRetransmission) {
  Rig rig;
  Region r{64, 64, 32};
  Bytes first = rig.enc.encode_region(r, 2);
  ASSERT_FALSE(first.empty());
  Bytes second = rig.enc.encode_region(r, 2);
  EXPECT_TRUE(second.empty());  // same region, nothing new
}

TEST(Progressive, GrowingFoveaSendsIncrements) {
  Rig rig;
  std::size_t cumulative = 0;
  for (int half = 16; half <= 128; half += 16) {
    Bytes payload = rig.enc.encode_region(Region{64, 64, half}, 3);
    if (!payload.empty()) {
      auto result = rig.dec.apply(payload);
      cumulative += result.coefficients;
    }
  }
  EXPECT_TRUE(rig.enc.fully_sent(3));
  EXPECT_EQ(rig.dec.reconstruct(3), rig.img);
  // Incremental total equals one full transmission (no duplicates).
  EXPECT_EQ(cumulative, rig.dec.coefficients_received());
}

TEST(Progressive, HigherLevelSendsMoreData) {
  Rig a, b;
  Region r{64, 64, 40};
  std::size_t low = a.enc.encode_region(r, 1).size();
  std::size_t high = b.enc.encode_region(r, 3).size();
  EXPECT_GT(high, low);
}

TEST(Progressive, RegionOutsideImageSendsNothing) {
  Rig rig;
  Bytes payload = rig.enc.encode_region(Region{1000, 1000, 8}, 3);
  EXPECT_TRUE(payload.empty());
}

TEST(Progressive, PartialCoverageReconstructsApproximately) {
  Rig rig;
  // Send only the LL + level-1 data for the center region.
  Bytes payload = rig.enc.encode_region(Region{64, 64, 32}, 1);
  rig.dec.apply(payload);
  EXPECT_GT(rig.dec.coverage(1), 0.0);
  EXPECT_LT(rig.dec.coverage(3), 1.0);
  // The reconstruction is not exact but the received center should be
  // closer to the truth than an empty buffer.
  Image recon = rig.dec.reconstruct(3);
  Image empty_recon = ProgressiveDecoder(128, 128, 3, 8).reconstruct(3);
  EXPECT_LT(recon.mean_abs_diff(rig.img), empty_recon.mean_abs_diff(rig.img));
}

TEST(Progressive, LevelUpgradeAfterFullCoarseSend) {
  Rig rig;
  Bytes coarse = rig.enc.encode_region(full_region(rig.img), 2);
  rig.dec.apply(coarse);
  EXPECT_TRUE(rig.enc.fully_sent(2));
  EXPECT_FALSE(rig.enc.fully_sent(3));
  // Level-2 image is exact now.
  Pyramid ref(rig.img, 3);
  EXPECT_EQ(rig.dec.reconstruct(2), ref.reconstruct(2));
  // Upgrading to level 3 sends only the level-3 detail bands.
  Bytes fine = rig.enc.encode_region(full_region(rig.img), 3);
  rig.dec.apply(fine);
  EXPECT_EQ(rig.dec.reconstruct(3), rig.img);
}

TEST(Progressive, ResetForgetsSentState) {
  Rig rig;
  Region r{64, 64, 32};
  Bytes first = rig.enc.encode_region(r, 2);
  rig.enc.reset();
  Bytes again = rig.enc.encode_region(r, 2);
  EXPECT_EQ(first.size(), again.size());
}

TEST(Progressive, TilesSentMatchesTotalWhenComplete) {
  Rig rig;
  rig.enc.encode_region(full_region(rig.img), 3);
  EXPECT_EQ(rig.enc.tiles_sent(), rig.enc.total_tiles(3));
}

TEST(Progressive, MalformedPayloadThrows) {
  Rig rig;
  Bytes payload = rig.enc.encode_region(Region{64, 64, 16}, 1);
  ASSERT_GT(payload.size(), 4u);
  Bytes truncated(payload.begin(), payload.begin() + payload.size() / 2);
  EXPECT_THROW(rig.dec.apply(truncated), std::runtime_error);

  Bytes bad_band = payload;
  bad_band[2] = 0xFF;  // first tile's band id
  ProgressiveDecoder fresh(128, 128, 3, 8);
  EXPECT_THROW(fresh.apply(bad_band), std::runtime_error);
}

TEST(Progressive, RejectsBadTileSize) {
  Pyramid pyr(64, 64, 2);
  EXPECT_THROW(ProgressiveEncoder(pyr, 0), std::invalid_argument);
  EXPECT_THROW(ProgressiveDecoder(64, 64, 2, 300), std::invalid_argument);
}

class ProgressiveTileSizes : public ::testing::TestWithParam<int> {};

TEST_P(ProgressiveTileSizes, LosslessAtAnyTileSize) {
  Image img = Image::synthetic(64, 64, 23);
  Pyramid pyr(img, 2);
  ProgressiveEncoder enc(pyr, GetParam());
  ProgressiveDecoder dec(64, 64, 2, GetParam());
  dec.apply(enc.encode_region(Region{32, 32, 64}, 2));
  EXPECT_EQ(dec.reconstruct(2), img);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, ProgressiveTileSizes,
                         ::testing::Values(1, 3, 8, 16, 17, 64, 255));

// -- take/serialize split (the cacheable decomposition) ------------------

TEST(Progressive, TakeThenSerializeMatchesEncodeRegion) {
  // encode_region must equal serialize_tiles(take_region_tiles(...)) byte
  // for byte across a growing fovea — the identity the region cache rests
  // on.
  Rig via_split, via_encode;
  for (int half = 16; half <= 128; half += 24) {
    Region r{64, 64, half};
    std::vector<TileRef> tiles = via_split.enc.take_region_tiles(r, 3);
    Bytes split_bytes = via_split.enc.serialize_tiles(tiles);
    Bytes direct = via_encode.enc.encode_region(r, 3);
    EXPECT_EQ(split_bytes, direct);
    EXPECT_EQ(tiles.empty(), direct.empty());
  }
  EXPECT_EQ(via_split.enc.tiles_sent(), via_encode.enc.tiles_sent());
}

TEST(Progressive, SerializeTilesIsPure) {
  Rig rig;
  std::vector<TileRef> tiles = rig.enc.take_region_tiles({64, 64, 32}, 2);
  ASSERT_FALSE(tiles.empty());
  std::size_t sent = rig.enc.tiles_sent();
  Bytes first = rig.enc.serialize_tiles(tiles);
  Bytes second = rig.enc.serialize_tiles(tiles);
  EXPECT_EQ(first, second);              // same bytes every time
  EXPECT_EQ(rig.enc.tiles_sent(), sent);  // no sent-state mutation
}

TEST(Progressive, TakeRegionTilesMarksSent) {
  Rig rig;
  Region r{64, 64, 32};
  std::vector<TileRef> first = rig.enc.take_region_tiles(r, 2);
  ASSERT_FALSE(first.empty());
  // Taking the same region again yields nothing: the tiles are spoken for
  // even though serialize_tiles never ran.
  EXPECT_TRUE(rig.enc.take_region_tiles(r, 2).empty());
  EXPECT_TRUE(rig.enc.encode_region(r, 2).empty());
}

}  // namespace
}  // namespace avf::wavelet
