#include "wavelet/image.hpp"

#include <gtest/gtest.h>

namespace avf::wavelet {
namespace {

TEST(Image, ConstructsZeroed) {
  Image img(8, 4);
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img.height(), 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 8; ++x) EXPECT_EQ(img.at(x, y), 0);
  }
}

TEST(Image, SyntheticIsDeterministic) {
  Image a = Image::synthetic(64, 64, 42);
  Image b = Image::synthetic(64, 64, 42);
  EXPECT_EQ(a, b);
}

TEST(Image, SyntheticVariesWithSeed) {
  Image a = Image::synthetic(64, 64, 1);
  Image b = Image::synthetic(64, 64, 2);
  EXPECT_NE(a, b);
}

TEST(Image, SyntheticHasContrast) {
  Image img = Image::synthetic(128, 128, 3);
  int lo = 255, hi = 0;
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      lo = std::min<int>(lo, img.at(x, y));
      hi = std::max<int>(hi, img.at(x, y));
    }
  }
  EXPECT_GT(hi - lo, 60);  // not a flat image
}

TEST(Image, MeanAbsDiffZeroForIdentical) {
  Image a = Image::synthetic(32, 32, 5);
  EXPECT_EQ(a.mean_abs_diff(a), 0.0);
}

TEST(Image, MeanAbsDiffDimensionMismatchThrows) {
  Image a(4, 4), b(8, 8);
  EXPECT_THROW((void)a.mean_abs_diff(b), std::invalid_argument);
}

TEST(Image, DownsampleAveragesBlocks) {
  Image img(4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(x < 2 ? 100 : 200);
    }
  }
  Image half = img.downsample(2);
  EXPECT_EQ(half.width(), 2);
  EXPECT_EQ(half.at(0, 0), 100);
  EXPECT_EQ(half.at(1, 0), 200);
}

TEST(Image, DownsampleRejectsBadFactor) {
  Image img(6, 6);
  EXPECT_THROW((void)img.downsample(4), std::invalid_argument);
  EXPECT_THROW((void)img.downsample(0), std::invalid_argument);
}

}  // namespace
}  // namespace avf::wavelet
