#include "wavelet/haar.hpp"

#include <gtest/gtest.h>

namespace avf::wavelet {
namespace {

TEST(Pyramid, GeometryChecks) {
  Image img = Image::synthetic(64, 64, 1);
  EXPECT_THROW(Pyramid(img, 0), std::invalid_argument);
  EXPECT_THROW(Pyramid(img, 13), std::invalid_argument);
  EXPECT_THROW(Pyramid(img, 7), std::invalid_argument);  // 64 % 128 != 0
  EXPECT_NO_THROW(Pyramid(img, 6));
}

TEST(Pyramid, BandDimensions) {
  Image img = Image::synthetic(128, 64, 2);
  Pyramid pyr(img, 3);
  EXPECT_EQ(pyr.ll().width, 16);
  EXPECT_EQ(pyr.ll().height, 8);
  EXPECT_EQ(pyr.detail(1, Orientation::kLH).width, 16);
  EXPECT_EQ(pyr.detail(2, Orientation::kLH).width, 32);
  EXPECT_EQ(pyr.detail(3, Orientation::kLH).width, 64);
  EXPECT_THROW(pyr.detail(0, Orientation::kLH), std::out_of_range);
  EXPECT_THROW(pyr.detail(4, Orientation::kLH), std::out_of_range);
}

TEST(Pyramid, WidthAtLevels) {
  Image img = Image::synthetic(256, 256, 3);
  Pyramid pyr(img, 4);
  EXPECT_EQ(pyr.width_at(0), 16);
  EXPECT_EQ(pyr.width_at(4), 256);
}

TEST(Pyramid, FullReconstructionIsLossless) {
  Image img = Image::synthetic(128, 128, 7);
  for (int levels : {1, 2, 4}) {
    Pyramid pyr(img, levels);
    Image back = pyr.reconstruct(levels);
    EXPECT_EQ(back, img) << "levels=" << levels;
  }
}

TEST(Pyramid, LosslessOnNonSquareImages) {
  Image img = Image::synthetic(256, 64, 9);
  Pyramid pyr(img, 3);
  EXPECT_EQ(pyr.reconstruct(3), img);
}

TEST(Pyramid, CoarseLevelsApproximateDownsampling) {
  Image img = Image::synthetic(256, 256, 11);
  Pyramid pyr(img, 3);
  // Level 2 = half resolution; Haar averaging is close to block averaging.
  Image level2 = pyr.reconstruct(2);
  Image ref = img.downsample(2);
  EXPECT_EQ(level2.width(), ref.width());
  EXPECT_LT(level2.mean_abs_diff(ref), 2.0);
}

TEST(Pyramid, ConstantImageHasZeroDetails) {
  Image img(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) img.at(x, y) = 77;
  }
  Pyramid pyr(img, 3);
  for (int k = 1; k <= 3; ++k) {
    for (auto o : {Orientation::kLH, Orientation::kHL, Orientation::kHH}) {
      for (auto c : pyr.detail(k, o).coeffs) EXPECT_EQ(c, 0);
    }
  }
  for (auto c : pyr.ll().coeffs) EXPECT_EQ(c, 77);
}

TEST(Pyramid, EmptyPyramidReconstructsBlack) {
  Pyramid pyr(64, 64, 3);
  Image img = pyr.reconstruct(3);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) EXPECT_EQ(img.at(x, y), 0);
  }
}

TEST(Pyramid, CoefficientsUpToCounts) {
  Pyramid pyr(64, 64, 2);
  // LL 16x16 = 256; level1 details 3*256 = 768; level2 3*1024 = 3072.
  EXPECT_EQ(pyr.coefficients_up_to(0), 256u);
  EXPECT_EQ(pyr.coefficients_up_to(1), 1024u);
  EXPECT_EQ(pyr.coefficients_up_to(2), 4096u);
}

TEST(Pyramid, ReconstructRangeChecks) {
  Pyramid pyr(32, 32, 2);
  EXPECT_THROW((void)pyr.reconstruct(-1), std::out_of_range);
  EXPECT_THROW((void)pyr.reconstruct(3), std::out_of_range);
}

class PyramidLossless : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PyramidLossless, RoundTripManySeeds) {
  Image img = Image::synthetic(64, 64, GetParam());
  Pyramid pyr(img, 4);
  EXPECT_EQ(pyr.reconstruct(4), img);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PyramidLossless,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace avf::wavelet
