#include "wavelet/quantize.hpp"

#include "codec/codec.hpp"
#include "wavelet/progressive.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace avf::wavelet {
namespace {

TEST(Quantize, StepOneIsLossless) {
  Image img = Image::synthetic(128, 128, 5);
  Pyramid pyr(img, 3);
  quantize_details(pyr, 1);
  dequantize_details(pyr, 1);
  EXPECT_EQ(pyr.reconstruct(3), img);
}

TEST(Quantize, RejectsBadStep) {
  Pyramid pyr(64, 64, 2);
  EXPECT_THROW(quantize_details(pyr, 0), std::invalid_argument);
  Band b;
  EXPECT_THROW(quantize_band(b, -1), std::invalid_argument);
}

TEST(Quantize, BandRoundTripBoundedError) {
  Band b;
  b.width = 4;
  b.height = 1;
  b.coeffs = {-100, -3, 3, 100};
  quantize_band(b, 8);
  dequantize_band(b, 8);
  EXPECT_EQ(b.coeffs.size(), 4u);
  // Error bounded by step/2.
  EXPECT_NEAR(b.coeffs[0], -100, 4);
  EXPECT_NEAR(b.coeffs[3], 100, 4);
  // Small coefficients fall into the dead zone.
  EXPECT_EQ(b.coeffs[1], 0);
  EXPECT_EQ(b.coeffs[2], 0);
}

TEST(Quantize, CoarserStepsIncreaseSparsityAndLowerPsnr) {
  Image img = Image::synthetic(128, 128, 9);
  double last_sparsity = -1.0;
  double last_psnr = 1e9;
  for (int step : {2, 4, 8, 16}) {
    Pyramid pyr(img, 3);
    double sparsity = quantize_details(pyr, step);
    dequantize_details(pyr, step);
    double quality = psnr(img, pyr.reconstruct(3));
    EXPECT_GT(sparsity, last_sparsity) << "step=" << step;
    EXPECT_LT(quality, last_psnr) << "step=" << step;
    EXPECT_GT(quality, 20.0) << "step=" << step;  // still recognizable
    last_sparsity = sparsity;
    last_psnr = quality;
  }
  EXPECT_GT(last_sparsity, 0.4);  // step 16 zeroes much of the noise detail
}

TEST(Quantize, PsnrBasics) {
  Image a = Image::synthetic(64, 64, 1);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  Image b = a;
  b.at(0, 0) = static_cast<std::uint8_t>(b.at(0, 0) ^ 0xFF);
  EXPECT_LT(psnr(a, b), 60.0);
  EXPECT_GT(psnr(a, b), 20.0);
  Image c(32, 32);
  EXPECT_THROW((void)psnr(a, c), std::invalid_argument);
}

TEST(Quantize, QuantizedPayloadCompressesBetter) {
  // The operational point of quantization: sparser details -> smaller
  // compressed payloads.
  Image img = Image::synthetic(128, 128, 13);
  Pyramid plain(img, 3);
  Pyramid coarse(img, 3);
  quantize_details(coarse, 8);

  ProgressiveEncoder enc_plain(plain, 16);
  ProgressiveEncoder enc_coarse(coarse, 16);
  Region all{64, 64, 128};
  Bytes payload_plain = enc_plain.encode_region(all, 3);
  Bytes payload_coarse = enc_coarse.encode_region(all, 3);
  const codec::Codec& lzw = codec::codec_for(codec::CodecId::kLzw);
  EXPECT_LT(lzw.compress(payload_coarse).size(),
            lzw.compress(payload_plain).size() * 0.8);
}

}  // namespace
}  // namespace avf::wavelet
