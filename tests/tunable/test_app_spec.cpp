#include "tunable/app_spec.hpp"

#include <gtest/gtest.h>

namespace avf::tunable {
namespace {

AppSpec make_spec() {
  AppSpec spec("demo");
  spec.space().add_parameter("mode", {0, 1});
  spec.metrics().add("latency", Direction::kLowerBetter);
  spec.add_resource_axis("cpu_share");
  return spec;
}

TEST(AppSpec, BasicDeclarations) {
  AppSpec spec = make_spec();
  EXPECT_EQ(spec.name(), "demo");
  EXPECT_EQ(spec.space().parameter_count(), 1u);
  EXPECT_EQ(spec.resource_axes(),
            (std::vector<std::string>{"cpu_share"}));
  EXPECT_THROW(spec.add_resource_axis("cpu_share"), std::invalid_argument);
}

TEST(AppSpec, TaskGuardsFilterActiveTasks) {
  AppSpec spec = make_spec();
  spec.add_task(TaskSpec{.name = "always",
                         .params = {"mode"},
                         .resources = {},
                         .metrics = {"latency"},
                         .guard = nullptr});
  spec.add_task(TaskSpec{
      .name = "mode1-only",
      .params = {"mode"},
      .resources = {},
      .metrics = {},
      .guard = [](const ConfigPoint& p) { return p.get("mode") == 1; }});

  ConfigPoint mode0;
  mode0.set("mode", 0);
  auto active0 = spec.active_tasks(mode0);
  ASSERT_EQ(active0.size(), 1u);
  EXPECT_EQ(active0[0]->name, "always");

  ConfigPoint mode1;
  mode1.set("mode", 1);
  EXPECT_EQ(spec.active_tasks(mode1).size(), 2u);
}

TEST(AppSpec, TransitionsStored) {
  AppSpec spec = make_spec();
  int fired = 0;
  spec.add_transition(TransitionSpec{
      .name = "t",
      .guard = nullptr,
      .handler = [&](const ConfigPoint&, const ConfigPoint&) { ++fired; }});
  ASSERT_EQ(spec.transitions().size(), 1u);
  ConfigPoint p;
  spec.transitions()[0].handler(p, p);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace avf::tunable
