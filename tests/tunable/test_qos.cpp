#include "tunable/qos.hpp"

#include <gtest/gtest.h>

namespace avf::tunable {
namespace {

QosVector make(double transmit, double resolution) {
  QosVector q;
  q.set("transmit_time", transmit);
  q.set("resolution", resolution);
  return q;
}

MetricSchema schema() {
  MetricSchema s;
  s.add("transmit_time", Direction::kLowerBetter);
  s.add("resolution", Direction::kHigherBetter);
  return s;
}

TEST(Qos, AtLeastAsGoodRespectsDirection) {
  EXPECT_TRUE(at_least_as_good(1.0, 2.0, Direction::kLowerBetter));
  EXPECT_FALSE(at_least_as_good(3.0, 2.0, Direction::kLowerBetter));
  EXPECT_TRUE(at_least_as_good(3.0, 2.0, Direction::kHigherBetter));
  EXPECT_TRUE(at_least_as_good(2.0, 2.0, Direction::kHigherBetter));
}

TEST(Qos, VectorAccess) {
  QosVector q = make(5.0, 4.0);
  EXPECT_EQ(q.get("transmit_time"), 5.0);
  EXPECT_THROW(q.get("nope"), std::out_of_range);
  EXPECT_FALSE(q.try_get("nope").has_value());
}

TEST(MetricSchemaTest, RejectsDuplicates) {
  MetricSchema s;
  s.add("m", Direction::kLowerBetter);
  EXPECT_THROW(s.add("m", Direction::kHigherBetter), std::invalid_argument);
  EXPECT_THROW(s.metric("other"), std::out_of_range);
}

TEST(MetricSchemaTest, DominanceRequiresAllAndStrict) {
  MetricSchema s = schema();
  // Better on both -> dominates.
  EXPECT_TRUE(s.dominates(make(1.0, 4.0), make(2.0, 3.0)));
  // Equal everywhere -> no strict domination.
  EXPECT_FALSE(s.dominates(make(1.0, 4.0), make(1.0, 4.0)));
  // Trade-off -> no domination either way.
  EXPECT_FALSE(s.dominates(make(1.0, 3.0), make(2.0, 4.0)));
  EXPECT_FALSE(s.dominates(make(2.0, 4.0), make(1.0, 3.0)));
  // Better on one, equal on the other -> dominates.
  EXPECT_TRUE(s.dominates(make(1.0, 4.0), make(2.0, 4.0)));
}

TEST(MetricSchemaTest, EquivalenceIsRelative) {
  MetricSchema s = schema();
  EXPECT_TRUE(s.equivalent(make(100.0, 4.0), make(101.0, 4.0), 0.02));
  EXPECT_FALSE(s.equivalent(make(100.0, 4.0), make(110.0, 4.0), 0.02));
  EXPECT_TRUE(s.equivalent(make(0.0, 0.0), make(0.001, 0.0), 0.01));
}

TEST(MetricSchemaTest, NamesInDeclarationOrder) {
  MetricSchema s = schema();
  EXPECT_EQ(s.names(),
            (std::vector<std::string>{"transmit_time", "resolution"}));
}

}  // namespace
}  // namespace avf::tunable
