#include "tunable/config.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <string_view>

namespace avf::tunable {
namespace {

TEST(ConfigPoint, SetGetAndKey) {
  ConfigPoint p;
  p.set("dR", 80);
  p.set("c", 1);
  p.set("l", 4);
  EXPECT_EQ(p.get("dR"), 80);
  EXPECT_EQ(p.key(), "c=1,dR=80,l=4");  // canonical: sorted by name
  EXPECT_THROW(p.get("missing"), std::out_of_range);
  EXPECT_EQ(p.try_get("missing"), std::nullopt);
}

TEST(ConfigPoint, WithReturnsModifiedCopy) {
  ConfigPoint p;
  p.set("a", 1);
  ConfigPoint q = p.with("a", 2);
  EXPECT_EQ(p.get("a"), 1);
  EXPECT_EQ(q.get("a"), 2);
}

TEST(ConfigPoint, ParseRoundTrips) {
  ConfigPoint p;
  p.set("dR", 320);
  p.set("c", 2);
  EXPECT_EQ(ConfigPoint::parse(p.key()), p);
  EXPECT_THROW(ConfigPoint::parse("noequals"), std::invalid_argument);
  EXPECT_THROW(ConfigPoint::parse("=5"), std::invalid_argument);
}

// Capture the descriptive parse error for a malformed key ("" = no throw).
std::string parse_error(const std::string& key) {
  try {
    ConfigPoint::parse(key);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(ConfigPoint, ParseEmptyStringIsEmptyPoint) {
  EXPECT_TRUE(ConfigPoint::parse("").empty());
}

TEST(ConfigPoint, ParseRejectsMissingEquals) {
  std::string err = parse_error("a=1,b2");
  EXPECT_NE(err.find("has no '='"), std::string::npos) << err;
  EXPECT_NE(err.find("a=1,b2"), std::string::npos) << err;  // names the key
}

TEST(ConfigPoint, ParseRejectsEmptyParameterName) {
  EXPECT_NE(parse_error("=5").find("empty parameter name"),
            std::string::npos);
}

TEST(ConfigPoint, ParseRejectsNonNumericValue) {
  std::string err = parse_error("a=xyz");
  EXPECT_NE(err.find("not an integer"), std::string::npos) << err;
  EXPECT_NE(err.find("parameter a"), std::string::npos) << err;
}

TEST(ConfigPoint, ParseRejectsEmptyValue) {
  EXPECT_NE(parse_error("a=").find("not an integer"), std::string::npos);
}

TEST(ConfigPoint, ParseRejectsTrailingCharactersAfterValue) {
  EXPECT_NE(parse_error("a=12junk").find("trailing characters"),
            std::string::npos);
  // A float is integer digits + trailing characters, not a valid value.
  EXPECT_NE(parse_error("a=1.5").find("trailing characters"),
            std::string::npos);
}

TEST(ConfigPoint, ParseRejectsOutOfRangeValue) {
  EXPECT_NE(parse_error("a=99999999999999999999").find("out of range"),
            std::string::npos);
}

TEST(ConfigPoint, ParseRejectsDuplicateParameter) {
  std::string err = parse_error("a=1,a=2");
  EXPECT_NE(err.find("duplicate parameter a"), std::string::npos) << err;
}

TEST(ConfigPoint, ParseRejectsTrailingSeparator) {
  EXPECT_NE(parse_error("a=1,").find("trailing separator"),
            std::string::npos);
}

TEST(ConfigPoint, ParseRejectsEmptyItem) {
  EXPECT_NE(parse_error("a=1,,b=2").find("empty item"), std::string::npos);
}

TEST(ConfigPoint, ParseAcceptsNegativeValues) {
  ConfigPoint p = ConfigPoint::parse("a=-3,b=0");
  EXPECT_EQ(p.get("a"), -3);
  EXPECT_EQ(p.get("b"), 0);
}

TEST(ConfigPoint, Ordering) {
  ConfigPoint a, b;
  a.set("x", 1);
  b.set("x", 2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(ConfigSpace, EnumeratesCartesianProduct) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2});
  space.add_parameter("b", {10, 20, 30});
  auto all = space.enumerate();
  EXPECT_EQ(all.size(), 6u);
  // First point is all-first-values; last is all-last-values.
  EXPECT_EQ(all.front().get("a"), 1);
  EXPECT_EQ(all.front().get("b"), 10);
  EXPECT_EQ(all.back().get("a"), 2);
  EXPECT_EQ(all.back().get("b"), 30);
}

TEST(ConfigSpace, GuardsFilterEnumeration) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2, 3});
  space.add_parameter("b", {1, 2, 3});
  space.add_guard("a <= b",
                  [](const ConfigPoint& p) { return p.get("a") <= p.get("b"); });
  auto all = space.enumerate();
  EXPECT_EQ(all.size(), 6u);  // upper triangle of 3x3
  for (const auto& p : all) EXPECT_LE(p.get("a"), p.get("b"));
}

TEST(ConfigSpace, ValidChecksDomainAndGuards) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2});
  space.add_guard("a != 2", [](const ConfigPoint& p) { return p.get("a") != 2; });
  ConfigPoint ok;
  ok.set("a", 1);
  EXPECT_TRUE(space.valid(ok));
  ConfigPoint guard_fail;
  guard_fail.set("a", 2);
  EXPECT_FALSE(space.valid(guard_fail));
  ConfigPoint out_of_domain;
  out_of_domain.set("a", 5);
  EXPECT_FALSE(space.valid(out_of_domain));
  ConfigPoint missing_param;
  EXPECT_FALSE(space.valid(missing_param));
}

TEST(ConfigSpace, RejectsBadDeclarations) {
  ConfigSpace space;
  EXPECT_THROW(space.add_parameter("a", {}), std::invalid_argument);
  space.add_parameter("a", {1});
  EXPECT_THROW(space.add_parameter("a", {2}), std::invalid_argument);
  EXPECT_THROW(space.parameter("zz"), std::out_of_range);
  EXPECT_EQ(space.parameter("a").values.size(), 1u);
}

TEST(ConfigSpace, EmptySpaceEnumeratesNothing) {
  ConfigSpace space;
  EXPECT_TRUE(space.enumerate().empty());
}

TEST(ConfigSpace, RawSizeIsUnguardedProduct) {
  ConfigSpace space;
  EXPECT_EQ(space.raw_size(), 0u);  // no parameters: empty, not 1
  space.add_parameter("a", {1, 2});
  space.add_parameter("b", {1, 2, 3});
  EXPECT_EQ(space.raw_size(), 6u);
  // Guards do not change the raw size.
  space.add_guard("none pass", [](const ConfigPoint&) { return false; });
  EXPECT_EQ(space.raw_size(), 6u);
}

TEST(ConfigSpace, RawSizeSaturatesInsteadOfOverflowing) {
  ConfigSpace space;
  std::vector<int> wide(100000);
  for (int i = 0; i < 100000; ++i) wide[i] = i;
  for (int p = 0; p < 5; ++p) {
    space.add_parameter("p" + std::to_string(p), wide);  // 10^25 raw points
  }
  EXPECT_EQ(space.raw_size(), std::numeric_limits<std::size_t>::max());
}

TEST(ConfigSpace, FeasibleStopsAtFirstAdmissiblePoint) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2, 3});
  EXPECT_TRUE(space.feasible());
  space.add_guard("a == 3", [](const ConfigPoint& p) { return p.get("a") == 3; });
  EXPECT_TRUE(space.feasible());
}

TEST(ConfigSpace, GuardsFilteringEverythingIsReportableNotSilent) {
  // Regression: a guard set that rules out every configuration must be
  // distinguishable from a space with no parameters — raw_size() > 0 with
  // feasible() == false is the linter's guard.infeasible signal.
  ConfigSpace space;
  space.add_parameter("a", {1, 2});
  space.add_guard("impossible", [](const ConfigPoint&) { return false; });
  EXPECT_EQ(space.raw_size(), 2u);
  EXPECT_FALSE(space.feasible());
  EXPECT_TRUE(space.enumerate().empty());

  ConfigSpace empty;
  EXPECT_EQ(empty.raw_size(), 0u);
  EXPECT_FALSE(empty.feasible());
}

TEST(ConfigSpace, RegistrationSitesAreCaptured) {
  ConfigSpace space;
  space.add_parameter("a", {1});           // site captured on this line
  space.add_guard("g", [](const ConfigPoint&) { return true; });
  EXPECT_NE(std::string_view(space.parameter("a").where.file_name())
                .find("test_config.cpp"),
            std::string_view::npos);
  EXPECT_NE(std::string_view(space.guards().front().where.file_name())
                .find("test_config.cpp"),
            std::string_view::npos);
}

}  // namespace
}  // namespace avf::tunable
