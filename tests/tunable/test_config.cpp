#include "tunable/config.hpp"

#include <gtest/gtest.h>

namespace avf::tunable {
namespace {

TEST(ConfigPoint, SetGetAndKey) {
  ConfigPoint p;
  p.set("dR", 80);
  p.set("c", 1);
  p.set("l", 4);
  EXPECT_EQ(p.get("dR"), 80);
  EXPECT_EQ(p.key(), "c=1,dR=80,l=4");  // canonical: sorted by name
  EXPECT_THROW(p.get("missing"), std::out_of_range);
  EXPECT_EQ(p.try_get("missing"), std::nullopt);
}

TEST(ConfigPoint, WithReturnsModifiedCopy) {
  ConfigPoint p;
  p.set("a", 1);
  ConfigPoint q = p.with("a", 2);
  EXPECT_EQ(p.get("a"), 1);
  EXPECT_EQ(q.get("a"), 2);
}

TEST(ConfigPoint, ParseRoundTrips) {
  ConfigPoint p;
  p.set("dR", 320);
  p.set("c", 2);
  EXPECT_EQ(ConfigPoint::parse(p.key()), p);
  EXPECT_THROW(ConfigPoint::parse("noequals"), std::invalid_argument);
  EXPECT_THROW(ConfigPoint::parse("=5"), std::invalid_argument);
}

TEST(ConfigPoint, Ordering) {
  ConfigPoint a, b;
  a.set("x", 1);
  b.set("x", 2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(ConfigSpace, EnumeratesCartesianProduct) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2});
  space.add_parameter("b", {10, 20, 30});
  auto all = space.enumerate();
  EXPECT_EQ(all.size(), 6u);
  // First point is all-first-values; last is all-last-values.
  EXPECT_EQ(all.front().get("a"), 1);
  EXPECT_EQ(all.front().get("b"), 10);
  EXPECT_EQ(all.back().get("a"), 2);
  EXPECT_EQ(all.back().get("b"), 30);
}

TEST(ConfigSpace, GuardsFilterEnumeration) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2, 3});
  space.add_parameter("b", {1, 2, 3});
  space.add_guard("a <= b",
                  [](const ConfigPoint& p) { return p.get("a") <= p.get("b"); });
  auto all = space.enumerate();
  EXPECT_EQ(all.size(), 6u);  // upper triangle of 3x3
  for (const auto& p : all) EXPECT_LE(p.get("a"), p.get("b"));
}

TEST(ConfigSpace, ValidChecksDomainAndGuards) {
  ConfigSpace space;
  space.add_parameter("a", {1, 2});
  space.add_guard("a != 2", [](const ConfigPoint& p) { return p.get("a") != 2; });
  ConfigPoint ok;
  ok.set("a", 1);
  EXPECT_TRUE(space.valid(ok));
  ConfigPoint guard_fail;
  guard_fail.set("a", 2);
  EXPECT_FALSE(space.valid(guard_fail));
  ConfigPoint out_of_domain;
  out_of_domain.set("a", 5);
  EXPECT_FALSE(space.valid(out_of_domain));
  ConfigPoint missing_param;
  EXPECT_FALSE(space.valid(missing_param));
}

TEST(ConfigSpace, RejectsBadDeclarations) {
  ConfigSpace space;
  EXPECT_THROW(space.add_parameter("a", {}), std::invalid_argument);
  space.add_parameter("a", {1});
  EXPECT_THROW(space.add_parameter("a", {2}), std::invalid_argument);
  EXPECT_THROW(space.parameter("zz"), std::out_of_range);
  EXPECT_EQ(space.parameter("a").values.size(), 1u);
}

TEST(ConfigSpace, EmptySpaceEnumeratesNothing) {
  ConfigSpace space;
  EXPECT_TRUE(space.enumerate().empty());
}

}  // namespace
}  // namespace avf::tunable
