// avf_srclint scanner tests: each fixture under srclint_fixtures/ seeds one
// rule's defect and is asserted by stable rule id; plus suppression
// round-trip, meta-rule (unknown rule / missing justification) and path
// scoping coverage.  AVF_SRCLINT_FIXTURE_DIR is injected by CMake.
#include "lint/srclint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "lint/rules.hpp"

namespace {

using avf::lint::Report;
using avf::lint::Severity;
using avf::lint::srclint_file;
using avf::lint::srclint_rules;
namespace rules = avf::lint::rules;

std::string fixture(const std::string& name) {
  std::string path = std::string(AVF_SRCLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t count_rule(const Report& report, std::string_view rule) {
  std::size_t n = 0;
  for (const auto& diagnostic : report.diagnostics()) {
    if (diagnostic.rule == rule) ++n;
  }
  return n;
}

TEST(SrcLint, UnorderedIterationFixtureFlaggedByRuleId) {
  Report report =
      srclint_file("src/sim/unordered_iteration.cpp",
                   fixture("unordered_iteration.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcUnorderedIter));
  EXPECT_EQ(count_rule(report, rules::kSrcUnorderedIter), 2u);
  EXPECT_EQ(report.diagnostics().size(), 2u);  // no other rule fires
  EXPECT_FALSE(report.has_errors());           // warnings, gated by --strict
}

TEST(SrcLint, UnorderedIterationScopedToTraceAffectingModules) {
  Report report = srclint_file("src/util/unordered_iteration.cpp",
                               fixture("unordered_iteration.cpp"));
  EXPECT_FALSE(report.has_rule(rules::kSrcUnorderedIter));
}

TEST(SrcLint, SiblingHeaderDeclaresTheUnorderedMember) {
  // The .cpp alone has no declaration; the member lives in the header.
  std::string header =
      "#include <unordered_map>\n"
      "struct Index { std::unordered_map<int, int> by_id_; int walk(); };\n";
  std::string source =
      "int Index::walk() {\n"
      "  int acc = 0;\n"
      "  for (const auto& [k, v] : by_id_) acc += k + v;\n"
      "  return acc;\n"
      "}\n";
  EXPECT_FALSE(srclint_file("src/sim/index.cpp", source)
                   .has_rule(rules::kSrcUnorderedIter));
  Report with_header = srclint_file("src/sim/index.cpp", source, header);
  EXPECT_TRUE(with_header.has_rule(rules::kSrcUnorderedIter));
}

TEST(SrcLint, WallClockFixtureFlaggedByRuleId) {
  Report report =
      srclint_file("src/adapt/wall_clock.cpp", fixture("wall_clock.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcWallClock));
  EXPECT_EQ(count_rule(report, rules::kSrcWallClock), 3u);  // 3 lines
}

TEST(SrcLint, WallClockAllowedInBench) {
  Report report =
      srclint_file("bench/wall_clock.cpp", fixture("wall_clock.cpp"));
  EXPECT_FALSE(report.has_rule(rules::kSrcWallClock));
}

TEST(SrcLint, NondetRandomFixtureFlaggedByRuleId) {
  Report report = srclint_file("src/viz/nondet_random.cpp",
                               fixture("nondet_random.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcNondetRandom));
  EXPECT_EQ(count_rule(report, rules::kSrcNondetRandom), 2u);
}

TEST(SrcLint, RandomEngineAllowedInRngHeader) {
  Report report =
      srclint_file("src/util/rng.hpp", "std::mt19937 engine_;\n");
  EXPECT_TRUE(report.empty());
}

TEST(SrcLint, RawMutexFixtureFlaggedByRuleId) {
  Report report =
      srclint_file("src/util/raw_mutex.cpp", fixture("raw_mutex.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcRawMutex));
  EXPECT_EQ(count_rule(report, rules::kSrcRawMutex), 2u);
}

TEST(SrcLint, RawMutexWrapperFileIsExempt) {
  Report report =
      srclint_file("src/util/mutex.hpp", fixture("raw_mutex.cpp"));
  EXPECT_FALSE(report.has_rule(rules::kSrcRawMutex));
}

TEST(SrcLint, AnnotatedConditionVariableAnyIsNotRaw) {
  Report report = srclint_file(
      "src/util/pool.hpp", "std::condition_variable_any wake_;\n");
  EXPECT_FALSE(report.has_rule(rules::kSrcRawMutex));
}

TEST(SrcLint, FloatAccumFixtureFlaggedByRuleId) {
  Report report =
      srclint_file("src/sim/float_accum.cpp", fixture("float_accum.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcFloatAccum));
  EXPECT_EQ(count_rule(report, rules::kSrcFloatAccum), 2u);  // += and -=
}

TEST(SrcLint, FloatAccumScopedToSim) {
  Report report =
      srclint_file("src/viz/float_accum.cpp", fixture("float_accum.cpp"));
  EXPECT_FALSE(report.has_rule(rules::kSrcFloatAccum));
}

TEST(SrcLint, FloatAccumOutsideLoopNotFlagged) {
  Report report = srclint_file(
      "src/sim/once.cpp", "double tally(double a) {\n"
                          "  double x = 0.0;\n"
                          "  x += a;\n"
                          "  return x;\n"
                          "}\n");
  EXPECT_FALSE(report.has_rule(rules::kSrcFloatAccum));
}

TEST(SrcLint, SuppressionRoundTripIsClean) {
  Report report =
      srclint_file("src/sim/suppressed.cpp", fixture("suppressed.cpp"));
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(SrcLint, SuppressionOnTheSameLineWorks) {
  Report report = srclint_file(
      "src/adapt/timed.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// avf-srclint: allow(src.wall-clock measurement-only diagnostics)\n");
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(SrcLint, UnknownRuleInSuppressionIsAnError) {
  Report report =
      srclint_file("src/sim/unknown_rule.cpp", fixture("unknown_rule.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcUnknownRule));
  EXPECT_TRUE(report.has_errors());
}

TEST(SrcLint, MissingJustificationIsAnErrorAndDoesNotSuppress) {
  Report report = srclint_file("src/sim/missing_justification.cpp",
                               fixture("missing_justification.cpp"));
  EXPECT_TRUE(report.has_rule(rules::kSrcBadSuppression));
  EXPECT_TRUE(report.has_errors());
  // The unjustified directive must not silence the finding it targeted.
  EXPECT_TRUE(report.has_rule(rules::kSrcNondetRandom));
}

TEST(SrcLint, MetaRulesCannotBeSuppressed) {
  Report report = srclint_file(
      "src/sim/meta.cpp",
      "// avf-srclint: allow(src.unknown-rule trying to silence the meta "
      "rule)\nint x = 0;\n");
  EXPECT_TRUE(report.has_rule(rules::kSrcBadSuppression));
  EXPECT_TRUE(report.has_errors());
}

TEST(SrcLint, DirectiveMustBeTheWholeComment) {
  // Prose *about* the syntax (e.g. documentation) must not parse as a
  // directive — and must not raise meta diagnostics either.
  Report report = srclint_file(
      "src/sim/docs.cpp",
      "// suppress with avf-srclint: allow(src.wall-clock reason) above\n"
      "int x = 0;\n");
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(SrcLint, CommentsAndStringsDoNotTrigger) {
  Report report = srclint_file(
      "src/util/strings.cpp",
      "// std::mutex in prose, steady_clock too\n"
      "const char* kMessage = \"std::mutex and rand() and steady_clock\";\n");
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(SrcLint, SuppressionTwoLinesAwayDoesNotApply) {
  Report report = srclint_file(
      "src/adapt/far.cpp",
      "// avf-srclint: allow(src.wall-clock too far from the finding)\n"
      "int pad = 0;\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(report.has_rule(rules::kSrcWallClock));
}

TEST(SrcLint, RuleCatalogIsStable) {
  const auto& catalog = srclint_rules();
  ASSERT_EQ(catalog.size(), 7u);
  EXPECT_EQ(catalog[0].id, rules::kSrcUnorderedIter);
  EXPECT_EQ(catalog[1].id, rules::kSrcWallClock);
  EXPECT_EQ(catalog[2].id, rules::kSrcNondetRandom);
  EXPECT_EQ(catalog[3].id, rules::kSrcRawMutex);
  EXPECT_EQ(catalog[4].id, rules::kSrcFloatAccum);
  EXPECT_EQ(catalog[5].id, rules::kSrcUnknownRule);
  EXPECT_EQ(catalog[6].id, rules::kSrcBadSuppression);
  for (const auto& rule : catalog) {
    bool meta = rule.id == rules::kSrcUnknownRule ||
                rule.id == rules::kSrcBadSuppression;
    EXPECT_EQ(rule.suppressible, !meta) << rule.id;
    EXPECT_EQ(rule.severity == Severity::kError, meta) << rule.id;
  }
}

}  // namespace
