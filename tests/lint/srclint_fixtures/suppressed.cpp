// Suppression round-trip fixture: one seeded defect per suppressible rule,
// each carrying a justified allow(...) directive on the line above the
// finding.  Linted as src/sim/suppressed.cpp (where every rule applies),
// the report must come back empty.
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace fixture {

struct Suppressed {
  std::unordered_map<int, int> table;
  // avf-srclint: allow(src.raw-mutex fixture exercising the suppression round-trip)
  std::mutex mutex;

  int walk() const {
    int acc = 0;
    // avf-srclint: allow(src.unordered-iteration fixture exercising the suppression round-trip)
    for (const auto& [key, value] : table) acc ^= key ^ value;
    return acc;
  }

  double spin() const {
    // avf-srclint: allow(src.wall-clock fixture exercising the suppression round-trip)
    auto t = std::chrono::steady_clock::now();
    (void)t;
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
      // avf-srclint: allow(src.float-accum fixture exercising the suppression round-trip)
      total += static_cast<double>(i);
    }
    // avf-srclint: allow(src.nondet-random fixture exercising the suppression round-trip)
    return total + std::rand();
  }
};

}  // namespace fixture
