// Seeded defect fixture for src.float-accum: order-sensitive accumulation
// onto doubles inside a range-for and a while loop.  The test lints this
// as src/sim/float_accum.cpp; outside src/sim/ the rule does not apply.
#include <cstddef>
#include <vector>

namespace fixture {

double drain(const std::vector<double>& samples) {
  double total = 0.0;
  for (double sample : samples) total += sample;
  double spill = 1.0;
  std::size_t i = 0;
  while (i < samples.size()) {
    spill -= samples[i];
    ++i;
  }
  return total + spill;
}

}  // namespace fixture
