// Seeded defect fixture for src.nondet-random: hardware entropy and the C
// library generator.  The test lints this as src/viz/nondet_random.cpp; as
// src/util/rng.hpp the engine use would be exempt.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  std::random_device entropy;
  return static_cast<int>(entropy() % 6u) + std::rand() % 6;
}

}  // namespace fixture
