// Seeded defect fixture for src.raw-mutex: a raw std::mutex member and a
// std::lock_guard, both invisible to -Werror=thread-safety.  The test
// lints this as src/util/raw_mutex.cpp; only src/util/mutex.hpp (the
// annotated wrapper itself) is exempt.
#include <mutex>

namespace fixture {

struct Counter {
  std::mutex mutex;
  int value = 0;

  void bump() {
    std::lock_guard<std::mutex> lock(mutex);
    ++value;
  }
};

}  // namespace fixture
