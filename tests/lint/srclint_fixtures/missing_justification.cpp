// Seeded defect fixture for src.bad-suppression: the directive names a
// valid rule but gives no justification — so it is rejected AND the
// finding it tried to silence still surfaces.
#include <cstdlib>

namespace fixture {

int roll() {
  // avf-srclint: allow(src.nondet-random)
  return std::rand();
}

}  // namespace fixture
