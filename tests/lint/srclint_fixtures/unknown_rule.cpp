// Seeded defect fixture for src.unknown-rule: the suppression names a rule
// id that does not exist in the catalog.
namespace fixture {

int identity(int x) {
  // avf-srclint: allow(src.no-such-rule the rule id has a typo)
  return x;
}

}  // namespace fixture
