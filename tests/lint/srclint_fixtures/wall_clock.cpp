// Seeded defect fixture for src.wall-clock: reads the host clock twice.
// The test lints this as src/adapt/wall_clock.cpp; as bench/wall_clock.cpp
// the same contents must scan clean.
#include <chrono>

namespace fixture {

double elapsed_seconds() {
  auto start = std::chrono::steady_clock::now();
  auto stamp = std::chrono::system_clock::now();
  (void)stamp;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace fixture
