// Seeded defect fixture for src.unordered-iteration: a range-for over an
// unordered_map and an explicit .begin() walk of an unordered_set.  The
// test lints this as src/sim/unordered_iteration.cpp (a trace-affecting
// module).  Fixtures are scanned lexically, never compiled.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Tracker {
  std::unordered_map<int, double> table;
  std::unordered_set<int> members;

  double total() const {
    double grand = 0.0;
    for (const auto& [key, value] : table) grand = grand + value;
    return grand;
  }

  int first() const { return *members.begin(); }
};

}  // namespace fixture
