#include "lint/diagnostic.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace avf::lint {
namespace {

TEST(Diagnostic, RenderIncludesSeverityRuleSubjectMessage) {
  Diagnostic d{Severity::kError, "ref.undefined-param", "task 'm1'",
               "references undeclared control parameter 'x'", std::nullopt};
  EXPECT_EQ(d.render(),
            "error [ref.undefined-param] task 'm1': references undeclared "
            "control parameter 'x'");
}

TEST(Diagnostic, RenderAppendsBasenameAndLineOfRegistrationSite) {
  Diagnostic d{Severity::kWarning, "r", "s", "m",
               std::source_location::current()};  // this line
  std::string rendered = d.render();
  EXPECT_NE(rendered.find("test_diagnostic.cpp:"), std::string::npos);
  // The full path is reduced to a basename.
  EXPECT_EQ(rendered.find("/"), std::string::npos);
}

TEST(Report, CountsBySeverity) {
  Report report;
  report.error("e.rule", "s", "m");
  report.warning("w.rule", "s", "m");
  report.warning("w.rule2", "s", "m");
  report.note("n.rule", "s", "m");
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 2u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.diagnostics().size(), 4u);
  EXPECT_TRUE(report.has_rule("e.rule"));
  EXPECT_FALSE(report.has_rule("missing.rule"));
}

TEST(Report, MergePreservesCountsAndOrder) {
  Report a;
  a.error("a.rule", "s", "m");
  Report b;
  b.warning("b.rule", "s", "m");
  a.merge(b);
  EXPECT_EQ(a.error_count(), 1u);
  EXPECT_EQ(a.warning_count(), 1u);
  ASSERT_EQ(a.diagnostics().size(), 2u);
  EXPECT_EQ(a.diagnostics()[1].rule, "b.rule");
}

TEST(Report, PrintSummarizes) {
  Report report;
  report.error("e.rule", "subject", "message");
  std::ostringstream out;
  report.print(out);
  EXPECT_NE(out.str().find("error [e.rule] subject: message"),
            std::string::npos);
  EXPECT_NE(out.str().find("1 error(s), 0 warning(s)"), std::string::npos);
}

TEST(Report, JsonIsWellFormedAndEscaped) {
  Report report;
  report.error("e.rule", "task \"a\"", "line1\nline2");
  std::ostringstream out;
  report.print_json(out);
  std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("task \\\"a\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(Report, JsonCarriesSourceLocation) {
  Report report;
  report.warning("w.rule", "s", "m", std::source_location::current());
  std::ostringstream out;
  report.print_json(out);
  EXPECT_NE(out.str().find("\"file\":"), std::string::npos);
  EXPECT_NE(out.str().find("\"line\":"), std::string::npos);
}

TEST(JsonEscape, ControlCharacters) {
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace avf::lint
