// Seeded-defect tests for the tunability-spec linter: each test plants one
// class of specification bug and asserts the expected rule id fires (and,
// for the clean specs, that nothing does).
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "examples/specs.hpp"
#include "perfdb/database.hpp"
#include "testkit/scenario.hpp"
#include "tunable/app_spec.hpp"
#include "tunable/preferences.hpp"
#include "viz/world.hpp"

namespace avf::lint {
namespace {

using tunable::AppSpec;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::PreferenceList;

// A small well-formed spec the defect tests perturb.
AppSpec clean_spec() {
  AppSpec spec("clean");
  spec.space().add_parameter("a", {1, 2});
  spec.space().add_parameter("b", {0, 1});
  spec.metrics().add("latency", Direction::kLowerBetter);
  spec.metrics().add("quality", Direction::kHigherBetter);
  spec.add_resource_axis("cpu_share");
  spec.add_task({.name = "work",
                 .params = {"a", "b"},
                 .resources = {"host.CPU"},
                 .metrics = {"latency", "quality"},
                 .guard = nullptr});
  return spec;
}

std::size_t count_rule(const Report& report, std::string_view rule) {
  return static_cast<std::size_t>(std::count_if(
      report.diagnostics().begin(), report.diagnostics().end(),
      [&](const Diagnostic& d) { return d.rule == rule; }));
}

TEST(LintSpec, CleanSpecHasNoDiagnostics) {
  Report report = lint_spec(clean_spec());
  EXPECT_TRUE(report.empty()) << report.str();
}

// -- acceptance defect 1: undefined parameter reference ------------------

TEST(LintSpec, TaskReferencingUndefinedParameterIsAnError) {
  AppSpec spec = clean_spec();
  spec.add_task({.name = "broken",
                 .params = {"nonesuch"},
                 .resources = {},
                 .metrics = {"latency"},
                 .guard = nullptr});
  Report report = lint_spec(spec);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kUndefinedParam)) << report.str();
}

TEST(LintSpec, UndefinedParamDiagnosticPointsAtDeclarationSite) {
  AppSpec spec = clean_spec();
  spec.add_task({.name = "broken",
                 .params = {"nonesuch"},
                 .resources = {},
                 .metrics = {},
                 .guard = nullptr});  // registration site captured here
  Report report = lint_spec(spec);
  const Diagnostic* found = nullptr;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rules::kUndefinedParam) found = &d;
  }
  ASSERT_NE(found, nullptr);
  ASSERT_TRUE(found->where.has_value());
  EXPECT_NE(std::string_view(found->where->file_name()).find("test_lint.cpp"),
            std::string_view::npos);
  EXPECT_NE(found->render().find("test_lint.cpp:"), std::string::npos);
}

TEST(LintSpec, TaskReferencingUndefinedMetricIsAnError) {
  AppSpec spec = clean_spec();
  spec.add_task({.name = "broken",
                 .params = {"a"},
                 .resources = {},
                 .metrics = {"ghost_metric"},
                 .guard = nullptr});
  Report report = lint_spec(spec);
  EXPECT_TRUE(report.has_rule(rules::kUndefinedMetric)) << report.str();
}

TEST(LintSpec, DuplicateTaskNameIsAnError) {
  AppSpec spec = clean_spec();
  spec.add_task({.name = "work",
                 .params = {"a"},
                 .resources = {},
                 .metrics = {},
                 .guard = nullptr});
  EXPECT_TRUE(lint_spec(spec).has_rule(rules::kDuplicateTask));
}

TEST(LintSpec, UnusedParameterIsAWarningNotError) {
  AppSpec spec = clean_spec();
  spec.space().add_parameter("orphan", {1, 2, 3});
  Report report = lint_spec(spec);
  EXPECT_FALSE(report.has_errors()) << report.str();
  EXPECT_TRUE(report.has_rule(rules::kUnusedParam));
}

TEST(LintSpec, TasklessSpecDoesNotWarnAboutUnusedParameters) {
  // Test rigs routinely declare a space + metrics with no task modules;
  // usage analysis would flag everything, so it only runs when tasks exist.
  AppSpec spec("rig");
  spec.space().add_parameter("a", {1, 2});
  spec.metrics().add("latency", Direction::kLowerBetter);
  Report report = lint_spec(spec);
  EXPECT_FALSE(report.has_rule(rules::kUnusedParam)) << report.str();
  EXPECT_FALSE(report.has_rule(rules::kUnusedMetric)) << report.str();
}

TEST(LintSpec, DuplicateDomainValueIsAWarning) {
  AppSpec spec("dup");
  spec.space().add_parameter("a", {1, 1, 2});
  EXPECT_TRUE(lint_spec(spec).has_rule(rules::kDuplicateValue));
}

// -- acceptance defect 2: infeasible guard -------------------------------

TEST(LintSpec, GuardFilteringEverythingIsAnError) {
  AppSpec spec = clean_spec();
  spec.space().add_guard("a must exceed 10",
                         [](const ConfigPoint& p) { return p.get("a") > 10; });
  Report report = lint_spec(spec);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kInfeasible)) << report.str();
}

TEST(LintSpec, SoloInfeasibleGuardIsBlamedByDescription) {
  AppSpec spec = clean_spec();
  spec.space().add_guard("fine", [](const ConfigPoint&) { return true; });
  spec.space().add_guard("impossible",
                         [](const ConfigPoint&) { return false; });
  Report report = lint_spec(spec);
  bool blamed = false;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rules::kInfeasible &&
        d.render().find("impossible") != std::string::npos) {
      blamed = true;
    }
  }
  EXPECT_TRUE(blamed) << report.str();
}

TEST(LintSpec, DeadDomainValueIsAWarning) {
  AppSpec spec = clean_spec();
  spec.space().add_guard("a below 2",
                         [](const ConfigPoint& p) { return p.get("a") < 2; });
  Report report = lint_spec(spec);
  EXPECT_FALSE(report.has_errors()) << report.str();
  // a=2 never appears in a valid configuration.
  EXPECT_TRUE(report.has_rule(rules::kDeadValue));
  // And with one surviving value for a multi-value domain, the parameter is
  // effectively constant.
  EXPECT_TRUE(report.has_rule(rules::kConstantParam));
}

TEST(LintSpec, NoParametersIsAnError) {
  AppSpec spec("empty");
  EXPECT_TRUE(lint_spec(spec).has_rule(rules::kEmptySpace));
}

TEST(LintSpec, OversizedSpaceSkipsEnumerationWithNote) {
  AppSpec spec("huge");
  std::vector<int> domain(100);
  for (int i = 0; i < 100; ++i) domain[i] = i;
  spec.space().add_parameter("x", domain);
  spec.space().add_parameter("y", domain);
  spec.space().add_parameter("z", domain);  // 10^6 raw points
  spec.space().add_guard("nope", [](const ConfigPoint&) { return false; });
  Options options;
  options.max_configs = 1000;
  Report report = lint_spec(spec, options);
  EXPECT_TRUE(report.has_rule(rules::kSkipped)) << report.str();
  EXPECT_FALSE(report.has_rule(rules::kInfeasible));
}

// -- acceptance defect 3: disconnected transition graph ------------------

TEST(LintSpec, TransitionGuardPartitioningSpaceIsAnError) {
  AppSpec spec = clean_spec();
  // Reconfiguration may never cross the a=1 / a=2 boundary: the valid
  // configurations split into two strongly connected components.
  spec.add_transition(
      {.name = "same-a-only",
       .guard = [](const ConfigPoint& from, const ConfigPoint& to) {
         return from.get("a") == to.get("a");
       }});
  Report report = lint_spec(spec);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kUnreachable)) << report.str();
}

TEST(LintSpec, AlwaysVetoingTransitionIsAnError) {
  AppSpec spec = clean_spec();
  spec.add_transition(
      {.name = "frozen",
       .guard = [](const ConfigPoint&, const ConfigPoint&) { return false; }});
  Report report = lint_spec(spec);
  EXPECT_TRUE(report.has_rule(rules::kAlwaysVeto)) << report.str();
}

TEST(LintSpec, UnguardedTransitionKeepsSpaceConnected) {
  AppSpec spec = clean_spec();
  spec.add_transition({.name = "free", .guard = nullptr});
  Report report = lint_spec(spec);
  EXPECT_FALSE(report.has_rule(rules::kUnreachable)) << report.str();
  EXPECT_FALSE(report.has_rule(rules::kAlwaysVeto));
}

TEST(LintSpec, OneWayTransitionGuardIsDetectedAsDisconnection) {
  AppSpec spec = clean_spec();
  // Monotone guard: adaptation can only ever increase `a`, so it can never
  // return to a lower-quality configuration — an SCC per value of `a`.
  spec.add_transition(
      {.name = "ratchet",
       .guard = [](const ConfigPoint& from, const ConfigPoint& to) {
         return to.get("a") >= from.get("a");
       }});
  EXPECT_TRUE(lint_spec(spec).has_rule(rules::kUnreachable));
}

TEST(LintSpec, ConnectivitySkippedAboveTransitionCap) {
  AppSpec spec = clean_spec();
  spec.add_transition(
      {.name = "same-a-only",
       .guard = [](const ConfigPoint& from, const ConfigPoint& to) {
         return from.get("a") == to.get("a");
       }});
  Options options;
  options.max_transition_configs = 2;  // 4 valid configs > 2
  Report report = lint_spec(spec, options);
  EXPECT_TRUE(report.has_rule(rules::kSkipped)) << report.str();
  EXPECT_FALSE(report.has_rule(rules::kUnreachable));
}

// -- acceptance defect 4: preference on an undeclared metric -------------

TEST(LintPreferences, ConstraintOnUndeclaredMetricIsAnError) {
  AppSpec spec = clean_spec();
  tunable::UserPreference pref = tunable::minimize("latency");
  pref.constraints.push_back({.metric = "undeclared_metric", .max = 1.0});
  Report report = lint_preferences(spec, {pref});
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kPrefUndefinedMetric)) << report.str();
}

TEST(LintPreferences, ObjectiveOnUndeclaredMetricIsAnError) {
  AppSpec spec = clean_spec();
  Report report = lint_preferences(spec, {tunable::minimize("ghost")});
  EXPECT_TRUE(report.has_rule(rules::kPrefUndefinedMetric)) << report.str();
}

TEST(LintPreferences, EmptyListIsAnError) {
  Report report = lint_preferences(clean_spec(), {});
  EXPECT_TRUE(report.has_rule(rules::kPrefNone));
}

TEST(LintPreferences, MaximizingLowerBetterMetricIsAWarning) {
  AppSpec spec = clean_spec();
  Report report =
      lint_preferences(spec, {tunable::maximize_metric("latency")});
  EXPECT_TRUE(report.has_rule(rules::kPrefObjectiveDirection))
      << report.str();
  EXPECT_FALSE(report.has_errors());
}

TEST(LintPreferences, EmptyConstraintRangeIsAnError) {
  AppSpec spec = clean_spec();
  tunable::UserPreference pref = tunable::minimize("latency");
  pref.constraints.push_back({.metric = "quality", .min = 5.0, .max = 1.0});
  Report report = lint_preferences(spec, {pref});
  EXPECT_TRUE(report.has_rule(rules::kPrefEmptyRange)) << report.str();
}

TEST(LintPreferences, CleanPreferencesPass) {
  AppSpec spec = clean_spec();
  tunable::UserPreference pref = tunable::maximize_metric("quality");
  pref.constraints.push_back({.metric = "latency", .max = 0.5});
  Report report = lint_preferences(spec, {pref, tunable::minimize("latency")});
  EXPECT_TRUE(report.empty()) << report.str();
}

// -- acceptance defect 5: unprofiled valid configuration -----------------

perfdb::PerfDatabase db_for(const AppSpec& spec) {
  return perfdb::PerfDatabase(spec.resource_axes(), spec.metrics());
}

tunable::QosVector sample_for(const AppSpec& spec) {
  tunable::QosVector q;
  for (const tunable::MetricDef& m : spec.metrics().metrics()) {
    q.set(m.name, 1.0);
  }
  return q;
}

TEST(LintDatabase, UnprofiledValidConfigIsAWarning) {
  AppSpec spec = clean_spec();
  perfdb::PerfDatabase db = db_for(spec);
  // Profile 3 of the 4 valid configurations; a=2,b=1 is missing.
  for (const ConfigPoint& config : spec.space().enumerate()) {
    if (config.get("a") == 2 && config.get("b") == 1) continue;
    db.insert(config, {0.5}, sample_for(spec));
  }
  Report report = lint_database(spec, db);
  EXPECT_FALSE(report.has_errors()) << report.str();
  EXPECT_TRUE(report.has_rule(rules::kDbUnprofiledConfig)) << report.str();
  EXPECT_EQ(count_rule(report, rules::kDbUnprofiledConfig), 1u);
}

TEST(LintDatabase, PredictedOnlyConfigIsANoteNotAWarning) {
  AppSpec spec = clean_spec();
  perfdb::PerfDatabase db = db_for(spec);
  // a=2,b=1 is covered purely by tree predictions (adaptive profiling);
  // everything else is sandbox-measured.
  for (const ConfigPoint& config : spec.space().enumerate()) {
    bool predicted = config.get("a") == 2 && config.get("b") == 1;
    db.insert(config, {0.5}, sample_for(spec),
              predicted ? perfdb::Provenance::kPredicted
                        : perfdb::Provenance::kMeasured);
  }
  Report report = lint_database(spec, db);
  EXPECT_FALSE(report.has_errors()) << report.str();
  EXPECT_EQ(report.warning_count(), 0u) << report.str();
  EXPECT_FALSE(report.has_rule(rules::kDbUnprofiledConfig)) << report.str();
  ASSERT_EQ(count_rule(report, rules::kDbPredictedConfig), 1u) << report.str();
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule == rules::kDbPredictedConfig) {
      EXPECT_EQ(d.severity, Severity::kNote);
    }
  }
}

TEST(LintDatabase, MixedProvenanceConfigGetsNoNote) {
  AppSpec spec = clean_spec();
  perfdb::PerfDatabase db = db_for(spec);
  for (const ConfigPoint& config : spec.space().enumerate()) {
    db.insert(config, {0.5}, sample_for(spec));
    db.insert(config, {1.0}, sample_for(spec), perfdb::Provenance::kPredicted);
  }
  Report report = lint_database(spec, db);
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(LintDatabase, PredictedOnlyListIsCappedWithSummary) {
  AppSpec spec("wide");
  spec.space().add_parameter("p", {1, 2, 3, 4, 5, 6, 7, 8});
  spec.metrics().add("m", Direction::kLowerBetter);
  spec.add_resource_axis("cpu_share");
  perfdb::PerfDatabase db = db_for(spec);
  for (const ConfigPoint& config : spec.space().enumerate()) {
    db.insert(config, {0.5}, sample_for(spec), perfdb::Provenance::kPredicted);
  }
  Options options;
  options.max_unprofiled_listed = 3;
  Report report = lint_database(spec, db, options);
  EXPECT_EQ(count_rule(report, rules::kDbPredictedConfig), 4u)
      << report.str();  // 3 listed + 1 "and N more" summary
}

TEST(LintDatabase, UnprofiledListIsCappedWithSummary) {
  AppSpec spec("wide");
  spec.space().add_parameter("p", {1, 2, 3, 4, 5, 6, 7, 8});
  spec.metrics().add("m", Direction::kLowerBetter);
  spec.add_resource_axis("cpu_share");
  perfdb::PerfDatabase db = db_for(spec);  // completely unprofiled
  Options options;
  options.max_unprofiled_listed = 3;
  Report report = lint_database(spec, db, options);
  // Empty database short-circuits into a single db.empty warning.
  EXPECT_TRUE(report.has_rule(rules::kDbEmpty));
  // With one sample present, the per-config listing kicks in, capped.
  ConfigPoint one;
  one.set("p", 1);
  db.insert(one, {0.5}, sample_for(spec));
  report = lint_database(spec, db, options);
  EXPECT_EQ(count_rule(report, rules::kDbUnprofiledConfig), 4u)
      << report.str();  // 3 listed + 1 "and N more" summary
}

TEST(LintDatabase, SampleForInvalidConfigIsAnError) {
  AppSpec spec = clean_spec();
  spec.space().add_guard("b is zero",
                         [](const ConfigPoint& p) { return p.get("b") == 0; });
  perfdb::PerfDatabase db = db_for(spec);
  for (const ConfigPoint& config : spec.space().enumerate()) {
    db.insert(config, {0.5}, sample_for(spec));
  }
  ConfigPoint bad;
  bad.set("a", 1);
  bad.set("b", 1);  // violates the guard
  db.insert(bad, {0.5}, sample_for(spec));
  Report report = lint_database(spec, db);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule(rules::kDbInvalidConfig)) << report.str();
}

TEST(LintDatabase, AxisMismatchIsAnError) {
  AppSpec spec = clean_spec();
  perfdb::PerfDatabase db({"net_bps"}, spec.metrics());
  Report report = lint_database(spec, db);
  EXPECT_TRUE(report.has_rule(rules::kDbAxisMismatch)) << report.str();
}

TEST(LintDatabase, MetricMismatchIsAWarning) {
  AppSpec spec = clean_spec();
  tunable::MetricSchema other;
  other.add("latency", Direction::kLowerBetter);
  other.add("extra", Direction::kHigherBetter);  // not in the spec
  perfdb::PerfDatabase db(spec.resource_axes(), other);
  Report report = lint_database(spec, db);
  EXPECT_TRUE(report.has_rule(rules::kDbMetricMismatch)) << report.str();
}

TEST(LintDatabase, FullyProfiledDatabasePasses) {
  AppSpec spec = clean_spec();
  perfdb::PerfDatabase db = db_for(spec);
  for (const ConfigPoint& config : spec.space().enumerate()) {
    db.insert(config, {0.5}, sample_for(spec));
  }
  Report report = lint_database(spec, db);
  EXPECT_TRUE(report.empty()) << report.str();
}

// -- lint_app + AppSpec::validate ----------------------------------------

TEST(LintApp, MergesAllPasses) {
  AppSpec spec = clean_spec();
  spec.add_task({.name = "broken",
                 .params = {"nonesuch"},
                 .resources = {},
                 .metrics = {},
                 .guard = nullptr});
  PreferenceList prefs = {tunable::minimize("ghost")};
  perfdb::PerfDatabase db({"net_bps"}, spec.metrics());
  Report report = lint_app(spec, &prefs, &db);
  EXPECT_TRUE(report.has_rule(rules::kUndefinedParam));
  EXPECT_TRUE(report.has_rule(rules::kPrefUndefinedMetric));
  EXPECT_TRUE(report.has_rule(rules::kDbAxisMismatch));
}

TEST(LintApp, ValidateMemberFunctionRunsSpecLint) {
  AppSpec spec = clean_spec();
  EXPECT_TRUE(spec.validate().empty());
  spec.space().add_guard("never", [](const ConfigPoint&) { return false; });
  EXPECT_TRUE(spec.validate().has_rule(rules::kInfeasible));
}

// -- the shipped example specs must stay clean ---------------------------

TEST(LintExamples, RendererSpecAndPreferencesLintClean) {
  AppSpec spec = examples::renderer_spec();
  Report report = lint_app(spec, nullptr, nullptr);
  report.merge(lint_preferences(spec, examples::renderer_preferences()));
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(LintExamples, PipelineSpecAndPreferencesLintClean) {
  AppSpec spec = examples::pipeline_spec();
  Report report = lint_spec(spec);
  report.merge(lint_preferences(spec, examples::pipeline_preferences()));
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(LintExamples, VizSpecAndPreferencesLintClean) {
  AppSpec spec = viz::viz_app_spec();
  Report report = lint_spec(spec);
  report.merge(lint_preferences(spec, examples::viz_preferences()));
  EXPECT_TRUE(report.empty()) << report.str();
}

TEST(LintExamples, WidenedTestkitSpecCoversBwtAndLintsClean) {
  // The testkit spec's c domain now includes bwt (c=2); the analytic
  // database must profile its curves for every (q, c) pair, and the
  // guard-feasibility / coverage analysis must stay clean.
  const AppSpec& spec = testkit::testkit_app_spec();
  perfdb::PerfDatabase db = testkit::build_testkit_database(testkit::AppModel{});
  Report report = lint_app(spec, nullptr, &db);
  EXPECT_TRUE(report.empty()) << report.str();
  std::size_t bwt_configs = 0;
  for (const ConfigPoint& config : db.configs()) {
    if (config.get("c") == 2) ++bwt_configs;
  }
  EXPECT_EQ(bwt_configs, 4u);  // one per quality level q in {1,2,3,4}
}

}  // namespace
}  // namespace avf::lint
