#include "codec/bwt.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "codec/lzw.hpp"
#include "util/rng.hpp"

namespace avf::codec {
namespace {

using namespace bwtdetail;

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

Bytes random_bytes(std::size_t n, std::uint64_t seed, int alphabet = 256) {
  util::SplitMix64 rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.next_below(alphabet));
  }
  return out;
}

TEST(SuffixArray, Banana) {
  Bytes s = to_bytes("banana");
  // Suffixes of "banana$": $ a$ ana$ anana$ banana$ na$ nana$
  std::vector<std::uint32_t> sa = suffix_array(s);
  EXPECT_EQ(sa, (std::vector<std::uint32_t>{6, 5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, EmptyAndSingle) {
  EXPECT_EQ(suffix_array({}).size(), 1u);
  Bytes one = {65};
  EXPECT_EQ(suffix_array(one), (std::vector<std::uint32_t>{1, 0}));
}

TEST(Bwt, ForwardBanana) {
  Bytes s = to_bytes("banana");
  std::uint32_t primary = 0;
  Bytes l = bwt_forward(s, primary);
  EXPECT_EQ(std::string(l.begin(), l.end()), "annbaa");
  EXPECT_EQ(primary, 4u);
}

TEST(Bwt, InverseBanana) {
  Bytes l = to_bytes("annbaa");
  Bytes s = bwt_inverse(l, 4);
  EXPECT_EQ(std::string(s.begin(), s.end()), "banana");
}

TEST(Bwt, RoundTripRandom) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Bytes in = random_bytes(1000 + seed * 137, seed);
    std::uint32_t primary = 0;
    Bytes l = bwt_forward(in, primary);
    EXPECT_EQ(bwt_inverse(l, primary), in);
  }
}

TEST(Bwt, InverseRejectsBadPrimary) {
  Bytes l = to_bytes("annbaa");
  EXPECT_THROW(bwt_inverse(l, 100), std::runtime_error);
}

TEST(Mtf, KnownSequence) {
  Bytes in = {1, 1, 0, 2};
  Bytes enc = mtf_encode(in);
  // 1 at index 1; then 1 at front (0); 0 now at index 1; 2 at index 2.
  EXPECT_EQ(enc, (Bytes{1, 0, 1, 2}));
  EXPECT_EQ(mtf_decode(enc), in);
}

TEST(Mtf, RoundTripRandom) {
  Bytes in = random_bytes(5000, 99);
  EXPECT_EQ(mtf_decode(mtf_encode(in)), in);
}

TEST(Rle, EncodesRuns) {
  Bytes in = {5, 5, 5, 5, 5, 7};
  Bytes enc = rle_encode(in);
  EXPECT_EQ(rle_decode(enc), in);
  EXPECT_LT(enc.size(), in.size());
}

TEST(Rle, LiteralsPassThrough) {
  Bytes in = {1, 2, 3, 4, 5};
  EXPECT_EQ(rle_decode(rle_encode(in)), in);
}

TEST(Rle, LongRunsSplit) {
  Bytes in(1000, 0);
  Bytes enc = rle_encode(in);
  EXPECT_EQ(rle_decode(enc), in);
  EXPECT_LT(enc.size(), 20u);
}

TEST(Rle, RoundTripRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Bytes in = random_bytes(3000, seed, seed % 2 ? 3 : 256);
    EXPECT_EQ(rle_decode(rle_encode(in)), in);
  }
}

TEST(Rle, InvalidControlByteThrows) {
  Bytes bad = {128, 1};
  EXPECT_THROW(rle_decode(bad), std::runtime_error);
}

TEST(Rle, TruncatedThrows) {
  Bytes bad = {3};  // promises 4 literals, provides none
  EXPECT_THROW(rle_decode(bad), std::runtime_error);
}

TEST(Huffman, RoundTripSkewed) {
  Bytes in;
  for (int i = 0; i < 1000; ++i) in.push_back(i % 10 == 0 ? 200 : 7);
  std::uint8_t lengths[256];
  Bytes enc = huffman_encode(in, lengths);
  EXPECT_LT(enc.size(), in.size() / 4);
  EXPECT_EQ(huffman_decode(enc, lengths, in.size()), in);
}

TEST(Huffman, SingleSymbolInput) {
  Bytes in(100, 42);
  std::uint8_t lengths[256];
  Bytes enc = huffman_encode(in, lengths);
  EXPECT_EQ(lengths[42], 1);
  EXPECT_EQ(huffman_decode(enc, lengths, in.size()), in);
}

TEST(Huffman, RoundTripUniform) {
  Bytes in = random_bytes(10000, 5);
  std::uint8_t lengths[256];
  Bytes enc = huffman_encode(in, lengths);
  EXPECT_EQ(huffman_decode(enc, lengths, in.size()), in);
}

TEST(BwtCodec, RoundTripEmpty) {
  BwtCodec c;
  EXPECT_TRUE(c.decompress(c.compress({})).empty());
}

TEST(BwtCodec, RoundTripText) {
  BwtCodec c;
  std::string s;
  for (int i = 0; i < 500; ++i) s += "the quick brown fox ";
  Bytes in = to_bytes(s);
  Bytes compressed = c.compress(in);
  EXPECT_LT(compressed.size(), in.size() / 5);
  EXPECT_EQ(c.decompress(compressed), in);
}

TEST(BwtCodec, RoundTripAcrossBlockBoundaries) {
  BwtCodec c(4096);  // small blocks: multiple blocks in one stream
  Bytes in = random_bytes(20000, 3, 16);
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

TEST(BwtCodec, BeatsLzwOnContextualData) {
  // The paper's premise for compression B: better ratio than A.  BWT
  // exploits byte *context*, so use data with repeated multi-byte motifs
  // (like text or wavelet tiles), not memoryless noise.
  Bytes in;
  util::SplitMix64 rng(11);
  const char* words[] = {"wavelet", "fovea", "resolution", "bandwidth",
                         "adapt"};
  while (in.size() < 60000) {
    const char* w = words[rng.next_below(5)];
    while (*w) in.push_back(static_cast<std::uint8_t>(*w++));
    in.push_back(' ');
  }
  BwtCodec bwt;
  LzwCodec lzw;
  EXPECT_LT(bwt.compress(in).size(), lzw.compress(in).size());
  EXPECT_EQ(bwt.decompress(bwt.compress(in)), in);
}

TEST(BwtCodec, CostsMoreCpuThanLzw) {
  BwtCodec bwt;
  LzwCodec lzw;
  EXPECT_GT(bwt.cost().compress_ops_per_byte,
            5.0 * lzw.cost().compress_ops_per_byte);
  EXPECT_GT(bwt.cost().decompress_ops_per_byte,
            lzw.cost().decompress_ops_per_byte);
}

TEST(BwtCodec, TruncatedStreamThrows) {
  BwtCodec c;
  Bytes in = random_bytes(5000, 21, 8);
  Bytes compressed = c.compress(in);
  compressed.resize(compressed.size() - 10);
  EXPECT_THROW(c.decompress(compressed), std::runtime_error);
}

class BwtSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BwtSizes, RoundTrip) {
  BwtCodec c;
  Bytes in = random_bytes(GetParam(), GetParam() + 17, 32);
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BwtSizes,
                         ::testing::Values(1, 2, 7, 255, 4096, 65536, 70000,
                                           150000));

}  // namespace
}  // namespace avf::codec
