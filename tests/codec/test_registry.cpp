#include "codec/codec.hpp"

#include <gtest/gtest.h>

namespace avf::codec {
namespace {

TEST(Registry, LooksUpById) {
  EXPECT_EQ(codec_for(CodecId::kNone).name(), "none");
  EXPECT_EQ(codec_for(CodecId::kLzw).name(), "lzw");
  EXPECT_EQ(codec_for(CodecId::kBwt).name(), "bwt");
}

TEST(Registry, LooksUpByName) {
  EXPECT_EQ(&codec_by_name("lzw"), &codec_for(CodecId::kLzw));
  EXPECT_EQ(&codec_by_name("none"), &codec_for(CodecId::kNone));
  EXPECT_EQ(&codec_by_name("bwt"), &codec_for(CodecId::kBwt));
  EXPECT_THROW(codec_by_name("gzip"), std::invalid_argument);
}

TEST(Registry, UnknownNameErrorNamesTheCodec) {
  try {
    codec_by_name("gzip");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), "unknown codec name: gzip");
  }
}

TEST(Registry, AllIdsCoverAllCodecs) {
  auto ids = all_codec_ids();
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Registry, InstancesAreSingletons) {
  EXPECT_EQ(&codec_for(CodecId::kBwt), &codec_for(CodecId::kBwt));
}

TEST(NullCodec, PassesThrough) {
  const Codec& c = codec_for(CodecId::kNone);
  Bytes in = {1, 2, 3};
  EXPECT_EQ(c.compress(in), in);
  EXPECT_EQ(c.decompress(in), in);
}

TEST(Codec, OpsHelpersScaleWithSize) {
  const Codec& c = codec_for(CodecId::kLzw);
  EXPECT_DOUBLE_EQ(c.compress_ops(1000), 1000 * c.cost().compress_ops_per_byte);
  EXPECT_DOUBLE_EQ(c.decompress_ops(500),
                   500 * c.cost().decompress_ops_per_byte);
}

}  // namespace
}  // namespace avf::codec
