// Robustness: decompressors must reject corrupted input with an exception
// (never crash, hang, or silently return wrong-sized output).  Single-bit
// and truncation corruption over both codecs.
#include <gtest/gtest.h>

#include "codec/bwt.hpp"
#include "codec/lzw.hpp"
#include "util/rng.hpp"

namespace avf::codec {
namespace {

Bytes structured_input(std::size_t n, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint8_t b = static_cast<std::uint8_t>(rng.next_below(16));
    std::size_t run = 1 + rng.next_below(8);
    out.insert(out.end(), run, b);
  }
  out.resize(n);
  return out;
}

/// Every mutation either throws or yields output that is at most the
/// original: the decoder must stay memory-safe and size-bounded.
template <typename CodecT>
void corruption_sweep(const CodecT& codec, std::uint64_t seed) {
  Bytes input = structured_input(20000, seed);
  Bytes compressed = codec.compress(input);
  util::SplitMix64 rng(seed * 7919 + 1);
  int threw = 0, diverged = 0, survived = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Bytes mutated = compressed;
    std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      Bytes out = codec.decompress(mutated);
      if (out == input) {
        ++survived;  // mutation hit padding / ignored bits
      } else {
        ++diverged;
        // Headers carry the original size; decoders must not fabricate
        // more data than that.
        EXPECT_LE(out.size(), input.size());
      }
    } catch (const std::exception&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + diverged + survived, 60);
  EXPECT_GT(threw + diverged, 0);  // corruption is detectable
}

TEST(CodecRobustness, LzwBitFlips) { corruption_sweep(LzwCodec{}, 3); }
TEST(CodecRobustness, BwtBitFlips) { corruption_sweep(BwtCodec{}, 4); }

template <typename CodecT>
void truncation_sweep(const CodecT& codec) {
  Bytes input = structured_input(20000, 11);
  Bytes compressed = codec.compress(input);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                           compressed.size() / 4, compressed.size() / 2,
                           compressed.size() - 1}) {
    Bytes truncated(compressed.begin(),
                    compressed.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)codec.decompress(truncated), std::exception)
        << "keep=" << keep;
  }
}

TEST(CodecRobustness, LzwTruncation) { truncation_sweep(LzwCodec{}); }
TEST(CodecRobustness, BwtTruncation) { truncation_sweep(BwtCodec{}); }

TEST(CodecRobustness, GarbageInputRejected) {
  util::SplitMix64 rng(21);
  LzwCodec lzw;
  BwtCodec bwt;
  for (int trial = 0; trial < 20; ++trial) {
    Bytes garbage(100 + rng.next_below(1000));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    // Any outcome but a crash/hang is fine; wrong-size results are not.
    for (const Codec* codec : {static_cast<const Codec*>(&lzw),
                               static_cast<const Codec*>(&bwt)}) {
      try {
        Bytes out = codec->decompress(garbage);
        (void)out;
      } catch (const std::exception&) {
        // expected in the common case
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace avf::codec
