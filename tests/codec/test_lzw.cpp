#include "codec/lzw.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace avf::codec {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed, int alphabet = 256) {
  util::SplitMix64 rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.next_below(alphabet));
  }
  return out;
}

Bytes repetitive_bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  const char* pattern = "abcabcabdabcabcabd";
  while (out.size() < n) {
    out.push_back(static_cast<std::uint8_t>(pattern[out.size() % 18]));
  }
  return out;
}

TEST(Lzw, RoundTripEmpty) {
  LzwCodec c;
  Bytes compressed = c.compress({});
  EXPECT_TRUE(c.decompress(compressed).empty());
}

TEST(Lzw, RoundTripSingleByte) {
  LzwCodec c;
  Bytes in = {42};
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

TEST(Lzw, RoundTripShortText) {
  LzwCodec c;
  std::string s = "TOBEORNOTTOBEORTOBEORNOT";
  Bytes in(s.begin(), s.end());
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

TEST(Lzw, RoundTripAllByteValues) {
  LzwCodec c;
  Bytes in(256);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

TEST(Lzw, CompressesRepetitiveData) {
  LzwCodec c;
  Bytes in = repetitive_bytes(100000);
  Bytes compressed = c.compress(in);
  EXPECT_LT(compressed.size(), in.size() / 4);
  EXPECT_EQ(c.decompress(compressed), in);
}

TEST(Lzw, RandomDataRoundTrips) {
  LzwCodec c;
  Bytes in = random_bytes(50000, 123);
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

TEST(Lzw, DictionaryResetPathRoundTrips) {
  // Enough high-entropy data to exhaust the 16-bit dictionary and force a
  // CLEAR + reset inside the stream.
  LzwCodec c;
  Bytes in = random_bytes(1 << 20, 7);
  Bytes compressed = c.compress(in);
  EXPECT_EQ(c.decompress(compressed), in);
}

TEST(Lzw, TruncatedInputThrows) {
  LzwCodec c;
  Bytes in = repetitive_bytes(1000);
  Bytes compressed = c.compress(in);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(c.decompress(compressed), std::runtime_error);
}

TEST(Lzw, EmptyInputToDecompressThrows) {
  LzwCodec c;
  EXPECT_THROW(c.decompress({}), std::runtime_error);
}

TEST(Lzw, CostModelIsCheaperThanBwt) {
  LzwCodec c;
  EXPECT_GT(c.cost().compress_ops_per_byte, 0.0);
  EXPECT_GT(c.cost().decompress_ops_per_byte, 0.0);
  EXPECT_LT(c.cost().decompress_ops_per_byte, c.cost().compress_ops_per_byte);
}

class LzwSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LzwSizes, RoundTripLowEntropy) {
  LzwCodec c;
  Bytes in = random_bytes(GetParam(), GetParam() * 31 + 1, 8);
  EXPECT_EQ(c.decompress(c.compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzwSizes,
                         ::testing::Values(1, 2, 3, 15, 256, 4095, 65536,
                                           200000));

}  // namespace
}  // namespace avf::codec
