// The invariant checkers must fire on constructed violations and stay
// silent on compliant histories — otherwise soak-run "0 violations" means
// nothing.
#include "testkit/invariants.hpp"

#include <gtest/gtest.h>

#include "adapt/monitor.hpp"
#include "adapt/scheduler.hpp"
#include "adapt/steering.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avf::testkit {
namespace {

using adapt::AdaptationController;
using tunable::ConfigPoint;
using tunable::Direction;
using tunable::MetricSchema;
using tunable::QosVector;

ConfigPoint cfg(int mode) {
  ConfigPoint p;
  p.set("mode", mode);
  return p;
}

tunable::AppSpec make_spec() {
  tunable::AppSpec spec("inv-demo");
  spec.space().add_parameter("mode", {0, 1});
  spec.metrics().add("time", Direction::kLowerBetter);
  spec.add_resource_axis("cpu_share");
  spec.add_resource_axis("net_bps");
  return spec;
}

QosVector q(double time) {
  QosVector out;
  out.set("time", time);
  return out;
}

/// mode 0 is fast at full CPU and terrible when starved; mode 1 is the
/// reverse, so the scheduler's winner flips with cpu_share.
perfdb::PerfDatabase make_db() {
  MetricSchema s;
  s.add("time", Direction::kLowerBetter);
  perfdb::PerfDatabase db({"cpu_share", "net_bps"}, s);
  for (double bw : {0.5e6, 1e6}) {
    db.insert(cfg(0), {0.1, bw}, q(10.0));
    db.insert(cfg(0), {1.0, bw}, q(1.0));
    db.insert(cfg(1), {0.1, bw}, q(3.0));
    db.insert(cfg(1), {1.0, bw}, q(2.0));
  }
  return db;
}

adapt::UserPreference bounded(double max_time) {
  adapt::UserPreference p;
  p.name = "bounded";
  p.constraints.push_back({"time", -1e300, max_time});
  p.objective_metric = "time";
  p.maximize = false;
  return p;
}

AdaptationController::AdaptationEvent event(double t, int to,
                                            std::vector<double> estimates,
                                            std::size_t pref) {
  return {t, cfg(1 - to), cfg(to), std::move(estimates), pref};
}

TEST(TransitionPointChecker, FlagsApplyOutsideBoundary) {
  sim::Simulator sim;
  tunable::AppSpec spec = make_spec();
  adapt::SteeringAgent steering(spec, cfg(0));
  InvariantLog log;
  TransitionPointChecker checker(sim, steering, log);

  steering.request(cfg(1));
  steering.apply_pending();  // no enter_boundary(): mid-task apply
  EXPECT_EQ(checker.applies_seen(), 1u);
  ASSERT_EQ(log.violations().size(), 1u);
  EXPECT_EQ(log.violations()[0].invariant, "transition-point");

  checker.enter_boundary();
  steering.request(cfg(0));
  steering.apply_pending();
  checker.leave_boundary();
  EXPECT_EQ(checker.applies_seen(), 2u);
  EXPECT_EQ(log.violations().size(), 1u);  // boundary apply is clean
}

TEST(TransitionPointChecker, ReleasesHookOnDestruction) {
  sim::Simulator sim;
  tunable::AppSpec spec = make_spec();
  adapt::SteeringAgent steering(spec, cfg(0));
  InvariantLog log;
  { TransitionPointChecker checker(sim, steering, log); }
  steering.request(cfg(1));
  steering.apply_pending();  // no checker anymore: must not crash or log
  EXPECT_TRUE(log.ok());
}

TEST(AdaptationEvents, AcceptsCompliantDecision) {
  perfdb::PerfDatabase db = make_db();
  adapt::PreferenceList prefs{bounded(1.5), adapt::minimize("time")};
  InvariantLog log;
  // cfg(0) at full CPU predicts time 1.0 <= 1.5: preference #0, legal.
  check_adaptation_events({event(1.0, 0, {1.0, 1e6}, 0)}, db, prefs, log);
  EXPECT_TRUE(log.ok()) << log.summary();
}

TEST(AdaptationEvents, FlagsConfigViolatingItsClaimedPreference) {
  perfdb::PerfDatabase db = make_db();
  adapt::PreferenceList prefs{bounded(1.5), adapt::minimize("time")};
  InvariantLog log;
  // cfg(1) predicts time 2.0 > 1.5 yet claims preference #0.
  check_adaptation_events({event(1.0, 1, {1.0, 1e6}, 0)}, db, prefs, log);
  ASSERT_EQ(log.violations().size(), 1u);
  EXPECT_EQ(log.violations()[0].invariant, "preference-order");
}

TEST(AdaptationEvents, FlagsFallThroughPastSatisfiablePreference) {
  perfdb::PerfDatabase db = make_db();
  adapt::PreferenceList prefs{bounded(1.5), adapt::minimize("time")};
  InvariantLog log;
  // Preference #1 is unconstrained so cfg(1) satisfies it, but #0 was
  // satisfiable (by cfg(0)) at these estimates — illegal fall-through.
  check_adaptation_events({event(1.0, 1, {1.0, 1e6}, 1)}, db, prefs, log);
  ASSERT_EQ(log.violations().size(), 1u);
  EXPECT_NE(log.violations()[0].detail.find("more preferred"),
            std::string::npos);
}

TEST(AdaptationEvents, BestEffortLegalOnlyWhenNothingSatisfies) {
  perfdb::PerfDatabase db = make_db();
  adapt::PreferenceList prefs{bounded(0.5)};
  InvariantLog log;
  // Nothing predicts time <= 0.5 anywhere: best-effort cfg(0) is legal.
  check_adaptation_events({event(1.0, 0, {1.0, 1e6}, 0)}, db, prefs, log);
  EXPECT_TRUE(log.ok()) << log.summary();

  adapt::PreferenceList reachable{bounded(1.2)};
  // cfg(0) satisfies time <= 1.2, so claiming best-effort cfg(1) is not.
  check_adaptation_events({event(2.0, 1, {1.0, 1e6}, 0)}, db, reachable, log);
  ASSERT_EQ(log.violations().size(), 1u);
  EXPECT_NE(log.violations()[0].detail.find("best-effort"),
            std::string::npos);
}

/// World with a link so the injector has a bandwidth ground truth.
struct AccuracyRig {
  sim::Simulator sim;
  sim::Network net{sim};
  sim::Host& a = net.add_host("a", 450e6, 64ull << 20);
  sim::Host& b = net.add_host("b", 450e6, 64ull << 20);
  sim::Link& link = net.connect(a, b, 1e6, 0.005);
  adapt::MonitoringAgent monitor{sim,
                                 {"cpu_share", "net_bps"},
                                 {.window = 1.0, .trigger_threshold = 0.25,
                                  .consecutive_required = 1}};
  FaultInjector injector{{.sim = &sim, .link = &link}, 1};
  InvariantLog log;
  MonitorAccuracyChecker checker{
      sim, monitor, injector, log,
      {.tolerance = 0.10, .window = 1.0, .settle = 0.5}};

  void observe_both(double cpu, double bw) {
    monitor.observe("cpu_share", cpu);
    monitor.observe("net_bps", bw);
  }
};

TEST(MonitorAccuracy, PassesWhenEstimatesTrackTruth) {
  AccuracyRig rig;
  for (double t : {2.0, 2.5, 3.0}) {
    rig.sim.schedule_at(t, [&] { rig.observe_both(1.0, 1e6); });
  }
  rig.sim.schedule_at(3.0, [&] { rig.checker.probe(); });
  rig.sim.run();
  EXPECT_EQ(rig.checker.checked(), 2u);
  EXPECT_TRUE(rig.log.ok()) << rig.log.summary();
}

TEST(MonitorAccuracy, FlagsEstimateOutsideTolerance) {
  AccuracyRig rig;
  for (double t : {2.0, 2.5, 3.0}) {
    rig.sim.schedule_at(t, [&] { rig.observe_both(0.5, 1e6); });  // truth: 1.0
  }
  rig.sim.schedule_at(3.0, [&] { rig.checker.probe(); });
  rig.sim.run();
  ASSERT_EQ(rig.log.violations().size(), 1u);
  EXPECT_EQ(rig.log.violations()[0].invariant, "monitor-accuracy");
}

TEST(MonitorAccuracy, GatedUntilTruthStableForGuardPeriod) {
  AccuracyRig rig;
  rig.sim.schedule_at(1.0, [&] {
    rig.observe_both(0.2, 1e6);  // wildly off, but inside the guard
    rig.checker.probe();
  });
  rig.sim.run();
  EXPECT_EQ(rig.checker.checked(), 0u);
  EXPECT_TRUE(rig.log.ok());
}

TEST(MonitorAccuracy, BandwidthProbeSkippedDuringMailboxDisturbance) {
  AccuracyRig rig;
  Fault f;
  f.kind = FaultKind::kMailboxDrop;
  f.at = 2.0;
  f.until = 4.0;
  f.value = 0.5;
  rig.injector.arm({{f}});
  for (double t : {2.0, 2.5, 3.0}) {
    rig.sim.schedule_at(t, [&] { rig.observe_both(1.0, 0.2e6); });
  }
  rig.sim.schedule_at(3.0, [&] { rig.checker.probe(); });
  rig.sim.run();
  // Only the cpu axis was checked; the polluted bandwidth window is excused.
  EXPECT_EQ(rig.checker.checked(), 1u);
  EXPECT_TRUE(rig.log.ok()) << rig.log.summary();
}

struct ReconvergeRig {
  sim::Simulator sim;
  sim::Network net{sim};
  sim::Host& a = net.add_host("a", 450e6, 64ull << 20);
  sim::Host& b = net.add_host("b", 450e6, 64ull << 20);
  sim::Link& link = net.connect(a, b, 1e6, 0.005);
  tunable::AppSpec spec = make_spec();
  perfdb::PerfDatabase db = make_db();
  adapt::ResourceScheduler scheduler{db, {adapt::minimize("time")}};
  FaultInjector injector{{.sim = &sim, .link = &link}, 1};
  InvariantLog log;

  // At truth {1.0, 1e6} the scheduler's winner is cfg(0) (time 1 < 2).
  void check(const adapt::SteeringAgent& steering, double end_time = 10.0,
             const std::vector<AdaptationController::AdaptationEvent>&
                 events = {}) {
    check_reconvergence(end_time, injector, scheduler, steering, events,
                        /*monitor_window=*/1.0, /*check_interval=*/0.25,
                        /*k_checks=*/4, log);
  }
};

TEST(Reconvergence, CleanWhenActiveIsFixedPointAndNothingPending) {
  ReconvergeRig rig;
  adapt::SteeringAgent steering(rig.spec, cfg(0));
  rig.check(steering);
  EXPECT_TRUE(rig.log.ok()) << rig.log.summary();
}

TEST(Reconvergence, FlagsNonFixedPointActiveConfig) {
  ReconvergeRig rig;
  adapt::SteeringAgent steering(rig.spec, cfg(1));
  rig.check(steering);
  ASSERT_EQ(rig.log.violations().size(), 1u);
  EXPECT_NE(rig.log.violations()[0].detail.find("not a fixed point"),
            std::string::npos);
}

TEST(Reconvergence, FlagsStagedChangeNeverApplied) {
  ReconvergeRig rig;
  adapt::SteeringAgent steering(rig.spec, cfg(0));
  steering.request(cfg(1));
  rig.check(steering);
  ASSERT_EQ(rig.log.violations().size(), 1u);
  EXPECT_NE(rig.log.violations()[0].detail.find("never applied"),
            std::string::npos);
}

TEST(Reconvergence, FlagsAdaptationAfterGracePeriod) {
  ReconvergeRig rig;
  adapt::SteeringAgent steering(rig.spec, cfg(0));
  // Faults clear at 0 (nothing armed); grace = 1.0 + 4 * 0.25 = 2.0.
  rig.check(steering, 10.0,
            {AdaptationController::AdaptationEvent{
                5.0, cfg(1), cfg(0), {1.0, 1e6}, 0}});
  ASSERT_EQ(rig.log.violations().size(), 1u);
  EXPECT_NE(rig.log.violations()[0].detail.find("after the grace period"),
            std::string::npos);
}

TEST(Reconvergence, SkippedWhenRunEndsInsideGracePeriod) {
  ReconvergeRig rig;
  adapt::SteeringAgent steering(rig.spec, cfg(1));  // would be a violation
  rig.check(steering, /*end_time=*/1.5);
  EXPECT_TRUE(rig.log.ok());
}

TEST(InvariantLog, SummaryTruncates) {
  InvariantLog log;
  for (int i = 0; i < 15; ++i) log.report(i, "x", "boom");
  EXPECT_NE(log.summary(10).find("and 5 more"), std::string::npos);
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(InvariantLog{}.summary(), "all invariants held");
}

}  // namespace
}  // namespace avf::testkit
