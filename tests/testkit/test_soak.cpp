// Seeded soak: many randomized fault scenarios, every one under the full
// invariant suite.  The base seed comes from AVF_SOAK_SEED when set (so CI
// can rotate seeds without a rebuild); on failure every offending scenario
// seed is printed with replay instructions.
#include <gtest/gtest.h>

#include <cstdlib>

#include "testkit/scenario.hpp"

namespace avf::testkit {
namespace {

std::uint64_t base_seed() {
  if (const char* env = std::getenv("AVF_SOAK_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 20260807ull;
}

TEST(Soak, FiftyRandomScenariosHoldAllInvariants) {
  const std::uint64_t seed = base_seed();
  const SoakReport report = run_soak(seed, 50);

  EXPECT_EQ(report.scenarios, 50u);
  EXPECT_GT(report.tasks, 0u);
  // Random fault schedules must actually exercise the adaptation path —
  // a soak where nothing ever adapts tests nothing.
  EXPECT_GT(report.adaptations, 0u);
  EXPECT_GT(report.accuracy_probes, 0u);

  if (!report.ok()) {
    ADD_FAILURE() << "base seed " << seed << ": " << report.summary();
    for (const auto& [scenario_seed, violation] : report.violations) {
      ADD_FAILURE() << "violating scenario seed " << scenario_seed << " ["
                    << violation.invariant << "] " << violation.detail
                    << "\n  replay: avf_soak --scenario " << scenario_seed
                    << " --verbose";
    }
  }
}

TEST(Soak, ReportAggregatesAcrossScenarios) {
  const SoakReport report = run_soak(99, 3);
  EXPECT_EQ(report.scenarios, 3u);
  EXPECT_EQ(report.seeds.size(), 3u);
  // Seeds derive from the base via SplitMix64: distinct and reproducible.
  EXPECT_NE(report.seeds[0], report.seeds[1]);
  const SoakReport again = run_soak(99, 3);
  EXPECT_EQ(report.seeds, again.seeds);
  EXPECT_EQ(report.tasks, again.tasks);
  EXPECT_NE(report.summary().find("3 scenario(s)"), std::string::npos);
}

}  // namespace
}  // namespace avf::testkit
