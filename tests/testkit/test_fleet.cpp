#include "testkit/fleet.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "adapt/scheduler.hpp"

namespace avf::testkit {
namespace {

FleetOptions small_fleet(bool cached) {
  FleetOptions options;
  options.sessions = 24;
  options.waves = 4;
  if (cached) {
    options.decision_cache = std::make_shared<adapt::DecisionCache>();
  } else {
    options.controller.change_driven_ticks = false;
  }
  return options;
}

TEST(Fleet, RunsSessionsAndAdaptsUnderChurn) {
  FleetResult r = run_fleet(small_fleet(/*cached=*/false));
  EXPECT_EQ(r.sessions, 24u);
  EXPECT_GT(r.tasks, 0u);
  EXPECT_GT(r.checks, 0u);
  EXPECT_GT(r.triggers, 0u);
  EXPECT_GT(r.adaptations, 0u);
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_EQ(r.cache.hits + r.cache.misses, 0u);  // no cache attached
}

TEST(Fleet, CachedLaneIsByteIdenticalToBaseline) {
  FleetResult baseline = run_fleet(small_fleet(false));
  FleetResult cached = run_fleet(small_fleet(true));
  EXPECT_EQ(cached.decision_fingerprint, baseline.decision_fingerprint);
  EXPECT_EQ(cached.tasks, baseline.tasks);
  EXPECT_EQ(cached.adaptations, baseline.adaptations);
  EXPECT_EQ(cached.checks, baseline.checks);
  // The cached lane demonstrably shared decisions and skipped quiet ticks.
  EXPECT_GT(cached.cache.hits, 0u);
  EXPECT_GT(cached.ticks_skipped, 0u);
  EXPECT_EQ(baseline.ticks_skipped, 0u);
}

TEST(Fleet, RunsAreDeterministic) {
  FleetResult first = run_fleet(small_fleet(true));
  FleetResult second = run_fleet(small_fleet(true));
  EXPECT_EQ(first.decision_fingerprint, second.decision_fingerprint);
  EXPECT_EQ(first.tasks, second.tasks);
  EXPECT_EQ(first.adaptations, second.adaptations);
  EXPECT_EQ(first.cache.hits, second.cache.hits);
  EXPECT_EQ(first.cache.misses, second.cache.misses);
}

TEST(Fleet, SessionsWithinAWaveShareDecisions) {
  // Sessions in one wave are replicas: with W waves the number of distinct
  // decision computations (cache misses) must not grow with the session
  // count.
  FleetOptions a = small_fleet(true);
  FleetOptions b = small_fleet(true);
  b.sessions = 48;  // double the fleet, same wave count
  FleetResult ra = run_fleet(a);
  FleetResult rb = run_fleet(b);
  EXPECT_EQ(ra.cache.misses, rb.cache.misses);
  EXPECT_GT(rb.cache.hits, ra.cache.hits);
}

TEST(Fleet, FingerprintIsScaleSensitive) {
  FleetOptions a = small_fleet(true);
  FleetOptions b = small_fleet(true);
  b.sessions = 25;
  EXPECT_NE(run_fleet(a).decision_fingerprint,
            run_fleet(b).decision_fingerprint);
}

TEST(Fleet, RejectsBadOptions) {
  FleetOptions options;
  options.sessions = 0;
  EXPECT_THROW(run_fleet(options), std::invalid_argument);
  options.sessions = 4;
  options.waves = 0;
  EXPECT_THROW(run_fleet(options), std::invalid_argument);
}

}  // namespace
}  // namespace avf::testkit
