// FaultInjector: seeded schedules are deterministic and bounded, scheduled
// faults really move the targeted resources (and restore them), mailbox
// faults drop/hold/reorder deliveries through a live Channel, and the
// injected ground truth stays queryable throughout.
#include "testkit/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sandbox/sandbox.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avf::testkit {
namespace {

constexpr double kNominalBw = 1e6;

/// A minimal world: two hosts, one link, one channel, victim + rival
/// sandboxes on the client host.
struct World {
  sim::Simulator sim;
  sim::Network net{sim};
  sim::Host& client = net.add_host("client", 450e6, 64ull << 20);
  sim::Host& server = net.add_host("server", 450e6, 64ull << 20);
  sim::Link& link = net.connect(client, server, kNominalBw, 0.005);
  sim::Channel& channel = net.open_channel(link);
  sandbox::Sandbox victim{client, "victim", {}};
  sandbox::Sandbox rival{client, "rival", {}};

  FaultInjector::Targets targets() {
    return {.sim = &sim,
            .link = &link,
            .victim = &victim,
            .competitor = &rival,
            .inbound = &channel.a()};
  }
};

Fault make_fault(FaultKind kind, double at, double until, double value,
                 double period = 0.0) {
  Fault f;
  f.kind = kind;
  f.at = at;
  f.until = until;
  f.value = value;
  f.period = period;
  return f;
}

TEST(FaultSchedule, RandomScheduleIsDeterministic) {
  const FaultSchedule a = random_schedule(12345);
  const FaultSchedule b = random_schedule(12345);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].describe(), b.faults[i].describe());
  }
  const FaultSchedule c = random_schedule(12346);
  bool identical = a.faults.size() == c.faults.size();
  for (std::size_t i = 0; identical && i < a.faults.size(); ++i) {
    identical = a.faults[i].describe() == c.faults[i].describe();
  }
  EXPECT_FALSE(identical);
}

TEST(FaultSchedule, RandomScheduleRespectsLimits) {
  ScheduleLimits limits;
  limits.earliest = 1.0;
  limits.latest_clear = 6.0;
  limits.min_faults = 2;
  limits.max_faults = 5;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultSchedule s = random_schedule(seed, limits);
    EXPECT_GE(static_cast<int>(s.faults.size()), limits.min_faults);
    EXPECT_LE(static_cast<int>(s.faults.size()), limits.max_faults);
    for (const Fault& f : s.faults) {
      EXPECT_GE(f.at, limits.earliest) << f.describe();
      EXPECT_GT(f.until, f.at) << f.describe();
    }
    // Every effect, tails included, clears before latest_clear.
    EXPECT_LE(s.clear_time(), limits.latest_clear) << "seed " << seed;
  }
}

TEST(FaultSchedule, ClearTimeIncludesMailboxTail) {
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kMailboxDelay, 1.0, 2.0, 0.3));
  // Held deliveries can deposit up to `value` after the window closes.
  EXPECT_DOUBLE_EQ(s.clear_time(), 2.3);
}

TEST(FaultInjector, BandwidthFaultAppliesAndRestores) {
  World w;
  FaultInjector injector(w.targets(), 1);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kLinkBandwidth, 1.0, 2.0, 120e3));
  injector.arm(s);

  w.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(w.link.bandwidth(), 120e3);
  EXPECT_DOUBLE_EQ(injector.true_bandwidth(), 120e3);
  EXPECT_DOUBLE_EQ(injector.bandwidth_stable_since(), 1.0);

  w.sim.run();
  EXPECT_DOUBLE_EQ(w.link.bandwidth(), kNominalBw);
  EXPECT_DOUBLE_EQ(injector.bandwidth_stable_since(), 2.0);
}

TEST(FaultInjector, FlapTogglesBandwidth) {
  World w;
  FaultInjector injector(w.targets(), 1);
  FaultSchedule s;
  s.faults.push_back(
      make_fault(FaultKind::kLinkFlap, 1.0, 2.0, 100e3, /*period=*/0.25));
  injector.arm(s);

  std::vector<double> sampled;
  for (double t : {1.1, 1.35, 1.6, 1.85}) {
    w.sim.schedule_at(t, [&] { sampled.push_back(w.link.bandwidth()); });
  }
  w.sim.run();
  EXPECT_EQ(sampled,
            (std::vector<double>{100e3, kNominalBw, 100e3, kNominalBw}));
  EXPECT_DOUBLE_EQ(w.link.bandwidth(), kNominalBw);
}

TEST(FaultInjector, CpuCapAppliesAndRestores) {
  World w;
  FaultInjector injector(w.targets(), 1);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kCpuShare, 1.0, 3.0, 0.2));
  injector.arm(s);

  w.sim.run_until(2.0);
  EXPECT_DOUBLE_EQ(w.victim.cpu_share(), 0.2);
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 0.2);
  EXPECT_DOUBLE_EQ(injector.cpu_stable_since(), 1.0);

  w.sim.run();
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 1.0);
}

TEST(FaultInjector, CpuStealWaterFillsGroundTruth) {
  World w;
  FaultInjector injector(w.targets(), 1);
  FaultSchedule s;
  // Equal-weight over-subscription: an uncapped victim against a 0.7-share
  // busy loop water-fills at half the CPU.
  s.faults.push_back(make_fault(FaultKind::kCpuSteal, 1.0, 2.0, 0.7));
  injector.arm(s);

  w.sim.run_until(1.5);
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 0.5);

  w.sim.run();
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 1.0);
}

TEST(FaultInjector, SmallStealCannotPushVictimBelowItsFloor) {
  World w;
  FaultInjector injector(w.targets(), 1);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kCpuSteal, 1.0, 2.0, 0.3));
  injector.arm(s);
  w.sim.run_until(1.5);
  // Victim (cap 1.0) yields only the competitor's share: 1 - 0.3.
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 0.7);
  w.sim.run();
}

TEST(FaultInjector, MailboxDropConsumesInboundDeliveries) {
  World w;
  FaultInjector injector(w.targets(), 7);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kMailboxDrop, 1.0, 2.0, 1.0));
  injector.arm(s);

  int received = 0;
  w.sim.spawn([](sim::Endpoint& ep, int& count) -> sim::Task<> {
    for (;;) {
      co_await ep.recv();
      ++count;
    }
  }(w.channel.a(), received));
  // One message lands mid-window (dropped), one after (delivered).
  for (double t : {1.5, 3.0}) {
    w.sim.schedule_at(t, [&] {
      w.sim.spawn([](sim::Endpoint& ep) -> sim::Task<> {
        co_await ep.send(sim::Message{.kind = 1});
      }(w.channel.b()));
    });
  }
  w.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(injector.messages_dropped(), 1u);
}

TEST(FaultInjector, MailboxDelayHoldsAndCanReorderDeliveries) {
  World w;
  FaultInjector injector(w.targets(), 3);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kMailboxDelay, 1.0, 2.0, 0.5));
  injector.arm(s);

  std::vector<int> order;
  std::vector<double> at;
  w.sim.spawn([](sim::Simulator& sim, sim::Endpoint& ep, std::vector<int>& o,
                 std::vector<double>& t) -> sim::Task<> {
    for (;;) {
      sim::Message m = co_await ep.recv();
      o.push_back(m.kind);
      t.push_back(sim.now());
    }
  }(w.sim, w.channel.a(), order, at));
  // A burst of tagged messages inside the window: each is held for an
  // independent U(0, 0.5) draw, so late sends can overtake early ones.
  for (int k = 1; k <= 8; ++k) {
    w.sim.schedule_at(1.0 + 0.01 * k, [&w, k] {
      w.sim.spawn([](sim::Endpoint& ep, int kind) -> sim::Task<> {
        co_await ep.send(sim::Message{.kind = kind});
      }(w.channel.b(), k));
    });
  }
  w.sim.run();

  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(injector.messages_delayed(), 8u);
  // Every delivery was held beyond pure wire latency...
  for (double t : at) EXPECT_GT(t, 1.0 + w.link.latency());
  // ...and with seed 3 the holds are unequal enough to reorder.
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  EXPECT_TRUE(injector.mailbox_disturbed_in(1.5, 1.6));
  EXPECT_FALSE(injector.mailbox_disturbed_in(5.0, 6.0));
}

TEST(FaultInjector, PerturbScalesOnlyInsideNoiseWindow) {
  World w;
  FaultInjector injector(w.targets(), 11);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kMonitorNoise, 1.0, 2.0, 0.2));
  injector.arm(s);

  EXPECT_DOUBLE_EQ(injector.perturb("cpu_share", 0.8), 0.8);  // before window
  double inside = 0.0;
  double after = 0.0;
  w.sim.schedule_at(1.5, [&] { inside = injector.perturb("cpu_share", 0.8); });
  w.sim.schedule_at(3.0, [&] { after = injector.perturb("cpu_share", 0.8); });
  w.sim.run();
  EXPECT_GE(inside, 0.8 * 0.8);
  EXPECT_LE(inside, 0.8 * 1.2);
  EXPECT_DOUBLE_EQ(after, 0.8);  // window closed
  EXPECT_DOUBLE_EQ(injector.max_noise_in(1.0, 2.0), 0.2);
  EXPECT_DOUBLE_EQ(injector.max_noise_in(3.0, 4.0), 0.0);
}

TEST(FaultInjector, ConcurrentStealIsSkippedNotStacked) {
  World w;
  FaultInjector injector(w.targets(), 1);
  FaultSchedule s;
  s.faults.push_back(make_fault(FaultKind::kCpuSteal, 1.0, 3.0, 0.7));
  s.faults.push_back(make_fault(FaultKind::kCpuSteal, 1.5, 2.0, 0.6));
  injector.arm(s);

  w.sim.run_until(1.7);
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 0.5);  // first steal only
  w.sim.run_until(2.5);
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 0.5);  // survives second's end
  w.sim.run();
  EXPECT_DOUBLE_EQ(injector.true_cpu_share(), 1.0);
}

}  // namespace
}  // namespace avf::testkit
