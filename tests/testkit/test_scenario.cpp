// ScenarioRunner: the golden-trace determinism contract (same seed, same
// schedule => bit-identical trace), plus scripted end-to-end scenarios that
// must adapt under a fault and re-converge after it clears — all under the
// full invariant suite.
#include "testkit/scenario.hpp"

#include <gtest/gtest.h>

namespace avf::testkit {
namespace {

Fault make_fault(FaultKind kind, double at, double until, double value,
                 double period = 0.0) {
  Fault f;
  f.kind = kind;
  f.at = at;
  f.until = until;
  f.value = value;
  f.period = period;
  return f;
}

TEST(Scenario, SameSeedYieldsBitIdenticalTrace) {
  ScenarioOptions options;
  options.injector_seed = 42;
  const FaultSchedule schedule = random_schedule(42, limits_for(options));

  const ScenarioResult first = run_scenario(schedule, options);
  const ScenarioResult second = run_scenario(schedule, options);
  EXPECT_EQ(first.trace.fingerprint(), second.trace.fingerprint());
  EXPECT_EQ(first.trace.dump(), second.trace.dump());
  EXPECT_EQ(first.tasks, second.tasks);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.adaptations.size(), second.adaptations.size());
}

TEST(Scenario, DifferentSeedsDiverge) {
  ScenarioOptions a;
  a.injector_seed = 42;
  ScenarioOptions b;
  b.injector_seed = 43;
  const ScenarioResult ra = run_scenario(random_schedule(42, limits_for(a)), a);
  const ScenarioResult rb = run_scenario(random_schedule(43, limits_for(b)), b);
  EXPECT_NE(ra.trace.fingerprint(), rb.trace.fingerprint());
}

TEST(Scenario, QuietRunHoldsInitialConfigAndAllInvariants) {
  ScenarioOptions options;
  const ScenarioResult result = run_scenario(FaultSchedule{}, options);
  EXPECT_TRUE(result.ok()) << result.trace.dump();
  EXPECT_GT(result.tasks, 0u);
  EXPECT_TRUE(result.adaptations.empty());
  EXPECT_EQ(result.initial_config, result.final_config);
  // At nominal resources the scheduler picks full quality, uncompressed.
  EXPECT_EQ(result.initial_config.key(), "c=0,q=4");
}

TEST(Scenario, CpuCapForcesAdaptationAndReconvergence) {
  ScenarioOptions options;
  FaultSchedule schedule;
  schedule.faults.push_back(make_fault(FaultKind::kCpuShare, 1.0, 3.0, 0.2));
  const ScenarioResult result = run_scenario(schedule, options);
  EXPECT_TRUE(result.ok()) << result.trace.dump();
  // The starved CPU forces at least one downgrade and, once restored, the
  // re-convergence invariant (checked inside run_scenario) guarantees the
  // final config is the scheduler's choice at nominal resources.
  EXPECT_GE(result.adaptations.size(), 1u);
  EXPECT_EQ(result.final_config.key(), "c=0,q=4");
}

TEST(Scenario, BandwidthCollapseForcesAdaptation) {
  ScenarioOptions options;
  FaultSchedule schedule;
  schedule.faults.push_back(
      make_fault(FaultKind::kLinkBandwidth, 1.0, 3.5, 80e3));
  const ScenarioResult result = run_scenario(schedule, options);
  EXPECT_TRUE(result.ok()) << result.trace.dump();
  EXPECT_GE(result.adaptations.size(), 1u);
  EXPECT_EQ(result.final_config.key(), "c=0,q=4");
}

TEST(Scenario, PartitionWithRetriesStillSatisfiesInvariants) {
  ScenarioOptions options;
  FaultSchedule schedule;
  schedule.faults.push_back(
      make_fault(FaultKind::kLinkPartition, 1.0, 1.6, 100.0));
  const ScenarioResult result = run_scenario(schedule, options);
  EXPECT_TRUE(result.ok()) << result.trace.dump();
  EXPECT_GT(result.tasks, 0u);
}

TEST(Scenario, BothPreferenceTemplatesRunClean) {
  for (int tpl : {0, 1}) {
    ScenarioOptions options;
    options.preference_template = tpl;
    options.injector_seed = 7;
    const FaultSchedule schedule = random_schedule(7, limits_for(options));
    const ScenarioResult result = run_scenario(schedule, options);
    EXPECT_TRUE(result.ok()) << "template " << tpl << "\n"
                             << result.trace.dump();
  }
}

TEST(Scenario, AnalyticDatabaseMatchesAppModel) {
  AppModel model;
  perfdb::PerfDatabase db = build_testkit_database(model);
  tunable::ConfigPoint cfg;
  cfg.set("q", 4);
  cfg.set("c", 0);
  auto q = db.predict(cfg, {1.0, 1e6});
  ASSERT_TRUE(q.has_value());
  EXPECT_NEAR(q->get("response"), model.response(cfg, 1.0, 1e6), 1e-9);
  EXPECT_DOUBLE_EQ(q->get("quality"), 4.0);
}

TEST(Scenario, LimitsLeaveRoomForGracePeriod) {
  ScenarioOptions options;
  const ScheduleLimits limits = limits_for(options);
  const double grace = options.monitor.window +
                       options.reconverge_checks *
                           options.controller.check_interval;
  EXPECT_LE(limits.latest_clear + grace, options.duration);
}

}  // namespace
}  // namespace avf::testkit
