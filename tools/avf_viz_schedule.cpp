// avf_viz_schedule — query a performance database the way the resource
// scheduler does (§6.2): given measured resources and a user preference,
// print the configuration the framework would choose, with its predicted
// quality metrics.
//
// Usage:
//   avf_viz_schedule --db FILE --cpu SHARE --bw BPS
//                    [--minimize METRIC | --maximize METRIC]
//                    [--range METRIC:MIN:MAX]... [--nearest]
// Example:
//   avf_viz_schedule --db db.csv --cpu 0.4 --bw 50e3
//                    --maximize resolution --range transmit_time:0:10
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "adapt/scheduler.hpp"
#include "perfdb/database.hpp"

using namespace avf;

namespace {

[[noreturn]] void usage() {
  std::cerr << "usage: avf_viz_schedule --db FILE --cpu SHARE --bw BPS "
               "[--minimize M | --maximize M] [--range M:MIN:MAX]... "
               "[--nearest]\n";
  std::exit(2);
}

adapt::MetricRange parse_range(const std::string& spec) {
  std::size_t c1 = spec.find(':');
  std::size_t c2 = spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) usage();
  adapt::MetricRange range;
  range.metric = spec.substr(0, c1);
  range.min = std::stod(spec.substr(c1 + 1, c2 - c1 - 1));
  range.max = std::stod(spec.substr(c2 + 1));
  return range;
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  double cpu = -1.0, bw = -1.0;
  adapt::UserPreference pref = adapt::minimize("transmit_time");
  perfdb::Lookup lookup = perfdb::Lookup::kInterpolate;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--db") {
      db_path = next();
    } else if (arg == "--cpu") {
      cpu = std::stod(next());
    } else if (arg == "--bw") {
      bw = std::stod(next());
    } else if (arg == "--minimize") {
      pref.objective_metric = next();
      pref.maximize = false;
    } else if (arg == "--maximize") {
      pref.objective_metric = next();
      pref.maximize = true;
    } else if (arg == "--range") {
      pref.constraints.push_back(parse_range(next()));
    } else if (arg == "--nearest") {
      lookup = perfdb::Lookup::kNearest;
    } else {
      usage();
    }
  }
  if (db_path.empty() || cpu < 0.0 || bw < 0.0) usage();

  std::ifstream in(db_path);
  if (!in) {
    std::cerr << "cannot read " << db_path << "\n";
    return 1;
  }
  std::optional<perfdb::PerfDatabase> db;
  try {
    db.emplace(perfdb::PerfDatabase::load(in));
  } catch (const std::exception& e) {
    std::cerr << "error loading " << db_path << ": " << e.what() << "\n";
    return 1;
  }

  adapt::ResourceScheduler::Options options;
  options.lookup = lookup;
  adapt::ResourceScheduler scheduler(*db, {pref}, options);
  auto decision = scheduler.select({cpu, bw});
  if (!decision) {
    std::cerr << "no usable configurations in the database\n";
    return 1;
  }
  std::cout << "configuration: " << decision->config.key() << "\n";
  for (const auto& [metric, value] : decision->predicted.values()) {
    std::cout << "  predicted " << metric << " = " << value << "\n";
  }
  if (decision->fell_through) {
    std::cout << "note: the preference constraints were not satisfiable; "
                 "this is the best-effort choice\n";
  }
  return 0;
}
