// avf_soak — seeded soak driver for the fault-injection testkit.
//
// Runs `--count` randomized fault scenarios derived from `--seed` (default:
// the AVF_SOAK_SEED environment variable, else 1) and fails with the
// offending seed(s) printed if any adaptation invariant is violated.  Every
// reported per-scenario seed reproduces its scenario exactly:
//
//   avf_soak --scenario <seed> [--verbose]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testkit/scenario.hpp"
#include "util/fmt.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed N] [--count N] [--duration S] [--scenario N]"
               " [--verbose]\n"
               "  --seed N      base seed (default: $AVF_SOAK_SEED, else 1)\n"
               "  --count N     scenarios to run (default 50)\n"
               "  --duration S  simulated seconds per scenario (default 10)\n"
               "  --scenario N  replay one scenario by its per-scenario seed\n"
               "                (the value printed for a violation)\n"
               "  --verbose     print per-scenario seeds and fingerprints;\n"
               "                with --scenario, dump the full trace\n";
  return 2;
}

// Run the single scenario identified by a per-scenario seed, exactly as
// run_soak derives it.  This is the reproduction path for reported
// violations, so it prints the violations and (with --verbose) the trace.
int replay_scenario(std::uint64_t seed, avf::testkit::ScenarioOptions options,
                    bool verbose) {
  options.injector_seed = seed;
  options.preference_template = static_cast<int>((seed >> 8) % 2);
  const auto schedule =
      avf::testkit::random_schedule(seed, avf::testkit::limits_for(options));
  const auto result = avf::testkit::run_scenario(schedule, options);
  std::cout << avf::util::format(
      "scenario seed={} template={} faults={}\n", seed,
      options.preference_template, schedule.faults.size());
  for (const auto& f : schedule.faults) {
    std::cout << "  fault " << f.describe() << "\n";
  }
  if (verbose) std::cout << result.trace.dump();
  std::cout << avf::util::format(
      "tasks={} retries={} adaptations={} final={} fingerprint={:x}\n",
      result.tasks, result.retries, result.adaptations.size(),
      result.final_config.key(), result.trace.fingerprint());
  for (const auto& v : result.violations) {
    std::cout << avf::util::format("VIOLATION t={} [{}] {}\n", v.time,
                                   v.invariant, v.detail);
  }
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t base_seed = 1;
  if (const char* env = std::getenv("AVF_SOAK_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  int count = 50;
  avf::testkit::ScenarioOptions options;
  bool verbose = false;
  bool replay = false;
  std::uint64_t scenario_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      base_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--count") {
      count = std::atoi(next());
    } else if (arg == "--duration") {
      options.duration = std::atof(next());
    } else if (arg == "--scenario") {
      replay = true;
      scenario_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (replay) {
    return replay_scenario(scenario_seed, options, verbose);
  }

  std::cout << avf::util::format("avf_soak: base seed {} x {} scenario(s)\n",
                                 base_seed, count);
  if (verbose) {
    // Re-run scenario by scenario so fingerprints can be printed alongside.
    avf::util::SplitMix64 seeder(base_seed);
    avf::testkit::SoakReport report;
    for (int i = 0; i < count; ++i) {
      const std::uint64_t seed = seeder.next();
      avf::testkit::ScenarioOptions opt = options;
      opt.injector_seed = seed;
      opt.preference_template = static_cast<int>((seed >> 8) % 2);
      const auto schedule =
          avf::testkit::random_schedule(seed, avf::testkit::limits_for(opt));
      const auto result = avf::testkit::run_scenario(schedule, opt);
      std::cout << avf::util::format(
          "  seed={} faults={} tasks={} retries={} adaptations={} "
          "fingerprint={:x}{}\n",
          seed, schedule.faults.size(), result.tasks, result.retries,
          result.adaptations.size(), result.trace.fingerprint(),
          result.ok() ? "" : "  VIOLATIONS");
      ++report.scenarios;
      report.tasks += result.tasks;
      report.adaptations += result.adaptations.size();
      report.accuracy_probes += result.accuracy_probes;
      for (const auto& v : result.violations) {
        report.violations.emplace_back(seed, v);
      }
    }
    std::cout << report.summary();
    if (!report.ok()) {
      std::cerr << avf::util::format(
          "FAILED: replay a seed with: {} --scenario <seed> --verbose\n", argv[0]);
      return 1;
    }
    return 0;
  }

  const auto report = avf::testkit::run_soak(base_seed, count, options);
  std::cout << report.summary();
  if (!report.ok()) {
    std::cerr << avf::util::format(
        "FAILED: replay a seed with: {} --scenario <seed> --verbose\n", argv[0]);
    return 1;
  }
  return 0;
}
