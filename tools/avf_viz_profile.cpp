// avf_viz_profile — the paper's "driver program" (§5) as a command-line
// tool: executes every configuration of the visualization application in
// the virtual testbed over a resource grid and writes the performance
// database as CSV.
//
// Usage:
//   avf_viz_profile [--size N] [--images SEED] [--cpu a,b,c] [--bw a,b,c]
//                   [--refine R] [--budget B] [--seed S] [--threads T]
//                   [--out FILE]
// Defaults: 512x512 image, cpu 0.1,0.4,0.7,1.0, bw 25e3,50e3,250e3,500e3,
// no refinement, 1 thread (0 = hardware concurrency; any thread count
// produces a byte-identical database), stdout.
//
// --budget B caps the sandbox runs at B cells (adaptive profiling): the
// driver measures a seeded space-filling sample, fits one regression tree
// per metric, spends the rest of the budget on the highest-variance leaves,
// and emits tree predictions (flagged in an `origin` column) for the
// unmeasured cells.  --seed S picks the space-filling sample (default 1).
// --budget excludes --refine; a budget covering the whole grid degenerates
// to the exhaustive sweep byte-for-byte.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "perfdb/driver.hpp"
#include "viz/world.hpp"

using namespace avf;

namespace {

std::vector<double> parse_list(const std::string& arg) {
  std::vector<double> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::stod(item));
  }
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: avf_viz_profile [--size N] [--cpu a,b,..] "
               "[--bw a,b,..] [--refine R] [--budget B] [--seed S] "
               "[--threads T] [--out FILE]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  viz::WorldSetup setup;
  setup.image_size = 512;
  std::vector<double> cpu_grid{0.1, 0.4, 0.7, 1.0};
  std::vector<double> bw_grid{25e3, 50e3, 250e3, 500e3};
  int refine = 0;
  std::size_t budget = 0;  // 0 = exhaustive sweep
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage();
      return argv[i];
    };
    if (arg == "--size") {
      setup.image_size = std::stoi(next());
    } else if (arg == "--cpu") {
      cpu_grid = parse_list(next());
    } else if (arg == "--bw") {
      bw_grid = parse_list(next());
    } else if (arg == "--refine") {
      refine = std::stoi(next());
    } else if (arg == "--budget") {
      long long b = std::stoll(next());
      if (b <= 0) usage();
      budget = static_cast<std::size_t>(b);
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--threads") {
      int t = std::stoi(next());
      if (t < 0) usage();
      threads = static_cast<std::size_t>(t);
    } else if (arg == "--out") {
      out_path = next();
    } else {
      usage();
    }
  }
  if (cpu_grid.empty() || bw_grid.empty()) usage();
  if (budget > 0 && refine > 0) usage();  // the tree owns the budget

  std::cerr << "profiling " << viz::viz_app_spec().space().enumerate().size()
            << " configurations over " << cpu_grid.size() << "x"
            << bw_grid.size() << " resource grid (" << setup.image_size
            << "x" << setup.image_size << " image, " << refine
            << " refinement rounds, "
            << (threads == 0 ? std::string("hw") : std::to_string(threads))
            << " threads)...\n";
  perfdb::PerfDatabase db =
      budget > 0
          ? viz::build_viz_database_adaptive(setup, cpu_grid, bw_grid, budget,
                                             seed, threads)
          : viz::build_viz_database(setup, cpu_grid, bw_grid, refine, threads);
  std::cerr << db.size() << " samples collected";
  if (db.predicted_count() > 0) {
    std::cerr << " (" << db.size() - db.predicted_count() << " measured, "
              << db.predicted_count() << " tree-predicted)";
  }
  std::cerr << "\n";

  if (out_path.empty()) {
    db.save(std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    db.save(out);
    std::cerr << "written to " << out_path << "\n";
  }
  return 0;
}
