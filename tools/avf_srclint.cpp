// avf_srclint — determinism & concurrency source linter.
//
// Lexically scans the C++ sources under <root>/src and <root>/tools for
// violations of the determinism contract (unordered-container iteration in
// trace-affecting modules, wall clocks, non-seeded randomness, unguarded
// float accumulation) and the concurrency contract (raw std mutex
// primitives bypassing the TSA-annotated util::Mutex wrappers).  The rule
// catalog lives in src/lint/srclint.hpp and DESIGN.md; findings are
// suppressed in-source with
//
//   // avf-srclint: allow(<rule.id> <justification>)
//
// CI gates on `avf_srclint --strict` exiting 0 over the tree.
//
// Usage:
//   avf_srclint [--json] [--strict] [--root DIR] [--rules]
//     --root DIR   repository root to scan (default: current directory)
//     --json       machine-readable report on stdout
//     --strict     exit non-zero on warnings too
//     --rules      print the rule catalog and exit
//
// Exit codes: 0 clean (warnings allowed unless --strict), 1 diagnostics at
// the failing severity, 2 usage or I/O error.
#include <filesystem>
#include <iostream>
#include <string>

#include "lint/srclint.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: avf_srclint [--json] [--strict] [--root DIR] [--rules]\n"
         "  --root DIR   repository root to scan (default: .)\n"
         "  --json       machine-readable output\n"
         "  --strict     exit non-zero on warnings too\n"
         "  --rules      print the rule catalog and exit\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  std::filesystem::path root = ".";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--root") {
      if (++i == argc) return usage(std::cerr, 2);
      root = argv[i];
    } else if (arg == "--rules") {
      for (const avf::lint::SrcRule& rule : avf::lint::srclint_rules()) {
        std::cout << rule.id << " ("
                  << avf::lint::severity_name(rule.severity)
                  << (rule.suppressible ? "" : ", not suppressible")
                  << "): " << rule.summary << '\n';
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "unknown option: " << arg << '\n';
      return usage(std::cerr, 2);
    }
  }

  std::error_code ec;
  if (!std::filesystem::is_directory(root / "src", ec)) {
    std::cerr << "no src/ directory under " << root
              << " (pass the repository root with --root)\n";
    return 2;
  }

  avf::lint::Report report = avf::lint::srclint_tree(root);
  if (json) {
    report.print_json(std::cout);
    std::cout << '\n';
  } else {
    report.print(std::cout);
  }
  if (report.has_errors()) return 1;
  if (strict && report.warning_count() > 0) return 1;
  return 0;
}
