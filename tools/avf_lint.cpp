// avf_lint — static analysis of tunability specifications.
//
// Lints the example applications' specs (reference integrity, guard
// feasibility, transition connectivity, preference consistency) and,
// optionally, a CSV performance database against one app's spec (coverage:
// unprofiled valid configs, samples for invalid configs, axis/metric
// mismatches).  CI gates on `avf_lint` exiting 0 over all builtin apps.
//
// Usage:
//   avf_lint [--json] [--strict] [--max-configs N] [--db FILE] [app...]
//     app            renderer | pipeline | viz   (default: all)
//     --db FILE      also lint a CSV database (requires exactly one app)
//     --json         machine-readable output, one object per app
//     --strict       exit non-zero on warnings too
//     --max-configs  cap for enumeration-based rules (default 20000)
//
// Exit codes: 0 clean (warnings allowed unless --strict), 1 diagnostics
// at the failing severity, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "examples/specs.hpp"
#include "lint/lint.hpp"
#include "viz/world.hpp"

namespace {

using avf::lint::Options;
using avf::lint::Report;
using avf::tunable::AppSpec;
using avf::tunable::PreferenceList;

struct BuiltinApp {
  std::string name;
  AppSpec spec;
  PreferenceList preferences;
};

std::vector<BuiltinApp> builtin_apps() {
  std::vector<BuiltinApp> apps;
  apps.push_back({"renderer", avf::examples::renderer_spec(),
                  avf::examples::renderer_preferences()});
  apps.push_back({"pipeline", avf::examples::pipeline_spec(),
                  avf::examples::pipeline_preferences()});
  apps.push_back(
      {"viz", avf::viz::viz_app_spec(), avf::examples::viz_preferences()});
  return apps;
}

int usage(std::ostream& out, int code) {
  out << "usage: avf_lint [--json] [--strict] [--max-configs N] "
         "[--db FILE] [app...]\n"
         "  apps: renderer | pipeline | viz (default: all)\n"
         "  --db FILE requires exactly one app to lint the database "
         "against\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  std::optional<std::string> db_path;
  Options options;
  std::vector<std::string> requested;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--db") {
      if (++i == argc) return usage(std::cerr, 2);
      db_path = argv[i];
    } else if (arg == "--max-configs") {
      if (++i == argc) return usage(std::cerr, 2);
      try {
        options.max_configs = std::stoul(argv[i]);
      } catch (const std::exception&) {
        return usage(std::cerr, 2);
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      return usage(std::cerr, 2);
    } else {
      requested.push_back(arg);
    }
  }

  std::vector<BuiltinApp> apps = builtin_apps();
  std::vector<const BuiltinApp*> selected;
  if (requested.empty()) {
    for (const BuiltinApp& app : apps) selected.push_back(&app);
  } else {
    for (const std::string& name : requested) {
      const BuiltinApp* found = nullptr;
      for (const BuiltinApp& app : apps) {
        if (app.name == name) found = &app;
      }
      if (found == nullptr) {
        std::cerr << "unknown app: " << name << '\n';
        return usage(std::cerr, 2);
      }
      selected.push_back(found);
    }
  }
  if (db_path && selected.size() != 1) {
    std::cerr << "--db requires exactly one app\n";
    return usage(std::cerr, 2);
  }

  std::optional<avf::perfdb::PerfDatabase> db;
  if (db_path) {
    std::ifstream in(*db_path);
    if (!in) {
      std::cerr << "cannot open database: " << *db_path << '\n';
      return 2;
    }
    try {
      db = avf::perfdb::PerfDatabase::load(in);
    } catch (const std::exception& e) {
      std::cerr << "cannot parse database " << *db_path << ": " << e.what()
                << '\n';
      return 2;
    }
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const BuiltinApp* app : selected) {
    Report report = avf::lint::lint_app(
        app->spec, &app->preferences, db ? &*db : nullptr, options);
    errors += report.error_count();
    warnings += report.warning_count();
    if (json) {
      std::cout << "{\"app\":\"" << avf::lint::json_escape(app->name)
                << "\",\"report\":";
      report.print_json(std::cout);
      std::cout << "}\n";
    } else {
      std::cout << "== " << app->name << " ==\n";
      report.print(std::cout);
    }
  }
  if (errors > 0) return 1;
  if (strict && warnings > 0) return 1;
  return 0;
}
