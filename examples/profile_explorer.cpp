// Profile explorer: inspect the automatically generated performance
// database of the visualization application — the artifact at the center
// of the paper's approach.
//
// Shows: grid contents, interpolated predictions, maximal-subset pruning
// (dominated/merged configurations), sensitivity analysis (where more
// samples would help), and CSV round-tripping.
//
// Build & run:  ./build/examples/profile_explorer
#include <fstream>
#include <iostream>
#include <sstream>

#include "perfdb/prune.hpp"
#include "perfdb/sensitivity.hpp"
#include "util/table.hpp"
#include "viz/world.hpp"

using namespace avf;

int main() {
  viz::WorldSetup setup;
  setup.image_size = 512;
  std::cout << "building a profile of the visualization app "
               "(4x4 resource grid, 18 configurations)...\n";
  perfdb::PerfDatabase db = viz::build_viz_database(
      setup, {0.1, 0.4, 0.7, 1.0}, {25e3, 50e3, 250e3, 500e3});
  std::cout << db.size() << " samples recorded\n\n";

  std::cout << "== interpolated predictions at an off-grid point "
               "(cpu 55%, 120 KBps) ==\n";
  util::TextTable predictions(
      {"config", "transmit (s)", "response (s)", "resolution"});
  for (const tunable::ConfigPoint& config : db.configs()) {
    auto q = db.predict(config, {0.55, 120e3});
    predictions.add_row({config.key(),
                         util::TextTable::num(q->get("transmit_time"), 3),
                         util::TextTable::num(q->get("response_time"), 3),
                         util::TextTable::num(q->get("resolution"), 0)});
  }
  predictions.print(std::cout);

  std::cout << "\n== maximal-subset pruning (paper §5 footnote) ==\n";
  perfdb::PruneResult prune = perfdb::analyze_prune(db, 0.02);
  std::cout << "kept " << prune.kept.size() << " of "
            << db.configs().size() << " configurations\n";
  for (const auto& config : prune.dominated) {
    std::cout << "  dominated: " << config.key() << "\n";
  }
  for (const auto& [from, to] : prune.merged_into) {
    std::cout << "  merged:    " << from << " == " << to << "\n";
  }

  std::cout << "\n== sensitivity analysis: where to sample next ==\n";
  auto suggestions = perfdb::sensitivity_analysis(db, 0.6);
  std::size_t shown = 0;
  for (const auto& s : suggestions) {
    std::cout << "  " << s.config.key() << " @ cpu="
              << util::TextTable::num(s.point[0], 2) << " bw="
              << util::TextTable::num(s.point[1] / 1e3, 1) << " KBps ("
              << s.metric << " changes "
              << util::TextTable::num(100 * s.relative_change, 0)
              << "% along " << s.axis << ")\n";
    if (++shown == 8) break;
  }
  std::cout << "  (" << suggestions.size() << " suggestions total)\n";

  std::cout << "\n== CSV round-trip ==\n";
  std::stringstream buffer;
  db.save(buffer);
  std::cout << "serialized " << buffer.str().size() << " bytes; ";
  perfdb::PerfDatabase loaded = perfdb::PerfDatabase::load(buffer);
  std::cout << "reloaded " << loaded.size() << " samples ("
            << (loaded.size() == db.size() ? "match" : "MISMATCH") << ")\n";
  return 0;
}
