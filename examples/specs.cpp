#include "examples/specs.hpp"

namespace avf::examples {

using tunable::Direction;

tunable::AppSpec renderer_spec() {
  tunable::AppSpec spec("renderer");
  spec.space().add_parameter("quality", {1, 2, 3});
  spec.metrics().add("frame_time", Direction::kLowerBetter);
  spec.metrics().add("quality", Direction::kHigherBetter);
  spec.add_resource_axis("cpu_share");
  spec.add_task({.name = "render_frame",
                 .params = {"quality"},
                 .resources = {"host.CPU"},
                 .metrics = {"frame_time", "quality"},
                 .guard = nullptr});
  return spec;
}

tunable::PreferenceList renderer_preferences() {
  // Best quality whose frame time stays under 500 ms; if no quality can
  // meet that, just keep frames as fast as possible.
  tunable::UserPreference pref = tunable::maximize_metric("quality");
  pref.constraints.push_back({.metric = "frame_time", .max = 0.5});
  return {pref, tunable::minimize("frame_time")};
}

tunable::AppSpec pipeline_spec() {
  tunable::AppSpec spec("sensor-pipeline");
  spec.space().add_parameter("batch", {16, 64, 256});
  spec.space().add_parameter("filter", {0, 1});
  spec.metrics().add("throughput", Direction::kHigherBetter);
  spec.metrics().add("latency", Direction::kLowerBetter);
  spec.add_resource_axis("uplink_bps");
  spec.add_task({.name = "ship_batch",
                 .params = {"batch", "filter"},
                 .resources = {"gateway.CPU", "gateway.network"},
                 .metrics = {"throughput", "latency"},
                 .guard = nullptr});
  return spec;
}

tunable::PreferenceList pipeline_preferences() {
  tunable::UserPreference pref = tunable::maximize_metric("throughput");
  pref.constraints.push_back({.metric = "latency", .max = 1.0});
  return {pref};
}

tunable::PreferenceList viz_preferences() {
  tunable::UserPreference best =
      tunable::minimize("transmit_time", "full-resolution");
  best.constraints.push_back({.metric = "resolution", .min = 4.0});
  best.constraints.push_back({.metric = "transmit_time", .max = 4.0});
  return {best, tunable::minimize("transmit_time", "best-effort")};
}

}  // namespace avf::examples
