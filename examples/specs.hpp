// Shared tunability specifications of the example applications.
//
// The specs used to live inline in each example's main(); they are shared
// here so that the avf_lint tool (and the lint test suite) can statically
// analyze exactly what the examples run — CI gates on these linting clean.
#pragma once

#include "tunable/app_spec.hpp"
#include "tunable/preferences.hpp"

namespace avf::examples {

/// quickstart.cpp: a one-knob renderer (quality in {1,2,3}) on one host.
tunable::AppSpec renderer_spec();
/// Best quality under a 500 ms frame budget; else fastest frames.
tunable::PreferenceList renderer_preferences();

/// adaptive_pipeline.cpp: sensor-batch gateway (batch size x filtering).
tunable::AppSpec pipeline_spec();
/// Max throughput with batch latency under 1 s.
tunable::PreferenceList pipeline_preferences();

/// active_viz_demo.cpp preferences for viz::viz_app_spec(): minimize
/// transmit time at full resolution, fall back below 4 s transmit.
tunable::PreferenceList viz_preferences();

}  // namespace avf::examples
