// A second tunable application domain: an adaptive sensor-stream pipeline.
//
// A field gateway forwards sensor batches to an analysis server over a
// flaky uplink.  Tunability:
//   * batch  in {16, 64, 256}  — records per message (amortizes headers and
//     per-message processing, but increases per-batch latency)
//   * filter in {0, 1}         — 0: raw forwarding; 1: on-gateway filtering
//     that costs CPU but shrinks each record from 64 to 20 bytes
//
// Metrics: throughput (records/s, higher better) and batch latency
// (seconds, lower better).  The framework profiles the pipeline in the
// testbed and then keeps throughput up as uplink bandwidth collapses by
// switching to on-gateway filtering and larger batches — the same
// structure as the paper's visualization application, in a completely
// different domain.
//
// Build & run:  ./build/examples/adaptive_pipeline
#include <iostream>

#include "adapt/controller.hpp"
#include "examples/specs.hpp"
#include "perfdb/driver.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/network.hpp"
#include "util/table.hpp"

using namespace avf;

namespace {

constexpr double kGatewaySpeed = 200e6;   // embedded-class CPU
constexpr double kRecordBytes = 64.0;
constexpr double kFilteredBytes = 20.0;
constexpr double kFilterOpsPerRecord = 60e3;
constexpr double kPackOpsPerRecord = 4e3;
constexpr double kPerBatchOps = 1.5e6;

struct PipelineWorld {
  sim::Simulator sim;
  sim::Network net{sim};
  sim::Host& gateway;
  sim::Host& server;
  sim::Link& uplink;
  sim::Channel& channel;
  sandbox::Sandbox box;

  explicit PipelineWorld(double uplink_bps, double cpu_share)
      : gateway(net.add_host("gateway", kGatewaySpeed, 32u << 20)),
        server(net.add_host("server", 450e6, 128u << 20)),
        uplink(net.connect(gateway, server, uplink_bps, 0.02)),
        channel(net.open_channel(uplink)),
        box(gateway, "pipeline", make_options(cpu_share)) {
    box.attach_endpoint(channel.a());
  }

  static sandbox::Sandbox::Options make_options(double share) {
    sandbox::Sandbox::Options o;
    o.cpu_share = share;
    return o;
  }

  /// Ship `records` sensor records under `config`; returns (records/s,
  /// mean batch latency).
  std::pair<double, double> run(const tunable::ConfigPoint& config,
                                int records,
                                adapt::SteeringAgent* steering = nullptr,
                                adapt::MonitoringAgent* monitor = nullptr,
                                adapt::AdaptationController* controller =
                                    nullptr) {
    double latency_sum = 0.0;
    int batches = 0;
    auto body = [&, records]() -> sim::Task<> {
      int sent = 0;
      while (sent < records) {
        tunable::ConfigPoint active =
            steering != nullptr ? steering->active() : config;
        int batch = active.get("batch");
        bool filter = active.get("filter") == 1;
        double t0 = sim.now();
        double ops = kPerBatchOps + kPackOpsPerRecord * batch +
                     (filter ? kFilterOpsPerRecord * batch : 0.0);
        co_await box.compute(ops);
        sim::Message msg;
        msg.kind = 1;
        msg.payload.assign(
            static_cast<std::size_t>(
                batch * (filter ? kFilteredBytes : kRecordBytes)),
            0);
        co_await channel.a().send(std::move(msg));
        double dt = sim.now() - t0;
        latency_sum += dt;
        ++batches;
        sent += batch;
        if (monitor != nullptr) {
          double wire = batch * (filter ? kFilteredBytes : kRecordBytes) +
                        sim::kMessageHeaderBytes;
          monitor->observe("uplink_bps", wire / dt);
        }
        if (steering != nullptr) steering->apply_pending();
      }
      // The periodic adaptation check must stop with the application or
      // the event queue never drains.
      if (controller != nullptr) controller->stop();
    };
    sim.spawn(body());
    double start = sim.now();
    sim.run();
    double elapsed = sim.now() - start;
    return {records / elapsed, latency_sum / batches};
  }
};

}  // namespace

int main() {
  // Spec shared with the avf_lint tool: examples::pipeline_spec().
  tunable::AppSpec spec = examples::pipeline_spec();

  std::cout << "== profiling the pipeline across uplink bandwidths ==\n";
  perfdb::ProfilingDriver driver(
      [](const tunable::ConfigPoint& config,
         const perfdb::ResourcePoint& at) {
        PipelineWorld world(at[0], 1.0);
        auto [throughput, latency] = world.run(config, 2048);
        tunable::QosVector q;
        q.set("throughput", throughput);
        q.set("latency", latency);
        return q;
      });
  perfdb::PerfDatabase db =
      driver.profile(spec, {{4e3, 16e3, 64e3, 256e3, 1e6}});

  util::TextTable profile({"uplink (KB/s)", "best config", "records/s"});
  adapt::ResourceScheduler scheduler(db, examples::pipeline_preferences());
  for (double bw : {4e3, 16e3, 64e3, 256e3, 1e6}) {
    auto d = scheduler.select({bw});
    profile.add_row({util::TextTable::num(bw / 1e3, 0), d->config.key(),
                     util::TextTable::num(d->predicted.get("throughput"),
                                          0)});
  }
  profile.print(std::cout);

  std::cout << "\n== live run: uplink collapses 1 MB/s -> 16 KB/s at t=2s "
               "==\n";
  PipelineWorld world(1e6, 1.0);
  adapt::MonitoringAgent monitor(world.sim, spec.resource_axes());
  tunable::ConfigPoint initial = scheduler.select({1e6})->config;
  adapt::SteeringAgent steering(spec, initial);
  adapt::AdaptationController controller(world.sim, scheduler, monitor,
                                         steering);
  controller.configure({1e6});
  controller.start();
  world.sim.schedule(2.0, [&] { world.uplink.set_bandwidth(16e3); });

  auto [throughput, latency] =
      world.run(initial, 40000, &steering, &monitor, &controller);

  std::cout << "initial configuration: " << initial.key() << "\n";
  for (const auto& event : controller.adaptations()) {
    std::cout << "t=" << util::TextTable::num(event.time, 2) << "s: "
              << event.from.key() << " -> " << event.to.key() << "\n";
  }
  std::cout << "overall: " << util::TextTable::num(throughput, 0)
            << " records/s, mean batch latency "
            << util::TextTable::num(latency, 3) << " s\n"
            << "\nSame framework, different application: the gateway "
               "switched to on-device filtering\nand bigger batches when "
               "the uplink collapsed.\n";
  return 0;
}
