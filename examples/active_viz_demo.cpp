// Active Visualization demo: the paper's application end to end.
//
// Profiles the client/server image viewer in the virtual testbed, then
// plays a session in which both the network and the CPU degrade; the
// framework reconfigures the compression method, fovea size, and (if
// needed) image resolution on the fly.
//
// Build & run:  ./build/examples/active_viz_demo
#include <iostream>

#include "examples/specs.hpp"
#include "util/table.hpp"
#include "viz/world.hpp"

using namespace avf;

int main() {
  // A compact world (512x512 images) so the demo profiles in seconds.
  viz::WorldSetup setup;
  setup.image_size = 512;
  setup.image_count = 12;
  setup.link_bandwidth_bps = 500e3;

  std::cout << "== step 1: profile every configuration in the testbed ==\n";
  perfdb::PerfDatabase db = viz::build_viz_database(
      setup, {0.1, 0.4, 0.7, 1.0}, {25e3, 50e3, 250e3, 500e3});
  std::cout << "   " << db.size() << " samples across "
            << db.configs().size() << " configurations\n";

  std::cout << "\n== step 2: user preference ==\n"
            << "   minimize transmit time at full resolution;\n"
            << "   fall back to lower resolution if transmit > 4 s\n";
  adapt::PreferenceList preferences = examples::viz_preferences();

  std::cout << "\n== step 3: run 12 images while resources degrade ==\n"
            << "   t=6s  bandwidth 500 -> 50 KBps\n"
            << "   t=25s client CPU 100% -> 40%\n\n";
  viz::ResourceSchedule schedule;
  schedule.link_bandwidth = {{6.0, 50e3}};
  schedule.client_cpu = {{.at = 25.0, .cpu_share = 0.4}};

  viz::SessionResult result =
      viz::run_adaptive_session(setup, db, preferences, schedule);

  std::cout << "initial configuration: " << result.initial_config.key()
            << "\n";
  for (const auto& event : result.adaptations) {
    std::cout << "t=" << util::TextTable::num(event.time, 2) << "s: "
              << event.from.key() << " -> " << event.to.key() << "\n";
  }
  std::cout << '\n';

  util::TextTable table({"image", "start (s)", "transmit (s)",
                         "response (s)", "level", "config at end"});
  for (const auto& img : result.images) {
    table.add_row({util::TextTable::num(img.image_id + 1, 0),
                   util::TextTable::num(img.start_time, 2),
                   util::TextTable::num(img.transmit_time, 2),
                   util::TextTable::num(img.avg_response, 3),
                   util::TextTable::num(img.resolution, 0),
                   img.final_config});
  }
  table.print(std::cout);
  std::cout << "\ntotal session time: "
            << util::TextTable::num(result.total_time, 1) << " s, "
            << result.adaptations.size() << " adaptations\n";
  return 0;
}
