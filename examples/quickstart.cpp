// Quickstart: make a tiny application tunable and let the framework
// configure and adapt it.
//
// The application is a "renderer" with one knob: quality in {1, 2, 3}.
// Higher quality costs more CPU per frame.  We
//   1. declare the tunability specification (knobs, metrics, resources),
//   2. build its performance database by *running it in the testbed* at
//      several CPU shares (profile-based modeling),
//   3. ask the scheduler to configure it for the current resources, and
//   4. let the monitoring agent trigger re-configuration when the CPU
//      share changes at run time.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "adapt/controller.hpp"
#include "examples/specs.hpp"
#include "perfdb/driver.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "util/table.hpp"

using namespace avf;

namespace {

constexpr double kSpeed = 450e6;          // ops/s of our simulated host
constexpr double kOpsPerQuality = 90e6;   // CPU cost of one frame per level
constexpr int kFrames = 20;

// Step 1 — the tunability specification (what the paper's annotations
// declare) — is shared with the avf_lint tool: examples::renderer_spec().

// ---------------------------------------------------------------------
// 2. One profiling run: execute a few frames in a sandboxed testbed with
//    the requested CPU share and measure the metrics.
// ---------------------------------------------------------------------
tunable::QosVector profile_run(const tunable::ConfigPoint& config,
                               const perfdb::ResourcePoint& at) {
  sim::Simulator sim;
  sim::Host host(sim, "testbed", kSpeed, 64u << 20);
  sandbox::Sandbox::Options opts;
  opts.cpu_share = at[0];
  sandbox::Sandbox box(host, "renderer", opts);

  double frame_time = 0.0;
  auto body = [&]() -> sim::Task<> {
    double start = sim.now();
    for (int f = 0; f < 5; ++f) {
      co_await box.compute(kOpsPerQuality * config.get("quality"));
    }
    frame_time = (sim.now() - start) / 5.0;
  };
  sim.spawn(body());
  sim.run();

  tunable::QosVector q;
  q.set("frame_time", frame_time);
  q.set("quality", config.get("quality"));
  return q;
}

}  // namespace

int main() {
  tunable::AppSpec spec = examples::renderer_spec();

  std::cout << "== profiling the renderer in the virtual testbed ==\n";
  perfdb::ProfilingDriver driver(profile_run);
  perfdb::PerfDatabase db =
      driver.profile(spec, {{0.1, 0.25, 0.5, 0.75, 1.0}});
  std::cout << "performance database: " << db.size() << " samples for "
            << db.configs().size() << " configurations\n\n";

  // User preferences, in decreasing order (paper §6): first, the best
  // quality whose frame time stays under 500 ms; if no quality can meet
  // that, just keep frames as fast as possible.
  adapt::PreferenceList preferences = examples::renderer_preferences();

  // ---------------------------------------------------------------------
  // 3 + 4. Run the application; CPU share drops mid-run, the monitoring
  // agent notices, the scheduler picks a lighter configuration, and the
  // steering agent installs it at the next frame boundary.
  // ---------------------------------------------------------------------
  sim::Simulator sim;
  sim::Host host(sim, "laptop", kSpeed, 64u << 20);
  sandbox::Sandbox::Options opts;
  opts.cpu_share = 0.9;
  sandbox::Sandbox box(host, "renderer", opts);

  adapt::ResourceScheduler scheduler(db, preferences);
  adapt::MonitoringAgent monitor(sim, spec.resource_axes());
  tunable::ConfigPoint initial = scheduler.select({0.9})->config;
  adapt::SteeringAgent steering(spec, initial);
  adapt::AdaptationController controller(sim, scheduler, monitor, steering);
  controller.configure({0.9});
  controller.start();

  util::TextTable table({"frame", "t (s)", "quality", "frame time (s)"});
  auto app = [&]() -> sim::Task<> {
    for (int frame = 0; frame < kFrames; ++frame) {
      double t0 = sim.now();
      int quality = steering.active().get("quality");
      co_await box.compute(kOpsPerQuality * quality);
      double dt = sim.now() - t0;
      // The app's own instrumentation feeds the monitoring agent.
      monitor.observe("cpu_share",
                      kOpsPerQuality * quality / (kSpeed * dt));
      table.add_row({util::TextTable::num(frame, 0),
                     util::TextTable::num(sim.now(), 2),
                     util::TextTable::num(quality, 0),
                     util::TextTable::num(dt, 3)});
      steering.apply_pending();  // frame boundary = reconfiguration point
    }
    controller.stop();
  };
  sim.spawn(app());
  // Competing load arrives at t=2: our share drops to 30%.
  sim.schedule(2.0, [&] { box.set_cpu_share(0.3); });
  sim.run();

  std::cout << "initial configuration: " << initial.key() << "\n";
  for (const auto& event : controller.adaptations()) {
    std::cout << "t=" << util::TextTable::num(event.time, 2) << "s: adapted "
              << event.from.key() << " -> " << event.to.key() << "\n";
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nThe renderer started at quality "
            << initial.get("quality")
            << " and degraded automatically when the CPU share dropped —\n"
            << "no scheduling logic in the application itself.\n";
  return 0;
}
