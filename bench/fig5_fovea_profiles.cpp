// Figure 5: performance-database profiles — (a) image transmission time and
// (b) response time, for fovea sizes dR in {80,160,320} as the CPU share
// varies (c = LZW, l = 4, bandwidth fixed at 500 KBps).
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

namespace {

using namespace avf;

void print_metric(const perfdb::PerfDatabase& db, const std::string& metric,
                  const char* caption, const char* csv_name) {
  std::cout << caption << "\n";
  util::TextTable table(
      {"cpu share %", "dR=80", "dR=160", "dR=320"});
  for (double share : db.grid_values(bench::viz_config(80, 1, 4),
                                     "cpu_share")) {
    std::vector<std::string> row{util::TextTable::num(share * 100, 0)};
    for (int dR : {80, 160, 320}) {
      auto q = db.predict(bench::viz_config(dR, 1, 4), {share, 500e3});
      row.push_back(util::TextTable::num(q->get(metric), 3));
    }
    table.add_row(row);
  }
  bench::emit_table(table, csv_name);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::figure_header("Figure 5",
                       "transmit/response time vs CPU share for different "
                       "fovea sizes (LZW, level 4, 500 KBps)");
  const perfdb::PerfDatabase& db = bench::figure_database();

  print_metric(db, "transmit_time", "(a) image transmission time (s)",
               "fig5a_transmit");
  print_metric(db, "response_time", "(b) average response time (s)",
               "fig5b_response");

  // Shape checks from the paper's discussion of Figure 5.
  auto at = [&](int dR, double share, const char* metric) {
    return db.predict(bench::viz_config(dR, 1, 4), {share, 500e3})
        ->get(metric);
  };
  bool transmit_shrinks =
      at(320, 0.4, "transmit_time") < at(80, 0.4, "transmit_time");
  bool response_grows =
      at(320, 0.4, "response_time") > at(80, 0.4, "response_time");
  bool cpu_helps = at(160, 1.0, "transmit_time") <
                   at(160, 0.1, "transmit_time");
  bench::note(util::format(
      "Shape checks (paper): larger fovea -> smaller transmit time [{}]; "
      "larger fovea -> larger response time [{}]; more CPU -> both drop "
      "[{}].",
      transmit_shrinks ? "OK" : "FAIL", response_grows ? "OK" : "FAIL",
      cpu_helps ? "OK" : "FAIL"));
  return transmit_shrinks && response_grows && cpu_helps ? 0 : 1;
}
