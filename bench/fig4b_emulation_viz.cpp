// Figure 4(b): testbed emulation fidelity for the full active visualization
// application (memory, network, and CPU effects together).  The client runs
// (i) on simulated "physical" PII-333 / PPro-200 hosts and (ii) on a
// PII-450 under a quantized CPU share equal to the speed ratio; in all
// cases the server is a PII-450 whose network bandwidth the testbed limits
// to 1 MBps (paper §5.1).  Crucially — and this is the paper's point — the
// emulated times are far below "PII-450 time stretched by 1/share", because
// network waiting does not scale with CPU speed.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

namespace {

using namespace avf;

constexpr double kBaseSpeed = 450e6;

viz::WorldSetup base_setup() {
  viz::WorldSetup setup = bench::standard_setup();
  setup.image_count = 1;
  setup.server_net_bps = 1e6;  // paper: server testbed limited to 1 MBps
  return setup;
}

double run_physical(double client_speed) {
  viz::WorldSetup setup = base_setup();
  setup.client_speed = client_speed;
  return viz::run_fixed_session(setup, bench::viz_config(160, 1, 4))
      .images[0]
      .transmit_time;
}

double run_testbed(double share) {
  viz::WorldSetup setup = base_setup();
  setup.client_cpu_share = share;
  setup.enforcement = sandbox::CpuEnforcement::kQuantized;
  return viz::run_fixed_session(setup, bench::viz_config(160, 1, 4))
      .images[0]
      .transmit_time;
}

}  // namespace

int main() {
  bench::figure_header("Figure 4(b)",
                       "active visualization: physical machines vs testbed "
                       "emulation (server limited to 1 MBps)");

  double base_time = run_physical(kBaseSpeed);
  util::TextTable table({"machine", "physical (s)", "testbed (s)", "diff %",
                         "naive stretch (s)"});
  double max_diff = 0.0;
  for (auto [name, speed] : {std::pair{"PII-450", 450e6},
                             std::pair{"PII-333", 333e6},
                             std::pair{"PPro-200", 200e6}}) {
    double physical = run_physical(speed);
    double emulated = run_testbed(speed / kBaseSpeed);
    double diff = 100.0 * std::abs(emulated - physical) / physical;
    max_diff = std::max(max_diff, diff);
    table.add_row({name, util::TextTable::num(physical, 3),
                   util::TextTable::num(emulated, 3),
                   util::TextTable::num(diff, 2),
                   util::TextTable::num(base_time * kBaseSpeed / speed, 3)});
  }
  avf::bench::emit_table(table, "fig4b_emulation");
  bench::note(util::format(
      "\nShape check (paper): testbed matches the physical machine within a "
      "few percent (max diff here {:.2f}%; paper saw up to 8%), and both are "
      "far below the naive CPU-stretch estimate because network time does "
      "not scale with CPU share.", max_diff));
  return 0;
}
