// Micro-benchmarks: real codec throughput and ratio on representative
// wavelet payloads (google-benchmark).
#include <benchmark/benchmark.h>

#define AVF_BENCH_HAS_GBENCH
#include "bench/common.hpp"
#include "codec/codec.hpp"
#include "viz/world.hpp"
#include "wavelet/progressive.hpp"

namespace {

using namespace avf;

const codec::Bytes& payload() {
  static const codec::Bytes data = [] {
    const wavelet::Image& img = viz::cached_image(512, 99);
    wavelet::Pyramid pyr(img, 4);
    wavelet::ProgressiveEncoder enc(pyr, 16);
    return enc.encode_region({256, 256, 512}, 4);
  }();
  return data;
}

void BM_Compress(benchmark::State& state) {
  const codec::Codec& c =
      codec::codec_for(static_cast<codec::CodecId>(state.range(0)));
  std::size_t out_size = 0;
  for (auto _ : state) {
    codec::Bytes compressed = c.compress(payload());
    out_size = compressed.size();
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          payload().size());
  state.counters["ratio"] =
      static_cast<double>(out_size) / static_cast<double>(payload().size());
}
BENCHMARK(BM_Compress)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Decompress(benchmark::State& state) {
  const codec::Codec& c =
      codec::codec_for(static_cast<codec::CodecId>(state.range(0)));
  codec::Bytes compressed = c.compress(payload());
  for (auto _ : state) {
    codec::Bytes out = c.decompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          payload().size());
}
BENCHMARK(BM_Decompress)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return avf::bench::run_benchmarks_with_json(argc, argv, "micro_codec");
}
