// Shared helpers for the figure-reproduction benchmarks.  Each fig*
// executable regenerates one figure of the paper's evaluation: it prints
// the same series the figure plots, plus the shape checks that must hold
// (who wins, where the crossover falls).
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "util/table.hpp"
#include "viz/world.hpp"

namespace avf::bench {

/// Print a figure series and also save it as CSV under ./bench_results/
/// (for re-plotting the figures with any external tool).
inline void emit_table(const util::TextTable& table, const std::string& name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    std::ofstream out("bench_results/" + name + ".csv");
    if (out) table.save_csv(out);
  }
}

inline void figure_header(const std::string& id, const std::string& caption) {
  std::cout << "\n=== " << id << " — " << caption << " ===\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// The performance database used by fig5/6/7 (built on first use, cached in
/// ./.avf_viz_perfdb.csv across bench binaries).
inline const perfdb::PerfDatabase& figure_database() {
  return viz::standard_viz_database();
}

/// Standard full-scale world (paper §7.1: two PII-450s, 100 Mbps Ethernet,
/// ten 1024x1024 images).
inline viz::WorldSetup standard_setup() {
  viz::WorldSetup setup;
  return setup;
}

inline tunable::ConfigPoint viz_config(int dR, int c, int l) {
  tunable::ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

}  // namespace avf::bench
