// Shared helpers for the figure-reproduction benchmarks.  Each fig*
// executable regenerates one figure of the paper's evaluation: it prints
// the same series the figure plots, plus the shape checks that must hold
// (who wins, where the crossover falls).
//
// Micro-benchmarks additionally emit machine-readable results as
// bench_results/BENCH_<name>.json (one file per binary: benchmark name,
// per-case wall_ns, thread count, and the git revision the binary was
// built from) so runs can be diffed across commits without scraping
// console output.  Define AVF_BENCH_HAS_GBENCH before including this
// header to get the google-benchmark capture reporter.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/table.hpp"
#include "viz/world.hpp"

#ifndef AVF_GIT_REV
#define AVF_GIT_REV "unknown"
#endif

namespace avf::bench {

/// Print a figure series and also save it as CSV under ./bench_results/
/// (for re-plotting the figures with any external tool).
inline void emit_table(const util::TextTable& table, const std::string& name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    std::ofstream out("bench_results/" + name + ".csv");
    if (out) table.save_csv(out);
  }
}

inline void figure_header(const std::string& id, const std::string& caption) {
  std::cout << "\n=== " << id << " — " << caption << " ===\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// The performance database used by fig5/6/7 (built on first use, cached in
/// ./.avf_viz_perfdb.csv across bench binaries).
inline const perfdb::PerfDatabase& figure_database() {
  return viz::standard_viz_database();
}

/// Standard full-scale world (paper §7.1: two PII-450s, 100 Mbps Ethernet,
/// ten 1024x1024 images).
inline viz::WorldSetup standard_setup() {
  viz::WorldSetup setup;
  return setup;
}

inline tunable::ConfigPoint viz_config(int dR, int c, int l) {
  tunable::ConfigPoint p;
  p.set("dR", dR);
  p.set("c", c);
  p.set("l", l);
  return p;
}

// --- machine-readable benchmark output ----------------------------------

/// One measured case of a micro-benchmark.
struct JsonBenchCase {
  std::string label;                      ///< e.g. "BM_Compress/1"
  double wall_ns = 0.0;                   ///< wall time per iteration
  int threads = 1;                        ///< thread count for this case
  std::map<std::string, double> extra;    ///< user counters (ratio, ...)
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

/// Write bench_results/BENCH_<name>.json.  Returns false (after a warning)
/// if the directory or file cannot be created; benchmarks still succeed.
inline bool write_bench_json(const std::string& name,
                             const std::vector<JsonBenchCase>& cases) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/BENCH_" + name + ".json");
  if (!out) {
    std::cerr << "warning: could not write BENCH_" << name << ".json\n";
    return false;
  }
  // Build the whole document first and write it in one shot: a result file
  // is either complete or absent, never a torn prefix from a crash or an
  // interleaved writer.
  std::ostringstream doc;
  doc.precision(17);
  doc << "{\n  \"name\": \"" << json_escape(name) << "\",\n"
      << "  \"git_rev\": \"" << json_escape(AVF_GIT_REV) << "\",\n"
      << "  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const JsonBenchCase& c = cases[i];
    doc << (i ? ",\n" : "\n") << "    {\"label\": \"" << json_escape(c.label)
        << "\", \"wall_ns\": " << c.wall_ns
        << ", \"threads\": " << c.threads;
    for (const auto& [key, value] : c.extra) {
      doc << ", \"" << json_escape(key) << "\": " << value;
    }
    doc << "}";
  }
  doc << "\n  ]\n}\n";
  out << doc.str();
  return static_cast<bool>(out);
}

/// Append the tile store's memory/dedup counters to a JSON case, so the
/// per-commit result files track resident bytes and dedup payoff alongside
/// wall time (bytes_resident / bytes_deduped / unique_entries /
/// pinned_entries are the headline fields; the rest attribute them).
inline void add_tile_store_counters(JsonBenchCase& c,
                                    const viz::TileStore& store) {
  c.extra["bytes_resident"] = static_cast<double>(store.bytes_resident());
  c.extra["bytes_deduped"] = static_cast<double>(store.bytes_deduped());
  c.extra["unique_entries"] = static_cast<double>(store.unique_entries());
  c.extra["pinned_entries"] = static_cast<double>(store.pinned_entries());
  c.extra["store_hits"] = static_cast<double>(store.hits());
  c.extra["store_misses"] = static_cast<double>(store.misses());
  c.extra["store_evictions"] = static_cast<double>(store.evictions());
  c.extra["store_cross_origin_hits"] =
      static_cast<double>(store.cross_origin_hits());
  c.extra["store_collisions"] = static_cast<double>(store.collisions());
}

#ifdef AVF_BENCH_HAS_GBENCH
/// Console reporter that additionally captures every run for JSON output.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(std::vector<JsonBenchCase>* sink)
      : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      JsonBenchCase c;
      c.label = run.benchmark_name();
      if (run.iterations > 0) {
        c.wall_ns = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      }
      c.threads = run.threads;
      for (const auto& [key, counter] : run.counters) {
        c.extra[key] = counter.value;
      }
      sink_->push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<JsonBenchCase>* sink_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: run all registered
/// benchmarks with console output plus BENCH_<name>.json capture.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::vector<JsonBenchCase> cases;
  JsonCaptureReporter reporter(&cases);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  write_bench_json(name, cases);
  return 0;
}
#endif  // AVF_BENCH_HAS_GBENCH

}  // namespace avf::bench
