// Ablation: interpolated vs nearest-neighbor database lookup.  The paper's
// prototype "does not do any interpolation on the performance profiles"
// (§7.1) and selects by discrete match; this ablation quantifies what
// interpolation buys at off-grid resource points (DESIGN.md §6).
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Ablation: interpolation vs nearest lookup",
                       "prediction error at off-grid resource points");
  const perfdb::PerfDatabase& db = bench::figure_database();

  // Off-grid probe points (midpoints of the profiling grid).
  struct Probe {
    double cpu;
    double bw;
  };
  std::vector<Probe> probes{{0.3, 75e3},   {0.5, 175e3}, {0.7, 375e3},
                            {0.95, 750e3}, {0.15, 37.5e3}};
  tunable::ConfigPoint config = bench::viz_config(160, 1, 4);

  util::TextTable table({"cpu %", "bw (KBps)", "actual (s)", "interp (s)",
                         "nearest (s)", "interp err %", "nearest err %"});
  double sum_interp = 0.0, sum_nearest = 0.0;
  for (const Probe& p : probes) {
    viz::WorldSetup setup = bench::standard_setup();
    setup.image_count = 1;
    setup.client_cpu_share = p.cpu;
    setup.link_bandwidth_bps = p.bw;
    double actual = viz::run_fixed_session(setup, config)
                        .images[0]
                        .transmit_time;
    double interp = db.predict(config, {p.cpu, p.bw},
                               perfdb::Lookup::kInterpolate)
                        ->get("transmit_time");
    double nearest = db.predict(config, {p.cpu, p.bw},
                                perfdb::Lookup::kNearest)
                         ->get("transmit_time");
    double ei = 100.0 * std::abs(interp - actual) / actual;
    double en = 100.0 * std::abs(nearest - actual) / actual;
    sum_interp += ei;
    sum_nearest += en;
    table.add_row({util::TextTable::num(p.cpu * 100, 0),
                   util::TextTable::num(p.bw / 1e3, 1),
                   util::TextTable::num(actual, 3),
                   util::TextTable::num(interp, 3),
                   util::TextTable::num(nearest, 3),
                   util::TextTable::num(ei, 2), util::TextTable::num(en, 2)});
  }
  table.print(std::cout);
  bench::note(util::format(
      "\nmean error: interpolation {:.2f}%, nearest-neighbor {:.2f}% — "
      "interpolation markedly tightens predictions between grid points, "
      "supporting the paper's §7.1 improvement note.",
      sum_interp / probes.size(), sum_nearest / probes.size()));
  return 0;
}
