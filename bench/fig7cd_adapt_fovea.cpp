// Figures 7(c)/(d) / Experiment 3: adapting the fovea size to CPU
// conditions.  Ten images; client CPU share 90% dropping to 40% at
// t = 40 s; user preference: minimize transmission time while keeping the
// average response time of user interactions below a bound.  The bound is
// derived from the database exactly as the paper's 1-second bound relates
// to its Figure 5 profiles: the largest fovea satisfies it at 90% CPU but
// violates it at 40%, forcing a switch to a smaller fovea.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Figures 7(c)/(d) / Experiment 3",
                       "changing fovea size when CPU share drops 90% -> 40% "
                       "at t = 40 s");
  const perfdb::PerfDatabase& db = bench::figure_database();

  viz::WorldSetup setup = bench::standard_setup();
  setup.client_cpu_share = 0.9;
  setup.link_bandwidth_bps = 500e3;
  viz::ResourceSchedule schedule;
  schedule.client_cpu = {{.at = 40.0, .cpu_share = 0.4}};

  // Find the largest dR whose response time fits at 90% but not at 40%.
  double resp_fast = db.predict(bench::viz_config(320, 1, 4), {0.9, 500e3})
                         ->get("response_time");
  double resp_slow = db.predict(bench::viz_config(320, 1, 4), {0.4, 500e3})
                         ->get("response_time");
  double bound = 0.5 * (resp_fast + resp_slow);
  bench::note(util::format(
      "response bound: {:.2f} s (fovea 320 responds in {:.2f} s at 90% CPU, "
      "{:.2f} s at 40%; paper used 1 s against 1.4 s)",
      bound, resp_fast, resp_slow));

  adapt::UserPreference pref = adapt::minimize("transmit_time");
  pref.constraints.push_back({.metric = "response_time", .max = bound});
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});

  viz::SessionResult adaptive =
      viz::run_adaptive_session(setup, db, {pref}, schedule);
  tunable::ConfigPoint config_big = adaptive.initial_config;
  tunable::ConfigPoint config_small =
      adaptive.adaptations.empty() ? config_big.with("dR", 80)
                                   : adaptive.adaptations.back().to;
  viz::SessionResult static_big =
      viz::run_fixed_session(setup, config_big, schedule);
  viz::SessionResult static_small =
      viz::run_fixed_session(setup, config_small, schedule);

  for (const auto& event : adaptive.adaptations) {
    bench::note(util::format("  t={:.2f}s: adapt {} -> {}", event.time,
                             event.from.key(), event.to.key()));
  }

  std::cout << "\n(c) average response time per image (s)\n";
  util::TextTable resp({"image", "adaptive",
                        util::format("static {}", config_big.key()),
                        util::format("static {}", config_small.key())});
  for (std::size_t i = 0; i < adaptive.images.size(); ++i) {
    resp.add_row({util::TextTable::num(static_cast<double>(i + 1), 0),
                  util::TextTable::num(adaptive.images[i].avg_response, 3),
                  util::TextTable::num(static_big.images[i].avg_response, 3),
                  util::TextTable::num(static_small.images[i].avg_response,
                                       3)});
  }
  avf::bench::emit_table(resp, "fig7c_response");

  std::cout << "\n(d) image transmission time (s)\n";
  util::TextTable trans({"image", "adaptive",
                         util::format("static {}", config_big.key()),
                         util::format("static {}", config_small.key())});
  for (std::size_t i = 0; i < adaptive.images.size(); ++i) {
    trans.add_row(
        {util::TextTable::num(static_cast<double>(i + 1), 0),
         util::TextTable::num(adaptive.images[i].transmit_time, 2),
         util::TextTable::num(static_big.images[i].transmit_time, 2),
         util::TextTable::num(static_small.images[i].transmit_time, 2)});
  }
  avf::bench::emit_table(trans, "fig7d_transmit");

  bool shrank = !adaptive.adaptations.empty() &&
                adaptive.adaptations[0].to.get("dR") <
                    adaptive.initial_config.get("dR");
  int late_violations = 0;
  for (const auto& img : adaptive.images) {
    if (img.start_time > 45.0 && img.avg_response > bound) {
      ++late_violations;
    }
  }
  bench::note(util::format(
      "\nShape checks (paper): scheduler switches to a smaller fovea after "
      "the CPU drop [{}]; responses after the switch respect the bound "
      "[{} late violations].",
      shrank ? "OK" : "FAIL", late_violations));
  return shrank && late_violations <= 1 ? 0 : 1;
}
