// Ablation: scheduler switch hysteresis under oscillating resources.  The
// paper's §7.5 caveat: "smaller variations would require better algorithms
// ... so as to not degrade overall performance by unnecessary adaptations."
// Bandwidth oscillates around the compression crossover; without hysteresis
// the scheduler thrashes between codecs.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Ablation: switch hysteresis",
                       "bandwidth oscillating across the codec crossover "
                       "(55 <-> 100 KBps every 12 s)");
  const perfdb::PerfDatabase& db = bench::figure_database();

  viz::WorldSetup setup = bench::standard_setup();
  setup.image_count = 8;
  setup.link_bandwidth_bps = 100e3;
  viz::ResourceSchedule schedule;
  for (int i = 0; i < 12; ++i) {
    schedule.link_bandwidth.push_back(
        {12.0 * (i + 1), i % 2 == 0 ? 55e3 : 100e3});
  }
  adapt::UserPreference pref = adapt::minimize("transmit_time");
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});

  util::TextTable table({"hysteresis", "adaptations", "total (s)"});
  for (double h : {0.0, 0.05, 0.15, 0.40}) {
    viz::AdaptiveOptions options;
    options.scheduler.switch_hysteresis = h;
    viz::SessionResult result =
        viz::run_adaptive_session(setup, db, {pref}, schedule, options);
    table.add_row(
        {util::TextTable::num(h, 2),
         util::TextTable::num(
             static_cast<double>(result.adaptations.size()), 0),
         util::TextTable::num(result.total_time, 1)});
  }
  table.print(std::cout);
  bench::note(
      "\nHigher hysteresis suppresses thrashing near the crossover; the "
      "configurations are nearly equivalent there, so fewer switches should "
      "not cost total time.");
  return 0;
}
