// Micro-benchmark: content-addressed tile-store dedup across a duplicate
// catalog.
//
// The server stores 8 *distinct* pyramid objects carrying identical
// content (WorldSetup::unique_image_contents = 1) and 64 concurrent
// sessions foveate them.  The old pointer-keyed RegionEncodeCache pinned
// one entry set per pyramid, so this catalog cost 8x one image's payload
// bytes; the content-addressed store resolves all 8 images to one entry
// set.  Measured contracts:
//
//  1. Dedup payoff: resident store bytes under identity keying
//     (Options::identity_keyed_regions, the old behavior) divided by
//     resident bytes under content keying >= AVF_VIZ_MIN_DEDUP (default
//     4; 0 disables).  With 8 duplicate images the expected ratio is ~8x
//     on region payloads, diluted only by the (already content-keyed)
//     compressed chunks.
//  2. Cross-image sharing really happened: the content run's
//     cross_origin_hits counter (hits whose entry was inserted under a
//     different image id) is > 0.
//  3. Cache transparency: content keying, identity keying, and the
//     verify_on_hit run all produce the *same* result fingerprint, and the
//     cached payload bytes match a no-cache baseline byte for byte.
//  4. Determinism: the content run replayed fingerprints identically.
//  5. Collision freedom: a verify_on_hit run (rebuild + byte-compare every
//     hit) over the full workload records zero collisions.
//  6. Memory scales with unique content: the 64-session/8-image resident
//     bytes stay within AVF_VIZ_MAX_RESIDENT_MULT (default 2x) of a
//     1-session/1-image reference world.
//
// Per-case JSON (bench_results/BENCH_micro_viz_dedup.json): wall_ns,
// simulated events, and the tile-store memory/dedup counters
// (bytes_resident, bytes_deduped, unique_entries, pinned_entries, ...).
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "viz/caches.hpp"
#include "viz/tile_store.hpp"
#include "viz/world.hpp"

namespace {

using namespace avf;
using viz::CompressedChunkCache;
using viz::CompressedSizeCache;
using viz::MultiSessionResult;
using viz::RegionEncodeCache;
using viz::TileStore;
using viz::VizClient;
using viz::VizWorld;
using viz::WorldSetup;

constexpr int kSessions = 64;
constexpr int kImages = 8;

WorldSetup dedup_setup(int sessions) {
  WorldSetup setup;
  setup.client_count = sessions;
  setup.image_size = 256;
  setup.levels = 3;
  setup.image_count = kImages;
  // Every image id carries the same content, as its own freshly decomposed
  // pyramid object — pointer identity cannot dedup this catalog.
  setup.unique_image_contents = 1;
  // Same under-subscription caps as micro_viz_scale: the aggregate stays
  // below link capacity so per-flow rates are stable across client counts.
  setup.client_net_bps = setup.link_bandwidth_bps / 256.0;
  setup.server_net_bps = setup.link_bandwidth_bps / 256.0;
  return setup;
}

struct RunStats {
  MultiSessionResult result;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
};

RunStats run_world(const WorldSetup& setup, const tunable::ConfigPoint& cfg) {
  auto start = std::chrono::steady_clock::now();

  VizWorld world(setup);
  sim::Simulator& sim = world.simulator();
  for (int i = 0; i < setup.client_count; ++i) {
    world.make_client_at(static_cast<std::size_t>(i), cfg);
  }
  world.spawn_server_loops();
  auto driver = [](VizClient* client, int images) -> sim::Task<> {
    co_await client->fetch_images(0, images);
    co_await client->shutdown_server();
  };
  for (int i = 0; i < setup.client_count; ++i) {
    sim.spawn(driver(&world.client(static_cast<std::size_t>(i)),
                     setup.image_count));
  }
  sim.run();

  auto stop = std::chrono::steady_clock::now();
  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.events = sim.events_processed();
  stats.result.total_time = sim.now();
  for (int i = 0; i < setup.client_count; ++i) {
    viz::SessionResult session;
    session.images = world.client(static_cast<std::size_t>(i)).history();
    session.initial_config = cfg;
    session.total_time = sim.now();
    stats.result.clients.push_back(std::move(session));
  }
  return stats;
}

bool payloads_match(const MultiSessionResult& a, const MultiSessionResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ia = a.clients[i].images;
    const auto& ib = b.clients[i].images;
    if (ia.size() != ib.size()) return false;
    for (std::size_t j = 0; j < ia.size(); ++j) {
      if (ia[j].payload_hash != ib[j].payload_hash) return false;
      if (ia[j].wire_bytes != ib[j].wire_bytes) return false;
    }
  }
  return true;
}

double env_or(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) return std::atof(env);
  return fallback;
}

bench::JsonBenchCase make_case(const std::string& label, int sessions,
                               const RunStats& run, const TileStore& store) {
  bench::JsonBenchCase c;
  c.label = label;
  c.wall_ns = run.wall_ms * 1e6;
  c.extra["sessions"] = sessions;
  c.extra["images"] = kImages;
  c.extra["events"] = static_cast<double>(run.events);
  c.extra["sim_time_s"] = run.result.total_time;
  bench::add_tile_store_counters(c, store);
  return c;
}

}  // namespace

int main() {
  const tunable::ConfigPoint cfg = bench::viz_config(160, 1, 3);
  bool ok = true;
  std::vector<bench::JsonBenchCase> cases;

  std::printf("micro_viz_dedup: %d sessions x %d duplicate 256px images, "
              "dR=160 lzw l=3\n", kSessions, kImages);
  std::printf("%-18s %12s %12s %14s %10s %8s\n", "case", "wall_ms", "events",
              "resident_B", "entries", "xo_hits");

  auto report = [](const char* label, const RunStats& run,
                   const TileStore& store) {
    std::printf("%-18s %12.2f %12" PRIu64 " %14zu %10zu %8" PRIu64 "\n",
                label, run.wall_ms, run.events, store.bytes_resident(),
                store.unique_entries(), store.cross_origin_hits());
  };

  // -- content-addressed run (the new behavior) ---------------------------
  WorldSetup content_setup = dedup_setup(kSessions);
  CompressedSizeCache content_sizes;
  TileStore content_store;
  RegionEncodeCache content_regions(content_store);
  CompressedChunkCache content_chunks(content_store);
  content_setup.server_options.size_cache = &content_sizes;
  content_setup.server_options.region_cache = &content_regions;
  content_setup.server_options.chunk_cache = &content_chunks;

  RunStats content = run_world(content_setup, cfg);
  std::uint64_t content_fp = viz::result_fingerprint(content.result);
  std::size_t content_resident = content_store.bytes_resident();
  std::uint64_t cross_hits = content_store.cross_origin_hits();
  report("content", content, content_store);
  cases.push_back(make_case("content", kSessions, content, content_store));

  if (cross_hits == 0) {
    std::fprintf(stderr,
                 "FAIL: no cross-image store hits — the catalog's duplicate "
                 "images did not share entries\n");
    ok = false;
  }

  // -- determinism: identical world replayed ------------------------------
  {
    CompressedSizeCache sizes;
    TileStore store;
    RegionEncodeCache regions(store);
    CompressedChunkCache chunks(store);
    WorldSetup setup = dedup_setup(kSessions);
    setup.server_options.size_cache = &sizes;
    setup.server_options.region_cache = &regions;
    setup.server_options.chunk_cache = &chunks;
    RunStats replay = run_world(setup, cfg);
    bool deterministic = viz::result_fingerprint(replay.result) == content_fp;
    report("replay", replay, store);
    bench::JsonBenchCase c = make_case("replay", kSessions, replay, store);
    c.extra["deterministic"] = deterministic ? 1.0 : 0.0;
    cases.push_back(std::move(c));
    if (!deterministic) {
      std::fprintf(stderr, "FAIL: replayed content run not deterministic\n");
      ok = false;
    }
  }

  // -- identity-keyed baseline (the old pin-per-pyramid behavior) ---------
  std::size_t identity_resident = 0;
  {
    CompressedSizeCache sizes;
    TileStore store;
    RegionEncodeCache regions(store);
    CompressedChunkCache chunks(store);
    WorldSetup setup = dedup_setup(kSessions);
    setup.server_options.size_cache = &sizes;
    setup.server_options.region_cache = &regions;
    setup.server_options.chunk_cache = &chunks;
    setup.server_options.identity_keyed_regions = true;
    RunStats identity = run_world(setup, cfg);
    identity_resident = store.bytes_resident();
    report("identity", identity, store);
    bool same_trace = viz::result_fingerprint(identity.result) == content_fp;
    bench::JsonBenchCase c = make_case("identity", kSessions, identity, store);
    c.extra["trace_matches_content"] = same_trace ? 1.0 : 0.0;
    cases.push_back(std::move(c));
    if (!same_trace) {
      std::fprintf(stderr,
                   "FAIL: identity-keyed baseline changed the trace (caches "
                   "must save cycles only)\n");
      ok = false;
    }
  }

  // -- verify_on_hit run: every hit rebuilt and byte-compared -------------
  {
    CompressedSizeCache sizes;
    TileStore::Options opts;
    opts.verify_on_hit = true;
    TileStore store(opts);
    RegionEncodeCache regions(store);
    CompressedChunkCache chunks(store);
    WorldSetup setup = dedup_setup(kSessions);
    setup.server_options.size_cache = &sizes;
    setup.server_options.region_cache = &regions;
    setup.server_options.chunk_cache = &chunks;
    RunStats verified = run_world(setup, cfg);
    report("verified", verified, store);
    bool same_trace = viz::result_fingerprint(verified.result) == content_fp;
    bench::JsonBenchCase c = make_case("verified", kSessions, verified, store);
    c.extra["trace_matches_content"] = same_trace ? 1.0 : 0.0;
    cases.push_back(std::move(c));
    if (store.collisions() != 0) {
      std::fprintf(stderr,
                   "FAIL: verify_on_hit caught %" PRIu64
                   " hash collisions in the dedup workload\n",
                   store.collisions());
      ok = false;
    }
    if (!same_trace) {
      std::fprintf(stderr, "FAIL: verify_on_hit run changed the trace\n");
      ok = false;
    }
  }

  // -- no-cache baseline: byte-identical payloads -------------------------
  {
    WorldSetup naive = dedup_setup(kSessions);
    naive.server_options.size_cache = nullptr;
    naive.server_options.region_cache = nullptr;
    naive.server_options.chunk_cache = nullptr;
    RunStats nocache = run_world(naive, cfg);
    std::printf("%-18s %12.2f %12" PRIu64 "\n", "nocache", nocache.wall_ms,
                nocache.events);
    bench::JsonBenchCase c;
    c.label = "nocache";
    c.wall_ns = nocache.wall_ms * 1e6;
    c.extra["sessions"] = kSessions;
    c.extra["events"] = static_cast<double>(nocache.events);
    bool bytes_equal = payloads_match(content.result, nocache.result);
    c.extra["payloads_match_cached"] = bytes_equal ? 1.0 : 0.0;
    cases.push_back(std::move(c));
    if (!bytes_equal) {
      std::fprintf(stderr,
                   "FAIL: cached and uncached runs disagree on payload "
                   "bytes\n");
      ok = false;
    }
  }

  // -- 1-session/1-image reference: one image's unique payload ------------
  std::size_t reference_resident = 0;
  {
    CompressedSizeCache sizes;
    TileStore store;
    RegionEncodeCache regions(store);
    CompressedChunkCache chunks(store);
    WorldSetup setup = dedup_setup(1);
    setup.image_count = 1;
    setup.server_options.size_cache = &sizes;
    setup.server_options.region_cache = &regions;
    setup.server_options.chunk_cache = &chunks;
    RunStats reference = run_world(setup, cfg);
    reference_resident = store.bytes_resident();
    report("reference-1x1", reference, store);
    cases.push_back(make_case("reference-1x1", 1, reference, store));
  }

  // -- gates ---------------------------------------------------------------
  double dedup_ratio = content_resident > 0
                           ? static_cast<double>(identity_resident) /
                                 static_cast<double>(content_resident)
                           : 0.0;
  double resident_mult =
      reference_resident > 0
          ? static_cast<double>(content_resident) /
                static_cast<double>(reference_resident)
          : 0.0;
  double min_dedup = env_or("AVF_VIZ_MIN_DEDUP", 4.0);
  double max_mult = env_or("AVF_VIZ_MAX_RESIDENT_MULT", 2.0);
  std::printf("dedup ratio (identity/content resident bytes): %.2fx "
              "(floor %.2fx)\n", dedup_ratio, min_dedup);
  std::printf("resident vs 1x1 reference: %.2fx (ceiling %.2fx); "
              "cross-image hits: %" PRIu64 "\n",
              resident_mult, max_mult, cross_hits);
  if (min_dedup > 0.0 && dedup_ratio < min_dedup) {
    std::fprintf(stderr, "FAIL: dedup ratio %.2fx < floor %.2fx\n",
                 dedup_ratio, min_dedup);
    ok = false;
  }
  if (max_mult > 0.0 && resident_mult > max_mult) {
    std::fprintf(stderr,
                 "FAIL: 64-session resident bytes are %.2fx the one-image "
                 "reference (ceiling %.2fx — memory must scale with unique "
                 "content)\n",
                 resident_mult, max_mult);
    ok = false;
  }

  bench::JsonBenchCase summary;
  summary.label = "summary";
  summary.extra["dedup_ratio"] = dedup_ratio;
  summary.extra["resident_mult_vs_reference"] = resident_mult;
  summary.extra["bytes_resident_content"] =
      static_cast<double>(content_resident);
  summary.extra["bytes_resident_identity"] =
      static_cast<double>(identity_resident);
  summary.extra["bytes_resident_reference"] =
      static_cast<double>(reference_resident);
  summary.extra["cross_origin_hits"] = static_cast<double>(cross_hits);
  cases.push_back(std::move(summary));

  bench::write_bench_json("micro_viz_dedup", cases);
  if (!ok) return 1;
  std::printf("dedup contracts hold: content-addressed store shares tiles "
              "across images and sessions\n");
  return 0;
}
