// Micro-benchmark: multi-client Active Visualization scaling.
//
// Sweeps 1 -> 128 concurrent clients against one multi-session server, then
// scale-sweeps 1k and 10k sessions, and verifies the contracts of the scale
// work:
//
//  1. Determinism: for a fixed seed every client count — 10k included —
//     yields a bit-identical golden trace (run twice, compare
//     result_fingerprint).
//  2. Cache transparency + payoff: the shared encode/compression caches
//     change no payload byte (per-image payload_hash equality vs the
//     no-cache baseline at 64 clients) while cutting host wall time by
//     >= 4x (AVF_VIZ_MIN_SPEEDUP overrides; 0 disables the gate).
//  3. Incremental fluid sharing: the link's bandwidth reallocation skips
//     flows whose rate did not change — counter-asserted, not assumed.
//  4. Sublinear reallocation at scale: wall-clock per client at 1k/10k stays
//     within AVF_VIZ_MAX_WALL_RATIO (default 4x; 0 disables) of the
//     128-client cost, full water-filling passes stay (sub)linear in N
//     (they were ~N^2/2 before the sparse engine), and the sparse
//     incremental engine is counter-proven to have engaged.
//  5. Churn soak: staggered session waves arriving/departing under a
//     testkit link-flap fault schedule replay bit-identically.
//
// AVF_VIZ_SCALE_CLIENTS selects the scale sweep counts (comma-separated;
// default "1024,10000"; empty/0 disables — CI's perf-smoke job runs 1024
// and leaves 10000 to the nightly/manual lane).
//
// Per-case JSON (bench_results/BENCH_micro_viz_scale.json): wall_ns,
// simulated events, cache hit/miss counters, mean per-client response
// time, and the fluid reallocation counters for the link and the two CPUs.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "testkit/fault_injector.hpp"
#include "viz/caches.hpp"
#include "viz/world.hpp"

namespace {

using namespace avf;
using viz::CompressedChunkCache;
using viz::CompressedSizeCache;
using viz::MultiSessionResult;
using viz::RegionEncodeCache;
using viz::TileStore;
using viz::VizClient;
using viz::VizWorld;
using viz::WorldSetup;

WorldSetup scale_setup(int clients) {
  WorldSetup setup;
  setup.client_count = clients;
  setup.image_size = 256;
  setup.levels = 3;
  setup.image_count = 2;
  // Cap every endpoint well below the link so the aggregate stays
  // under-subscribed at 128 clients (128 * cap = 0.5 * capacity per
  // direction): the regime where the incremental fluid fast path engages.
  // Beyond 256 clients the link over-subscribes and the sparse incremental
  // engine takes over from the dense fast path.
  setup.client_net_bps = setup.link_bandwidth_bps / 256.0;
  setup.server_net_bps = setup.link_bandwidth_bps / 256.0;
  return setup;
}

struct FluidCounters {
  std::uint64_t full_reallocs = 0;
  std::uint64_t fast_reallocs = 0;
  std::uint64_t rate_rescales = 0;
  std::uint64_t rate_keeps = 0;
  std::uint64_t flows_skipped = 0;
  std::uint64_t sparse_activations = 0;
  std::uint64_t sparse_events = 0;
  std::uint64_t boundary_crossings = 0;
  std::uint64_t level_updates = 0;
  std::uint64_t noop_slot_reallocs = 0;

  void absorb(const sim::FluidResource& r) {
    full_reallocs += r.full_reallocs();
    fast_reallocs += r.fast_reallocs();
    rate_rescales += r.rate_rescales();
    rate_keeps += r.rate_keeps();
    flows_skipped += r.flows_skipped();
    sparse_activations += r.sparse_activations();
    sparse_events += r.sparse_events();
    boundary_crossings += r.boundary_crossings();
    level_updates += r.level_updates();
    noop_slot_reallocs += r.noop_slot_reallocs();
  }
};

struct RunStats {
  MultiSessionResult result;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double avg_response = 0.0;  // mean over clients and images
  FluidCounters fluid;        // link, forward + backward
  FluidCounters cpu;          // client host + server host CPUs
};

/// Session arrival shape: `waves` groups started `wave_gap` seconds apart
/// (waves=1 keeps the historical everyone-at-t0 shape), optionally under a
/// testkit fault schedule against the shared link.
struct ChurnPlan {
  int waves = 1;
  double wave_gap = 0.0;
  const testkit::FaultSchedule* faults = nullptr;
  std::uint64_t fault_seed = 1;
};

/// One full multi-client session with direct world access (the library
/// runner hides the world, and we need simulator/link/cache counters).
RunStats run_world(const WorldSetup& setup, const tunable::ConfigPoint& cfg,
                   const ChurnPlan& plan = {}) {
  auto start = std::chrono::steady_clock::now();

  VizWorld world(setup);
  sim::Simulator& sim = world.simulator();
  for (int i = 0; i < setup.client_count; ++i) {
    world.make_client_at(static_cast<std::size_t>(i), cfg);
  }
  world.spawn_server_loops();

  std::unique_ptr<testkit::FaultInjector> injector;
  if (plan.faults != nullptr) {
    testkit::FaultInjector::Targets targets;
    targets.sim = &sim;
    targets.link = &world.link();
    injector = std::make_unique<testkit::FaultInjector>(targets,
                                                        plan.fault_seed);
    injector->arm(*plan.faults);
  }

  auto driver = [](sim::Simulator* s, VizClient* client, int images,
                   double start_at) -> sim::Task<> {
    if (start_at > 0.0) co_await s->delay(start_at);
    co_await client->fetch_images(0, images);
    co_await client->shutdown_server();
  };
  int waves = plan.waves > 0 ? plan.waves : 1;
  int per_wave = (setup.client_count + waves - 1) / waves;
  for (int i = 0; i < setup.client_count; ++i) {
    double start_at = plan.wave_gap * (i / per_wave);
    sim.spawn(driver(&sim, &world.client(static_cast<std::size_t>(i)),
                     setup.image_count, start_at));
  }
  sim.run();

  auto stop = std::chrono::steady_clock::now();

  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.events = sim.events_processed();
  stats.result.total_time = sim.now();
  double response_sum = 0.0;
  std::size_t response_n = 0;
  for (int i = 0; i < setup.client_count; ++i) {
    viz::SessionResult session;
    session.images = world.client(static_cast<std::size_t>(i)).history();
    session.initial_config = cfg;
    session.total_time = sim.now();
    for (const auto& image : session.images) {
      response_sum += image.avg_response;
      ++response_n;
    }
    stats.result.clients.push_back(std::move(session));
  }
  stats.avg_response = response_n ? response_sum / response_n : 0.0;
  stats.fluid.absorb(world.link().forward());
  stats.fluid.absorb(world.link().backward());
  stats.cpu.absorb(world.client_box(0).host().cpu());
  stats.cpu.absorb(world.server_box().host().cpu());
  return stats;
}

bool payloads_match(const MultiSessionResult& a, const MultiSessionResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ia = a.clients[i].images;
    const auto& ib = b.clients[i].images;
    if (ia.size() != ib.size()) return false;
    for (std::size_t j = 0; j < ia.size(); ++j) {
      if (ia[j].payload_hash != ib[j].payload_hash) return false;
      if (ia[j].wire_bytes != ib[j].wire_bytes) return false;
    }
  }
  return true;
}

double env_or(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) return std::atof(env);
  return fallback;
}

std::vector<int> scale_counts_from_env() {
  std::vector<int> counts = {1024, 10000};
  const char* env = std::getenv("AVF_VIZ_SCALE_CLIENTS");
  if (env == nullptr) return counts;
  counts.clear();
  std::string spec(env);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int n = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (n > 0) counts.push_back(n);
    pos = comma + 1;
  }
  return counts;
}

bench::JsonBenchCase make_case(const std::string& label, int clients,
                               const RunStats& run, bool deterministic) {
  bench::JsonBenchCase c;
  c.label = label;
  c.wall_ns = run.wall_ms * 1e6;
  c.extra["clients"] = clients;
  c.extra["events"] = static_cast<double>(run.events);
  c.extra["sim_time_s"] = run.result.total_time;
  c.extra["avg_response_s"] = run.avg_response;
  c.extra["deterministic"] = deterministic ? 1.0 : 0.0;
  c.extra["wall_ms_per_client"] = run.wall_ms / clients;
  c.extra["fluid_full_reallocs"] = static_cast<double>(run.fluid.full_reallocs);
  c.extra["fluid_fast_reallocs"] = static_cast<double>(run.fluid.fast_reallocs);
  c.extra["fluid_rate_rescales"] = static_cast<double>(run.fluid.rate_rescales);
  c.extra["fluid_rate_keeps"] = static_cast<double>(run.fluid.rate_keeps);
  c.extra["fluid_flows_skipped"] =
      static_cast<double>(run.fluid.flows_skipped);
  c.extra["fluid_sparse_activations"] =
      static_cast<double>(run.fluid.sparse_activations);
  c.extra["fluid_sparse_events"] =
      static_cast<double>(run.fluid.sparse_events);
  c.extra["fluid_boundary_crossings"] =
      static_cast<double>(run.fluid.boundary_crossings);
  c.extra["fluid_level_updates"] =
      static_cast<double>(run.fluid.level_updates);
  c.extra["fluid_noop_slot_reallocs"] =
      static_cast<double>(run.fluid.noop_slot_reallocs);
  c.extra["cpu_full_reallocs"] = static_cast<double>(run.cpu.full_reallocs);
  c.extra["cpu_sparse_activations"] =
      static_cast<double>(run.cpu.sparse_activations);
  c.extra["cpu_sparse_events"] = static_cast<double>(run.cpu.sparse_events);
  return c;
}

}  // namespace

int main() {
  const tunable::ConfigPoint cfg = bench::viz_config(160, 1, 3);
  const std::vector<int> client_counts = {1, 4, 16, 64, 128};
  constexpr int kGateClients = 64;
  constexpr int kReferenceClients = 128;  // wall-per-client baseline

  std::printf("micro_viz_scale: 256px images x2, dR=160 lzw l=3\n");
  std::printf("%-22s %12s %12s %10s %10s %10s\n", "case", "wall_ms",
              "events", "rgn_hit%", "skips", "resp_ms");

  bool ok = true;
  std::vector<bench::JsonBenchCase> cases;
  double cached_64_ms = 0.0;
  double wall_per_client_128 = 0.0;
  MultiSessionResult cached_64;

  for (int n : client_counts) {
    // Fresh local caches per run: counters attributable, no cross-run
    // reuse inflating the numbers.
    CompressedSizeCache size_cache;
    TileStore store;  // one content-addressed store behind both layers
    RegionEncodeCache region_cache(store);
    CompressedChunkCache chunk_cache(store);
    WorldSetup setup = scale_setup(n);
    setup.server_options.size_cache = &size_cache;
    setup.server_options.region_cache = &region_cache;
    setup.server_options.chunk_cache = &chunk_cache;

    RunStats run = run_world(setup, cfg);
    std::uint64_t fp = viz::result_fingerprint(run.result);

    // Determinism: the identical world replayed must fingerprint equal.
    RunStats replay = run_world(setup, cfg);
    bool deterministic = viz::result_fingerprint(replay.result) == fp;
    ok = ok && deterministic;

    if (n == kGateClients) {
      cached_64_ms = run.wall_ms;
      cached_64 = run.result;
    }
    if (n == kReferenceClients) {
      wall_per_client_128 = run.wall_ms / n;
    }

    double region_total =
        static_cast<double>(region_cache.hits() + region_cache.misses());
    double hit_pct =
        region_total > 0.0 ? 100.0 * region_cache.hits() / region_total : 0.0;
    std::printf("%-22s %12.2f %12" PRIu64 " %9.1f%% %10" PRIu64 " %10.2f %s\n",
                ("cached/clients=" + std::to_string(n)).c_str(), run.wall_ms,
                run.events, hit_pct, run.fluid.flows_skipped,
                run.avg_response * 1e3, deterministic ? "ok" : "NONDET");

    bench::JsonBenchCase c =
        make_case("cached/clients=" + std::to_string(n), n, run,
                  deterministic);
    c.extra["region_hits"] = static_cast<double>(region_cache.hits());
    c.extra["region_misses"] = static_cast<double>(region_cache.misses());
    c.extra["region_evictions"] = static_cast<double>(region_cache.evictions());
    c.extra["size_hits"] = static_cast<double>(size_cache.hits());
    c.extra["size_misses"] = static_cast<double>(size_cache.misses());
    c.extra["chunk_hits"] = static_cast<double>(chunk_cache.hits());
    bench::add_tile_store_counters(c, store);
    cases.push_back(std::move(c));

    // The incremental-fluid contract: under-subscribed capped flows must
    // be skipped, not rescaled, when other flows come and go.
    if (n == kGateClients && run.fluid.flows_skipped == 0) {
      std::fprintf(stderr,
                   "FAIL: fluid reallocation skipped no flows at %d clients "
                   "(incremental path not engaged)\n",
                   n);
      ok = false;
    }
  }

  // No-cache baseline at the gate point: every request re-serializes its
  // region and really compresses (and clients really decompress).
  {
    WorldSetup naive = scale_setup(kGateClients);
    naive.server_options.size_cache = nullptr;
    naive.server_options.region_cache = nullptr;
    naive.server_options.chunk_cache = nullptr;
    RunStats run = run_world(naive, cfg);
    std::printf("%-22s %12.2f %12" PRIu64 "\n", "naive/clients=64",
                run.wall_ms, run.events);

    bench::JsonBenchCase c;
    c.label = "naive/clients=" + std::to_string(kGateClients);
    c.wall_ns = run.wall_ms * 1e6;
    c.extra["clients"] = kGateClients;
    c.extra["events"] = static_cast<double>(run.events);
    c.extra["avg_response_s"] = run.avg_response;

    double speedup = cached_64_ms > 0.0 ? run.wall_ms / cached_64_ms : 0.0;
    c.extra["cached_speedup"] = speedup;
    bool bytes_equal = payloads_match(cached_64, run.result);
    c.extra["payloads_match_cached"] = bytes_equal ? 1.0 : 0.0;
    cases.push_back(std::move(c));

    if (!bytes_equal) {
      std::fprintf(stderr,
                   "FAIL: cached and uncached 64-client runs disagree on "
                   "payload bytes\n");
      ok = false;
    }
    // Throughput floor, overridable for instrumented builds
    // (AVF_VIZ_MIN_SPEEDUP=0 disables).
    double min_speedup = env_or("AVF_VIZ_MIN_SPEEDUP", 4.0);
    std::printf("cached 64-client speedup over naive: %.2fx (floor %.2fx)\n",
                speedup, min_speedup);
    if (speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: 64-client cached speedup %.2fx < %.2fx\n",
                   speedup, min_speedup);
      ok = false;
    }
  }

  // -- scale sweep: 1k / 10k deterministic sessions -----------------------
  const std::vector<int> scale_counts = scale_counts_from_env();
  const double max_wall_ratio = env_or("AVF_VIZ_MAX_WALL_RATIO", 4.0);
  int churn_clients = 0;
  for (int n : scale_counts) {
    CompressedSizeCache size_cache;
    TileStore store;  // one content-addressed store behind both layers
    RegionEncodeCache region_cache(store);
    CompressedChunkCache chunk_cache(store);
    WorldSetup setup = scale_setup(n);
    setup.server_options.size_cache = &size_cache;
    setup.server_options.region_cache = &region_cache;
    setup.server_options.chunk_cache = &chunk_cache;

    RunStats run = run_world(setup, cfg);
    std::uint64_t fp = viz::result_fingerprint(run.result);
    RunStats replay = run_world(setup, cfg);
    bool deterministic = viz::result_fingerprint(replay.result) == fp;
    ok = ok && deterministic;
    churn_clients = std::max(churn_clients, n);

    double per_client = run.wall_ms / n;
    double ratio =
        wall_per_client_128 > 0.0 ? per_client / wall_per_client_128 : 0.0;
    std::printf("%-22s %12.2f %12" PRIu64 " wall/client %.3fms (%.2fx of "
                "128-client) %s\n",
                ("scale/clients=" + std::to_string(n)).c_str(), run.wall_ms,
                run.events, per_client, ratio,
                deterministic ? "ok" : "NONDET");

    bench::JsonBenchCase c =
        make_case("scale/clients=" + std::to_string(n), n, run,
                  deterministic);
    c.extra["wall_ratio_vs_128"] = ratio;
    bench::add_tile_store_counters(c, store);
    cases.push_back(std::move(c));

    if (!deterministic) {
      std::fprintf(stderr, "FAIL: %d-client scale sweep not deterministic\n",
                   n);
    }
    // Near-linear wall clock: per-client cost bounded relative to the
    // 128-client world (a quadratic core would blow through this within
    // one octave).  AVF_VIZ_MAX_WALL_RATIO=0 disables for slow machines.
    if (max_wall_ratio > 0.0 && ratio > max_wall_ratio) {
      std::fprintf(stderr,
                   "FAIL: %d-client wall per client %.3fms is %.2fx the "
                   "128-client cost (limit %.2fx)\n",
                   n, per_client, ratio, max_wall_ratio);
      ok = false;
    }
    // Sublinear reallocation: full water-filling passes only happen in the
    // dense regime (population <= sparse threshold), so their count is flat
    // in N — a constant ceiling, not merely linear.  Before this engine the
    // count was ~N^2/2-ish (8384 at just 128 clients).
    constexpr std::uint64_t kMaxFullReallocs = 4096;
    if (run.fluid.full_reallocs > kMaxFullReallocs) {
      std::fprintf(stderr,
                   "FAIL: %" PRIu64 " full link reallocations at %d clients "
                   "(limit %" PRIu64 ", expected flat in N)\n",
                   run.fluid.full_reallocs, n, kMaxFullReallocs);
      ok = false;
    }
    // The sparse incremental engine must actually carry the load at scale.
    if (run.cpu.sparse_events + run.fluid.sparse_events == 0) {
      std::fprintf(stderr,
                   "FAIL: sparse fluid engine never engaged at %d clients\n",
                   n);
      ok = false;
    }
  }

  // -- churn soak: staggered waves + link-flap fault schedule -------------
  if (churn_clients > 0) {
    int n = std::min(churn_clients, 1024);
    CompressedSizeCache size_cache;
    TileStore store;  // one content-addressed store behind both layers
    RegionEncodeCache region_cache(store);
    CompressedChunkCache chunk_cache(store);
    WorldSetup setup = scale_setup(n);
    setup.server_options.size_cache = &size_cache;
    setup.server_options.region_cache = &region_cache;
    setup.server_options.chunk_cache = &chunk_cache;

    testkit::FaultSchedule faults;
    faults.faults.push_back(
        {testkit::FaultKind::kLinkFlap, /*at=*/2.0, /*until=*/20.0,
         /*value=*/setup.link_bandwidth_bps / 8.0, /*period=*/0.5});
    ChurnPlan plan;
    plan.waves = 8;
    plan.wave_gap = 5.0;
    plan.faults = &faults;
    plan.fault_seed = 1;

    RunStats run = run_world(setup, cfg, plan);
    std::uint64_t fp = viz::result_fingerprint(run.result);
    RunStats replay = run_world(setup, cfg, plan);
    bool deterministic = viz::result_fingerprint(replay.result) == fp;
    ok = ok && deterministic;
    std::printf("%-22s %12.2f %12" PRIu64 " %s\n",
                ("churn/clients=" + std::to_string(n)).c_str(), run.wall_ms,
                run.events, deterministic ? "ok" : "NONDET");
    if (!deterministic) {
      std::fprintf(stderr,
                   "FAIL: churn soak (%d clients, link flap) not "
                   "deterministic\n",
                   n);
    }
    std::size_t incomplete = 0;
    for (const auto& session : run.result.clients) {
      if (session.images.size() !=
          static_cast<std::size_t>(setup.image_count)) {
        ++incomplete;
      }
    }
    if (incomplete > 0) {
      std::fprintf(stderr, "FAIL: %zu churn sessions incomplete\n",
                   incomplete);
      ok = false;
    }
    bench::JsonBenchCase c = make_case(
        "churn/clients=" + std::to_string(n), n, run, deterministic);
    c.extra["churn_waves"] = plan.waves;
    c.extra["churn_wave_gap_s"] = plan.wave_gap;
    bench::add_tile_store_counters(c, store);
    cases.push_back(std::move(c));
  }

  bench::write_bench_json("micro_viz_scale", cases);
  if (!ok) return 1;
  std::printf("all client counts deterministic; caches byte-transparent\n");
  return 0;
}
