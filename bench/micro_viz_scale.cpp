// Micro-benchmark: multi-client Active Visualization scaling.
//
// Sweeps 1 -> 128 concurrent clients against one multi-session server and
// verifies the three contracts of the scale work:
//
//  1. Determinism: for a fixed seed every client count yields a
//     bit-identical golden trace (run twice, compare result_fingerprint).
//  2. Cache transparency + payoff: the shared encode/compression caches
//     change no payload byte (per-image payload_hash equality vs the
//     no-cache baseline at 64 clients) while cutting host wall time by
//     >= 4x (AVF_VIZ_MIN_SPEEDUP overrides; 0 disables the gate).
//  3. Incremental fluid sharing: the link's bandwidth reallocation skips
//     flows whose rate did not change — counter-asserted, not assumed.
//
// Per-case JSON (bench_results/BENCH_micro_viz_scale.json): wall_ns,
// simulated events, cache hit/miss counters, mean per-client response
// time, and the fluid reallocation counters.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "viz/caches.hpp"
#include "viz/world.hpp"

namespace {

using namespace avf;
using viz::CompressedChunkCache;
using viz::CompressedSizeCache;
using viz::MultiSessionResult;
using viz::RegionEncodeCache;
using viz::VizClient;
using viz::VizWorld;
using viz::WorldSetup;

WorldSetup scale_setup(int clients) {
  WorldSetup setup;
  setup.client_count = clients;
  setup.image_size = 256;
  setup.levels = 3;
  setup.image_count = 2;
  // Cap every endpoint well below the link so the aggregate stays
  // under-subscribed at 128 clients (128 * cap = 0.5 * capacity per
  // direction): the regime where the incremental fluid fast path engages.
  setup.client_net_bps = setup.link_bandwidth_bps / 256.0;
  setup.server_net_bps = setup.link_bandwidth_bps / 256.0;
  return setup;
}

struct FluidCounters {
  std::uint64_t full_reallocs = 0;
  std::uint64_t fast_reallocs = 0;
  std::uint64_t rate_rescales = 0;
  std::uint64_t rate_keeps = 0;
  std::uint64_t flows_skipped = 0;
};

struct RunStats {
  MultiSessionResult result;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double avg_response = 0.0;  // mean over clients and images
  FluidCounters fluid;
};

/// One full multi-client session with direct world access (the library
/// runner hides the world, and we need simulator/link/cache counters).
RunStats run_world(const WorldSetup& setup, const tunable::ConfigPoint& cfg) {
  auto start = std::chrono::steady_clock::now();

  VizWorld world(setup);
  sim::Simulator& sim = world.simulator();
  for (int i = 0; i < setup.client_count; ++i) {
    world.make_client_at(static_cast<std::size_t>(i), cfg);
  }
  world.spawn_server_loops();
  auto driver = [](VizClient* client, int images) -> sim::Task<> {
    co_await client->fetch_images(0, images);
    co_await client->shutdown_server();
  };
  for (int i = 0; i < setup.client_count; ++i) {
    sim.spawn(driver(&world.client(static_cast<std::size_t>(i)),
                     setup.image_count));
  }
  sim.run();

  auto stop = std::chrono::steady_clock::now();

  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  stats.events = sim.events_processed();
  stats.result.total_time = sim.now();
  double response_sum = 0.0;
  std::size_t response_n = 0;
  for (int i = 0; i < setup.client_count; ++i) {
    viz::SessionResult session;
    session.images = world.client(static_cast<std::size_t>(i)).history();
    session.initial_config = cfg;
    session.total_time = sim.now();
    for (const auto& image : session.images) {
      response_sum += image.avg_response;
      ++response_n;
    }
    stats.result.clients.push_back(std::move(session));
  }
  stats.avg_response = response_n ? response_sum / response_n : 0.0;
  for (sim::FluidResource* dir :
       {&world.link().forward(), &world.link().backward()}) {
    stats.fluid.full_reallocs += dir->full_reallocs();
    stats.fluid.fast_reallocs += dir->fast_reallocs();
    stats.fluid.rate_rescales += dir->rate_rescales();
    stats.fluid.rate_keeps += dir->rate_keeps();
    stats.fluid.flows_skipped += dir->flows_skipped();
  }
  return stats;
}

bool payloads_match(const MultiSessionResult& a, const MultiSessionResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ia = a.clients[i].images;
    const auto& ib = b.clients[i].images;
    if (ia.size() != ib.size()) return false;
    for (std::size_t j = 0; j < ia.size(); ++j) {
      if (ia[j].payload_hash != ib[j].payload_hash) return false;
      if (ia[j].wire_bytes != ib[j].wire_bytes) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const tunable::ConfigPoint cfg = bench::viz_config(160, 1, 3);
  const std::vector<int> client_counts = {1, 4, 16, 64, 128};
  constexpr int kGateClients = 64;

  std::printf("micro_viz_scale: 256px images x2, dR=160 lzw l=3\n");
  std::printf("%-22s %12s %12s %10s %10s %10s\n", "case", "wall_ms",
              "events", "rgn_hit%", "skips", "resp_ms");

  bool ok = true;
  std::vector<bench::JsonBenchCase> cases;
  double cached_64_ms = 0.0;
  MultiSessionResult cached_64;

  for (int n : client_counts) {
    // Fresh local caches per run: counters attributable, no cross-run
    // reuse inflating the numbers.
    CompressedSizeCache size_cache;
    RegionEncodeCache region_cache;
    CompressedChunkCache chunk_cache;
    WorldSetup setup = scale_setup(n);
    setup.server_options.size_cache = &size_cache;
    setup.server_options.region_cache = &region_cache;
    setup.server_options.chunk_cache = &chunk_cache;

    RunStats run = run_world(setup, cfg);
    std::uint64_t fp = viz::result_fingerprint(run.result);

    // Determinism: the identical world replayed must fingerprint equal.
    RunStats replay = run_world(setup, cfg);
    bool deterministic = viz::result_fingerprint(replay.result) == fp;
    ok = ok && deterministic;

    if (n == kGateClients) {
      cached_64_ms = run.wall_ms;
      cached_64 = run.result;
    }

    double region_total =
        static_cast<double>(region_cache.hits() + region_cache.misses());
    double hit_pct =
        region_total > 0.0 ? 100.0 * region_cache.hits() / region_total : 0.0;
    std::printf("%-22s %12.2f %12" PRIu64 " %9.1f%% %10" PRIu64 " %10.2f %s\n",
                ("cached/clients=" + std::to_string(n)).c_str(), run.wall_ms,
                run.events, hit_pct, run.fluid.flows_skipped,
                run.avg_response * 1e3, deterministic ? "ok" : "NONDET");

    bench::JsonBenchCase c;
    c.label = "cached/clients=" + std::to_string(n);
    c.wall_ns = run.wall_ms * 1e6;
    c.extra["clients"] = n;
    c.extra["events"] = static_cast<double>(run.events);
    c.extra["sim_time_s"] = run.result.total_time;
    c.extra["avg_response_s"] = run.avg_response;
    c.extra["deterministic"] = deterministic ? 1.0 : 0.0;
    c.extra["region_hits"] = static_cast<double>(region_cache.hits());
    c.extra["region_misses"] = static_cast<double>(region_cache.misses());
    c.extra["region_evictions"] = static_cast<double>(region_cache.evictions());
    c.extra["size_hits"] = static_cast<double>(size_cache.hits());
    c.extra["size_misses"] = static_cast<double>(size_cache.misses());
    c.extra["chunk_hits"] = static_cast<double>(chunk_cache.hits());
    c.extra["fluid_full_reallocs"] =
        static_cast<double>(run.fluid.full_reallocs);
    c.extra["fluid_fast_reallocs"] =
        static_cast<double>(run.fluid.fast_reallocs);
    c.extra["fluid_rate_rescales"] =
        static_cast<double>(run.fluid.rate_rescales);
    c.extra["fluid_rate_keeps"] = static_cast<double>(run.fluid.rate_keeps);
    c.extra["fluid_flows_skipped"] =
        static_cast<double>(run.fluid.flows_skipped);
    cases.push_back(std::move(c));

    // The incremental-fluid contract: under-subscribed capped flows must
    // be skipped, not rescaled, when other flows come and go.
    if (n == kGateClients && run.fluid.flows_skipped == 0) {
      std::fprintf(stderr,
                   "FAIL: fluid reallocation skipped no flows at %d clients "
                   "(incremental path not engaged)\n",
                   n);
      ok = false;
    }
  }

  // No-cache baseline at the gate point: every request re-serializes its
  // region and really compresses (and clients really decompress).
  {
    WorldSetup naive = scale_setup(kGateClients);
    naive.server_options.size_cache = nullptr;
    naive.server_options.region_cache = nullptr;
    naive.server_options.chunk_cache = nullptr;
    RunStats run = run_world(naive, cfg);
    std::printf("%-22s %12.2f %12" PRIu64 "\n", "naive/clients=64",
                run.wall_ms, run.events);

    bench::JsonBenchCase c;
    c.label = "naive/clients=" + std::to_string(kGateClients);
    c.wall_ns = run.wall_ms * 1e6;
    c.extra["clients"] = kGateClients;
    c.extra["events"] = static_cast<double>(run.events);
    c.extra["avg_response_s"] = run.avg_response;

    double speedup = cached_64_ms > 0.0 ? run.wall_ms / cached_64_ms : 0.0;
    c.extra["cached_speedup"] = speedup;
    bool bytes_equal = payloads_match(cached_64, run.result);
    c.extra["payloads_match_cached"] = bytes_equal ? 1.0 : 0.0;
    cases.push_back(std::move(c));

    if (!bytes_equal) {
      std::fprintf(stderr,
                   "FAIL: cached and uncached 64-client runs disagree on "
                   "payload bytes\n");
      ok = false;
    }
    // Throughput floor, overridable for instrumented builds
    // (AVF_VIZ_MIN_SPEEDUP=0 disables).
    double min_speedup = 4.0;
    if (const char* env = std::getenv("AVF_VIZ_MIN_SPEEDUP")) {
      min_speedup = std::atof(env);
    }
    std::printf("cached 64-client speedup over naive: %.2fx (floor %.2fx)\n",
                speedup, min_speedup);
    if (speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: 64-client cached speedup %.2fx < %.2fx\n",
                   speedup, min_speedup);
      ok = false;
    }
  }

  bench::write_bench_json("micro_viz_scale", cases);
  if (!ok) return 1;
  std::printf("all client counts deterministic; caches byte-transparent\n");
  return 0;
}
