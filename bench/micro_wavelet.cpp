// Micro-benchmarks: wavelet pyramid construction, reconstruction, and
// progressive tile encoding.
#include <benchmark/benchmark.h>

#define AVF_BENCH_HAS_GBENCH
#include "bench/common.hpp"
#include "viz/world.hpp"
#include "wavelet/haar.hpp"
#include "wavelet/progressive.hpp"

namespace {

using namespace avf;

void BM_PyramidDecompose(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  const wavelet::Image& img = viz::cached_image(size, 7);
  for (auto _ : state) {
    wavelet::Pyramid pyr(img, 4);
    benchmark::DoNotOptimize(pyr.ll().coeffs.data());
  }
  state.SetItemsProcessed(state.iterations() * size * size);
}
BENCHMARK(BM_PyramidDecompose)->Arg(256)->Arg(1024);

void BM_PyramidReconstruct(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  wavelet::Pyramid pyr(viz::cached_image(size, 7), 4);
  for (auto _ : state) {
    wavelet::Image img = pyr.reconstruct(4);
    benchmark::DoNotOptimize(img.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * size * size);
}
BENCHMARK(BM_PyramidReconstruct)->Arg(256)->Arg(1024);

void BM_ProgressiveEncode(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  wavelet::Pyramid pyr(viz::cached_image(size, 7), 4);
  for (auto _ : state) {
    wavelet::ProgressiveEncoder enc(pyr, 16);
    wavelet::Bytes out =
        enc.encode_region({size / 2, size / 2, size}, 4);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ProgressiveEncode)->Arg(256)->Arg(1024);

void BM_ProgressiveDecode(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  wavelet::Pyramid pyr(viz::cached_image(size, 7), 4);
  wavelet::ProgressiveEncoder enc(pyr, 16);
  wavelet::Bytes payload = enc.encode_region({size / 2, size / 2, size}, 4);
  for (auto _ : state) {
    wavelet::ProgressiveDecoder dec(size, size, 4, 16);
    auto result = dec.apply(payload);
    benchmark::DoNotOptimize(result.coefficients);
  }
}
BENCHMARK(BM_ProgressiveDecode)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  return avf::bench::run_benchmarks_with_json(argc, argv, "micro_wavelet");
}
