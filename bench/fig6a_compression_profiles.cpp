// Figure 6(a): image transmission time for the two compression methods as
// network bandwidth varies (CPU fixed at 100%, dR = 160, l = 4).  The
// paper's key feature is the crossover: compression B (Bzip2-class) wins at
// low bandwidth, compression A (LZW) at high bandwidth.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Figure 6(a)",
                       "transmission time vs bandwidth: compression A (LZW) "
                       "vs B (BWT/Bzip2-class)");
  const perfdb::PerfDatabase& db = bench::figure_database();

  util::TextTable table({"bandwidth (KBps)", "A = lzw (s)", "B = bwt (s)",
                         "winner"});
  double low_bw_a = 0, low_bw_b = 0, high_bw_a = 0, high_bw_b = 0;
  auto bws = db.grid_values(bench::viz_config(160, 1, 4), "net_bps");
  for (double bw : bws) {
    double a = db.predict(bench::viz_config(160, 1, 4), {1.0, bw})
                   ->get("transmit_time");
    double b = db.predict(bench::viz_config(160, 2, 4), {1.0, bw})
                   ->get("transmit_time");
    if (bw == bws.front()) {
      low_bw_a = a;
      low_bw_b = b;
    }
    if (bw == bws.back()) {
      high_bw_a = a;
      high_bw_b = b;
    }
    table.add_row({util::TextTable::num(bw / 1e3, 0),
                   util::TextTable::num(a, 3), util::TextTable::num(b, 3),
                   a < b ? "A" : "B"});
  }
  avf::bench::emit_table(table, "fig6a_compression");

  bool crossover = low_bw_b < low_bw_a && high_bw_a < high_bw_b;
  bench::note(util::format(
      "\nShape check (paper): crossover exists — B wins at {} KBps "
      "({:.2f} vs {:.2f} s), A wins at {} KBps ({:.2f} vs {:.2f} s) [{}].",
      bws.front() / 1e3, low_bw_b, low_bw_a, bws.back() / 1e3, high_bw_a,
      high_bw_b, crossover ? "OK" : "FAIL"));
  return crossover ? 0 : 1;
}
