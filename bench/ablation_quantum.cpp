// Ablation: quantized-enforcement quantum size vs emulation accuracy.
// The paper's sandbox flips priorities "every few milliseconds"; this sweep
// shows how enforcement granularity trades event overhead against fidelity
// of the average-share guarantee (DESIGN.md §6).
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "util/table.hpp"

namespace {

using namespace avf;

constexpr double kSpeed = 450e6;
constexpr double kWork = kSpeed * 5.0;

struct Result {
  double measured;
  std::uint64_t events;
};

Result run(double share, double quantum) {
  sim::Simulator sim;
  sim::Host host(sim, "testbed", kSpeed, 128u << 20);
  sandbox::Sandbox::Options opts;
  opts.cpu_share = share;
  opts.cpu_enforcement = sandbox::CpuEnforcement::kQuantized;
  opts.quantum = quantum;
  sandbox::Sandbox box(host, "toy", opts);
  double done = -1.0;
  auto toy = [&]() -> sim::Task<> {
    co_await box.compute(kWork);
    done = sim.now();
  };
  sim.spawn(toy());
  sim.run();
  return {done, sim.events_processed()};
}

}  // namespace

int main() {
  bench::figure_header("Ablation: enforcement quantum",
                       "quantized sandbox accuracy vs quantum size "
                       "(share 40%, 5 s of work)");
  double expected = 5.0 / 0.4;
  util::TextTable table(
      {"quantum (ms)", "measured (s)", "error %", "sim events"});
  for (double q : {0.001, 0.005, 0.010, 0.050, 0.200}) {
    Result r = run(0.4, q);
    table.add_row({util::TextTable::num(q * 1e3, 0),
                   util::TextTable::num(r.measured, 4),
                   util::TextTable::num(
                       100.0 * std::abs(r.measured - expected) / expected, 3),
                   util::TextTable::num(static_cast<double>(r.events), 0)});
  }
  table.print(std::cout);
  bench::note(util::format(
      "\nexpected time at exact 40% share: {:.3f} s.  Smaller quanta track "
      "the share more tightly at the cost of proportionally more "
      "enforcement events — the paper's \"every few milliseconds\" is the "
      "sweet spot.", expected));
  return 0;
}
