// Micro-benchmark: parallel profiling driver scaling and determinism.
//
// Profiles a synthetic application on a thread pool at 1/2/4/hw workers
// and verifies the central contract of the parallel pipeline: the database
// assembled by profile() at ANY thread count is bit-for-bit identical
// (save() bytes, compared via FNV-1a fingerprint) to profile_serial().
// Exits non-zero on a fingerprint mismatch or if 4 workers fail to reach
// 2.5x over 1 worker.
//
// The RunFn emulates a virtual-execution-environment run: each profiling
// run *waits* on the sandboxed application (sleep-bound, ~400us), which is
// exactly the regime the paper's driver lives in — wall time is dominated
// by the testbed, not the coordinator, so worker threads overlap waits and
// the sweep scales with thread count even on a single core.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "perfdb/driver.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace avf;
using perfdb::PerfDatabase;
using perfdb::ProfilingDriver;
using perfdb::ResourcePoint;
using tunable::AppSpec;
using tunable::ConfigPoint;
using tunable::QosVector;

AppSpec make_spec() {
  AppSpec spec("synthetic-parallel");
  spec.space().add_parameter("mode", {0, 1, 2, 3});
  spec.space().add_parameter("level", {0, 1, 2});
  spec.metrics().add("time", tunable::Direction::kLowerBetter);
  spec.metrics().add("quality", tunable::Direction::kHigherBetter);
  spec.add_resource_axis("cpu_share");
  spec.add_resource_axis("net_bps");
  return spec;
}

/// Deterministic analytic model with a knee (so refinement has work to do).
QosVector model(const ConfigPoint& config, const ResourcePoint& at) {
  double cpu = at[0];
  double bw = at[1];
  int mode = config.get("mode");
  int level = config.get("level");
  QosVector q;
  double base = 4.0 / cpu + 2e6 / bw + level;
  if (mode % 2 == 1 && cpu < 0.45) base *= 40.0;  // sharp knee
  q.set("time", base);
  q.set("quality", 1.0 + mode + 0.25 * level);
  return q;
}

constexpr auto kRunWait = std::chrono::microseconds(1000);

ProfilingDriver::RunFn make_run() {
  return [](const ConfigPoint& c, const ResourcePoint& p) {
    std::this_thread::sleep_for(kRunWait);  // the emulated testbed run
    return model(c, p);
  };
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fingerprint(const PerfDatabase& db) {
  std::ostringstream out;
  db.save(out);
  return fnv1a(out.str());
}

}  // namespace

int main() {
  const AppSpec spec = make_spec();
  const std::vector<std::vector<double>> grid = {
      {0.2, 0.4, 0.6, 0.8}, {100e3, 400e3, 700e3, 1000e3}};

  ProfilingDriver::Options base;
  base.refinement_rounds = 1;
  base.sensitivity_threshold = 0.5;
  base.max_suggestions_per_round = 16;

  // Determinism oracle: the reference single-threaded path.
  const std::uint64_t want =
      fingerprint(ProfilingDriver([](const ConfigPoint& c,
                                     const ResourcePoint& p) {
                    return model(c, p);  // no need to sleep for the oracle
                  },
                  base)
                      .profile_serial(spec, grid));

  const std::size_t hw = util::ThreadPool::resolve_threads(0);
  std::vector<std::size_t> sweep = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) sweep.push_back(hw);

  std::printf("micro_driver: 12 configs x 16 grid points, %zu hw threads\n",
              hw);
  std::printf("%-24s %12s %10s %18s\n", "case", "wall_ms", "speedup",
              "fingerprint");

  bool ok = true;
  double wall_1 = 0.0;
  double speedup_4 = 0.0;
  std::vector<bench::JsonBenchCase> cases;
  for (std::size_t threads : sweep) {
    ProfilingDriver::Options options = base;
    options.threads = threads;
    ProfilingDriver driver(make_run(), options);

    auto start = std::chrono::steady_clock::now();
    PerfDatabase db = driver.profile(spec, grid);
    auto stop = std::chrono::steady_clock::now();
    double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (threads == 1) wall_1 = wall_ms;
    double speedup = wall_1 > 0.0 ? wall_1 / wall_ms : 0.0;
    if (threads == 4) speedup_4 = speedup;

    std::uint64_t got = fingerprint(db);
    bool match = got == want;
    ok = ok && match;
    std::printf("%-24s %12.2f %9.2fx   %016" PRIx64 " %s\n",
                ("profile/threads=" + std::to_string(threads)).c_str(),
                wall_ms, speedup, got, match ? "ok" : "MISMATCH");

    bench::JsonBenchCase c;
    c.label = "profile/threads=" + std::to_string(threads);
    c.wall_ns = wall_ms * 1e6;
    c.threads = static_cast<int>(threads);
    c.extra["speedup"] = speedup;
    c.extra["fingerprint_match"] = match ? 1.0 : 0.0;
    cases.push_back(std::move(c));
  }
  bench::write_bench_json("micro_driver", cases);

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: parallel profile() diverged from profile_serial()\n");
    return 1;
  }
  // Scaling floor, overridable for instrumented builds (sanitizers slow
  // the coordinator, not the sleep-bound runs, but heavyweight tools still
  // eat into the overlap): AVF_MIN_SPEEDUP=0 disables the gate.
  double min_speedup = 2.5;
  if (const char* env = std::getenv("AVF_MIN_SPEEDUP")) {
    min_speedup = std::atof(env);
  }
  if (speedup_4 < min_speedup) {
    std::fprintf(stderr, "FAIL: 4-thread speedup %.2fx < %.2fx\n", speedup_4,
                 min_speedup);
    return 1;
  }
  std::printf("all fingerprints identical; 4-thread speedup %.2fx\n",
              speedup_4);
  return 0;
}
