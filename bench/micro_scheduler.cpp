// Micro-benchmarks: full scheduler decisions on a large performance
// database — the per-tick cost of the run-time adaptation loop (paper §6.2).
//
// Three regimes:
//   Select/ColdCache   — every decision at a fresh resource point (the
//                        prediction cache never hits; measures the indexed
//                        fast path end to end, incl. candidate pruning).
//   Select/StableRes   — repeated decisions at the same point, the common
//                        steady-state case; served from the prediction
//                        cache shared by select and select_with_incumbent.
//   SelectWithIncumbent — hysteresis-biased re-decision, which shares the
//                        candidate vector with the fresh selection instead
//                        of re-querying the database for the incumbent.
#include <benchmark/benchmark.h>

#include <vector>

#include "adapt/preferences.hpp"
#include "adapt/scheduler.hpp"
#include "perfdb/database.hpp"

namespace {

using namespace avf;
using adapt::ResourceScheduler;
using adapt::UserPreference;
using perfdb::PerfDatabase;
using tunable::ConfigPoint;

tunable::MetricSchema schema() {
  tunable::MetricSchema s;
  s.add("transmit_time", tunable::Direction::kLowerBetter);
  s.add("response_time", tunable::Direction::kLowerBetter);
  s.add("resolution", tunable::Direction::kHigherBetter);
  return s;
}

PerfDatabase build_db(int configs, int grid) {
  PerfDatabase db({"cpu_share", "net_bps"}, schema());
  for (int c = 0; c < configs; ++c) {
    ConfigPoint config;
    config.set("mode", c);
    for (int i = 0; i < grid; ++i) {
      for (int j = 0; j < grid; ++j) {
        tunable::QosVector q;
        double cpu = (i + 1.0) / grid;
        double bw = (j + 1.0) * 100e3;
        q.set("transmit_time", 10.0 / cpu + 1e6 / bw + 0.01 * c);
        q.set("response_time", 1.0 / cpu);
        q.set("resolution", 4.0 - c % 3);
        db.insert(config, {cpu, bw}, q);
      }
    }
  }
  return db;
}

adapt::PreferenceList preferences() {
  UserPreference strict = adapt::minimize("transmit_time");
  strict.constraints.push_back({.metric = "resolution", .min = 4.0});
  UserPreference fallback = adapt::minimize("transmit_time");
  return {strict, fallback};
}

constexpr int kConfigs = 64;
constexpr int kGrid = 16;

void BM_SelectColdCache(benchmark::State& state) {
  PerfDatabase db = build_db(kConfigs, kGrid);
  ResourceScheduler scheduler(db, preferences());
  double x = 0.0;
  for (auto _ : state) {
    // Shift the point by more than a quantization bucket each iteration so
    // every decision re-runs the indexed prediction for all 64 configs.
    auto decision = scheduler.select({0.30 + x, 275e3 * (1.0 + x)});
    x = x > 0.2 ? 0.0 : x + 1e-4;
    benchmark::DoNotOptimize(decision->predicted);
  }
  state.SetItemsProcessed(state.iterations() * kConfigs);
}
BENCHMARK(BM_SelectColdCache);

void BM_SelectStableResources(benchmark::State& state) {
  PerfDatabase db = build_db(kConfigs, kGrid);
  ResourceScheduler scheduler(db, preferences());
  for (auto _ : state) {
    auto decision = scheduler.select({0.37, 275e3});
    benchmark::DoNotOptimize(decision->predicted);
  }
  state.SetItemsProcessed(state.iterations() * kConfigs);
  auto stats = db.prediction_stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.cache_hits) /
      static_cast<double>(
          stats.cache_hits + stats.cache_misses > 0
              ? stats.cache_hits + stats.cache_misses
              : 1);
}
BENCHMARK(BM_SelectStableResources);

void BM_SelectWithIncumbent(benchmark::State& state) {
  PerfDatabase db = build_db(kConfigs, kGrid);
  ResourceScheduler::Options options;
  options.switch_hysteresis = 0.10;
  ResourceScheduler scheduler(db, preferences(), options);
  ConfigPoint incumbent;
  incumbent.set("mode", 3);
  for (auto _ : state) {
    auto decision = scheduler.select_with_incumbent({0.37, 275e3}, incumbent);
    benchmark::DoNotOptimize(decision->predicted);
  }
  state.SetItemsProcessed(state.iterations() * kConfigs);
}
BENCHMARK(BM_SelectWithIncumbent);

}  // namespace

BENCHMARK_MAIN();
