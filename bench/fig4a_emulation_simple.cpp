// Figure 4(a): the testbed on a fast machine emulates slower physical
// machines.  The same fixed-work application runs (i) on simulated
// "physical" hosts at the paper's three speeds and (ii) on the PII-450
// testbed host under a quantized CPU share equal to the speed ratio.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "util/table.hpp"

namespace {

using namespace avf;

constexpr double kBaseSpeed = 450e6;
constexpr double kWork = kBaseSpeed * 4.0;

double run_physical(double speed) {
  sim::Simulator sim;
  sim::Host host(sim, "physical", speed, 128u << 20);
  sandbox::Sandbox::Options opts;  // unconstrained
  sandbox::Sandbox box(host, "toy", opts);
  double done = -1.0;
  auto toy = [&]() -> sim::Task<> {
    co_await box.compute(kWork);
    done = sim.now();
  };
  sim.spawn(toy());
  sim.run();
  return done;
}

double run_testbed(double share) {
  sim::Simulator sim;
  sim::Host host(sim, "testbed-450", kBaseSpeed, 128u << 20);
  sandbox::Sandbox::Options opts;
  opts.cpu_share = share;
  opts.cpu_enforcement = sandbox::CpuEnforcement::kQuantized;
  sandbox::Sandbox box(host, "toy", opts);
  double done = -1.0;
  auto toy = [&]() -> sim::Task<> {
    co_await box.compute(kWork);
    done = sim.now();
  };
  sim.spawn(toy());
  sim.run();
  return done;
}

}  // namespace

int main() {
  bench::figure_header("Figure 4(a)",
                       "simple application: physical machines vs testbed "
                       "emulation on a PII-450");

  struct Machine {
    const char* name;
    double speed;
  };
  util::TextTable table({"machine", "physical (s)", "testbed (s)", "diff %"});
  for (Machine m : {Machine{"PII-450", 450e6}, Machine{"PII-333", 333e6},
                    Machine{"PPro-200", 200e6}}) {
    double physical = run_physical(m.speed);
    double emulated = run_testbed(m.speed / kBaseSpeed);
    double diff = 100.0 * std::abs(emulated - physical) / physical;
    table.add_row({m.name, util::TextTable::num(physical, 3),
                   util::TextTable::num(emulated, 3),
                   util::TextTable::num(diff, 2)});
  }
  avf::bench::emit_table(table, "fig4a_emulation");
  bench::note(
      "\nShape check (paper): execution times on the testbed are about the "
      "same as on the physical machines.");
  return 0;
}
