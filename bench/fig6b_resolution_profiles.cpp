// Figure 6(b): image transmission time for images of different resolutions
// (levels 3 and 4) as the CPU share varies (LZW, dR = 160, 500 KBps).
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Figure 6(b)",
                       "transmission time vs CPU share for resolution "
                       "levels 3 and 4 (LZW, 500 KBps)");
  const perfdb::PerfDatabase& db = bench::figure_database();

  util::TextTable table(
      {"cpu share %", "level 3 (s)", "level 4 (s)", "ratio"});
  bool ordered = true;
  for (double share :
       db.grid_values(bench::viz_config(160, 1, 4), "cpu_share")) {
    double l3 = db.predict(bench::viz_config(160, 1, 3), {share, 500e3})
                    ->get("transmit_time");
    double l4 = db.predict(bench::viz_config(160, 1, 4), {share, 500e3})
                    ->get("transmit_time");
    ordered = ordered && l3 < l4;
    table.add_row({util::TextTable::num(share * 100, 0),
                   util::TextTable::num(l3, 3), util::TextTable::num(l4, 3),
                   util::TextTable::num(l4 / l3, 2)});
  }
  avf::bench::emit_table(table, "fig6b_resolution");

  double l4_low = db.predict(bench::viz_config(160, 1, 4), {0.1, 500e3})
                      ->get("transmit_time");
  double l4_high = db.predict(bench::viz_config(160, 1, 4), {1.0, 500e3})
                       ->get("transmit_time");
  bool cpu_matters = l4_low > 2.0 * l4_high;
  bench::note(util::format(
      "\nShape checks (paper): lower resolution -> shorter transmission at "
      "every CPU level [{}]; transmission time rises steeply as CPU drops "
      "(level 4: {:.2f} s at 100% vs {:.2f} s at 10%) [{}].",
      ordered ? "OK" : "FAIL", l4_high, l4_low, cpu_matters ? "OK" : "FAIL"));
  return ordered && cpu_matters ? 0 : 1;
}
