// micro_fleet — fleet-scale adaptation hot path.
//
// Runs N adaptive sessions (testkit::run_fleet) under the standard churn
// schedule in two lanes:
//
//   baseline : every session evaluates the candidate set itself and ticks
//              unconditionally (decision cache off, change-driven ticks
//              off) — the per-session pre-optimization behavior;
//   cached   : one shared adapt::DecisionCache across all sessions plus
//              change-driven ticks.
//
// Both lanes run with exact predictions, so their decision traces are
// provably byte-identical; the benchmark *checks* that (decision
// fingerprints must match between lanes and across a repeated cached run)
// and then gates on the speedup: at the largest scale the cached lane must
// be at least AVF_FLEET_MIN_SPEEDUP (default 5, env-overridable) times
// faster.  Exits non-zero when any check fails, so CI can run it as a perf
// smoke test.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "testkit/fleet.hpp"

namespace {

struct LaneRun {
  avf::testkit::FleetResult result;
  double wall_s = 0.0;
};

LaneRun run_lane(int sessions, bool cached) {
  avf::testkit::FleetOptions options;
  options.sessions = sessions;
  options.waves = 10;
  if (cached) {
    options.decision_cache = std::make_shared<avf::adapt::DecisionCache>();
  } else {
    options.controller.change_driven_ticks = false;
  }
  const auto t0 = std::chrono::steady_clock::now();
  LaneRun lane;
  lane.result = avf::testkit::run_fleet(options);
  const auto t1 = std::chrono::steady_clock::now();
  lane.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return lane;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atof(value) : fallback;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  using avf::bench::JsonBenchCase;

  const double min_speedup = env_double("AVF_FLEET_MIN_SPEEDUP", 5.0);
  // The scales to run; the speedup gate applies to the largest one.
  std::vector<int> scales{env_int("AVF_FLEET_SESSIONS_SMALL", 1000),
                          env_int("AVF_FLEET_SESSIONS_LARGE", 10000)};

  avf::bench::figure_header(
      "micro_fleet", "fleet-scale adaptation: shared decision cache + "
                     "change-driven ticks vs per-session baseline");

  // Warm up allocators and static spec/database state outside the timers.
  (void)run_lane(50, true);

  std::vector<JsonBenchCase> cases;
  bool ok = true;
  double gated_speedup = 0.0;

  for (std::size_t i = 0; i < scales.size(); ++i) {
    const int sessions = scales[i];
    const LaneRun baseline = run_lane(sessions, false);
    const LaneRun cached = run_lane(sessions, true);
    const LaneRun cached2 = run_lane(sessions, true);  // determinism witness

    const double speedup = cached.wall_s > 0.0
                               ? baseline.wall_s / cached.wall_s
                               : 0.0;
    const auto& r = cached.result;
    const double hit_rate =
        r.cache.hits + r.cache.misses > 0
            ? static_cast<double>(r.cache.hits) /
                  static_cast<double>(r.cache.hits + r.cache.misses)
            : 0.0;

    std::cout << "sessions=" << sessions
              << "  baseline=" << baseline.wall_s << "s"
              << "  cached=" << cached.wall_s << "s"
              << "  speedup=" << speedup
              << "\n  cache hits=" << r.cache.hits
              << " misses=" << r.cache.misses
              << " hit_rate=" << hit_rate
              << "  ticks_skipped=" << r.ticks_skipped << "/" << r.checks
              << "  adaptations=" << r.adaptations
              << "  fingerprint=" << std::hex << r.decision_fingerprint
              << std::dec << "\n";

    if (cached.result.decision_fingerprint !=
        baseline.result.decision_fingerprint) {
      std::cout << "FAIL: cached and baseline decision fingerprints differ "
                   "at sessions="
                << sessions << "\n";
      ok = false;
    }
    if (cached.result.decision_fingerprint !=
        cached2.result.decision_fingerprint) {
      std::cout << "FAIL: cached run is not deterministic at sessions="
                << sessions << "\n";
      ok = false;
    }
    if (r.cache.hits == 0) {
      std::cout << "FAIL: decision cache recorded no hits\n";
      ok = false;
    }
    if (r.ticks_skipped == 0) {
      std::cout << "FAIL: change-driven ticks skipped nothing\n";
      ok = false;
    }
    if (r.adaptations == 0) {
      std::cout << "FAIL: churn schedule caused no adaptations\n";
      ok = false;
    }
    if (i + 1 == scales.size()) gated_speedup = speedup;

    for (const bool is_cached : {false, true}) {
      const LaneRun& lane = is_cached ? cached : baseline;
      JsonBenchCase c;
      c.label = std::string("BM_Fleet/") + std::to_string(sessions) +
                (is_cached ? "/cached" : "/baseline");
      c.wall_ns = lane.wall_s * 1e9;
      c.extra["sessions"] = sessions;
      c.extra["tasks"] = static_cast<double>(lane.result.tasks);
      c.extra["checks"] = static_cast<double>(lane.result.checks);
      c.extra["ticks_skipped"] =
          static_cast<double>(lane.result.ticks_skipped);
      c.extra["adaptations"] = static_cast<double>(lane.result.adaptations);
      c.extra["cache_hits"] = static_cast<double>(lane.result.cache.hits);
      c.extra["cache_misses"] = static_cast<double>(lane.result.cache.misses);
      c.extra["cache_invalidations"] =
          static_cast<double>(lane.result.cache.invalidations);
      if (is_cached) {
        c.extra["speedup"] = speedup;
        c.extra["hit_rate"] = hit_rate;
      }
      cases.push_back(std::move(c));
    }
  }

  if (gated_speedup < min_speedup) {
    std::cout << "FAIL: speedup " << gated_speedup << "x at "
              << scales.back() << " sessions is below the "
              << min_speedup << "x gate (AVF_FLEET_MIN_SPEEDUP)\n";
    ok = false;
  } else {
    std::cout << "speedup gate: " << gated_speedup << "x >= "
              << min_speedup << "x at " << scales.back() << " sessions\n";
  }

  avf::bench::write_bench_json("micro_fleet", cases);
  std::cout << (ok ? "micro_fleet: OK\n" : "micro_fleet: FAILED\n");
  return ok ? 0 : 1;
}
