// Ablation: sensitivity-driven refinement sampling.  The paper's modeling
// step "performs sensitivity analysis to determine configurations and
// regions of the resource space that require additional samples" (§5).
// Starting from a deliberately coarse grid, each refinement round adds
// samples where metrics change fastest; we measure how prediction error at
// off-grid probe points falls with each round.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "perfdb/driver.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Ablation: sensitivity-driven refinement",
                       "prediction error vs refinement rounds, starting "
                       "from a coarse 3x3 grid");

  viz::WorldSetup base = bench::standard_setup();
  base.image_count = 1;
  tunable::ConfigPoint probe_config = bench::viz_config(160, 1, 4);

  // Ground truth at off-grid probes (actual testbed runs).
  struct Probe {
    double cpu, bw, actual = 0.0;
  };
  std::vector<Probe> probes{{0.2, 60e3}, {0.55, 150e3}, {0.8, 700e3}};
  for (Probe& p : probes) {
    viz::WorldSetup setup = base;
    setup.client_cpu_share = p.cpu;
    setup.link_bandwidth_bps = p.bw;
    p.actual = viz::run_fixed_session(setup, probe_config)
                   .images[0]
                   .transmit_time;
  }

  util::TextTable table(
      {"refinement rounds", "db samples", "mean probe error %"});
  for (int rounds : {0, 1, 2, 4, 6}) {
    perfdb::ProfilingDriver::Options options;
    options.refinement_rounds = rounds;
    options.sensitivity_threshold = 0.2;
    options.max_suggestions_per_round = 96;
    perfdb::ProfilingDriver driver(viz::make_viz_run_fn(base), options);
    perfdb::PerfDatabase db = driver.profile(
        viz::viz_app_spec(), {{0.1, 0.5, 1.0}, {25e3, 250e3, 1000e3}});
    double err_sum = 0.0;
    for (const Probe& p : probes) {
      double predicted = db.predict(probe_config, {p.cpu, p.bw})
                             ->get("transmit_time");
      err_sum += std::abs(predicted - p.actual) / p.actual;
    }
    table.add_row({util::TextTable::num(rounds, 0),
                   util::TextTable::num(static_cast<double>(db.size()), 0),
                   util::TextTable::num(100.0 * err_sum / probes.size(), 2)});
  }
  table.print(std::cout);
  bench::note(
      "\nRefinement concentrates new samples where the profile bends "
      "(low-bandwidth and low-CPU knees), shrinking interpolation error "
      "without re-sampling flat regions.");
  return 0;
}
