// Figure 3(a): the virtual execution environment controls CPU usage as
// specified.  A compute-bound toy application runs under a quantized
// sandbox whose share is scripted 80% -> 40% (t=20s) -> 60% (t=50s); an
// external usage monitor samples utilization in 1-second windows, exactly
// like the NT Performance Monitor trace in the paper.
#include <iostream>

#include "bench/common.hpp"
#include "sandbox/sandbox.hpp"
#include "sandbox/schedule.hpp"
#include "sandbox/usage_monitor.hpp"
#include "sim/host.hpp"
#include "util/table.hpp"

namespace {

using namespace avf;

constexpr double kSpeed = 450e6;

}  // namespace

int main() {
  bench::figure_header("Figure 3(a)",
                       "testbed CPU control: share 80% -> 40% @20s -> 60% @50s");

  sim::Simulator sim;
  sim::Host host(sim, "testbed", kSpeed, 128u << 20);
  sandbox::Sandbox::Options opts;
  opts.cpu_share = 0.8;
  opts.cpu_enforcement = sandbox::CpuEnforcement::kQuantized;
  sandbox::Sandbox box(host, "toy", opts);
  apply_schedule(sim, box,
                 {{.at = 20.0, .cpu_share = 0.4},
                  {.at = 50.0, .cpu_share = 0.6}});

  sandbox::UsageMonitor monitor(sim, host.cpu(), box.owner(), 1.0);
  monitor.start();

  // Compute-bound toy app: enough work to stay busy the whole 70 s.
  auto toy = [&]() -> sim::Task<> {
    co_await box.compute(kSpeed * 70.0);
  };
  sim.spawn(toy());
  sim.run_until(70.0);
  monitor.stop();

  util::TextTable table({"t (s)", "cpu %"});
  for (const auto& sample : monitor.samples()) {
    table.add_row({util::TextTable::num(sample.time, 0),
                   util::TextTable::num(100.0 * sample.utilization, 1)});
  }
  avf::bench::emit_table(table, "fig3a_usage_trace");

  util::TextTable summary({"phase", "configured %", "measured mean %"});
  summary.add_row({"0-20 s", "80",
                   util::TextTable::num(
                       100 * monitor.mean_utilization(0, 20), 2)});
  summary.add_row({"20-50 s", "40",
                   util::TextTable::num(
                       100 * monitor.mean_utilization(20, 50), 2)});
  summary.add_row({"50-70 s", "60",
                   util::TextTable::num(
                       100 * monitor.mean_utilization(50, 70), 2)});
  std::cout << '\n';
  summary.print(std::cout);
  bench::note(
      "\nShape check (paper): each phase's measured utilization tracks the "
      "configured share, with quantization jitter only.");
  return 0;
}
