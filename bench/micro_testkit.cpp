// Micro-benchmarks: fault-injection testkit throughput.  The soak's value
// scales with scenarios-per-second, so the cost of one fully-wired
// 10-simulated-second scenario (network + sandboxes + adaptation loop +
// invariant checkers) is a first-class number.
//
//   Scenario/Quiet      — no faults: baseline harness + app cost.
//   Scenario/Faulted    — a representative seeded schedule (the soak mix).
//   Scenario/NoChecks   — faulted run with invariant checking disabled;
//                         the delta is the price of the checkers.
//   RandomSchedule      — seed -> schedule generation alone.
//   TraceFingerprint    — hashing a recorded trace (per line).
#include <benchmark/benchmark.h>

#include "testkit/scenario.hpp"

namespace {

using namespace avf;

void BM_RandomSchedule(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto schedule = testkit::random_schedule(seed++);
    benchmark::DoNotOptimize(schedule.faults.data());
  }
}
BENCHMARK(BM_RandomSchedule);

void BM_ScenarioQuiet(benchmark::State& state) {
  testkit::ScenarioOptions options;
  std::size_t tasks = 0;
  for (auto _ : state) {
    auto result = testkit::run_scenario(testkit::FaultSchedule{}, options);
    tasks += result.tasks;
    benchmark::DoNotOptimize(result.violations.data());
  }
  state.counters["tasks/run"] =
      static_cast<double>(tasks) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ScenarioQuiet)->Unit(benchmark::kMicrosecond);

void BM_ScenarioFaulted(benchmark::State& state) {
  testkit::ScenarioOptions options;
  options.injector_seed = 42;
  const auto schedule =
      testkit::random_schedule(42, testkit::limits_for(options));
  for (auto _ : state) {
    auto result = testkit::run_scenario(schedule, options);
    benchmark::DoNotOptimize(result.violations.data());
  }
}
BENCHMARK(BM_ScenarioFaulted)->Unit(benchmark::kMicrosecond);

void BM_ScenarioFaultedNoChecks(benchmark::State& state) {
  testkit::ScenarioOptions options;
  options.injector_seed = 42;
  options.check_invariants = false;
  const auto schedule =
      testkit::random_schedule(42, testkit::limits_for(options));
  for (auto _ : state) {
    auto result = testkit::run_scenario(schedule, options);
    benchmark::DoNotOptimize(result.trace);
  }
}
BENCHMARK(BM_ScenarioFaultedNoChecks)->Unit(benchmark::kMicrosecond);

void BM_TraceFingerprint(benchmark::State& state) {
  testkit::ScenarioOptions options;
  options.injector_seed = 42;
  const auto schedule =
      testkit::random_schedule(42, testkit::limits_for(options));
  const auto result = testkit::run_scenario(schedule, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.trace.fingerprint());
  }
  state.counters["lines"] = static_cast<double>(result.trace.size());
}
BENCHMARK(BM_TraceFingerprint);

}  // namespace

BENCHMARK_MAIN();
