// Micro-benchmarks: performance-database insert and prediction cost (the
// scheduler consults the database on every adaptation check).
#include <benchmark/benchmark.h>

#include "perfdb/database.hpp"

namespace {

using namespace avf;
using perfdb::PerfDatabase;
using tunable::ConfigPoint;

tunable::MetricSchema schema() {
  tunable::MetricSchema s;
  s.add("transmit_time", tunable::Direction::kLowerBetter);
  s.add("response_time", tunable::Direction::kLowerBetter);
  s.add("resolution", tunable::Direction::kHigherBetter);
  return s;
}

PerfDatabase build_db(int configs, int grid) {
  PerfDatabase db({"cpu_share", "net_bps"}, schema());
  for (int c = 0; c < configs; ++c) {
    ConfigPoint config;
    config.set("mode", c);
    for (int i = 0; i < grid; ++i) {
      for (int j = 0; j < grid; ++j) {
        tunable::QosVector q;
        double cpu = (i + 1.0) / grid;
        double bw = (j + 1.0) * 100e3;
        q.set("transmit_time", 10.0 / cpu + 1e6 / bw);
        q.set("response_time", 1.0 / cpu);
        q.set("resolution", 4.0);
        db.insert(config, {cpu, bw}, q);
      }
    }
  }
  return db;
}

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    PerfDatabase db = build_db(static_cast<int>(state.range(0)), 6);
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 36);
}
BENCHMARK(BM_Insert)->Arg(18);

void BM_PredictInterpolate(benchmark::State& state) {
  PerfDatabase db = build_db(18, 6);
  ConfigPoint config;
  config.set("mode", 7);
  double x = 0.0;
  for (auto _ : state) {
    auto q = db.predict(config, {0.37 + x * 1e-9, 275e3},
                        perfdb::Lookup::kInterpolate);
    x += 1.0;
    benchmark::DoNotOptimize(q->get("transmit_time"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictInterpolate);

void BM_PredictNearest(benchmark::State& state) {
  PerfDatabase db = build_db(18, 6);
  ConfigPoint config;
  config.set("mode", 7);
  for (auto _ : state) {
    auto q = db.predict(config, {0.37, 275e3}, perfdb::Lookup::kNearest);
    benchmark::DoNotOptimize(q->get("transmit_time"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictNearest);

void BM_FullSchedulerScan(benchmark::State& state) {
  // Cost of predicting every config at one resource point — what the
  // scheduler pays per adaptation decision.
  PerfDatabase db = build_db(18, 6);
  for (auto _ : state) {
    double best = 1e300;
    for (const ConfigPoint& c : db.configs()) {
      auto q = db.predict(c, {0.37, 275e3});
      best = std::min(best, q->get("transmit_time"));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * 18);
}
BENCHMARK(BM_FullSchedulerScan);

}  // namespace

BENCHMARK_MAIN();
