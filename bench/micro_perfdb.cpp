// Micro-benchmarks: performance-database insert and prediction cost (the
// scheduler consults the database on every adaptation check).
//
// The prediction tiers under test (see src/perfdb/database.hpp):
//   predict_reference — seed implementation, per-call std::set grid rebuild
//   predict_uncached  — GridIndex fast path (binary-search bracketing +
//                       dense-cell corner lookup)
//   predict           — memoizing PredictionCache over the indexed path
// The acceptance gate for the fast path is >= 5x over the reference on
// repeated predictions against a 64-config x 256-point database.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#define AVF_BENCH_HAS_GBENCH
#include "bench/common.hpp"
#include "perfdb/database.hpp"

namespace {

using namespace avf;
using perfdb::PerfDatabase;
using tunable::ConfigPoint;

tunable::MetricSchema schema() {
  tunable::MetricSchema s;
  s.add("transmit_time", tunable::Direction::kLowerBetter);
  s.add("response_time", tunable::Direction::kLowerBetter);
  s.add("resolution", tunable::Direction::kHigherBetter);
  return s;
}

PerfDatabase build_db(int configs, int grid) {
  PerfDatabase db({"cpu_share", "net_bps"}, schema());
  for (int c = 0; c < configs; ++c) {
    ConfigPoint config;
    config.set("mode", c);
    for (int i = 0; i < grid; ++i) {
      for (int j = 0; j < grid; ++j) {
        tunable::QosVector q;
        double cpu = (i + 1.0) / grid;
        double bw = (j + 1.0) * 100e3;
        q.set("transmit_time", 10.0 / cpu + 1e6 / bw);
        q.set("response_time", 1.0 / cpu);
        q.set("resolution", 4.0);
        db.insert(config, {cpu, bw}, q);
      }
    }
  }
  return db;
}

constexpr int kLargeConfigs = 64;
constexpr int kLargeGrid = 16;  // 16x16 = 256 resource points per config

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    PerfDatabase db = build_db(static_cast<int>(state.range(0)), 6);
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 36);
}
BENCHMARK(BM_Insert)->Arg(18);

// --- single-config prediction, 64x16x16 database ------------------------

void BM_PredictReference(benchmark::State& state) {
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  ConfigPoint config;
  config.set("mode", 7);
  double x = 0.0;
  for (auto _ : state) {
    auto q = db.predict_reference(config, {0.37 + x * 1e-9, 275e3},
                                  perfdb::Lookup::kInterpolate);
    x += 1.0;
    benchmark::DoNotOptimize(q->get("transmit_time"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictReference);

void BM_PredictIndexed(benchmark::State& state) {
  // GridIndex fast path, cache bypassed: the point is perturbed per
  // iteration so this measures bracketing + corner lookup, not memoization.
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  ConfigPoint config;
  config.set("mode", 7);
  double x = 0.0;
  for (auto _ : state) {
    auto q = db.predict_uncached(config, {0.37 + x * 1e-9, 275e3},
                                 perfdb::Lookup::kInterpolate);
    x += 1.0;
    benchmark::DoNotOptimize(q->get("transmit_time"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictIndexed);

void BM_PredictCached(benchmark::State& state) {
  // Repeated decision under stable resources: every iteration after the
  // first hits the prediction cache.
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  ConfigPoint config;
  config.set("mode", 7);
  for (auto _ : state) {
    auto q = db.predict(config, {0.37, 275e3}, perfdb::Lookup::kInterpolate);
    benchmark::DoNotOptimize(q->get("transmit_time"));
  }
  state.SetItemsProcessed(state.iterations());
  auto stats = db.prediction_stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.cache_hits) /
      static_cast<double>(
          std::max<std::size_t>(1, stats.cache_hits + stats.cache_misses));
}
BENCHMARK(BM_PredictCached);

void BM_PredictNearest(benchmark::State& state) {
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  ConfigPoint config;
  config.set("mode", 7);
  for (auto _ : state) {
    auto q = db.predict_uncached(config, {0.37, 275e3},
                                 perfdb::Lookup::kNearest);
    benchmark::DoNotOptimize(q->get("transmit_time"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictNearest);

// --- full scheduler-style scans: every config, one resource point -------

void BM_FullScanReference(benchmark::State& state) {
  // What the scheduler paid per adaptation decision with the seed
  // implementation.
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  std::vector<ConfigPoint> configs = db.configs();
  for (auto _ : state) {
    double best = 1e300;
    for (const ConfigPoint& c : configs) {
      auto q = db.predict_reference(c, {0.37, 275e3});
      best = std::min(best, q->get("transmit_time"));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * kLargeConfigs);
}
BENCHMARK(BM_FullScanReference);

void BM_FullScanIndexed(benchmark::State& state) {
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  std::vector<ConfigPoint> configs = db.configs();
  for (auto _ : state) {
    double best = 1e300;
    for (const ConfigPoint& c : configs) {
      auto q = db.predict_uncached(c, {0.37, 275e3});
      best = std::min(best, q->get("transmit_time"));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * kLargeConfigs);
}
BENCHMARK(BM_FullScanIndexed);

void BM_FullScanCached(benchmark::State& state) {
  // Repeated decision with stable resources: the entire scan is served
  // from the prediction cache after the first iteration.
  PerfDatabase db = build_db(kLargeConfigs, kLargeGrid);
  std::vector<ConfigPoint> configs = db.configs();
  for (auto _ : state) {
    double best = 1e300;
    for (const ConfigPoint& c : configs) {
      auto q = db.predict(c, {0.37, 275e3});
      best = std::min(best, q->get("transmit_time"));
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * kLargeConfigs);
}
BENCHMARK(BM_FullScanCached);

}  // namespace

int main(int argc, char** argv) {
  return avf::bench::run_benchmarks_with_json(argc, argv, "micro_perfdb");
}
