// Micro-benchmark: decision-tree-guided adaptive profiling vs the
// exhaustive oracle on the real viz application (small world: 128x128
// image, 18 configs x 4x4 resource grid = 288 cells).
//
// For each budget the adaptive driver measures a seeded space-filling
// sample plus tree-guided rounds, predicts the rest, and the bench scores
// every predicted cell against the exhaustively profiled database.  Gates
// (exit non-zero on violation, thresholds env-overridable):
//   - at the gated budget, at most AVF_ADAPTIVE_MAX_FRACTION (default .25)
//     of the cells may be sandbox-measured;
//   - every predicted cell must be within AVF_ADAPTIVE_MAX_ERR (default
//     0.75 relative) of the oracle, with the mean far tighter
//     (AVF_ADAPTIVE_MEAN_ERR, default 0.10);
//   - the adaptive database must be byte-identical at 1 and 4 worker
//     threads (the budgeted rounds share profile()'s canonical-order
//     commit contract).
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "perfdb/driver.hpp"
#include "viz/world.hpp"

namespace {

using namespace avf;
using perfdb::PerfDatabase;
using perfdb::Provenance;
using tunable::ConfigPoint;

const std::vector<double> kCpuGrid{0.15, 0.4, 0.7, 1.0};
const std::vector<double> kBwGrid{25e3, 100e3, 400e3, 1000e3};
constexpr std::uint64_t kSeed = 1;

viz::WorldSetup small_world() {
  viz::WorldSetup setup;
  setup.image_size = 128;
  return setup;
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fingerprint(const PerfDatabase& db) {
  std::ostringstream out;
  db.save(out);
  return fnv1a(out.str());
}

double env_or(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) return std::atof(env);
  return fallback;
}

struct Score {
  std::size_t measured = 0;
  std::size_t predicted = 0;
  double max_rel_err = 0.0;
  double mean_rel_err = 0.0;
};

Score score_against_oracle(const PerfDatabase& db, const PerfDatabase& oracle) {
  Score s;
  double err_sum = 0.0;
  for (const ConfigPoint& config : oracle.configs()) {
    for (const perfdb::PerfRecord& r : db.records(config)) {
      auto want = oracle.predict(config, r.resources, perfdb::Lookup::kNearest);
      if (!want) continue;
      if (r.provenance == Provenance::kMeasured) {
        ++s.measured;
        continue;
      }
      ++s.predicted;
      for (const auto& m : oracle.schema().metrics()) {
        double rel = std::abs(r.quality.get(m.name) - want->get(m.name)) /
                     std::abs(want->get(m.name));
        err_sum += rel;
        if (rel > s.max_rel_err) s.max_rel_err = rel;
      }
    }
  }
  std::size_t metric_count = oracle.schema().metrics().size();
  if (s.predicted > 0) {
    s.mean_rel_err =
        err_sum / static_cast<double>(s.predicted * metric_count);
  }
  return s;
}

}  // namespace

int main() {
  const viz::WorldSetup setup = small_world();
  const std::size_t cells =
      viz::viz_app_spec().space().enumerate().size() * kCpuGrid.size() *
      kBwGrid.size();

  auto t0 = std::chrono::steady_clock::now();
  const PerfDatabase oracle =
      viz::build_viz_database(setup, kCpuGrid, kBwGrid, 0, 0);
  auto t1 = std::chrono::steady_clock::now();
  const double oracle_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("micro_adaptive: %zu cells (18 configs x %zux%zu grid), "
              "exhaustive oracle %.1f ms\n",
              cells, kCpuGrid.size(), kBwGrid.size(), oracle_ms);
  std::printf("%-22s %10s %10s %12s %12s %10s\n", "case", "measured",
              "fraction", "max_rel_err", "mean_rel_err", "wall_ms");

  const double max_fraction = env_or("AVF_ADAPTIVE_MAX_FRACTION", 0.25);
  const double max_err = env_or("AVF_ADAPTIVE_MAX_ERR", 0.75);
  const double mean_err = env_or("AVF_ADAPTIVE_MEAN_ERR", 0.10);
  const std::size_t gated_budget = static_cast<std::size_t>(
      max_fraction * static_cast<double>(cells) + 1e-9);

  bool ok = true;
  std::vector<bench::JsonBenchCase> cases;
  for (std::size_t budget :
       {cells / 8, gated_budget, cells / 2}) {
    auto start = std::chrono::steady_clock::now();
    PerfDatabase db = viz::build_viz_database_adaptive(
        setup, kCpuGrid, kBwGrid, budget, kSeed, 0);
    auto stop = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();

    Score s = score_against_oracle(db, oracle);
    const double fraction =
        static_cast<double>(s.measured) / static_cast<double>(cells);
    const bool gated = budget == gated_budget;
    bool pass = true;
    if (gated) {
      pass = fraction <= max_fraction + 1e-12 && s.max_rel_err <= max_err &&
             s.mean_rel_err <= mean_err;
      ok = ok && pass;
    }
    std::printf("%-22s %10zu %9.1f%% %12.4f %12.4f %10.1f %s\n",
                ("budget=" + std::to_string(budget)).c_str(), s.measured,
                100.0 * fraction, s.max_rel_err, s.mean_rel_err, wall_ms,
                gated ? (pass ? "ok (gated)" : "FAIL") : "");

    bench::JsonBenchCase c;
    c.label = "adaptive/budget=" + std::to_string(budget);
    c.wall_ns = wall_ms * 1e6;
    c.extra["budget"] = static_cast<double>(budget);
    c.extra["measured"] = static_cast<double>(s.measured);
    c.extra["sampled_fraction"] = fraction;
    c.extra["max_rel_err"] = s.max_rel_err;
    c.extra["mean_rel_err"] = s.mean_rel_err;
    c.extra["oracle_ms"] = oracle_ms;
    cases.push_back(std::move(c));
  }

  // Determinism gate: the budgeted rounds shard across the pool with the
  // same canonical-order commit contract as profile().
  const std::uint64_t fp1 = fingerprint(viz::build_viz_database_adaptive(
      setup, kCpuGrid, kBwGrid, gated_budget, kSeed, 1));
  const std::uint64_t fp4 = fingerprint(viz::build_viz_database_adaptive(
      setup, kCpuGrid, kBwGrid, gated_budget, kSeed, 4));
  const bool deterministic = fp1 == fp4;
  std::printf("threads 1 vs 4 fingerprint: %016" PRIx64 " vs %016" PRIx64
              " %s\n",
              fp1, fp4, deterministic ? "ok" : "MISMATCH");
  {
    bench::JsonBenchCase c;
    c.label = "determinism/threads=1v4";
    c.threads = 4;
    c.extra["fingerprint_match"] = deterministic ? 1.0 : 0.0;
    cases.push_back(std::move(c));
  }
  bench::write_bench_json("micro_adaptive", cases);

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: adaptive profile diverged across thread counts\n");
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: gated budget %zu missed the error/fraction bounds "
                 "(max_fraction=%.2f max_err=%.2f mean_err=%.2f)\n",
                 gated_budget, max_fraction, max_err, mean_err);
    return 1;
  }
  std::printf("adaptive profiling within bounds at <=%.0f%% sampling\n",
              100.0 * max_fraction);
  return 0;
}
