// Ablation: monitoring history-window length vs adaptation latency and
// stability (the paper's §6.1 history window; DESIGN.md §6).  An
// experiment-1-style bandwidth drop is detected faster with short windows,
// but short windows also react to single noisy samples.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Ablation: monitor window",
                       "history-window length vs adaptation latency "
                       "(bandwidth drop at t = 10 s)");
  const perfdb::PerfDatabase& full_db = bench::figure_database();
  // Restrict to the small-fovea configurations: dR=80 yields ~7 request
  // rounds per image, i.e. frequent bandwidth observations, which is what
  // makes the window length the deciding factor for detection latency.
  perfdb::PerfDatabase db = full_db;
  for (const tunable::ConfigPoint& c : full_db.configs()) {
    if (c.get("dR") != 80) db.erase_config(c);
  }

  viz::WorldSetup setup = bench::standard_setup();
  viz::ResourceSchedule schedule;
  schedule.link_bandwidth = {{10.0, 50e3}};
  adapt::UserPreference pref = adapt::minimize("transmit_time");
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});

  util::TextTable table({"window (s)", "adaptations", "first switch at (s)",
                         "switch latency (s)", "total (s)"});
  for (double window : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    viz::AdaptiveOptions options;
    options.monitor.window = window;
    viz::SessionResult result =
        viz::run_adaptive_session(setup, db, {pref}, schedule, options);
    double first = result.adaptations.empty()
                       ? -1.0
                       : result.adaptations.front().time;
    table.add_row(
        {util::TextTable::num(window, 1),
         util::TextTable::num(
             static_cast<double>(result.adaptations.size()), 0),
         first < 0 ? "-" : util::TextTable::num(first, 2),
         first < 0 ? "-" : util::TextTable::num(first - 10.0, 2),
         util::TextTable::num(result.total_time, 1)});
  }
  table.print(std::cout);
  bench::note(
      "\nShort windows detect the drop quickly; very long windows dilute "
      "fresh samples with pre-drop history and delay (or suppress) the "
      "switch.");
  return 0;
}
