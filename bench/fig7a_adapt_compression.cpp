// Figure 7(a) / Experiment 1: adapting the compression method to network
// conditions.  Ten images; available bandwidth 500 KBps dropping to
// 50 KBps at t = 25 s; user preference: minimize image transmission time
// (at full resolution).  The adaptive run is compared against the two
// non-adaptive configurations it switches between.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Figure 7(a) / Experiment 1",
                       "adapting compression when bandwidth drops 500 -> 50 "
                       "KBps after four images (paper: t = 25 s)");
  const perfdb::PerfDatabase& db = bench::figure_database();

  viz::WorldSetup setup = bench::standard_setup();
  viz::ResourceSchedule schedule;
  // The paper drops bandwidth at t=25 s, after 4 of its ~6 s images; our
  // images take ~2.5 s, so the proportional point is t=10 s.
  schedule.link_bandwidth = {{10.0, 50e3}};

  adapt::UserPreference pref = adapt::minimize("transmit_time");
  pref.constraints.push_back({.metric = "resolution", .min = 4.0});

  viz::SessionResult adaptive =
      viz::run_adaptive_session(setup, db, {pref}, schedule);
  tunable::ConfigPoint config_a = adaptive.initial_config;
  tunable::ConfigPoint config_b =
      adaptive.adaptations.empty()
          ? adaptive.initial_config.with("c", 2)
          : adaptive.adaptations.back().to;
  viz::SessionResult static_a =
      viz::run_fixed_session(setup, config_a, schedule);
  viz::SessionResult static_b =
      viz::run_fixed_session(setup, config_b, schedule);

  bench::note(util::format("initial (adaptive) configuration: {}",
                           config_a.key()));
  for (const auto& event : adaptive.adaptations) {
    bench::note(util::format("  t={:.2f}s: adapt {} -> {}", event.time,
                             event.from.key(), event.to.key()));
  }
  std::cout << '\n';

  util::TextTable table({"image", "adaptive done (s)",
                         util::format("static {} (s)", config_a.key()),
                         util::format("static {} (s)", config_b.key())});
  for (std::size_t i = 0; i < adaptive.images.size(); ++i) {
    table.add_row({util::TextTable::num(static_cast<double>(i + 1), 0),
                   util::TextTable::num(adaptive.images[i].end_time, 2),
                   util::TextTable::num(static_a.images[i].end_time, 2),
                   util::TextTable::num(static_b.images[i].end_time, 2)});
  }
  avf::bench::emit_table(table, "fig7a_experiment1");

  bench::note(util::format(
      "\ntotal: adaptive {:.1f} s, static-A {:.1f} s, static-B {:.1f} s "
      "(paper: adaptive 160 s vs static-A 260 s)",
      adaptive.total_time, static_a.total_time, static_b.total_time));
  bool switched = !adaptive.adaptations.empty() &&
                  adaptive.adaptations[0].to.get("c") !=
                      config_a.get("c");
  bool beats_both = adaptive.total_time <= static_a.total_time &&
                    adaptive.total_time <= static_b.total_time * 1.02;
  bench::note(util::format(
      "Shape checks (paper): application switches compression after the "
      "drop [{}]; adaptive total beats static-A and is within a hair of the "
      "best static in each phase [{}].",
      switched ? "OK" : "FAIL", beats_both ? "OK" : "FAIL"));
  return switched && beats_both ? 0 : 1;
}
