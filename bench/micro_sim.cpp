// Micro-benchmarks: simulator kernel throughput (events/s, coroutine
// switches, fluid-resource reallocation).
#include <benchmark/benchmark.h>

#include "sim/fluid_resource.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace {

using namespace avf::sim;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule(i * 1e-6, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Mailbox<int> ping(sim), pong(sim);
    int rounds = static_cast<int>(state.range(0));
    auto a = [&]() -> Task<> {
      for (int i = 0; i < rounds; ++i) {
        ping.push(i);
        (void)co_await pong.recv();
      }
    };
    auto b = [&]() -> Task<> {
      for (int i = 0; i < rounds; ++i) {
        int v = co_await ping.recv();
        pong.push(v);
      }
    };
    sim.spawn(a());
    sim.spawn(b());
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_CoroutinePingPong)->Arg(10000);

void BM_FluidReallocation(benchmark::State& state) {
  // N concurrent consumers with periodic cap changes: stresses the
  // water-filling allocator.
  for (auto _ : state) {
    Simulator sim;
    FluidResource cpu(sim, "cpu", 1e9);
    int n = static_cast<int>(state.range(0));
    std::vector<ShareSlotPtr> slots;
    for (int i = 0; i < n; ++i) {
      slots.push_back(make_share_slot(1.0 / n, 1.0 + i % 3));
    }
    for (int i = 0; i < n; ++i) {
      auto proc = [&, i]() -> Task<> {
        for (int k = 0; k < 10; ++k) {
          co_await cpu.consume(1e7, slots[static_cast<std::size_t>(i)]);
        }
      };
      sim.spawn(proc());
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_FluidReallocation)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
