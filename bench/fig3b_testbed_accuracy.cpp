// Figure 3(b): measured vs expected execution time under the testbed.
// A fixed-work toy application runs under quantized CPU shares 10%..100%;
// the expected time is the dedicated-host execution time normalized by the
// requested share (the paper's definition).
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/host.hpp"
#include "util/table.hpp"

namespace {

using namespace avf;

constexpr double kSpeed = 450e6;
constexpr double kWork = kSpeed * 5.0;  // 5 s at full speed

double run_with_share(double share) {
  sim::Simulator sim;
  sim::Host host(sim, "testbed", kSpeed, 128u << 20);
  sandbox::Sandbox::Options opts;
  opts.cpu_share = share;
  opts.cpu_enforcement = sandbox::CpuEnforcement::kQuantized;
  sandbox::Sandbox box(host, "toy", opts);
  double done = -1.0;
  auto toy = [&]() -> sim::Task<> {
    co_await box.compute(kWork);
    done = sim.now();
  };
  sim.spawn(toy());
  sim.run();
  return done;
}

}  // namespace

int main() {
  bench::figure_header(
      "Figure 3(b)",
      "application execution time under the testbed vs expected");

  double base = run_with_share(1.0);
  util::TextTable table(
      {"cpu share %", "expected (s)", "measured (s)", "error %"});
  double max_error = 0.0;
  for (int pct = 10; pct <= 100; pct += 10) {
    double share = pct / 100.0;
    double expected = base / share;
    double measured = run_with_share(share);
    double error = 100.0 * std::abs(measured - expected) / expected;
    max_error = std::max(max_error, error);
    table.add_row({util::TextTable::num(pct, 0),
                   util::TextTable::num(expected, 3),
                   util::TextTable::num(measured, 3),
                   util::TextTable::num(error, 2)});
  }
  avf::bench::emit_table(table, "fig3b_accuracy");
  bench::note(util::format(
      "\nShape check (paper): measured tracks expected across the whole "
      "share range; max error here {:.2f}% (paper: negligible differences)."
      , max_error));
  return 0;
}
