// Figure 7(b) / Experiment 2: adapting image resolution to CPU conditions.
// Ten images; client CPU share 90% dropping to 40% at t = 30 s; user
// preference: transmission time below a deadline while maximizing image
// resolution.  The deadline is derived from the performance database the
// same way the paper's 10-second deadline relates to its profiles: between
// the level-4 times at 90% and at 40% CPU, so the drop forces a downgrade.
#include <iostream>

#include "bench/common.hpp"
#include "util/table.hpp"

int main() {
  using namespace avf;
  bench::figure_header("Figure 7(b) / Experiment 2",
                       "degrading resolution when CPU share drops 90% -> "
                       "40% at t = 30 s");
  const perfdb::PerfDatabase& full_db = bench::figure_database();
  // The paper constrains this experiment to the resolution knob ("for
  // simplicity, we constrain image resolution to be one of two levels"),
  // holding dR and the codec fixed.  Without this restriction our scheduler
  // finds an even better escape (switching codec/fovea to meet the deadline
  // at full resolution) — interesting, but not Figure 7(b).
  perfdb::PerfDatabase db = full_db;
  for (const tunable::ConfigPoint& c : full_db.configs()) {
    if (c.get("c") != 1 || c.get("dR") != 160) db.erase_config(c);
  }

  viz::WorldSetup setup = bench::standard_setup();
  setup.client_cpu_share = 0.9;
  setup.link_bandwidth_bps = 500e3;
  viz::ResourceSchedule schedule;
  schedule.client_cpu = {{.at = 30.0, .cpu_share = 0.4}};

  double t4_fast = db.predict(bench::viz_config(160, 1, 4), {0.9, 500e3})
                       ->get("transmit_time");
  double t4_slow = db.predict(bench::viz_config(160, 1, 4), {0.4, 500e3})
                       ->get("transmit_time");
  double deadline = 0.5 * (t4_fast + t4_slow);
  bench::note(util::format(
      "deadline: transmit_time <= {:.2f} s (level-4 takes {:.2f} s at 90% "
      "CPU, {:.2f} s at 40%; paper used 10 s against 18 s)",
      deadline, t4_fast, t4_slow));

  adapt::UserPreference pref = adapt::maximize_metric("resolution");
  pref.constraints.push_back({.metric = "transmit_time", .max = deadline});

  viz::SessionResult adaptive =
      viz::run_adaptive_session(setup, db, {pref}, schedule);
  tunable::ConfigPoint config_l4 = adaptive.initial_config;
  tunable::ConfigPoint config_l3 =
      adaptive.adaptations.empty() ? config_l4.with("l", 3)
                                   : adaptive.adaptations.back().to;
  viz::SessionResult static_l4 =
      viz::run_fixed_session(setup, config_l4, schedule);
  viz::SessionResult static_l3 =
      viz::run_fixed_session(setup, config_l3, schedule);

  for (const auto& event : adaptive.adaptations) {
    bench::note(util::format("  t={:.2f}s: adapt {} -> {}", event.time,
                             event.from.key(), event.to.key()));
  }
  std::cout << '\n';

  util::TextTable table(
      {"image", "adaptive transmit (s)", "adaptive level",
       util::format("static {} (s)", config_l4.key()),
       util::format("static {} (s)", config_l3.key())});
  int violations_adaptive = 0, violations_static4 = 0;
  for (std::size_t i = 0; i < adaptive.images.size(); ++i) {
    if (adaptive.images[i].transmit_time > deadline) ++violations_adaptive;
    if (static_l4.images[i].transmit_time > deadline) ++violations_static4;
    table.add_row(
        {util::TextTable::num(static_cast<double>(i + 1), 0),
         util::TextTable::num(adaptive.images[i].transmit_time, 2),
         util::TextTable::num(adaptive.images[i].resolution, 0),
         util::TextTable::num(static_l4.images[i].transmit_time, 2),
         util::TextTable::num(static_l3.images[i].transmit_time, 2)});
  }
  avf::bench::emit_table(table, "fig7b_experiment2");

  bool downgraded = !adaptive.adaptations.empty() &&
                    adaptive.adaptations[0].to.get("l") == 3 &&
                    adaptive.initial_config.get("l") == 4;
  // Allow the image in flight during the switch to overshoot (the paper's
  // fifth image also straddles its switch).
  bool meets_deadline = violations_adaptive <= 1;
  bench::note(util::format(
      "\nShape checks (paper): starts at level 4, degrades to level 3 after "
      "the CPU drop [{}]; adaptive meets the deadline except at most the "
      "in-flight image [{} violations], while static level-4 violates it "
      "after the drop [{} violations].",
      downgraded ? "OK" : "FAIL", violations_adaptive, violations_static4));
  return downgraded && meets_deadline && violations_static4 > 0 ? 0 : 1;
}
