// Maximal-subset pruning of the performance database (paper §5, footnote 1):
// keep only configurations that outperform some other configuration under
// at least one resource situation; merge configurations whose behavior is
// indistinguishable, storing only one representative.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "perfdb/database.hpp"

namespace avf::perfdb {

struct PruneResult {
  std::vector<tunable::ConfigPoint> kept;
  /// Dominated configs: strictly worse than some kept config at every
  /// sampled resource point.
  std::vector<tunable::ConfigPoint> dominated;
  /// Equivalence-merged configs: behavior within epsilon of the
  /// representative at every sampled point.  key() -> representative key().
  std::map<std::string, std::string> merged_into;
};

/// Analyze `db`.  Two configs are only compared where they were sampled at
/// identical resource points (the profiling driver samples all configs on
/// one grid, so in practice the full grid).
///
/// `threads` > 1 (0 = hardware_concurrency) evaluates the O(n^2) pairwise
/// equivalence/dominance predicates on a work-stealing pool; the
/// keep/merge/dominate marking itself stays serial and order-identical, so
/// the result matches the single-threaded analysis exactly.
PruneResult analyze_prune(const PerfDatabase& db, double equivalence_epsilon,
                          std::size_t threads = 1);

/// Copy of `db` with dominated and merged configurations removed.
PerfDatabase apply_prune(const PerfDatabase& db, const PruneResult& result);

}  // namespace avf::perfdb
