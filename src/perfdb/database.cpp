#include "perfdb/database.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace avf::perfdb {

using tunable::ConfigPoint;
using tunable::QosVector;

std::uint64_t PerfDatabase::next_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

PerfDatabase::PerfDatabase(std::vector<std::string> resource_axes,
                           tunable::MetricSchema schema)
    : axes_(std::move(resource_axes)), schema_(std::move(schema)) {
  if (axes_.empty()) {
    throw std::invalid_argument("database needs at least one resource axis");
  }
  if (schema_.metrics().empty()) {
    throw std::invalid_argument("database needs at least one metric");
  }
}

PerfDatabase::PerfDatabase(const PerfDatabase& other)
    : axes_(other.axes_),
      schema_(other.schema_),
      by_config_(other.by_config_),
      total_records_(other.total_records_),
      predicted_records_(other.predicted_records_),
      cache_(other.cache_),
      index_rebuilds_(other.index_rebuilds_.load()) {
  // The copied indexes hold pointers into `other`'s sample nodes; drop
  // them so the copy rebuilds against its own nodes on first query.
  // `uid_` deliberately stays the fresh default-initialized one: the copy
  // is a distinct object whose contents may diverge from the source.
  for (auto& [key, data] : by_config_) data.index.invalidate();
}

PerfDatabase& PerfDatabase::operator=(const PerfDatabase& other) {
  if (this != &other) {
    PerfDatabase tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

PerfDatabase::PerfDatabase(PerfDatabase&& other) noexcept
    : axes_(std::move(other.axes_)),
      schema_(std::move(other.schema_)),
      by_config_(std::move(other.by_config_)),
      uid_(other.uid_),
      mutation_epoch_(other.mutation_epoch_),
      total_records_(other.total_records_),
      predicted_records_(other.predicted_records_),
      cache_(std::move(other.cache_)),
      index_rebuilds_(other.index_rebuilds_.load()) {}

PerfDatabase& PerfDatabase::operator=(PerfDatabase&& other) noexcept {
  if (this != &other) {
    axes_ = std::move(other.axes_);
    schema_ = std::move(other.schema_);
    by_config_ = std::move(other.by_config_);
    uid_ = other.uid_;
    mutation_epoch_ = other.mutation_epoch_;
    total_records_ = other.total_records_;
    predicted_records_ = other.predicted_records_;
    cache_ = std::move(other.cache_);
    index_rebuilds_.store(other.index_rebuilds_.load());
  }
  return *this;
}

PerfDatabase::ConfigData& PerfDatabase::insert_raw(const ConfigPoint& config,
                                                   const ResourcePoint& at,
                                                   const QosVector& quality,
                                                   Provenance provenance) {
  if (at.size() != axes_.size()) {
    throw std::invalid_argument(
        util::format("resource point has {} axes, database has {}", at.size(),
                     axes_.size()));
  }
  for (const auto& m : schema_.metrics()) {
    if (!quality.try_get(m.name)) {
      throw std::invalid_argument(
          util::format("sample missing metric: {}", m.name));
    }
  }
  ConfigData& data = by_config_[config.key()];
  data.config = config;
  auto [it, inserted] = data.samples.insert_or_assign(at, quality);
  (void)it;
  if (inserted) ++total_records_;
  if (provenance == Provenance::kPredicted) {
    if (data.predicted.insert(at).second) ++predicted_records_;
  } else if (data.predicted.erase(at) > 0) {
    --predicted_records_;
  }
  data.index.note_insert(inserted);
  return data;
}

void PerfDatabase::insert(const ConfigPoint& config, const ResourcePoint& at,
                          const QosVector& quality, Provenance provenance) {
  ConfigData& data = insert_raw(config, at, quality, provenance);
  cache_.invalidate_config(data.config.key());
  ++mutation_epoch_;
}

void PerfDatabase::insert_batch(const std::vector<PerfRecord>& records) {
  // One cache epoch bump per touched configuration, not per sample; the
  // grid index likewise notes staleness per insert but is only rebuilt on
  // the first query after the batch.
  std::set<std::string> touched;
  for (const PerfRecord& r : records) {
    ConfigData& data =
        insert_raw(r.config, r.resources, r.quality, r.provenance);
    touched.insert(data.config.key());
  }
  for (const std::string& key : touched) {
    cache_.invalidate_config(key);
    ++mutation_epoch_;
  }
}

std::optional<Provenance> PerfDatabase::provenance(
    const ConfigPoint& config, const ResourcePoint& at) const {
  const ConfigData* data = find(config);
  if (data == nullptr || !data->samples.contains(at)) return std::nullopt;
  return data->predicted.contains(at) ? Provenance::kPredicted
                                      : Provenance::kMeasured;
}

bool PerfDatabase::all_predicted(const ConfigPoint& config) const {
  const ConfigData* data = find(config);
  return data != nullptr && !data->samples.empty() &&
         data->predicted.size() == data->samples.size();
}

std::vector<ConfigPoint> PerfDatabase::configs() const {
  std::vector<ConfigPoint> out;
  out.reserve(by_config_.size());
  for (const auto& [key, data] : by_config_) out.push_back(data.config);
  return out;
}

void PerfDatabase::for_each_config(
    const std::function<void(const ConfigPoint&)>& fn) const {
  for (const auto& [key, data] : by_config_) fn(data.config);
}

bool PerfDatabase::has_config(const ConfigPoint& config) const {
  return by_config_.contains(config.key());
}

std::vector<PerfRecord> PerfDatabase::records(const ConfigPoint& config) const {
  std::vector<PerfRecord> out;
  const ConfigData* data = find(config);
  if (data == nullptr) return out;
  for (const auto& [point, quality] : data->samples) {
    out.push_back(PerfRecord{data->config, point, quality,
                             data->predicted.contains(point)
                                 ? Provenance::kPredicted
                                 : Provenance::kMeasured});
  }
  return out;
}

std::vector<double> PerfDatabase::grid_values(const ConfigPoint& config,
                                              const std::string& axis) const {
  auto it = std::find(axes_.begin(), axes_.end(), axis);
  if (it == axes_.end()) {
    throw std::out_of_range(util::format("no such axis: {}", axis));
  }
  std::size_t ai = static_cast<std::size_t>(it - axes_.begin());
  const ConfigData* data = find(config);
  if (data == nullptr || data->samples.empty()) return {};
  return indexed(*data).axis_values(ai);
}

const PerfDatabase::ConfigData* PerfDatabase::find(
    const ConfigPoint& config) const {
  auto it = by_config_.find(config.key());
  return it == by_config_.end() ? nullptr : &it->second;
}

const GridIndex& PerfDatabase::indexed(const ConfigData& data) const {
  if (!data.index.valid()) {
    data.index.build(data.samples, axes_.size());
    ++index_rebuilds_;
  }
  return data.index;
}

void PerfDatabase::erase_config(const ConfigPoint& config) {
  auto it = by_config_.find(config.key());
  if (it != by_config_.end()) {
    total_records_ -= it->second.samples.size();
    predicted_records_ -= it->second.predicted.size();
    cache_.invalidate_config(it->first);
    by_config_.erase(it);
    ++mutation_epoch_;
  }
}

// ---------------------------------------------------------------------------
// Indexed fast path.

tunable::QosVector PerfDatabase::nearest(const ConfigData& data,
                                         const ResourcePoint& at) const {
  // Normalize each axis by its sampled span so axes with different units
  // (shares vs bytes/s) weigh equally.  Spans and iteration order come from
  // the index; the arithmetic matches nearest_reference exactly.
  const GridIndex& index = indexed(data);
  const QosVector* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const GridIndex::FlatSample& sample : index.flat()) {
    double dist = 0.0;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      double span = index.span_hi(i) - index.span_lo(i);
      double d = span > 0.0 ? ((*sample.point)[i] - at[i]) / span : 0.0;
      dist += d * d;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = sample.quality;
    }
  }
  return *best;
}

std::optional<QosVector> PerfDatabase::interpolate(
    const ConfigData& data, const ResourcePoint& at) const {
  // Per-axis bracketing over the sampled grid; clamp outside the hull
  // (constant extrapolation).  O(axes * log n) bracketing + O(1) dense
  // corner lookup, replacing the reference per-call std::set rebuild.
  const GridIndex& index = indexed(data);
  std::size_t d = axes_.size();
  std::vector<GridIndex::AxisBracket> brackets(d);
  for (std::size_t i = 0; i < d; ++i) brackets[i] = index.bracket(i, at[i]);

  QosVector out;
  for (const auto& m : schema_.metrics()) out.set(m.name, 0.0);
  ResourcePoint scratch;
  std::size_t corners = std::size_t{1} << d;
  for (std::size_t mask = 0; mask < corners; ++mask) {
    double weight = 1.0;
    for (std::size_t i = 0; i < d; ++i) {
      weight *= (mask & (std::size_t{1} << i)) ? brackets[i].t
                                               : (1.0 - brackets[i].t);
    }
    if (weight == 0.0) continue;
    const QosVector* corner = index.corner(brackets, mask, scratch);
    if (corner == nullptr) return std::nullopt;  // incomplete cell
    for (const auto& m : schema_.metrics()) {
      out.set(m.name, out.get(m.name) + weight * corner->get(m.name));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reference (seed) implementation, kept as the consistency oracle.

tunable::QosVector PerfDatabase::nearest_reference(
    const ConfigData& data, const ResourcePoint& at) const {
  std::vector<double> lo(axes_.size(), std::numeric_limits<double>::infinity());
  std::vector<double> hi(axes_.size(),
                         -std::numeric_limits<double>::infinity());
  for (const auto& [point, quality] : data.samples) {
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      lo[i] = std::min(lo[i], point[i]);
      hi[i] = std::max(hi[i], point[i]);
    }
  }
  const QosVector* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& [point, quality] : data.samples) {
    double dist = 0.0;
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      double span = hi[i] - lo[i];
      double d = span > 0.0 ? (point[i] - at[i]) / span : 0.0;
      dist += d * d;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = &quality;
    }
  }
  return *best;
}

std::optional<QosVector> PerfDatabase::interpolate_reference(
    const ConfigData& data, const ResourcePoint& at) const {
  std::size_t d = axes_.size();
  std::vector<double> lo(d), hi(d), t(d);
  for (std::size_t i = 0; i < d; ++i) {
    std::set<double> values;
    for (const auto& [point, quality] : data.samples) values.insert(point[i]);
    double x = at[i];
    auto ge = values.lower_bound(x);
    if (ge == values.end()) {
      lo[i] = hi[i] = *values.rbegin();
      t[i] = 0.0;
    } else if (*ge == x || ge == values.begin()) {
      lo[i] = hi[i] = *ge;
      t[i] = 0.0;
    } else {
      hi[i] = *ge;
      lo[i] = *std::prev(ge);
      t[i] = (x - lo[i]) / (hi[i] - lo[i]);
    }
  }
  QosVector out;
  for (const auto& m : schema_.metrics()) out.set(m.name, 0.0);
  std::size_t corners = 1u << d;
  for (std::size_t mask = 0; mask < corners; ++mask) {
    double weight = 1.0;
    ResourcePoint corner(d);
    for (std::size_t i = 0; i < d; ++i) {
      if (mask & (1u << i)) {
        corner[i] = hi[i];
        weight *= t[i];
      } else {
        corner[i] = lo[i];
        weight *= (1.0 - t[i]);
      }
    }
    if (weight == 0.0) continue;
    auto it = data.samples.find(corner);
    if (it == data.samples.end()) return std::nullopt;  // incomplete cell
    for (const auto& m : schema_.metrics()) {
      out.set(m.name, out.get(m.name) + weight * it->second.get(m.name));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Prediction entry points.

std::optional<QosVector> PerfDatabase::predict_impl(const ConfigData& data,
                                                    const ResourcePoint& at,
                                                    Lookup mode) const {
  if (mode == Lookup::kInterpolate) {
    if (auto result = interpolate(data, at)) return result;
  }
  return nearest(data, at);
}

std::optional<QosVector> PerfDatabase::predict(const ConfigPoint& config,
                                               const ResourcePoint& at,
                                               Lookup mode) const {
  if (at.size() != axes_.size()) {
    throw std::invalid_argument("resource point dimension mismatch");
  }
  std::string key = config.key();
  if (const auto* cached = cache_.lookup(key, at, mode)) return *cached;
  auto it = by_config_.find(key);
  std::optional<QosVector> result;
  if (it != by_config_.end() && !it->second.samples.empty()) {
    result = predict_impl(it->second, at, mode);
  }
  cache_.store(key, at, mode, result);
  return result;
}

std::optional<QosVector> PerfDatabase::predict_uncached(
    const ConfigPoint& config, const ResourcePoint& at, Lookup mode) const {
  if (at.size() != axes_.size()) {
    throw std::invalid_argument("resource point dimension mismatch");
  }
  const ConfigData* data = find(config);
  if (data == nullptr || data->samples.empty()) return std::nullopt;
  return predict_impl(*data, at, mode);
}

std::optional<QosVector> PerfDatabase::predict_reference(
    const ConfigPoint& config, const ResourcePoint& at, Lookup mode) const {
  if (at.size() != axes_.size()) {
    throw std::invalid_argument("resource point dimension mismatch");
  }
  const ConfigData* data = find(config);
  if (data == nullptr || data->samples.empty()) return std::nullopt;
  if (mode == Lookup::kInterpolate) {
    if (auto result = interpolate_reference(*data, at)) return result;
  }
  return nearest_reference(*data, at);
}

PerfDatabase::PredictionStats PerfDatabase::prediction_stats() const {
  const PredictionCache::Stats c = cache_.stats();
  return PredictionStats{c.hits, c.misses, c.evictions, c.invalidations,
                         index_rebuilds_};
}

void PerfDatabase::reset_prediction_stats() {
  cache_.reset_stats();
  index_rebuilds_ = 0;
}

// ---------------------------------------------------------------------------
// Persistence.

void PerfDatabase::save(std::ostream& out) const {
  // The `origin` column only appears when there is something to flag: an
  // all-measured database keeps the historic column set, so adaptive
  // profiling at full budget stays byte-identical to exhaustive profiling
  // and old CSV files remain valid round-trip fixtures.
  const bool with_origin = predicted_records_ > 0;
  std::vector<std::string> header{"config"};
  for (const auto& axis : axes_) header.push_back("res:" + axis);
  for (const auto& m : schema_.metrics()) {
    header.push_back(util::format(
        "metric:{}:{}", m.name,
        m.direction == tunable::Direction::kLowerBetter ? "lower" : "higher"));
  }
  if (with_origin) header.push_back("origin");
  util::CsvWriter writer(out, header);
  for (const auto& [key, data] : by_config_) {
    for (const auto& [point, quality] : data.samples) {
      std::vector<std::string> row{key};
      for (double v : point) row.push_back(util::CsvWriter::field(v));
      for (const auto& m : schema_.metrics()) {
        row.push_back(util::CsvWriter::field(quality.get(m.name)));
      }
      if (with_origin) {
        row.push_back(data.predicted.contains(point) ? "predicted"
                                                     : "measured");
      }
      writer.row(row);
    }
  }
}

namespace {
/// Strict double parse for one CSV cell; rejects empty cells, garbage, and
/// trailing characters, and reports the data row (1-based) and column name.
double parse_numeric_cell(const std::string& cell, std::size_t row,
                          const std::string& column) {
  std::size_t consumed = 0;
  double value = 0.0;
  bool ok = true;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    ok = false;
  }
  if (ok && consumed != cell.size()) ok = false;  // trailing garbage
  if (!ok) {
    throw std::runtime_error(
        util::format("perfdb load: bad numeric value '{}' (row {}, column {})",
                     cell, row, column));
  }
  return value;
}
}  // namespace

PerfDatabase PerfDatabase::load(std::istream& in) {
  util::CsvDocument doc = util::read_csv(in);
  std::vector<std::string> axes;
  tunable::MetricSchema schema;
  std::vector<std::size_t> axis_cols, metric_cols;
  std::vector<std::string> metric_names;
  std::optional<std::size_t> origin_col;
  for (std::size_t c = 0; c < doc.header.size(); ++c) {
    const std::string& h = doc.header[c];
    if (h == "origin") {
      origin_col = c;
    } else if (h.starts_with("res:")) {
      axes.push_back(h.substr(4));
      axis_cols.push_back(c);
    } else if (h.starts_with("metric:")) {
      std::size_t second = h.find(':', 7);
      if (second == std::string::npos) {
        throw std::runtime_error(util::format("bad metric header: {}", h));
      }
      std::string name = h.substr(7, second - 7);
      std::string dir = h.substr(second + 1);
      if (dir == "higher") {
        schema.add(name, tunable::Direction::kHigherBetter);
      } else if (dir == "lower") {
        schema.add(name, tunable::Direction::kLowerBetter);
      } else {
        throw std::runtime_error(util::format(
            "perfdb load: unknown metric direction '{}' in header '{}'", dir,
            h));
      }
      metric_cols.push_back(c);
      metric_names.push_back(name);
    }
  }
  std::size_t config_col = doc.column("config");
  PerfDatabase db(std::move(axes), std::move(schema));
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    ConfigPoint config = ConfigPoint::parse(row[config_col]);
    ResourcePoint point;
    point.reserve(axis_cols.size());
    for (std::size_t c : axis_cols) {
      point.push_back(parse_numeric_cell(row[c], r + 1, doc.header[c]));
    }
    QosVector quality;
    for (std::size_t i = 0; i < metric_cols.size(); ++i) {
      quality.set(metric_names[i], parse_numeric_cell(row[metric_cols[i]],
                                                      r + 1,
                                                      doc.header[metric_cols[i]]));
    }
    Provenance provenance = Provenance::kMeasured;
    if (origin_col) {
      const std::string& cell = row[*origin_col];
      if (cell == "predicted") {
        provenance = Provenance::kPredicted;
      } else if (cell != "measured") {
        throw std::runtime_error(util::format(
            "perfdb load: unknown origin '{}' (row {}, column origin)", cell,
            r + 1));
      }
    }
    db.insert(config, point, quality, provenance);
  }
  return db;
}

}  // namespace avf::perfdb
