// Memoizing cache in front of PerfDatabase::predict.
//
// The run-time loop re-queries the database for every stored configuration
// on every adaptation decision; under stable resources those queries repeat
// with (near-)identical resource points.  The cache keys on the config key
// plus a *quantized* resource point (each coordinate rounded to ~2^-20
// relative precision) and the lookup mode, so repeated decisions hit the
// cache instead of re-interpolating every configuration.
//
// Invalidation is explicit and O(1): PerfDatabase bumps a per-config epoch
// on insert/erase_config, and entries recorded under an older epoch are
// treated as misses.  The table is bounded; when full it is cleared (a
// "cache wipe" eviction — cheap, rare, and self-correcting since the hot
// queries repopulate it immediately).
//
// Note: a hit returns the prediction computed for any point within the same
// quantization bucket as the query.  Buckets are ~1e-6 relative, far below
// monitoring noise; callers needing exact results use predict_uncached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "perfdb/grid_index.hpp"
#include "tunable/qos.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace avf::perfdb {

enum class Lookup { kNearest, kInterpolate };

class PredictionCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 4096;

  explicit PredictionCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  // PerfDatabase is copyable/movable; the cache follows.  Each instance
  // owns a fresh mutex — copying/moving locks the *source* and transfers
  // the tables, never the lock.
  PredictionCache(const PredictionCache& other) AVF_EXCLUDES(mutex_);
  PredictionCache& operator=(const PredictionCache& other)
      AVF_EXCLUDES(mutex_);
  PredictionCache(PredictionCache&& other) noexcept;
  PredictionCache& operator=(PredictionCache&& other) noexcept;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;       ///< bounded-size cache wipes
    std::size_t invalidations = 0;   ///< per-config epoch bumps
  };

  /// Cached prediction for (config key, quantized `at`, mode); nullptr on
  /// miss.  The pointee is owned by the cache and valid until the next
  /// store/clear — the caller (PerfDatabase::predict) copies it out before
  /// any further cache call, which is what makes the unlocked dereference
  /// sound.
  const std::optional<tunable::QosVector>* lookup(const std::string& config_key,
                                                  const ResourcePoint& at,
                                                  Lookup mode) const
      AVF_EXCLUDES(mutex_);

  void store(const std::string& config_key, const ResourcePoint& at,
             Lookup mode, std::optional<tunable::QosVector> result)
      AVF_EXCLUDES(mutex_);

  /// Drop all entries for one configuration (O(1): epoch bump).
  void invalidate_config(const std::string& config_key)
      AVF_EXCLUDES(mutex_);

  void clear() AVF_EXCLUDES(mutex_);

  std::size_t size() const AVF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return entries_.size();
  }
  std::size_t max_entries() const { return max_entries_; }
  /// Counter snapshot (by value: the live counters are lock-guarded).
  Stats stats() const AVF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return stats_;
  }
  void reset_stats() AVF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    stats_ = Stats{};
  }

  /// Quantized bucket of one coordinate (exposed for tests).
  static std::uint64_t quantize(double x);

 private:
  struct Entry {
    std::string config_key;
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> qpoint;
    Lookup mode = Lookup::kInterpolate;
    std::optional<tunable::QosVector> result;
  };

  static std::uint64_t hash_key(const std::string& config_key,
                                const std::vector<std::uint64_t>& qpoint,
                                Lookup mode);
  std::uint64_t epoch_of(const std::string& config_key) const
      AVF_REQUIRES(mutex_);

  std::size_t max_entries_;
  mutable util::Mutex mutex_;
  // Keyed by the mixed 64-bit hash; entries verify the full key on hit, so
  // a hash collision behaves as a miss and is overwritten on store.
  std::unordered_map<std::uint64_t, Entry> entries_ AVF_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::uint64_t> epochs_
      AVF_GUARDED_BY(mutex_);
  mutable Stats stats_ AVF_GUARDED_BY(mutex_);
};

}  // namespace avf::perfdb
