// Sensitivity analysis over the performance database (paper §5): "a
// separate tool analyzes this performance data, performs sensitivity
// analysis to determine configurations and regions of the resource space
// that require additional samples."
//
// For every configuration and every resource axis, adjacent grid samples
// (all other axes held equal) are compared; where a metric changes by more
// than the relative threshold across a grid gap, the midpoint is suggested
// as an additional sample.  The profiling driver feeds suggestions back
// through the testbed for as many refinement rounds as configured.
#pragma once

#include <string>
#include <vector>

#include "perfdb/database.hpp"
#include "perfdb/regression_tree.hpp"

namespace avf::perfdb {

struct RefinementSuggestion {
  tunable::ConfigPoint config;
  ResourcePoint point;        // the new sample to take
  std::string axis;           // axis along which behavior changes fast
  std::string metric;         // metric that triggered the suggestion
  double relative_change;     // |m1 - m0| / max(|m0|, |m1|)
};

/// Suggestions, deduplicated by (config, point), strongest changes first.
/// The order is a deterministic total order — relative change descending,
/// ties broken by (config key, point, axis, metric) — so downstream
/// refinement picks are identical across runs and thread counts.
/// `threads` > 1 fans the per-configuration scans out across a
/// work-stealing pool (0 = hardware_concurrency); the result is identical
/// to the serial scan.
std::vector<RefinementSuggestion> sensitivity_analysis(
    const PerfDatabase& db, double relative_threshold,
    std::size_t threads = 1);

/// Re-rank sensitivity suggestions by an adaptive model's uncertainty: each
/// suggestion is scored with the leaf variance of its triggering metric's
/// tree at that cell, highest first (stable — equal variances keep the
/// sensitivity_analysis total order, so the result is still deterministic).
/// Suggestions for metrics the model has no tree for score zero.  This gives
/// refinement after an adaptive profile a principled order: sample first
/// where the tree is least certain, not merely where the surface is steep.
std::vector<RefinementSuggestion> rank_by_leaf_variance(
    std::vector<RefinementSuggestion> suggestions, const AdaptiveModel& model);

}  // namespace avf::perfdb
