#include "perfdb/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "util/thread_pool.hpp"

namespace avf::perfdb {

using tunable::ConfigPoint;

namespace {

/// Scan one configuration's samples for steep gaps.  Pure over the
/// database's stored records; safe to run for distinct configurations from
/// distinct workers (the lazy grid-index build is per-configuration).
std::vector<RefinementSuggestion> analyze_config(const PerfDatabase& db,
                                                 const ConfigPoint& config,
                                                 double relative_threshold) {
  std::vector<RefinementSuggestion> out;
  std::set<ResourcePoint> seen;
  std::vector<PerfRecord> records = db.records(config);
  // Index samples by resource point for neighbor lookup.
  std::map<ResourcePoint, const tunable::QosVector*> by_point;
  for (const PerfRecord& r : records) by_point[r.resources] = &r.quality;

  for (std::size_t axis = 0; axis < db.axes().size(); ++axis) {
    std::vector<double> grid = db.grid_values(config, db.axes()[axis]);
    for (const PerfRecord& r : records) {
      // Find the next grid value along this axis and the neighbor sample
      // with all other coordinates equal.
      auto it =
          std::upper_bound(grid.begin(), grid.end(), r.resources[axis]);
      if (it == grid.end()) continue;
      ResourcePoint neighbor = r.resources;
      neighbor[axis] = *it;
      auto found = by_point.find(neighbor);
      if (found == by_point.end()) continue;

      for (const auto& m : db.schema().metrics()) {
        double m0 = r.quality.get(m.name);
        double m1 = found->second->get(m.name);
        double scale = std::max({std::abs(m0), std::abs(m1), 1e-12});
        double change = std::abs(m1 - m0) / scale;
        if (change <= relative_threshold) continue;
        ResourcePoint midpoint = r.resources;
        midpoint[axis] = 0.5 * (r.resources[axis] + neighbor[axis]);
        if (seen.insert(midpoint).second) {
          out.push_back(RefinementSuggestion{config, midpoint,
                                             db.axes()[axis], m.name,
                                             change});
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<RefinementSuggestion> sensitivity_analysis(
    const PerfDatabase& db, double relative_threshold, std::size_t threads) {
  std::vector<ConfigPoint> configs = db.configs();
  std::vector<std::vector<RefinementSuggestion>> per_config(configs.size());

  threads = util::ThreadPool::resolve_threads(threads);
  if (threads > 1 && configs.size() > 1) {
    util::ThreadPool pool(threads);
    pool.parallel_for(configs.size(), [&](std::size_t i) {
      per_config[i] = analyze_config(db, configs[i], relative_threshold);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      per_config[i] = analyze_config(db, configs[i], relative_threshold);
    }
  }

  std::vector<RefinementSuggestion> out;
  for (std::vector<RefinementSuggestion>& list : per_config) {
    out.insert(out.end(), std::make_move_iterator(list.begin()),
               std::make_move_iterator(list.end()));
  }
  // Strongest change first, with a full deterministic tiebreak: equal
  // strengths order by (config, point, axis, metric).  std::sort with a
  // strength-only comparator left tie order unspecified, which made
  // refinement's budget picks depend on the sort's internals.
  std::sort(out.begin(), out.end(),
            [](const RefinementSuggestion& a, const RefinementSuggestion& b) {
              if (a.relative_change != b.relative_change) {
                return a.relative_change > b.relative_change;
              }
              return std::tie(a.config, a.point, a.axis, a.metric) <
                     std::tie(b.config, b.point, b.axis, b.metric);
            });
  return out;
}

std::vector<RefinementSuggestion> rank_by_leaf_variance(
    std::vector<RefinementSuggestion> suggestions,
    const AdaptiveModel& model) {
  std::vector<double> scores;
  scores.reserve(suggestions.size());
  for (const RefinementSuggestion& s : suggestions) {
    auto it = model.trees.find(s.metric);
    if (it == model.trees.end() || !it->second.fitted()) {
      scores.push_back(0.0);
      continue;
    }
    scores.push_back(
        it->second.leaf_variance(model.features_of(s.config, s.point)));
  }
  std::vector<std::size_t> order(suggestions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  std::vector<RefinementSuggestion> ranked;
  ranked.reserve(suggestions.size());
  for (std::size_t i : order) ranked.push_back(std::move(suggestions[i]));
  return ranked;
}

}  // namespace avf::perfdb
