#include "perfdb/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace avf::perfdb {

using tunable::ConfigPoint;

std::vector<RefinementSuggestion> sensitivity_analysis(
    const PerfDatabase& db, double relative_threshold) {
  std::vector<RefinementSuggestion> out;
  std::set<std::pair<std::string, ResourcePoint>> seen;

  for (const ConfigPoint& config : db.configs()) {
    std::vector<PerfRecord> records = db.records(config);
    // Index samples by resource point for neighbor lookup.
    std::map<ResourcePoint, const tunable::QosVector*> by_point;
    for (const PerfRecord& r : records) by_point[r.resources] = &r.quality;

    for (std::size_t axis = 0; axis < db.axes().size(); ++axis) {
      std::vector<double> grid = db.grid_values(config, db.axes()[axis]);
      for (const PerfRecord& r : records) {
        // Find the next grid value along this axis and the neighbor sample
        // with all other coordinates equal.
        auto it = std::upper_bound(grid.begin(), grid.end(),
                                   r.resources[axis]);
        if (it == grid.end()) continue;
        ResourcePoint neighbor = r.resources;
        neighbor[axis] = *it;
        auto found = by_point.find(neighbor);
        if (found == by_point.end()) continue;

        for (const auto& m : db.schema().metrics()) {
          double m0 = r.quality.get(m.name);
          double m1 = found->second->get(m.name);
          double scale = std::max({std::abs(m0), std::abs(m1), 1e-12});
          double change = std::abs(m1 - m0) / scale;
          if (change <= relative_threshold) continue;
          ResourcePoint midpoint = r.resources;
          midpoint[axis] = 0.5 * (r.resources[axis] + neighbor[axis]);
          auto key = std::make_pair(config.key(), midpoint);
          if (seen.insert(key).second) {
            out.push_back(RefinementSuggestion{config, midpoint,
                                               db.axes()[axis], m.name,
                                               change});
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RefinementSuggestion& a, const RefinementSuggestion& b) {
              return a.relative_change > b.relative_change;
            });
  return out;
}

}  // namespace avf::perfdb
