// The profiling driver (paper §5): "a driver program executes each
// configuration repeatedly in a virtual execution environment for different
// levels of allocated resources", populating the performance database; the
// sensitivity tool then directs additional sampling where behavior changes
// fast.
//
// The driver is application-agnostic: the caller supplies a RunFn that
// builds a fresh testbed, executes one run of the given configuration under
// the given resource conditions, and returns the measured QoS vector.
#pragma once

#include <functional>
#include <vector>

#include "perfdb/database.hpp"
#include "perfdb/sensitivity.hpp"
#include "tunable/app_spec.hpp"

namespace avf::perfdb {

class ProfilingDriver {
 public:
  using RunFn = std::function<tunable::QosVector(const tunable::ConfigPoint&,
                                                 const ResourcePoint&)>;

  struct Options {
    /// Rounds of sensitivity-directed refinement after the base grid.
    int refinement_rounds = 0;
    /// Relative metric change across one grid gap that triggers refinement.
    double sensitivity_threshold = 0.5;
    /// Cap on extra samples per refinement round (strongest changes first).
    std::size_t max_suggestions_per_round = 32;
    /// Progress callback (config, point, runs_done, runs_total-estimate).
    std::function<void(const tunable::ConfigPoint&, const ResourcePoint&)>
        on_run;
  };

  explicit ProfilingDriver(RunFn run) : run_(std::move(run)) {}
  ProfilingDriver(RunFn run, Options options)
      : run_(std::move(run)), options_(std::move(options)) {}

  /// Profile every configuration of `spec` on the cartesian grid given by
  /// `grid[i]` = sample values for spec.resource_axes()[i], then apply the
  /// configured refinement rounds.
  PerfDatabase profile(const tunable::AppSpec& spec,
                       const std::vector<std::vector<double>>& grid) const;

  /// Run one refinement round against an existing database; returns the
  /// number of new samples taken.
  std::size_t refine(PerfDatabase& db) const;

 private:
  tunable::QosVector run_one(const tunable::ConfigPoint& config,
                             const ResourcePoint& at) const;

  RunFn run_;
  Options options_{};
};

}  // namespace avf::perfdb
