// The profiling driver (paper §5): "a driver program executes each
// configuration repeatedly in a virtual execution environment for different
// levels of allocated resources", populating the performance database; the
// sensitivity tool then directs additional sampling where behavior changes
// fast.
//
// The driver is application-agnostic: the caller supplies a RunFn that
// builds a fresh testbed, executes one run of the given configuration under
// the given resource conditions, and returns the measured QoS vector.
//
// Profiling the full configs x resource-grid cartesian product is the
// dominant offline cost of the framework, so the driver shards runs across
// a work-stealing thread pool (Options::threads) with a deterministic
// assembly contract: results are buffered per shard and committed into the
// PerfDatabase in canonical (grid point, config) order, so a parallel
// profile() is bit-for-bit identical — including save() bytes — to
// profile_serial().  Callers with per-run state supply a RunFactory; each
// worker thread then gets its own RunFn, so testbed/sandbox state is never
// shared across threads.
// Adaptive profiling (after "A Decision Tree Based Approach Towards
// Adaptive Profiling of Distributed Applications") caps the sandbox-run
// count instead: profile_adaptive() measures a seeded space-filling sample,
// fits one regression tree per metric, spends the remaining budget on the
// highest-variance leaves, and emits a database where every unmeasured cell
// is tree-predicted and flagged (Provenance::kPredicted).  profile_serial
// stays the untouched ground-truth path; predictions are validated against
// it by an error-bound test suite, not bit-exactness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "perfdb/database.hpp"
#include "perfdb/regression_tree.hpp"
#include "perfdb/sensitivity.hpp"
#include "tunable/app_spec.hpp"

namespace avf::perfdb {

class ProfilingDriver {
 public:
  using RunFn = std::function<tunable::QosVector(const tunable::ConfigPoint&,
                                                 const ResourcePoint&)>;
  /// Makes one RunFn per worker thread (parallel profiling); called once
  /// per worker at sweep start, from the coordinating thread.
  using RunFactory = std::function<RunFn()>;

  struct Options {
    /// Rounds of sensitivity-directed refinement after the base grid.
    int refinement_rounds = 0;
    /// Relative metric change across one grid gap that triggers refinement.
    double sensitivity_threshold = 0.5;
    /// Cap on extra samples per refinement round (strongest changes first).
    std::size_t max_suggestions_per_round = 32;
    /// Progress callback (config, point).  Serial runs invoke it before
    /// each run; parallel runs invoke it from the coordinating thread as
    /// results are committed, in canonical order.
    std::function<void(const tunable::ConfigPoint&, const ResourcePoint&)>
        on_run;
    /// Worker threads for profile()/refine(): 1 = serial (default),
    /// 0 = hardware_concurrency, N = exactly N workers.
    std::size_t threads = 1;
  };

  /// Single RunFn, shared by all workers.  With threads > 1 the RunFn is
  /// invoked concurrently and must be thread-safe (e.g. build a fresh
  /// testbed per call); use the RunFactory constructor for per-worker
  /// state.
  explicit ProfilingDriver(RunFn run);
  ProfilingDriver(RunFn run, Options options);

  /// Per-worker contexts: `make_run` is invoked once per worker thread at
  /// the start of each parallel sweep (and once total for serial runs).
  ProfilingDriver(RunFactory make_run, Options options);

  /// Profile every configuration of `spec` on the cartesian grid given by
  /// `grid[i]` = sample values for spec.resource_axes()[i], then apply the
  /// configured refinement rounds.  Shards runs across Options::threads
  /// workers; the assembled database is identical to profile_serial().
  PerfDatabase profile(const tunable::AppSpec& spec,
                       const std::vector<std::vector<double>>& grid) const;

  /// The reference single-threaded path (kept as the determinism oracle:
  /// profile() at any thread count must produce identical save() bytes).
  PerfDatabase profile_serial(const tunable::AppSpec& spec,
                              const std::vector<std::vector<double>>& grid)
      const;

  /// Run one refinement round against an existing database; returns the
  /// number of new samples taken.  Suggestion selection is deterministic:
  /// suggestions are ranked (strength desc, config, point) and the
  /// per-round budget is allocated round-robin across configurations.
  std::size_t refine(PerfDatabase& db) const;

  struct AdaptiveOptions {
    /// Cap on sandbox runs (cells measured); every other cell of the
    /// configs x grid product is tree-predicted.  Clamped to the cell
    /// count; 0 is invalid.  budget >= |cells| degenerates to the
    /// exhaustive sweep (byte-identical database, no `origin` column).
    std::size_t budget = 0;
    /// Seed of the deterministic space-filling sample (a SplitMix64
    /// Fisher-Yates permutation of the cells).  Same seed + budget =>
    /// byte-identical database at any thread count.
    std::uint64_t seed = 1;
    /// Share of the budget spent on the seeded sample before tree-guided
    /// rounds (at least one cell, at most the whole budget).
    double initial_fraction = 0.5;
    /// Cells measured per tree-guided round.
    std::size_t round_size = 16;
    /// Regression-tree shape (see RegressionTree::Options).
    std::size_t min_leaf = 2;
    std::size_t max_depth = 16;
  };

  /// Budgeted profiling: measure `options.budget` cells (seeded sample +
  /// leaf-variance-guided rounds), then fill the rest of the grid with
  /// regression-tree predictions flagged Provenance::kPredicted.
  /// Options::refinement_rounds is not applied — the tree, not the
  /// sensitivity scan, decides where the budget goes.  Rounds shard across
  /// Options::threads with the same canonical-order commit contract as
  /// profile(): the database is byte-identical at any thread count.  The
  /// fitted model is returned through `model_out` when non-null (leaf
  /// variances give sensitivity_analysis a principled refinement order).
  PerfDatabase profile_adaptive(const tunable::AppSpec& spec,
                                const std::vector<std::vector<double>>& grid,
                                const AdaptiveOptions& options,
                                AdaptiveModel* model_out = nullptr) const;

 private:
  void validate_grid(const tunable::AppSpec& spec,
                     const std::vector<std::vector<double>>& grid) const;
  std::vector<tunable::ConfigPoint> enumerate_configs(
      const tunable::AppSpec& spec) const;
  /// Grid points in canonical odometer order (last axis fastest).
  std::vector<ResourcePoint> enumerate_points(
      const std::vector<std::vector<double>>& grid) const;
  /// Deterministic refinement picks for one round, in commit order.
  std::vector<const RefinementSuggestion*> select_suggestions(
      const std::vector<RefinementSuggestion>& suggestions) const;
  std::size_t effective_threads() const;

  RunFactory make_run_;
  Options options_{};
};

}  // namespace avf::perfdb
