#include "perfdb/grid_index.hpp"

#include <algorithm>

namespace avf::perfdb {

namespace {
// Cap on the dense cell table, relative to the sample count: a complete
// grid has exactly one cell per sample, so anything much larger means the
// samples are scattered (not gridded) and a dense table would waste memory
// on holes.  Sparse configs fall back to ordered-map corner lookup.
constexpr std::size_t kDenseSlackFactor = 8;
constexpr std::size_t kDenseMinCells = 4096;
}  // namespace

void GridIndex::build(const SampleMap& samples, std::size_t axis_count) {
  samples_ = &samples;
  axis_values_.assign(axis_count, {});
  flat_.clear();
  flat_.reserve(samples.size());
  for (const auto& [point, quality] : samples) {
    for (std::size_t i = 0; i < axis_count; ++i) {
      axis_values_[i].push_back(point[i]);
    }
    flat_.push_back(FlatSample{&point, &quality});
  }
  std::size_t cell_count = samples.empty() ? 0 : 1;
  for (auto& values : axis_values_) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    cell_count *= values.size();
  }

  std::size_t dense_limit =
      std::max(kDenseMinCells, samples.size() * kDenseSlackFactor);
  dense_ = cell_count > 0 && cell_count <= dense_limit;
  cells_.clear();
  strides_.assign(axis_count, 1);
  if (dense_) {
    for (std::size_t i = axis_count; i-- > 1;) {
      strides_[i - 1] = strides_[i] * axis_values_[i].size();
    }
    cells_.assign(cell_count, nullptr);
    for (const auto& [point, quality] : samples) {
      std::size_t flat_index = 0;
      for (std::size_t i = 0; i < axis_count; ++i) {
        const auto& values = axis_values_[i];
        auto it = std::lower_bound(values.begin(), values.end(), point[i]);
        flat_index += static_cast<std::size_t>(it - values.begin()) *
                      strides_[i];
      }
      cells_[flat_index] = &quality;
    }
  }
  valid_ = true;
  ++rebuilds_;
}

GridIndex::AxisBracket GridIndex::bracket(std::size_t axis, double x) const {
  // Mirrors the reference std::set logic exactly: clamp above the sampled
  // span to the top value, clamp below (or an exact hit) to the lower
  // bound, otherwise interpolate within the bracketing pair.
  const std::vector<double>& values = axis_values_[axis];
  AxisBracket out;
  auto ge = std::lower_bound(values.begin(), values.end(), x);
  if (ge == values.end()) {
    out.lo = out.hi = values.size() - 1;
    out.lo_value = out.hi_value = values.back();
    out.t = 0.0;
  } else if (*ge == x || ge == values.begin()) {
    out.lo = out.hi = static_cast<std::size_t>(ge - values.begin());
    out.lo_value = out.hi_value = *ge;
    out.t = 0.0;
  } else {
    out.hi = static_cast<std::size_t>(ge - values.begin());
    out.lo = out.hi - 1;
    out.hi_value = *ge;
    out.lo_value = values[out.lo];
    out.t = (x - out.lo_value) / (out.hi_value - out.lo_value);
  }
  return out;
}

const tunable::QosVector* GridIndex::corner(
    const std::vector<AxisBracket>& brackets, std::size_t mask,
    ResourcePoint& scratch) const {
  if (dense_) {
    std::size_t flat_index = 0;
    for (std::size_t i = 0; i < brackets.size(); ++i) {
      std::size_t idx =
          (mask & (std::size_t{1} << i)) ? brackets[i].hi : brackets[i].lo;
      flat_index += idx * strides_[i];
    }
    return cells_[flat_index];
  }
  scratch.resize(brackets.size());
  for (std::size_t i = 0; i < brackets.size(); ++i) {
    scratch[i] = (mask & (std::size_t{1} << i)) ? brackets[i].hi_value
                                                : brackets[i].lo_value;
  }
  auto it = samples_->find(scratch);
  return it == samples_->end() ? nullptr : &it->second;
}

}  // namespace avf::perfdb
