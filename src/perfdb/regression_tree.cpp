#include "perfdb/regression_tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "util/fmt.hpp"

namespace avf::perfdb {

namespace {

/// Sum of squared deviations from the mean (two-pass, so the arithmetic —
/// and with it every split decision — is a deterministic function of the
/// sample order alone).
double sse_of(const std::vector<TreeSample>& samples,
              const std::vector<std::size_t>& indices, double mean) {
  double sse = 0.0;
  for (std::size_t i : indices) {
    double d = samples[i].value - mean;
    sse += d * d;
  }
  return sse;
}

}  // namespace

void RegressionTree::fit(const std::vector<TreeSample>& samples,
                         const Options& options) {
  if (samples.empty()) {
    throw std::invalid_argument("regression tree: empty training set");
  }
  feature_count_ = samples.front().features.size();
  for (const TreeSample& s : samples) {
    if (s.features.size() != feature_count_) {
      throw std::invalid_argument(
          util::format("regression tree: ragged feature vectors ({} vs {})",
                       s.features.size(), feature_count_));
    }
  }
  nodes_.clear();
  trace_.clear();
  std::vector<std::size_t> indices(samples.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  build(samples, indices, 0, options);
}

std::size_t RegressionTree::build(const std::vector<TreeSample>& samples,
                                  std::vector<std::size_t>& indices,
                                  std::size_t depth, const Options& options) {
  const std::size_t me = nodes_.size();
  nodes_.emplace_back();
  {
    Node& node = nodes_[me];
    node.count = indices.size();
    double sum = 0.0;
    for (std::size_t i : indices) sum += samples[i].value;
    node.mean = sum / static_cast<double>(indices.size());
    node.variance =
        sse_of(samples, indices, node.mean) / static_cast<double>(
                                                  indices.size());
  }
  const double parent_sse =
      nodes_[me].variance * static_cast<double>(indices.size());
  if (depth >= options.max_depth || indices.size() < 2 * options.min_leaf ||
      nodes_[me].variance <= 0.0) {
    return me;  // leaf
  }

  // Best split: scan every (axis, threshold) candidate; the winner is the
  // largest SSE reduction, ties resolved by the (axis, threshold) total
  // order so selection never depends on scan incidentals.
  std::size_t best_axis = npos;
  double best_threshold = 0.0;
  double best_gain = 0.0;
  std::vector<std::pair<double, double>> ordered;  // (feature, value)
  for (std::size_t axis = 0; axis < feature_count_; ++axis) {
    ordered.clear();
    ordered.reserve(indices.size());
    for (std::size_t i : indices) {
      ordered.emplace_back(samples[i].features[axis], samples[i].value);
    }
    std::sort(ordered.begin(), ordered.end());
    double total_sum = 0.0, total_sq = 0.0;
    for (const auto& [f, v] : ordered) {
      total_sum += v;
      total_sq += v * v;
    }
    // Prefix sums over the sorted order; candidate thresholds sit at the
    // midpoint between adjacent distinct feature values.  Side SSEs come
    // from sum/sum-of-squares (clamped at 0 against rounding); the
    // arithmetic order is fixed by the sort, so the scan is deterministic.
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t k = 0; k + 1 < ordered.size(); ++k) {
      left_sum += ordered[k].second;
      left_sq += ordered[k].second * ordered[k].second;
      if (ordered[k].first == ordered[k + 1].first) continue;
      std::size_t left_n = k + 1;
      std::size_t right_n = ordered.size() - left_n;
      if (left_n < options.min_leaf || right_n < options.min_leaf) continue;
      double right_sum = total_sum - left_sum;
      double right_sq = total_sq - left_sq;
      double left_sse = std::max(
          0.0, left_sq - left_sum * left_sum / static_cast<double>(left_n));
      double right_sse = std::max(
          0.0,
          right_sq - right_sum * right_sum / static_cast<double>(right_n));
      double threshold = 0.5 * (ordered[k].first + ordered[k + 1].first);
      double gain = parent_sse - (left_sse + right_sse);
      if (gain <= 0.0) continue;
      bool better =
          gain > best_gain ||
          (gain == best_gain && best_axis != npos &&
           std::tie(axis, threshold) < std::tie(best_axis, best_threshold));
      if (best_axis == npos || better) {
        best_axis = axis;
        best_threshold = threshold;
        best_gain = gain;
      }
    }
  }
  if (best_axis == npos) return me;  // no admissible split improves SSE

  trace_.push_back(SplitRecord{me, best_axis, best_threshold, best_gain});

  // Stable partition keeps each side in the original sample order, so the
  // children's statistics are computed in a deterministic order too.
  std::vector<std::size_t> left, right;
  left.reserve(indices.size());
  for (std::size_t i : indices) {
    (samples[i].features[best_axis] <= best_threshold ? left : right)
        .push_back(i);
  }
  indices.clear();
  indices.shrink_to_fit();  // recursion depth x sample count is bounded

  std::size_t left_child = build(samples, left, depth + 1, options);
  std::size_t right_child = build(samples, right, depth + 1, options);
  nodes_[me].axis = best_axis;
  nodes_[me].threshold = best_threshold;
  nodes_[me].left = left_child;
  nodes_[me].right = right_child;
  return me;
}

const RegressionTree::Node& RegressionTree::descend(
    const std::vector<double>& features) const {
  if (nodes_.empty()) {
    throw std::logic_error("regression tree: predict before fit");
  }
  if (features.size() != feature_count_) {
    throw std::invalid_argument(
        util::format("regression tree: feature vector has {} entries, tree "
                     "was fit on {}",
                     features.size(), feature_count_));
  }
  std::size_t at = 0;
  while (nodes_[at].left != npos) {
    const Node& n = nodes_[at];
    at = features[n.axis] <= n.threshold ? n.left : n.right;
  }
  return nodes_[at];
}

double RegressionTree::predict(const std::vector<double>& features) const {
  return descend(features).mean;
}

std::size_t RegressionTree::leaf_of(
    const std::vector<double>& features) const {
  return static_cast<std::size_t>(&descend(features) - nodes_.data());
}

double RegressionTree::leaf_variance(
    const std::vector<double>& features) const {
  return descend(features).variance;
}

std::vector<RegressionTree::LeafInfo> RegressionTree::leaves() const {
  std::vector<LeafInfo> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.left != npos) continue;
    out.push_back(LeafInfo{i, n.count, n.mean, n.variance});
  }
  return out;
}

std::string RegressionTree::trace_string() const {
  std::string out;
  for (const SplitRecord& s : trace_) {
    out += util::format("n{} f{}<={}\n", s.node, s.axis, s.threshold);
  }
  return out;
}

std::vector<double> AdaptiveModel::features_of(
    const tunable::ConfigPoint& config, const ResourcePoint& at) const {
  std::vector<double> features;
  features.reserve(feature_names.size());
  for (std::size_t i = 0; i < config_features; ++i) {
    features.push_back(static_cast<double>(config.get(feature_names[i])));
  }
  for (double v : at) features.push_back(v);
  if (features.size() != feature_names.size()) {
    throw std::invalid_argument(
        util::format("adaptive model: cell has {} features, model declares {}",
                     features.size(), feature_names.size()));
  }
  return features;
}

}  // namespace avf::perfdb
