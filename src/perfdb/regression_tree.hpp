// Regression trees over sampled configuration/resource cells — the model
// behind adaptive profiling (after "A Decision Tree Based Approach Towards
// Adaptive Profiling of Distributed Applications"): instead of running every
// cell of the configs x resource-grid product in the sandbox, the driver
// measures a budgeted sample, fits one tree per metric, and spends the rest
// of the budget where the trees are least certain (highest-variance leaves).
//
// Determinism discipline (matching the PR 4 parallel-driver contract): tree
// construction is a pure function of the training set.  Candidate splits are
// scanned in (feature index, threshold) order; the best split is the one
// with the largest sum-of-squared-error reduction, ties broken by the
// std::tie total order (axis, threshold), so the split sequence — and hence
// every prediction — is identical across runs, platforms, and thread counts.
// `split_trace()` exposes that sequence for golden-trace regression tests.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "perfdb/database.hpp"
#include "tunable/config.hpp"

namespace avf::perfdb {

/// One training sample: a feature vector (config parameter values followed
/// by resource-axis values) and the observed metric value.
struct TreeSample {
  std::vector<double> features;
  double value = 0.0;
};

class RegressionTree {
 public:
  struct Options {
    /// No split may produce a child with fewer samples than this.
    std::size_t min_leaf = 2;
    /// Maximum tree depth (root is depth 0).
    std::size_t max_depth = 16;
  };

  /// One recorded split, in build order (pre-order).  `gain` is the
  /// absolute SSE reduction the split achieved.
  struct SplitRecord {
    std::size_t node = 0;
    std::size_t axis = 0;
    double threshold = 0.0;
    double gain = 0.0;
  };

  /// Per-leaf statistics, in node-index (pre-order) order.
  struct LeafInfo {
    std::size_t node = 0;
    std::size_t count = 0;
    double mean = 0.0;
    /// Population variance of the leaf's training values.
    double variance = 0.0;
  };

  RegressionTree() = default;

  /// Fit on `samples` (all feature vectors must share one length).  Throws
  /// std::invalid_argument on an empty or ragged training set.
  void fit(const std::vector<TreeSample>& samples, const Options& options);

  bool fitted() const { return !nodes_.empty(); }
  std::size_t feature_count() const { return feature_count_; }

  /// Mean of the leaf `features` falls in.
  double predict(const std::vector<double>& features) const;
  /// Node index of that leaf (stable across identical fits).
  std::size_t leaf_of(const std::vector<double>& features) const;
  /// Training variance of the leaf `features` falls in.
  double leaf_variance(const std::vector<double>& features) const;

  std::vector<LeafInfo> leaves() const;
  const std::vector<SplitRecord>& split_trace() const { return trace_; }

  /// Human-readable one-line-per-split rendering of split_trace(), used by
  /// the golden-sequence regression test.
  std::string trace_string() const;

 private:
  struct Node {
    // Interior nodes route features[axis] <= threshold to `left`, else
    // `right`; leaves have left == npos.
    std::size_t axis = 0;
    double threshold = 0.0;
    std::size_t left = npos;
    std::size_t right = npos;
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t build(const std::vector<TreeSample>& samples,
                    std::vector<std::size_t>& indices, std::size_t depth,
                    const Options& options);
  const Node& descend(const std::vector<double>& features) const;

  std::vector<Node> nodes_;
  std::vector<SplitRecord> trace_;
  std::size_t feature_count_ = 0;
};

/// The fitted per-metric trees of one adaptive profiling run, plus the
/// feature layout they were trained on: config parameters first (in
/// ConfigPoint's canonical name order), then the spec's resource axes.
/// sensitivity_analysis uses the leaf variances as a principled refinement
/// order (see rank_by_leaf_variance).
struct AdaptiveModel {
  std::vector<std::string> feature_names;
  std::size_t config_features = 0;  ///< leading entries that are parameters
  std::map<std::string, RegressionTree> trees;  ///< metric name -> tree

  /// Feature vector for one cell, matching the training layout.
  std::vector<double> features_of(const tunable::ConfigPoint& config,
                                  const ResourcePoint& at) const;
};

}  // namespace avf::perfdb
