#include "perfdb/prune.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace avf::perfdb {

using tunable::ConfigPoint;
using tunable::QosVector;

namespace {

struct ConfigSamples {
  ConfigPoint config;
  std::vector<PerfRecord> records;
};

/// Common resource points of a and b, with paired qualities.
std::vector<std::pair<const QosVector*, const QosVector*>> paired(
    const ConfigSamples& a, const ConfigSamples& b) {
  std::vector<std::pair<const QosVector*, const QosVector*>> out;
  for (const PerfRecord& ra : a.records) {
    for (const PerfRecord& rb : b.records) {
      if (ra.resources == rb.resources) {
        out.emplace_back(&ra.quality, &rb.quality);
        break;
      }
    }
  }
  return out;
}

/// a dominates b: at every common point a's quality is at least as good on
/// all metrics, and strictly dominating at one or more points.
bool dominates(const tunable::MetricSchema& schema, const ConfigSamples& a,
               const ConfigSamples& b) {
  auto pairs = paired(a, b);
  if (pairs.empty()) return false;
  bool strict = false;
  for (auto [qa, qb] : pairs) {
    bool all_geq = true;
    for (const auto& m : schema.metrics()) {
      if (!tunable::at_least_as_good(qa->get(m.name), qb->get(m.name),
                                     m.direction)) {
        all_geq = false;
        break;
      }
    }
    if (!all_geq) return false;
    if (schema.dominates(*qa, *qb)) strict = true;
  }
  return strict;
}

bool equivalent(const tunable::MetricSchema& schema, const ConfigSamples& a,
                const ConfigSamples& b, double epsilon) {
  auto pairs = paired(a, b);
  if (pairs.empty() || pairs.size() != a.records.size() ||
      a.records.size() != b.records.size()) {
    return false;  // only merge configs sampled on the same grid
  }
  return std::all_of(pairs.begin(), pairs.end(), [&](const auto& p) {
    return schema.equivalent(*p.first, *p.second, epsilon);
  });
}

}  // namespace

PruneResult analyze_prune(const PerfDatabase& db, double equivalence_epsilon,
                          std::size_t threads) {
  PruneResult result;
  std::vector<ConfigSamples> all;
  for (const ConfigPoint& c : db.configs()) {
    all.push_back(ConfigSamples{c, db.records(c)});
  }
  const std::size_t n = all.size();

  // The pairwise predicates are pure functions of the sampled records, so
  // they can be evaluated up front on a pool; the marking passes below
  // then consult the precomputed matrices and stay byte-identical to the
  // serial analysis (the marking order — which representative wins a
  // merge, which domination is discovered first — is what defines the
  // result, and it never changes).
  threads = util::ThreadPool::resolve_threads(threads);
  std::vector<char> equiv;      // row-major [i * n + j], j > i only
  std::vector<char> dominated;  // [j * n + i]: all[j] dominates all[i]
  const bool precomputed = threads > 1 && n > 1;
  if (precomputed) {
    equiv.assign(n * n, 0);
    dominated.assign(n * n, 0);
    util::ThreadPool pool(threads);
    pool.parallel_for(n, [&](std::size_t i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        equiv[i * n + j] =
            equivalent(db.schema(), all[i], all[j], equivalence_epsilon) ? 1
                                                                         : 0;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        dominated[j * n + i] = dominates(db.schema(), all[j], all[i]) ? 1 : 0;
      }
    });
  }
  auto is_equivalent = [&](std::size_t i, std::size_t j) {
    return precomputed
               ? equiv[i * n + j] != 0
               : equivalent(db.schema(), all[i], all[j], equivalence_epsilon);
  };
  auto is_dominated_by = [&](std::size_t i, std::size_t j) {
    return precomputed ? dominated[j * n + i] != 0
                       : dominates(db.schema(), all[j], all[i]);
  };

  std::vector<bool> removed(n, false);

  // Pass 1: merge equivalent configurations (keep the lexicographically
  // first as representative, matching the paper's "only one of them being
  // stored").
  for (std::size_t i = 0; i < n; ++i) {
    if (removed[i]) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (removed[j]) continue;
      if (is_equivalent(i, j)) {
        removed[j] = true;
        result.merged_into[all[j].config.key()] = all[i].config.key();
      }
    }
  }

  // Pass 2: drop dominated configurations.
  for (std::size_t i = 0; i < n; ++i) {
    if (removed[i]) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || removed[j]) continue;
      if (is_dominated_by(i, j)) {
        removed[i] = true;
        result.dominated.push_back(all[i].config);
        break;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!removed[i]) result.kept.push_back(all[i].config);
  }
  return result;
}

PerfDatabase apply_prune(const PerfDatabase& db, const PruneResult& result) {
  PerfDatabase out(db.axes(), db.schema());
  for (const ConfigPoint& c : result.kept) {
    for (const PerfRecord& r : db.records(c)) {
      out.insert(r.config, r.resources, r.quality);
    }
  }
  return out;
}

}  // namespace avf::perfdb
