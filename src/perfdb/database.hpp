// The performance database (paper §5): for each configuration, sampled
// mappings from resource conditions to quality metrics, with interpolation
// to predict behavior between samples.
//
// Records live on a per-configuration grid over the application's declared
// resource axes (e.g. cpu_share x net_bps).  `predict` supports two modes:
//   kNearest     — the discrete lookup the paper's prototype used (§7.1);
//   kInterpolate — multilinear interpolation over the bracketing grid cell,
//                  with constant extrapolation outside the sampled hull and
//                  nearest-neighbor fallback for incomplete cells.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tunable/config.hpp"
#include "tunable/qos.hpp"

namespace avf::perfdb {

/// A point along the database's resource axes, in axis declaration order.
using ResourcePoint = std::vector<double>;

struct PerfRecord {
  tunable::ConfigPoint config;
  ResourcePoint resources;
  tunable::QosVector quality;
};

enum class Lookup { kNearest, kInterpolate };

class PerfDatabase {
 public:
  PerfDatabase(std::vector<std::string> resource_axes,
               tunable::MetricSchema schema);

  const std::vector<std::string>& axes() const { return axes_; }
  const tunable::MetricSchema& schema() const { return schema_; }

  /// Insert one sample; re-inserting the same (config, point) overwrites.
  void insert(const tunable::ConfigPoint& config, const ResourcePoint& at,
              const tunable::QosVector& quality);

  std::size_t size() const { return total_records_; }
  std::vector<tunable::ConfigPoint> configs() const;
  bool has_config(const tunable::ConfigPoint& config) const;
  /// All records for one configuration (unsorted).
  std::vector<PerfRecord> records(const tunable::ConfigPoint& config) const;

  /// Sampled values along `axis` for `config`, sorted ascending.
  std::vector<double> grid_values(const tunable::ConfigPoint& config,
                                  const std::string& axis) const;

  /// Predicted quality for `config` at `at`; nullopt when the config has no
  /// records at all.
  std::optional<tunable::QosVector> predict(
      const tunable::ConfigPoint& config, const ResourcePoint& at,
      Lookup mode = Lookup::kInterpolate) const;

  /// Remove an entire configuration (used by pruning).
  void erase_config(const tunable::ConfigPoint& config);

  // -- persistence (CSV: axes..., then metrics..., keyed by config) -----
  void save(std::ostream& out) const;
  static PerfDatabase load(std::istream& in);

 private:
  struct ConfigData {
    tunable::ConfigPoint config;
    // Keyed by resource point for exact-corner lookup.
    std::map<ResourcePoint, tunable::QosVector> samples;
  };

  const ConfigData* find(const tunable::ConfigPoint& config) const;
  tunable::QosVector nearest(const ConfigData& data,
                             const ResourcePoint& at) const;
  std::optional<tunable::QosVector> interpolate(const ConfigData& data,
                                                const ResourcePoint& at) const;

  std::vector<std::string> axes_;
  tunable::MetricSchema schema_;
  std::map<std::string, ConfigData> by_config_;  // key() -> data
  std::size_t total_records_ = 0;
};

}  // namespace avf::perfdb
