// The performance database (paper §5): for each configuration, sampled
// mappings from resource conditions to quality metrics, with interpolation
// to predict behavior between samples.
//
// Records live on a per-configuration grid over the application's declared
// resource axes (e.g. cpu_share x net_bps).  `predict` supports two modes:
//   kNearest     — the discrete lookup the paper's prototype used (§7.1);
//   kInterpolate — multilinear interpolation over the bracketing grid cell,
//                  with constant extrapolation outside the sampled hull and
//                  nearest-neighbor fallback for incomplete cells.
//
// Prediction is a hot path: the resource scheduler queries every stored
// configuration on every adaptation decision (§6.2).  Three tiers serve it:
//   predict           — memoizing PredictionCache over the indexed path;
//                       repeated decisions under stable resources are O(1).
//   predict_uncached  — GridIndex fast path (per-axis binary search +
//                       dense-cell corner lookup), bit-for-bit identical to
//                       the reference implementation.
//   predict_reference — the original per-call std::set rebuild, kept as the
//                       consistency oracle for tests and benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "perfdb/grid_index.hpp"
#include "perfdb/prediction_cache.hpp"
#include "tunable/config.hpp"
#include "tunable/qos.hpp"

namespace avf::perfdb {

/// Where a stored sample came from.  Exhaustive profiling produces only
/// kMeasured cells; adaptive profiling (ProfilingDriver::profile_adaptive)
/// fills the unsampled remainder of the grid with kPredicted cells from its
/// regression trees.  The distinction survives save()/load() — predicted
/// cells are flagged, never silently promoted to measurements.
enum class Provenance {
  kMeasured,   ///< ran in the sandbox
  kPredicted,  ///< regression-tree estimate, bounded-error only
};

struct PerfRecord {
  tunable::ConfigPoint config;
  ResourcePoint resources;
  tunable::QosVector quality;
  Provenance provenance = Provenance::kMeasured;
};

class PerfDatabase {
 public:
  PerfDatabase(std::vector<std::string> resource_axes,
               tunable::MetricSchema schema);

  // Value-semantic, with explicit special members: the rebuild counter is
  // atomic (not copyable), and a copied GridIndex would point into the
  // *source's* sample nodes — copies therefore invalidate their indexes
  // (they rebuild lazily on first query).  Moves keep indexes: std::map
  // moves preserve node addresses.
  PerfDatabase(const PerfDatabase& other);
  PerfDatabase& operator=(const PerfDatabase& other);
  PerfDatabase(PerfDatabase&& other) noexcept;
  PerfDatabase& operator=(PerfDatabase&& other) noexcept;

  const std::vector<std::string>& axes() const { return axes_; }
  const tunable::MetricSchema& schema() const { return schema_; }

  /// Process-unique identity of this database *object*.  Copies get a fresh
  /// uid (their contents may diverge from the source); moves transfer it.
  /// Never reused within a process, so (uid, mutation_epoch) pairs are safe
  /// cache keys across database destruction/reallocation.
  std::uint64_t uid() const { return uid_; }
  /// Bumped on every content mutation: once per insert(), once per touched
  /// configuration in insert_batch(), once per erase_config().  Consumers
  /// (the adaptation decision cache) treat a changed epoch as "any prior
  /// prediction may be stale".
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Insert one sample; re-inserting the same (config, point) overwrites
  /// (value and provenance both).
  void insert(const tunable::ConfigPoint& config, const ResourcePoint& at,
              const tunable::QosVector& quality,
              Provenance provenance = Provenance::kMeasured);

  /// Insert a batch of samples in order.  Equivalent to calling insert()
  /// per record, but each touched configuration is invalidated (prediction
  /// cache epoch + grid index) once per batch instead of once per sample —
  /// the profiling driver commits whole sweeps through this path.
  void insert_batch(const std::vector<PerfRecord>& records);

  std::size_t size() const { return total_records_; }
  /// Number of stored cells that are tree-predicted rather than measured.
  std::size_t predicted_count() const { return predicted_records_; }
  /// Provenance of the sample at (config, at); nullopt when absent.
  std::optional<Provenance> provenance(const tunable::ConfigPoint& config,
                                       const ResourcePoint& at) const;
  /// All of `config`'s stored samples are predictions (false when the
  /// config is absent or has at least one measured cell).
  bool all_predicted(const tunable::ConfigPoint& config) const;
  std::vector<tunable::ConfigPoint> configs() const;
  /// Visit every stored configuration without copying the points.
  void for_each_config(
      const std::function<void(const tunable::ConfigPoint&)>& fn) const;
  bool has_config(const tunable::ConfigPoint& config) const;
  /// All records for one configuration (unsorted).
  std::vector<PerfRecord> records(const tunable::ConfigPoint& config) const;

  /// Sampled values along `axis` for `config`, sorted ascending.
  std::vector<double> grid_values(const tunable::ConfigPoint& config,
                                  const std::string& axis) const;

  /// Predicted quality for `config` at `at`; nullopt when the config has no
  /// records at all.  Served through the prediction cache (see header
  /// comment); results for points within the same quantization bucket may
  /// be shared.
  std::optional<tunable::QosVector> predict(
      const tunable::ConfigPoint& config, const ResourcePoint& at,
      Lookup mode = Lookup::kInterpolate) const;

  /// Indexed fast path without the cache: exact for every query point.
  std::optional<tunable::QosVector> predict_uncached(
      const tunable::ConfigPoint& config, const ResourcePoint& at,
      Lookup mode = Lookup::kInterpolate) const;

  /// Reference (seed) implementation: per-call grid rebuild.  Slow; used by
  /// tests and benchmarks as the consistency oracle.
  std::optional<tunable::QosVector> predict_reference(
      const tunable::ConfigPoint& config, const ResourcePoint& at,
      Lookup mode = Lookup::kInterpolate) const;

  /// Remove an entire configuration (used by pruning).
  void erase_config(const tunable::ConfigPoint& config);

  // -- fast-path observability (bench/test layer) -----------------------
  struct PredictionStats {
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t cache_evictions = 0;
    std::size_t cache_invalidations = 0;
    std::size_t index_rebuilds = 0;
  };
  PredictionStats prediction_stats() const;
  void reset_prediction_stats();

  // -- persistence (CSV: axes..., then metrics..., keyed by config) -----
  /// A database with predicted cells additionally emits an `origin` column
  /// ("measured" / "predicted").  All-measured databases keep the historic
  /// column set, so exhaustive profiles round-trip byte-identically against
  /// pre-provenance files.
  void save(std::ostream& out) const;
  /// Parse a database saved by save().  Throws std::runtime_error naming
  /// the offending row/column on malformed numeric cells and on unknown
  /// metric direction tokens.
  static PerfDatabase load(std::istream& in);

 private:
  struct ConfigData {
    tunable::ConfigPoint config;
    // Keyed by resource point for exact-corner lookup.
    std::map<ResourcePoint, tunable::QosVector> samples;
    // Points whose sample is a tree prediction (absent = measured).
    std::set<ResourcePoint> predicted;
    // Lazily (re)built prediction index over `samples`.
    mutable GridIndex index;
  };

  const ConfigData* find(const tunable::ConfigPoint& config) const;
  const GridIndex& indexed(const ConfigData& data) const;
  std::optional<tunable::QosVector> predict_impl(const ConfigData& data,
                                                 const ResourcePoint& at,
                                                 Lookup mode) const;
  tunable::QosVector nearest(const ConfigData& data,
                             const ResourcePoint& at) const;
  std::optional<tunable::QosVector> interpolate(const ConfigData& data,
                                                const ResourcePoint& at) const;
  tunable::QosVector nearest_reference(const ConfigData& data,
                                       const ResourcePoint& at) const;
  std::optional<tunable::QosVector> interpolate_reference(
      const ConfigData& data, const ResourcePoint& at) const;

  std::vector<std::string> axes_;
  tunable::MetricSchema schema_;
  /// Shared insert step: returns the touched ConfigData, leaves cache/index
  /// invalidation to the caller (per-sample vs per-batch).
  ConfigData& insert_raw(const tunable::ConfigPoint& config,
                         const ResourcePoint& at,
                         const tunable::QosVector& quality,
                         Provenance provenance);

  static std::uint64_t next_uid();

  std::map<std::string, ConfigData> by_config_;  // key() -> data
  std::uint64_t uid_ = next_uid();
  std::uint64_t mutation_epoch_ = 0;
  std::size_t total_records_ = 0;
  std::size_t predicted_records_ = 0;
  mutable PredictionCache cache_;
  // Atomic: the parallel post-passes (prune/sensitivity) trigger lazy index
  // builds for *distinct* configurations from different workers; the
  // shared counter must not race.
  mutable std::atomic<std::size_t> index_rebuilds_{0};
};

}  // namespace avf::perfdb
