#include "perfdb/prediction_cache.hpp"

#include <bit>
#include <cmath>

namespace avf::perfdb {

namespace {
constexpr int kQuantBits = 20;  // ~1e-6 relative buckets

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                          std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

PredictionCache::PredictionCache(const PredictionCache& other) {
  util::MutexLock lock(other.mutex_);
  max_entries_ = other.max_entries_;
  entries_ = other.entries_;
  epochs_ = other.epochs_;
  stats_ = other.stats_;
}

PredictionCache& PredictionCache::operator=(const PredictionCache& other) {
  if (this != &other) {
    PredictionCache tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

PredictionCache::PredictionCache(PredictionCache&& other) noexcept {
  util::MutexLock lock(other.mutex_);
  max_entries_ = other.max_entries_;
  entries_ = std::move(other.entries_);
  epochs_ = std::move(other.epochs_);
  stats_ = other.stats_;
}

PredictionCache& PredictionCache::operator=(
    PredictionCache&& other) noexcept {
  if (this != &other) {
    // Lock order: source first, then destination — both sides of a move
    // assignment are exclusively owned by the caller in every use in the
    // tree (PerfDatabase assignment), so no concurrent opposite-order pair
    // exists.
    util::MutexLock source(other.mutex_);
    util::MutexLock dest(mutex_);
    max_entries_ = other.max_entries_;
    entries_ = std::move(other.entries_);
    epochs_ = std::move(other.epochs_);
    stats_ = other.stats_;
  }
  return *this;
}

std::uint64_t PredictionCache::quantize(double x) {
  if (!std::isfinite(x)) return std::bit_cast<std::uint64_t>(x);
  if (x == 0.0) return 0;
  int exp = 0;
  double mantissa = std::frexp(x, &exp);  // |mantissa| in [0.5, 1)
  auto q = static_cast<std::int64_t>(
      std::llround(mantissa * static_cast<double>(1 << kQuantBits)));
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(exp)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(q));
}

std::uint64_t PredictionCache::hash_key(
    const std::string& config_key, const std::vector<std::uint64_t>& qpoint,
    Lookup mode) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_bytes(h, config_key.data(), config_key.size());
  h = fnv1a_bytes(h, qpoint.data(), qpoint.size() * sizeof(std::uint64_t));
  int m = static_cast<int>(mode);
  h = fnv1a_bytes(h, &m, sizeof(m));
  return h;
}

std::uint64_t PredictionCache::epoch_of(const std::string& config_key) const {
  auto it = epochs_.find(config_key);
  return it == epochs_.end() ? 0 : it->second;
}

const std::optional<tunable::QosVector>* PredictionCache::lookup(
    const std::string& config_key, const ResourcePoint& at,
    Lookup mode) const {
  std::vector<std::uint64_t> qpoint(at.size());
  for (std::size_t i = 0; i < at.size(); ++i) qpoint[i] = quantize(at[i]);
  util::MutexLock lock(mutex_);
  auto it = entries_.find(hash_key(config_key, qpoint, mode));
  if (it == entries_.end() || it->second.mode != mode ||
      it->second.epoch != epoch_of(config_key) ||
      it->second.config_key != config_key || it->second.qpoint != qpoint) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.result;
}

void PredictionCache::store(const std::string& config_key,
                            const ResourcePoint& at, Lookup mode,
                            std::optional<tunable::QosVector> result) {
  if (max_entries_ == 0) return;
  util::MutexLock lock(mutex_);
  Entry entry;
  entry.config_key = config_key;
  entry.epoch = epoch_of(config_key);
  entry.qpoint.resize(at.size());
  for (std::size_t i = 0; i < at.size(); ++i) {
    entry.qpoint[i] = quantize(at[i]);
  }
  entry.mode = mode;
  entry.result = std::move(result);
  std::uint64_t h = hash_key(config_key, entry.qpoint, mode);
  if (entries_.size() >= max_entries_ && !entries_.contains(h)) {
    entries_.clear();
    ++stats_.evictions;
  }
  entries_[h] = std::move(entry);
}

void PredictionCache::invalidate_config(const std::string& config_key) {
  util::MutexLock lock(mutex_);
  ++epochs_[config_key];
  ++stats_.invalidations;
}

void PredictionCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
  epochs_.clear();
}

}  // namespace avf::perfdb
