// Per-configuration grid index — the prediction fast path behind
// PerfDatabase::predict.
//
// The seed implementation rebuilt a per-axis std::set of sampled grid
// values on *every* interpolate call and re-derived axis spans on every
// nearest call, making prediction O(n log n) per query.  The scheduler
// queries every stored configuration per adaptation decision, so that cost
// is on the run-time loop's critical path (paper §6.2).
//
// GridIndex is built once per configuration (lazily, on the first query
// after a mutation) and holds:
//   - sorted, deduplicated grid values per resource axis (bracketing a
//     query point is then O(log n) per axis instead of a set rebuild);
//   - a dense cell table mapping grid coordinates to sample values for
//     O(1) corner lookup (falls back to the ordered sample map when the
//     axis-value cross product is much larger than the sample count);
//   - flattened samples and per-axis spans for the nearest-neighbor scan.
//
// Mutations invalidate incrementally: overwriting an existing sample keeps
// the index (the mapped value object is updated in place), while inserting
// a new point or erasing a configuration marks the index stale so the next
// query rebuilds it.  All bracketing/corner arithmetic mirrors the
// reference implementation exactly, so indexed predictions are bit-for-bit
// identical to the slow path (asserted by tests/perfdb/test_grid_index.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "tunable/qos.hpp"

namespace avf::perfdb {

/// A point along the database's resource axes, in axis declaration order.
using ResourcePoint = std::vector<double>;

class GridIndex {
 public:
  using SampleMap = std::map<ResourcePoint, tunable::QosVector>;

  /// One axis of a bracketing query: indices into the sorted grid values
  /// plus the interpolation weight toward the upper value.
  struct AxisBracket {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double lo_value = 0.0;
    double hi_value = 0.0;
    double t = 0.0;  ///< 0 when the axis is clamped or hits a grid value
  };

  bool valid() const { return valid_; }
  void invalidate() { valid_ = false; }

  /// Account for an insert into `samples` without rebuilding.  Overwrites
  /// of an existing point keep the index intact (the mapped value is
  /// updated in place and the index stores stable node pointers); a
  /// genuinely new point invalidates it.
  void note_insert(bool was_new_point) {
    if (was_new_point) valid_ = false;
  }

  /// Rebuild from scratch.  `samples` must outlive the index (the index
  /// stores pointers into its nodes, which std::map keeps stable).
  void build(const SampleMap& samples, std::size_t axis_count);

  std::size_t rebuilds() const { return rebuilds_; }

  /// Sorted unique sampled values along one axis.
  const std::vector<double>& axis_values(std::size_t axis) const {
    return axis_values_[axis];
  }

  /// Bracket `x` along `axis` exactly as the reference interpolation does:
  /// clamp outside the sampled span, zero weight when landing on a value.
  AxisBracket bracket(std::size_t axis, double x) const;

  /// Sample at the grid corner selected by `mask` over `brackets` (bit i
  /// set -> axis i uses its hi index).  Returns nullptr when the cell is
  /// incomplete.  `scratch` is reused to avoid allocation on the sparse
  /// fallback path.
  const tunable::QosVector* corner(const std::vector<AxisBracket>& brackets,
                                   std::size_t mask,
                                   ResourcePoint& scratch) const;

  /// Samples flattened in map (lexicographic) order — same iteration order
  /// as the reference nearest-neighbor scan.
  struct FlatSample {
    const ResourcePoint* point;
    const tunable::QosVector* quality;
  };
  const std::vector<FlatSample>& flat() const { return flat_; }

  /// Per-axis sampled span (min/max grid value), used to normalize the
  /// nearest-neighbor distance.
  double span_lo(std::size_t axis) const { return axis_values_[axis].front(); }
  double span_hi(std::size_t axis) const { return axis_values_[axis].back(); }

  bool dense() const { return dense_; }

 private:
  bool valid_ = false;
  bool dense_ = false;
  std::size_t rebuilds_ = 0;
  const SampleMap* samples_ = nullptr;
  std::vector<std::vector<double>> axis_values_;
  std::vector<std::size_t> strides_;
  // Dense cell table: flattened axis-value coordinates -> sample value
  // (nullptr = hole, i.e. incomplete grid).
  std::vector<const tunable::QosVector*> cells_;
  std::vector<FlatSample> flat_;
};

}  // namespace avf::perfdb
