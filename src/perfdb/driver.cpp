#include "perfdb/driver.hpp"

#include <map>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::perfdb {

using tunable::ConfigPoint;
using tunable::QosVector;

QosVector ProfilingDriver::run_one(const ConfigPoint& config,
                                   const ResourcePoint& at) const {
  if (options_.on_run) options_.on_run(config, at);
  return run_(config, at);
}

PerfDatabase ProfilingDriver::profile(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  if (grid.size() != spec.resource_axes().size()) {
    throw std::invalid_argument(
        util::format("grid has {} axes, spec declares {}", grid.size(),
                     spec.resource_axes().size()));
  }
  for (const auto& axis_values : grid) {
    if (axis_values.empty()) {
      throw std::invalid_argument("empty grid axis");
    }
  }

  PerfDatabase db(spec.resource_axes(), spec.metrics());
  std::vector<ConfigPoint> configs = spec.space().enumerate();
  if (configs.empty()) {
    throw std::invalid_argument("configuration space is empty");
  }

  // Odometer over the resource grid.
  std::vector<std::size_t> idx(grid.size(), 0);
  for (;;) {
    ResourcePoint point(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      point[i] = grid[i][idx[i]];
    }
    for (const ConfigPoint& config : configs) {
      db.insert(config, point, run_one(config, point));
    }
    std::size_t i = grid.size();
    bool done = true;
    while (i-- > 0) {
      if (++idx[i] < grid[i].size()) {
        done = false;
        break;
      }
      idx[i] = 0;
    }
    if (done) break;
  }

  for (int round = 0; round < options_.refinement_rounds; ++round) {
    if (refine(db) == 0) break;
  }
  return db;
}

std::size_t ProfilingDriver::refine(PerfDatabase& db) const {
  std::vector<RefinementSuggestion> suggestions =
      sensitivity_analysis(db, options_.sensitivity_threshold);
  // Allocate the per-round budget round-robin across configurations
  // (strongest change first within each): a few very volatile
  // configurations must not starve refinement of everything else.
  std::map<std::string, std::vector<const RefinementSuggestion*>> per_config;
  for (const RefinementSuggestion& s : suggestions) {
    per_config[s.config.key()].push_back(&s);
  }
  std::size_t taken = 0;
  for (std::size_t rank = 0; taken < options_.max_suggestions_per_round;
       ++rank) {
    bool any = false;
    for (auto& [key, list] : per_config) {
      if (rank >= list.size()) continue;
      any = true;
      const RefinementSuggestion& s = *list[rank];
      db.insert(s.config, s.point, run_one(s.config, s.point));
      if (++taken >= options_.max_suggestions_per_round) break;
    }
    if (!any) break;
  }
  return taken;
}

}  // namespace avf::perfdb
