#include "perfdb/driver.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "util/fmt.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace avf::perfdb {

using tunable::ConfigPoint;
using tunable::QosVector;

ProfilingDriver::ProfilingDriver(RunFn run)
    : make_run_([run = std::move(run)] { return run; }) {}

ProfilingDriver::ProfilingDriver(RunFn run, Options options)
    : make_run_([run = std::move(run)] { return run; }),
      options_(std::move(options)) {}

ProfilingDriver::ProfilingDriver(RunFactory make_run, Options options)
    : make_run_(std::move(make_run)), options_(std::move(options)) {}

std::size_t ProfilingDriver::effective_threads() const {
  return util::ThreadPool::resolve_threads(options_.threads);
}

void ProfilingDriver::validate_grid(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  if (grid.size() != spec.resource_axes().size()) {
    throw std::invalid_argument(
        util::format("grid has {} axes, spec declares {}", grid.size(),
                     spec.resource_axes().size()));
  }
  for (const auto& axis_values : grid) {
    if (axis_values.empty()) {
      throw std::invalid_argument("empty grid axis");
    }
  }
}

std::vector<ConfigPoint> ProfilingDriver::enumerate_configs(
    const tunable::AppSpec& spec) const {
  std::vector<ConfigPoint> configs = spec.space().enumerate();
  if (configs.empty()) {
    throw std::invalid_argument("configuration space is empty");
  }
  return configs;
}

std::vector<ResourcePoint> ProfilingDriver::enumerate_points(
    const std::vector<std::vector<double>>& grid) const {
  // Odometer over the resource grid, last axis fastest — the canonical
  // sweep order shared by the serial and parallel paths.
  std::vector<ResourcePoint> points;
  std::vector<std::size_t> idx(grid.size(), 0);
  for (;;) {
    ResourcePoint point(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      point[i] = grid[i][idx[i]];
    }
    points.push_back(std::move(point));
    std::size_t i = grid.size();
    bool done = true;
    while (i-- > 0) {
      if (++idx[i] < grid[i].size()) {
        done = false;
        break;
      }
      idx[i] = 0;
    }
    if (done) break;
  }
  return points;
}

PerfDatabase ProfilingDriver::profile_serial(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  validate_grid(spec, grid);
  PerfDatabase db(spec.resource_axes(), spec.metrics());
  std::vector<ConfigPoint> configs = enumerate_configs(spec);
  RunFn run = make_run_();
  for (const ResourcePoint& point : enumerate_points(grid)) {
    for (const ConfigPoint& config : configs) {
      if (options_.on_run) options_.on_run(config, point);
      db.insert(config, point, run(config, point));
    }
  }
  for (int round = 0; round < options_.refinement_rounds; ++round) {
    if (refine(db) == 0) break;
  }
  return db;
}

PerfDatabase ProfilingDriver::profile(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  std::size_t threads = effective_threads();
  if (threads <= 1) return profile_serial(spec, grid);

  validate_grid(spec, grid);
  PerfDatabase db(spec.resource_axes(), spec.metrics());
  std::vector<ConfigPoint> configs = enumerate_configs(spec);
  std::vector<ResourcePoint> points = enumerate_points(grid);

  util::ThreadPool pool(threads);
  // One RunFn per worker (plus a spare slot for the calling thread, which
  // can only execute tasks during teardown): testbed state is per-worker,
  // never shared.
  std::vector<RunFn> runs(pool.size() + 1);
  for (RunFn& r : runs) r = make_run_();

  // Shard the (point, config) cartesian product across the pool; buffer
  // every result, then commit in canonical sweep order so the database —
  // and its save() bytes — are bit-for-bit those of profile_serial().
  const std::size_t total = points.size() * configs.size();
  std::vector<QosVector> results(total);
  pool.parallel_for(total, [&](std::size_t t) {
    const ConfigPoint& config = configs[t % configs.size()];
    const ResourcePoint& point = points[t / configs.size()];
    results[t] = runs[pool.current_worker()](config, point);
  });

  std::vector<PerfRecord> batch;
  batch.reserve(total);
  for (std::size_t t = 0; t < total; ++t) {
    const ConfigPoint& config = configs[t % configs.size()];
    const ResourcePoint& point = points[t / configs.size()];
    if (options_.on_run) options_.on_run(config, point);
    batch.push_back(PerfRecord{config, point, std::move(results[t])});
  }
  db.insert_batch(batch);

  for (int round = 0; round < options_.refinement_rounds; ++round) {
    if (refine(db) == 0) break;
  }
  return db;
}

std::vector<const RefinementSuggestion*> ProfilingDriver::select_suggestions(
    const std::vector<RefinementSuggestion>& suggestions) const {
  // Allocate the per-round budget round-robin across configurations
  // (strongest change first within each): a few very volatile
  // configurations must not starve refinement of everything else.
  // `suggestions` arrives totally ordered (strength desc, then config,
  // point, axis, metric — see sensitivity_analysis), and per_config is an
  // ordered map, so the selection — and therefore the commit order — is
  // identical across runs and thread counts.
  std::map<std::string, std::vector<const RefinementSuggestion*>> per_config;
  for (const RefinementSuggestion& s : suggestions) {
    per_config[s.config.key()].push_back(&s);
  }
  std::vector<const RefinementSuggestion*> picked;
  for (std::size_t rank = 0;
       picked.size() < options_.max_suggestions_per_round; ++rank) {
    bool any = false;
    for (auto& [key, list] : per_config) {
      if (rank >= list.size()) continue;
      any = true;
      picked.push_back(list[rank]);
      if (picked.size() >= options_.max_suggestions_per_round) break;
    }
    if (!any) break;
  }
  return picked;
}

std::size_t ProfilingDriver::refine(PerfDatabase& db) const {
  std::size_t threads = effective_threads();
  std::vector<RefinementSuggestion> suggestions =
      sensitivity_analysis(db, options_.sensitivity_threshold, threads);
  std::vector<const RefinementSuggestion*> picked =
      select_suggestions(suggestions);
  if (picked.empty()) return 0;

  if (threads <= 1) {
    RunFn run = make_run_();
    for (const RefinementSuggestion* s : picked) {
      if (options_.on_run) options_.on_run(s->config, s->point);
      db.insert(s->config, s->point, run(s->config, s->point));
    }
    return picked.size();
  }

  util::ThreadPool pool(threads);
  std::vector<RunFn> runs(pool.size() + 1);
  for (RunFn& r : runs) r = make_run_();
  std::vector<QosVector> results(picked.size());
  pool.parallel_for(picked.size(), [&](std::size_t i) {
    results[i] = runs[pool.current_worker()](picked[i]->config,
                                             picked[i]->point);
  });
  std::vector<PerfRecord> batch;
  batch.reserve(picked.size());
  for (std::size_t i = 0; i < picked.size(); ++i) {
    if (options_.on_run) options_.on_run(picked[i]->config, picked[i]->point);
    batch.push_back(PerfRecord{picked[i]->config, picked[i]->point,
                               std::move(results[i])});
  }
  db.insert_batch(batch);
  return picked.size();
}

PerfDatabase ProfilingDriver::profile_adaptive(
    const tunable::AppSpec& spec, const std::vector<std::vector<double>>& grid,
    const AdaptiveOptions& adaptive, AdaptiveModel* model_out) const {
  validate_grid(spec, grid);
  if (adaptive.budget == 0) {
    throw std::invalid_argument("adaptive profiling: budget must be >= 1");
  }
  std::vector<ConfigPoint> configs = enumerate_configs(spec);
  std::vector<ResourcePoint> points = enumerate_points(grid);
  const std::size_t total = points.size() * configs.size();
  const std::size_t budget = std::min(adaptive.budget, total);
  const std::vector<tunable::MetricDef>& metric_defs = spec.metrics().metrics();

  // Feature layout: config parameters in ConfigPoint's canonical (sorted
  // name) order, then the spec's resource axes.
  AdaptiveModel model;
  for (const auto& [name, value] : configs.front().values()) {
    (void)value;
    model.feature_names.push_back(name);
  }
  model.config_features = model.feature_names.size();
  for (const std::string& axis : spec.resource_axes()) {
    model.feature_names.push_back(axis);
  }

  auto cell_config = [&](std::size_t t) -> const ConfigPoint& {
    return configs[t % configs.size()];
  };
  auto cell_point = [&](std::size_t t) -> const ResourcePoint& {
    return points[t / configs.size()];
  };

  // One pool + per-worker RunFns for the whole run: rounds are small, so
  // re-hiring workers per round would dominate the sandbox time.
  const std::size_t threads = effective_threads();
  std::optional<util::ThreadPool> pool;
  std::vector<RunFn> runs;
  if (threads > 1 && budget > 1) {
    pool.emplace(threads);
    runs.resize(pool->size() + 1);
  } else {
    runs.resize(1);
  }
  for (RunFn& r : runs) r = make_run_();

  std::vector<char> measured(total, 0);
  std::vector<QosVector> values(total);
  std::size_t measured_count = 0;
  // `cells` arrives sorted ascending: results are committed — and on_run is
  // invoked — in canonical sweep order regardless of thread count.
  auto measure_cells = [&](const std::vector<std::size_t>& cells) {
    std::vector<QosVector> results(cells.size());
    if (pool) {
      pool->parallel_for(cells.size(), [&](std::size_t i) {
        const std::size_t t = cells[i];
        results[i] =
            runs[pool->current_worker()](cell_config(t), cell_point(t));
      });
    } else {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        results[i] = runs.front()(cell_config(cells[i]), cell_point(cells[i]));
      }
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t t = cells[i];
      if (options_.on_run) options_.on_run(cell_config(t), cell_point(t));
      values[t] = std::move(results[i]);
      measured[t] = 1;
    }
    measured_count += cells.size();
  };

  // Seeded space-filling sample: the first cells of a Fisher-Yates
  // permutation of the whole grid.  A permutation (rather than a stride)
  // cannot alias with the config count, and SplitMix64 makes it identical
  // across platforms.
  std::vector<std::size_t> perm(total);
  for (std::size_t t = 0; t < total; ++t) perm[t] = t;
  util::SplitMix64 rng(adaptive.seed);
  for (std::size_t i = total - 1; i > 0; --i) {
    std::size_t j = static_cast<std::size_t>(rng.next_below(i + 1));
    std::swap(perm[i], perm[j]);
  }

  std::size_t initial = budget;
  if (budget < total) {
    const double fraction = std::clamp(adaptive.initial_fraction, 0.0, 1.0);
    initial = static_cast<std::size_t>(
        fraction * static_cast<double>(budget) + 0.5);
    initial = std::clamp<std::size_t>(initial, 1, budget);
  }
  {
    std::vector<std::size_t> cells(perm.begin(),
                                   perm.begin() + static_cast<std::ptrdiff_t>(
                                                      initial));
    std::sort(cells.begin(), cells.end());
    measure_cells(cells);
  }

  const RegressionTree::Options tree_options{adaptive.min_leaf,
                                             adaptive.max_depth};
  std::size_t fitted_at = 0;  // measured_count at the last fit (0 = never)
  auto fit_trees = [&] {
    std::vector<std::size_t> sampled;
    sampled.reserve(measured_count);
    for (std::size_t t = 0; t < total; ++t) {
      if (measured[t]) sampled.push_back(t);
    }
    std::vector<std::vector<double>> features;
    features.reserve(sampled.size());
    for (std::size_t t : sampled) {
      features.push_back(model.features_of(cell_config(t), cell_point(t)));
    }
    model.trees.clear();
    for (const tunable::MetricDef& m : metric_defs) {
      std::vector<TreeSample> samples;
      samples.reserve(sampled.size());
      for (std::size_t i = 0; i < sampled.size(); ++i) {
        samples.push_back(TreeSample{features[i], values[sampled[i]].get(
                                                      m.name)});
      }
      model.trees[m.name].fit(samples, tree_options);
    }
    fitted_at = measured_count;
  };

  // One tree-guided round: rank leaves by impurity (SSE = variance x count,
  // ties by metric index then leaf node id), then draw unmeasured cells
  // round-robin across the ranked leaves, each leaf's cells in canonical
  // order.  Pure leaves contribute nothing, so a constant metric surface
  // selects nothing and the budget loop terminates instead of spinning.
  auto select_round = [&](std::size_t want) {
    struct Bucket {
      double impurity = 0.0;
      std::size_t metric = 0;
      std::size_t node = 0;
      std::vector<std::size_t> cells;
    };
    std::vector<std::map<std::size_t, RegressionTree::LeafInfo>> leaf_stats(
        metric_defs.size());
    for (std::size_t mi = 0; mi < metric_defs.size(); ++mi) {
      for (const RegressionTree::LeafInfo& leaf :
           model.trees.at(metric_defs[mi].name).leaves()) {
        leaf_stats[mi].emplace(leaf.node, leaf);
      }
    }
    std::vector<Bucket> buckets;
    std::vector<std::map<std::size_t, std::size_t>> where(metric_defs.size());
    for (std::size_t t = 0; t < total; ++t) {
      if (measured[t]) continue;
      std::vector<double> f =
          model.features_of(cell_config(t), cell_point(t));
      for (std::size_t mi = 0; mi < metric_defs.size(); ++mi) {
        const RegressionTree& tree = model.trees.at(metric_defs[mi].name);
        const std::size_t node = tree.leaf_of(f);
        const RegressionTree::LeafInfo& info = leaf_stats[mi].at(node);
        if (info.variance <= 0.0) continue;
        auto [it, fresh] = where[mi].try_emplace(node, buckets.size());
        if (fresh) {
          buckets.push_back(
              Bucket{info.variance * static_cast<double>(info.count), mi,
                     node,
                     {}});
        }
        buckets[it->second].cells.push_back(t);
      }
    }
    std::vector<std::size_t> order(buckets.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const Bucket& x = buckets[a];
      const Bucket& y = buckets[b];
      if (x.impurity != y.impurity) return x.impurity > y.impurity;
      return std::tie(x.metric, x.node) < std::tie(y.metric, y.node);
    });
    std::vector<std::size_t> chosen;
    std::vector<char> picked(total, 0);
    for (std::size_t rank = 0; chosen.size() < want; ++rank) {
      bool any = false;
      for (std::size_t bi : order) {
        const Bucket& bucket = buckets[bi];
        if (rank >= bucket.cells.size()) continue;
        any = true;
        const std::size_t t = bucket.cells[rank];
        if (picked[t]) continue;
        picked[t] = 1;
        chosen.push_back(t);
        if (chosen.size() >= want) break;
      }
      if (!any) break;
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
  };

  while (measured_count < budget) {
    fit_trees();
    const std::size_t want =
        std::min(std::max<std::size_t>(adaptive.round_size, 1),
                 budget - measured_count);
    std::vector<std::size_t> chosen = select_round(want);
    if (chosen.empty()) break;  // every unmeasured cell sits in a pure leaf
    measure_cells(chosen);
  }
  if (fitted_at != measured_count) fit_trees();

  PerfDatabase db(spec.resource_axes(), spec.metrics());
  std::vector<PerfRecord> batch;
  batch.reserve(total);
  for (std::size_t t = 0; t < total; ++t) {
    const ConfigPoint& config = cell_config(t);
    const ResourcePoint& point = cell_point(t);
    if (measured[t]) {
      batch.push_back(PerfRecord{config, point, std::move(values[t]),
                                 Provenance::kMeasured});
      continue;
    }
    std::vector<double> f = model.features_of(config, point);
    QosVector quality;
    for (const tunable::MetricDef& m : metric_defs) {
      quality.set(m.name, model.trees.at(m.name).predict(f));
    }
    batch.push_back(
        PerfRecord{config, point, std::move(quality), Provenance::kPredicted});
  }
  db.insert_batch(batch);
  if (model_out) *model_out = std::move(model);
  return db;
}

}  // namespace avf::perfdb
