#include "perfdb/driver.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/fmt.hpp"
#include "util/thread_pool.hpp"

namespace avf::perfdb {

using tunable::ConfigPoint;
using tunable::QosVector;

ProfilingDriver::ProfilingDriver(RunFn run)
    : make_run_([run = std::move(run)] { return run; }) {}

ProfilingDriver::ProfilingDriver(RunFn run, Options options)
    : make_run_([run = std::move(run)] { return run; }),
      options_(std::move(options)) {}

ProfilingDriver::ProfilingDriver(RunFactory make_run, Options options)
    : make_run_(std::move(make_run)), options_(std::move(options)) {}

std::size_t ProfilingDriver::effective_threads() const {
  return util::ThreadPool::resolve_threads(options_.threads);
}

void ProfilingDriver::validate_grid(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  if (grid.size() != spec.resource_axes().size()) {
    throw std::invalid_argument(
        util::format("grid has {} axes, spec declares {}", grid.size(),
                     spec.resource_axes().size()));
  }
  for (const auto& axis_values : grid) {
    if (axis_values.empty()) {
      throw std::invalid_argument("empty grid axis");
    }
  }
}

std::vector<ConfigPoint> ProfilingDriver::enumerate_configs(
    const tunable::AppSpec& spec) const {
  std::vector<ConfigPoint> configs = spec.space().enumerate();
  if (configs.empty()) {
    throw std::invalid_argument("configuration space is empty");
  }
  return configs;
}

std::vector<ResourcePoint> ProfilingDriver::enumerate_points(
    const std::vector<std::vector<double>>& grid) const {
  // Odometer over the resource grid, last axis fastest — the canonical
  // sweep order shared by the serial and parallel paths.
  std::vector<ResourcePoint> points;
  std::vector<std::size_t> idx(grid.size(), 0);
  for (;;) {
    ResourcePoint point(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      point[i] = grid[i][idx[i]];
    }
    points.push_back(std::move(point));
    std::size_t i = grid.size();
    bool done = true;
    while (i-- > 0) {
      if (++idx[i] < grid[i].size()) {
        done = false;
        break;
      }
      idx[i] = 0;
    }
    if (done) break;
  }
  return points;
}

PerfDatabase ProfilingDriver::profile_serial(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  validate_grid(spec, grid);
  PerfDatabase db(spec.resource_axes(), spec.metrics());
  std::vector<ConfigPoint> configs = enumerate_configs(spec);
  RunFn run = make_run_();
  for (const ResourcePoint& point : enumerate_points(grid)) {
    for (const ConfigPoint& config : configs) {
      if (options_.on_run) options_.on_run(config, point);
      db.insert(config, point, run(config, point));
    }
  }
  for (int round = 0; round < options_.refinement_rounds; ++round) {
    if (refine(db) == 0) break;
  }
  return db;
}

PerfDatabase ProfilingDriver::profile(
    const tunable::AppSpec& spec,
    const std::vector<std::vector<double>>& grid) const {
  std::size_t threads = effective_threads();
  if (threads <= 1) return profile_serial(spec, grid);

  validate_grid(spec, grid);
  PerfDatabase db(spec.resource_axes(), spec.metrics());
  std::vector<ConfigPoint> configs = enumerate_configs(spec);
  std::vector<ResourcePoint> points = enumerate_points(grid);

  util::ThreadPool pool(threads);
  // One RunFn per worker (plus a spare slot for the calling thread, which
  // can only execute tasks during teardown): testbed state is per-worker,
  // never shared.
  std::vector<RunFn> runs(pool.size() + 1);
  for (RunFn& r : runs) r = make_run_();

  // Shard the (point, config) cartesian product across the pool; buffer
  // every result, then commit in canonical sweep order so the database —
  // and its save() bytes — are bit-for-bit those of profile_serial().
  const std::size_t total = points.size() * configs.size();
  std::vector<QosVector> results(total);
  pool.parallel_for(total, [&](std::size_t t) {
    const ConfigPoint& config = configs[t % configs.size()];
    const ResourcePoint& point = points[t / configs.size()];
    results[t] = runs[pool.current_worker()](config, point);
  });

  std::vector<PerfRecord> batch;
  batch.reserve(total);
  for (std::size_t t = 0; t < total; ++t) {
    const ConfigPoint& config = configs[t % configs.size()];
    const ResourcePoint& point = points[t / configs.size()];
    if (options_.on_run) options_.on_run(config, point);
    batch.push_back(PerfRecord{config, point, std::move(results[t])});
  }
  db.insert_batch(batch);

  for (int round = 0; round < options_.refinement_rounds; ++round) {
    if (refine(db) == 0) break;
  }
  return db;
}

std::vector<const RefinementSuggestion*> ProfilingDriver::select_suggestions(
    const std::vector<RefinementSuggestion>& suggestions) const {
  // Allocate the per-round budget round-robin across configurations
  // (strongest change first within each): a few very volatile
  // configurations must not starve refinement of everything else.
  // `suggestions` arrives totally ordered (strength desc, then config,
  // point, axis, metric — see sensitivity_analysis), and per_config is an
  // ordered map, so the selection — and therefore the commit order — is
  // identical across runs and thread counts.
  std::map<std::string, std::vector<const RefinementSuggestion*>> per_config;
  for (const RefinementSuggestion& s : suggestions) {
    per_config[s.config.key()].push_back(&s);
  }
  std::vector<const RefinementSuggestion*> picked;
  for (std::size_t rank = 0;
       picked.size() < options_.max_suggestions_per_round; ++rank) {
    bool any = false;
    for (auto& [key, list] : per_config) {
      if (rank >= list.size()) continue;
      any = true;
      picked.push_back(list[rank]);
      if (picked.size() >= options_.max_suggestions_per_round) break;
    }
    if (!any) break;
  }
  return picked;
}

std::size_t ProfilingDriver::refine(PerfDatabase& db) const {
  std::size_t threads = effective_threads();
  std::vector<RefinementSuggestion> suggestions =
      sensitivity_analysis(db, options_.sensitivity_threshold, threads);
  std::vector<const RefinementSuggestion*> picked =
      select_suggestions(suggestions);
  if (picked.empty()) return 0;

  if (threads <= 1) {
    RunFn run = make_run_();
    for (const RefinementSuggestion* s : picked) {
      if (options_.on_run) options_.on_run(s->config, s->point);
      db.insert(s->config, s->point, run(s->config, s->point));
    }
    return picked.size();
  }

  util::ThreadPool pool(threads);
  std::vector<RunFn> runs(pool.size() + 1);
  for (RunFn& r : runs) r = make_run_();
  std::vector<QosVector> results(picked.size());
  pool.parallel_for(picked.size(), [&](std::size_t i) {
    results[i] = runs[pool.current_worker()](picked[i]->config,
                                             picked[i]->point);
  });
  std::vector<PerfRecord> batch;
  batch.reserve(picked.size());
  for (std::size_t i = 0; i < picked.size(); ++i) {
    if (options_.on_run) options_.on_run(picked[i]->config, picked[i]->point);
    batch.push_back(PerfRecord{picked[i]->config, picked[i]->point,
                               std::move(results[i])});
  }
  db.insert_batch(batch);
  return picked.size();
}

}  // namespace avf::perfdb
