#include "wavelet/quantize.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace avf::wavelet {

namespace {

void check_step(int step) {
  if (step < 1) throw std::invalid_argument("quantization step must be >= 1");
}

}  // namespace

void quantize_band(Band& band, int step) {
  check_step(step);
  if (step == 1) return;
  for (std::int16_t& c : band.coeffs) {
    // Dead-zone: round-to-nearest with ties away from zero.
    int v = c;
    int q = (std::abs(v) + step / 2) / step;
    c = static_cast<std::int16_t>(v < 0 ? -q : q);
  }
}

void dequantize_band(Band& band, int step) {
  check_step(step);
  if (step == 1) return;
  for (std::int16_t& c : band.coeffs) {
    c = static_cast<std::int16_t>(c * step);
  }
}

double quantize_details(Pyramid& pyramid, int step) {
  check_step(step);
  std::size_t zeros = 0, total = 0;
  for (int k = 1; k <= pyramid.levels(); ++k) {
    for (auto o : {Orientation::kLH, Orientation::kHL, Orientation::kHH}) {
      Band& band = pyramid.detail(k, o);
      quantize_band(band, step);
      total += band.count();
      for (std::int16_t c : band.coeffs) zeros += c == 0 ? 1 : 0;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(zeros) / total;
}

void dequantize_details(Pyramid& pyramid, int step) {
  check_step(step);
  for (int k = 1; k <= pyramid.levels(); ++k) {
    for (auto o : {Orientation::kLH, Orientation::kHL, Orientation::kHH}) {
      dequantize_band(pyramid.detail(k, o), step);
    }
  }
}

double psnr(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("psnr: dimension mismatch");
  }
  double mse = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      double d = static_cast<double>(a.at(x, y)) - b.at(x, y);
      mse += d * d;
    }
  }
  mse /= static_cast<double>(a.width()) * a.height();
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace avf::wavelet
