#include "wavelet/image.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace avf::wavelet {

double Image::mean_abs_diff(const Image& other) const {
  if (width_ != other.width_ || height_ != other.height_) {
    throw std::invalid_argument("mean_abs_diff: dimension mismatch");
  }
  if (pixels_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    sum += std::abs(static_cast<int>(pixels_[i]) -
                    static_cast<int>(other.pixels_[i]));
  }
  return sum / static_cast<double>(pixels_.size());
}

Image Image::synthetic(int width, int height, std::uint64_t seed) {
  Image img(width, height);
  util::SplitMix64 rng(seed);

  // Background: two-axis gradient with a seed-dependent orientation.
  double gx = rng.uniform(0.3, 1.0);
  double gy = rng.uniform(0.3, 1.0);

  // Gaussian blobs.
  struct Blob {
    double cx, cy, radius, amplitude;
  };
  std::vector<Blob> blobs;
  int n_blobs = 6 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < n_blobs; ++i) {
    blobs.push_back(Blob{rng.uniform(0, width), rng.uniform(0, height),
                         rng.uniform(width / 16.0, width / 4.0),
                         rng.uniform(-90.0, 90.0)});
  }

  // Hard-edged rectangles (keeps high-frequency content non-trivial).
  struct Rect {
    int x0, y0, x1, y1;
    double amplitude;
  };
  std::vector<Rect> rects;
  int n_rects = 3 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < n_rects; ++i) {
    int x0 = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(width)));
    int y0 =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(height)));
    int w = 8 + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(width / 4 + 1)));
    int h = 8 + static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(height / 4 + 1)));
    rects.push_back(Rect{x0, y0, std::min(width, x0 + w),
                         std::min(height, y0 + h), rng.uniform(-60.0, 60.0)});
  }

  double tex_freq = rng.uniform(0.05, 0.25);
  // Sensor-noise amplitude: keeps the wavelet detail bands from being
  // unrealistically sparse, so codec ratios land in the range the paper's
  // photographic data exhibits (see DESIGN.md calibration notes).
  constexpr int kNoise = 20;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double v = 110.0 + gx * 60.0 * x / width + gy * 60.0 * y / height;
      for (const Blob& b : blobs) {
        double dx = x - b.cx, dy = y - b.cy;
        v += b.amplitude *
             std::exp(-(dx * dx + dy * dy) / (2.0 * b.radius * b.radius));
      }
      for (const Rect& r : rects) {
        if (x >= r.x0 && x < r.x1 && y >= r.y0 && y < r.y1) v += r.amplitude;
      }
      // Mild deterministic texture (sinusoidal; compresses but not freely).
      v += 6.0 * std::sin(tex_freq * x) * std::cos(tex_freq * 0.8 * y);
      v += static_cast<double>(rng.next_below(2 * kNoise + 1)) - kNoise;
      img.at(x, y) =
          static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

Image Image::downsample(int factor) const {
  if (factor <= 0 || width_ % factor != 0 || height_ % factor != 0) {
    throw std::invalid_argument("downsample: factor must divide dimensions");
  }
  Image out(width_ / factor, height_ / factor);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      int sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          sum += at(x * factor + dx, y * factor + dy);
        }
      }
      out.at(x, y) = static_cast<std::uint8_t>(sum / (factor * factor));
    }
  }
  return out;
}

}  // namespace avf::wavelet
