// Dead-zone quantization of wavelet detail coefficients — the standard
// lossy knob of wavelet image coding.  The paper's application transmits
// losslessly (our default, step = 1), but the server can trade image
// fidelity for data volume by coarsening the detail bands; the LL band is
// never quantized (it carries the coarse image).
#pragma once

#include "wavelet/haar.hpp"

namespace avf::wavelet {

/// Quantize a band in place: c -> round(c / step).  step >= 1.
void quantize_band(Band& band, int step);

/// Invert quantize_band's scaling: c -> c * step (the rounding loss stays).
void dequantize_band(Band& band, int step);

/// Quantize every detail band of `pyramid` (LL untouched), returning the
/// fraction of coefficients that became zero — the compressibility gain.
double quantize_details(Pyramid& pyramid, int step);

/// Undo the scaling of quantize_details.
void dequantize_details(Pyramid& pyramid, int step);

/// Peak signal-to-noise ratio between two equal-sized 8-bit images, in dB
/// (infinity for identical images).
double psnr(const Image& a, const Image& b);

}  // namespace avf::wavelet
