// Progressive foveal transmission of a wavelet pyramid (paper §2.1):
// "the server transmits an area of the image that corresponds to the user's
// fovea, starting from the coarsest resolution and progressing up to the
// user-preferred resolution", never resending data the client already has.
//
// Each band is divided into fixed-size coefficient tiles; the encoder keeps
// per-session sent-state and serializes only the tiles that (a) intersect
// the requested foveal square mapped into band coordinates and (b) have not
// been sent yet.  The decoder accumulates tiles into an initially-zero
// pyramid and can reconstruct a best-effort image at any time.
//
// Payload format (little-endian):
//   u16 tile_count
//   repeated: u8 band_id | u16 tile_x | u16 tile_y | u8 w | u8 h |
//             w*h x i16 coefficients
// band_id 0 = LL; 1 + 3*(k-1) + orientation for detail level k.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/hash.hpp"
#include "wavelet/haar.hpp"

namespace avf::wavelet {

using Bytes = std::vector<std::uint8_t>;

/// Content fingerprint of a pyramid: a seeded 128-bit digest over its
/// geometry and every band's coefficients in band-id order.  Two pyramid
/// *objects* decomposed from identical images digest identically, which is
/// what lets the content-addressed tile store share serialized regions
/// across catalog images that happen to contain the same data (the old
/// pointer-keyed cache could not).  Pure function of the pyramid's
/// contents; callers memoize it per stored image (O(coefficients) walk).
util::Hash128 pyramid_content_hash(const Pyramid& pyramid);

/// Rectangular foveal request in full-resolution pixel coordinates.
struct Region {
  int cx = 0;
  int cy = 0;
  int half = 0;  // half-size: the square spans [cx-half, cx+half)
};

/// Identity of one coefficient tile inside a pyramid: band id + tile grid
/// coordinates.  A sorted TileRef list fully determines the serialized
/// payload for a given (pyramid, tile_size), which is what makes region
/// encodes cacheable across sessions.
struct TileRef {
  std::uint8_t band = 0;
  std::uint16_t tx = 0;
  std::uint16_t ty = 0;

  friend bool operator==(const TileRef&, const TileRef&) = default;
};

class ProgressiveEncoder {
 public:
  explicit ProgressiveEncoder(const Pyramid& pyramid, int tile_size = 16);

  /// Serialize all not-yet-sent tiles needed to show `region` at
  /// resolution `level`, marking them sent.  Empty result = nothing new.
  /// Equivalent to serialize_tiles(take_region_tiles(region, level)).
  Bytes encode_region(const Region& region, int level);

  /// Sent-state half of encode_region: mark all not-yet-sent tiles
  /// intersecting `region` at `level` as sent and return them in
  /// serialization order.  Empty result = nothing new.
  std::vector<TileRef> take_region_tiles(const Region& region, int level);

  /// Pure serialization half of encode_region: payload bytes for `tiles`
  /// against this encoder's pyramid.  Does not touch sent-state, so the
  /// same tile list always yields the same bytes — cache-safe.
  Bytes serialize_tiles(std::span<const TileRef> tiles) const;

  /// True once every tile of every band used by `level` has been sent.
  bool fully_sent(int level) const;

  /// Forget all sent-state (new client session).
  void reset();

  std::size_t tiles_sent() const { return tiles_sent_; }

  /// Total tiles across bands used by `level`.
  std::size_t total_tiles(int level) const;

  int tile_size() const { return tile_; }

 private:
  const Pyramid& pyramid_;
  int tile_;
  // sent_[band_id][tile_index]
  std::vector<std::vector<bool>> sent_;
  std::size_t tiles_sent_ = 0;
};

class ProgressiveDecoder {
 public:
  ProgressiveDecoder(int width, int height, int levels, int tile_size = 16);

  struct ApplyResult {
    std::size_t tiles = 0;
    std::size_t coefficients = 0;
  };

  /// Integrate a payload produced by ProgressiveEncoder::encode_region.
  /// Throws std::runtime_error on malformed input.
  ApplyResult apply(std::span<const std::uint8_t> payload);

  const Pyramid& pyramid() const { return pyramid_; }

  /// Best-effort reconstruction with whatever has arrived (missing
  /// coefficients read as zero).
  Image reconstruct(int level) const { return pyramid_.reconstruct(level); }

  /// Fraction of tiles received among the bands used by `level`.
  double coverage(int level) const;

  std::size_t coefficients_received() const { return coefficients_; }

 private:
  Pyramid pyramid_;
  int tile_;
  std::vector<std::vector<bool>> received_;
  std::size_t coefficients_ = 0;
};

namespace progdetail {

/// Band count for a pyramid with `levels` levels (LL + 3 per level).
int band_count(int levels);

/// Geometry of band `band_id` within `pyramid`.
const Band& band_by_id(const Pyramid& pyramid, int band_id);
Band& band_by_id(Pyramid& pyramid, int band_id);

/// Scale factor from full-resolution coordinates to this band's grid.
int band_scale(const Pyramid& pyramid, int band_id);

/// Whether `band_id` participates in reconstruction at `level`.
bool band_in_level(int band_id, int level);

}  // namespace progdetail

}  // namespace avf::wavelet
