// Lossless integer 2-D Haar wavelet (S-transform) and the multi-resolution
// pyramid built from it — the storage format of the visualization server
// ("images are stored at the server as wavelet coefficients", paper §2.1).
//
// 1-D pair transform: a = (x0+x1)>>1, d = x0-x1 (arithmetic shift); inverse
// x0 = a + ((d+1)>>1), x1 = x0 - d.  Exact over integers, so full-level
// reconstruction is bit-identical to the original image.
//
// Pyramid layout for an N x N image with L decomposition levels:
//   level 0        : LL band, (N>>L) x (N>>L)  — coarsest usable image
//   level k (1..L) : detail bands LH/HL/HH of size (N>>(L-k+1)) squared;
//                    combined with the level k-1 image they reconstruct the
//                    level k image of size (N>>(L-k)).
#pragma once

#include <cstdint>
#include <vector>

#include "wavelet/image.hpp"

namespace avf::wavelet {

/// One coefficient band.
struct Band {
  int width = 0;
  int height = 0;
  std::vector<std::int16_t> coeffs;

  std::int16_t at(int x, int y) const {
    return coeffs[static_cast<std::size_t>(y) * width + x];
  }
  std::int16_t& at(int x, int y) {
    return coeffs[static_cast<std::size_t>(y) * width + x];
  }
  std::size_t count() const { return coeffs.size(); }
};

enum class Orientation { kLH = 0, kHL = 1, kHH = 2 };

class Pyramid {
 public:
  /// Decompose `image` into `levels` levels.  Image dimensions must be
  /// divisible by 2^levels.
  Pyramid(const Image& image, int levels);

  /// Construct an empty (all-zero) pyramid with the given geometry — the
  /// client-side receive buffer for progressive decoding.
  Pyramid(int width, int height, int levels);

  int levels() const { return levels_; }
  int full_width() const { return width_; }
  int full_height() const { return height_; }

  /// Width/height of the image at resolution `level` (0..levels).
  int width_at(int level) const { return width_ >> (levels_ - level); }
  int height_at(int level) const { return height_ >> (levels_ - level); }

  const Band& ll() const { return ll_; }
  Band& ll() { return ll_; }
  /// Detail band for reconstruction level `k` in [1, levels].
  const Band& detail(int k, Orientation o) const;
  Band& detail(int k, Orientation o);

  /// Reconstruct the image at resolution `level` (0..levels).  With every
  /// coefficient present this is exact; with a partial pyramid (progressive
  /// reception) missing details are treated as zero.
  Image reconstruct(int level) const;

  /// Total coefficients needed to display resolution `level`.
  std::size_t coefficients_up_to(int level) const;

 private:
  int width_ = 0;
  int height_ = 0;
  int levels_ = 0;
  Band ll_;
  // details_[k-1][orientation]
  std::vector<std::vector<Band>> details_;
};

}  // namespace avf::wavelet
