// 8-bit grayscale image and deterministic synthetic image generation.
//
// The paper's server stores "large images"; we have no image corpus in this
// environment, so images are generated procedurally (smooth gradients +
// blobs + texture + hard edges) from a seed.  The mix matters: smooth areas
// make wavelet detail coefficients sparse and compressible, edges keep the
// data non-trivial, so codec ratios are realistic rather than degenerate.
#pragma once

#include <cstdint>
#include <vector>

namespace avf::wavelet {

class Image {
 public:
  Image() = default;
  Image(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * height, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size_bytes() const { return pixels_.size(); }

  std::uint8_t at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  std::uint8_t& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  const std::vector<std::uint8_t>& pixels() const { return pixels_; }

  bool operator==(const Image&) const = default;

  /// Mean absolute difference against another image of equal dimensions.
  double mean_abs_diff(const Image& other) const;

  /// Deterministic synthetic test image.
  static Image synthetic(int width, int height, std::uint64_t seed);

  /// Downsample by pixel-block averaging to (width/f, height/f); `f` must
  /// divide both dimensions.  Reference for multi-resolution tests.
  Image downsample(int factor) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace avf::wavelet
