#include "wavelet/progressive.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::wavelet {

namespace progdetail {

int band_count(int levels) { return 1 + 3 * levels; }

const Band& band_by_id(const Pyramid& pyramid, int band_id) {
  if (band_id == 0) return pyramid.ll();
  int k = (band_id - 1) / 3 + 1;
  auto o = static_cast<Orientation>((band_id - 1) % 3);
  return pyramid.detail(k, o);
}

Band& band_by_id(Pyramid& pyramid, int band_id) {
  return const_cast<Band&>(
      band_by_id(static_cast<const Pyramid&>(pyramid), band_id));
}

int band_scale(const Pyramid& pyramid, int band_id) {
  if (band_id == 0) return 1 << pyramid.levels();
  int k = (band_id - 1) / 3 + 1;
  return 1 << (pyramid.levels() - k + 1);
}

bool band_in_level(int band_id, int level) {
  if (band_id == 0) return true;
  int k = (band_id - 1) / 3 + 1;
  return k <= level;
}

namespace {

int tiles_across(int extent, int tile) { return (extent + tile - 1) / tile; }

struct TileRange {
  int tx0, ty0, tx1, ty1;  // half-open tile-index rectangle
};

/// Tiles of `band` (scale `scale`) touched by `region`; empty range when
/// the region misses the band entirely.
TileRange tiles_for_region(const Band& band, int scale, const Region& region,
                           int tile) {
  int x0 = std::max(0, region.cx - region.half);
  int y0 = std::max(0, region.cy - region.half);
  int x1 = region.cx + region.half;
  int y1 = region.cy + region.half;
  // Map to band coordinates (round outward).
  int bx0 = x0 / scale;
  int by0 = y0 / scale;
  int bx1 = std::min((x1 + scale - 1) / scale, band.width);
  int by1 = std::min((y1 + scale - 1) / scale, band.height);
  if (bx0 >= bx1 || by0 >= by1) return {0, 0, 0, 0};
  return {bx0 / tile, by0 / tile, tiles_across(bx1, tile),
          tiles_across(by1, tile)};
}

void append_u16(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace
}  // namespace progdetail

using namespace progdetail;

util::Hash128 pyramid_content_hash(const Pyramid& pyramid) {
  // Domain-seeded so pyramid fingerprints can never alias tile-store keys
  // derived from other byte streams.
  util::Hasher128 h(/*seed=*/0x70797261ULL);  // "pyra"
  h.update_u32(static_cast<std::uint32_t>(pyramid.full_width()));
  h.update_u32(static_cast<std::uint32_t>(pyramid.full_height()));
  h.update_u32(static_cast<std::uint32_t>(pyramid.levels()));
  int bands = band_count(pyramid.levels());
  for (int b = 0; b < bands; ++b) {
    const Band& band = band_by_id(pyramid, b);
    h.update_u32(static_cast<std::uint32_t>(band.width));
    h.update_u32(static_cast<std::uint32_t>(band.height));
    // Coefficients fold LSB-first via the typed update, keeping the digest
    // identical on any host endianness.
    for (std::int16_t c : band.coeffs) {
      h.update_u16(static_cast<std::uint16_t>(c));
    }
  }
  return h.finish();
}

ProgressiveEncoder::ProgressiveEncoder(const Pyramid& pyramid, int tile_size)
    : pyramid_(pyramid), tile_(tile_size) {
  if (tile_size < 1 || tile_size > 255) {
    throw std::invalid_argument("tile size must be in [1, 255]");
  }
  reset();
}

void ProgressiveEncoder::reset() {
  int bands = band_count(pyramid_.levels());
  sent_.assign(static_cast<std::size_t>(bands), {});
  for (int b = 0; b < bands; ++b) {
    const Band& band = band_by_id(pyramid_, b);
    sent_[b].assign(static_cast<std::size_t>(tiles_across(band.width, tile_)) *
                        tiles_across(band.height, tile_),
                    false);
  }
  tiles_sent_ = 0;
}

std::vector<TileRef> ProgressiveEncoder::take_region_tiles(
    const Region& region, int level) {
  if (level < 0 || level > pyramid_.levels()) {
    throw std::out_of_range(util::format("level {} out of range", level));
  }
  std::vector<TileRef> out;
  for (int b = 0; b < band_count(pyramid_.levels()); ++b) {
    if (!band_in_level(b, level)) continue;
    const Band& band = band_by_id(pyramid_, b);
    int scale = band_scale(pyramid_, b);
    TileRange tr = tiles_for_region(band, scale, region, tile_);
    int tiles_x = tiles_across(band.width, tile_);
    for (int ty = tr.ty0; ty < tr.ty1; ++ty) {
      for (int tx = tr.tx0; tx < tr.tx1; ++tx) {
        std::size_t idx = static_cast<std::size_t>(ty) * tiles_x + tx;
        if (sent_[b][idx]) continue;
        sent_[b][idx] = true;
        ++tiles_sent_;
        out.push_back(TileRef{static_cast<std::uint8_t>(b),
                              static_cast<std::uint16_t>(tx),
                              static_cast<std::uint16_t>(ty)});
      }
    }
  }
  return out;
}

Bytes ProgressiveEncoder::serialize_tiles(
    std::span<const TileRef> tiles) const {
  if (tiles.empty()) return {};
  if (tiles.size() > 0xFFFF) {
    throw std::runtime_error("too many tiles in one reply");
  }
  Bytes out;
  append_u16(out, static_cast<std::uint32_t>(tiles.size()));
  for (const TileRef& t : tiles) {
    const Band& band = band_by_id(pyramid_, t.band);
    int x0 = t.tx * tile_, y0 = t.ty * tile_;
    int w = std::min(tile_, band.width - x0);
    int h = std::min(tile_, band.height - y0);
    out.push_back(t.band);
    append_u16(out, t.tx);
    append_u16(out, t.ty);
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(h));
    for (int y = y0; y < y0 + h; ++y) {
      for (int x = x0; x < x0 + w; ++x) {
        std::uint16_t v = static_cast<std::uint16_t>(band.at(x, y));
        out.push_back(static_cast<std::uint8_t>(v));
        out.push_back(static_cast<std::uint8_t>(v >> 8));
      }
    }
  }
  return out;
}

Bytes ProgressiveEncoder::encode_region(const Region& region, int level) {
  return serialize_tiles(take_region_tiles(region, level));
}

std::size_t ProgressiveEncoder::total_tiles(int level) const {
  std::size_t n = 0;
  for (int b = 0; b < band_count(pyramid_.levels()); ++b) {
    if (band_in_level(b, level)) n += sent_[b].size();
  }
  return n;
}

bool ProgressiveEncoder::fully_sent(int level) const {
  for (int b = 0; b < band_count(pyramid_.levels()); ++b) {
    if (!band_in_level(b, level)) continue;
    for (bool s : sent_[b]) {
      if (!s) return false;
    }
  }
  return true;
}

ProgressiveDecoder::ProgressiveDecoder(int width, int height, int levels,
                                       int tile_size)
    : pyramid_(width, height, levels), tile_(tile_size) {
  if (tile_size < 1 || tile_size > 255) {
    throw std::invalid_argument("tile size must be in [1, 255]");
  }
  int bands = band_count(levels);
  received_.assign(static_cast<std::size_t>(bands), {});
  for (int b = 0; b < bands; ++b) {
    const Band& band = band_by_id(pyramid_, b);
    received_[b].assign(
        static_cast<std::size_t>(tiles_across(band.width, tile_)) *
            tiles_across(band.height, tile_),
        false);
  }
}

ProgressiveDecoder::ApplyResult ProgressiveDecoder::apply(
    std::span<const std::uint8_t> payload) {
  ApplyResult result;
  if (payload.empty()) return result;
  std::size_t at = 0;
  auto need = [&](std::size_t n) {
    if (at + n > payload.size()) {
      throw std::runtime_error("progressive: truncated payload");
    }
  };
  auto u8 = [&]() -> std::uint32_t {
    need(1);
    return payload[at++];
  };
  auto u16 = [&]() -> std::uint32_t {
    need(2);
    std::uint32_t v = payload[at] | (static_cast<std::uint32_t>(
                                        payload[at + 1])
                                     << 8);
    at += 2;
    return v;
  };
  std::uint32_t count = u16();
  for (std::uint32_t t = 0; t < count; ++t) {
    std::uint32_t b = u8();
    if (static_cast<int>(b) >= band_count(pyramid_.levels())) {
      throw std::runtime_error("progressive: bad band id");
    }
    std::uint32_t tx = u16();
    std::uint32_t ty = u16();
    std::uint32_t w = u8();
    std::uint32_t h = u8();
    Band& band = band_by_id(pyramid_, static_cast<int>(b));
    int x0 = static_cast<int>(tx) * tile_;
    int y0 = static_cast<int>(ty) * tile_;
    if (x0 + static_cast<int>(w) > band.width ||
        y0 + static_cast<int>(h) > band.height) {
      throw std::runtime_error("progressive: tile out of bounds");
    }
    for (std::uint32_t y = 0; y < h; ++y) {
      for (std::uint32_t x = 0; x < w; ++x) {
        std::uint32_t lo = u8(), hi = u8();
        band.at(x0 + static_cast<int>(x), y0 + static_cast<int>(y)) =
            static_cast<std::int16_t>(
                static_cast<std::uint16_t>(lo | (hi << 8)));
      }
    }
    int tiles_x = tiles_across(band.width, tile_);
    std::size_t idx = static_cast<std::size_t>(ty) * tiles_x + tx;
    if (!received_[b][idx]) {
      received_[b][idx] = true;
    }
    ++result.tiles;
    result.coefficients += static_cast<std::size_t>(w) * h;
  }
  coefficients_ += result.coefficients;
  if (at != payload.size()) {
    throw std::runtime_error("progressive: trailing bytes");
  }
  return result;
}

double ProgressiveDecoder::coverage(int level) const {
  std::size_t have = 0, total = 0;
  for (int b = 0; b < band_count(pyramid_.levels()); ++b) {
    if (!band_in_level(b, level)) continue;
    total += received_[b].size();
    for (bool r : received_[b]) have += r ? 1 : 0;
  }
  return total == 0 ? 0.0 : static_cast<double>(have) / total;
}

}  // namespace avf::wavelet
