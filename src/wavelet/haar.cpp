#include "wavelet/haar.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::wavelet {

namespace {

void check_geometry(int width, int height, int levels) {
  if (levels < 1 || levels > 12) {
    throw std::invalid_argument(
        util::format("pyramid levels must be in [1, 12], got {}", levels));
  }
  if (width <= 0 || height <= 0 || width % (1 << levels) != 0 ||
      height % (1 << levels) != 0) {
    throw std::invalid_argument(util::format(
        "image {}x{} not divisible by 2^{}", width, height, levels));
  }
}

/// One forward 2-D Haar step on the top-left `w x h` region of `work`
/// (stride `stride`); leaves LL in the top-left quadrant and the three
/// detail quadrants beside/below it.
void forward_step(std::vector<std::int32_t>& work, int stride, int w, int h) {
  std::vector<std::int32_t> row(static_cast<std::size_t>(std::max(w, h)));
  // Rows.
  for (int y = 0; y < h; ++y) {
    std::int32_t* base = work.data() + static_cast<std::size_t>(y) * stride;
    for (int x = 0; x < w / 2; ++x) {
      std::int32_t x0 = base[2 * x], x1 = base[2 * x + 1];
      row[x] = (x0 + x1) >> 1;          // average
      row[w / 2 + x] = x0 - x1;         // difference
    }
    std::copy(row.begin(), row.begin() + w, base);
  }
  // Columns.
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h / 2; ++y) {
      std::int32_t x0 = work[static_cast<std::size_t>(2 * y) * stride + x];
      std::int32_t x1 =
          work[static_cast<std::size_t>(2 * y + 1) * stride + x];
      row[y] = (x0 + x1) >> 1;
      row[h / 2 + y] = x0 - x1;
    }
    for (int y = 0; y < h; ++y) {
      work[static_cast<std::size_t>(y) * stride + x] = row[y];
    }
  }
}

/// One inverse 2-D Haar step: quadrants -> interleaved image of `w x h`.
void inverse_step(std::vector<std::int32_t>& work, int stride, int w, int h) {
  std::vector<std::int32_t> col(static_cast<std::size_t>(std::max(w, h)));
  // Columns first (inverse of forward's column pass).
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h / 2; ++y) {
      std::int32_t a = work[static_cast<std::size_t>(y) * stride + x];
      std::int32_t d =
          work[static_cast<std::size_t>(h / 2 + y) * stride + x];
      std::int32_t x0 = a + ((d + 1) >> 1);
      col[2 * y] = x0;
      col[2 * y + 1] = x0 - d;
    }
    for (int y = 0; y < h; ++y) {
      work[static_cast<std::size_t>(y) * stride + x] = col[y];
    }
  }
  // Rows.
  for (int y = 0; y < h; ++y) {
    std::int32_t* base = work.data() + static_cast<std::size_t>(y) * stride;
    for (int x = 0; x < w / 2; ++x) {
      std::int32_t a = base[x];
      std::int32_t d = base[w / 2 + x];
      std::int32_t x0 = a + ((d + 1) >> 1);
      col[2 * x] = x0;
      col[2 * x + 1] = x0 - d;
    }
    std::copy(col.begin(), col.begin() + w, base);
  }
}

Band make_band(int w, int h) {
  Band b;
  b.width = w;
  b.height = h;
  b.coeffs.assign(static_cast<std::size_t>(w) * h, 0);
  return b;
}

}  // namespace

Pyramid::Pyramid(int width, int height, int levels)
    : width_(width), height_(height), levels_(levels) {
  check_geometry(width, height, levels);
  ll_ = make_band(width >> levels, height >> levels);
  details_.resize(static_cast<std::size_t>(levels));
  for (int k = 1; k <= levels; ++k) {
    int bw = width >> (levels - k + 1);
    int bh = height >> (levels - k + 1);
    details_[k - 1] = {make_band(bw, bh), make_band(bw, bh),
                       make_band(bw, bh)};
  }
}

Pyramid::Pyramid(const Image& image, int levels)
    : Pyramid(image.width(), image.height(), levels) {
  // Full forward transform in an int32 working frame, then split quadrants
  // into bands.
  std::vector<std::int32_t> work(
      static_cast<std::size_t>(width_) * height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      work[static_cast<std::size_t>(y) * width_ + x] = image.at(x, y);
    }
  }
  int w = width_, h = height_;
  for (int step = 0; step < levels; ++step) {
    forward_step(work, width_, w, h);
    // The detail quadrants produced by this step correspond to
    // reconstruction level k = levels - step.
    int k = levels_ - step;
    Band& lh = details_[k - 1][static_cast<int>(Orientation::kLH)];
    Band& hl = details_[k - 1][static_cast<int>(Orientation::kHL)];
    Band& hh = details_[k - 1][static_cast<int>(Orientation::kHH)];
    for (int y = 0; y < h / 2; ++y) {
      for (int x = 0; x < w / 2; ++x) {
        hl.at(x, y) = static_cast<std::int16_t>(
            work[static_cast<std::size_t>(y) * width_ + w / 2 + x]);
        lh.at(x, y) = static_cast<std::int16_t>(
            work[static_cast<std::size_t>(h / 2 + y) * width_ + x]);
        hh.at(x, y) = static_cast<std::int16_t>(
            work[static_cast<std::size_t>(h / 2 + y) * width_ + w / 2 + x]);
      }
    }
    w /= 2;
    h /= 2;
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      ll_.at(x, y) = static_cast<std::int16_t>(
          work[static_cast<std::size_t>(y) * width_ + x]);
    }
  }
}

const Band& Pyramid::detail(int k, Orientation o) const {
  if (k < 1 || k > levels_) {
    throw std::out_of_range(util::format("detail level {} not in [1,{}]", k,
                                         levels_));
  }
  return details_[k - 1][static_cast<int>(o)];
}

Band& Pyramid::detail(int k, Orientation o) {
  if (k < 1 || k > levels_) {
    throw std::out_of_range(util::format("detail level {} not in [1,{}]", k,
                                         levels_));
  }
  return details_[k - 1][static_cast<int>(o)];
}

Image Pyramid::reconstruct(int level) const {
  if (level < 0 || level > levels_) {
    throw std::out_of_range(
        util::format("level {} not in [0,{}]", level, levels_));
  }
  int out_w = width_at(level);
  int out_h = height_at(level);
  std::vector<std::int32_t> work(static_cast<std::size_t>(out_w) * out_h);
  // Seed with LL.
  for (int y = 0; y < ll_.height; ++y) {
    for (int x = 0; x < ll_.width; ++x) {
      work[static_cast<std::size_t>(y) * out_w + x] = ll_.at(x, y);
    }
  }
  for (int k = 1; k <= level; ++k) {
    const Band& lh = detail(k, Orientation::kLH);
    const Band& hl = detail(k, Orientation::kHL);
    const Band& hh = detail(k, Orientation::kHH);
    int w = lh.width * 2, h = lh.height * 2;
    // Lay detail quadrants next to the current LL region in the frame.
    for (int y = 0; y < lh.height; ++y) {
      for (int x = 0; x < lh.width; ++x) {
        work[static_cast<std::size_t>(y) * out_w + w / 2 + x] = hl.at(x, y);
        work[static_cast<std::size_t>(h / 2 + y) * out_w + x] = lh.at(x, y);
        work[static_cast<std::size_t>(h / 2 + y) * out_w + w / 2 + x] =
            hh.at(x, y);
      }
    }
    inverse_step(work, out_w, w, h);
  }
  Image img(out_w, out_h);
  for (int y = 0; y < out_h; ++y) {
    for (int x = 0; x < out_w; ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(std::clamp(
          work[static_cast<std::size_t>(y) * out_w + x], 0, 255));
    }
  }
  return img;
}

std::size_t Pyramid::coefficients_up_to(int level) const {
  std::size_t n = ll_.count();
  for (int k = 1; k <= level; ++k) {
    n += 3 * detail(k, Orientation::kLH).count();
  }
  return n;
}

}  // namespace avf::wavelet
