#include "wavelet/haar.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::wavelet {

namespace {

void check_geometry(int width, int height, int levels) {
  if (levels < 1 || levels > 12) {
    throw std::invalid_argument(
        util::format("pyramid levels must be in [1, 12], got {}", levels));
  }
  if (width <= 0 || height <= 0 || width % (1 << levels) != 0 ||
      height % (1 << levels) != 0) {
    throw std::invalid_argument(util::format(
        "image {}x{} not divisible by 2^{}", width, height, levels));
  }
}

/// One forward 2-D Haar step on the top-left `w x h` region of `work`
/// (stride `stride`); leaves LL in the top-left quadrant and the three
/// detail quadrants beside/below it.
///
/// `scratch` must hold at least w*h values and is reused across levels (a
/// single allocation per transform).  Both passes walk rows through
/// pointers: the column lift reads the two *input rows* of each output row
/// pair sequentially instead of striding down one column at a time, so the
/// whole step is sequential in memory — no per-pixel y*stride+x
/// re-multiplication anywhere.  The arithmetic is element-for-element that
/// of the textbook loops, so coefficients are bit-identical.
void forward_step(std::int32_t* work, int stride, int w, int h,
                  std::int32_t* scratch) {
  const int half_w = w / 2;
  const int half_h = h / 2;
  // Rows: averages into the left half, differences into the right.
  for (int y = 0; y < h; ++y) {
    std::int32_t* base = work + static_cast<std::size_t>(y) * stride;
    const std::int32_t* in = base;
    for (int x = 0; x < half_w; ++x) {
      std::int32_t x0 = in[0], x1 = in[1];
      in += 2;
      scratch[x] = (x0 + x1) >> 1;       // average
      scratch[half_w + x] = x0 - x1;     // difference
    }
    std::copy(scratch, scratch + w, base);
  }
  // Columns, walked row-wise: row pair (2y, 2y+1) -> average row y and
  // difference row half_h + y, assembled in scratch then copied back.
  for (int y = 0; y < half_h; ++y) {
    const std::int32_t* r0 = work + static_cast<std::size_t>(2 * y) * stride;
    const std::int32_t* r1 = r0 + stride;
    std::int32_t* avg = scratch + static_cast<std::size_t>(y) * w;
    std::int32_t* dif = scratch + static_cast<std::size_t>(half_h + y) * w;
    for (int x = 0; x < w; ++x) {
      avg[x] = (r0[x] + r1[x]) >> 1;
      dif[x] = r0[x] - r1[x];
    }
  }
  for (int y = 0; y < h; ++y) {
    const std::int32_t* src = scratch + static_cast<std::size_t>(y) * w;
    std::copy(src, src + w, work + static_cast<std::size_t>(y) * stride);
  }
}

/// One inverse 2-D Haar step: quadrants -> interleaved image of `w x h`.
/// Same contract as forward_step (scratch >= w*h, bit-identical results).
void inverse_step(std::int32_t* work, int stride, int w, int h,
                  std::int32_t* scratch) {
  const int half_w = w / 2;
  const int half_h = h / 2;
  // Columns first (inverse of forward's column pass), walked row-wise:
  // average row y + difference row half_h + y -> output rows 2y and 2y+1.
  for (int y = 0; y < half_h; ++y) {
    const std::int32_t* a_row = work + static_cast<std::size_t>(y) * stride;
    const std::int32_t* d_row =
        work + static_cast<std::size_t>(half_h + y) * stride;
    std::int32_t* o0 = scratch + static_cast<std::size_t>(2 * y) * w;
    std::int32_t* o1 = o0 + w;
    for (int x = 0; x < w; ++x) {
      std::int32_t d = d_row[x];
      std::int32_t x0 = a_row[x] + ((d + 1) >> 1);
      o0[x] = x0;
      o1[x] = x0 - d;
    }
  }
  for (int y = 0; y < h; ++y) {
    const std::int32_t* src = scratch + static_cast<std::size_t>(y) * w;
    std::copy(src, src + w, work + static_cast<std::size_t>(y) * stride);
  }
  // Rows (scratch's first row doubles as the per-row pair buffer).
  for (int y = 0; y < h; ++y) {
    std::int32_t* base = work + static_cast<std::size_t>(y) * stride;
    for (int x = 0; x < half_w; ++x) {
      std::int32_t d = base[half_w + x];
      std::int32_t x0 = base[x] + ((d + 1) >> 1);
      scratch[2 * x] = x0;
      scratch[2 * x + 1] = x0 - d;
    }
    std::copy(scratch, scratch + w, base);
  }
}

Band make_band(int w, int h) {
  Band b;
  b.width = w;
  b.height = h;
  b.coeffs.assign(static_cast<std::size_t>(w) * h, 0);
  return b;
}

}  // namespace

Pyramid::Pyramid(int width, int height, int levels)
    : width_(width), height_(height), levels_(levels) {
  check_geometry(width, height, levels);
  ll_ = make_band(width >> levels, height >> levels);
  details_.resize(static_cast<std::size_t>(levels));
  for (int k = 1; k <= levels; ++k) {
    int bw = width >> (levels - k + 1);
    int bh = height >> (levels - k + 1);
    details_[k - 1] = {make_band(bw, bh), make_band(bw, bh),
                       make_band(bw, bh)};
  }
}

Pyramid::Pyramid(const Image& image, int levels)
    : Pyramid(image.width(), image.height(), levels) {
  // Full forward transform in an int32 working frame, then split quadrants
  // into bands.  One scratch buffer serves every level's lifting step.
  std::vector<std::int32_t> work(
      static_cast<std::size_t>(width_) * height_);
  std::vector<std::int32_t> scratch(work.size());
  const std::uint8_t* pixels = image.pixels().data();
  for (std::size_t i = 0; i < work.size(); ++i) work[i] = pixels[i];
  int w = width_, h = height_;
  for (int step = 0; step < levels; ++step) {
    forward_step(work.data(), width_, w, h, scratch.data());
    // The detail quadrants produced by this step correspond to
    // reconstruction level k = levels - step.
    int k = levels_ - step;
    Band& lh = details_[k - 1][static_cast<int>(Orientation::kLH)];
    Band& hl = details_[k - 1][static_cast<int>(Orientation::kHL)];
    Band& hh = details_[k - 1][static_cast<int>(Orientation::kHH)];
    const int half_w = w / 2, half_h = h / 2;
    for (int y = 0; y < half_h; ++y) {
      const std::int32_t* top =
          work.data() + static_cast<std::size_t>(y) * width_;
      const std::int32_t* bot =
          work.data() + static_cast<std::size_t>(half_h + y) * width_;
      std::int16_t* hl_row = hl.coeffs.data() +
                             static_cast<std::size_t>(y) * half_w;
      std::int16_t* lh_row = lh.coeffs.data() +
                             static_cast<std::size_t>(y) * half_w;
      std::int16_t* hh_row = hh.coeffs.data() +
                             static_cast<std::size_t>(y) * half_w;
      for (int x = 0; x < half_w; ++x) {
        hl_row[x] = static_cast<std::int16_t>(top[half_w + x]);
        lh_row[x] = static_cast<std::int16_t>(bot[x]);
        hh_row[x] = static_cast<std::int16_t>(bot[half_w + x]);
      }
    }
    w /= 2;
    h /= 2;
  }
  for (int y = 0; y < h; ++y) {
    const std::int32_t* src =
        work.data() + static_cast<std::size_t>(y) * width_;
    std::int16_t* dst = ll_.coeffs.data() + static_cast<std::size_t>(y) * w;
    for (int x = 0; x < w; ++x) dst[x] = static_cast<std::int16_t>(src[x]);
  }
}

const Band& Pyramid::detail(int k, Orientation o) const {
  if (k < 1 || k > levels_) {
    throw std::out_of_range(util::format("detail level {} not in [1,{}]", k,
                                         levels_));
  }
  return details_[k - 1][static_cast<int>(o)];
}

Band& Pyramid::detail(int k, Orientation o) {
  if (k < 1 || k > levels_) {
    throw std::out_of_range(util::format("detail level {} not in [1,{}]", k,
                                         levels_));
  }
  return details_[k - 1][static_cast<int>(o)];
}

Image Pyramid::reconstruct(int level) const {
  if (level < 0 || level > levels_) {
    throw std::out_of_range(
        util::format("level {} not in [0,{}]", level, levels_));
  }
  int out_w = width_at(level);
  int out_h = height_at(level);
  std::vector<std::int32_t> work(static_cast<std::size_t>(out_w) * out_h);
  std::vector<std::int32_t> scratch(work.size());
  // Seed with LL.
  for (int y = 0; y < ll_.height; ++y) {
    const std::int16_t* src =
        ll_.coeffs.data() + static_cast<std::size_t>(y) * ll_.width;
    std::int32_t* dst = work.data() + static_cast<std::size_t>(y) * out_w;
    for (int x = 0; x < ll_.width; ++x) dst[x] = src[x];
  }
  for (int k = 1; k <= level; ++k) {
    const Band& lh = detail(k, Orientation::kLH);
    const Band& hl = detail(k, Orientation::kHL);
    const Band& hh = detail(k, Orientation::kHH);
    int w = lh.width * 2, h = lh.height * 2;
    const int half_w = lh.width, half_h = lh.height;
    // Lay detail quadrants next to the current LL region in the frame.
    for (int y = 0; y < half_h; ++y) {
      std::int32_t* top = work.data() + static_cast<std::size_t>(y) * out_w;
      std::int32_t* bot =
          work.data() + static_cast<std::size_t>(half_h + y) * out_w;
      const std::int16_t* hl_row =
          hl.coeffs.data() + static_cast<std::size_t>(y) * half_w;
      const std::int16_t* lh_row =
          lh.coeffs.data() + static_cast<std::size_t>(y) * half_w;
      const std::int16_t* hh_row =
          hh.coeffs.data() + static_cast<std::size_t>(y) * half_w;
      for (int x = 0; x < half_w; ++x) {
        top[half_w + x] = hl_row[x];
        bot[x] = lh_row[x];
        bot[half_w + x] = hh_row[x];
      }
    }
    inverse_step(work.data(), out_w, w, h, scratch.data());
  }
  Image img(out_w, out_h);
  for (int y = 0; y < out_h; ++y) {
    const std::int32_t* src =
        work.data() + static_cast<std::size_t>(y) * out_w;
    for (int x = 0; x < out_w; ++x) {
      img.at(x, y) =
          static_cast<std::uint8_t>(std::clamp(src[x], 0, 255));
    }
  }
  return img;
}

std::size_t Pyramid::coefficients_up_to(int level) const {
  std::size_t n = ll_.count();
  for (int k = 1; k <= level; ++k) {
    n += 3 * detail(k, Orientation::kLH).count();
  }
  return n;
}

}  // namespace avf::wavelet
