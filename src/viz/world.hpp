// Experiment wiring for the Active Visualization application: the tunable
// application specification, a simulated two-host world (client + server on
// a LAN, each in its own sandbox), whole-session runners for fixed and
// adaptive configurations, and the profiling hookup that populates the
// performance database by running the app in the virtual testbed
// (paper §5.2, §7.1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/monitor.hpp"
#include "adapt/preferences.hpp"
#include "adapt/scheduler.hpp"
#include "adapt/steering.hpp"
#include "perfdb/database.hpp"
#include "perfdb/driver.hpp"
#include "sandbox/sandbox.hpp"
#include "sandbox/schedule.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tunable/app_spec.hpp"
#include "util/hash.hpp"
#include "viz/client.hpp"
#include "viz/server.hpp"

namespace avf::viz {

/// The tunability specification of Active Visualization (paper Figure 2):
/// control parameters dR in {80,160,320}, c in {none,lzw,bwt}, l in {3,4};
/// QoS metrics transmit_time / response_time (lower better) and resolution
/// (higher better); resource axes cpu_share and net_bps; one task module
/// and the notify-server-compression transition.
const tunable::AppSpec& viz_app_spec();

/// Deterministic synthetic image / pyramid, memoized process-wide (the
/// "images stored in the server").
const wavelet::Image& cached_image(int size, std::uint64_t seed);
std::shared_ptr<const wavelet::Pyramid> cached_pyramid(int size,
                                                       std::uint64_t seed,
                                                       int levels);

/// A memoized pyramid together with its content hash (the tile-store key
/// prefix).  The hash is computed once per (size, seed, levels) and cached
/// alongside the pyramid, so profiling sweeps building thousands of worlds
/// never rehash the same coefficients.
struct PyramidEntry {
  std::shared_ptr<const wavelet::Pyramid> pyramid;
  util::Hash128 content_hash;
};
PyramidEntry cached_pyramid_entry(int size, std::uint64_t seed, int levels);

struct WorldSetup {
  /// Concurrent viz clients, each with its own channel over the one shared
  /// link, its own sandbox on the client host, and session id i+1.
  int client_count = 1;

  // Hosts (speeds in ops/s; the 450 Mops default = the paper's PII-450).
  double client_speed = 450e6;
  double server_speed = 450e6;
  std::uint64_t memory_bytes = 128ull << 20;

  // Link: 100 Mbps LAN with a small switch latency by default; experiments
  // vary the *available* bandwidth by resetting the link bandwidth.
  double link_bandwidth_bps = 12.5e6;
  double link_latency_s = 0.005;

  // Sandbox limits.
  double client_cpu_share = 1.0;
  double server_cpu_share = 1.0;
  std::optional<double> client_net_bps;
  std::optional<double> server_net_bps;
  sandbox::CpuEnforcement enforcement = sandbox::CpuEnforcement::kFluid;
  sandbox::NetEnforcement net_enforcement = sandbox::NetEnforcement::kFluid;
  double quantum = 0.005;

  // Image store.
  int image_size = 1024;
  int levels = 4;
  std::uint64_t image_seed = 2026;
  int image_count = 10;
  /// When > 0, the catalog holds image_count *distinct* pyramid objects
  /// whose contents repeat every unique_image_contents images (image i is
  /// synthesized from seed image_seed + i % unique_image_contents).  This
  /// models a server storing duplicate data under different names: pointer
  /// identity cannot dedup it, content addressing can (the dedup
  /// benchmarks measure exactly this gap).  0 — the default — keeps the
  /// historical path where each image id gets the process-wide shared
  /// pyramid for its own seed.
  int unique_image_contents = 0;

  VizServer::Options server_options{};
  VizClient::Options client_options{};
};

/// One fully wired simulation universe: N client sandboxes, one server,
/// one shared link with one channel per client.  The single-argument
/// accessors address client 0 and keep the historical single-client API.
class VizWorld {
 public:
  explicit VizWorld(const WorldSetup& setup);

  sim::Simulator& simulator() { return sim_; }
  sim::Link& link() { return *link_; }
  int client_count() const { return setup_.client_count; }

  /// The client-side channel endpoint (tests inject protocol traffic here).
  sim::Endpoint& client_endpoint(std::size_t i = 0) {
    return channels_[i]->a();
  }
  /// The server-side endpoint of client i's channel (one serve loop each).
  sim::Endpoint& server_endpoint(std::size_t i = 0) {
    return channels_[i]->b();
  }
  sandbox::Sandbox& client_box(std::size_t i = 0) { return *client_boxes_[i]; }
  sandbox::Sandbox& server_box() { return *server_box_; }
  VizServer& server() { return *server_; }

  /// Spawn one server serve() loop per client channel.
  void spawn_server_loops();

  /// Build client i in fixed-configuration mode (session id i+1).
  VizClient& make_client_at(std::size_t i,
                            const tunable::ConfigPoint& fixed_config);
  /// Build client i in adaptive mode (steering + monitoring attached).
  VizClient& make_client_at(std::size_t i, adapt::SteeringAgent& steering,
                            adapt::MonitoringAgent& monitor);

  /// Single-client compatibility: build/get client 0.
  VizClient& make_client(const tunable::ConfigPoint& fixed_config) {
    return make_client_at(0, fixed_config);
  }
  VizClient& make_client(adapt::SteeringAgent& steering,
                         adapt::MonitoringAgent& monitor) {
    return make_client_at(0, steering, monitor);
  }

  VizClient& client(std::size_t i = 0) { return *clients_[i]; }

 private:
  WorldSetup setup_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  sim::Link* link_ = nullptr;
  std::vector<sim::Channel*> channels_;
  std::vector<std::unique_ptr<sandbox::Sandbox>> client_boxes_;
  std::unique_ptr<sandbox::Sandbox> server_box_;
  std::unique_ptr<VizServer> server_;
  std::vector<std::unique_ptr<VizClient>> clients_;
};

/// Timed resource variations applied during a session.
struct ResourceSchedule {
  /// Client CPU-share steps (paper Exp 2/3).
  std::vector<sandbox::CapChange> client_cpu;
  /// Link ("network between server and client") bandwidth steps, bytes/s
  /// (paper Exp 1).
  std::vector<std::pair<sim::SimTime, double>> link_bandwidth;
};

struct SessionResult {
  std::vector<VizClient::ImageStats> images;
  std::vector<adapt::AdaptationController::AdaptationEvent> adaptations;
  tunable::ConfigPoint initial_config;
  double total_time = 0.0;
};

/// Run a non-adaptive session: `images` downloads under `config`.
SessionResult run_fixed_session(const WorldSetup& setup,
                                const tunable::ConfigPoint& config,
                                const ResourceSchedule& schedule = {});

/// Aggregate result of a multi-client run: one SessionResult per client
/// (client i at index i), plus the simulated makespan.
struct MultiSessionResult {
  std::vector<SessionResult> clients;
  double total_time = 0.0;
};

/// Bit-exact digest of a multi-client result: FNV-1a over the IEEE-754
/// patterns of every per-image stat in client order.  Two runs of the same
/// seeded world must produce equal fingerprints at any client count.
std::uint64_t result_fingerprint(const MultiSessionResult& result);

/// Bit-exact digest of the *decision traces* of a multi-client result:
/// per session, the initial configuration and every adaptation event
/// (time, from/to configs, preference index, estimate bit patterns).  This
/// is the byte-equality witness for the decision-cache benchmarks — two
/// runs whose adaptation behavior matches exactly hash equal even when
/// their image stats are not compared.
std::uint64_t adaptation_fingerprint(const MultiSessionResult& result);

/// Run `setup.client_count` non-adaptive clients concurrently, all under
/// `config`, each downloading `setup.image_count` images.
MultiSessionResult run_multi_fixed_session(
    const WorldSetup& setup, const tunable::ConfigPoint& config,
    const ResourceSchedule& schedule = {});

struct AdaptiveOptions {
  adapt::MonitoringAgent::Options monitor{};
  adapt::ResourceScheduler::Options scheduler{};
  adapt::AdaptationController::Options controller{};
  /// Shared decision memo attached to every per-client scheduler in the
  /// run (null = each scheduler evaluates the candidate set itself).
  /// Attaching a cache forces exact predictions — decisions, and therefore
  /// whole sessions, are byte-identical to an uncached exact run.
  std::shared_ptr<adapt::DecisionCache> decision_cache;
};

/// Run an adaptive session: initial automatic configuration from the
/// starting resource view, then monitor/schedule/steer against `db`.
SessionResult run_adaptive_session(const WorldSetup& setup,
                                   const perfdb::PerfDatabase& db,
                                   const adapt::PreferenceList& preferences,
                                   const ResourceSchedule& schedule = {},
                                   const AdaptiveOptions& options = {});

/// Run `setup.client_count` adaptive clients concurrently, each with its
/// own monitoring/steering/controller stack against the shared database —
/// per-client adaptation under genuine multi-session contention.
MultiSessionResult run_multi_adaptive_session(
    const WorldSetup& setup, const perfdb::PerfDatabase& db,
    const adapt::PreferenceList& preferences,
    const ResourceSchedule& schedule = {},
    const AdaptiveOptions& options = {});

/// RunFn for perfdb::ProfilingDriver: resource point = {cpu_share, net_bps};
/// each run builds a fresh world (one image download) and reports QoS.
perfdb::ProfilingDriver::RunFn make_viz_run_fn(WorldSetup base);

/// Profile the full configuration space of viz_app_spec() over `cpu_grid` x
/// `bw_grid` (with optional refinement rounds).  `threads` > 1 shards the
/// runs across a work-stealing pool (0 = hardware_concurrency); the
/// resulting database is identical to the serial build.
perfdb::PerfDatabase build_viz_database(
    const WorldSetup& base, const std::vector<double>& cpu_grid,
    const std::vector<double>& bw_grid, int refinement_rounds = 0,
    std::size_t threads = 1);

/// Budgeted profiling of viz_app_spec(): at most `budget` cells of the
/// configs x grid product are simulated (seeded sample + tree-guided
/// rounds), the rest are regression-tree predictions flagged
/// Provenance::kPredicted.  Same seed + budget => byte-identical database
/// at any thread count; budget >= the full product degenerates to
/// build_viz_database(..., 0, threads) byte-for-byte.
perfdb::PerfDatabase build_viz_database_adaptive(
    const WorldSetup& base, const std::vector<double>& cpu_grid,
    const std::vector<double>& bw_grid, std::size_t budget,
    std::uint64_t seed = 1, std::size_t threads = 1,
    perfdb::AdaptiveModel* model_out = nullptr);

/// The database used by the figure benchmarks: built once per process on
/// the standard grid, cached as CSV at `cache_path` across processes
/// (pass "" to disable the file cache).
const perfdb::PerfDatabase& standard_viz_database(
    const std::string& cache_path = ".avf_viz_perfdb.csv");

}  // namespace avf::viz
