// Server component of the Active Visualization application: stores images
// as wavelet pyramids, serves progressive foveal requests, compresses reply
// payloads with the session codec (paper §2.1).
//
// The server is multi-session: every protocol message carries a session id,
// one `serve()` loop runs per connected endpoint, and all loops share one
// session map plus the process-wide caches — so N clients foveating the
// same images reuse each other's encode/compress work.  Per-session
// protocol violations (request for a session never opened, unknown image,
// malformed payload of a known kind) produce a `kError` reply to the
// offending client; the other sessions keep streaming.
//
// CPU cost model (simulated ops, DESIGN.md §5): a fixed per-request cost,
// a per-coefficient region-extraction cost, and the codec's per-byte
// compression cost.  Compression output sizes are *real* codec output; a
// process-wide size cache avoids redoing identical compressions across
// profiling runs (the payload is then shipped raw with the wire size forced
// to the cached compressed size — timing-identical, cycles saved).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "codec/codec.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/link.hpp"
#include "sim/task.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "viz/caches.hpp"
#include "viz/protocol.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {

/// Process-wide cache: (FNV-1a(payload), codec) -> compressed size.
///
/// The key is the genuine (fingerprint, codec) pair — an earlier revision
/// folded the codec id into a single integer as fingerprint*prime + id,
/// which collides whenever two payload fingerprints differ by a multiple of
/// the prime's inverse; a collision silently returns the wrong codec's
/// output size.  The cache is also bounded: entries beyond `max_entries`
/// evict the oldest insertion (FIFO), so long profiling campaigns cannot
/// grow the process-wide singleton without bound.
///
/// Storage is sharded 16 ways by fingerprint once `max_entries` is large
/// enough to split (>= 16 per shard), so parallel profiling sweeps and the
/// multi-session serve path stop serializing on a single mutex.  Each shard
/// keeps its own FIFO bound of max_entries/shards; counters and size()
/// aggregate across shards.  Small caches (tests, tight bounds) collapse to
/// one shard and behave exactly like the unsharded implementation.
class CompressedSizeCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;
  static constexpr std::size_t kMaxShards = 16;

  CompressedSizeCache() : CompressedSizeCache(kDefaultMaxEntries) {}
  explicit CompressedSizeCache(std::size_t max_entries);

  /// Content fingerprint used as the payload half of the key.  Exposed so
  /// callers issuing a lookup-then-store pair can hash the payload once.
  static std::uint64_t fingerprint(codec::BytesView payload);

  std::optional<std::size_t> lookup(codec::CodecId id,
                                    codec::BytesView payload) const;
  std::optional<std::size_t> lookup(codec::CodecId id,
                                    std::uint64_t fingerprint) const;
  void store(codec::CodecId id, codec::BytesView payload, std::size_t size);
  void store(codec::CodecId id, std::uint64_t fingerprint, std::size_t size);

  /// One shard's contribution to the aggregate counters, captured under
  /// that shard's lock.  size()/hits()/misses()/evictions() sum these
  /// shard-atomic snapshots; the total is a sum of per-shard-consistent
  /// values, not a single instant across shards (concurrent writers may
  /// land between two shard reads — each shard's own numbers stay exact).
  struct ShardCounters {
    std::size_t entries = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  std::size_t size() const;
  std::size_t max_entries() const { return max_entries_; }
  std::size_t shard_count() const { return shard_count_; }
  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t evictions() const;

  /// Shared instance used by default; individual servers may use their own.
  static CompressedSizeCache& global();

 private:
  struct Key {
    std::uint64_t fingerprint;
    codec::CodecId codec;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style mix over both halves of the pair.
      std::uint64_t h = k.fingerprint + 0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(k.codec) + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };
  struct Shard {
    // Each shard is shared by every concurrently simulated world during a
    // parallel profiling sweep, so all map/counter access locks.
    mutable util::Mutex mutex;
    std::unordered_map<Key, std::size_t, KeyHash> sizes
        AVF_GUARDED_BY(mutex);
    std::deque<Key> insertion_order AVF_GUARDED_BY(mutex);  // FIFO eviction
    mutable std::size_t hits AVF_GUARDED_BY(mutex) = 0;
    mutable std::size_t misses AVF_GUARDED_BY(mutex) = 0;
    std::size_t evictions AVF_GUARDED_BY(mutex) = 0;

    /// Counter snapshot under this shard's lock.
    ShardCounters counters() const AVF_EXCLUDES(mutex);
  };

  Shard& shard_for(std::uint64_t fingerprint) const;

  std::size_t max_entries_;
  std::size_t shard_count_;
  std::size_t shard_max_;  // per-shard FIFO bound
  mutable std::array<Shard, kMaxShards> shards_;
};

class VizServer {
 public:
  struct Options {
    int tile_size = 16;
    double fixed_request_ops = 9e6;        // ~20 ms per request
    double encode_ops_per_coeff = 20.0;    // pyramid traversal + packing
    /// nullptr disables premeasured replies: every reply is really
    /// compressed and really decompressed (used by fidelity tests).
    CompressedSizeCache* size_cache = &CompressedSizeCache::global();
    /// Shared tile-serialization reuse across sessions; nullptr = every
    /// request serializes its region from the pyramid.  Hits are
    /// byte-identical to the uncached path by construction.
    RegionEncodeCache* region_cache = &RegionEncodeCache::global();
    /// Shared real-compression reuse (only exercised when size_cache is
    /// null and replies must carry genuine compressed bytes).
    CompressedChunkCache* chunk_cache = &CompressedChunkCache::global();
    /// Baseline emulation for dedup measurements: key region payloads by
    /// image *identity* (image id) instead of pyramid content, recreating
    /// the old pin-per-pyramid behavior where identical content stored as
    /// distinct images was cached per image.  Traces are unchanged either
    /// way (caches save cycles only); only resident store bytes differ.
    /// Meaningful with a per-world store — image ids are only unique
    /// within one server.
    bool identity_keyed_regions = false;
  };

  VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint);
  VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint, Options options);

  /// Register an image (decomposes it into a pyramid).
  void add_image(std::uint32_t id, const wavelet::Image& image, int levels);
  /// Register a pre-decomposed (possibly shared) pyramid; the content hash
  /// keying the tile store is computed here, once per stored image.
  void add_image(std::uint32_t id,
                 std::shared_ptr<const wavelet::Pyramid> pyramid);
  /// Same, with the content hash precomputed by the caller (the world's
  /// pyramid memo caches it alongside the pyramid, so profiling sweeps do
  /// not rehash the same coefficients per world).
  void add_image(std::uint32_t id,
                 std::shared_ptr<const wavelet::Pyramid> pyramid,
                 const util::Hash128& content_hash);

  /// Serve loop for one endpoint; returns when a kShutdown message arrives
  /// on it.  Multiple serve() loops may run concurrently (one per client
  /// channel) against the shared session map and caches.
  sim::Task<> serve(sim::Endpoint& endpoint);

  /// Serve loop on the primary endpoint (single-client compatibility).
  sim::Task<> run() { return serve(endpoint_); }

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t raw_bytes_encoded() const { return raw_bytes_encoded_; }
  std::uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }
  /// Per-session protocol violations answered with kError (plus control
  /// messages for unknown sessions, which are dropped with a log line).
  std::uint64_t protocol_errors() const { return protocol_errors_; }
  std::size_t open_sessions() const AVF_EXCLUDES(sessions_mutex_);

 private:
  struct StoredImage {
    std::shared_ptr<const wavelet::Pyramid> pyramid;
    /// Content hash keying the tile store (or an identity hash when
    /// Options::identity_keyed_regions emulates the old baseline).
    util::Hash128 content_hash;
    int levels = 0;
  };
  struct Session {
    std::uint32_t image_id = 0;
    std::shared_ptr<const wavelet::Pyramid> pyramid;
    util::Hash128 content_hash;
    std::unique_ptr<wavelet::ProgressiveEncoder> encoder;
    codec::CodecId codec = codec::CodecId::kNone;
    int level = 0;
  };

  sim::Task<> handle_open(sim::Endpoint& endpoint, const OpenImage& open);
  sim::Task<> handle_request(sim::Endpoint& endpoint, const Request& request);
  sim::Task<> send_error(sim::Endpoint& endpoint, std::uint32_t session_id,
                         ErrorCode code);

  /// Pin a session for the duration of one handler: the shared_ptr keeps
  /// the Session alive even if another serve loop re-opens the same id
  /// while this handler is suspended at a co_await (the map then points at
  /// a *fresh* Session; the in-flight handler finishes against the old one
  /// instead of dereferencing a replaced encoder).  nullptr if unknown.
  std::shared_ptr<Session> pin_session(std::uint32_t session_id)
      AVF_EXCLUDES(sessions_mutex_);
  /// Install (or replace) the session for `session_id`.
  void install_session(std::uint32_t session_id,
                       std::shared_ptr<Session> session)
      AVF_EXCLUDES(sessions_mutex_);

  sandbox::Sandbox& box_;
  sim::Endpoint& endpoint_;
  Options options_;
  std::map<std::uint32_t, StoredImage> images_;
  // The session map is shared by every per-client serve() loop.  Handlers
  // never hold the lock across a co_await: they pin the shared_ptr under
  // the lock and run against the pinned object.  Sessions are owned
  // shared_ptr so a concurrent re-open replaces the map entry without
  // invalidating a suspended handler's session.
  mutable util::Mutex sessions_mutex_;
  std::map<std::uint32_t, std::shared_ptr<Session>> sessions_
      AVF_GUARDED_BY(sessions_mutex_);
  std::uint64_t requests_served_ = 0;
  std::uint64_t raw_bytes_encoded_ = 0;
  std::uint64_t wire_bytes_sent_ = 0;
  std::uint64_t protocol_errors_ = 0;
};

}  // namespace avf::viz
