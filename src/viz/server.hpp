// Server component of the Active Visualization application: stores images
// as wavelet pyramids, serves progressive foveal requests, compresses reply
// payloads with the session codec (paper §2.1).
//
// CPU cost model (simulated ops, DESIGN.md §5): a fixed per-request cost,
// a per-coefficient region-extraction cost, and the codec's per-byte
// compression cost.  Compression output sizes are *real* codec output; a
// process-wide size cache avoids redoing identical compressions across
// profiling runs (the payload is then shipped raw with the wire size forced
// to the cached compressed size — timing-identical, cycles saved).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "codec/codec.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/link.hpp"
#include "sim/task.hpp"
#include "viz/protocol.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {

/// Process-wide cache: (FNV-1a(payload), codec) -> compressed size.
///
/// The key is the genuine (fingerprint, codec) pair — an earlier revision
/// folded the codec id into a single integer as fingerprint*prime + id,
/// which collides whenever two payload fingerprints differ by a multiple of
/// the prime's inverse; a collision silently returns the wrong codec's
/// output size.  The cache is also bounded: entries beyond `max_entries`
/// evict the oldest insertion (FIFO), so long profiling campaigns cannot
/// grow the process-wide singleton without bound.
class CompressedSizeCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;

  CompressedSizeCache() : CompressedSizeCache(kDefaultMaxEntries) {}
  explicit CompressedSizeCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// Content fingerprint used as the payload half of the key.  Exposed so
  /// callers issuing a lookup-then-store pair can hash the payload once.
  static std::uint64_t fingerprint(codec::BytesView payload);

  std::optional<std::size_t> lookup(codec::CodecId id,
                                    codec::BytesView payload) const;
  std::optional<std::size_t> lookup(codec::CodecId id,
                                    std::uint64_t fingerprint) const;
  void store(codec::CodecId id, codec::BytesView payload, std::size_t size);
  void store(codec::CodecId id, std::uint64_t fingerprint, std::size_t size);

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return sizes_.size();
  }
  std::size_t max_entries() const { return max_entries_; }
  std::size_t hits() const {
    std::scoped_lock lock(mutex_);
    return hits_;
  }
  std::size_t misses() const {
    std::scoped_lock lock(mutex_);
    return misses_;
  }
  std::size_t evictions() const {
    std::scoped_lock lock(mutex_);
    return evictions_;
  }

  /// Shared instance used by default; individual servers may use their own.
  static CompressedSizeCache& global();

 private:
  struct Key {
    std::uint64_t fingerprint;
    codec::CodecId codec;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style mix over both halves of the pair.
      std::uint64_t h = k.fingerprint + 0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(k.codec) + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  std::size_t max_entries_;
  // The global() instance is shared by every concurrently simulated world
  // during a parallel profiling sweep, so all map/counter access locks.
  mutable std::mutex mutex_;
  std::unordered_map<Key, std::size_t, KeyHash> sizes_;
  std::deque<Key> insertion_order_;  // FIFO eviction
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

class VizServer {
 public:
  struct Options {
    int tile_size = 16;
    double fixed_request_ops = 9e6;        // ~20 ms per request
    double encode_ops_per_coeff = 20.0;    // pyramid traversal + packing
    /// nullptr disables premeasured replies: every reply is really
    /// compressed and really decompressed (used by fidelity tests).
    CompressedSizeCache* size_cache = &CompressedSizeCache::global();
  };

  VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint);
  VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint, Options options);

  /// Register an image (decomposes it into a pyramid).
  void add_image(std::uint32_t id, const wavelet::Image& image, int levels);
  /// Register a pre-decomposed (possibly shared) pyramid.
  void add_image(std::uint32_t id,
                 std::shared_ptr<const wavelet::Pyramid> pyramid);

  /// Serve loop; returns when a kShutdown message arrives.
  sim::Task<> run();

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t raw_bytes_encoded() const { return raw_bytes_encoded_; }
  std::uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }

 private:
  struct StoredImage {
    std::shared_ptr<const wavelet::Pyramid> pyramid;
    int levels = 0;
  };
  struct Session {
    std::uint32_t image_id = 0;
    std::unique_ptr<wavelet::ProgressiveEncoder> encoder;
    codec::CodecId codec = codec::CodecId::kNone;
    int level = 0;
  };

  sim::Task<> handle_open(const OpenImage& open);
  sim::Task<> handle_request(const Request& request);

  sandbox::Sandbox& box_;
  sim::Endpoint& endpoint_;
  Options options_;
  std::map<std::uint32_t, StoredImage> images_;
  std::optional<Session> session_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t raw_bytes_encoded_ = 0;
  std::uint64_t wire_bytes_sent_ = 0;
};

}  // namespace avf::viz
