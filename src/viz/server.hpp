// Server component of the Active Visualization application: stores images
// as wavelet pyramids, serves progressive foveal requests, compresses reply
// payloads with the session codec (paper §2.1).
//
// CPU cost model (simulated ops, DESIGN.md §5): a fixed per-request cost,
// a per-coefficient region-extraction cost, and the codec's per-byte
// compression cost.  Compression output sizes are *real* codec output; a
// process-wide size cache avoids redoing identical compressions across
// profiling runs (the payload is then shipped raw with the wire size forced
// to the cached compressed size — timing-identical, cycles saved).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "codec/codec.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/link.hpp"
#include "sim/task.hpp"
#include "viz/protocol.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {

/// Process-wide cache: FNV-1a(payload) x codec -> compressed size.
class CompressedSizeCache {
 public:
  std::optional<std::size_t> lookup(codec::CodecId id,
                                    codec::BytesView payload) const;
  void store(codec::CodecId id, codec::BytesView payload, std::size_t size);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  /// Shared instance used by default; individual servers may use their own.
  static CompressedSizeCache& global();

 private:
  static std::uint64_t fingerprint(codec::BytesView payload);
  std::unordered_map<std::uint64_t, std::size_t> sizes_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

class VizServer {
 public:
  struct Options {
    int tile_size = 16;
    double fixed_request_ops = 9e6;        // ~20 ms per request
    double encode_ops_per_coeff = 20.0;    // pyramid traversal + packing
    /// nullptr disables premeasured replies: every reply is really
    /// compressed and really decompressed (used by fidelity tests).
    CompressedSizeCache* size_cache = &CompressedSizeCache::global();
  };

  VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint);
  VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint, Options options);

  /// Register an image (decomposes it into a pyramid).
  void add_image(std::uint32_t id, const wavelet::Image& image, int levels);
  /// Register a pre-decomposed (possibly shared) pyramid.
  void add_image(std::uint32_t id,
                 std::shared_ptr<const wavelet::Pyramid> pyramid);

  /// Serve loop; returns when a kShutdown message arrives.
  sim::Task<> run();

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t raw_bytes_encoded() const { return raw_bytes_encoded_; }
  std::uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }

 private:
  struct StoredImage {
    std::shared_ptr<const wavelet::Pyramid> pyramid;
    int levels = 0;
  };
  struct Session {
    std::uint32_t image_id = 0;
    std::unique_ptr<wavelet::ProgressiveEncoder> encoder;
    codec::CodecId codec = codec::CodecId::kNone;
    int level = 0;
  };

  sim::Task<> handle_open(const OpenImage& open);
  sim::Task<> handle_request(const Request& request);

  sandbox::Sandbox& box_;
  sim::Endpoint& endpoint_;
  Options options_;
  std::map<std::uint32_t, StoredImage> images_;
  std::optional<Session> session_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t raw_bytes_encoded_ = 0;
  std::uint64_t wire_bytes_sent_ = 0;
};

}  // namespace avf::viz
