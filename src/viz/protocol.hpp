// Wire protocol of the Active Visualization application (paper §2.1/§4.1).
//
// The client drives a request/reply loop: it opens an image session, then
// repeatedly requests the (growing) foveal square up to a resolution level;
// the server replies with the incremental wavelet tiles, compressed with
// the session codec.  A separate control message switches the compression
// type at run time — the transition action in Figure 2
// (`notify(env.server, new_control.c)`).
//
// Every message carries a `session_id` so one server endpoint loop can
// multiplex many concurrent client sessions (the multi-client regime the
// paper's evaluation hints at but the single-session seed could not
// simulate).  Session ids are client-chosen, non-zero, and unique per
// connection; the server echoes them on replies so a client can assert it
// is not reading another session's traffic.  `kError` replaces the old
// fatal server throw on per-session protocol violations: the offending
// session gets an error reply and every other session keeps streaming.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/link.hpp"

namespace avf::viz {

enum MsgKind : int {
  kOpenImage = 1,  ///< client->server: session_id, image_id, level, codec
  kOpenAck = 2,    ///< server->client: session_id, width, height, levels
  kRequest = 3,    ///< client->server: session_id, cx, cy, half, level
  kReply = 4,      ///< server->client: session_id, tiles (compressed or premeasured)
  kSetCodec = 5,   ///< client->server control: session_id, codec
  kShutdown = 6,   ///< stop the server loop for this endpoint
  kError = 7,      ///< server->client: session_id, error code (session survives)
};

/// Per-session error codes carried in ErrorReply.
enum class ErrorCode : std::uint8_t {
  kNoSession = 1,     ///< request/control for a session never opened
  kUnknownImage = 2,  ///< open for an image id the server does not serve
  kBadMessage = 3,    ///< known kind, malformed payload
};

struct OpenImage {
  std::uint32_t session_id = 0;
  std::uint32_t image_id = 0;
  std::uint8_t level = 0;
  std::uint8_t codec = 0;
};

struct OpenAck {
  std::uint32_t session_id = 0;
  std::uint16_t width = 0;
  std::uint16_t height = 0;
  std::uint8_t levels = 0;
};

struct Request {
  std::uint32_t session_id = 0;
  std::uint16_t cx = 0;
  std::uint16_t cy = 0;
  std::uint16_t half = 0;
  std::uint8_t level = 0;
};

struct Reply {
  std::uint32_t session_id = 0;
  bool complete = false;       ///< everything for this level has been sent
  std::uint8_t codec = 0;
  bool premeasured = false;    ///< payload is raw; wire size was overridden
  std::uint32_t raw_len = 0;   ///< decompressed payload length
  std::uint32_t wire_len = 0;  ///< compressed length actually charged
  std::vector<std::uint8_t> payload;
};

struct SetCodec {
  std::uint32_t session_id = 0;
  std::uint8_t codec = 0;
};

struct ErrorReply {
  std::uint32_t session_id = 0;  ///< 0 when the session could not be parsed
  ErrorCode code = ErrorCode::kBadMessage;
};

// -- encode/decode to sim::Message ---------------------------------------
// Throws std::runtime_error on malformed/mismatched messages.

sim::Message encode(const OpenImage& m);
sim::Message encode(const OpenAck& m);
sim::Message encode(const Request& m);
sim::Message encode(const Reply& m);
sim::Message encode(const SetCodec& m);
sim::Message encode(const ErrorReply& m);
sim::Message encode_shutdown();

OpenImage decode_open_image(const sim::Message& m);
OpenAck decode_open_ack(const sim::Message& m);
Request decode_request(const sim::Message& m);
Reply decode_reply(sim::Message m);  // takes ownership of the payload
SetCodec decode_set_codec(const sim::Message& m);
ErrorReply decode_error(const sim::Message& m);

}  // namespace avf::viz
