#include "viz/world.hpp"

#include <bit>
#include <fstream>
#include <map>
#include <stdexcept>

#include "util/annotations.hpp"
#include "util/fmt.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"

namespace avf::viz {

using tunable::ConfigPoint;
using tunable::Direction;

const tunable::AppSpec& viz_app_spec() {
  static const tunable::AppSpec spec = [] {
    tunable::AppSpec s("active-visualization");
    s.space().add_parameter("dR", {80, 160, 320});
    s.space().add_parameter("c", {0, 1, 2});  // none, lzw (A), bwt (B)
    s.space().add_parameter("l", {3, 4});
    s.metrics().add("transmit_time", Direction::kLowerBetter);
    s.metrics().add("response_time", Direction::kLowerBetter);
    s.metrics().add("resolution", Direction::kHigherBetter);
    s.add_resource_axis("cpu_share");
    s.add_resource_axis("net_bps");
    s.add_task(tunable::TaskSpec{
        .name = "module1",
        .params = {"l", "dR", "c"},
        .resources = {"client.CPU", "client.network"},
        .metrics = {"transmit_time", "response_time", "resolution"},
        .guard = nullptr,
    });
    s.add_transition(tunable::TransitionSpec{
        .name = "notify-server-compression",
        .guard = nullptr,  // always permitted
        .handler =
            [](const ConfigPoint& from, const ConfigPoint& to) {
              if (from.get("c") != to.get("c")) {
                util::log_debug("viz.transition", 0.0,
                                "compression {} -> {}", from.get("c"),
                                to.get("c"));
              }
            },
    });
    return s;
  }();
  return spec;
}

namespace {

// The process-wide image/pyramid memos are shared by every world a
// parallel profiling sweep builds, so all map access is annotated against
// the memo mutex and checked by clang thread-safety analysis.  Returned
// references stay valid after the lock is dropped (std::map nodes are
// stable and entries are never erased).
//
// Construction happens *outside* the lock: synthesizing a 1024x1024 image
// or decomposing a pyramid is the expensive part, and holding the memo
// mutex across it serialized every worker of a parallel sweep behind one
// builder (an annotation-audit finding).  Two workers racing on the same
// key both build byte-identical values (deterministic constructors); the
// first emplace wins and the loser's copy is discarded.
class ImageMemo {
 public:
  const wavelet::Image& get(int size, std::uint64_t seed)
      AVF_EXCLUDES(mutex_) {
    auto key = std::make_pair(size, seed);
    {
      util::MutexLock lock(mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    wavelet::Image built = wavelet::Image::synthetic(size, size, seed);
    util::MutexLock lock(mutex_);
    return cache_.emplace(key, std::move(built)).first->second;
  }

 private:
  util::Mutex mutex_;
  std::map<std::pair<int, std::uint64_t>, wavelet::Image> cache_
      AVF_GUARDED_BY(mutex_);
};

class PyramidMemo {
 public:
  PyramidEntry get(const wavelet::Image& image, int size, std::uint64_t seed,
                   int levels) AVF_EXCLUDES(mutex_) {
    auto key = std::make_tuple(size, seed, levels);
    {
      util::MutexLock lock(mutex_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    // Hash alongside the decomposition, outside the lock: the content hash
    // is as deterministic as the pyramid, so a racing loser's copy is
    // byte-identical and safely discarded.
    PyramidEntry built;
    built.pyramid = std::make_shared<const wavelet::Pyramid>(image, levels);
    built.content_hash = wavelet::pyramid_content_hash(*built.pyramid);
    util::MutexLock lock(mutex_);
    return cache_.emplace(key, std::move(built)).first->second;
  }

 private:
  util::Mutex mutex_;
  std::map<std::tuple<int, std::uint64_t, int>, PyramidEntry> cache_
      AVF_GUARDED_BY(mutex_);
};

}  // namespace

const wavelet::Image& cached_image(int size, std::uint64_t seed) {
  static ImageMemo memo;
  return memo.get(size, seed);
}

PyramidEntry cached_pyramid_entry(int size, std::uint64_t seed, int levels) {
  static PyramidMemo memo;
  // The image memo is consulted before the pyramid lock is taken, so the
  // two memo mutexes are never held together (no lock-order edge).
  const wavelet::Image& image = cached_image(size, seed);
  return memo.get(image, size, seed, levels);
}

std::shared_ptr<const wavelet::Pyramid> cached_pyramid(int size,
                                                       std::uint64_t seed,
                                                       int levels) {
  return cached_pyramid_entry(size, seed, levels).pyramid;
}

VizWorld::VizWorld(const WorldSetup& setup) : setup_(setup) {
  if (setup.client_count < 1) {
    throw std::invalid_argument("viz world: client_count must be >= 1");
  }
  net_ = std::make_unique<sim::Network>(sim_);
  sim::Host& client_host =
      net_->add_host("client", setup.client_speed, setup.memory_bytes);
  sim::Host& server_host =
      net_->add_host("server", setup.server_speed, setup.memory_bytes);
  link_ = &net_->connect(client_host, server_host, setup.link_bandwidth_bps,
                         setup.link_latency_s);

  sandbox::Sandbox::Options client_opts;
  client_opts.cpu_share = setup.client_cpu_share;
  client_opts.net_bandwidth_bps = setup.client_net_bps;
  client_opts.cpu_enforcement = setup.enforcement;
  client_opts.net_enforcement = setup.net_enforcement;
  client_opts.quantum = setup.quantum;

  sandbox::Sandbox::Options server_opts;
  server_opts.cpu_share = setup.server_cpu_share;
  server_opts.net_bandwidth_bps = setup.server_net_bps;
  server_opts.cpu_enforcement = setup.enforcement;
  server_opts.net_enforcement = setup.net_enforcement;
  server_opts.quantum = setup.quantum;
  server_box_ = std::make_unique<sandbox::Sandbox>(server_host, "viz-server",
                                                   server_opts);

  // One channel over the shared link per client; every channel's b() side
  // belongs to the server sandbox.  Client 0 keeps the historical sandbox
  // name so single-client logs and traces are unchanged.
  channels_.reserve(static_cast<std::size_t>(setup.client_count));
  client_boxes_.reserve(static_cast<std::size_t>(setup.client_count));
  clients_.resize(static_cast<std::size_t>(setup.client_count));
  for (int i = 0; i < setup.client_count; ++i) {
    sim::Channel& channel = net_->open_channel(*link_);
    channels_.push_back(&channel);
    std::string name =
        i == 0 ? "viz-client" : util::format("viz-client-{}", i);
    client_boxes_.push_back(std::make_unique<sandbox::Sandbox>(
        client_host, name, client_opts));
    client_boxes_.back()->attach_endpoint(channel.a());
    server_box_->attach_endpoint(channel.b());
  }

  server_ = std::make_unique<VizServer>(*server_box_, channels_[0]->b(),
                                        setup.server_options);
  for (int i = 0; i < setup.image_count; ++i) {
    if (setup.unique_image_contents > 0) {
      // Duplicate-content catalog: image i carries the content of seed
      // image i % unique_image_contents, but as its own freshly decomposed
      // Pyramid object — pointer identity cannot dedup it, only content
      // addressing can.  The memoized entry supplies the content hash
      // (identical content => identical hash) without rehashing per image.
      std::uint64_t seed =
          setup.image_seed +
          static_cast<std::uint64_t>(i % setup.unique_image_contents);
      PyramidEntry entry =
          cached_pyramid_entry(setup.image_size, seed, setup.levels);
      server_->add_image(static_cast<std::uint32_t>(i),
                         std::make_shared<const wavelet::Pyramid>(
                             cached_image(setup.image_size, seed),
                             setup.levels),
                         entry.content_hash);
    } else {
      // add_image would redo the wavelet decomposition (and content hash)
      // per world; reuse the process-wide pyramid cache instead.
      PyramidEntry entry = cached_pyramid_entry(
          setup.image_size, setup.image_seed + i, setup.levels);
      server_->add_image(static_cast<std::uint32_t>(i),
                         std::move(entry.pyramid), entry.content_hash);
    }
  }
}

void VizWorld::spawn_server_loops() {
  for (sim::Channel* channel : channels_) {
    sim_.spawn(server_->serve(channel->b()));
  }
}

VizClient& VizWorld::make_client_at(std::size_t i,
                                    const ConfigPoint& fixed_config) {
  VizClient::Options options = setup_.client_options;
  options.session_id = static_cast<std::uint32_t>(i) + 1;
  clients_[i] = std::make_unique<VizClient>(
      *client_boxes_[i], channels_[i]->a(), nullptr, nullptr, options);
  clients_[i]->set_fixed_config(fixed_config);
  return *clients_[i];
}

VizClient& VizWorld::make_client_at(std::size_t i,
                                    adapt::SteeringAgent& steering,
                                    adapt::MonitoringAgent& monitor) {
  VizClient::Options options = setup_.client_options;
  options.session_id = static_cast<std::uint32_t>(i) + 1;
  clients_[i] = std::make_unique<VizClient>(
      *client_boxes_[i], channels_[i]->a(), &steering, &monitor, options);
  return *clients_[i];
}

namespace {

void apply_resource_schedule(VizWorld& world, const ResourceSchedule& schedule) {
  apply_schedule(world.simulator(), world.client_box(), schedule.client_cpu);
  for (const auto& [at, bps] : schedule.link_bandwidth) {
    sim::Link* link = &world.link();
    if (at <= world.simulator().now()) {
      link->set_bandwidth(bps);
    } else {
      world.simulator().schedule_at(at,
                                    [link, b = bps] { link->set_bandwidth(b); });
    }
  }
}

tunable::QosVector qos_of(const std::vector<VizClient::ImageStats>& images) {
  tunable::QosVector out;
  if (images.empty()) return out;
  double transmit = 0.0, response = 0.0;
  for (const auto& s : images) {
    transmit += s.transmit_time;
    response += s.avg_response;
  }
  out.set("transmit_time", transmit / static_cast<double>(images.size()));
  out.set("response_time", response / static_cast<double>(images.size()));
  out.set("resolution", images.back().resolution);
  return out;
}

}  // namespace

SessionResult run_fixed_session(const WorldSetup& setup,
                                const ConfigPoint& config,
                                const ResourceSchedule& schedule) {
  if (!viz_app_spec().space().valid(config)) {
    throw std::invalid_argument("invalid viz configuration: " + config.key());
  }
  VizWorld world(setup);
  VizClient& client = world.make_client(config);
  sim::Simulator& sim = world.simulator();
  sim.spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    co_await client.fetch_images(0, setup.image_count);
    co_await client.shutdown_server();
  };
  sim.spawn(driver());
  apply_resource_schedule(world, schedule);
  sim.run();

  SessionResult result;
  result.images = client.history();
  result.initial_config = config;
  result.total_time = sim.now();
  return result;
}

SessionResult run_adaptive_session(const WorldSetup& setup,
                                   const perfdb::PerfDatabase& db,
                                   const adapt::PreferenceList& preferences,
                                   const ResourceSchedule& schedule,
                                   const AdaptiveOptions& options) {
  VizWorld world(setup);
  sim::Simulator& sim = world.simulator();

  adapt::ResourceScheduler::Options scheduler_options = options.scheduler;
  scheduler_options.decision_cache = options.decision_cache;
  adapt::ResourceScheduler scheduler(db, preferences, scheduler_options);
  adapt::MonitoringAgent monitor(sim, viz_app_spec().resource_axes(),
                                 options.monitor);
  // Static view of initial resources (what the system-wide monitor would
  // report before the application has made any observations).
  std::vector<double> initial{
      setup.client_cpu_share,
      std::min(setup.link_bandwidth_bps,
               setup.client_net_bps.value_or(setup.link_bandwidth_bps))};
  auto decision = scheduler.select(initial);
  if (!decision) {
    throw std::runtime_error("adaptive session: empty performance database");
  }
  adapt::SteeringAgent steering(viz_app_spec(), decision->config);
  adapt::AdaptationController controller(sim, scheduler, monitor, steering,
                                         options.controller);
  controller.configure(initial);
  controller.start();

  VizClient& client = world.make_client(steering, monitor);
  sim.spawn(world.server().run());
  auto driver = [&]() -> sim::Task<> {
    co_await client.fetch_images(0, setup.image_count);
    co_await client.shutdown_server();
    controller.stop();
  };
  sim.spawn(driver());
  apply_resource_schedule(world, schedule);
  sim.run();

  SessionResult result;
  result.images = client.history();
  result.adaptations = controller.adaptations();
  result.initial_config = decision->config;
  result.total_time = sim.now();
  return result;
}


std::uint64_t result_fingerprint(const MultiSessionResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 0x100000001b3ULL;
    }
  };
  auto mix_double = [&mix_u64](double v) {
    mix_u64(std::bit_cast<std::uint64_t>(v));
  };
  for (const SessionResult& session : result.clients) {
    mix_u64(session.images.size());
    for (const VizClient::ImageStats& s : session.images) {
      mix_u64(s.image_id);
      mix_u64(static_cast<std::uint64_t>(s.rounds));
      mix_u64(static_cast<std::uint64_t>(s.resolution));
      mix_u64(s.wire_bytes);
      mix_u64(s.payload_hash);
      mix_double(s.start_time);
      mix_double(s.end_time);
      mix_double(s.transmit_time);
      mix_double(s.avg_response);
      mix_double(s.max_response);
    }
  }
  mix_double(result.total_time);
  return h;
}

std::uint64_t adaptation_fingerprint(const MultiSessionResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  auto mix_u64 = [&mix_bytes](std::uint64_t v) { mix_bytes(&v, sizeof(v)); };
  auto mix_double = [&mix_u64](double v) {
    mix_u64(std::bit_cast<std::uint64_t>(v));
  };
  auto mix_str = [&](const std::string& s) {
    mix_bytes(s.data(), s.size());
    mix_u64(s.size());
  };
  for (const SessionResult& session : result.clients) {
    mix_str(session.initial_config.key());
    mix_u64(session.adaptations.size());
    for (const auto& event : session.adaptations) {
      mix_double(event.time);
      mix_str(event.from.key());
      mix_str(event.to.key());
      mix_u64(event.preference_index);
      mix_u64(event.estimates.size());
      for (double e : event.estimates) mix_double(e);
    }
  }
  return h;
}

MultiSessionResult run_multi_fixed_session(const WorldSetup& setup,
                                           const ConfigPoint& config,
                                           const ResourceSchedule& schedule) {
  if (!viz_app_spec().space().valid(config)) {
    throw std::invalid_argument("invalid viz configuration: " + config.key());
  }
  VizWorld world(setup);
  sim::Simulator& sim = world.simulator();
  for (int i = 0; i < setup.client_count; ++i) {
    world.make_client_at(static_cast<std::size_t>(i), config);
  }
  world.spawn_server_loops();
  // Each client downloads its images then shuts down its own serve loop;
  // the simulation drains once the last loop has exited.
  auto driver = [](VizClient* client, int images) -> sim::Task<> {
    co_await client->fetch_images(0, images);
    co_await client->shutdown_server();
  };
  for (int i = 0; i < setup.client_count; ++i) {
    sim.spawn(driver(&world.client(static_cast<std::size_t>(i)),
                     setup.image_count));
  }
  apply_resource_schedule(world, schedule);
  sim.run();

  MultiSessionResult result;
  result.total_time = sim.now();
  for (int i = 0; i < setup.client_count; ++i) {
    SessionResult session;
    session.images = world.client(static_cast<std::size_t>(i)).history();
    session.initial_config = config;
    session.total_time = sim.now();
    result.clients.push_back(std::move(session));
  }
  return result;
}

MultiSessionResult run_multi_adaptive_session(
    const WorldSetup& setup, const perfdb::PerfDatabase& db,
    const adapt::PreferenceList& preferences,
    const ResourceSchedule& schedule, const AdaptiveOptions& options) {
  VizWorld world(setup);
  sim::Simulator& sim = world.simulator();

  std::vector<double> initial{
      setup.client_cpu_share,
      std::min(setup.link_bandwidth_bps,
               setup.client_net_bps.value_or(setup.link_bandwidth_bps))};

  // One full adaptation stack per client: scheduler + monitor + steering +
  // controller.  They share the database and preferences but nothing else,
  // so each session adapts on its own observations.
  struct Stack {
    tunable::ConfigPoint initial_config;
    std::unique_ptr<adapt::ResourceScheduler> scheduler;
    std::unique_ptr<adapt::MonitoringAgent> monitor;
    std::unique_ptr<adapt::SteeringAgent> steering;
    std::unique_ptr<adapt::AdaptationController> controller;
  };
  // With a decision cache attached, every stack's scheduler shares the memo
  // (and computes exact predictions); the first session to see a given
  // estimate point evaluates the candidate set for the whole fleet.
  adapt::ResourceScheduler::Options scheduler_options = options.scheduler;
  scheduler_options.decision_cache = options.decision_cache;
  std::vector<Stack> stacks;
  stacks.reserve(static_cast<std::size_t>(setup.client_count));
  for (int i = 0; i < setup.client_count; ++i) {
    Stack stack;
    stack.scheduler = std::make_unique<adapt::ResourceScheduler>(
        db, preferences, scheduler_options);
    stack.monitor = std::make_unique<adapt::MonitoringAgent>(
        sim, viz_app_spec().resource_axes(), options.monitor);
    auto decision = stack.scheduler->select(initial);
    if (!decision) {
      throw std::runtime_error(
          "adaptive session: empty performance database");
    }
    stack.initial_config = decision->config;
    stack.steering = std::make_unique<adapt::SteeringAgent>(
        viz_app_spec(), decision->config);
    stack.controller = std::make_unique<adapt::AdaptationController>(
        sim, *stack.scheduler, *stack.monitor, *stack.steering,
        options.controller);
    stack.controller->configure(initial);
    stack.controller->start();
    world.make_client_at(static_cast<std::size_t>(i), *stack.steering,
                         *stack.monitor);
    stacks.push_back(std::move(stack));
  }
  world.spawn_server_loops();
  auto driver = [](VizClient* client, adapt::AdaptationController* controller,
                   int images) -> sim::Task<> {
    co_await client->fetch_images(0, images);
    co_await client->shutdown_server();
    controller->stop();
  };
  for (int i = 0; i < setup.client_count; ++i) {
    sim.spawn(driver(&world.client(static_cast<std::size_t>(i)),
                     stacks[static_cast<std::size_t>(i)].controller.get(),
                     setup.image_count));
  }
  apply_resource_schedule(world, schedule);
  sim.run();

  MultiSessionResult result;
  result.total_time = sim.now();
  for (int i = 0; i < setup.client_count; ++i) {
    const Stack& stack = stacks[static_cast<std::size_t>(i)];
    SessionResult session;
    session.images = world.client(static_cast<std::size_t>(i)).history();
    session.adaptations = stack.controller->adaptations();
    session.initial_config = stack.initial_config;
    session.total_time = sim.now();
    result.clients.push_back(std::move(session));
  }
  return result;
}

perfdb::ProfilingDriver::RunFn make_viz_run_fn(WorldSetup base) {
  base.image_count = 1;
  return [base](const ConfigPoint& config,
                const perfdb::ResourcePoint& at) -> tunable::QosVector {
    WorldSetup setup = base;
    setup.client_cpu_share = at[0];
    setup.link_bandwidth_bps = at[1];
    SessionResult result = run_fixed_session(setup, config);
    return qos_of(result.images);
  };
}

perfdb::PerfDatabase build_viz_database(const WorldSetup& base,
                                        const std::vector<double>& cpu_grid,
                                        const std::vector<double>& bw_grid,
                                        int refinement_rounds,
                                        std::size_t threads) {
  perfdb::ProfilingDriver::Options options;
  options.refinement_rounds = refinement_rounds;
  options.threads = threads;
  // Each run builds a fresh world, so one RunFn is safe to share across
  // workers; the driver's deterministic assembly makes the database
  // identical at any thread count.
  perfdb::ProfilingDriver driver(make_viz_run_fn(base), options);
  return driver.profile(viz_app_spec(), {cpu_grid, bw_grid});
}

perfdb::PerfDatabase build_viz_database_adaptive(
    const WorldSetup& base, const std::vector<double>& cpu_grid,
    const std::vector<double>& bw_grid, std::size_t budget,
    std::uint64_t seed, std::size_t threads,
    perfdb::AdaptiveModel* model_out) {
  perfdb::ProfilingDriver::Options options;
  options.threads = threads;
  perfdb::ProfilingDriver driver(make_viz_run_fn(base), options);
  perfdb::ProfilingDriver::AdaptiveOptions adaptive;
  adaptive.budget = budget;
  adaptive.seed = seed;
  // Smaller rounds refit the trees more often; on the steep viz response
  // surface that roughly halves the worst-case prediction error at a 25%
  // budget (see bench/micro_adaptive) for a negligible fitting cost.
  adaptive.round_size = 8;
  return driver.profile_adaptive(viz_app_spec(), {cpu_grid, bw_grid},
                                 adaptive, model_out);
}

const perfdb::PerfDatabase& standard_viz_database(
    const std::string& cache_path) {
  static std::map<std::string, perfdb::PerfDatabase> memo;
  auto it = memo.find(cache_path);
  if (it != memo.end()) return it->second;

  if (!cache_path.empty()) {
    std::ifstream in(cache_path);
    if (in) {
      util::log_info("viz.perfdb", 0.0, "loading cached database from {}",
                     cache_path);
      auto loaded = perfdb::PerfDatabase::load(in);
      return memo.emplace(cache_path, std::move(loaded)).first->second;
    }
  }

  util::log_info("viz.perfdb", 0.0,
                 "profiling the configuration space (first run; cached "
                 "afterwards)");
  WorldSetup base;
  std::vector<double> cpu_grid{0.1, 0.2, 0.4, 0.6, 0.9, 1.0};
  std::vector<double> bw_grid{25e3, 50e3, 100e3, 250e3, 500e3, 1000e3};
  perfdb::PerfDatabase db = build_viz_database(base, cpu_grid, bw_grid);
  if (!cache_path.empty()) {
    std::ofstream out(cache_path);
    if (out) db.save(out);
  }
  return memo.emplace(cache_path, std::move(db)).first->second;
}

}  // namespace avf::viz
