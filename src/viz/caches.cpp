#include "viz/caches.hpp"

namespace avf::viz {

namespace {

// Domain seeds keep the two key spaces disjoint inside a shared store even
// when their input byte streams coincide.
constexpr std::uint64_t kRegionSeed = 0x7265676eULL;  // "regn"
constexpr std::uint64_t kChunkSeed = 0x63686e6bULL;   // "chnk"

}  // namespace

RegionEncodeCache::RegionEncodeCache()
    : owned_store_(std::make_unique<TileStore>()), store_(owned_store_.get()) {}

std::shared_ptr<const wavelet::Bytes> RegionEncodeCache::encode(
    const util::Hash128& pyramid_content,
    const wavelet::ProgressiveEncoder& encoder,
    std::span<const wavelet::TileRef> tiles, std::uint64_t origin_tag) {
  // Incremental key derivation: no per-request buffer, no copy of the tile
  // list — the hot-path fix for the old std::string key.
  util::Hasher128 h(kRegionSeed);
  h.update_u64(pyramid_content.hi);
  h.update_u64(pyramid_content.lo);
  h.update_u32(static_cast<std::uint32_t>(encoder.tile_size()));
  for (const wavelet::TileRef& t : tiles) {
    h.update_u8(t.band);
    h.update_u16(t.tx);
    h.update_u16(t.ty);
  }
  // Serialization happens outside any lock (inside the store's build
  // callback): two threads may race to fill the same key, in which case
  // both produce byte-identical payloads and the first insert wins.
  TileStore::Lookup result = store_->get_or_build(
      h.finish(), origin_tag, [&] { return encoder.serialize_tiles(tiles); });
  (result.hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  if (result.collision) collisions_.fetch_add(1, std::memory_order_relaxed);
  return result.payload;
}

RegionEncodeCache& RegionEncodeCache::global() {
  static RegionEncodeCache cache(TileStore::global());
  return cache;
}

CompressedChunkCache::CompressedChunkCache()
    : owned_store_(std::make_unique<TileStore>()), store_(owned_store_.get()) {}

std::shared_ptr<const codec::Bytes> CompressedChunkCache::compress(
    codec::CodecId id, codec::BytesView raw, std::uint64_t origin_tag) {
  // Hash the raw bytes in place: one read-only pass replaces the old
  // key-string allocation that copied the whole chunk per lookup.
  util::Hasher128 h(kChunkSeed);
  h.update_u8(static_cast<std::uint8_t>(id));
  h.update_u64(raw.size());
  h.update(raw.data(), raw.size());
  TileStore::Lookup result = store_->get_or_build(
      h.finish(), origin_tag,
      [&] { return codec::codec_for(id).compress(raw); });
  (result.hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  if (result.collision) collisions_.fetch_add(1, std::memory_order_relaxed);
  return result.payload;
}

CompressedChunkCache& CompressedChunkCache::global() {
  static CompressedChunkCache cache(TileStore::global());
  return cache;
}

}  // namespace avf::viz
