#include "viz/caches.hpp"

#include <cstring>

namespace avf::viz {

namespace {

void append_bytes(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

std::string region_key(const wavelet::Pyramid* pyramid, int tile_size,
                       std::span<const wavelet::TileRef> tiles) {
  std::string key;
  key.reserve(sizeof(pyramid) + 1 + tiles.size() * 5);
  append_bytes(key, &pyramid, sizeof(pyramid));
  key.push_back(static_cast<char>(tile_size));
  for (const wavelet::TileRef& t : tiles) {
    key.push_back(static_cast<char>(t.band));
    append_bytes(key, &t.tx, sizeof(t.tx));
    append_bytes(key, &t.ty, sizeof(t.ty));
  }
  return key;
}

}  // namespace

std::shared_ptr<const wavelet::Bytes> RegionEncodeCache::encode(
    const std::shared_ptr<const wavelet::Pyramid>& pyramid,
    const wavelet::ProgressiveEncoder& encoder,
    std::span<const wavelet::TileRef> tiles) {
  std::string key = region_key(pyramid.get(), encoder.tile_size(), tiles);
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second.payload;
    }
    ++misses_;
  }
  // Serialize outside the lock: two threads may race to fill the same key,
  // in which case both produce byte-identical payloads and the first insert
  // wins — correctness is unaffected, only a little work is duplicated.
  auto payload = std::make_shared<const wavelet::Bytes>(
      encoder.serialize_tiles(tiles));
  if (max_entries_ == 0) return payload;
  util::MutexLock lock(mutex_);
  auto [it, inserted] = entries_.emplace(key, Entry{payload, pyramid});
  if (!inserted) return it->second.payload;
  insertion_order_.push_back(std::move(key));
  while (entries_.size() > max_entries_) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
  }
  return payload;
}

std::size_t RegionEncodeCache::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

std::uint64_t RegionEncodeCache::hits() const {
  util::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t RegionEncodeCache::misses() const {
  util::MutexLock lock(mutex_);
  return misses_;
}

std::uint64_t RegionEncodeCache::evictions() const {
  util::MutexLock lock(mutex_);
  return evictions_;
}

void RegionEncodeCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  hits_ = misses_ = evictions_ = 0;
}

RegionEncodeCache& RegionEncodeCache::global() {
  static RegionEncodeCache cache;
  return cache;
}

std::shared_ptr<const codec::Bytes> CompressedChunkCache::compress(
    codec::CodecId id, codec::BytesView raw) {
  std::string key;
  key.reserve(1 + raw.size());
  key.push_back(static_cast<char>(id));
  append_bytes(key, raw.data(), raw.size());
  {
    util::MutexLock lock(mutex_);
    auto it = chunks_.find(key);
    if (it != chunks_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  auto compressed = std::make_shared<const codec::Bytes>(
      codec::codec_for(id).compress(raw));
  if (max_entries_ == 0) return compressed;
  util::MutexLock lock(mutex_);
  auto [it, inserted] = chunks_.emplace(key, compressed);
  if (!inserted) return it->second;
  insertion_order_.push_back(std::move(key));
  while (chunks_.size() > max_entries_) {
    chunks_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
  }
  return compressed;
}

std::size_t CompressedChunkCache::size() const {
  util::MutexLock lock(mutex_);
  return chunks_.size();
}

std::uint64_t CompressedChunkCache::hits() const {
  util::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t CompressedChunkCache::misses() const {
  util::MutexLock lock(mutex_);
  return misses_;
}

std::uint64_t CompressedChunkCache::evictions() const {
  util::MutexLock lock(mutex_);
  return evictions_;
}

void CompressedChunkCache::clear() {
  util::MutexLock lock(mutex_);
  chunks_.clear();
  insertion_order_.clear();
  hits_ = misses_ = evictions_ = 0;
}

CompressedChunkCache& CompressedChunkCache::global() {
  static CompressedChunkCache cache;
  return cache;
}

}  // namespace avf::viz
