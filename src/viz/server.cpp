#include "viz/server.hpp"

#include <stdexcept>

#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace avf::viz {

namespace {

/// Baseline keying for Options::identity_keyed_regions: a per-image-id hash
/// stands in for the content hash, so identical content stored under
/// distinct image ids caches separately — the old pin-per-pyramid behavior
/// the dedup benchmarks measure against.
util::Hash128 identity_region_key(std::uint32_t id) {
  util::Hasher128 h(/*seed=*/0x69646e74ULL);  // "idnt"
  h.update_u32(id);
  return h.finish();
}

}  // namespace

CompressedSizeCache::CompressedSizeCache(std::size_t max_entries)
    : max_entries_(max_entries),
      // Sharding only helps once every shard can hold a useful number of
      // entries; tightly bounded caches keep the exact single-FIFO
      // semantics the eviction tests pin down.
      shard_count_(max_entries >= kMaxShards * kMaxShards ? kMaxShards : 1),
      shard_max_(max_entries / shard_count_) {}

std::uint64_t CompressedSizeCache::fingerprint(codec::BytesView payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  // Mix in the length to disambiguate prefix collisions.
  h ^= payload.size();
  return h;
}

CompressedSizeCache::Shard& CompressedSizeCache::shard_for(
    std::uint64_t fp) const {
  // Shard on high bits: the map hash mixes the low bits, so reusing them
  // for shard selection would correlate shard and bucket.
  return shards_[(fp >> 59) % shard_count_];
}

std::optional<std::size_t> CompressedSizeCache::lookup(
    codec::CodecId id, codec::BytesView payload) const {
  return lookup(id, fingerprint(payload));
}

std::optional<std::size_t> CompressedSizeCache::lookup(
    codec::CodecId id, std::uint64_t fp) const {
  Shard& shard = shard_for(fp);
  util::MutexLock lock(shard.mutex);
  auto it = shard.sizes.find(Key{fp, id});
  if (it == shard.sizes.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  return it->second;
}

void CompressedSizeCache::store(codec::CodecId id, codec::BytesView payload,
                                std::size_t size) {
  store(id, fingerprint(payload), size);
}

void CompressedSizeCache::store(codec::CodecId id, std::uint64_t fp,
                                std::size_t size) {
  if (max_entries_ == 0) return;
  Shard& shard = shard_for(fp);
  util::MutexLock lock(shard.mutex);
  Key key{fp, id};
  auto [it, inserted] = shard.sizes.insert_or_assign(key, size);
  (void)it;
  if (!inserted) return;  // overwrite keeps the original queue position
  shard.insertion_order.push_back(key);
  while (shard.sizes.size() > shard_max_) {
    shard.sizes.erase(shard.insertion_order.front());
    shard.insertion_order.pop_front();
    ++shard.evictions;
  }
}

CompressedSizeCache::ShardCounters CompressedSizeCache::Shard::counters()
    const {
  util::MutexLock lock(mutex);
  ShardCounters c;
  c.entries = sizes.size();
  c.hits = hits;
  c.misses = misses;
  c.evictions = evictions;
  return c;
}

std::size_t CompressedSizeCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().entries;
  }
  return total;
}

std::size_t CompressedSizeCache::hits() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().hits;
  }
  return total;
}

std::size_t CompressedSizeCache::misses() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().misses;
  }
  return total;
}

std::size_t CompressedSizeCache::evictions() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().evictions;
  }
  return total;
}

CompressedSizeCache& CompressedSizeCache::global() {
  static CompressedSizeCache cache;
  return cache;
}

VizServer::VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint)
    : VizServer(box, endpoint, Options{}) {}

VizServer::VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint,
                     Options options)
    : box_(box), endpoint_(endpoint), options_(options) {}

void VizServer::add_image(std::uint32_t id, const wavelet::Image& image,
                          int levels) {
  add_image(id, std::make_shared<const wavelet::Pyramid>(image, levels));
}

void VizServer::add_image(std::uint32_t id,
                          std::shared_ptr<const wavelet::Pyramid> pyramid) {
  util::Hash128 content = wavelet::pyramid_content_hash(*pyramid);
  add_image(id, std::move(pyramid), content);
}

void VizServer::add_image(std::uint32_t id,
                          std::shared_ptr<const wavelet::Pyramid> pyramid,
                          const util::Hash128& content_hash) {
  StoredImage stored;
  stored.levels = pyramid->levels();
  stored.pyramid = std::move(pyramid);
  stored.content_hash = options_.identity_keyed_regions
                            ? identity_region_key(id)
                            : content_hash;
  images_[id] = std::move(stored);
}

std::size_t VizServer::open_sessions() const {
  util::MutexLock lock(sessions_mutex_);
  return sessions_.size();
}

std::shared_ptr<VizServer::Session> VizServer::pin_session(
    std::uint32_t session_id) {
  util::MutexLock lock(sessions_mutex_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

void VizServer::install_session(std::uint32_t session_id,
                                std::shared_ptr<Session> session) {
  util::MutexLock lock(sessions_mutex_);
  // Re-opening an existing id installs a *fresh* Session object (fresh
  // sent-state) — exactly what a client fetching its next image does.  A
  // handler suspended mid-request on the old session keeps its pin, so the
  // replacement never invalidates in-flight state.
  sessions_.insert_or_assign(session_id, std::move(session));
}

sim::Task<> VizServer::send_error(sim::Endpoint& endpoint,
                                  std::uint32_t session_id, ErrorCode code) {
  ++protocol_errors_;
  util::log_debug("viz.server", box_.host().simulator().now(),
                  "session {} protocol error {}", session_id,
                  static_cast<int>(code));
  ErrorReply err;
  err.session_id = session_id;
  err.code = code;
  co_await box_.send(endpoint, encode(err));
}

sim::Task<> VizServer::serve(sim::Endpoint& endpoint) {
  for (;;) {
    sim::Message msg = co_await endpoint.recv();
    switch (msg.kind) {
      case kOpenImage: {
        // A malformed payload of a known kind is a per-session fault, not a
        // server bug: answer kError (session 0 — the id is unreadable) and
        // keep serving every other session.  (Decoding happens outside any
        // co_await so a plain try/catch suffices; co_await is not permitted
        // inside an exception handler.)
        std::optional<OpenImage> open;
        try {
          open = decode_open_image(msg);
        } catch (const std::runtime_error&) {
        }
        if (!open) {
          co_await send_error(endpoint, 0, ErrorCode::kBadMessage);
          break;
        }
        co_await handle_open(endpoint, *open);
        break;
      }
      case kRequest: {
        std::optional<Request> request;
        try {
          request = decode_request(msg);
        } catch (const std::runtime_error&) {
        }
        if (!request) {
          co_await send_error(endpoint, 0, ErrorCode::kBadMessage);
          break;
        }
        co_await handle_request(endpoint, *request);
        break;
      }
      case kSetCodec: {
        std::optional<SetCodec> set;
        try {
          set = decode_set_codec(msg);
        } catch (const std::runtime_error&) {
        }
        if (!set) {
          co_await send_error(endpoint, 0, ErrorCode::kBadMessage);
          break;
        }
        std::shared_ptr<Session> session = pin_session(set->session_id);
        if (session == nullptr) {
          // Fire-and-forget control: count + log, no reply (the client is
          // not waiting on one).
          ++protocol_errors_;
          util::log_debug("viz.server", msg.delivered_at,
                          "set-codec for unknown session {}",
                          set->session_id);
        } else {
          session->codec = static_cast<codec::CodecId>(set->codec);
          util::log_debug("viz.server", msg.delivered_at,
                          "session {} codec -> {}", set->session_id,
                          codec::codec_name(session->codec));
        }
        break;
      }
      case kShutdown:
        co_return;
      default:
        throw std::runtime_error(
            util::format("viz server: unexpected message kind {}", msg.kind));
    }
  }
}

sim::Task<> VizServer::handle_open(sim::Endpoint& endpoint,
                                   const OpenImage& open) {
  auto it = images_.find(open.image_id);
  if (it == images_.end()) {
    co_await send_error(endpoint, open.session_id, ErrorCode::kUnknownImage);
    co_return;
  }
  co_await box_.compute(options_.fixed_request_ops);
  auto session = std::make_shared<Session>();
  session->image_id = open.image_id;
  session->pyramid = it->second.pyramid;
  session->content_hash = it->second.content_hash;
  session->encoder = std::make_unique<wavelet::ProgressiveEncoder>(
      *it->second.pyramid, options_.tile_size);
  session->codec = static_cast<codec::CodecId>(open.codec);
  session->level = open.level;
  install_session(open.session_id, std::move(session));

  OpenAck ack;
  ack.session_id = open.session_id;
  ack.width = static_cast<std::uint16_t>(it->second.pyramid->full_width());
  ack.height = static_cast<std::uint16_t>(it->second.pyramid->full_height());
  ack.levels = static_cast<std::uint8_t>(it->second.levels);
  co_await box_.send(endpoint, encode(ack));
}

sim::Task<> VizServer::handle_request(sim::Endpoint& endpoint,
                                      const Request& request) {
  // Pin before the first co_await: the reference stays valid even if this
  // session id is concurrently re-opened while we are suspended.
  std::shared_ptr<Session> pinned = pin_session(request.session_id);
  if (pinned == nullptr) {
    co_await send_error(endpoint, request.session_id, ErrorCode::kNoSession);
    co_return;
  }
  Session& session = *pinned;
  ++requests_served_;
  co_await box_.compute(options_.fixed_request_ops);

  wavelet::Region region{request.cx, request.cy, request.half};
  std::vector<wavelet::TileRef> tiles =
      session.encoder->take_region_tiles(region, request.level);
  // Serialization reuse: the tile list *is* the (region, level, sent-state)
  // key, so interleaved sessions at the same point in their progressive
  // walk share the payload.  Hits are byte-identical by construction.
  std::shared_ptr<const wavelet::Bytes> raw_shared;
  if (options_.region_cache != nullptr) {
    raw_shared =
        options_.region_cache->encode(session.content_hash, *session.encoder,
                                      tiles, session.image_id);
  } else {
    raw_shared = std::make_shared<const wavelet::Bytes>(
        session.encoder->serialize_tiles(tiles));
  }
  const wavelet::Bytes& raw = *raw_shared;
  raw_bytes_encoded_ += raw.size();
  // Region extraction cost: proportional to coefficients serialized.  The
  // simulated cost is charged whether or not the host-side cache hit —
  // caches save real cycles, never simulated time.
  co_await box_.compute(options_.encode_ops_per_coeff *
                        static_cast<double>(raw.size() / 2));

  const codec::Codec& codec = codec::codec_for(session.codec);
  Reply reply;
  reply.session_id = request.session_id;
  reply.complete = session.encoder->fully_sent(request.level);
  reply.codec = static_cast<std::uint8_t>(session.codec);
  reply.raw_len = static_cast<std::uint32_t>(raw.size());

  // Compression: always charge the codec's CPU cost; use the size cache to
  // avoid redoing byte-identical compressions (timing is unchanged).
  co_await box_.compute(codec.compress_ops(raw.size()));
  std::optional<std::size_t> cached;
  std::uint64_t raw_fingerprint = 0;
  if (options_.size_cache != nullptr) {
    // Hash the payload once; the same fingerprint keys the store on miss.
    raw_fingerprint = CompressedSizeCache::fingerprint(raw);
    cached = options_.size_cache->lookup(session.codec, raw_fingerprint);
  }
  if (cached) {
    reply.premeasured = true;
    reply.wire_len = static_cast<std::uint32_t>(*cached);
    reply.payload = raw;
  } else if (options_.size_cache != nullptr) {
    std::size_t compressed_size =
        options_.chunk_cache != nullptr
            ? options_.chunk_cache
                  ->compress(session.codec, raw, session.image_id)
                  ->size()
            : codec.compress(raw).size();
    options_.size_cache->store(session.codec, raw_fingerprint,
                               compressed_size);
    // Ship raw with overridden wire size so the client can skip the real
    // decompression too; the cache now knows the size for future runs.
    reply.premeasured = true;
    reply.wire_len = static_cast<std::uint32_t>(compressed_size);
    reply.payload = raw;
  } else {
    // Fidelity mode: the reply carries genuine compressed bytes.  The
    // chunk cache still deduplicates the real compression work across
    // sessions asking for the same tiles.
    codec::Bytes compressed =
        options_.chunk_cache != nullptr
            ? *options_.chunk_cache->compress(session.codec, raw,
                                              session.image_id)
            : codec.compress(raw);
    reply.premeasured = false;
    reply.wire_len = static_cast<std::uint32_t>(compressed.size());
    reply.payload = std::move(compressed);
  }
  wire_bytes_sent_ += reply.wire_len;
  co_await box_.send(endpoint, encode(reply));
}

}  // namespace avf::viz
