#include "viz/server.hpp"

#include <stdexcept>

#include "util/fmt.hpp"
#include "util/logging.hpp"

namespace avf::viz {

std::uint64_t CompressedSizeCache::fingerprint(codec::BytesView payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  // Mix in the length to disambiguate prefix collisions.
  h ^= payload.size();
  return h;
}

std::optional<std::size_t> CompressedSizeCache::lookup(
    codec::CodecId id, codec::BytesView payload) const {
  return lookup(id, fingerprint(payload));
}

std::optional<std::size_t> CompressedSizeCache::lookup(
    codec::CodecId id, std::uint64_t fp) const {
  std::scoped_lock lock(mutex_);
  auto it = sizes_.find(Key{fp, id});
  if (it == sizes_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void CompressedSizeCache::store(codec::CodecId id, codec::BytesView payload,
                                std::size_t size) {
  store(id, fingerprint(payload), size);
}

void CompressedSizeCache::store(codec::CodecId id, std::uint64_t fp,
                                std::size_t size) {
  if (max_entries_ == 0) return;
  std::scoped_lock lock(mutex_);
  Key key{fp, id};
  auto [it, inserted] = sizes_.insert_or_assign(key, size);
  (void)it;
  if (!inserted) return;  // overwrite keeps the original queue position
  insertion_order_.push_back(key);
  while (sizes_.size() > max_entries_) {
    sizes_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
  }
}

CompressedSizeCache& CompressedSizeCache::global() {
  static CompressedSizeCache cache;
  return cache;
}

VizServer::VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint)
    : VizServer(box, endpoint, Options{}) {}

VizServer::VizServer(sandbox::Sandbox& box, sim::Endpoint& endpoint,
                     Options options)
    : box_(box), endpoint_(endpoint), options_(options) {}

void VizServer::add_image(std::uint32_t id, const wavelet::Image& image,
                          int levels) {
  add_image(id, std::make_shared<const wavelet::Pyramid>(image, levels));
}

void VizServer::add_image(std::uint32_t id,
                          std::shared_ptr<const wavelet::Pyramid> pyramid) {
  StoredImage stored;
  stored.levels = pyramid->levels();
  stored.pyramid = std::move(pyramid);
  images_[id] = std::move(stored);
}

sim::Task<> VizServer::run() {
  for (;;) {
    sim::Message msg = co_await endpoint_.recv();
    switch (msg.kind) {
      case kOpenImage:
        co_await handle_open(decode_open_image(msg));
        break;
      case kRequest:
        co_await handle_request(decode_request(msg));
        break;
      case kSetCodec: {
        SetCodec set = decode_set_codec(msg);
        if (session_) {
          session_->codec = static_cast<codec::CodecId>(set.codec);
          util::log_debug("viz.server", msg.delivered_at,
                          "session codec -> {}",
                          codec::codec_name(session_->codec));
        }
        break;
      }
      case kShutdown:
        co_return;
      default:
        throw std::runtime_error(
            util::format("viz server: unexpected message kind {}", msg.kind));
    }
  }
}

sim::Task<> VizServer::handle_open(const OpenImage& open) {
  auto it = images_.find(open.image_id);
  if (it == images_.end()) {
    throw std::runtime_error(
        util::format("viz server: unknown image {}", open.image_id));
  }
  co_await box_.compute(options_.fixed_request_ops);
  Session session;
  session.image_id = open.image_id;
  session.encoder = std::make_unique<wavelet::ProgressiveEncoder>(
      *it->second.pyramid, options_.tile_size);
  session.codec = static_cast<codec::CodecId>(open.codec);
  session.level = open.level;
  session_ = std::move(session);

  OpenAck ack;
  ack.width = static_cast<std::uint16_t>(it->second.pyramid->full_width());
  ack.height = static_cast<std::uint16_t>(it->second.pyramid->full_height());
  ack.levels = static_cast<std::uint8_t>(it->second.levels);
  co_await box_.send(endpoint_, encode(ack));
}

sim::Task<> VizServer::handle_request(const Request& request) {
  if (!session_) {
    throw std::runtime_error("viz server: request without open session");
  }
  ++requests_served_;
  co_await box_.compute(options_.fixed_request_ops);

  wavelet::Region region{request.cx, request.cy, request.half};
  wavelet::Bytes raw =
      session_->encoder->encode_region(region, request.level);
  raw_bytes_encoded_ += raw.size();
  // Region extraction cost: proportional to coefficients serialized.
  co_await box_.compute(options_.encode_ops_per_coeff *
                        static_cast<double>(raw.size() / 2));

  const codec::Codec& codec = codec::codec_for(session_->codec);
  Reply reply;
  reply.complete = session_->encoder->fully_sent(request.level);
  reply.codec = static_cast<std::uint8_t>(session_->codec);
  reply.raw_len = static_cast<std::uint32_t>(raw.size());

  // Compression: always charge the codec's CPU cost; use the size cache to
  // avoid redoing byte-identical compressions (timing is unchanged).
  co_await box_.compute(codec.compress_ops(raw.size()));
  std::optional<std::size_t> cached;
  std::uint64_t raw_fingerprint = 0;
  if (options_.size_cache != nullptr) {
    // Hash the payload once; the same fingerprint keys the store on miss.
    raw_fingerprint = CompressedSizeCache::fingerprint(raw);
    cached = options_.size_cache->lookup(session_->codec, raw_fingerprint);
  }
  if (cached) {
    reply.premeasured = true;
    reply.wire_len = static_cast<std::uint32_t>(*cached);
    reply.payload = std::move(raw);
  } else {
    codec::Bytes compressed = codec.compress(raw);
    if (options_.size_cache != nullptr) {
      options_.size_cache->store(session_->codec, raw_fingerprint,
                                 compressed.size());
      // Ship raw with overridden wire size so the client can skip the real
      // decompression too; the cache now knows the size for future runs.
      reply.premeasured = true;
      reply.wire_len = static_cast<std::uint32_t>(compressed.size());
      reply.payload = std::move(raw);
    } else {
      reply.premeasured = false;
      reply.wire_len = static_cast<std::uint32_t>(compressed.size());
      reply.payload = std::move(compressed);
    }
  }
  wire_bytes_sent_ += reply.wire_len;
  co_await box_.send(endpoint_, encode(reply));
}

}  // namespace avf::viz
