#include "viz/client.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fmt.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace avf::viz {

namespace {

/// Accumulating FNV-1a (seeded with the offset basis on first use).
std::uint64_t fnv1a_accumulate(std::uint64_t h,
                               const std::vector<std::uint8_t>& bytes) {
  if (h == 0) h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Throw a descriptive error when the server answered with kError; other
/// kinds pass through for the caller's decode to check.
void check_not_error(const sim::Message& msg) {
  if (msg.kind != kError) return;
  ErrorReply err = decode_error(msg);
  throw std::runtime_error(util::format(
      "viz client: server error {} for session {}",
      static_cast<int>(err.code), err.session_id));
}

}  // namespace

VizClient::VizClient(sandbox::Sandbox& box, sim::Endpoint& endpoint,
                     adapt::SteeringAgent* steering,
                     adapt::MonitoringAgent* monitor)
    : VizClient(box, endpoint, steering, monitor, Options{}) {}

VizClient::VizClient(sandbox::Sandbox& box, sim::Endpoint& endpoint,
                     adapt::SteeringAgent* steering,
                     adapt::MonitoringAgent* monitor, Options options)
    : box_(box),
      endpoint_(endpoint),
      steering_(steering),
      monitor_(monitor),
      options_(std::move(options)) {
  if (monitor_ != nullptr) {
    net_axis_ = monitor_->axis_id("net_bps");
    cpu_axis_ = monitor_->axis_id("cpu_share");
  }
}

const tunable::ConfigPoint& VizClient::config() const {
  return steering_ != nullptr ? steering_->active() : fixed_config_;
}

sim::Task<VizClient::ImageStats> VizClient::fetch_image(
    std::uint32_t image_id) {
  sim::Simulator& sim = box_.host().simulator();
  double host_speed = box_.host().cpu_speed();

  tunable::ConfigPoint cfg = config();
  if (cfg.empty()) {
    throw std::runtime_error("viz client: no configuration set");
  }
  int level = cfg.get("l");
  auto session_codec = static_cast<codec::CodecId>(cfg.get("c"));

  ImageStats stats;
  stats.image_id = image_id;
  stats.start_time = sim.now();

  // establish_connection + notify_server_compression_type.
  OpenImage open;
  open.session_id = options_.session_id;
  open.image_id = image_id;
  open.level = static_cast<std::uint8_t>(level);
  open.codec = static_cast<std::uint8_t>(session_codec);
  co_await box_.send(endpoint_, encode(open));
  sim::Message ack_msg = co_await endpoint_.recv();
  check_not_error(ack_msg);
  OpenAck ack = decode_open_ack(ack_msg);
  if (ack.session_id != options_.session_id) {
    throw std::runtime_error(util::format(
        "viz client: open-ack for session {}, expected {}", ack.session_id,
        options_.session_id));
  }

  wavelet::ProgressiveDecoder decoder(ack.width, ack.height, ack.levels,
                                      options_.tile_size);
  int cx = options_.fovea_cx >= 0 ? options_.fovea_cx : ack.width / 2;
  int cy = options_.fovea_cy >= 0 ? options_.fovea_cy : ack.height / 2;
  int half = 0;

  util::RunningStats responses;
  for (int round = 0;; ++round) {
    double t0 = sim.now();  // QoS_monitor { t0 = clock(); }

    cfg = config();
    level = cfg.get("l");
    auto wanted_codec = static_cast<codec::CodecId>(cfg.get("c"));
    if (wanted_codec != session_codec) {
      // The transition action of Figure 2: notify the server of the new
      // compression type before the next request uses it.
      SetCodec set;
      set.session_id = options_.session_id;
      set.codec = static_cast<std::uint8_t>(wanted_codec);
      co_await box_.send(endpoint_, encode(set));
      session_codec = wanted_codec;
    }

    half += cfg.get("dR");  // r += control.dR
    Request request;
    request.session_id = options_.session_id;
    request.cx = static_cast<std::uint16_t>(cx);
    request.cy = static_cast<std::uint16_t>(cy);
    request.half = static_cast<std::uint16_t>(half);
    request.level = static_cast<std::uint8_t>(level);
    co_await box_.send(endpoint_, encode(request));

    sim::Message raw_msg = co_await endpoint_.recv();
    check_not_error(raw_msg);
    double wire_bytes = static_cast<double>(raw_msg.wire_size());
    double transfer_duration = raw_msg.delivered_at - raw_msg.sent_at;
    Reply reply = decode_reply(std::move(raw_msg));
    if (reply.session_id != options_.session_id) {
      throw std::runtime_error(util::format(
          "viz client: reply for session {}, expected {}", reply.session_id,
          options_.session_id));
    }
    stats.wire_bytes += reply.wire_len;

    // Monitoring: observed bandwidth from the reply's own transfer.
    if (monitor_ != nullptr && transfer_duration > 0.0 &&
        wire_bytes >= 4096.0) {
      monitor_->observe(net_axis_, wire_bytes / transfer_duration);
    }

    // decompress(control.c, &data) + reconstruction + update_display.
    double busy_start = sim.now();
    const codec::Codec& codec =
        codec::codec_for(static_cast<codec::CodecId>(reply.codec));
    co_await box_.compute(codec.decompress_ops(reply.raw_len));
    wavelet::Bytes raw =
        reply.premeasured
            ? std::move(reply.payload)
            : codec.decompress(reply.payload);
    stats.payload_hash = fnv1a_accumulate(stats.payload_hash, raw);
    auto applied = decoder.apply(raw);
    double scale = static_cast<double>(1 << (ack.levels - level));
    double shown_w =
        std::min<double>(2.0 * half, ack.width) / scale;
    double shown_h =
        std::min<double>(2.0 * half, ack.height) / scale;
    double work = options_.fixed_round_ops +
                  options_.reconstruct_ops_per_coeff *
                      static_cast<double>(applied.coefficients) +
                  options_.display_ops_per_pixel * shown_w * shown_h;
    co_await box_.compute(work);
    double busy_duration = sim.now() - busy_start;

    // Monitoring: observed CPU share = work done / what a dedicated CPU
    // would have done in the same interval.
    if (monitor_ != nullptr && busy_duration > 0.0) {
      double total_ops = codec.decompress_ops(reply.raw_len) + work;
      double share = total_ops / (host_speed * busy_duration);
      monitor_->observe(cpu_axis_, std::clamp(share, 0.0, 1.0));
    }

    // QoS_monitor { response_time, transmit_time, resolution }.
    double round_time = sim.now() - t0;
    responses.add(round_time);
    stats.rounds = round + 1;
    stats.resolution = level;

    // check_for_user_interaction(&x, &y, &r, &control.dR).
    if (options_.interaction) {
      options_.interaction(round, cx, cy, half);
    }

    // Transition point: the steering agent may install a new configuration
    // here (task boundary of module1).
    if (steering_ != nullptr) steering_->apply_pending();

    if (reply.complete) break;
  }

  stats.end_time = sim.now();
  stats.transmit_time = stats.end_time - stats.start_time;
  stats.avg_response = responses.mean();
  stats.max_response = responses.max();
  stats.final_config = config().key();
  history_.push_back(stats);
  util::log_debug("viz.client", sim.now(),
                  "image {} done in {:.3f}s ({} rounds, cfg {})", image_id,
                  stats.transmit_time, stats.rounds, stats.final_config);
  co_return stats;
}

sim::Task<> VizClient::fetch_images(std::uint32_t first_id, int count) {
  for (int i = 0; i < count; ++i) {
    (void)co_await fetch_image(first_id + static_cast<std::uint32_t>(i));
  }
}

sim::Task<> VizClient::shutdown_server() {
  co_await box_.send(endpoint_, encode_shutdown());
}

tunable::QosVector VizClient::qos() const {
  tunable::QosVector out;
  if (history_.empty()) return out;
  double transmit = 0.0, response = 0.0;
  for (const ImageStats& s : history_) {
    transmit += s.transmit_time;
    response += s.avg_response;
  }
  out.set("transmit_time", transmit / static_cast<double>(history_.size()));
  out.set("response_time", response / static_cast<double>(history_.size()));
  out.set("resolution", history_.back().resolution);
  return out;
}

}  // namespace avf::viz
