// Process-wide content-addressed payload store for the Active Visualization
// server (cromfs-style: hash once, share filesystem-wide).
//
// Every cacheable server payload — serialized wavelet-tile regions,
// compressed chunks — is keyed by a deterministic seeded 128-bit content
// hash (util::Hasher128) and stored exactly once, shared across *all*
// images, pyramids, and sessions.  This is what makes server memory scale
// with unique content rather than client or image count: two catalog
// images containing the same tiles resolve to the same entries, whereas
// the previous RegionEncodeCache keyed on pyramid *pointer* and pinned one
// pyramid per entry, so identical content stored as distinct images was
// duplicated per image.
//
// Contracts (shared with the thin cache layers in viz/caches.hpp):
//
//  - Cycles only: the store never affects simulated time or payload bytes.
//    Hits return the byte-identical payload the builder would produce (the
//    key is derived from content the builder is a pure function of), so
//    cached and uncached runs trace identically.
//  - Pinned hits: lookups return shared_ptr pins; eviction drops the store
//    reference but an in-flight reply's pin keeps the bytes alive (the
//    PR 8 session-reopen lesson, applied to payloads).
//  - Byte budget + second-chance eviction: resident payload bytes are
//    bounded by Options::byte_budget; a CLOCK hand sweeps insertion order,
//    giving recently hit entries one more revolution before evicting.
//  - verify_on_hit: debug mode that rebuilds on every hit and byte-compares
//    against the stored payload — the guard against 128-bit collisions.  A
//    mismatch is counted, the entry replaced, and the *rebuilt* (correct)
//    payload returned, so even a collision cannot corrupt a trace.
//  - Determinism: hashing is seeded and wall-clock-free; the store holds
//    unordered maps for lookup only (never iterated — the CLOCK ring is an
//    ordered vector), so no host-side state leaks into traces.
//
// Storage shards kMaxShards ways by key high bits once the byte budget is
// large enough that each shard stays useful (>= kMinShardBudget each), so
// many serve loops and parallel profiling sweeps do not serialize on one
// mutex.  Small budgets (tests) collapse to one shard with exact CLOCK
// semantics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/hash.hpp"
#include "util/mutex.hpp"

namespace avf::viz {

class TileStore {
 public:
  using Key = util::Hash128;
  using Payload = std::vector<std::uint8_t>;  // == wavelet/codec Bytes

  static constexpr std::size_t kDefaultByteBudget = 64ull << 20;
  static constexpr std::size_t kMaxShards = 16;
  static constexpr std::size_t kMinShardBudget = 1ull << 20;

  struct Options {
    /// Resident payload-byte bound (0 = store nothing: build pass-through).
    std::size_t byte_budget = kDefaultByteBudget;
    /// Debug collision guard: rebuild on every hit and byte-compare.
    bool verify_on_hit = false;
  };

  TileStore() : TileStore(Options{}) {}
  explicit TileStore(Options options);

  /// Outcome of one get_or_build: the pinned payload plus what happened.
  struct Lookup {
    std::shared_ptr<const Payload> payload;
    bool hit = false;        ///< an existing entry was reused
    bool collision = false;  ///< verify_on_hit caught a hash collision
  };

  /// Hit path: return `key`'s payload (marking it recently used) or build,
  /// insert, and return it.  `origin_tag` is an opaque caller label (the
  /// viz server passes the image id) recorded at insertion; a hit whose
  /// entry was inserted under a different tag counts as a cross-origin hit
  /// — the counter that proves cross-image dedup happened.  `build` must
  /// be a pure function of the content `key` was derived from.
  template <typename BuildFn>
  Lookup get_or_build(const Key& key, std::uint64_t origin_tag,
                      BuildFn&& build) {
    if (std::shared_ptr<const Payload> found = find(key, origin_tag)) {
      if (!verify_on_hit()) return {std::move(found), true, false};
      Payload rebuilt = build();
      if (*found == rebuilt) return {std::move(found), true, false};
      return {replace_after_collision(key, origin_tag, std::move(rebuilt)),
              true, true};
    }
    return {insert(key, origin_tag, build()), false, false};
  }

  /// Lookup half of get_or_build (counts a hit or a miss).
  std::shared_ptr<const Payload> find(const Key& key, std::uint64_t origin_tag);
  /// Insert half: stores `payload` (unless an entry raced in first, which
  /// wins) and evicts down to the byte budget.  Returns the stored pin.
  std::shared_ptr<const Payload> insert(const Key& key,
                                        std::uint64_t origin_tag,
                                        Payload&& payload);

  // -- memory + dedup counters (aggregated across shards; each shard's
  //    contribution is snapshotted under its own lock) -------------------
  std::size_t bytes_resident() const;   ///< payload bytes currently stored
  std::size_t unique_entries() const;   ///< distinct content entries
  std::size_t pinned_entries() const;   ///< entries some caller still pins
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t bytes_deduped() const;  ///< cumulative hit payload bytes
  std::uint64_t bytes_evicted() const;
  std::uint64_t cross_origin_hits() const;
  std::uint64_t collisions() const;

  std::size_t byte_budget() const { return options_.byte_budget; }
  bool verify_on_hit() const { return options_.verify_on_hit; }
  std::size_t shard_count() const { return shard_count_; }

  void clear();

  /// Shared process-wide instance (the default backing of the viz caches).
  static TileStore& global();

 private:
  struct Entry {
    std::shared_ptr<const Payload> payload;
    std::uint64_t origin_tag = 0;
    std::size_t ring_slot = 0;
    bool referenced = true;  // CLOCK second-chance bit, set on hit
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.lo);  // already avalanche-mixed
    }
  };
  struct ShardCounters {
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t pinned = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_deduped = 0;
    std::uint64_t bytes_evicted = 0;
    std::uint64_t cross_origin_hits = 0;
    std::uint64_t collisions = 0;
  };
  struct Shard {
    mutable util::Mutex mutex;
    std::unordered_map<Key, Entry, KeyHasher> entries AVF_GUARDED_BY(mutex);
    /// CLOCK ring: insertion-ordered keys, swap-removed on eviction.  The
    /// only structure ever iterated (ordered vector — the unordered map is
    /// lookup-only, per src.unordered-iteration).
    std::vector<Key> ring AVF_GUARDED_BY(mutex);
    std::size_t hand AVF_GUARDED_BY(mutex) = 0;
    std::size_t bytes AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t hits AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t misses AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t bytes_deduped AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t bytes_evicted AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t cross_origin_hits AVF_GUARDED_BY(mutex) = 0;
    std::uint64_t collisions AVF_GUARDED_BY(mutex) = 0;

    void evict_to_budget(std::size_t budget) AVF_REQUIRES(mutex);
    ShardCounters counters() const AVF_EXCLUDES(mutex);
  };

  std::shared_ptr<const Payload> replace_after_collision(const Key& key,
                                                         std::uint64_t tag,
                                                         Payload&& rebuilt);

  Shard& shard_for(const Key& key) const {
    // High bits pick the shard; the map hash uses the (mixed) low word, so
    // shard choice and bucket choice stay decorrelated.
    return shards_[(key.hi >> 59) % shard_count_];
  }

  Options options_;
  std::size_t shard_count_;
  std::size_t shard_budget_;
  mutable std::array<Shard, kMaxShards> shards_;
};

}  // namespace avf::viz
