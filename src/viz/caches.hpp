// Process-wide shared caches for the multi-session Active Visualization
// server.
//
// With many clients foveating the same images, the expensive server-side
// work (serializing wavelet tiles, running the real codec) is identical
// across sessions; only the per-session sent-state differs.  Both caches
// below key on *exact* content, not a content hash:
//
//  - RegionEncodeCache keys on (pyramid identity, tile size, the precise
//    tile list to serialize).  The tile list is what (region, level,
//    already-sent state class) resolve to, so two sessions whose sent-state
//    differs can still share the payload whenever they need the same tiles
//    — and because ProgressiveEncoder::serialize_tiles is a pure function
//    of that key, a hit is byte-identical to the uncached path by
//    construction.
//  - CompressedChunkCache keys on (codec id, the exact raw chunk bytes),
//    so a hit returns the byte-identical compressed output the codec would
//    have produced.
//
// Both are FIFO-bounded, mutex-protected (the global() instances are shared
// by every world a parallel profiling sweep builds), export hit/miss/
// eviction counters, and pin shared ownership of what they return so
// entries stay valid after eviction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "codec/codec.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {

/// (pyramid, tile_size, tile list) -> serialized region payload.
class RegionEncodeCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 12;

  RegionEncodeCache() : RegionEncodeCache(kDefaultMaxEntries) {}
  explicit RegionEncodeCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// Serialize `tiles` against `encoder`'s pyramid, reusing a previous
  /// byte-identical serialization when available.  `pyramid` must be the
  /// pyramid `encoder` was built over; holding the shared_ptr in the entry
  /// keeps the pointer half of the key unambiguous for the entry lifetime.
  std::shared_ptr<const wavelet::Bytes> encode(
      const std::shared_ptr<const wavelet::Pyramid>& pyramid,
      const wavelet::ProgressiveEncoder& encoder,
      std::span<const wavelet::TileRef> tiles) AVF_EXCLUDES(mutex_);

  std::size_t size() const AVF_EXCLUDES(mutex_);
  std::size_t max_entries() const { return max_entries_; }
  std::uint64_t hits() const AVF_EXCLUDES(mutex_);
  std::uint64_t misses() const AVF_EXCLUDES(mutex_);
  std::uint64_t evictions() const AVF_EXCLUDES(mutex_);
  void clear() AVF_EXCLUDES(mutex_);

  /// Shared instance used by default; individual servers may use their own.
  static RegionEncodeCache& global();

 private:
  struct Entry {
    std::shared_ptr<const wavelet::Bytes> payload;
    std::shared_ptr<const wavelet::Pyramid> pin;
  };

  std::size_t max_entries_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, Entry> entries_ AVF_GUARDED_BY(mutex_);
  // FIFO eviction order.
  std::deque<std::string> insertion_order_ AVF_GUARDED_BY(mutex_);
  std::uint64_t hits_ AVF_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ AVF_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ AVF_GUARDED_BY(mutex_) = 0;
};

/// (codec id, exact raw bytes) -> compressed bytes.
class CompressedChunkCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 1 << 10;

  CompressedChunkCache() : CompressedChunkCache(kDefaultMaxEntries) {}
  explicit CompressedChunkCache(std::size_t max_entries)
      : max_entries_(max_entries) {}

  /// Compress `raw` with `id`, reusing a previous byte-identical
  /// compression of the same chunk when available.
  std::shared_ptr<const codec::Bytes> compress(codec::CodecId id,
                                               codec::BytesView raw)
      AVF_EXCLUDES(mutex_);

  std::size_t size() const AVF_EXCLUDES(mutex_);
  std::size_t max_entries() const { return max_entries_; }
  std::uint64_t hits() const AVF_EXCLUDES(mutex_);
  std::uint64_t misses() const AVF_EXCLUDES(mutex_);
  std::uint64_t evictions() const AVF_EXCLUDES(mutex_);
  void clear() AVF_EXCLUDES(mutex_);

  /// Shared instance used by default; individual servers may use their own.
  static CompressedChunkCache& global();

 private:
  std::size_t max_entries_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const codec::Bytes>>
      chunks_ AVF_GUARDED_BY(mutex_);
  // FIFO eviction order.
  std::deque<std::string> insertion_order_ AVF_GUARDED_BY(mutex_);
  std::uint64_t hits_ AVF_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ AVF_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ AVF_GUARDED_BY(mutex_) = 0;
};

}  // namespace avf::viz
