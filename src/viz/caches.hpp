// Thin lookup layers over the process-wide content-addressed TileStore
// (viz/tile_store.hpp) for the multi-session Active Visualization server.
//
// With many clients foveating many catalog images, the expensive
// server-side work (serializing wavelet tiles, running the real codec) is
// identical whenever the *content* is identical; only per-session
// sent-state differs.  Both layers derive a seeded 128-bit content key
// incrementally (no per-request key buffer — the previous implementation
// built a std::string per lookup) and delegate storage, byte budgeting,
// CLOCK eviction, and pinning to their TileStore:
//
//  - RegionEncodeCache keys on (pyramid *content* hash, tile size, the
//    precise TileRef list).  The tile list is what (region, level,
//    already-sent state class) resolve to, and serialize_tiles is a pure
//    function of (pyramid content, tile size, tiles) — so a hit is
//    byte-identical to the uncached path by construction, across sessions
//    AND across distinct images containing the same data.
//  - CompressedChunkCache keys on (codec id, the raw chunk bytes, hashed
//    in place), so a hit returns the byte-identical compressed output the
//    codec would have produced.
//
// Each layer keeps its own hit/miss/collision counters (lock-free; the
// store's byte/dedup counters aggregate across layers sharing it).  The
// default-constructed layer owns a private store — tests and benches that
// construct fresh caches get fresh, attributable state — while global()
// layers share TileStore::global() across every world a parallel sweep
// builds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "codec/codec.hpp"
#include "util/hash.hpp"
#include "viz/tile_store.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {

/// (pyramid content, tile_size, tile list) -> serialized region payload.
class RegionEncodeCache {
 public:
  /// Owns a private TileStore (fresh, attributable state).
  RegionEncodeCache();
  /// Layers over `store` (shared with other layers; not owned).
  explicit RegionEncodeCache(TileStore& store) : store_(&store) {}

  /// Serialize `tiles` against `encoder`'s pyramid, reusing a previous
  /// byte-identical serialization of the same content when available.
  /// `pyramid_content` must be wavelet::pyramid_content_hash of the
  /// pyramid `encoder` was built over (the server memoizes it per stored
  /// image); `origin_tag` labels the requester (the server passes the
  /// image id) so the store can count cross-image hits.
  std::shared_ptr<const wavelet::Bytes> encode(
      const util::Hash128& pyramid_content,
      const wavelet::ProgressiveEncoder& encoder,
      std::span<const wavelet::TileRef> tiles, std::uint64_t origin_tag = 0);

  TileStore& store() { return *store_; }
  const TileStore& store() const { return *store_; }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const { return store_->evictions(); }
  std::size_t size() const { return store_->unique_entries(); }

  /// Shared instance used by default; layered over TileStore::global().
  static RegionEncodeCache& global();

 private:
  std::unique_ptr<TileStore> owned_store_;
  TileStore* store_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

/// (codec id, raw bytes) -> compressed bytes.
class CompressedChunkCache {
 public:
  /// Owns a private TileStore (fresh, attributable state).
  CompressedChunkCache();
  /// Layers over `store` (shared with other layers; not owned).
  explicit CompressedChunkCache(TileStore& store) : store_(&store) {}

  /// Compress `raw` with `id`, reusing a previous byte-identical
  /// compression of the same chunk when available.
  std::shared_ptr<const codec::Bytes> compress(codec::CodecId id,
                                               codec::BytesView raw,
                                               std::uint64_t origin_tag = 0);

  TileStore& store() { return *store_; }
  const TileStore& store() const { return *store_; }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const { return store_->evictions(); }
  std::size_t size() const { return store_->unique_entries(); }

  /// Shared instance used by default; layered over TileStore::global().
  static CompressedChunkCache& global();

 private:
  std::unique_ptr<TileStore> owned_store_;
  TileStore* store_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace avf::viz
