#include "viz/tile_store.hpp"

namespace avf::viz {

TileStore::TileStore(Options options)
    : options_(options),
      // Sharding only helps once each shard can hold a useful slice of the
      // budget; small stores (tests, tight budgets) keep the exact
      // single-ring CLOCK semantics the eviction tests pin down.
      shard_count_(options.byte_budget >= kMaxShards * kMinShardBudget
                       ? kMaxShards
                       : 1),
      shard_budget_(options.byte_budget / shard_count_) {}

std::shared_ptr<const TileStore::Payload> TileStore::find(
    const Key& key, std::uint64_t origin_tag) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  entry.referenced = true;  // CLOCK second chance
  ++shard.hits;
  shard.bytes_deduped += entry.payload->size();
  if (entry.origin_tag != origin_tag) ++shard.cross_origin_hits;
  return entry.payload;
}

std::shared_ptr<const TileStore::Payload> TileStore::insert(
    const Key& key, std::uint64_t origin_tag, Payload&& payload) {
  auto shared = std::make_shared<const Payload>(std::move(payload));
  if (options_.byte_budget == 0) return shared;  // pass-through, store off
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.entries.emplace(
      key, Entry{shared, origin_tag, shard.ring.size(), true});
  // Two threads may race to build the same content; both payloads are
  // byte-identical (pure builders), the first insert wins.
  if (!inserted) return it->second.payload;
  shard.ring.push_back(key);
  shard.bytes += shared->size();
  shard.evict_to_budget(shard_budget_);
  return shared;
}

std::shared_ptr<const TileStore::Payload> TileStore::replace_after_collision(
    const Key& key, std::uint64_t tag, Payload&& rebuilt) {
  auto shared = std::make_shared<const Payload>(std::move(rebuilt));
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  ++shard.collisions;
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return shared;  // evicted meanwhile
  Entry& entry = it->second;
  shard.bytes -= entry.payload->size();
  shard.bytes += shared->size();
  entry.payload = shared;
  entry.origin_tag = tag;
  entry.referenced = true;
  shard.evict_to_budget(shard_budget_);
  return shared;
}

void TileStore::Shard::evict_to_budget(std::size_t budget) {
  // Second-chance CLOCK: the hand sweeps the ring; a referenced entry
  // spends its reference bit and survives one more revolution, anything
  // else is evicted — pinned or not.  Evicting a pinned entry is safe:
  // the map drops its reference but the caller's shared_ptr keeps the
  // payload bytes alive until the reply is sent (eviction-under-pin).
  // Termination: every step either clears a reference bit (finitely many)
  // or removes an entry.  The newest entry is never evicted below two
  // entries, so one oversized payload cannot evict itself.
  while (bytes > budget && ring.size() > 1) {
    if (hand >= ring.size()) hand = 0;
    auto it = entries.find(ring[hand]);
    Entry& entry = it->second;
    if (entry.referenced) {
      entry.referenced = false;
      ++hand;
      continue;
    }
    bytes -= entry.payload->size();
    bytes_evicted += entry.payload->size();
    ++evictions;
    // Swap-remove the ring slot; re-slot the moved key.
    ring[hand] = ring.back();
    ring.pop_back();
    if (hand < ring.size()) entries.find(ring[hand])->second.ring_slot = hand;
    entries.erase(it);
  }
}

TileStore::ShardCounters TileStore::Shard::counters() const {
  util::MutexLock lock(mutex);
  ShardCounters c;
  c.bytes = bytes;
  c.entries = entries.size();
  // Pinned = some caller besides the store still holds the payload.  The
  // ordered ring is scanned, not the unordered map (determinism lint).
  for (const Key& key : ring) {
    if (entries.find(key)->second.payload.use_count() > 1) ++c.pinned;
  }
  c.hits = hits;
  c.misses = misses;
  c.evictions = evictions;
  c.bytes_deduped = bytes_deduped;
  c.bytes_evicted = bytes_evicted;
  c.cross_origin_hits = cross_origin_hits;
  c.collisions = collisions;
  return c;
}

// Aggregate counters are sums of per-shard-consistent snapshots, not a
// single instant across shards (same contract as CompressedSizeCache).
std::size_t TileStore::bytes_resident() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().bytes;
  }
  return total;
}

std::size_t TileStore::unique_entries() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().entries;
  }
  return total;
}

std::size_t TileStore::pinned_entries() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().pinned;
  }
  return total;
}

std::uint64_t TileStore::hits() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().hits;
  }
  return total;
}

std::uint64_t TileStore::misses() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().misses;
  }
  return total;
}

std::uint64_t TileStore::evictions() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().evictions;
  }
  return total;
}

std::uint64_t TileStore::bytes_deduped() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().bytes_deduped;
  }
  return total;
}

std::uint64_t TileStore::bytes_evicted() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().bytes_evicted;
  }
  return total;
}

std::uint64_t TileStore::cross_origin_hits() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().cross_origin_hits;
  }
  return total;
}

std::uint64_t TileStore::collisions() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    total += shards_[s].counters().collisions;
  }
  return total;
}

void TileStore::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    util::MutexLock lock(shard.mutex);
    shard.entries.clear();
    shard.ring.clear();
    shard.hand = 0;
    shard.bytes = 0;
    shard.hits = shard.misses = shard.evictions = 0;
    shard.bytes_deduped = shard.bytes_evicted = 0;
    shard.cross_origin_hits = shard.collisions = 0;
  }
}

TileStore& TileStore::global() {
  static TileStore store;
  return store;
}

}  // namespace avf::viz
