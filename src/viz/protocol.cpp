#include "viz/protocol.hpp"

#include "util/fmt.hpp"

namespace avf::viz {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, v & 0xFFFF);
  put_u16(out, v >> 16);
}

struct Reader {
  const std::vector<std::uint8_t>& data;
  std::size_t at = 0;

  std::uint8_t u8() {
    need(1);
    return data[at++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data[at] | (data[at + 1] << 8));
    at += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  void need(std::size_t n) const {
    if (at + n > data.size()) {
      throw std::runtime_error("viz protocol: truncated message");
    }
  }
  void done() const {
    if (at != data.size()) {
      throw std::runtime_error("viz protocol: trailing bytes");
    }
  }
};

void check_kind(const sim::Message& m, int kind) {
  if (m.kind != kind) {
    throw std::runtime_error(util::format(
        "viz protocol: expected message kind {}, got {}", kind, m.kind));
  }
}

}  // namespace

sim::Message encode(const OpenImage& m) {
  sim::Message out;
  out.kind = kOpenImage;
  put_u32(out.payload, m.session_id);
  put_u32(out.payload, m.image_id);
  out.payload.push_back(m.level);
  out.payload.push_back(m.codec);
  return out;
}

OpenImage decode_open_image(const sim::Message& m) {
  check_kind(m, kOpenImage);
  Reader r{m.payload};
  OpenImage out;
  out.session_id = r.u32();
  out.image_id = r.u32();
  out.level = r.u8();
  out.codec = r.u8();
  r.done();
  return out;
}

sim::Message encode(const OpenAck& m) {
  sim::Message out;
  out.kind = kOpenAck;
  put_u32(out.payload, m.session_id);
  put_u16(out.payload, m.width);
  put_u16(out.payload, m.height);
  out.payload.push_back(m.levels);
  return out;
}

OpenAck decode_open_ack(const sim::Message& m) {
  check_kind(m, kOpenAck);
  Reader r{m.payload};
  OpenAck out;
  out.session_id = r.u32();
  out.width = r.u16();
  out.height = r.u16();
  out.levels = r.u8();
  r.done();
  return out;
}

sim::Message encode(const Request& m) {
  sim::Message out;
  out.kind = kRequest;
  put_u32(out.payload, m.session_id);
  put_u16(out.payload, m.cx);
  put_u16(out.payload, m.cy);
  put_u16(out.payload, m.half);
  out.payload.push_back(m.level);
  return out;
}

Request decode_request(const sim::Message& m) {
  check_kind(m, kRequest);
  Reader r{m.payload};
  Request out;
  out.session_id = r.u32();
  out.cx = r.u16();
  out.cy = r.u16();
  out.half = r.u16();
  out.level = r.u8();
  r.done();
  return out;
}

sim::Message encode(const Reply& m) {
  sim::Message out;
  out.kind = kReply;
  put_u32(out.payload, m.session_id);
  out.payload.push_back(m.complete ? 1 : 0);
  out.payload.push_back(m.codec);
  out.payload.push_back(m.premeasured ? 1 : 0);
  put_u32(out.payload, m.raw_len);
  put_u32(out.payload, m.wire_len);
  out.payload.insert(out.payload.end(), m.payload.begin(), m.payload.end());
  if (m.premeasured) {
    // Network charges the compressed size, not the raw convenience bytes.
    out.wire_size_override = m.wire_len + 15 + sim::kMessageHeaderBytes;
  }
  return out;
}

Reply decode_reply(sim::Message m) {
  check_kind(m, kReply);
  Reader r{m.payload};
  Reply out;
  out.session_id = r.u32();
  out.complete = r.u8() != 0;
  out.codec = r.u8();
  out.premeasured = r.u8() != 0;
  out.raw_len = r.u32();
  out.wire_len = r.u32();
  out.payload.assign(m.payload.begin() + static_cast<std::ptrdiff_t>(r.at),
                     m.payload.end());
  return out;
}

sim::Message encode(const SetCodec& m) {
  sim::Message out;
  out.kind = kSetCodec;
  put_u32(out.payload, m.session_id);
  out.payload.push_back(m.codec);
  return out;
}

SetCodec decode_set_codec(const sim::Message& m) {
  check_kind(m, kSetCodec);
  Reader r{m.payload};
  SetCodec out;
  out.session_id = r.u32();
  out.codec = r.u8();
  r.done();
  return out;
}

sim::Message encode(const ErrorReply& m) {
  sim::Message out;
  out.kind = kError;
  put_u32(out.payload, m.session_id);
  out.payload.push_back(static_cast<std::uint8_t>(m.code));
  return out;
}

ErrorReply decode_error(const sim::Message& m) {
  check_kind(m, kError);
  Reader r{m.payload};
  ErrorReply out;
  out.session_id = r.u32();
  out.code = static_cast<ErrorCode>(r.u8());
  r.done();
  return out;
}

sim::Message encode_shutdown() {
  sim::Message out;
  out.kind = kShutdown;
  return out;
}

}  // namespace avf::viz
