// Client component of the Active Visualization application — the tunable
// side (paper Figure 2).  Implements the annotated foveal loop: request the
// growing foveal square up to the preferred resolution, decompress, update
// the display, check for user interaction — with QoS_monitor blocks feeding
// the quality metrics, monitoring hooks estimating actually-available
// resources from observed progress, and the steering agent's transition
// point at the end of every round.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "adapt/monitor.hpp"
#include "adapt/steering.hpp"
#include "codec/codec.hpp"
#include "sandbox/sandbox.hpp"
#include "sim/link.hpp"
#include "sim/task.hpp"
#include "tunable/config.hpp"
#include "tunable/qos.hpp"
#include "viz/protocol.hpp"
#include "wavelet/progressive.hpp"

namespace avf::viz {

class VizClient {
 public:
  // CPU cost calibration (DESIGN.md §5): a 450 Mops client spends ~3 s of
  // CPU per full-resolution 1024x1024 image (wavelet reconstruction +
  // rendering), matching the CPU-bound behavior of the paper's client.
  struct Options {
    int tile_size = 16;
    double fixed_round_ops = 9e6;               // ~20 ms per round
    double reconstruct_ops_per_coeff = 250.0;   // inverse DWT
    double display_ops_per_pixel = 400.0;       // colormap + blit
    /// Session id carried on every protocol message (non-zero, unique per
    /// client against one server).  The default suits single-client worlds.
    std::uint32_t session_id = 1;
    /// Foveal center; -1 = image center.
    int fovea_cx = -1;
    int fovea_cy = -1;
    /// Optional user-interaction trace, invoked once per round (the
    /// `check_for_user_interaction` call); may move the fovea and resize
    /// the current half-extent.
    std::function<void(int round, int& cx, int& cy, int& half)> interaction;
  };

  /// `steering` may be null, in which case a fixed configuration (set via
  /// set_fixed_config) is used — the non-adaptive baseline mode.
  /// `monitor` may be null to disable availability reporting.
  VizClient(sandbox::Sandbox& box, sim::Endpoint& endpoint,
            adapt::SteeringAgent* steering, adapt::MonitoringAgent* monitor);
  VizClient(sandbox::Sandbox& box, sim::Endpoint& endpoint,
            adapt::SteeringAgent* steering, adapt::MonitoringAgent* monitor,
            Options options);

  void set_fixed_config(const tunable::ConfigPoint& config) {
    fixed_config_ = config;
  }

  /// QoS record for one downloaded image.
  struct ImageStats {
    std::uint32_t image_id = 0;
    double start_time = 0.0;
    double end_time = 0.0;
    double transmit_time = 0.0;   ///< QoS.transmit_time
    double avg_response = 0.0;    ///< QoS.response_time (mean round time)
    double max_response = 0.0;
    int rounds = 0;
    int resolution = 0;           ///< QoS.resolution (level of last round)
    std::uint64_t wire_bytes = 0;
    /// FNV-1a over every round's raw (decompressed) payload bytes, in
    /// arrival order.  Identical across cached/uncached server paths and
    /// any client count — the byte-equality witness the tests compare.
    std::uint64_t payload_hash = 0;
    std::string final_config;     ///< config key active at completion
  };

  /// Fetch one complete image (through the progressive loop).
  sim::Task<ImageStats> fetch_image(std::uint32_t image_id);

  /// Fetch `count` images in sequence (the experiments' "downloading of
  /// ten images from the server").
  sim::Task<> fetch_images(std::uint32_t first_id, int count);

  /// Ask the server loop to exit.
  sim::Task<> shutdown_server();

  const std::vector<ImageStats>& history() const { return history_; }

  /// Aggregate QoS over the whole history: mean transmit_time, mean
  /// response_time, and the resolution of the last image.
  tunable::QosVector qos() const;

  /// Currently active configuration (steered or fixed).
  const tunable::ConfigPoint& config() const;

 private:
  sandbox::Sandbox& box_;
  sim::Endpoint& endpoint_;
  adapt::SteeringAgent* steering_;
  adapt::MonitoringAgent* monitor_;
  // Axis ids resolved once at construction; fetch_image observes per round
  // and must not pay the name lookup per sample.
  std::size_t net_axis_ = 0;
  std::size_t cpu_axis_ = 0;
  Options options_;
  tunable::ConfigPoint fixed_config_;
  std::vector<ImageStats> history_;
};

}  // namespace avf::viz
