// Admission control and reservation (paper §6.2): an application is admitted
// only if the aggregate of requested shares stays below a threshold; once
// admitted, the sandbox polices the granted amounts.  Reservations are RAII
// tickets so a departing application automatically frees its allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace avf::sandbox {

struct ResourceRequest {
  double cpu_share = 0.0;       // fraction of one host CPU
  double net_bps = 0.0;         // bytes/s
  std::uint64_t mem_bytes = 0;  // bytes
};

class AdmissionController;

/// RAII admission ticket; releases the reservation on destruction.
class Admission {
 public:
  Admission() = default;
  Admission(Admission&& other) noexcept;
  Admission& operator=(Admission&& other) noexcept;
  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;
  ~Admission();

  bool valid() const { return controller_ != nullptr; }
  const ResourceRequest& grant() const { return grant_; }
  void release();

 private:
  friend class AdmissionController;
  Admission(AdmissionController* controller, ResourceRequest grant)
      : controller_(controller), grant_(grant) {}

  AdmissionController* controller_ = nullptr;
  ResourceRequest grant_{};
};

class AdmissionController {
 public:
  /// `cpu_threshold` bounds the sum of admitted CPU shares (the paper
  /// admits "if the total request for CPU share across all applications is
  /// less than a certain threshold"); net/mem capacities bound their sums.
  AdmissionController(double cpu_threshold, double net_capacity_bps,
                      std::uint64_t mem_capacity_bytes)
      : cpu_threshold_(cpu_threshold),
        net_capacity_(net_capacity_bps),
        mem_capacity_(mem_capacity_bytes) {}

  /// Attempt to admit; returns an invalid Admission on rejection.
  [[nodiscard]] Admission try_admit(const ResourceRequest& request);

  bool would_admit(const ResourceRequest& request) const;

  double cpu_admitted() const { return cpu_admitted_; }
  double net_admitted() const { return net_admitted_; }
  std::uint64_t mem_admitted() const { return mem_admitted_; }

 private:
  friend class Admission;
  void release(const ResourceRequest& grant);

  double cpu_threshold_;
  double net_capacity_;
  std::uint64_t mem_capacity_;
  double cpu_admitted_ = 0.0;
  double net_admitted_ = 0.0;
  std::uint64_t mem_admitted_ = 0;
};

}  // namespace avf::sandbox
