#include "sandbox/usage_monitor.hpp"

#include <stdexcept>

namespace avf::sandbox {

UsageMonitor::UsageMonitor(sim::Simulator& sim, sim::FluidResource& resource,
                           sim::OwnerId owner, double interval)
    : sim_(sim), resource_(resource), owner_(owner), interval_(interval) {
  if (interval <= 0.0) {
    throw std::invalid_argument("monitor interval must be > 0");
  }
}

void UsageMonitor::start() {
  if (event_.pending()) return;
  last_served_ = resource_.served(owner_);
  event_ = sim_.schedule(interval_, [this] {
    tick();
  });
}

void UsageMonitor::tick() {
  double served = resource_.served(owner_);
  double rate = (served - last_served_) / interval_;
  last_served_ = served;
  samples_.push_back(Sample{sim_.now(), rate / resource_.capacity()});
  event_ = sim_.schedule(interval_, [this] { tick(); });
}

double UsageMonitor::mean_utilization(sim::SimTime from,
                                      sim::SimTime to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.time > from && s.time <= to) {
      sum += s.utilization;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace avf::sandbox
