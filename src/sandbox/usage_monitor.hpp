// System-wide usage monitor — the simulated analogue of the NT Performance
// Monitor the paper samples in Figure 3(a).  Periodically samples cumulative
// consumption attributed to an owner on one fluid resource and records the
// utilization (fraction of resource capacity) over each interval.
#pragma once

#include <vector>

#include "sim/fluid_resource.hpp"
#include "sim/simulator.hpp"

namespace avf::sandbox {

class UsageMonitor {
 public:
  struct Sample {
    sim::SimTime time;    // end of the sampling interval
    double utilization;   // consumed rate / capacity, in [0, 1]
  };

  UsageMonitor(sim::Simulator& sim, sim::FluidResource& resource,
               sim::OwnerId owner, double interval);
  ~UsageMonitor() { stop(); }

  UsageMonitor(const UsageMonitor&) = delete;
  UsageMonitor& operator=(const UsageMonitor&) = delete;

  void start();
  void stop() { event_.cancel(); }

  const std::vector<Sample>& samples() const { return samples_; }

  /// Mean utilization over samples with time in (from, to].
  double mean_utilization(sim::SimTime from, sim::SimTime to) const;

 private:
  void tick();

  sim::Simulator& sim_;
  sim::FluidResource& resource_;
  sim::OwnerId owner_;
  double interval_;
  double last_served_ = 0.0;
  std::vector<Sample> samples_;
  sim::EventHandle event_;
};

}  // namespace avf::sandbox
