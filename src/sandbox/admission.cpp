#include "sandbox/admission.hpp"

namespace avf::sandbox {

Admission::Admission(Admission&& other) noexcept
    : controller_(other.controller_), grant_(other.grant_) {
  other.controller_ = nullptr;
}

Admission& Admission::operator=(Admission&& other) noexcept {
  if (this != &other) {
    release();
    controller_ = other.controller_;
    grant_ = other.grant_;
    other.controller_ = nullptr;
  }
  return *this;
}

Admission::~Admission() { release(); }

void Admission::release() {
  if (controller_ != nullptr) {
    controller_->release(grant_);
    controller_ = nullptr;
  }
}

bool AdmissionController::would_admit(const ResourceRequest& request) const {
  return cpu_admitted_ + request.cpu_share <= cpu_threshold_ &&
         net_admitted_ + request.net_bps <= net_capacity_ &&
         mem_admitted_ + request.mem_bytes <= mem_capacity_;
}

Admission AdmissionController::try_admit(const ResourceRequest& request) {
  if (!would_admit(request)) return {};
  cpu_admitted_ += request.cpu_share;
  net_admitted_ += request.net_bps;
  mem_admitted_ += request.mem_bytes;
  return Admission(this, request);
}

void AdmissionController::release(const ResourceRequest& grant) {
  cpu_admitted_ -= grant.cpu_share;
  net_admitted_ -= grant.net_bps;
  mem_admitted_ -= grant.mem_bytes;
}

}  // namespace avf::sandbox
