// The virtual execution environment ("testbed") of the paper, §5.1.
//
// A Sandbox wraps one simulated process and constrains its average
// utilization of CPU, network, and memory to configured limits — the same
// contract the paper's Win32 API-interception sandbox provides.  Two CPU
// enforcement modes are supported:
//
//  * kFluid     — the cap is applied directly to the process's share slot on
//                 the host CPU; enforcement is exact at every instant.
//  * kQuantized — emulates the paper's mechanism ("dynamically manipulating
//                 application priority every few milliseconds"): a closed
//                 loop compares the process's cumulative service against the
//                 entitled amount each quantum and toggles the process
//                 between full-speed and stalled.  Average utilization
//                 converges to the cap, with the quantum-granularity jitter
//                 visible in the paper's Figure 3.
//
// Network limits are expressed in bytes/s and applied to every endpoint
// attached to the sandbox; memory limits cap the process's reservations on
// the host memory.  When the host is under-loaded the process receives
// exactly its configured resources (see FluidResource), which is what makes
// the sandbox usable as a *modeling testbed*: running under a cap of s on a
// fast host predicts execution on a machine of relative speed s.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace avf::sandbox {

enum class CpuEnforcement { kFluid, kQuantized };

/// How the network limit is enforced:
///  * kFluid   — the cap is applied to the endpoint's share of the link
///               (exact fluid throttling).
///  * kDelayed — emulates the paper's actual mechanism ("delaying sending
///               and receiving of messages"): sends are gated through a
///               token bucket replenished at the configured rate, so each
///               message waits until its wire size has been earned.  The
///               link itself is left uncapped; the *average* rate converges
///               to the limit while short bursts pass at link speed.
enum class NetEnforcement { kFluid, kDelayed };

class Sandbox {
 public:
  struct Options {
    double cpu_share = 1.0;                        // (0, 1]
    std::optional<double> net_bandwidth_bps;       // nullopt = unlimited
    std::optional<std::uint64_t> memory_bytes;     // nullopt = unlimited
    CpuEnforcement cpu_enforcement = CpuEnforcement::kFluid;
    NetEnforcement net_enforcement = NetEnforcement::kFluid;
    double quantum = 0.005;                        // s, kQuantized only
    double net_burst_window = 0.05;                // s, kDelayed bucket depth
  };

  Sandbox(sim::Host& host, std::string name, const Options& options);
  ~Sandbox();

  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  const std::string& name() const { return name_; }
  sim::Host& host() { return host_; }
  sim::OwnerId owner() const { return owner_; }

  // -- CPU --------------------------------------------------------------
  double cpu_share() const { return cpu_share_; }
  void set_cpu_share(double share);
  CpuEnforcement cpu_enforcement() const { return mode_; }

  /// Awaitable: execute `ops` operations on the host CPU under this
  /// sandbox's limits.  The workhorse call of every sandboxed process:
  ///   co_await box.compute(2.5e6);
  ///
  /// In quantized mode this (re)arms the enforcement loop, which runs only
  /// while the process actually has CPU work in flight — so an idle
  /// application costs no simulation events and the event queue can drain.
  sim::Task<> compute(double ops);

  /// Cumulative ops actually served to this sandbox's process.
  double cpu_served() const { return host_.cpu().served(owner_); }

  // -- Network ----------------------------------------------------------
  /// Bind an endpoint: its traffic is attributed to and throttled by this
  /// sandbox from now on.
  void attach_endpoint(sim::Endpoint& endpoint);
  void set_net_bandwidth(std::optional<double> bps);
  std::optional<double> net_bandwidth() const { return net_bps_; }
  NetEnforcement net_enforcement() const { return net_mode_; }

  /// Awaitable: send `msg` through `endpoint` under this sandbox's network
  /// limit.  In kFluid mode this simply forwards; in kDelayed mode the send
  /// is held until the token bucket has earned the message's wire size —
  /// the paper's "delaying sending of messages" enforcement.  Applications
  /// route their sends through the sandbox (the analog of the paper's API
  /// interception):
  ///   co_await box.send(endpoint, std::move(msg));
  sim::Task<> send(sim::Endpoint& endpoint, sim::Message msg);

  // -- Memory -----------------------------------------------------------
  void set_memory_limit(std::optional<std::uint64_t> bytes);
  /// Reserve under this sandbox's memory cap; invalid reservation on denial.
  [[nodiscard]] sim::MemoryReservation try_reserve_memory(
      std::uint64_t bytes) {
    return host_.memory().try_reserve(owner_, bytes);
  }

 private:
  void apply_cpu_cap();
  void apply_net_caps();
  void apply_net_cap(sim::Endpoint& endpoint);
  void ensure_quantum_running();
  void schedule_quantum();
  void quantum_tick();

  sim::Host& host_;
  std::string name_;
  sim::OwnerId owner_;
  CpuEnforcement mode_;
  double quantum_;
  double cpu_share_;
  std::optional<double> net_bps_;
  sim::ShareSlotPtr cpu_slot_;
  std::vector<sim::Endpoint*> endpoints_;
  NetEnforcement net_mode_;
  // Quantized-mode closed-loop state.
  double entitled_cum_ = 0.0;
  sim::EventHandle quantum_event_;
  // Delayed-mode token bucket.
  double net_burst_window_;
  double tokens_ = 0.0;
  sim::SimTime tokens_updated_ = 0.0;
};

}  // namespace avf::sandbox
