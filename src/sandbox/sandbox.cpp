#include "sandbox/sandbox.hpp"

#include <algorithm>
#include "util/fmt.hpp"
#include <stdexcept>

namespace avf::sandbox {

namespace {

void validate_share(double share) {
  if (share <= 0.0 || share > 1.0) {
    throw std::invalid_argument(
        avf::util::format("cpu share must be in (0, 1], got {}", share));
  }
}

}  // namespace

Sandbox::Sandbox(sim::Host& host, std::string name, const Options& options)
    : host_(host),
      name_(std::move(name)),
      owner_(host.simulator().new_owner_id()),
      mode_(options.cpu_enforcement),
      quantum_(options.quantum),
      cpu_share_(options.cpu_share),
      net_bps_(options.net_bandwidth_bps),
      cpu_slot_(sim::make_share_slot()),
      net_mode_(options.net_enforcement),
      net_burst_window_(options.net_burst_window) {
  validate_share(cpu_share_);
  if (quantum_ <= 0.0) {
    throw std::invalid_argument("quantum must be > 0");
  }
  if (net_burst_window_ <= 0.0) {
    throw std::invalid_argument("net burst window must be > 0");
  }
  tokens_updated_ = host_.simulator().now();
  if (options.memory_bytes) {
    host_.memory().set_cap(owner_, *options.memory_bytes);
  }
  apply_cpu_cap();
}

sim::Task<> Sandbox::compute(double ops) {
  if (mode_ == CpuEnforcement::kQuantized) ensure_quantum_running();
  co_await host_.cpu().consume(ops, cpu_slot_, owner_);
}

void Sandbox::ensure_quantum_running() {
  if (quantum_event_.pending()) return;
  // Fresh activation: start at full speed with zero banked credit.
  entitled_cum_ = cpu_served();
  cpu_slot_->cap = 1.0;
  host_.cpu().slot_changed(cpu_slot_);
  schedule_quantum();
}

Sandbox::~Sandbox() {
  quantum_event_.cancel();
  host_.memory().remove_cap(owner_);
}

void Sandbox::set_cpu_share(double share) {
  validate_share(share);
  cpu_share_ = share;
  if (mode_ == CpuEnforcement::kQuantized) {
    // Reset the entitlement baseline so the loop does not "pay back" or
    // "catch up" service accrued under the previous share.
    entitled_cum_ = cpu_served();
  }
  apply_cpu_cap();
}

void Sandbox::apply_cpu_cap() {
  if (mode_ == CpuEnforcement::kFluid) {
    cpu_slot_->cap = cpu_share_;
    cpu_slot_->weight = cpu_share_;
  } else {
    // Quantized mode: the tick decides on/off; keep weight proportional so
    // competition among quantized sandboxes still splits by share.
    cpu_slot_->weight = cpu_share_;
  }
  host_.cpu().slot_changed(cpu_slot_);
}

void Sandbox::schedule_quantum() {
  quantum_event_ =
      host_.simulator().schedule(quantum_, [this] { quantum_tick(); });
}

void Sandbox::quantum_tick() {
  // The enforcement loop only runs while the process has CPU work in
  // flight; once it goes idle the loop stops and the event queue can drain
  // (compute() re-arms it).  Idleness also must not bank credit, which the
  // restart handles by resetting the entitlement baseline.
  if (!host_.cpu().has_request(owner_)) {
    return;  // go idle: no reschedule, queue can drain
  }
  entitled_cum_ += cpu_share_ * host_.cpu_speed() * quantum_;
  double served = cpu_served();
  // Ahead of entitlement -> stall for the next quantum; behind -> full speed.
  double new_cap = served >= entitled_cum_ ? 0.0 : 1.0;
  if (new_cap != cpu_slot_->cap) {
    cpu_slot_->cap = new_cap;
    host_.cpu().slot_changed(cpu_slot_);
  }
  // Bound banked credit to a few quanta so a brief dip cannot be repaid
  // with a long full-speed burst (the paper's sandbox bounds *average*
  // usage over a short window, not over all history).
  double max_credit = cpu_share_ * host_.cpu_speed() * 4.0 * quantum_;
  entitled_cum_ = std::min(entitled_cum_, served + max_credit);
  schedule_quantum();
}

void Sandbox::attach_endpoint(sim::Endpoint& endpoint) {
  endpoint.set_owner(owner_);
  endpoints_.push_back(&endpoint);
  // Only the new endpoint's cap can have changed; re-deriving the cap of
  // every already-attached endpoint (the previous behavior) made attaching
  // N endpoints O(N^2) water-filling passes at world setup.
  apply_net_cap(endpoint);
}

void Sandbox::set_net_bandwidth(std::optional<double> bps) {
  if (bps && *bps <= 0.0) {
    throw std::invalid_argument(
        avf::util::format("net bandwidth must be > 0, got {}", *bps));
  }
  net_bps_ = bps;
  apply_net_caps();
}

void Sandbox::apply_net_caps() {
  for (sim::Endpoint* ep : endpoints_) apply_net_cap(*ep);
}

void Sandbox::apply_net_cap(sim::Endpoint& endpoint) {
  auto slot = endpoint.share_slot();
  double cap = 1.0;
  // In delayed mode the pacing happens in send(); the link stays open.
  if (net_bps_ && net_mode_ == NetEnforcement::kFluid) {
    cap = std::min(1.0, *net_bps_ / endpoint.out().capacity());
  }
  if (slot->cap == cap) return;  // unchanged cap cannot move any allocation
  slot->cap = cap;
  // Narrow notification: an O(1) no-op unless the slot has flows in flight.
  endpoint.out().slot_changed(slot);
}

sim::Task<> Sandbox::send(sim::Endpoint& endpoint, sim::Message msg) {
  if (net_mode_ == NetEnforcement::kDelayed && net_bps_) {
    sim::Simulator& sim = host_.simulator();
    // Replenish, capped at one burst window's worth.
    double rate = *net_bps_;
    double burst = rate * net_burst_window_;
    tokens_ = std::min(burst,
                       tokens_ + rate * (sim.now() - tokens_updated_));
    tokens_updated_ = sim.now();
    double needed = static_cast<double>(msg.wire_size());
    if (tokens_ < needed) {
      double wait = (needed - tokens_) / rate;
      co_await sim.delay(wait);
      // The wait earned exactly the shortfall; the burst clamp applies
      // only to idle accumulation, never to tokens a sender waited for.
      tokens_ = needed;
      tokens_updated_ = sim.now();
    }
    tokens_ -= needed;
  }
  co_await endpoint.send(std::move(msg));
}

void Sandbox::set_memory_limit(std::optional<std::uint64_t> bytes) {
  if (bytes) {
    host_.memory().set_cap(owner_, *bytes);
  } else {
    host_.memory().remove_cap(owner_);
  }
}

}  // namespace avf::sandbox
