#include "sandbox/schedule.hpp"

namespace avf::sandbox {

namespace {

void apply_change(Sandbox& box, const CapChange& change) {
  if (change.cpu_share) box.set_cpu_share(*change.cpu_share);
  if (change.net_bps) box.set_net_bandwidth(*change.net_bps);
  if (change.mem_bytes) box.set_memory_limit(*change.mem_bytes);
}

}  // namespace

std::vector<sim::EventHandle> apply_schedule(
    sim::Simulator& sim, Sandbox& box,
    const std::vector<CapChange>& changes) {
  std::vector<sim::EventHandle> handles;
  handles.reserve(changes.size());
  for (const CapChange& change : changes) {
    if (change.at <= sim.now()) {
      apply_change(box, change);
    } else {
      handles.push_back(sim.schedule_at(
          change.at, [&box, change] { apply_change(box, change); }));
    }
  }
  return handles;
}

}  // namespace avf::sandbox
