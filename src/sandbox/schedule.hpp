// Scripted resource-availability schedules, used by the experiments to
// impose the paper's step changes (e.g. "bandwidth 500 KBps, dropping to
// 50 KBps at t = 25 s" in §7.2).  Each change is applied to a Sandbox at an
// absolute simulated time.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sandbox/sandbox.hpp"
#include "sim/simulator.hpp"

namespace avf::sandbox {

struct CapChange {
  sim::SimTime at = 0.0;
  std::optional<double> cpu_share;
  std::optional<double> net_bps;
  std::optional<std::uint64_t> mem_bytes;
};

/// Schedule all changes against `box`.  Changes with `at` <= now apply
/// immediately.  Returns handles so a caller can cancel the remainder.
std::vector<sim::EventHandle> apply_schedule(
    sim::Simulator& sim, Sandbox& box, const std::vector<CapChange>& changes);

}  // namespace avf::sandbox
