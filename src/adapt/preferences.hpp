// Compatibility re-exports: user preferences moved into the tunable layer
// (they are part of the declared specification and are statically checked
// by src/lint).  Existing adapt-facing code keeps using avf::adapt names.
#pragma once

#include "tunable/preferences.hpp"

namespace avf::adapt {

using tunable::MetricRange;
using tunable::PreferenceList;
using tunable::UserPreference;

using tunable::maximize_metric;
using tunable::minimize;

}  // namespace avf::adapt
