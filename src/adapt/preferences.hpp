// User preference constraints (paper §6): "each user preference constraint
// is expressed as value ranges on a subset of output quality metrics and is
// accompanied with an objective function to be optimized. ... Multiple user
// preference constraints can be specified. The system examines them in
// decreasing order of preference."
//
// Following the paper's simplification, the objective is maximizing or
// minimizing a single quality metric.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "tunable/qos.hpp"

namespace avf::adapt {

struct MetricRange {
  std::string metric;
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();

  bool contains(double value) const { return value >= min && value <= max; }
};

struct UserPreference {
  std::string name;
  std::vector<MetricRange> constraints;
  std::string objective_metric;
  bool maximize = false;

  /// All constraints satisfied by `quality`.
  bool satisfied_by(const tunable::QosVector& quality) const;

  /// True when `a` is a better objective value than `b`.
  bool better(double a, double b) const { return maximize ? a > b : a < b; }
};

/// Ordered by decreasing preference: the scheduler tries [0] first and
/// falls through when no configuration can satisfy it.
using PreferenceList = std::vector<UserPreference>;

// Convenience builders used by examples and benchmarks.
UserPreference minimize(const std::string& metric, std::string name = {});
UserPreference maximize_metric(const std::string& metric,
                               std::string name = {});

}  // namespace avf::adapt
