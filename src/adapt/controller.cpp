#include "adapt/controller.hpp"

#include <stdexcept>

#include "lint/lint.hpp"
#include "util/logging.hpp"

namespace avf::adapt {

AdaptationController::AdaptationController(sim::Simulator& sim,
                                           const ResourceScheduler& scheduler,
                                           MonitoringAgent& monitor,
                                           SteeringAgent& steering)
    : AdaptationController(sim, scheduler, monitor, steering, Options{}) {}

AdaptationController::AdaptationController(sim::Simulator& sim,
                                           const ResourceScheduler& scheduler,
                                           MonitoringAgent& monitor,
                                           SteeringAgent& steering,
                                           Options options)
    : sim_(sim),
      scheduler_(scheduler),
      monitor_(monitor),
      steering_(steering),
      options_(options) {
  if (options_.check_interval <= 0.0) {
    throw std::invalid_argument("check interval must be > 0");
  }
  if (options_.validate_spec) {
    // Catch spec-level defects before anything runs (paper: the
    // preprocessor is the last line of defense for the annotations).
    const tunable::AppSpec& spec = steering_.spec();
    lint::Report report = spec.validate();
    report.merge(lint::lint_preferences(spec, scheduler_.preferences()));
    report.merge(lint::lint_database(spec, scheduler_.database()));
    for (const lint::Diagnostic& d : report.diagnostics()) {
      if (d.severity == lint::Severity::kError) continue;  // thrown below
      util::log_warn("controller", sim_.now(), "spec lint: {}", d.render());
    }
    if (report.has_errors()) {
      throw std::invalid_argument(
          "tunability spec failed validation:\n" + report.str());
    }
  }
}

tunable::ConfigPoint AdaptationController::configure(
    const std::vector<double>& initial_resources) {
  auto decision = scheduler_.select(initial_resources);
  if (!decision) {
    throw std::runtime_error(
        "cannot configure: performance database has no usable records");
  }
  monitor_.set_baseline(initial_resources);
  steering_.request(decision->config);
  steering_.apply_pending();
  util::log_info("controller", sim_.now(), "initial configuration: {}",
                 decision->config.key());
  return decision->config;
}

void AdaptationController::start() {
  if (check_event_.pending()) return;
  check_event_ = sim_.schedule(options_.check_interval, [this] { tick(); });
}

void AdaptationController::tick() {
  ++checks_;
  if (options_.change_driven_ticks && monitor_.check_would_noop()) {
    // Provably identical to running the full check (see check_would_noop):
    // the monitor saw nothing new and the re-check would find every axis in
    // range again without touching any state.
    ++ticks_skipped_;
    check_event_ = sim_.schedule(options_.check_interval, [this] { tick(); });
    return;
  }
  if (monitor_.check_triggered()) {
    // Reuse the estimate buffer across checks; the monitoring trigger fires
    // on the hot periodic path and should not allocate.
    monitor_.estimates_into(estimates_scratch_);
    auto decision =
        scheduler_.select_with_incumbent(estimates_scratch_, steering_.active());
    if (decision && decision->config != steering_.active()) {
      util::log_info("controller", sim_.now(),
                     "adapting {} -> {} (preference #{})",
                     steering_.active().key(), decision->config.key(),
                     decision->preference_index);
      adaptations_.push_back(AdaptationEvent{sim_.now(), steering_.active(),
                                             decision->config,
                                             estimates_scratch_,
                                             decision->preference_index});
    }
    // Forward the decision even when it matches the active configuration:
    // the steering agent withdraws any staged change that a fresh decision
    // no longer calls for, so a request decided under estimates that have
    // since recovered cannot be applied at a later task boundary.
    if (decision) steering_.request(decision->config);
    // Either way, re-anchor the baseline so the monitor looks for the
    // *next* change rather than re-firing on the same one.
    monitor_.set_baseline(estimates_scratch_);
  }
  check_event_ = sim_.schedule(options_.check_interval, [this] { tick(); });
}

}  // namespace avf::adapt
