#include "adapt/steering.hpp"

#include <stdexcept>

namespace avf::adapt {

using tunable::ConfigPoint;

SteeringAgent::SteeringAgent(const tunable::AppSpec& spec,
                             ConfigPoint initial)
    : spec_(spec), active_(std::move(initial)) {
  if (!spec_.space().valid(active_)) {
    throw std::invalid_argument("initial configuration is invalid: " +
                                active_.key());
  }
}

bool SteeringAgent::request(const ConfigPoint& next) {
  if (!spec_.space().valid(next)) return false;
  if (next == active_ && !pending_) return false;
  if (pending_ && *pending_ == next) return false;
  if (next == active_) {
    pending_.reset();  // staged change superseded by "stay put"
    return false;
  }
  pending_ = next;
  return true;
}

bool SteeringAgent::apply_pending() {
  if (!pending_) return false;
  ConfigPoint next = *pending_;
  pending_.reset();

  for (const tunable::TransitionSpec& t : spec_.transitions()) {
    if (t.guard && !t.guard(active_, next)) {
      ++vetoed_;
      if (on_vetoed_) on_vetoed_(active_, next, t.name);
      return false;
    }
  }
  ConfigPoint from = active_;
  active_ = next;
  for (const tunable::TransitionSpec& t : spec_.transitions()) {
    if (t.handler) t.handler(from, active_);
  }
  ++applied_;
  if (on_applied_) on_applied_(from, active_);
  return true;
}

}  // namespace avf::adapt
