#include "adapt/preferences.hpp"

namespace avf::adapt {

bool UserPreference::satisfied_by(const tunable::QosVector& quality) const {
  for (const MetricRange& range : constraints) {
    auto value = quality.try_get(range.metric);
    if (!value || !range.contains(*value)) return false;
  }
  return true;
}

UserPreference minimize(const std::string& metric, std::string name) {
  UserPreference p;
  p.name = name.empty() ? "minimize " + metric : std::move(name);
  p.objective_metric = metric;
  p.maximize = false;
  return p;
}

UserPreference maximize_metric(const std::string& metric, std::string name) {
  UserPreference p;
  p.name = name.empty() ? "maximize " + metric : std::move(name);
  p.objective_metric = metric;
  p.maximize = true;
  return p;
}

}  // namespace avf::adapt
