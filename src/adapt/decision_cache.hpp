// Process-shareable memo for scheduler decisions (the fleet hot path).
//
// At fleet scale most sessions share one application spec, preference list,
// and performance database; under a common fault schedule their monitors
// report (near-)identical resource estimates, so their AdaptationControllers
// recompute byte-identical decisions.  The DecisionCache memoizes
// ResourceScheduler::select / select_with_incumbent results across all
// schedulers attached to it: the first session with a given input evaluates
// the candidate set, every other session reuses the Decision.
//
// Correctness model — a hit is *exact*, never approximate:
//   - Entries are bucketed by the quantized resource point (the same
//     ~2^-20-relative quantization the PredictionCache uses) purely as a
//     hash key; on hit the entry verifies the raw IEEE-754 bit patterns of
//     the query point, so a decision computed at a different raw point in
//     the same bucket is a miss, not a stale answer.
//   - The key includes the database's process-unique uid and the attached
//     scheduler's selector fingerprint (preferences + options), so
//     schedulers with different specs or hysteresis never share entries.
//   - Entries record the database mutation epoch at store time; a lookup
//     under a newer epoch counts as an invalidation and misses.
//   - Schedulers with a cache attached force exact (uncached) predictions,
//     making the memoized function pure in (db contents, selector, inputs).
//
// The table is bounded; when full it is wiped (the PredictionCache's cheap,
// rare, self-correcting eviction policy).  All state is guarded by a
// util::Mutex so controller fleets on worker threads can share one cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "perfdb/grid_index.hpp"
#include "tunable/config.hpp"
#include "tunable/qos.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace avf::adapt {

/// One scheduler decision (paper §6.2): the chosen configuration, which
/// preference it satisfied, and the predicted quality that justified it.
/// Lives at namespace scope so the DecisionCache can store it; the
/// historical spelling `ResourceScheduler::Decision` aliases this type.
struct Decision {
  tunable::ConfigPoint config;
  std::size_t preference_index = 0;  // which preference was satisfiable
  tunable::QosVector predicted;
  bool fell_through = false;  // true if preference 0 unsatisfiable

  bool operator==(const Decision&) const = default;
};

class DecisionCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 8192;

  explicit DecisionCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  // Shared by reference (shared_ptr in scheduler options); never copied.
  DecisionCache(const DecisionCache&) = delete;
  DecisionCache& operator=(const DecisionCache&) = delete;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;      ///< bounded-size cache wipes
    std::size_t invalidations = 0;  ///< stale-database-epoch rejections
  };

  /// Everything that determines a decision, as the scheduler sees it.
  struct Query {
    std::uint64_t db_uid = 0;
    std::uint64_t db_epoch = 0;
    /// Fingerprint of the scheduler's preference list and options.
    std::uint64_t selector_fingerprint = 0;
    bool has_incumbent = false;
    std::string incumbent_key;  ///< empty when !has_incumbent
    const perfdb::ResourcePoint* resources = nullptr;
  };

  /// Memoized decision for `q`; nullptr on miss.  A non-null result may
  /// hold nullopt — "no usable records" is memoized too.  The pointee is
  /// owned by the cache and valid until the next store/clear; callers copy
  /// it out before any further cache call.
  const std::optional<Decision>* lookup(const Query& q) const
      AVF_EXCLUDES(mutex_);

  void store(const Query& q, const std::optional<Decision>& decision)
      AVF_EXCLUDES(mutex_);

  void clear() AVF_EXCLUDES(mutex_);

  std::size_t size() const AVF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return entries_.size();
  }
  std::size_t max_entries() const { return max_entries_; }
  /// Counter snapshot (by value: the live counters are lock-guarded).
  Stats stats() const AVF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return stats_;
  }
  void reset_stats() AVF_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    stats_ = Stats{};
  }

 private:
  struct Entry {
    std::uint64_t db_uid = 0;
    std::uint64_t db_epoch = 0;
    std::uint64_t selector_fingerprint = 0;
    bool has_incumbent = false;
    std::string incumbent_key;
    /// Raw IEEE-754 bits of the resource point the decision was computed
    /// at — verified on hit so bucket aliasing can never serve a decision
    /// for a different raw point.
    std::vector<std::uint64_t> raw_bits;
    std::optional<Decision> decision;
  };

  static std::uint64_t hash_query(const Query& q);
  static bool keys_match(const Entry& e, const Query& q);

  std::size_t max_entries_;
  mutable util::Mutex mutex_;
  // Keyed by the mixed 64-bit hash; entries verify the full key (including
  // raw resource bits) on hit, so a collision behaves as a miss and is
  // overwritten on store.
  std::unordered_map<std::uint64_t, Entry> entries_ AVF_GUARDED_BY(mutex_);
  mutable Stats stats_ AVF_GUARDED_BY(mutex_);
};

}  // namespace avf::adapt
