#include "adapt/monitor.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::adapt {

MonitoringAgent::MonitoringAgent(sim::Simulator& sim,
                                 std::vector<std::string> axes)
    : MonitoringAgent(sim, std::move(axes), Options{}) {}

MonitoringAgent::MonitoringAgent(sim::Simulator& sim,
                                 std::vector<std::string> axes,
                                 Options options)
    : sim_(sim), axes_(std::move(axes)), options_(options) {
  if (axes_.empty()) {
    throw std::invalid_argument("monitoring agent needs at least one axis");
  }
  windows_.assign(axes_.size(), util::TimeWindow(options_.window));
  baseline_.assign(axes_.size(), 0.0);
}

std::size_t MonitoringAgent::axis_index(const std::string& axis) const {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i] == axis) return i;
  }
  throw std::out_of_range(util::format("no such monitored axis: {}", axis));
}

void MonitoringAgent::observe(const std::string& axis, double value) {
  windows_[axis_index(axis)].add(sim_.now(), value);
  ++samples_total_;
}

std::optional<double> MonitoringAgent::estimate(const std::string& axis) const {
  const util::TimeWindow& w = windows_[axis_index(axis)];
  // Average only the samples inside [now - window, now].  The window deque
  // evicts relative to its newest *sample*, so after a reporting gap it can
  // still hold a burst of stale samples behind one fresh observation; those
  // must not skew the estimate.
  return w.mean_since(sim_.now() - options_.window);
}

std::vector<double> MonitoringAgent::estimates() const {
  std::vector<double> out;
  estimates_into(out);
  return out;
}

void MonitoringAgent::estimates_into(std::vector<double>& out) const {
  out.resize(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    auto e = estimate(axes_[i]);
    out[i] = e.value_or(baseline_[i]);
  }
}

void MonitoringAgent::set_baseline(std::vector<double> baseline) {
  if (baseline.size() != axes_.size()) {
    throw std::invalid_argument("baseline dimension mismatch");
  }
  baseline_ = std::move(baseline);
  consecutive_out_ = 0;
}

bool MonitoringAgent::check_triggered() {
  bool out_of_range = false;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    auto e = estimate(axes_[i]);
    if (!e) continue;
    double scale = std::max(std::abs(baseline_[i]), 1e-12);
    if (std::abs(*e - baseline_[i]) / scale > options_.trigger_threshold) {
      out_of_range = true;
      break;
    }
  }
  if (!out_of_range) {
    consecutive_out_ = 0;
    return false;
  }
  if (++consecutive_out_ >= options_.consecutive_required) {
    consecutive_out_ = 0;
    ++triggers_;
    return true;
  }
  return false;
}

}  // namespace avf::adapt
