#include "adapt/monitor.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fmt.hpp"

namespace avf::adapt {

MonitoringAgent::MonitoringAgent(sim::Simulator& sim,
                                 std::vector<std::string> axes)
    : MonitoringAgent(sim, std::move(axes), Options{}) {}

MonitoringAgent::MonitoringAgent(sim::Simulator& sim,
                                 std::vector<std::string> axes,
                                 Options options)
    : sim_(sim), axes_(std::move(axes)), options_(options) {
  if (axes_.empty()) {
    throw std::invalid_argument("monitoring agent needs at least one axis");
  }
  axis_ids_.reserve(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) axis_ids_.emplace(axes_[i], i);
  windows_.assign(axes_.size(), util::TimeWindow(options_.window));
  baseline_.assign(axes_.size(), 0.0);
  check_state_.assign(axes_.size(), AxisCheckState{});
}

std::size_t MonitoringAgent::axis_index(const std::string& axis) const {
  auto it = axis_ids_.find(axis);
  if (it == axis_ids_.end()) {
    throw std::out_of_range(util::format("no such monitored axis: {}", axis));
  }
  return it->second;
}

void MonitoringAgent::observe(const std::string& axis, double value) {
  observe(axis_index(axis), value);
}

void MonitoringAgent::observe(std::size_t axis_id, double value) {
  windows_[axis_id].add(sim_.now(), value);
  ++samples_total_;
  ++revision_;
}

std::optional<double> MonitoringAgent::estimate(const std::string& axis) const {
  return estimate(axis_index(axis));
}

std::optional<double> MonitoringAgent::estimate(std::size_t axis_id) const {
  const util::TimeWindow& w = windows_[axis_id];
  // Average only the samples inside [now - window, now].  The window deque
  // evicts relative to its newest *sample*, so after a reporting gap it can
  // still hold a burst of stale samples behind one fresh observation; those
  // must not skew the estimate.
  return w.mean_since(sim_.now() - options_.window);
}

std::vector<double> MonitoringAgent::estimates() const {
  std::vector<double> out;
  estimates_into(out);
  return out;
}

void MonitoringAgent::estimates_into(std::vector<double>& out) const {
  out.resize(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    auto e = estimate(i);
    out[i] = e.value_or(baseline_[i]);
  }
}

void MonitoringAgent::set_baseline(std::vector<double> baseline) {
  if (baseline.size() != axes_.size()) {
    throw std::invalid_argument("baseline dimension mismatch");
  }
  baseline_ = std::move(baseline);
  consecutive_out_ = 0;
  ++revision_;
}

bool MonitoringAgent::check_triggered() {
  bool out_of_range = false;
  const double cutoff = sim_.now() - options_.window;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    auto s = windows_[i].stats_since(cutoff);
    check_state_[i].had_estimate = s.has_value();
    check_state_[i].first_time = s ? s->first_time : 0.0;
    if (!s) continue;
    double scale = std::max(std::abs(baseline_[i]), 1e-12);
    if (std::abs(s->mean - baseline_[i]) / scale > options_.trigger_threshold) {
      out_of_range = true;
      break;
    }
  }
  last_check_valid_ = true;
  last_check_out_of_range_ = out_of_range;
  last_check_revision_ = revision_;
  if (!out_of_range) {
    consecutive_out_ = 0;
    return false;
  }
  if (++consecutive_out_ >= options_.consecutive_required) {
    consecutive_out_ = 0;
    ++triggers_;
    return true;
  }
  return false;
}

bool MonitoringAgent::check_would_noop() const {
  // An in-range check is idempotent (it only re-zeroes an already-zero
  // consecutive counter), so it may be skipped when its inputs are provably
  // unchanged: no observation or baseline landed since (revision), and no
  // axis's qualifying suffix lost samples to the advancing window cutoff.
  // An axis with no in-window estimate then cannot have gained one (only
  // observe() adds samples), and an axis whose oldest qualifying sample is
  // still in-window averages the identical suffix — bit-identical mean,
  // identical verdict.
  if (!last_check_valid_ || last_check_out_of_range_) return false;
  if (revision_ != last_check_revision_) return false;
  const double cutoff = sim_.now() - options_.window;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (check_state_[i].had_estimate && check_state_[i].first_time < cutoff) {
      return false;
    }
  }
  return true;
}

}  // namespace avf::adapt
