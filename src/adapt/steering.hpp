// The steering agent (paper §6.3): receives control messages carrying new
// control-parameter settings, and installs them at the next task boundary /
// transition point, running the application's transition handlers (subject
// to their guards) and acknowledging the change.
//
// The application reads `active()` for its control parameters and calls
// `apply_pending()` exactly at the points the tunability annotations marked
// as safe reconfiguration points.
#pragma once

#include <functional>
#include <optional>

#include "tunable/app_spec.hpp"
#include "tunable/config.hpp"

namespace avf::adapt {

class SteeringAgent {
 public:
  SteeringAgent(const tunable::AppSpec& spec, tunable::ConfigPoint initial);

  /// The specification this agent steers (used by the controller to
  /// validate the whole spec/preference/database triple at startup).
  const tunable::AppSpec& spec() const { return spec_; }

  /// The configuration the application is currently running.
  const tunable::ConfigPoint& active() const { return active_; }

  /// Stage a configuration change (scheduler-side).  Returns false when
  /// `next` is already active or already staged, or is invalid for the
  /// application's configuration space.
  bool request(const tunable::ConfigPoint& next);

  bool has_pending() const { return pending_.has_value(); }
  const std::optional<tunable::ConfigPoint>& pending() const {
    return pending_;
  }

  /// Application-side: install the staged configuration, if any.  Runs all
  /// transition guards first; a vetoing guard cancels the change (counted
  /// in vetoed()).  On success runs every transition handler, fires the
  /// on_applied acknowledgment, and returns true.
  bool apply_pending();

  /// Acknowledgment hook (from, to) — the "ack to the resource scheduler"
  /// and any remote notifications.
  void set_on_applied(
      std::function<void(const tunable::ConfigPoint&,
                         const tunable::ConfigPoint&)> callback) {
    on_applied_ = std::move(callback);
  }

  /// Failure acknowledgment (from, vetoed target, vetoing transition name):
  /// fired when a transition guard cancels a staged change, so the
  /// scheduler side learns the request did not install.  The pending
  /// request is already cleared when this fires.
  void set_on_vetoed(
      std::function<void(const tunable::ConfigPoint&,
                         const tunable::ConfigPoint&, const std::string&)>
          callback) {
    on_vetoed_ = std::move(callback);
  }

  std::size_t applied() const { return applied_; }
  std::size_t vetoed() const { return vetoed_; }

 private:
  const tunable::AppSpec& spec_;
  tunable::ConfigPoint active_;
  std::optional<tunable::ConfigPoint> pending_;
  std::function<void(const tunable::ConfigPoint&, const tunable::ConfigPoint&)>
      on_applied_;
  std::function<void(const tunable::ConfigPoint&, const tunable::ConfigPoint&,
                     const std::string&)>
      on_vetoed_;
  std::size_t applied_ = 0;
  std::size_t vetoed_ = 0;
};

}  // namespace avf::adapt
