// The resource scheduler (paper §6.2): given measured resource
// characteristics and the user preference list, prune candidate
// configurations against the constraints using the performance database
// (with interpolation), then pick the one that best satisfies the objective
// of the most preferred satisfiable constraint.
//
// Predictions go through PerfDatabase::predict, which memoizes per
// (config, quantized resource point) — so repeated decisions under stable
// resources are served from the prediction cache.  The candidate vector is
// reused across calls (capacity kept), and select_with_incumbent evaluates
// the candidate set once, sharing it between the fresh selection and the
// hysteresis check instead of re-querying the database for the incumbent.
//
// At fleet scale whole *decisions* repeat across sessions sharing one
// spec/prefs/database: attach a shared adapt::DecisionCache through
// Options::decision_cache and select/select_with_incumbent are memoized
// across every scheduler on the cache.  Attaching a cache forces
// exact (uncached) predictions so the memoized decision is a pure function
// of (database contents, selector fingerprint, inputs) — hits are
// byte-identical to what an uncached evaluation would return.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adapt/decision_cache.hpp"
#include "adapt/preferences.hpp"
#include "perfdb/database.hpp"
#include "tunable/config.hpp"

namespace avf::adapt {

class ResourceScheduler {
 public:
  struct Options {
    perfdb::Lookup lookup = perfdb::Lookup::kInterpolate;
    /// Relative advantage a challenger must show over the incumbent before
    /// the scheduler recommends switching (paper §7.5: small resource
    /// variations should not cause performance-degrading re-adaptations).
    double switch_hysteresis = 0.0;
    /// Evaluate candidates through PerfDatabase::predict_uncached: bit-exact
    /// for every query point (no prediction-cache bucket sharing).  Forced
    /// on when `decision_cache` is set.
    bool exact_predictions = false;
    /// Shared decision memo (see adapt/decision_cache.hpp); null = off.
    std::shared_ptr<DecisionCache> decision_cache;
  };

  ResourceScheduler(const perfdb::PerfDatabase& db,
                    PreferenceList preferences);
  ResourceScheduler(const perfdb::PerfDatabase& db, PreferenceList preferences,
                    Options options);

  /// Historical spelling: the Decision type now lives at namespace scope
  /// (adapt/decision_cache.hpp) so the cache can store it.
  using Decision = adapt::Decision;

  /// Select the best configuration for the measured `resources`.  Returns
  /// nullopt when the database is empty or no configuration has data.
  /// When no preference's constraints are satisfiable, the last preference's
  /// objective is optimized over all configurations (best effort).
  std::optional<Decision> select(const perfdb::ResourcePoint& resources) const;

  /// Like select(), but biased toward `incumbent`: a different config is
  /// returned only if its predicted objective beats the incumbent's by the
  /// hysteresis margin (or the incumbent violates the active constraints).
  std::optional<Decision> select_with_incumbent(
      const perfdb::ResourcePoint& resources,
      const tunable::ConfigPoint& incumbent) const;

  const PreferenceList& preferences() const { return preferences_; }
  const perfdb::PerfDatabase& database() const { return db_; }
  const Options& options() const { return options_; }
  /// Fingerprint of (preference list, options) — the part of the decision
  /// function that is not the database or the query point.  Schedulers with
  /// equal fingerprints compute identical decisions from identical inputs;
  /// the DecisionCache keys on it.
  std::uint64_t selector_fingerprint() const { return selector_fingerprint_; }

 private:
  struct Candidate {
    const tunable::ConfigPoint* config;  // owned by the database
    tunable::QosVector predicted;
  };

  /// Predict every stored configuration at `resources` into the reusable
  /// scratch vector and return it.
  const std::vector<Candidate>& evaluate(
      const perfdb::ResourcePoint& resources) const;
  std::optional<Decision> decide(const std::vector<Candidate>& all) const;
  std::optional<Decision> select_uncached(
      const perfdb::ResourcePoint& resources,
      const tunable::ConfigPoint* incumbent) const;
  std::optional<Decision> select_cached(
      const perfdb::ResourcePoint& resources,
      const tunable::ConfigPoint* incumbent) const;
  const Candidate* find_incumbent(const tunable::ConfigPoint& incumbent,
                                  const std::vector<Candidate>& all) const;

  const perfdb::PerfDatabase& db_;
  PreferenceList preferences_;
  Options options_;
  std::uint64_t selector_fingerprint_ = 0;
  // Reused across decisions so the hot adaptation loop does not reallocate
  // (single-threaded, like the rest of the simulation).
  mutable std::vector<Candidate> scratch_;
  // Candidate slot by config key, so select_with_incumbent finds the
  // incumbent's prediction O(1) instead of rescanning the candidate vector.
  // Valid while the database's mutation epoch and the candidate count are
  // unchanged (the candidate set is the stored config set, in iteration
  // order, independent of the query point).
  mutable std::unordered_map<std::string, std::size_t> slot_of_;
  mutable std::uint64_t slots_epoch_ = 0;
  mutable bool slots_valid_ = false;
};

}  // namespace avf::adapt
