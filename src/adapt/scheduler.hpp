// The resource scheduler (paper §6.2): given measured resource
// characteristics and the user preference list, prune candidate
// configurations against the constraints using the performance database
// (with interpolation), then pick the one that best satisfies the objective
// of the most preferred satisfiable constraint.
//
// Predictions go through PerfDatabase::predict, which memoizes per
// (config, quantized resource point) — so repeated decisions under stable
// resources are served from the prediction cache.  The candidate vector is
// reused across calls (capacity kept), and select_with_incumbent evaluates
// the candidate set once, sharing it between the fresh selection and the
// hysteresis check instead of re-querying the database for the incumbent.
#pragma once

#include <optional>
#include <vector>

#include "adapt/preferences.hpp"
#include "perfdb/database.hpp"
#include "tunable/config.hpp"

namespace avf::adapt {

class ResourceScheduler {
 public:
  struct Options {
    perfdb::Lookup lookup = perfdb::Lookup::kInterpolate;
    /// Relative advantage a challenger must show over the incumbent before
    /// the scheduler recommends switching (paper §7.5: small resource
    /// variations should not cause performance-degrading re-adaptations).
    double switch_hysteresis = 0.0;
  };

  ResourceScheduler(const perfdb::PerfDatabase& db,
                    PreferenceList preferences);
  ResourceScheduler(const perfdb::PerfDatabase& db, PreferenceList preferences,
                    Options options);

  struct Decision {
    tunable::ConfigPoint config;
    std::size_t preference_index = 0;     // which preference was satisfiable
    tunable::QosVector predicted;
    bool fell_through = false;            // true if preference 0 unsatisfiable
  };

  /// Select the best configuration for the measured `resources`.  Returns
  /// nullopt when the database is empty or no configuration has data.
  /// When no preference's constraints are satisfiable, the last preference's
  /// objective is optimized over all configurations (best effort).
  std::optional<Decision> select(const perfdb::ResourcePoint& resources) const;

  /// Like select(), but biased toward `incumbent`: a different config is
  /// returned only if its predicted objective beats the incumbent's by the
  /// hysteresis margin (or the incumbent violates the active constraints).
  std::optional<Decision> select_with_incumbent(
      const perfdb::ResourcePoint& resources,
      const tunable::ConfigPoint& incumbent) const;

  const PreferenceList& preferences() const { return preferences_; }
  const perfdb::PerfDatabase& database() const { return db_; }

 private:
  struct Candidate {
    const tunable::ConfigPoint* config;  // owned by the database
    tunable::QosVector predicted;
  };

  /// Predict every stored configuration at `resources` into the reusable
  /// scratch vector and return it.
  const std::vector<Candidate>& evaluate(
      const perfdb::ResourcePoint& resources) const;
  std::optional<Decision> decide(const std::vector<Candidate>& all) const;

  const perfdb::PerfDatabase& db_;
  PreferenceList preferences_;
  Options options_;
  // Reused across decisions so the hot adaptation loop does not reallocate
  // (single-threaded, like the rest of the simulation).
  mutable std::vector<Candidate> scratch_;
};

}  // namespace avf::adapt
