// The application-specific monitoring agent (paper §6.1).
//
// Instrumented application code reports observations of the resources it
// actually obtained (e.g. "that 2 MB transfer took 4.1 s -> ~500 KB/s
// available", "those 90 Mops took 0.25 s -> ~80% of a 450 Mops CPU").  The
// agent keeps a sliding history window per resource axis, derives current
// availability estimates, and flags when availability has drifted out of
// range of the baseline recorded at the last scheduling decision — with a
// consecutive-check hysteresis so a single noisy sample does not trigger
// reconfiguration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace avf::adapt {

class MonitoringAgent {
 public:
  struct Options {
    double window = 2.0;              ///< history window, seconds
    double trigger_threshold = 0.25;  ///< relative deviation from baseline
    int consecutive_required = 2;     ///< out-of-range checks before trigger
  };

  MonitoringAgent(sim::Simulator& sim, std::vector<std::string> axes);
  MonitoringAgent(sim::Simulator& sim, std::vector<std::string> axes,
                  Options options);

  const std::vector<std::string>& axes() const { return axes_; }

  /// Stable numeric id of `axis` (its index in axes()); throws
  /// std::out_of_range for unknown names.  Hot per-sample reporters resolve
  /// the id once and use the id-based overloads below, skipping the
  /// name-table lookup entirely.
  std::size_t axis_id(const std::string& axis) const {
    return axis_index(axis);
  }

  /// Report an observed availability sample for `axis` (units = axis units,
  /// e.g. CPU share fraction or bytes/s), timestamped with simulated now().
  void observe(const std::string& axis, double value);
  /// Id-based fast path (see axis_id).
  void observe(std::size_t axis_id, double value);

  /// Windowed estimate; nullopt when the axis has no samples in-window.
  std::optional<double> estimate(const std::string& axis) const;
  /// Id-based fast path (see axis_id).
  std::optional<double> estimate(std::size_t axis_id) const;

  /// Estimates for all axes; axes without samples fall back to the
  /// baseline value.
  std::vector<double> estimates() const;
  /// Like estimates(), but fills a caller-owned vector so periodic callers
  /// (the adaptation controller) can reuse the allocation.
  void estimates_into(std::vector<double>& out) const;

  /// Record the resource point the scheduler last planned for.
  void set_baseline(std::vector<double> baseline);
  const std::vector<double>& baseline() const { return baseline_; }

  /// Out-of-range check (call periodically).  Returns true once the
  /// relative deviation on any axis has exceeded the threshold for the
  /// configured number of consecutive calls; the internal counter resets
  /// after firing and whenever availability returns to range.
  bool check_triggered();

  /// True when re-running check_triggered() now would *provably* repeat the
  /// previous check's in-range outcome with no state change: nothing was
  /// observed and no baseline was set since the last check (revision
  /// unchanged), that check found every axis in range, and no axis's
  /// qualifying sample suffix has aged past the window cutoff (the oldest
  /// qualifying sample recorded at the last check is still in-window, so
  /// the windowed means are bit-identical).  The adaptation controller uses
  /// this to skip whole ticks on quiet sessions; a false return proves
  /// nothing either way.
  bool check_would_noop() const;

  std::size_t samples_total() const { return samples_total_; }
  std::size_t triggers() const { return triggers_; }
  /// Bumped on every observe() and set_baseline(); lets periodic callers
  /// detect "no new information since I last looked".
  std::uint64_t revision() const { return revision_; }

 private:
  std::size_t axis_index(const std::string& axis) const;

  sim::Simulator& sim_;
  std::vector<std::string> axes_;
  Options options_;
  std::unordered_map<std::string, std::size_t> axis_ids_;  // name -> index
  std::vector<util::TimeWindow> windows_;
  std::vector<double> baseline_;
  int consecutive_out_ = 0;
  std::size_t samples_total_ = 0;
  std::size_t triggers_ = 0;
  std::uint64_t revision_ = 0;

  // Snapshot of the last check_triggered() call, for check_would_noop():
  // which revision it saw, whether it found everything in range, and per
  // axis whether an estimate existed and where its qualifying suffix began.
  // The per-axis entries are complete only for in-range checks (the check
  // short-circuits on the first out-of-range axis), which is exactly when
  // check_would_noop() consults them.
  struct AxisCheckState {
    bool had_estimate = false;
    double first_time = 0.0;
  };
  bool last_check_valid_ = false;
  bool last_check_out_of_range_ = false;
  std::uint64_t last_check_revision_ = 0;
  std::vector<AxisCheckState> check_state_;
};

}  // namespace avf::adapt
