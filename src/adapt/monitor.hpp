// The application-specific monitoring agent (paper §6.1).
//
// Instrumented application code reports observations of the resources it
// actually obtained (e.g. "that 2 MB transfer took 4.1 s -> ~500 KB/s
// available", "those 90 Mops took 0.25 s -> ~80% of a 450 Mops CPU").  The
// agent keeps a sliding history window per resource axis, derives current
// availability estimates, and flags when availability has drifted out of
// range of the baseline recorded at the last scheduling decision — with a
// consecutive-check hysteresis so a single noisy sample does not trigger
// reconfiguration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace avf::adapt {

class MonitoringAgent {
 public:
  struct Options {
    double window = 2.0;              ///< history window, seconds
    double trigger_threshold = 0.25;  ///< relative deviation from baseline
    int consecutive_required = 2;     ///< out-of-range checks before trigger
  };

  MonitoringAgent(sim::Simulator& sim, std::vector<std::string> axes);
  MonitoringAgent(sim::Simulator& sim, std::vector<std::string> axes,
                  Options options);

  const std::vector<std::string>& axes() const { return axes_; }

  /// Report an observed availability sample for `axis` (units = axis units,
  /// e.g. CPU share fraction or bytes/s), timestamped with simulated now().
  void observe(const std::string& axis, double value);

  /// Windowed estimate; nullopt when the axis has no samples in-window.
  std::optional<double> estimate(const std::string& axis) const;

  /// Estimates for all axes; axes without samples fall back to the
  /// baseline value.
  std::vector<double> estimates() const;
  /// Like estimates(), but fills a caller-owned vector so periodic callers
  /// (the adaptation controller) can reuse the allocation.
  void estimates_into(std::vector<double>& out) const;

  /// Record the resource point the scheduler last planned for.
  void set_baseline(std::vector<double> baseline);
  const std::vector<double>& baseline() const { return baseline_; }

  /// Out-of-range check (call periodically).  Returns true once the
  /// relative deviation on any axis has exceeded the threshold for the
  /// configured number of consecutive calls; the internal counter resets
  /// after firing and whenever availability returns to range.
  bool check_triggered();

  std::size_t samples_total() const { return samples_total_; }
  std::size_t triggers() const { return triggers_; }

 private:
  std::size_t axis_index(const std::string& axis) const;

  sim::Simulator& sim_;
  std::vector<std::string> axes_;
  Options options_;
  std::vector<util::TimeWindow> windows_;
  std::vector<double> baseline_;
  int consecutive_out_ = 0;
  std::size_t samples_total_ = 0;
  std::size_t triggers_ = 0;
};

}  // namespace avf::adapt
