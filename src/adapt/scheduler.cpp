#include "adapt/scheduler.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace avf::adapt {

using tunable::ConfigPoint;
using tunable::QosVector;

namespace {

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                          std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  h = fnv1a_bytes(h, s.data(), s.size());
  // Length separator: distinguishes {"ab","c"} from {"a","bc"}.
  std::uint64_t n = s.size();
  return fnv1a_bytes(h, &n, sizeof(n));
}

std::uint64_t fnv1a_f64(std::uint64_t h, double x) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  return fnv1a_bytes(h, &bits, sizeof(bits));
}

// Everything that shapes the decision function besides the database and the
// query point: preference list (names, constraint ranges, objectives,
// directions — declaration sites excluded) and the scheduler options.
std::uint64_t fingerprint_selector(const PreferenceList& prefs,
                                   const ResourceScheduler::Options& opts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::uint64_t count = prefs.size();
  h = fnv1a_bytes(h, &count, sizeof(count));
  for (const UserPreference& p : prefs) {
    h = fnv1a_str(h, p.name);
    std::uint64_t nc = p.constraints.size();
    h = fnv1a_bytes(h, &nc, sizeof(nc));
    for (const MetricRange& r : p.constraints) {
      h = fnv1a_str(h, r.metric);
      h = fnv1a_f64(h, r.min);
      h = fnv1a_f64(h, r.max);
    }
    h = fnv1a_str(h, p.objective_metric);
    unsigned char maximize = p.maximize ? 1 : 0;
    h = fnv1a_bytes(h, &maximize, sizeof(maximize));
  }
  int lookup = static_cast<int>(opts.lookup);
  h = fnv1a_bytes(h, &lookup, sizeof(lookup));
  h = fnv1a_f64(h, opts.switch_hysteresis);
  unsigned char exact = opts.exact_predictions ? 1 : 0;
  h = fnv1a_bytes(h, &exact, sizeof(exact));
  return h;
}

}  // namespace

ResourceScheduler::ResourceScheduler(const perfdb::PerfDatabase& db,
                                     PreferenceList preferences)
    : ResourceScheduler(db, std::move(preferences), Options{}) {}

ResourceScheduler::ResourceScheduler(const perfdb::PerfDatabase& db,
                                     PreferenceList preferences,
                                     Options options)
    : db_(db),
      preferences_(std::move(preferences)),
      options_(std::move(options)) {
  if (preferences_.empty()) {
    throw std::invalid_argument("scheduler needs at least one preference");
  }
  for (const UserPreference& p : preferences_) {
    if (!db_.schema().has(p.objective_metric)) {
      throw std::invalid_argument("objective metric not in database schema: " +
                                  p.objective_metric);
    }
  }
  // A memoized decision must be a pure function of (db contents, selector,
  // inputs); PerfDatabase::predict shares results within a quantization
  // bucket, so cached schedulers bypass it.
  if (options_.decision_cache) options_.exact_predictions = true;
  selector_fingerprint_ = fingerprint_selector(preferences_, options_);
}

const std::vector<ResourceScheduler::Candidate>& ResourceScheduler::evaluate(
    const perfdb::ResourcePoint& resources) const {
  scratch_.clear();
  if (options_.exact_predictions) {
    db_.for_each_config([&](const ConfigPoint& config) {
      auto predicted = db_.predict_uncached(config, resources, options_.lookup);
      if (predicted) {
        scratch_.push_back(Candidate{&config, std::move(*predicted)});
      }
    });
  } else {
    db_.for_each_config([&](const ConfigPoint& config) {
      auto predicted = db_.predict(config, resources, options_.lookup);
      if (predicted) {
        scratch_.push_back(Candidate{&config, std::move(*predicted)});
      }
    });
  }
  return scratch_;
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::decide(
    const std::vector<Candidate>& all) const {
  if (all.empty()) return std::nullopt;

  for (std::size_t pi = 0; pi < preferences_.size(); ++pi) {
    const UserPreference& pref = preferences_[pi];
    const Candidate* best = nullptr;
    for (const Candidate& c : all) {
      if (!pref.satisfied_by(c.predicted)) continue;
      if (best == nullptr ||
          pref.better(c.predicted.get(pref.objective_metric),
                      best->predicted.get(pref.objective_metric))) {
        best = &c;
      }
    }
    if (best != nullptr) {
      return Decision{*best->config, pi, best->predicted, pi != 0};
    }
  }

  // Nothing satisfies any preference: best-effort on the last preference's
  // objective, ignoring its constraints.
  const UserPreference& pref = preferences_.back();
  const Candidate* best = nullptr;
  for (const Candidate& c : all) {
    if (best == nullptr ||
        pref.better(c.predicted.get(pref.objective_metric),
                    best->predicted.get(pref.objective_metric))) {
      best = &c;
    }
  }
  return Decision{*best->config, preferences_.size() - 1, best->predicted,
                  true};
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::select(
    const perfdb::ResourcePoint& resources) const {
  if (options_.decision_cache) return select_cached(resources, nullptr);
  return select_uncached(resources, nullptr);
}

std::optional<ResourceScheduler::Decision>
ResourceScheduler::select_with_incumbent(
    const perfdb::ResourcePoint& resources,
    const ConfigPoint& incumbent) const {
  if (options_.decision_cache) return select_cached(resources, &incumbent);
  return select_uncached(resources, &incumbent);
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::select_cached(
    const perfdb::ResourcePoint& resources,
    const ConfigPoint* incumbent) const {
  DecisionCache& cache = *options_.decision_cache;
  DecisionCache::Query query;
  query.db_uid = db_.uid();
  query.db_epoch = db_.mutation_epoch();
  query.selector_fingerprint = selector_fingerprint_;
  query.has_incumbent = incumbent != nullptr;
  if (incumbent != nullptr) query.incumbent_key = incumbent->key();
  query.resources = &resources;
  if (const std::optional<Decision>* hit = cache.lookup(query)) return *hit;
  std::optional<Decision> fresh = select_uncached(resources, incumbent);
  cache.store(query, fresh);
  return fresh;
}

const ResourceScheduler::Candidate* ResourceScheduler::find_incumbent(
    const ConfigPoint& incumbent, const std::vector<Candidate>& all) const {
  // The candidate vector is the stored configuration set in database
  // iteration order whenever the database is non-trivial (a stored config
  // always yields *some* prediction), so one slot index serves every query
  // point until the database mutates.  The size guard catches the edge
  // where that assumption could drift.
  if (!slots_valid_ || slots_epoch_ != db_.mutation_epoch() ||
      slot_of_.size() != all.size()) {
    slot_of_.clear();
    for (std::size_t i = 0; i < all.size(); ++i) {
      slot_of_.emplace(all[i].config->key(), i);
    }
    slots_epoch_ = db_.mutation_epoch();
    slots_valid_ = true;
  }
  auto it = slot_of_.find(incumbent.key());
  if (it == slot_of_.end() || it->second >= all.size()) return nullptr;
  const Candidate& c = all[it->second];
  if (*c.config != incumbent) return nullptr;
  return &c;
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::select_uncached(
    const perfdb::ResourcePoint& resources,
    const ConfigPoint* incumbent_ptr) const {
  const std::vector<Candidate>& all = evaluate(resources);
  auto decision = decide(all);
  if (incumbent_ptr == nullptr) return decision;
  const ConfigPoint& incumbent = *incumbent_ptr;
  if (!decision || decision->config == incumbent) return decision;
  if (options_.switch_hysteresis <= 0.0) return decision;

  // Keep the incumbent unless it violates the winning preference's
  // constraints or the challenger's objective advantage exceeds the margin.
  // The incumbent's prediction was already computed with everyone else's.
  const Candidate* incumbent_candidate = find_incumbent(incumbent, all);
  if (incumbent_candidate == nullptr) return decision;
  const UserPreference& pref = preferences_[decision->preference_index];
  if (!pref.satisfied_by(incumbent_candidate->predicted)) return decision;

  double challenger = decision->predicted.get(pref.objective_metric);
  double current = incumbent_candidate->predicted.get(pref.objective_metric);
  double margin = options_.switch_hysteresis *
                  std::max(std::abs(current), 1e-12);
  bool clearly_better = pref.maximize ? challenger > current + margin
                                      : challenger < current - margin;
  if (!clearly_better) {
    return Decision{incumbent, decision->preference_index,
                    incumbent_candidate->predicted,
                    decision->fell_through};
  }
  return decision;
}

}  // namespace avf::adapt
