#include "adapt/scheduler.hpp"

#include <cmath>
#include <stdexcept>

namespace avf::adapt {

using tunable::ConfigPoint;
using tunable::QosVector;

ResourceScheduler::ResourceScheduler(const perfdb::PerfDatabase& db,
                                     PreferenceList preferences)
    : ResourceScheduler(db, std::move(preferences), Options{}) {}

ResourceScheduler::ResourceScheduler(const perfdb::PerfDatabase& db,
                                     PreferenceList preferences,
                                     Options options)
    : db_(db), preferences_(std::move(preferences)), options_(options) {
  if (preferences_.empty()) {
    throw std::invalid_argument("scheduler needs at least one preference");
  }
  for (const UserPreference& p : preferences_) {
    if (!db_.schema().has(p.objective_metric)) {
      throw std::invalid_argument("objective metric not in database schema: " +
                                  p.objective_metric);
    }
  }
}

const std::vector<ResourceScheduler::Candidate>& ResourceScheduler::evaluate(
    const perfdb::ResourcePoint& resources) const {
  scratch_.clear();
  db_.for_each_config([&](const ConfigPoint& config) {
    auto predicted = db_.predict(config, resources, options_.lookup);
    if (predicted) scratch_.push_back(Candidate{&config, std::move(*predicted)});
  });
  return scratch_;
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::decide(
    const std::vector<Candidate>& all) const {
  if (all.empty()) return std::nullopt;

  for (std::size_t pi = 0; pi < preferences_.size(); ++pi) {
    const UserPreference& pref = preferences_[pi];
    const Candidate* best = nullptr;
    for (const Candidate& c : all) {
      if (!pref.satisfied_by(c.predicted)) continue;
      if (best == nullptr ||
          pref.better(c.predicted.get(pref.objective_metric),
                      best->predicted.get(pref.objective_metric))) {
        best = &c;
      }
    }
    if (best != nullptr) {
      return Decision{*best->config, pi, best->predicted, pi != 0};
    }
  }

  // Nothing satisfies any preference: best-effort on the last preference's
  // objective, ignoring its constraints.
  const UserPreference& pref = preferences_.back();
  const Candidate* best = nullptr;
  for (const Candidate& c : all) {
    if (best == nullptr ||
        pref.better(c.predicted.get(pref.objective_metric),
                    best->predicted.get(pref.objective_metric))) {
      best = &c;
    }
  }
  return Decision{*best->config, preferences_.size() - 1, best->predicted,
                  true};
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::select(
    const perfdb::ResourcePoint& resources) const {
  return decide(evaluate(resources));
}

std::optional<ResourceScheduler::Decision>
ResourceScheduler::select_with_incumbent(
    const perfdb::ResourcePoint& resources,
    const ConfigPoint& incumbent) const {
  const std::vector<Candidate>& all = evaluate(resources);
  auto decision = decide(all);
  if (!decision || decision->config == incumbent) return decision;
  if (options_.switch_hysteresis <= 0.0) return decision;

  // Keep the incumbent unless it violates the winning preference's
  // constraints or the challenger's objective advantage exceeds the margin.
  // The incumbent's prediction was already computed with everyone else's.
  const Candidate* incumbent_candidate = nullptr;
  for (const Candidate& c : all) {
    if (*c.config == incumbent) {
      incumbent_candidate = &c;
      break;
    }
  }
  if (incumbent_candidate == nullptr) return decision;
  const UserPreference& pref = preferences_[decision->preference_index];
  if (!pref.satisfied_by(incumbent_candidate->predicted)) return decision;

  double challenger = decision->predicted.get(pref.objective_metric);
  double current = incumbent_candidate->predicted.get(pref.objective_metric);
  double margin = options_.switch_hysteresis *
                  std::max(std::abs(current), 1e-12);
  bool clearly_better = pref.maximize ? challenger > current + margin
                                      : challenger < current - margin;
  if (!clearly_better) {
    return Decision{incumbent, decision->preference_index,
                    incumbent_candidate->predicted,
                    decision->fell_through};
  }
  return decision;
}

}  // namespace avf::adapt
