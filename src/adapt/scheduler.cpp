#include "adapt/scheduler.hpp"

#include <cmath>
#include <stdexcept>

namespace avf::adapt {

using tunable::ConfigPoint;
using tunable::QosVector;

ResourceScheduler::ResourceScheduler(const perfdb::PerfDatabase& db,
                                     PreferenceList preferences)
    : ResourceScheduler(db, std::move(preferences), Options{}) {}

ResourceScheduler::ResourceScheduler(const perfdb::PerfDatabase& db,
                                     PreferenceList preferences,
                                     Options options)
    : db_(db), preferences_(std::move(preferences)), options_(options) {
  if (preferences_.empty()) {
    throw std::invalid_argument("scheduler needs at least one preference");
  }
  for (const UserPreference& p : preferences_) {
    if (!db_.schema().has(p.objective_metric)) {
      throw std::invalid_argument("objective metric not in database schema: " +
                                  p.objective_metric);
    }
  }
}

std::vector<ResourceScheduler::Candidate> ResourceScheduler::candidates(
    const perfdb::ResourcePoint& resources) const {
  std::vector<Candidate> out;
  for (const ConfigPoint& config : db_.configs()) {
    auto predicted = db_.predict(config, resources, options_.lookup);
    if (predicted) out.push_back(Candidate{config, std::move(*predicted)});
  }
  return out;
}

std::optional<ResourceScheduler::Decision> ResourceScheduler::select(
    const perfdb::ResourcePoint& resources) const {
  std::vector<Candidate> all = candidates(resources);
  if (all.empty()) return std::nullopt;

  for (std::size_t pi = 0; pi < preferences_.size(); ++pi) {
    const UserPreference& pref = preferences_[pi];
    const Candidate* best = nullptr;
    for (const Candidate& c : all) {
      if (!pref.satisfied_by(c.predicted)) continue;
      if (best == nullptr ||
          pref.better(c.predicted.get(pref.objective_metric),
                      best->predicted.get(pref.objective_metric))) {
        best = &c;
      }
    }
    if (best != nullptr) {
      return Decision{best->config, pi, best->predicted, pi != 0};
    }
  }

  // Nothing satisfies any preference: best-effort on the last preference's
  // objective, ignoring its constraints.
  const UserPreference& pref = preferences_.back();
  const Candidate* best = nullptr;
  for (const Candidate& c : all) {
    if (best == nullptr ||
        pref.better(c.predicted.get(pref.objective_metric),
                    best->predicted.get(pref.objective_metric))) {
      best = &c;
    }
  }
  return Decision{best->config, preferences_.size() - 1, best->predicted,
                  true};
}

std::optional<ResourceScheduler::Decision>
ResourceScheduler::select_with_incumbent(
    const perfdb::ResourcePoint& resources,
    const ConfigPoint& incumbent) const {
  auto decision = select(resources);
  if (!decision || decision->config == incumbent) return decision;
  if (options_.switch_hysteresis <= 0.0) return decision;

  // Keep the incumbent unless it violates the winning preference's
  // constraints or the challenger's objective advantage exceeds the margin.
  auto incumbent_prediction =
      db_.predict(incumbent, resources, options_.lookup);
  if (!incumbent_prediction) return decision;
  const UserPreference& pref = preferences_[decision->preference_index];
  if (!pref.satisfied_by(*incumbent_prediction)) return decision;

  double challenger = decision->predicted.get(pref.objective_metric);
  double current = incumbent_prediction->get(pref.objective_metric);
  double margin = options_.switch_hysteresis *
                  std::max(std::abs(current), 1e-12);
  bool clearly_better = pref.maximize ? challenger > current + margin
                                      : challenger < current - margin;
  if (!clearly_better) {
    return Decision{incumbent, decision->preference_index,
                    std::move(*incumbent_prediction),
                    decision->fell_through};
  }
  return decision;
}

}  // namespace avf::adapt
