// AdaptationController — the glue of the run-time subsystem (paper §6,
// Figure 1): a periodic check drains the monitoring agent's out-of-range
// signal, consults the resource scheduler, and hands any configuration
// change to the steering agent.  Also performs the *initial automatic
// configuration* from the system-wide monitor's static view of resources.
//
// Construction statically validates the tunability spec (AppSpec::validate
// plus preference and database cross-checks from src/lint): errors throw
// std::invalid_argument before anything runs; warnings are logged.
#pragma once

#include <vector>

#include "adapt/monitor.hpp"
#include "adapt/scheduler.hpp"
#include "adapt/steering.hpp"
#include "sim/simulator.hpp"

namespace avf::adapt {

class AdaptationController {
 public:
  struct Options {
    double check_interval = 0.25;  ///< seconds between monitor checks
    /// Lint the spec/preferences/database at construction: hard-fail
    /// (std::invalid_argument) on errors, log warnings.  Off switch for
    /// harnesses that intentionally build degenerate rigs.
    bool validate_spec = true;
    /// Skip the body of a periodic tick when the monitor proves it would be
    /// a no-op (MonitoringAgent::check_would_noop: nothing observed since
    /// the last in-range check and no window suffix aged out).  Behavior is
    /// identical either way — only ticks_skipped() and the work done per
    /// quiet tick differ.  Off switch for baseline measurements.
    bool change_driven_ticks = true;
  };

  AdaptationController(sim::Simulator& sim, const ResourceScheduler& scheduler,
                       MonitoringAgent& monitor, SteeringAgent& steering);
  AdaptationController(sim::Simulator& sim, const ResourceScheduler& scheduler,
                       MonitoringAgent& monitor, SteeringAgent& steering,
                       Options options);
  ~AdaptationController() { stop(); }

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  /// Initial configuration (paper: "configure itself in diverse distributed
  /// environments"): select for `initial_resources`, stage it, and record
  /// the baseline.  Returns the selected configuration so the caller can
  /// construct the application with it already active.
  tunable::ConfigPoint configure(
      const std::vector<double>& initial_resources);

  /// Begin periodic monitoring checks.
  void start();
  void stop() { check_event_.cancel(); }
  bool running() const { return check_event_.pending(); }

  struct AdaptationEvent {
    sim::SimTime time;
    tunable::ConfigPoint from;
    tunable::ConfigPoint to;
    std::vector<double> estimates;
    std::size_t preference_index;
  };
  const std::vector<AdaptationEvent>& adaptations() const {
    return adaptations_;
  }
  std::size_t checks() const { return checks_; }
  /// Ticks whose body was skipped because the monitor proved the check
  /// would repeat the previous in-range outcome (change-driven ticks).
  std::size_t ticks_skipped() const { return ticks_skipped_; }

 private:
  void tick();

  sim::Simulator& sim_;
  const ResourceScheduler& scheduler_;
  MonitoringAgent& monitor_;
  SteeringAgent& steering_;
  Options options_;
  sim::EventHandle check_event_;
  std::vector<AdaptationEvent> adaptations_;
  std::vector<double> estimates_scratch_;  // reused across periodic checks
  std::size_t checks_ = 0;
  std::size_t ticks_skipped_ = 0;
};

}  // namespace avf::adapt
