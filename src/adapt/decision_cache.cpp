#include "adapt/decision_cache.hpp"

#include <bit>

#include "perfdb/prediction_cache.hpp"

namespace avf::adapt {

namespace {

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                          std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t DecisionCache::hash_query(const Query& q) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_bytes(h, &q.db_uid, sizeof(q.db_uid));
  h = fnv1a_bytes(h, &q.selector_fingerprint, sizeof(q.selector_fingerprint));
  unsigned char inc = q.has_incumbent ? 1 : 0;
  h = fnv1a_bytes(h, &inc, sizeof(inc));
  h = fnv1a_bytes(h, q.incumbent_key.data(), q.incumbent_key.size());
  // Quantized coordinates bucket the hash; exactness comes from the raw-bit
  // verification in keys_match.
  for (double x : *q.resources) {
    std::uint64_t qx = perfdb::PredictionCache::quantize(x);
    h = fnv1a_bytes(h, &qx, sizeof(qx));
  }
  return h;
}

bool DecisionCache::keys_match(const Entry& e, const Query& q) {
  if (e.db_uid != q.db_uid ||
      e.selector_fingerprint != q.selector_fingerprint ||
      e.has_incumbent != q.has_incumbent ||
      e.incumbent_key != q.incumbent_key ||
      e.raw_bits.size() != q.resources->size()) {
    return false;
  }
  for (std::size_t i = 0; i < e.raw_bits.size(); ++i) {
    if (e.raw_bits[i] != std::bit_cast<std::uint64_t>((*q.resources)[i])) {
      return false;
    }
  }
  return true;
}

const std::optional<Decision>* DecisionCache::lookup(const Query& q) const {
  util::MutexLock lock(mutex_);
  auto it = entries_.find(hash_query(q));
  if (it == entries_.end() || !keys_match(it->second, q)) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.db_epoch != q.db_epoch) {
    // Same inputs, mutated database: the memoized decision may no longer
    // match what a fresh evaluation would produce.
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second.decision;
}

void DecisionCache::store(const Query& q,
                          const std::optional<Decision>& decision) {
  if (max_entries_ == 0) return;
  util::MutexLock lock(mutex_);
  Entry entry;
  entry.db_uid = q.db_uid;
  entry.db_epoch = q.db_epoch;
  entry.selector_fingerprint = q.selector_fingerprint;
  entry.has_incumbent = q.has_incumbent;
  entry.incumbent_key = q.incumbent_key;
  entry.raw_bits.resize(q.resources->size());
  for (std::size_t i = 0; i < q.resources->size(); ++i) {
    entry.raw_bits[i] = std::bit_cast<std::uint64_t>((*q.resources)[i]);
  }
  entry.decision = decision;
  std::uint64_t h = hash_query(q);
  if (entries_.size() >= max_entries_ && !entries_.contains(h)) {
    entries_.clear();
    ++stats_.evictions;
  }
  entries_[h] = std::move(entry);
}

void DecisionCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace avf::adapt
