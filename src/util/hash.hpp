// Seeded, deterministic 128-bit content hashing for the content-addressed
// stores (viz::TileStore keys, pyramid content fingerprints).
//
// Two independent FNV-1a-style 64-bit lanes run over the same byte stream
// with different offsets and odd multipliers, then each lane is finalized
// with a splitmix64-style avalanche and the lanes are cross-folded.  The
// result is a 128-bit digest that is:
//
//  - deterministic: a pure function of (seed, bytes) — no wall clock, no
//    std::random_device, no ASLR-dependent state — so run-twice equality
//    and cross-platform stability hold (multi-byte updates fold bytes
//    LSB-first regardless of host endianness);
//  - seeded: the seed acts as a domain tag, so region-payload keys,
//    compressed-chunk keys, and pyramid fingerprints live in disjoint key
//    spaces even when their byte streams coincide;
//  - incremental: callers fold fields one at a time (update_u16 per
//    TileRef coordinate, ...) instead of materializing a key buffer — the
//    whole point for hot-path lookups that previously built a std::string
//    per request.
//
// 128 bits make accidental collisions astronomically unlikely, and
// viz::TileStore's verify_on_hit mode byte-compares hit payloads as a
// debug-time guard for the remaining possibility.
#pragma once

#include <cstddef>
#include <cstdint>

namespace avf::util {

/// 128-bit digest.  Ordered so it can key ordered containers in tests;
/// unordered containers should hash with `lo` (already avalanche-mixed).
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend auto operator<=>(const Hash128&, const Hash128&) = default;
};

class Hasher128 {
 public:
  explicit Hasher128(std::uint64_t seed = 0)
      : lo_(kOffsetLo ^ seed), hi_(kOffsetHi ^ (kGolden * (seed + 1))) {}

  Hasher128& update(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) fold(bytes[i]);
    return *this;
  }

  Hasher128& update_u8(std::uint8_t v) {
    fold(v);
    return *this;
  }
  Hasher128& update_u16(std::uint16_t v) { return fold_le(v, 2); }
  Hasher128& update_u32(std::uint32_t v) { return fold_le(v, 4); }
  Hasher128& update_u64(std::uint64_t v) { return fold_le(v, 8); }

  Hash128 finish() const {
    // Avalanche each lane, then cross-fold so the pair never degenerates
    // to two correlated copies of the same 64-bit state.
    std::uint64_t a = mix(lo_);
    std::uint64_t b = mix(hi_ + kGolden * a);
    return Hash128{b, mix(a ^ (b >> 32))};
  }

  /// One-shot convenience over a contiguous buffer.
  static Hash128 of(const void* data, std::size_t n, std::uint64_t seed = 0) {
    Hasher128 h(seed);
    h.update(data, n);
    return h.finish();
  }

 private:
  static constexpr std::uint64_t kOffsetLo = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kOffsetHi = 0x84222325cbf29ce4ULL;
  static constexpr std::uint64_t kPrimeLo = 0x100000001b3ULL;  // FNV-1a
  static constexpr std::uint64_t kPrimeHi = 0x9e3779b97f4a7c15ULL | 1ULL;
  static constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

  void fold(std::uint8_t b) {
    lo_ = (lo_ ^ b) * kPrimeLo;
    hi_ = (hi_ ^ b) * kPrimeHi;
  }

  /// Fold an integer LSB-first: byte order is part of the digest contract,
  /// independent of host endianness.
  Hasher128& fold_le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) fold(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  static std::uint64_t mix(std::uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
  }

  std::uint64_t lo_;
  std::uint64_t hi_;
};

}  // namespace avf::util
