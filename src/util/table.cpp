#include "util/csv.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include "util/fmt.hpp"
#include <ostream>
#include <stdexcept>

namespace avf::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%') {
      return false;
    }
  }
  return digit;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument(
        avf::util::format("table row has {} fields, header has {}", row.size(),
                    header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  return avf::util::format("{:.{}f}", value, precision);
}

void TextTable::save_csv(std::ostream& out) const {
  CsvWriter writer(out, header_);
  for (const auto& row : rows_) writer.row(row);
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      if (looks_numeric(row[c])) {
        out << avf::util::format("{:>{}}", row[c], widths[c]);
      } else {
        out << avf::util::format("{:<{}}", row[c], widths[c]);
      }
    }
    out << '\n';
  };

  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace avf::util
