// ASCII table rendering for the benchmark harnesses.  The fig* binaries print
// the same rows/series the paper's figures report; this keeps that output
// aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace avf::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment; numeric-looking fields right-aligned.
  void print(std::ostream& out) const;

  /// Write the same data as CSV (for plotting the figures).
  void save_csv(std::ostream& out) const;

  static std::string num(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace avf::util
