// Streaming statistics and a fixed-capacity sliding window, used by the
// monitoring agent (history-window estimates) and by the benchmark harnesses.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

namespace avf::util {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance; 0 for < 2 samples
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Aggregate over the suffix of a TimeWindow that qualifies for a
/// `stats_since` query: the mean, the timestamp of the oldest qualifying
/// sample, and the number of qualifying samples.
struct SuffixStats {
  double mean;
  double first_time;
  std::size_t count;
};

/// Sliding window over (time, value) samples; evicts samples older than the
/// configured horizon relative to the most recent sample.  This is the data
/// structure behind the monitoring agent's "history window" (paper §6.1).
///
/// `mean_since`/`stats_since` are backed by a memoized Neumaier left-fold
/// over the qualifying suffix.  Appending a sample extends the fold with one
/// compensated-add step — exactly the step a fresh oldest→newest scan would
/// perform last — so the memo stays bit-identical to an exact rescan at all
/// times.  When a query's cutoff no longer matches the memo anchor (the
/// window aged, or a stale burst left the deque holding samples older than
/// the caller's cutoff) the query falls back to the exact scan and
/// re-anchors the memo.  Repeated queries against an unchanged suffix are
/// O(1); the fallback is never worse than the pre-memo linear scan.
class TimeWindow {
 public:
  explicit TimeWindow(double horizon) : horizon_(horizon) {}

  void add(double time, double value);
  void clear() {
    samples_.clear();
    base_seq_ = 0;
    fold_valid_ = false;
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double horizon() const { return horizon_; }

  double mean() const;
  /// Mean of the samples with time >= `t`; nullopt when none qualify.
  /// Eviction on add() is relative to the newest *sample*, so the deque can
  /// retain entries older than the caller's notion of "now" — consumers that
  /// care about wall-clock freshness (the monitoring agent) must filter here
  /// rather than averaging the whole deque.
  std::optional<double> mean_since(double t) const;
  /// Mean, oldest qualifying timestamp, and count for samples with time
  /// >= `t`; nullopt when none qualify.  O(1) when the memoized fold already
  /// covers exactly this suffix.
  std::optional<SuffixStats> stats_since(double t) const;
  /// Number of samples with time >= `t`.
  std::size_t count_since(double t) const;
  double min() const;
  double max() const;
  /// Most recent value (0 when empty).
  double latest() const;
  /// Least-squares slope of value over time (0 with < 2 samples or zero
  /// time spread); the monitor uses it to detect drifting availability.
  double slope() const;

  const std::deque<std::pair<double, double>>& samples() const {
    return samples_;
  }

  /// Observability for the suffix-fold memo: O(1) extensions performed in
  /// add(), exact-scan re-anchors, and queries answered from the memo.
  struct FoldCounters {
    std::uint64_t extends = 0;
    std::uint64_t rescans = 0;
    std::uint64_t hits = 0;
  };
  FoldCounters fold_counters() const {
    return {fold_extends_, fold_rescans_, fold_hits_};
  }

 private:
  double horizon_;
  std::deque<std::pair<double, double>> samples_;
  // Sequence number of samples_.front(); advanced by every front eviction so
  // the fold anchor survives deque index shifts.
  std::uint64_t base_seq_ = 0;
  // Memoized Neumaier left-fold over the suffix [fold_start_seq_, end); the
  // fold, when valid, always reaches the newest sample (add() extends it or
  // invalidates it, never leaves it short).  Mutable: queries are logically
  // const but re-anchor the memo.
  mutable bool fold_valid_ = false;
  mutable std::uint64_t fold_start_seq_ = 0;
  mutable double fold_sum_ = 0.0;
  mutable double fold_comp_ = 0.0;
  mutable std::uint64_t fold_extends_ = 0;
  mutable std::uint64_t fold_rescans_ = 0;
  mutable std::uint64_t fold_hits_ = 0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  bool has_value() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Percentile of a sample vector (linear interpolation between ranks).
/// `q` in [0,1]. Returns 0 for empty input.
double percentile(std::vector<double> samples, double q);

}  // namespace avf::util
