// Streaming statistics and a fixed-capacity sliding window, used by the
// monitoring agent (history-window estimates) and by the benchmark harnesses.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

namespace avf::util {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance; 0 for < 2 samples
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sliding window over (time, value) samples; evicts samples older than the
/// configured horizon relative to the most recent sample.  This is the data
/// structure behind the monitoring agent's "history window" (paper §6.1).
class TimeWindow {
 public:
  explicit TimeWindow(double horizon) : horizon_(horizon) {}

  void add(double time, double value);
  void clear() { samples_.clear(); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double horizon() const { return horizon_; }

  double mean() const;
  /// Mean of the samples with time >= `t`; nullopt when none qualify.
  /// Eviction on add() is relative to the newest *sample*, so the deque can
  /// retain entries older than the caller's notion of "now" — consumers that
  /// care about wall-clock freshness (the monitoring agent) must filter here
  /// rather than averaging the whole deque.
  std::optional<double> mean_since(double t) const;
  /// Number of samples with time >= `t`.
  std::size_t count_since(double t) const;
  double min() const;
  double max() const;
  /// Most recent value (0 when empty).
  double latest() const;
  /// Least-squares slope of value over time (0 with < 2 samples or zero
  /// time spread); the monitor uses it to detect drifting availability.
  double slope() const;

  const std::deque<std::pair<double, double>>& samples() const {
    return samples_;
  }

 private:
  double horizon_;
  std::deque<std::pair<double, double>> samples_;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  bool has_value() const { return initialized_; }
  double value() const { return value_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Percentile of a sample vector (linear interpolation between ranks).
/// `q` in [0,1]. Returns 0 for empty input.
double percentile(std::vector<double> samples, double q);

}  // namespace avf::util
