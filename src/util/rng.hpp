// Deterministic, seedable RNG used everywhere randomness is needed (synthetic
// images, interaction traces, property tests).  SplitMix64: tiny, fast, and
// reproducible across platforms — the whole repro must be bit-deterministic.
#pragma once

#include <cstdint>

namespace avf::util {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return next() % bound;  // negligible modulo bias for our bounds
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace avf::util
