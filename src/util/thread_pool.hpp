// A small work-stealing thread pool shared by the offline subsystems
// (profiling driver, prune/sensitivity post-passes).
//
// Design:
//   - N workers on std::jthread; each worker owns a mutex-guarded deque.
//     Workers pop their own deque LIFO (hot cache) and steal from other
//     deques FIFO (oldest first), so skewed shard sizes rebalance.
//   - Stop-token aware: request_stop() (or destruction) wakes sleepers via
//     std::condition_variable_any; queued tasks are still *drained* after a
//     stop so blocking callers never hang, but parallel_for payloads are
//     skipped and the call reports cancellation.
//   - parallel_for(count, fn) is the main entry point: it fans fn(0..count)
//     out across the workers, blocks until every index completed, and
//     rethrows the failing index's exception.  When several indices throw,
//     the *lowest* index wins, so error reporting is deterministic no
//     matter how the shards interleaved.
//
// The pool is intended for coarse tasks (a profiling run, an O(n) pair
// scan); it makes no attempt at lock-free deques, which keeps it trivially
// ThreadSanitizer-clean — and the lock discipline itself is statically
// checked: every shared field carries AVF_GUARDED_BY, so a clang
// -Werror=thread-safety build rejects any access outside the right lock.
// parallel_for must not be called from inside a pool task (the caller
// blocks without helping, so nested calls on a saturated pool can
// deadlock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace avf::util {

/// Thrown by parallel_for when the pool was stopped before every index ran.
class ThreadPoolStopped : public std::runtime_error {
 public:
  ThreadPoolStopped() : std::runtime_error("thread_pool: stopped") {}
};

class ThreadPool {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Resolve a thread-count knob: 0 -> hardware_concurrency (min 1).
  static std::size_t resolve_threads(std::size_t requested);

  /// Enqueue one fire-and-forget task (round-robin across worker deques).
  /// Tasks must not throw; use parallel_for for exception propagation.
  void submit(std::function<void()> task) AVF_EXCLUDES(wake_mutex_);

  /// Run fn(i) for every i in [0, count); blocks until all indices
  /// completed.  Rethrows the exception of the lowest failing index; throws
  /// ThreadPoolStopped if the pool was stopped before all payloads ran.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Index of the calling worker thread within this pool, or size() when
  /// called from a non-worker thread.  Lets parallel_for payloads pick a
  /// per-worker context (e.g. one profiling testbed per worker).
  std::size_t current_worker() const;

  /// Ask workers to stop; queued tasks are drained (payloads skipped).
  void request_stop() AVF_EXCLUDES(wake_mutex_);
  bool stop_requested() const;

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> queue AVF_GUARDED_BY(mutex);
  };

  void worker_loop(std::stop_token token, std::size_t self);
  /// Pop own back, else steal another queue's front.
  bool try_pop(std::size_t self, std::function<void()>& task)
      AVF_EXCLUDES(wake_mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  // Guards `unclaimed_` and the sleep/wake handshake (a task enqueued
  // between a worker's empty check and its wait must not be lost).
  Mutex wake_mutex_;
  std::condition_variable_any wake_;
  std::size_t unclaimed_ AVF_GUARDED_BY(wake_mutex_) = 0;
  std::size_t next_queue_ AVF_GUARDED_BY(wake_mutex_) = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::jthread> threads_;  // last member: joins before teardown
};

}  // namespace avf::util
