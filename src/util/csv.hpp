// Minimal CSV reading/writing used by the performance database and the
// benchmark harnesses.  Only the subset of CSV we need: comma separation,
// quoting of fields containing commas/quotes/newlines, header row.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace avf::util {

/// Incremental CSV writer.  Usage:
///   CsvWriter w(out, {"config", "cpu_share", "transmit_time"});
///   w.row({"lzw", "0.4", "12.5"});
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, const std::vector<std::string>& header);

  void row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with full round-trip precision.
  static std::string field(double value);
  static std::string field(long long value);

 private:
  std::ostream& out_;
  std::size_t columns_;
};

/// Fully parsed CSV document.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws std::out_of_range if missing.
  std::size_t column(const std::string& name) const;
};

/// Parse a complete CSV stream (first row = header).  Throws
/// std::runtime_error on structural errors (unterminated quote, ragged rows).
CsvDocument read_csv(std::istream& in);

/// Escape a single field per RFC-4180 quoting rules.
std::string csv_escape(const std::string& field);

}  // namespace avf::util
