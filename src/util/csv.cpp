#include "util/csv.hpp"

#include <charconv>
#include "util/fmt.hpp"
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace avf::util {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void write_row(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

}  // namespace

std::string csv_escape(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(std::ostream& out, const std::vector<std::string>& header)
    : out_(out), columns_(header.size()) {
  write_row(out_, header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument(
        avf::util::format("CSV row has {} fields, header has {}", fields.size(),
                    columns_));
  }
  write_row(out_, fields);
}

std::string CsvWriter::field(double value) {
  return avf::util::format("{}", value);
}

std::string CsvWriter::field(long long value) {
  return avf::util::format("{}", value);
}

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range(avf::util::format("CSV column not found: {}", name));
}

CsvDocument read_csv(std::istream& in) {
  CsvDocument doc;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool any_field = false;
  char c;

  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    any_field = true;
  };
  auto end_row = [&] {
    if (!any_field && current.empty() && field.empty()) return;  // blank line
    end_field();
    if (doc.header.empty()) {
      doc.header = std::move(current);
    } else {
      if (current.size() != doc.header.size()) {
        throw std::runtime_error(avf::util::format(
            "ragged CSV row: {} fields, expected {}", current.size(),
            doc.header.size()));
      }
      doc.rows.push_back(std::move(current));
    }
    current.clear();
    any_field = false;
  };

  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
    }
  }
  if (in_quotes) throw std::runtime_error("unterminated quote in CSV input");
  if (any_field || !field.empty()) end_row();
  return doc;
}

}  // namespace avf::util
