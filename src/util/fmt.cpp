#include "util/fmt.hpp"

namespace avf::util::fmtdetail {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::invalid_argument(std::string("format error: ") + what);
}

/// Parse a decimal integer starting at `i`; advances `i`.
int parse_int(std::string_view s, std::size_t& i) {
  int v = 0;
  bool any = false;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    ++i;
    any = true;
  }
  if (!any) fail("expected integer in format spec");
  return v;
}

FormatSpec parse_spec(std::string_view spec) {
  FormatSpec out;
  std::size_t i = 0;
  if (i < spec.size() && (spec[i] == '<' || spec[i] == '>')) {
    out.align = spec[i];
    ++i;
  }
  if (i < spec.size()) {
    if (spec[i] == '{') {
      if (i + 1 >= spec.size() || spec[i + 1] != '}') fail("bad dynamic width");
      out.width = -2;
      i += 2;
    } else if (spec[i] >= '0' && spec[i] <= '9') {
      out.width = parse_int(spec, i);
    }
  }
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    if (i < spec.size() && spec[i] == '{') {
      if (i + 1 >= spec.size() || spec[i + 1] != '}') {
        fail("bad dynamic precision");
      }
      out.precision = -2;
      i += 2;
    } else {
      out.precision = parse_int(spec, i);
    }
  }
  if (i < spec.size()) {
    char t = spec[i];
    if (t == 'f' || t == 'e' || t == 'g' || t == 'x' || t == 'd') {
      out.type = t;
      ++i;
    }
  }
  if (i != spec.size()) fail("unsupported format spec");
  return out;
}

}  // namespace

std::string vformat(std::string_view fmt, std::vector<FormatArg> args) {
  std::string out;
  out.reserve(fmt.size() + args.size() * 8);
  std::size_t next_arg = 0;

  auto take_int_arg = [&]() -> int {
    if (next_arg >= args.size()) fail("missing dynamic width/precision arg");
    const FormatArg& a = args[next_arg++];
    if (!a.is_integral) fail("dynamic width/precision must be integral");
    return static_cast<int>(a.int_value);
  };

  for (std::size_t i = 0; i < fmt.size(); ++i) {
    char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) fail("unmatched '{'");
      std::string_view inner = fmt.substr(i + 1, close - i - 1);
      FormatSpec spec;
      if (!inner.empty()) {
        if (inner[0] != ':') fail("positional arg ids are not supported");
        // Dynamic width/precision placeholders ({:>{}}) contain '}' inside
        // the spec, so the find('}') above may have split too early; extend
        // to the next '}' while the spec still parses as incomplete.
        std::string_view spec_text = inner.substr(1);
        while (true) {
          // Count unmatched '{' in the candidate spec.
          int opens = 0;
          for (char sc : spec_text) {
            if (sc == '{') ++opens;
            if (sc == '}') --opens;
          }
          if (opens <= 0) break;
          std::size_t next_close = fmt.find('}', close + 1);
          if (next_close == std::string_view::npos) fail("unmatched '{'");
          spec_text = fmt.substr(i + 2, next_close - i - 2);
          close = next_close;
        }
        spec = parse_spec(spec_text);
      }
      // std::format automatic indexing: the field's value argument comes
      // first, then dynamic width, then dynamic precision.
      if (next_arg >= args.size()) fail("not enough arguments");
      const FormatArg& value = args[next_arg++];
      if (spec.width == -2) spec.width = take_int_arg();
      if (spec.precision == -2) spec.precision = take_int_arg();
      out += value.render(spec);
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') {
        out += '}';
        ++i;
        continue;
      }
      fail("unmatched '}'");
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace avf::util::fmtdetail
