// Minimal std::format-style string formatting.
//
// The toolchain this project targets (GCC 12) does not ship <format>, so we
// provide the subset the codebase uses:
//   {}            default formatting
//   {:.3f} {:e}   floating-point precision/style
//   {:>10} {:<10} width + alignment (fill is always space)
//   {:>{}} {:.{}f} dynamic width/precision taken from the next argument
//   {{ }}         literal braces
// Arguments are matched positionally in order; mismatched counts throw
// std::invalid_argument (we trade std::format's compile-time checking for
// a strict runtime check).
#pragma once

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace avf::util {

namespace fmtdetail {

struct FormatSpec {
  char align = 0;      // '<', '>', or 0 (type default)
  int width = -1;      // -1 = none; -2 = dynamic (next arg)
  int precision = -1;  // -1 = none; -2 = dynamic (next arg)
  char type = 0;       // 'f', 'e', 'g', 'x', 'd', or 0
};

struct FormatArg {
  std::function<std::string(const FormatSpec&)> render;
  long long int_value = 0;
  bool is_integral = false;
};

inline std::string pad(std::string s, const FormatSpec& spec,
                       bool arithmetic) {
  if (spec.width <= 0 || static_cast<int>(s.size()) >= spec.width) return s;
  char align = spec.align != 0 ? spec.align : (arithmetic ? '>' : '<');
  std::size_t fill = static_cast<std::size_t>(spec.width) - s.size();
  if (align == '>') return std::string(fill, ' ') + s;
  return s + std::string(fill, ' ');
}

inline std::string render_double(double v, const FormatSpec& spec) {
  char type = spec.type != 0 ? spec.type : 'g';
  char buf[64];
  int precision = spec.precision >= 0 ? spec.precision : (type == 'g' ? -1 : 6);
  if (type == 'g' && precision < 0) {
    // Default {} formatting: shortest round-trip representation.
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    return pad(std::string(buf, end), spec, true);
  }
  char cfmt[16];
  std::snprintf(cfmt, sizeof cfmt, "%%.%d%c", precision, type);
  std::snprintf(buf, sizeof buf, cfmt, v);
  return pad(buf, spec, true);
}

template <typename T>
std::string render_integral(T v, const FormatSpec& spec) {
  char buf[32];
  if (spec.type == 'x') {
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(v));
  } else if constexpr (std::is_signed_v<T>) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
  }
  return pad(buf, spec, true);
}

template <typename T>
FormatArg make_arg(const T& v) {
  FormatArg arg;
  if constexpr (std::is_same_v<T, bool>) {
    arg.render = [v](const FormatSpec& spec) {
      return pad(v ? "true" : "false", spec, false);
    };
  } else if constexpr (std::is_integral_v<T>) {
    arg.int_value = static_cast<long long>(v);
    arg.is_integral = true;
    arg.render = [v](const FormatSpec& spec) {
      return render_integral(v, spec);
    };
  } else if constexpr (std::is_floating_point_v<T>) {
    arg.render = [v](const FormatSpec& spec) {
      return render_double(static_cast<double>(v), spec);
    };
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    std::string s{std::string_view(v)};
    arg.render = [s = std::move(s)](const FormatSpec& spec) {
      std::string out = s;
      if (spec.precision >= 0 &&
          static_cast<int>(out.size()) > spec.precision) {
        out.resize(static_cast<std::size_t>(spec.precision));
      }
      return pad(out, spec, false);
    };
  } else {
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    arg.render = [s = std::move(s)](const FormatSpec& spec) {
      return pad(s, spec, false);
    };
  }
  return arg;
}

std::string vformat(std::string_view fmt, std::vector<FormatArg> args);

}  // namespace fmtdetail

/// Format `fmt` with positional `{}` placeholders; see file comment for the
/// supported spec subset.
template <typename... Ts>
std::string format(std::string_view fmt, const Ts&... vs) {
  std::vector<fmtdetail::FormatArg> args;
  args.reserve(sizeof...(vs));
  (args.push_back(fmtdetail::make_arg(vs)), ...);
  return fmtdetail::vformat(fmt, std::move(args));
}

}  // namespace avf::util
