#include "util/logging.hpp"

#include <iostream>

namespace avf::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::set_sink(std::ostream* sink) {
  MutexLock lock(write_mutex_);
  sink_ = sink;
}

void Logger::write(LogLevel level, std::string_view component, double sim_time,
                   std::string_view message) {
  // Format outside the lock; the critical section is the single insert, so
  // lines from concurrent workers still interleave whole (byte-identical
  // output, just a shorter hold).
  std::string line = avf::util::format("[{:>5}] t={:.6f} {}: {}\n",
                                       level_name(level), sim_time, component,
                                       message);
  MutexLock lock(write_mutex_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << line;
}

}  // namespace avf::util
