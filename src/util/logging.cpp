#include "util/logging.hpp"

#include <iostream>

namespace avf::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::write(LogLevel level, std::string_view component, double sim_time,
                   std::string_view message) {
  std::scoped_lock lock(write_mutex_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::cerr;
  out << avf::util::format("[{:>5}] t={:.6f} {}: {}\n", level_name(level), sim_time,
                     component, message);
}

}  // namespace avf::util
