// Annotated mutex wrappers: the only place in the tree that may name the
// raw std:: locking primitives (enforced by avf_srclint rule
// src.raw-mutex).
//
// util::Mutex is std::mutex carrying the Clang Thread Safety
// AVF_CAPABILITY attribute, and util::MutexLock is the scoped lock that
// TSA tracks.  Everything mutex-guarded in the tree (thread pool, logger,
// viz caches, memos, prediction cache) declares its fields
// AVF_GUARDED_BY(<mutex member>) and locks through these wrappers, so a
// clang build with -Werror=thread-safety rejects any access that bypasses
// the lock.
//
// MutexLock also satisfies BasicLockable (lock()/unlock()), which is what
// lets std::condition_variable_any wait on it directly: TSA models the
// capability as held across the wait — exactly the invariant a predicate
// loop relies on.
#pragma once

#include <mutex>  // exempt from src.raw-mutex: this file is the wrapper

#include "util/annotations.hpp"

namespace avf::util {

/// std::mutex as a TSA capability.  Non-recursive, non-timed — the only
/// locking vocabulary the codebase needs.
class AVF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AVF_ACQUIRE() { mutex_.lock(); }
  void unlock() AVF_RELEASE() { mutex_.unlock(); }
  bool try_lock() AVF_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over one util::Mutex; the capability is held from
/// construction to destruction.  lock()/unlock() exist for
/// std::condition_variable_any::wait, which releases and re-acquires
/// around the sleep — callers must leave the lock held (balanced), which
/// is what wait() guarantees.
class AVF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) AVF_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() AVF_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable, for std::condition_variable_any.
  void lock() AVF_ACQUIRE() { mutex_.lock(); }
  void unlock() AVF_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

}  // namespace avf::util
