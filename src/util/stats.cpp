#include "util/stats.hpp"

#include <algorithm>

namespace avf::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

namespace {

// One step of a Neumaier compensated left-fold.  Both the incremental
// extension in add() and the exact-scan fallback run exactly this step in
// oldest→newest order, which is what makes the memo bit-identical to a
// fresh rescan.
void neumaier_add(double& sum, double& comp, double x) {
  double t = sum + x;
  if (std::abs(sum) >= std::abs(x)) {
    comp += (sum - t) + x;
  } else {
    comp += (x - t) + sum;
  }
  sum = t;
}

}  // namespace

void TimeWindow::add(double time, double value) {
  samples_.emplace_back(time, value);
  if (fold_valid_) {
    // The fold covers a suffix ending at the previous newest sample (add()
    // never leaves it short), so one compensated step keeps it current.
    neumaier_add(fold_sum_, fold_comp_, value);
    ++fold_extends_;
  }
  double cutoff = time - horizon_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    samples_.pop_front();
    ++base_seq_;
  }
  // Eviction reached into the fold's coverage: compensated sums cannot be
  // bit-identically "subtracted from", so drop the memo and let the next
  // query re-anchor with an exact scan.
  if (fold_valid_ && fold_start_seq_ < base_seq_) fold_valid_ = false;
}

double TimeWindow::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  double comp = 0.0;
  for (const auto& [t, v] : samples_) neumaier_add(sum, comp, v);
  return (sum + comp) / static_cast<double>(samples_.size());
}

std::optional<double> TimeWindow::mean_since(double t) const {
  auto stats = stats_since(t);
  if (!stats) return std::nullopt;
  return stats->mean;
}

std::optional<SuffixStats> TimeWindow::stats_since(double t) const {
  const std::size_t size = samples_.size();
  if (fold_valid_) {
    // The fold covers [fold_start_seq_, end).  It answers this query iff its
    // first covered sample is exactly the oldest one with time >= t — an O(1)
    // check against the sample at the anchor and its predecessor.
    std::size_t idx = static_cast<std::size_t>(fold_start_seq_ - base_seq_);
    bool starts_in_suffix = idx == size || samples_[idx].first >= t;
    bool is_maximal = idx == 0 || samples_[idx - 1].first < t;
    if (starts_in_suffix && is_maximal) {
      ++fold_hits_;
      std::size_t n = size - idx;
      if (n == 0) return std::nullopt;
      return SuffixStats{(fold_sum_ + fold_comp_) / static_cast<double>(n),
                         samples_[idx].first, n};
    }
  }
  // Re-anchor: samples are time-ordered, so the qualifying suffix starts at
  // the first entry with time >= t.  The fresh scan below performs the same
  // left-fold the incremental path would have accumulated.
  auto first = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const std::pair<double, double>& s, double cut) {
        return s.first < cut;
      });
  ++fold_rescans_;
  fold_valid_ = true;
  fold_start_seq_ =
      base_seq_ + static_cast<std::uint64_t>(first - samples_.begin());
  fold_sum_ = 0.0;
  fold_comp_ = 0.0;
  std::size_t n = 0;
  for (auto it = first; it != samples_.end(); ++it) {
    neumaier_add(fold_sum_, fold_comp_, it->second);
    ++n;
  }
  if (n == 0) return std::nullopt;
  return SuffixStats{(fold_sum_ + fold_comp_) / static_cast<double>(n),
                     first->first, n};
}

std::size_t TimeWindow::count_since(double t) const {
  auto first = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const std::pair<double, double>& s, double cut) {
        return s.first < cut;
      });
  return static_cast<std::size_t>(samples_.end() - first);
}

double TimeWindow::min() const {
  if (samples_.empty()) return 0.0;
  double m = samples_.front().second;
  for (const auto& [t, v] : samples_) m = std::min(m, v);
  return m;
}

double TimeWindow::max() const {
  if (samples_.empty()) return 0.0;
  double m = samples_.front().second;
  for (const auto& [t, v] : samples_) m = std::max(m, v);
  return m;
}

double TimeWindow::latest() const {
  return samples_.empty() ? 0.0 : samples_.back().second;
}

double TimeWindow::slope() const {
  if (samples_.size() < 2) return 0.0;
  double n = static_cast<double>(samples_.size());
  double st = 0.0, sv = 0.0, stt = 0.0, stv = 0.0;
  for (const auto& [t, v] : samples_) {
    st += t;
    sv += v;
    stt += t * t;
    stv += t * v;
  }
  double denom = n * stt - st * st;
  if (denom == 0.0) return 0.0;
  return (n * stv - st * sv) / denom;
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(samples.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace avf::util
