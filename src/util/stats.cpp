#include "util/stats.hpp"

#include <algorithm>

namespace avf::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

void TimeWindow::add(double time, double value) {
  samples_.emplace_back(time, value);
  double cutoff = time - horizon_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    samples_.pop_front();
  }
}

double TimeWindow::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [t, v] : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

std::optional<double> TimeWindow::mean_since(double t) const {
  // Samples are time-ordered, so the qualifying suffix starts at the first
  // entry with time >= t.
  auto first = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const std::pair<double, double>& s, double cut) {
        return s.first < cut;
      });
  if (first == samples_.end()) return std::nullopt;
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = first; it != samples_.end(); ++it) {
    sum += it->second;
    ++n;
  }
  return sum / static_cast<double>(n);
}

std::size_t TimeWindow::count_since(double t) const {
  auto first = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const std::pair<double, double>& s, double cut) {
        return s.first < cut;
      });
  return static_cast<std::size_t>(samples_.end() - first);
}

double TimeWindow::min() const {
  if (samples_.empty()) return 0.0;
  double m = samples_.front().second;
  for (const auto& [t, v] : samples_) m = std::min(m, v);
  return m;
}

double TimeWindow::max() const {
  if (samples_.empty()) return 0.0;
  double m = samples_.front().second;
  for (const auto& [t, v] : samples_) m = std::max(m, v);
  return m;
}

double TimeWindow::latest() const {
  return samples_.empty() ? 0.0 : samples_.back().second;
}

double TimeWindow::slope() const {
  if (samples_.size() < 2) return 0.0;
  double n = static_cast<double>(samples_.size());
  double st = 0.0, sv = 0.0, stt = 0.0, stv = 0.0;
  for (const auto& [t, v] : samples_) {
    st += t;
    sv += v;
    stt += t * t;
    stv += t * v;
  }
  double denom = n * stt - st * st;
  if (denom == 0.0) return 0.0;
  return (n * stv - st * sv) / denom;
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(samples.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace avf::util
